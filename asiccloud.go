// Package asiccloud is a Go reproduction of "ASIC Clouds: Specializing
// the Datacenter" (Magaki, Khazraee, Vega Gutierrez, Taylor — ISCA 2016):
// a TCO-driven design-space explorer for datacenters built from arrays of
// ASIC accelerators.
//
// Given a replicated compute accelerator (RCA) specification — area,
// performance and power density from a placed-and-routed implementation —
// the library jointly optimizes the ASIC (die size, RCAs per chip,
// operating voltage), the server (chips per lane, heat sinks, fans, DRAM
// complement, power delivery, PCB layout) and the datacenter economics,
// producing the Pareto frontier over $ per op/s and W per op/s and the
// TCO-optimal design.
//
// The package also ships the four ASIC Clouds the paper studies — Bitcoin
// (a from-scratch SHA-256 miner), Litecoin (from-scratch scrypt), video
// transcoding and a DaDianNao-style convolutional neural network cloud —
// plus the substrates they need: thermal simulation, power delivery, DRAM
// and interconnect models, an NRE/breakeven analyzer, and a TCP pool
// server for scale-out job distribution.
//
// Quick start:
//
//	rca := asiccloud.BitcoinRCA()
//	result, err := asiccloud.Explore(asiccloud.Sweep{Base: asiccloud.DefaultServer(rca)},
//		asiccloud.DefaultTCO())
//	fmt.Println(result.TCOOptimal.Describe())
//
// See the examples/ directory for complete programs and cmd/paperfigs for
// the code that regenerates every table and figure in the paper.
package asiccloud

import (
	"context"

	"asiccloud/internal/apps/bitcoin"
	"asiccloud/internal/apps/cnn"
	"asiccloud/internal/apps/litecoin"
	"asiccloud/internal/apps/xcode"
	"asiccloud/internal/asic"
	"asiccloud/internal/baseline"
	"asiccloud/internal/core"
	"asiccloud/internal/datacenter"
	"asiccloud/internal/nre"
	"asiccloud/internal/server"
	"asiccloud/internal/tco"
	"asiccloud/internal/vlsi"
	"asiccloud/internal/workload"
)

// Core modeling types.
type (
	// RCASpec describes a replicated compute accelerator as extracted
	// from a placed-and-routed implementation.
	RCASpec = vlsi.Spec
	// DelayCurve maps supply voltage to normalized critical-path delay.
	DelayCurve = vlsi.DelayCurve
	// Process is a fabrication node's economic model.
	Process = vlsi.Process
	// Netlist is the coarse structural input to the gate-level
	// estimator.
	Netlist = vlsi.Netlist
	// Technology holds standard-cell library coefficients for the
	// estimator.
	Technology = vlsi.Technology

	// ServerConfig is one candidate ASIC server design point.
	ServerConfig = server.Config
	// ServerEvaluation is the result of evaluating a design point.
	ServerEvaluation = server.Evaluation

	// Sweep describes a design-space search.
	Sweep = core.Sweep
	// Result is a completed exploration.
	Result = core.Result
	// DesignPoint is one feasible design with its TCO breakdown.
	DesignPoint = core.Point
	// Engine is a reusable exploration service with a thermal-plan
	// cache, context-aware execution and optional streaming (frontier-
	// only) sweeps.
	Engine = core.Engine
	// CacheStats snapshots an Engine's plan-cache effectiveness.
	CacheStats = core.CacheStats

	// TCOModel holds the datacenter economics.
	TCOModel = tco.Model
	// TCOBreakdown itemizes total cost of ownership.
	TCOBreakdown = tco.Breakdown

	// Rack and Deployment size machine rooms.
	Rack = datacenter.Rack
	// Deployment is a sized server fleet.
	Deployment = datacenter.Deployment

	// NREDecision is the go/no-go analysis for building an ASIC Cloud.
	NREDecision = nre.Decision

	// BaselineMachine is a CPU/GPU cloud reference node (Table 7).
	BaselineMachine = baseline.Machine
)

// Explore runs the brute-force design-space search (the paper's core
// methodology) and returns all feasible points, the Pareto frontier, and
// the energy-, cost- and TCO-optimal servers.
func Explore(sweep Sweep, model TCOModel) (Result, error) {
	return core.Explore(sweep, model)
}

// ExploreContext is Explore with cancellation and deadline support: on
// abort it returns promptly with a wrapped ctx error and the partial
// prune accounting.
func ExploreContext(ctx context.Context, sweep Sweep, model TCOModel) (Result, error) {
	return core.ExploreContext(ctx, sweep, model)
}

// NewEngine returns a reusable exploration engine. Successive sweeps
// over overlapping geometry grids — sensitivity studies, repeated
// interactive queries — reuse its memoized thermal plans instead of
// re-running heat-sink optimization.
func NewEngine() *Engine { return core.NewEngine(nil) }

// EvaluateServer runs the single-point Figure 4 evaluation flow.
func EvaluateServer(cfg ServerConfig) (ServerEvaluation, error) {
	return server.Evaluate(cfg)
}

// DefaultServer assembles the paper's standard 1U 8-lane server around
// an RCA.
func DefaultServer(rca RCASpec) ServerConfig { return server.Default(rca) }

// VoltageGrid returns voltages from lo to hi inclusive in the paper's
// 0.01 V sweep steps.
func VoltageGrid(lo, hi float64) []float64 { return core.VoltageGrid(lo, hi) }

// DefaultTCO returns the calibrated ASIC Cloud TCO model (1.5-year
// server life, $0.06/kWh energy).
func DefaultTCO() TCOModel { return tco.Default() }

// TCOForLifetime returns the TCO model with a different hardware
// lifetime (3 years for CPU/GPU baselines).
func TCOForLifetime(years float64) TCOModel { return tco.ForLifetime(years) }

// UMC28nm is the paper's fabrication process.
func UMC28nm() Process { return vlsi.UMC28nm() }

// Estimate28nm runs the gate-level estimator against the calibrated
// 28nm library model.
func Estimate28nm(n Netlist, freqHz, perfPerCycle float64, perfUnit string) (RCASpec, error) {
	return vlsi.Generic28nm().Estimate(n, freqHz, perfPerCycle, perfUnit)
}

// The four ASIC Clouds of the paper.

// BitcoinRCA is the published 28nm double-SHA256 accelerator.
func BitcoinRCA() RCASpec { return bitcoin.RCA() }

// LitecoinRCA is the SRAM-dominated scrypt accelerator.
func LitecoinRCA() RCASpec { return litecoin.RCA() }

// XcodeServer assembles the video-transcoding server with the given
// LPDDR3 devices per ASIC.
func XcodeServer(dramsPerASIC int) (ServerConfig, error) {
	return xcode.ServerConfig(dramsPerASIC)
}

// CNNExplore evaluates the paper's twelve DaDianNao chip partitions.
func CNNExplore(model TCOModel) ([]cnn.Evaluation, error) { return cnn.Explore(model) }

// EvaluateNRE applies the paper's two-for-two rule: should this
// computation move to an ASIC Cloud?
func EvaluateNRE(existingTCO, nreCost, projectedSpeedup float64) (NREDecision, error) {
	return nre.Evaluate(existingTCO, nreCost, projectedSpeedup)
}

// PlanDeployment sizes a fleet (servers, racks, megawatts) for an
// aggregate performance demand.
func PlanDeployment(rack Rack, perfPerServer, serverWallW, demand float64) (Deployment, error) {
	return datacenter.Plan(rack, perfPerServer, serverWallW, demand)
}

// DefaultRack is a 42U rack provisioned at 12 kW.
func DefaultRack() Rack { return datacenter.DefaultRack() }

// On-ASIC architecture simulation (paper Figure 2).
type (
	// ChipConfig parameterizes the cycle-level on-ASIC simulator: an
	// RCA mesh with an XY-routed NoC, a control plane and thermal
	// sensors.
	ChipConfig = asic.Config
	// Chip is a simulated ASIC.
	Chip = asic.Chip
	// ChipStats summarizes a chip simulation.
	ChipStats = asic.Stats
)

// NewChip builds a simulated ASIC.
func NewChip(cfg ChipConfig) (*Chip, error) { return asic.New(cfg) }

// DefaultChipConfig is a 4×4 RCA mesh resembling a mid-size mining chip.
func DefaultChipConfig() ChipConfig { return asic.DefaultConfig() }

// Workload modeling (planet-scale service traffic).
type (
	// TrafficGenerator produces diurnal Poisson arrivals with
	// log-normal service demands.
	TrafficGenerator = workload.Generator
	// FleetResult summarizes a fleet queueing simulation.
	FleetResult = workload.FleetResult
)

// DefaultTraffic resembles a transcoding front door (100 jobs/s, ±60%
// diurnal swing, ~4 s mean service).
func DefaultTraffic() TrafficGenerator { return workload.DefaultGenerator() }

// ProvisionForLatency finds the smallest fleet meeting a P99 waiting-time
// target under the given trace — the latency-aware counterpart of
// PlanDeployment.
func ProvisionForLatency(jobs []workload.Job, speedup, targetP99 float64, maxServers int) (FleetResult, error) {
	return workload.ProvisionForLatency(jobs, speedup, targetP99, maxServers)
}

// FindTCOOptimal is the fast (coarse-then-refine) TCO-optimal search;
// it agrees with Explore's optimum but skips the full Pareto sweep.
func FindTCOOptimal(sweep Sweep, model TCOModel) (DesignPoint, error) {
	return core.FindTCOOptimal(sweep, model)
}
