package asiccloud_test

import (
	"fmt"
	"log"

	"asiccloud"
)

// ExampleEvaluateNRE shows the paper's two-for-two rule: a computation
// whose cloud TCO is twice the ASIC NRE needs a 2x TCO-per-op
// improvement to break even.
func ExampleEvaluateNRE() {
	decision, err := asiccloud.EvaluateNRE(10e6, 5e6, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCO/NRE ratio %.0f, breakeven %.2fx, two-for-two pass: %v\n",
		decision.TCONRERatio, decision.RequiredSpeedup, decision.PassesTwoForTwo)
	// Output:
	// TCO/NRE ratio 2, breakeven 2.00x, two-for-two pass: true
}

// ExampleVoltageGrid reproduces the paper's sweep granularity: "all
// operating voltages from 0.4 up in increments of 0.01V".
func ExampleVoltageGrid() {
	grid := asiccloud.VoltageGrid(0.40, 0.44)
	fmt.Println(grid)
	// Output:
	// [0.4 0.41 0.42 0.43 0.44]
}

// ExamplePlanDeployment sizes the paper's §8 world-wide Litecoin fleet:
// "1,248 servers would be sufficient to meet world-wide capacity."
func ExamplePlanDeployment() {
	d, err := asiccloud.PlanDeployment(asiccloud.DefaultRack(), 1164, 3401, 1452000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d servers, %.1f MW\n", d.Servers, d.TotalPowerW/1e6)
	// Output:
	// 1248 servers, 4.2 MW
}

// ExampleBitcoinRCA prints the published RCA constants the whole Bitcoin
// study rests on.
func ExampleBitcoinRCA() {
	rca := asiccloud.BitcoinRCA()
	fmt.Printf("%.2f mm², %.2f GH/s and %.1f W/mm² at %.1f V\n",
		rca.Area, rca.NominalPerf, rca.NominalPowerDensity, rca.NominalVoltage)
	// Output:
	// 0.66 mm², 0.83 GH/s and 2.0 W/mm² at 1.0 V
}

// ExampleExplore runs the full design-space search for the Bitcoin RCA
// and reads the TCO-optimal configuration (values are model outputs, so
// this example prints only structure that is locked by tests).
func ExampleExplore() {
	result, err := asiccloud.Explore(asiccloud.Sweep{
		Base: asiccloud.DefaultServer(asiccloud.BitcoinRCA()),
	}, asiccloud.DefaultTCO())
	if err != nil {
		log.Fatal(err)
	}
	o := result.TCOOptimal
	fmt.Printf("energy-optimal voltage: %.2f V\n", result.EnergyOptimal.Config.Voltage)
	fmt.Printf("TCO-optimal lanes: %d\n", o.Config.Lanes)
	// Output:
	// energy-optimal voltage: 0.40 V
	// TCO-optimal lanes: 8
}
