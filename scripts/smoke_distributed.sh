#!/usr/bin/env bash
# Smoke test for distributed sweep execution: build asiccloudd and the
# CLI, run one sweep three ways — in-process (-once), distributed over
# a 3-worker pool (-coordinate / -worker), and distributed again with a
# worker killed mid-sweep — and check the properties the coordinator
# guarantees: the distributed result is byte-identical to the
# single-process run, its TCO-optimal matches the CLI verbatim, prune
# accounting stays exact across the merge, workers exit cleanly on
# drain, and a killed worker's chunk is recovered via lease requeue.
# Run from the repository root (make check does).
set -euo pipefail

fail() { echo "smoke_distributed: FAIL: $*" >&2; exit 1; }

command -v jq >/dev/null || fail "jq not found on PATH"

workdir=$(mktemp -d)
pids=()
cleanup() {
    local p
    for p in "${pids[@]:-}"; do
        [[ -n "$p" ]] && kill -0 "$p" 2>/dev/null && kill -TERM "$p" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "smoke_distributed: building asiccloudd and asiccloud"
go build -o "$workdir/asiccloudd" ./cmd/asiccloudd
go build -o "$workdir/asiccloud" ./cmd/asiccloud

# The default bitcoin sweep under the carbon objective: the same design
# space `asiccloud design -app bitcoin` explores (the objective changes
# what the caller optimizes for, not what is swept), so the CLI's TCO-
# and carbon-optimal answers are both comparable verbatim — and the
# byte-identity check covers the carbon frontier riding in the chunks.
echo '{"app":"bitcoin","objective":"carbon"}' >"$workdir/req.json"

# wait_for_pool FILE: parse the coordinator's stdout announcement.
wait_for_pool() {
    local file=$1 addr="" i
    for i in $(seq 1 100); do
        addr=$(sed -n 's/^asiccloudd: coordinating on //p' "$file" 2>/dev/null)
        [[ -n "$addr" ]] && { echo "$addr"; return 0; }
        sleep 0.1
    done
    return 1
}

# Baseline: the single-process run every distributed run must match.
"$workdir/asiccloudd" -once -request "$workdir/req.json" -o "$workdir/once.json" \
    -log-level warn 2>"$workdir/once.err" || { cat "$workdir/once.err" >&2; fail "-once run failed"; }

# Property 1: a 3-worker distributed sweep produces byte-identical
# result JSON, and every worker exits 0 on the clean drained nojob.
"$workdir/asiccloudd" -coordinate -request "$workdir/req.json" -chunk 3 \
    -o "$workdir/dist.json" -log-level warn \
    >"$workdir/coord.out" 2>"$workdir/coord.err" &
coord_pid=$!
pids+=("$coord_pid")
addr=$(wait_for_pool "$workdir/coord.out") || { cat "$workdir/coord.err" >&2; fail "coordinator never announced its pool address"; }
echo "smoke_distributed: pool on $addr"

worker_pids=()
for w in 1 2 3; do
    "$workdir/asiccloudd" -worker -join "$addr" -id "w$w" -log-level warn \
        >"$workdir/w$w.out" 2>"$workdir/w$w.err" &
    worker_pids+=($!)
    pids+=($!)
done
wait "$coord_pid" || { cat "$workdir/coord.err" >&2; fail "coordinator exited non-zero"; }
for i in 0 1 2; do
    wait "${worker_pids[$i]}" || { cat "$workdir/w$((i + 1)).err" >&2; fail "worker w$((i + 1)) exited non-zero"; }
done
cmp -s "$workdir/once.json" "$workdir/dist.json" || {
    diff <(jq -S . "$workdir/once.json") <(jq -S . "$workdir/dist.json") >&2 || true
    fail "distributed result is not byte-identical to the single-process run"
}
echo "smoke_distributed: 3-worker result byte-identical to -once"

# Property 2: the distributed TCO- and carbon-optimal answers match the
# CLI verbatim.
"$workdir/asiccloud" design -app bitcoin >"$workdir/cli.out"
dist_line=$(jq -er .tco_optimal.describe "$workdir/dist.json")
cli_line=$(sed -n 's/^TCO-optimal:[[:space:]]*//p' "$workdir/cli.out")
[[ -n "$cli_line" ]] || fail "CLI printed no TCO-optimal line"
if [[ "$dist_line" != "$cli_line" ]]; then
    printf 'distributed: %s\nCLI:         %s\n' "$dist_line" "$cli_line" >&2
    fail "distributed run and CLI disagree on the TCO-optimal design"
fi
dist_carbon=$(jq -er .carbon_optimal.describe "$workdir/dist.json")
cli_carbon=$(sed -n 's/^carbon-optimal:[[:space:]]*//p' "$workdir/cli.out")
[[ -n "$cli_carbon" ]] || fail "CLI printed no carbon-optimal line"
if [[ "$dist_carbon" != "$cli_carbon" ]]; then
    printf 'distributed: %s\nCLI:         %s\n' "$dist_carbon" "$cli_carbon" >&2
    fail "distributed run and CLI disagree on the carbon-optimal design"
fi
echo "smoke_distributed: TCO- and carbon-optimal match CLI"

# Property 3: prune accounting survives the merge exactly —
# generated == feasible + sum of prune reasons + duplicates.
jq -e '.pruned | .generated == .feasible + ([.reasons // {} | .[]] | add // 0) + .duplicates' \
    "$workdir/dist.json" >/dev/null \
    || fail "merged prune accounting does not balance"
echo "smoke_distributed: prune accounting balances after merge"

# Property 4: killing a worker mid-sweep does not lose its chunks —
# leases expire, the chunks are requeued, and the surviving fleet still
# produces the identical bytes. This phase uses a sweep large enough
# (~1s single-process) that a SIGKILL lands while work is genuinely
# outstanding.
jq -n '{app:"bitcoin", sweep:{
    voltages_v:        [range(240) | 0.40 + 0.0025 * .],
    silicon_per_lane_mm2: [range(2; 102) | 5 * .],
    chips_per_lane:    [range(1; 41)]}}' >"$workdir/req2.json"
"$workdir/asiccloudd" -once -request "$workdir/req2.json" -o "$workdir/once2.json" \
    -log-level warn 2>"$workdir/once2.err" || { cat "$workdir/once2.err" >&2; fail "second -once run failed"; }

"$workdir/asiccloudd" -coordinate -request "$workdir/req2.json" -chunk 50 \
    -lease 500ms -o "$workdir/dist2.json" -log-level warn \
    >"$workdir/coord2.out" 2>"$workdir/coord2.err" &
coord_pid=$!
pids+=("$coord_pid")
addr=$(wait_for_pool "$workdir/coord2.out") || { cat "$workdir/coord2.err" >&2; fail "second coordinator never announced its pool address"; }

# The victim starts from a subshell so bash's job control stays quiet
# about the SIGKILL.
victim=$(
    "$workdir/asiccloudd" -worker -join "$addr" -id doomed -log-level warn \
        >"$workdir/doomed.out" 2>"$workdir/doomed.err" &
    echo $!
)
sleep 0.25
kill -KILL "$victim" 2>/dev/null || true
echo "smoke_distributed: killed worker 'doomed' mid-sweep"

for w in 4 5; do
    "$workdir/asiccloudd" -worker -join "$addr" -id "w$w" -log-level warn \
        >"$workdir/w$w.out" 2>"$workdir/w$w.err" &
    pids+=($!)
done
wait "$coord_pid" || { cat "$workdir/coord2.err" >&2; fail "coordinator did not survive the worker kill"; }
cmp -s "$workdir/once2.json" "$workdir/dist2.json" \
    || fail "result after worker kill is not byte-identical to the single-process run"
echo "smoke_distributed: sweep completed after worker kill, bytes identical"

echo "smoke_distributed: PASS"
