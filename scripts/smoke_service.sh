#!/usr/bin/env bash
# Smoke test for asiccloudd: build the daemon and the CLI, run one sweep
# through the HTTP API, and check the three properties the service
# guarantees — the daemon's TCO-optimal answer matches the CLI's
# verbatim, an identical resubmission is served from the cache
# byte-for-byte, and the cache-hit counter on /metrics accounts for it.
# Run from the repository root (make check does).
set -euo pipefail

fail() { echo "smoke_service: FAIL: $*" >&2; exit 1; }

for tool in curl jq; do
    command -v "$tool" >/dev/null || fail "$tool not found on PATH"
done

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -TERM "$daemon_pid" 2>/dev/null || true
        wait "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "smoke_service: building asiccloudd and asiccloud"
go build -o "$workdir/asiccloudd" ./cmd/asiccloudd
go build -o "$workdir/asiccloud" ./cmd/asiccloud

"$workdir/asiccloudd" -addr 127.0.0.1:0 >"$workdir/daemon.out" 2>"$workdir/daemon.err" &
daemon_pid=$!

# The daemon prints "asiccloudd: listening on HOST:PORT" once bound.
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^asiccloudd: listening on //p' "$workdir/daemon.out")
    [[ -n "$addr" ]] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/daemon.err" >&2; fail "daemon exited during startup"; }
    sleep 0.1
done
[[ -n "$addr" ]] || fail "daemon never reported its listen address"
base="http://$addr"
echo "smoke_service: daemon on $base"

# Submit the quickstart sweep and poll the job to completion.
curl -sf -X POST "$base/v1/sweeps" -d '{"app":"bitcoin"}' >"$workdir/post1.json" \
    || fail "POST /v1/sweeps"
job=$(jq -er .id "$workdir/post1.json")
state="queued"
for _ in $(seq 1 200); do
    state=$(curl -sf "$base/v1/sweeps/$job" | jq -er .state)
    [[ "$state" == "done" || "$state" == "failed" || "$state" == "canceled" ]] && break
    sleep 0.1
done
[[ "$state" == "done" ]] || fail "job $job ended in state $state"
curl -sf "$base/v1/sweeps/$job/result" >"$workdir/result1.json" || fail "GET result"

# Property 1: the daemon's TCO-optimal point matches the CLI verbatim.
daemon_line=$(jq -er .tco_optimal.describe "$workdir/result1.json")
cli_line=$("$workdir/asiccloud" design -app bitcoin | sed -n 's/^TCO-optimal:[[:space:]]*//p')
[[ -n "$cli_line" ]] || fail "CLI printed no TCO-optimal line"
if [[ "$daemon_line" != "$cli_line" ]]; then
    printf 'daemon: %s\nCLI:    %s\n' "$daemon_line" "$cli_line" >&2
    fail "daemon and CLI disagree on the TCO-optimal design"
fi
echo "smoke_service: daemon TCO-optimal matches CLI"

# Property 2: an identical resubmission is a cache hit with the exact
# same bytes.
curl -sf -X POST "$base/v1/sweeps" -d '{"app":"bitcoin"}' >"$workdir/post2.json" \
    || fail "second POST"
jq -e '.cached == true and .state == "done"' "$workdir/post2.json" >/dev/null \
    || fail "second submission was not served from the cache"
job2=$(jq -er .id "$workdir/post2.json")
curl -sf "$base/v1/sweeps/$job2/result" >"$workdir/result2.json" || fail "GET cached result"
cmp -s "$workdir/result1.json" "$workdir/result2.json" \
    || fail "cached result is not byte-identical to the original"
echo "smoke_service: cache hit is byte-identical"

# Property 3: the hit shows up on /metrics.
curl -sf "$base/metrics" >"$workdir/metrics.txt" || fail "GET /metrics"
grep -q '^asiccloudd_cache_hits_total 1$' "$workdir/metrics.txt" \
    || fail "/metrics does not show asiccloudd_cache_hits_total 1"
echo "smoke_service: cache-hit counter accounted on /metrics"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    cat "$workdir/daemon.err" >&2
    fail "daemon exited non-zero on SIGTERM"
fi
daemon_pid=""
echo "smoke_service: PASS"
