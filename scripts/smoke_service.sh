#!/usr/bin/env bash
# Smoke test for asiccloudd: build the daemon and the CLI, run one sweep
# through the HTTP API, and check the three properties the service
# guarantees — the daemon's TCO-optimal answer matches the CLI's
# verbatim, an identical resubmission is served from the cache
# byte-for-byte, and the cache-hit counter on /metrics accounts for it.
# Run from the repository root (make check does).
set -euo pipefail

fail() { echo "smoke_service: FAIL: $*" >&2; exit 1; }

for tool in curl jq; do
    command -v "$tool" >/dev/null || fail "$tool not found on PATH"
done

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -TERM "$daemon_pid" 2>/dev/null || true
        wait "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "smoke_service: building asiccloudd and asiccloud"
go build -o "$workdir/asiccloudd" ./cmd/asiccloudd
go build -o "$workdir/asiccloud" ./cmd/asiccloud

"$workdir/asiccloudd" -addr 127.0.0.1:0 >"$workdir/daemon.out" 2>"$workdir/daemon.err" &
daemon_pid=$!

# The daemon prints "asiccloudd: listening on HOST:PORT" once bound.
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^asiccloudd: listening on //p' "$workdir/daemon.out")
    [[ -n "$addr" ]] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/daemon.err" >&2; fail "daemon exited during startup"; }
    sleep 0.1
done
[[ -n "$addr" ]] || fail "daemon never reported its listen address"
base="http://$addr"
echo "smoke_service: daemon on $base"

# Submit the quickstart sweep and poll the job to completion.
curl -sf -X POST "$base/v1/sweeps" -d '{"app":"bitcoin"}' >"$workdir/post1.json" \
    || fail "POST /v1/sweeps"
job=$(jq -er .id "$workdir/post1.json")
state="queued"
for _ in $(seq 1 200); do
    state=$(curl -sf "$base/v1/sweeps/$job" | jq -er .state)
    [[ "$state" == "done" || "$state" == "failed" || "$state" == "canceled" ]] && break
    sleep 0.1
done
[[ "$state" == "done" ]] || fail "job $job ended in state $state"
curl -sf "$base/v1/sweeps/$job/result" >"$workdir/result1.json" || fail "GET result"

# Property 1: the daemon's TCO-optimal point matches the CLI verbatim.
"$workdir/asiccloud" design -app bitcoin >"$workdir/cli.out"
daemon_line=$(jq -er .tco_optimal.describe "$workdir/result1.json")
cli_line=$(sed -n 's/^TCO-optimal:[[:space:]]*//p' "$workdir/cli.out")
[[ -n "$cli_line" ]] || fail "CLI printed no TCO-optimal line"
if [[ "$daemon_line" != "$cli_line" ]]; then
    printf 'daemon: %s\nCLI:    %s\n' "$daemon_line" "$cli_line" >&2
    fail "daemon and CLI disagree on the TCO-optimal design"
fi
echo "smoke_service: daemon TCO-optimal matches CLI"

# Property 1b: a carbon-objective sweep is its own cache entry, echoes
# its objective, and its carbon-optimal answer matches the CLI verbatim.
curl -sf -X POST "$base/v1/sweeps" -d '{"app":"bitcoin","objective":"carbon"}' >"$workdir/postc.json" \
    || fail "carbon POST /v1/sweeps"
jq -e '.cached != true' "$workdir/postc.json" >/dev/null \
    || fail "carbon-objective request wrongly shared the tco cache entry"
jobc=$(jq -er .id "$workdir/postc.json")
state="queued"
for _ in $(seq 1 200); do
    state=$(curl -sf "$base/v1/sweeps/$jobc" | jq -er .state)
    [[ "$state" == "done" || "$state" == "failed" || "$state" == "canceled" ]] && break
    sleep 0.1
done
[[ "$state" == "done" ]] || fail "carbon job $jobc ended in state $state"
curl -sf "$base/v1/sweeps/$jobc/result" >"$workdir/resultc.json" || fail "GET carbon result"
jq -e '.objective == "carbon"' "$workdir/resultc.json" >/dev/null \
    || fail "carbon result does not echo objective=carbon"
daemon_carbon=$(jq -er .carbon_optimal.describe "$workdir/resultc.json")
cli_carbon=$(sed -n 's/^carbon-optimal:[[:space:]]*//p' "$workdir/cli.out")
[[ -n "$cli_carbon" ]] || fail "CLI printed no carbon-optimal line"
if [[ "$daemon_carbon" != "$cli_carbon" ]]; then
    printf 'daemon: %s\nCLI:    %s\n' "$daemon_carbon" "$cli_carbon" >&2
    fail "daemon and CLI disagree on the carbon-optimal design"
fi
echo "smoke_service: daemon carbon-optimal matches CLI"

# Property 2: an identical resubmission is a cache hit with the exact
# same bytes.
curl -sf -X POST "$base/v1/sweeps" -d '{"app":"bitcoin"}' >"$workdir/post2.json" \
    || fail "second POST"
jq -e '.cached == true and .state == "done"' "$workdir/post2.json" >/dev/null \
    || fail "second submission was not served from the cache"
job2=$(jq -er .id "$workdir/post2.json")
curl -sf "$base/v1/sweeps/$job2/result" >"$workdir/result2.json" || fail "GET cached result"
cmp -s "$workdir/result1.json" "$workdir/result2.json" \
    || fail "cached result is not byte-identical to the original"
echo "smoke_service: cache hit is byte-identical"

# Property 3: the hit shows up on /metrics.
curl -sf "$base/metrics" >"$workdir/metrics.txt" || fail "GET /metrics"
grep -q '^asiccloud_cache_hits_total 1$' "$workdir/metrics.txt" \
    || fail "/metrics does not show asiccloud_cache_hits_total 1"
echo "smoke_service: cache-hit counter accounted on /metrics"

# Property 4: one submission is one connected trace. POST a distinct
# sweep (a fresh cache key, so the engine actually runs), follow its
# SSE stream to the terminal event, then fetch the span tree.
curl -sf -X POST "$base/v1/sweeps" -d '{"app":"litecoin"}' >"$workdir/post3.json" \
    || fail "third POST"
job3=$(jq -er .id "$workdir/post3.json")
trace3=$(jq -er .trace_id "$workdir/post3.json") || fail "submission status has no trace_id"

# The SSE stream ends when the job reaches a terminal state; --max-time
# bounds the wait if it never does.
curl -sN --max-time 30 "$base/v1/sweeps/$job3/events" >"$workdir/events.txt" \
    || fail "SSE stream did not complete"
grep '^data: ' "$workdir/events.txt" | sed 's/^data: //' >"$workdir/events.json"
[[ -s "$workdir/events.json" ]] || fail "SSE stream carried no events"
last_state=$(tail -n 1 "$workdir/events.json" | jq -er .state)
[[ "$last_state" == "done" ]] || fail "SSE stream ended in state $last_state"
jq -es --arg id "$job3" --arg tid "$trace3" \
    'all(.id == $id and .trace_id == $tid)' "$workdir/events.json" | grep -q true \
    || fail "SSE events not correlated to the job and its trace"
echo "smoke_service: SSE stream followed job $job3 to completion"

curl -sf "$base/v1/sweeps/$job3/trace" >"$workdir/trace.json" || fail "GET trace"
jq -e --arg tid "$trace3" '.trace_id == $tid' "$workdir/trace.json" >/dev/null \
    || fail "trace endpoint reports a different trace_id"
jq -e '.spans | length >= 3' "$workdir/trace.json" >/dev/null \
    || fail "trace has fewer than 3 spans (request, job, engine)"
jq -e '[.spans[].trace_id] | unique == [.[0]]' "$workdir/trace.json" >/dev/null \
    || fail "spans do not all share one trace ID"
jq -e '.tree[0].name == "POST /v1/sweeps"' "$workdir/trace.json" >/dev/null \
    || fail "span tree is not rooted at the HTTP request span"
jq -e '.pruned.generated > 0' "$workdir/trace.json" >/dev/null \
    || fail "trace is missing prune accounting"
echo "smoke_service: trace endpoint shows one connected span tree"

# Property 5: the daemon's JSON log lines carry the same correlation
# IDs, so a trace ID found in a log line leads straight to its spans.
jq -es --arg id "$job3" --arg tid "$trace3" \
    'map(select(.job_id == $id)) | length > 0 and all(.[]; .trace_id == $tid)' \
    "$workdir/daemon.err" | grep -q true \
    || fail "daemon log lines for job $job3 are not trace-correlated"
echo "smoke_service: log lines correlated by job_id and trace_id"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    cat "$workdir/daemon.err" >&2
    fail "daemon exited non-zero on SIGTERM"
fi
daemon_pid=""
echo "smoke_service: PASS"
