#!/usr/bin/env sh
# Lint only the .go files changed against a git ref.
#
# Usage: scripts/lint_changed.sh [ref]
#
# The whole module is still loaded and analyzed (the dataflow analyzers
# need complete packages), but diagnostics are filtered to files that
# differ from the ref — committed, staged, unstaged or untracked. The
# default ref is origin/main when the remote branch exists, HEAD
# otherwise, so the script works both in CI (against the merge base)
# and locally (against the last commit).
set -eu
cd "$(dirname "$0")/.."

ref="${1:-}"
if [ -z "$ref" ]; then
    if git rev-parse --verify --quiet origin/main >/dev/null; then
        ref=origin/main
    else
        ref=HEAD
    fi
fi

exec go run ./cmd/asiclint -diff "$ref" ./...
