package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"asiccloud/internal/core"
	"asiccloud/internal/obs"
)

// obsOpts carries the shared observability flags every sweep-running
// subcommand registers: a metrics/pprof/expvar HTTP endpoint, span
// trace printing, CPU profiling, and JSON run-report output.
type obsOpts struct {
	metricsAddr string
	trace       bool
	cpuprofile  string
	reportJSON  string

	command string
	rec     *obs.Recorder
	cpuFile *os.File
}

// registerObsFlags adds the observability flags to a subcommand's
// flag set.
func registerObsFlags(fs *flag.FlagSet) *obsOpts {
	o := &obsOpts{command: fs.Name()}
	fs.StringVar(&o.metricsAddr, "metrics-addr", "",
		"serve Prometheus /metrics, expvar and pprof on this address (e.g. :9090)")
	fs.BoolVar(&o.trace, "trace", false,
		"print the span trace and run report when the command finishes")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "",
		"write a CPU profile to this file")
	fs.StringVar(&o.reportJSON, "report-json", "",
		"write the structured run report as JSON to this file")
	return o
}

func (o *obsOpts) active() bool {
	return o.metricsAddr != "" || o.trace || o.cpuprofile != "" || o.reportJSON != ""
}

// begin builds the recorder, starts the exposition endpoint and CPU
// profile. It returns the recorder to thread into core.Explore (nil
// when no observability flag is set, keeping the default path free).
func (o *obsOpts) begin() (*obs.Recorder, error) {
	if !o.active() {
		return nil, nil
	}
	o.rec = obs.NewRecorder()
	if o.metricsAddr != "" {
		_, addr, err := obs.Serve(o.metricsAddr, o.rec.Registry())
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "asiccloud: metrics on http://%s/metrics\n", addr)
	}
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		o.cpuFile = f
	}
	return o.rec, nil
}

// finish stops profiling, prints the run report (and, with -trace, the
// span tree), and writes the JSON report. res may be nil for commands
// that produced no exploration result.
func (o *obsOpts) finish(res *core.Result) error {
	if !o.active() {
		return nil
	}
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		name := o.cpuFile.Name()
		if err := o.cpuFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "asiccloud: CPU profile written to %s\n", name)
	}
	report := obs.NewReport(o.command, o.rec)
	if res != nil {
		elapsed := time.Since(o.rec.Start()).Seconds()
		e := &obs.ExploreReport{
			Generated:    res.Pruned.Generated,
			Feasible:     res.Pruned.Feasible,
			Pruned:       res.Pruned.Reasons,
			FrontierSize: len(res.Frontier),
		}
		if elapsed > 0 {
			e.ConfigsPerSec = float64(e.Generated) / elapsed
		}
		report.Explore = e
	}
	if o.trace {
		fmt.Fprintln(os.Stderr)
		fmt.Fprint(os.Stderr, strings.TrimRight(o.rec.TraceTree(), "\n")+"\n")
	}
	fmt.Fprintln(os.Stderr)
	fmt.Fprint(os.Stderr, report.Text())
	if o.reportJSON != "" {
		if err := report.WriteJSONFile(o.reportJSON); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "asiccloud: run report written to %s\n", o.reportJSON)
	}
	return nil
}
