// Command asiccloud is the design-space exploration CLI: it designs
// Pareto- and TCO-optimal ASIC Cloud servers for the paper's four
// applications or for a custom RCA, compares clouds, sizes deployments,
// and answers the "when to go ASIC Cloud" question.
//
// Usage:
//
//	asiccloud design  -app bitcoin|litecoin|xcode|cnn
//	asiccloud pareto  -app bitcoin [-n 20]
//	asiccloud custom  -area 0.66 -perf 0.83 -density 2.0 -unit GH/s
//	asiccloud layouts
//	asiccloud deathmatch
//	asiccloud nre -tco 20e6 -nre 5e6 -speedup 2.5
//	asiccloud deploy -app litecoin -demand 1452000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	appbitcoin "asiccloud/internal/apps/bitcoin"
	appcnn "asiccloud/internal/apps/cnn"
	applitecoin "asiccloud/internal/apps/litecoin"
	appxcode "asiccloud/internal/apps/xcode"
	"asiccloud/internal/asic"
	"asiccloud/internal/core"
	"asiccloud/internal/datacenter"
	"asiccloud/internal/figures"
	"asiccloud/internal/nre"
	"asiccloud/internal/server"
	"asiccloud/internal/studies"
	"asiccloud/internal/tco"
	"asiccloud/internal/units"
	"asiccloud/internal/vlsi"
	"asiccloud/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("asiccloud: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C cancels in-flight explorations cleanly: the engine stops
	// within one geometry's work and reports how far it got.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch os.Args[1] {
	case "design":
		err = cmdDesign(ctx, os.Args[2:])
	case "pareto":
		err = cmdPareto(ctx, os.Args[2:])
	case "custom":
		err = cmdCustom(ctx, os.Args[2:])
	case "layouts":
		err = cmdLayouts()
	case "deathmatch":
		err = cmdDeathmatch()
	case "nre":
		err = cmdNRE(os.Args[2:])
	case "deploy":
		err = cmdDeploy(ctx, os.Args[2:])
	case "study":
		err = cmdStudy(os.Args[2:])
	case "chipsim":
		err = cmdChipSim(os.Args[2:])
	case "provision":
		err = cmdProvision(os.Args[2:])
	case "mine":
		err = cmdMine(os.Args[2:])
	case "economics":
		err = cmdEconomics(ctx, os.Args[2:])
	case "compare":
		err = cmdCompare(ctx)
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `asiccloud — TCO-driven ASIC Cloud design-space explorer (ISCA'16)

subcommands:
  design      find the energy-, cost- and TCO-optimal servers for an app
  pareto      print the Pareto frontier for an app
  custom      explore a custom RCA given area/perf/power density
  layouts     compare Normal / Staggered / DUCT PCB layouts (Fig. 8)
  deathmatch  CPU vs GPU vs ASIC cloud TCO comparison (Table 7)
  nre         apply the two-for-two rule (Fig. 18)
  deploy      size a fleet for an aggregate performance demand
  study       sensitivity studies: energy, lifetime, layout, cooling,
              node, wafer, carbon
  chipsim     cycle-level on-ASIC NoC + control-plane simulation (Fig. 2)
  provision   latency-aware fleet sizing under diurnal bursty load
  mine        build a demo blockchain with the built-in SHA-256 miner (§2)
  economics   mining payback under a growing network (§2-3)
  compare     all four ASIC Clouds' TCO-optimal servers side by side`)
}

// exploreApp runs the standard sweep for a named application on the
// given engine, so commands that explore more than once (compare) reuse
// one thermal-plan cache.
func exploreApp(ctx context.Context, eng *core.Engine, app string) (core.Result, string, error) {
	model := tco.Default()
	switch app {
	case "bitcoin":
		res, err := eng.ExploreContext(ctx, core.Sweep{Base: server.Default(appbitcoin.RCA())}, model)
		return res, "GH/s", err
	case "litecoin":
		res, err := eng.ExploreContext(ctx, core.Sweep{Base: server.Default(applitecoin.RCA())}, model)
		return res, "MH/s", err
	case "xcode":
		base, err := appxcode.ServerConfig(1)
		if err != nil {
			return core.Result{}, "", err
		}
		res, err := eng.ExploreContext(ctx, core.Sweep{
			Base:        base,
			DRAMPerASIC: []int{1, 2, 3, 4, 5, 6, 7, 8, 9},
		}, model)
		return res, "Kfps", err
	default:
		return core.Result{}, "", fmt.Errorf("unknown app %q (want bitcoin, litecoin, xcode or cnn)", app)
	}
}

func cmdDesign(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("design", flag.ExitOnError)
	app := fs.String("app", "bitcoin", "application: bitcoin, litecoin, xcode, cnn")
	verbose := fs.Bool("v", false, "print the TCO-optimal server's full datasheet")
	o := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *app == "cnn" {
		evals, err := appcnn.Explore(tco.Default())
		if err != nil {
			return err
		}
		energy, cost, tcoOpt := appcnn.Optima(evals)
		fmt.Printf("energy-optimal: chip %v, %d systems: %.2f W/TOps, $%.2f/TOps, TCO %.2f\n",
			energy.Shape, energy.Systems, energy.Eval.WattsPerOp, energy.Eval.DollarsPerOp, energy.TCOPerOp())
		fmt.Printf("TCO-optimal:    chip %v, %d systems: %.2f W/TOps, $%.2f/TOps, TCO %.2f\n",
			tcoOpt.Shape, tcoOpt.Systems, tcoOpt.Eval.WattsPerOp, tcoOpt.Eval.DollarsPerOp, tcoOpt.TCOPerOp())
		fmt.Printf("cost-optimal:   chip %v, %d systems: %.2f W/TOps, $%.2f/TOps, TCO %.2f\n",
			cost.Shape, cost.Systems, cost.Eval.WattsPerOp, cost.Eval.DollarsPerOp, cost.TCOPerOp())
		return nil
	}
	rec, err := o.begin()
	if err != nil {
		return err
	}
	res, _, err := exploreApp(ctx, core.NewEngine(rec), *app)
	if err != nil {
		return err
	}
	fmt.Printf("explored %d feasible designs, %d Pareto-optimal\n\n", len(res.Points), len(res.Frontier))
	fmt.Println("energy-optimal:", res.EnergyOptimal.Describe())
	fmt.Println("TCO-optimal:   ", res.TCOOptimal.Describe())
	fmt.Println("cost-optimal:  ", res.CostOptimal.Describe())
	fmt.Println("carbon-optimal:", res.CarbonOptimal.Describe())
	if *verbose {
		fmt.Println()
		fmt.Print(res.TCOOptimal.Report())
	}
	return o.finish(&res)
}

func cmdPareto(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("pareto", flag.ExitOnError)
	app := fs.String("app", "bitcoin", "application: bitcoin, litecoin, xcode")
	n := fs.Int("n", 20, "maximum frontier points to print")
	o := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := o.begin()
	if err != nil {
		return err
	}
	res, unit, err := exploreApp(ctx, core.NewEngine(rec), *app)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-10s %-8s %-6s %-8s %s\n",
		"W/"+unit, "$/"+unit, "voltage", "chips", "die mm²", "TCO/"+unit)
	step := 1
	if len(res.Frontier) > *n {
		step = len(res.Frontier) / *n
	}
	for i := 0; i < len(res.Frontier); i += step {
		p := res.Frontier[i]
		fmt.Printf("%-10.3f %-10.3f %-8.2f %-6d %-8.0f %.3f\n",
			p.WattsPerOp, p.DollarsPerOp, p.Config.Voltage,
			p.Config.ChipsPerLane, p.DieArea, p.TCOPerOp())
	}
	return o.finish(&res)
}

func cmdCustom(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("custom", flag.ExitOnError)
	area := fs.Float64("area", 1.0, "RCA area in mm²")
	perf := fs.Float64("perf", 1.0, "RCA throughput at nominal voltage (unit/s)")
	density := fs.Float64("density", 0.5, "nominal power density in W/mm²")
	freq := fs.Float64("freq", 800e6, "nominal frequency in Hz")
	unit := fs.String("unit", "ops/s", "performance unit label")
	leak := fs.Float64("leak", 0.03, "leakage fraction of nominal power")
	sram := fs.Float64("sram", 0, "SRAM power fraction (separate 0.9 V rail)")
	o := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := vlsi.Spec{
		Name:                "custom",
		PerfUnit:            *unit,
		Area:                *area,
		NominalVoltage:      1.0,
		NominalFreq:         *freq,
		NominalPerf:         *perf,
		NominalPowerDensity: *density,
		LeakageFraction:     *leak,
		SRAMPowerFraction:   *sram,
		VoltageScalable:     true,
	}
	if *sram > 0 {
		spec.SRAMVmin = 0.9
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	rec, err := o.begin()
	if err != nil {
		return err
	}
	res, err := core.NewEngine(rec).ExploreContext(ctx, core.Sweep{Base: server.Default(spec)}, tco.Default())
	if err != nil {
		return err
	}
	fmt.Println("energy-optimal:", res.EnergyOptimal.Describe())
	fmt.Println("TCO-optimal:   ", res.TCOOptimal.Describe())
	fmt.Println("cost-optimal:  ", res.CostOptimal.Describe())
	return o.finish(&res)
}

func cmdLayouts() error {
	a, err := figures.Figure8()
	if err != nil {
		return err
	}
	fmt.Print(a.Text)
	return nil
}

func cmdDeathmatch() error {
	a, err := figures.Table7()
	if err != nil {
		return err
	}
	fmt.Print(a.Text)
	return nil
}

func cmdNRE(args []string) error {
	fs := flag.NewFlagSet("nre", flag.ExitOnError)
	tcoUSD := fs.Float64("tco", 20e6, "existing cloud's TCO for the computation over the horizon ($)")
	nreUSD := fs.Float64("nre", nre.Default28nm().Total(), "ASIC NRE: masks + development ($)")
	speedup := fs.Float64("speedup", 2.0, "projected TCO-per-op/s improvement")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := nre.Evaluate(*tcoUSD, *nreUSD, *speedup)
	if err != nil {
		return err
	}
	fmt.Printf("TCO/NRE ratio:        %.2f\n", d.TCONRERatio)
	if d.RequiredSpeedup > 0 {
		fmt.Printf("breakeven speedup:    %.2fx\n", d.RequiredSpeedup)
	} else {
		fmt.Println("breakeven speedup:    unreachable (TCO below NRE)")
	}
	fmt.Printf("projected speedup:    %.2fx\n", d.ProjectedSpeedup)
	fmt.Printf("two-for-two rule:     %v\n", verdict(d.PassesTwoForTwo))
	fmt.Printf("exact breakeven:      %v\n", verdict(d.PassesBreakeven))
	fmt.Printf("projected savings:    %s\n", units.Money(d.ProjectedSavings))
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "PASS — build the ASIC Cloud"
	}
	return "FAIL"
}

func cmdDeploy(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	app := fs.String("app", "litecoin", "application: bitcoin, litecoin, xcode")
	demand := fs.Float64("demand", 1452000, "aggregate performance demand (app units)")
	rackKW := fs.Float64("rackkw", 12, "per-rack power budget in kW")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, unit, err := exploreApp(ctx, core.NewEngine(nil), *app)
	if err != nil {
		return err
	}
	opt := res.TCOOptimal
	rack := datacenter.DefaultRack()
	rack.PowerBudget = *rackKW * 1000
	d, err := datacenter.Plan(rack, opt.Perf, opt.WallPower, *demand)
	if err != nil {
		return err
	}
	fmt.Printf("TCO-optimal server: %.0f %s at %.0f W\n", opt.Perf, unit, opt.WallPower)
	fmt.Printf("demand %.3g %s -> %d servers in %d racks, %.2f MW\n",
		*demand, unit, d.Servers, d.Racks, datacenter.MegawattFacilities(d))
	return nil
}

func cmdStudy(args []string) error {
	fs := flag.NewFlagSet("study", flag.ExitOnError)
	which := fs.String("which", "energy", "study: energy, lifetime, layout, cooling, node, wafer, carbon")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *which {
	case "energy":
		pts, err := studies.EnergyPriceStudy([]float64{0.02, 0.04, 0.06, 0.10, 0.15})
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-10s %-10s %s\n", "$/kWh", "voltage", "W/GH/s", "TCO/GH/s")
		for _, p := range pts {
			fmt.Printf("%-12.2f %-10.2f %-10.3f %.3f\n", p.PricePerKWh, p.OptimalVoltage, p.WattsPerOp, p.TCOPerOp)
		}
	case "lifetime":
		pts, err := studies.LifetimeStudy([]float64{1, 1.5, 2, 3})
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-10s %-10s %s\n", "years", "voltage", "W/GH/s", "TCO/GH/s")
		for _, p := range pts {
			fmt.Printf("%-8.1f %-10.2f %-10.3f %.3f\n", p.Years, p.OptimalVoltage, p.WattsPerOp, p.TCOPerOp)
		}
	case "layout":
		pts, err := studies.LayoutStudy()
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-12s %s\n", "layout", "GH/s/server", "TCO/GH/s")
		for _, p := range pts {
			fmt.Printf("%-12s %-12.0f %.3f\n", p.Layout, p.Perf, p.TCOPerOp)
		}
	case "cooling":
		pts, err := studies.CoolingStudy()
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %-10s %-10s %s\n", "cooling", "voltage", "W/GH/s", "TCO/GH/s")
		for _, p := range pts {
			fmt.Printf("%-22s %-10.2f %-10.3f %.3f\n", p.Name, p.Voltage, p.WattsPerOp, p.TCOPerOp)
		}
	case "node":
		pts, err := studies.NodeStudy()
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-12s %-12s %s\n", "node", "TCO/GH/s", "mask NRE", "breakeven TCO")
		for _, p := range pts {
			fmt.Printf("%-12s %-12.3f %-12s %s\n", p.Node, p.TCOPerOp,
				units.Money(p.MaskCost), units.Money(p.BreakevenTCO))
		}
	case "wafer":
		pts, err := studies.WaferPriceStudy([]float64{2000, 3000, 3700, 5000, 8000})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-10s %-10s %s\n", "$/wafer", "voltage", "$/GH/s", "TCO/GH/s")
		for _, p := range pts {
			fmt.Printf("%-10.0f %-10.2f %-10.3f %.3f\n", p.WaferCost, p.OptimalVoltage, p.DollarsPerOp, p.TCOPerOp)
		}
	case "carbon":
		s, err := studies.CarbonCrossoverStudy(
			[]float64{1, 1.5, 2, 3},
			[]float64{0.05, 0.10, 0.25, 0.50, 0.90, 1.00},
			[]float64{475, 20},
			studies.DefaultSubstrate())
		if err != nil {
			return err
		}
		fmt.Printf("carbon-optimal ASIC design: %.2f V, embodied %.3f kg CO2e/GH/s, %.3f W/GH/s\n\n",
			s.OptimalVoltage, s.EmbodiedKgPerOp, s.WattsPerOp)
		fmt.Printf("break-even ASIC utilization vs %.0fx-area/%.0fx-power substrate (%.0f yr at %.0f%%):\n",
			studies.DefaultSubstrate().AreaOverhead, studies.DefaultSubstrate().PowerOverhead,
			studies.DefaultSubstrate().LifetimeYears, 100*studies.DefaultSubstrate().Utilization)
		fmt.Printf("%-16s %-12s %s\n", "grid gCO2e/kWh", "asic years", "breakeven util")
		for _, b := range s.Breakevens {
			mark := fmt.Sprintf("%.4f", b.Utilization)
			if b.Utilization > 1 {
				mark += " (never)"
			}
			fmt.Printf("%-16.0f %-12.1f %s\n", b.GridGCO2ePerKWh, b.LifetimeYears, mark)
		}
		fmt.Printf("\n%-16s %-8s %-8s %-14s %-14s %s\n",
			"grid gCO2e/kWh", "years", "util", "asic kg/GHs·yr", "sub kg/GHs·yr", "winner")
		for _, r := range s.Rows {
			winner := "substrate"
			if r.ASICWins {
				winner = "ASIC"
			}
			fmt.Printf("%-16.0f %-8.1f %-8.2f %-14.3f %-14.3f %s\n",
				r.GridGCO2ePerKWh, r.LifetimeYears, r.Utilization,
				r.ASICKgPerOpYear, r.SubstrateKgPerOpYear, winner)
		}
	default:
		return fmt.Errorf("unknown study %q", *which)
	}
	return nil
}

func cmdChipSim(args []string) error {
	fs := flag.NewFlagSet("chipsim", flag.ExitOnError)
	width := fs.Int("width", 4, "mesh width (RCAs)")
	height := fs.Int("height", 4, "mesh height (RCAs)")
	jobs := fs.Int("jobs", 1000, "jobs to push through the chip")
	jobCycles := fs.Int("jobcycles", 64, "RCA service time per job")
	heat := fs.Float64("heat", 0.02, "sensor °C per busy RCA-cycle")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := asic.DefaultConfig()
	cfg.Width, cfg.Height = *width, *height
	cfg.JobCycles = *jobCycles
	cfg.HeatPerBusyCycle = *heat
	chip, err := asic.New(cfg)
	if err != nil {
		return err
	}
	for i := 0; i < *jobs; i++ {
		chip.Submit(uint64(i+1), uint64(i))
	}
	if !chip.RunUntilDrained(100_000_000) {
		return fmt.Errorf("chip did not drain: %+v", chip.Stats())
	}
	s := chip.Stats()
	fmt.Printf("%dx%d mesh, %d-cycle RCAs: %d jobs in %d cycles\n",
		*width, *height, *jobCycles, s.Completed, s.Cycle)
	fmt.Printf("throughput:   %.3f jobs/cycle\n", float64(s.Completed)/float64(s.Cycle))
	fmt.Printf("avg latency:  %.1f cycles\n", s.AvgLatency())
	fmt.Printf("utilization:  %.1f%%\n", 100*s.Utilization(*width**height))
	fmt.Printf("max sensor:   %.1f °C (throttled %d cycles)\n", s.MaxTempC, s.ThrottledCycles)
	return nil
}

func cmdProvision(args []string) error {
	fs := flag.NewFlagSet("provision", flag.ExitOnError)
	rate := fs.Float64("rate", 100, "mean arrivals per second")
	swing := fs.Float64("swing", 0.6, "diurnal swing in [0,1)")
	service := fs.Float64("service", 4, "mean service seconds per job at 1x speed")
	speedup := fs.Float64("speedup", 1, "per-server speedup over the reference (ASIC servers are large)")
	p99 := fs.Float64("p99", 1, "target 99th-percentile queueing wait in seconds")
	hours := fs.Float64("hours", 2, "trace horizon in hours")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g := workload.DefaultGenerator()
	g.MeanRate = *rate
	g.DiurnalSwing = *swing
	g.MeanServiceSec = *service
	jobs, err := g.Trace(*hours * units.SecondsPerHour)
	if err != nil {
		return err
	}
	r, err := workload.ProvisionForLatency(jobs, *speedup, *p99, 1_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d arrivals over %.1f h (peak %.0f/s)\n", len(jobs), *hours, g.RateAt(g.PeriodSeconds/4))
	fmt.Printf("fleet: %d servers at %gx speedup\n", r.Servers, *speedup)
	fmt.Printf("  utilization %.1f%%, mean wait %.3fs, P99 wait %.3fs, max queue %d\n",
		100*r.Utilization, r.MeanWaitSec, r.P99WaitSec, r.MaxQueue)
	return nil
}

func cmdMine(args []string) error {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	blocks := fs.Int("blocks", 8, "blocks to mine on top of genesis")
	bits := fs.Uint("bits", 0x2000ffff, "compact difficulty target")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mineOne := func(prev [32]byte, tag byte, ts uint32) (appbitcoin.Block, error) {
		var digest [32]byte
		digest[0] = tag
		b := appbitcoin.NewBlock(prev, digest, ts, uint32(*bits))
		nonce, found, err := appbitcoin.Mine(&b.Header, 0, 1<<24)
		if err != nil {
			return appbitcoin.Block{}, err
		}
		if !found {
			return appbitcoin.Block{}, fmt.Errorf("no valid nonce within budget")
		}
		b.Header.Nonce = nonce
		return b, nil
	}
	start := time.Now()
	genesis, err := mineOne([32]byte{}, 0, 1461888000)
	if err != nil {
		return err
	}
	chain, err := appbitcoin.NewChain(genesis)
	if err != nil {
		return err
	}
	gh := genesis.Hash()
	fmt.Printf("height 0: genesis %x (nonce %d)\n", gh[:6], genesis.Header.Nonce)
	prev := gh
	for i := 1; i <= *blocks; i++ {
		b, err := mineOne(prev, byte(i), uint32(1461888000+i*600))
		if err != nil {
			return err
		}
		if _, err := chain.Add(b); err != nil {
			return err
		}
		h := b.Hash()
		fmt.Printf("height %d: block %x (nonce %d)\n", i, h[:6], b.Header.Nonce)
		prev = h
	}
	fmt.Printf("chain height %d, total work %s hashes, %v elapsed\n",
		chain.Height(), chain.TotalWork().String(), time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdEconomics(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("economics", flag.ExitOnError)
	world := fs.Float64("world", 575e6, "world hashrate at deployment (GH/s)")
	growth := fs.Float64("growth", 0.3, "network growth per month (fraction)")
	days := fs.Float64("days", 540, "operating horizon in days (1.5-year ASIC life)")
	price := fs.Float64("kwh", 0.06, "electricity $/kWh")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, _, err := exploreApp(ctx, core.NewEngine(nil), "bitcoin")
	if err != nil {
		return err
	}
	opt := res.TCOOptimal
	market := appbitcoin.PaperMarket()
	miner := appbitcoin.Miner{
		HashrateGHs:       opt.Perf,
		PowerW:            opt.WallPower,
		CapitalUSD:        opt.Cost(),
		ElectricityPerKWh: *price,
	}
	p, err := market.Simulate(miner, *world, *growth, *days)
	if err != nil {
		return err
	}
	fmt.Printf("TCO-optimal server: %.0f GH/s, %.0f W, %s capital\n",
		miner.HashrateGHs, miner.PowerW, units.Money(miner.CapitalUSD))
	fmt.Printf("world %.3g GH/s growing %.0f%%/month, %g-day horizon:\n",
		*world, 100**growth, *days)
	fmt.Printf("  revenue %s, energy %s, net %s\n",
		units.Money(p.RevenueUSD), units.Money(p.EnergyCostUSD), units.Money(p.NetUSD))
	if p.PaybackDays < *days {
		fmt.Printf("  payback in %.0f days\n", p.PaybackDays)
	} else {
		fmt.Println("  never pays back within the horizon")
	}
	frac, err := market.FirstMoverAdvantage(miner, *world, *growth, *days, 180)
	if err != nil {
		return err
	}
	fmt.Printf("  deploying 6 months late keeps only %.0f%% of the revenue\n", 100*frac)
	return nil
}

func cmdCompare(ctx context.Context) error {
	fmt.Printf("%-16s %-8s %-14s %-9s %-9s %-10s %-10s %s\n",
		"application", "unit", "perf/server", "W", "$", "$/op", "W/op", "TCO/op")
	row := func(name, unit string, perf, w, cost, dpo, wpo, tco float64) {
		fmt.Printf("%-16s %-8s %-14.0f %-9.0f %-9.0f %-10.4g %-10.4g %.4g\n",
			name, unit, perf, w, cost, dpo, wpo, tco)
	}
	// One engine for all three clouds: their sweeps overlap heavily in
	// geometry, so later apps hit the thermal-plan cache.
	eng := core.NewEngine(nil)
	for _, app := range []string{"bitcoin", "litecoin", "xcode"} {
		res, unit, err := exploreApp(ctx, eng, app)
		if err != nil {
			return err
		}
		o := res.TCOOptimal
		row(app, unit, o.Perf, o.WallPower, o.Cost(), o.DollarsPerOp, o.WattsPerOp, o.TCOPerOp())
	}
	evals, err := appcnn.Explore(tco.Default())
	if err != nil {
		return err
	}
	_, _, o := appcnn.Optima(evals)
	row("cnn (DaDianNao)", "TOps/s", o.Eval.Perf, o.Eval.WallPower, o.Eval.Cost(),
		o.Eval.DollarsPerOp, o.Eval.WattsPerOp, o.TCOPerOp())
	return nil
}
