// Command asiccloudd serves ASIC Cloud design-space exploration over
// HTTP: sweeps are submitted as JSON jobs, run asynchronously on a
// bounded worker pool sharing one exploration engine, and identical
// requests are answered byte-for-byte from a result cache. See API.md
// for the endpoint reference and DESIGN.md for the job lifecycle.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asiccloud/internal/obs"
	"asiccloud/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "asiccloudd: %v\n", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("asiccloudd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 0, "concurrent sweep jobs (default 2)")
	queueDepth := fs.Int("queue-depth", 0, "max jobs queued behind the pool (default 64)")
	cacheEntries := fs.Int("cache-entries", 0, "result cache capacity (default 128, negative disables)")
	defaultTimeout := fs.Duration("default-timeout", 0, "per-job timeout when the request names none (default 2m)")
	maxTimeout := fs.Duration("max-timeout", 0, "clamp on request-supplied timeouts (default 10m)")
	grace := fs.Duration("grace", 30*time.Second, "shutdown grace before in-flight sweeps are hard-canceled")
	logLevel := fs.String("log-level", "info", "structured log threshold: debug, info, warn or error")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	// JSON log lines go to stderr, keeping stdout for the machine-read
	// "listening on" line below.
	logger := obs.NewLogger(os.Stderr, level)

	rec := obs.NewRecorder()
	obs.RegisterRuntimeMetrics(rec.Registry())
	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		Logger:         logger,
	}, rec)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// The smoke script and quickstart parse this line for the bound port,
	// so it goes to stdout and stays machine-readable.
	fmt.Printf("asiccloudd: listening on %s\n", ln.Addr())
	logger.Info("daemon started",
		"addr", ln.Addr().String(),
		"log_level", level.String())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Info("draining on signal", "signal", sig.String(), "grace", grace.String())
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain the job pool first so status endpoints stay reachable while
	// in-flight sweeps finish, then close the listener.
	if err := svc.Shutdown(ctx); err != nil {
		logger.Warn("grace expired, in-flight sweeps canceled")
	}
	if err := httpSrv.Shutdown(ctx); err != nil && err != context.DeadlineExceeded {
		return fmt.Errorf("http shutdown: %w", err)
	}
	logger.Info("daemon stopped")
	return nil
}
