// Command asiccloudd serves ASIC Cloud design-space exploration over
// HTTP: sweeps are submitted as JSON jobs, run asynchronously on a
// bounded worker pool sharing one exploration engine, and identical
// requests are answered byte-for-byte from a result cache. See API.md
// for the endpoint reference and DESIGN.md for the job lifecycle.
//
// Beyond the HTTP daemon (the default), three one-shot modes run a
// single sweep from a request file:
//
//	asiccloudd -once -request req.json [-o result.json]
//	asiccloudd -coordinate -request req.json [-pool-addr 127.0.0.1:0]
//	           [-chunk N] [-lease 10s] [-o result.json]
//	asiccloudd -worker -join HOST:PORT
//
// -once runs the sweep in-process. -coordinate partitions it into
// chunks and serves them over the cloud pool protocol to any number of
// -worker processes, merging their partial frontiers into the same
// bytes -once produces. Workers exit 0 when the coordinator drains
// them cleanly and non-zero on an unexpected disconnect.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asiccloud/internal/cloud"
	"asiccloud/internal/core"
	"asiccloud/internal/obs"
	"asiccloud/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "asiccloudd: %v\n", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("asiccloudd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 0, "concurrent sweep jobs (default 2)")
	queueDepth := fs.Int("queue-depth", 0, "max jobs queued behind the pool (default 64)")
	cacheEntries := fs.Int("cache-entries", 0, "result cache capacity (default 128, negative disables)")
	defaultTimeout := fs.Duration("default-timeout", 0, "per-job timeout when the request names none (default 2m)")
	maxTimeout := fs.Duration("max-timeout", 0, "clamp on request-supplied timeouts (default 10m)")
	grace := fs.Duration("grace", 30*time.Second, "shutdown grace before in-flight sweeps are hard-canceled")
	logLevel := fs.String("log-level", "info", "structured log threshold: debug, info, warn or error")
	workerMode := fs.Bool("worker", false, "join a coordinator's pool as a distributed sweep worker")
	join := fs.String("join", "", "coordinator pool address to join (with -worker)")
	workerID := fs.String("id", "", "worker identifier reported to the pool (default host-pid)")
	coordinate := fs.Bool("coordinate", false, "coordinate one distributed sweep: serve chunks to -worker processes")
	once := fs.Bool("once", false, "run one sweep in-process (the single-process baseline for -coordinate)")
	requestFile := fs.String("request", "", `request JSON file for -coordinate / -once ("-" reads stdin)`)
	poolAddr := fs.String("pool-addr", "127.0.0.1:0", "pool listen address (with -coordinate)")
	chunkSize := fs.Int("chunk", 0, "geometries per distributed chunk (0 picks the default)")
	lease := fs.Duration("lease", 10*time.Second, "chunk lease before requeue to the fleet (0 disables; with -coordinate)")
	outFile := fs.String("o", "", "write the result JSON here instead of stdout (with -coordinate / -once)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	modes := 0
	for _, on := range []bool{*workerMode, *coordinate, *once} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return errors.New("-worker, -coordinate and -once are mutually exclusive")
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	// JSON log lines go to stderr, keeping stdout for the machine-read
	// "listening on" line below (and for one-shot result bytes).
	logger := obs.NewLogger(os.Stderr, level)
	rec := obs.NewRecorder()

	switch {
	case *workerMode:
		return runWorker(*join, *workerID, rec, logger)
	case *coordinate:
		return runCoordinate(*requestFile, *poolAddr, *outFile, service.CoordinatorOptions{
			ChunkSize:     *chunkSize,
			LeaseDuration: *lease,
			Logger:        logger,
		}, rec)
	case *once:
		return runOnce(*requestFile, *outFile, rec, logger)
	}

	obs.RegisterRuntimeMetrics(rec.Registry())
	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		Logger:         logger,
	}, rec)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// The smoke script and quickstart parse this line for the bound port,
	// so it goes to stdout and stays machine-readable.
	fmt.Printf("asiccloudd: listening on %s\n", ln.Addr())
	logger.Info("daemon started",
		"addr", ln.Addr().String(),
		"log_level", level.String())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Info("draining on signal", "signal", sig.String(), "grace", grace.String())
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain the job pool first so status endpoints stay reachable while
	// in-flight sweeps finish, then close the listener.
	if err := svc.Shutdown(ctx); err != nil {
		logger.Warn("grace expired, in-flight sweeps canceled")
	}
	if err := httpSrv.Shutdown(ctx); err != nil && err != context.DeadlineExceeded {
		return fmt.Errorf("http shutdown: %w", err)
	}
	logger.Info("daemon stopped")
	return nil
}

// joinRetryWindow bounds how long a starting worker retries a refused
// connection — the window in which its coordinator may not be
// listening yet.
const joinRetryWindow = 30 * time.Second

// runWorker joins a coordinator's pool and evaluates sweep chunks on a
// local engine until the pool drains. A refused connection is retried
// briefly (workers often start before the coordinator binds); once
// joined, only the coordinator's explicit drained nojob is a clean
// exit — an unexpected disconnect exits non-zero.
func runWorker(join, id string, rec *obs.Recorder, logger *slog.Logger) error {
	if join == "" {
		return errors.New("-worker requires -join HOST:PORT")
	}
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eng := core.NewEngine(rec)
	eng.Log = logger
	handler := service.NewChunkHandler(eng, rec, logger)
	deadline := time.Now().Add(joinRetryWindow)
	for {
		done, err := cloud.RunWorker(ctx, join, id, handler)
		if err == nil {
			fmt.Printf("asiccloudd: worker %s drained after %d chunks\n", id, done)
			return nil
		}
		if done == 0 && errors.Is(err, syscall.ECONNREFUSED) &&
			time.Now().Before(deadline) && ctx.Err() == nil {
			logger.Debug("pool not accepting yet, retrying", "addr", join)
			time.Sleep(250 * time.Millisecond)
			continue
		}
		return err
	}
}

// runCoordinate runs one distributed sweep: bind the pool, announce
// the address for workers (and scripts) to join, and render the merged
// result.
func runCoordinate(requestFile, poolAddr, outFile string, opts service.CoordinatorOptions, rec *obs.Recorder) error {
	req, err := readRequest(requestFile)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", poolAddr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The distributed smoke script parses this line for the pool port,
	// so it goes to stdout and stays machine-readable.
	fmt.Printf("asiccloudd: coordinating on %s\n", ln.Addr())
	out, err := service.RunCoordinator(ctx, req, ln, rec, opts)
	if err != nil {
		return err
	}
	return writeResult(outFile, out)
}

// runOnce runs the sweep in-process, producing the exact bytes a
// distributed run of the same request must match.
func runOnce(requestFile, outFile string, rec *obs.Recorder, logger *slog.Logger) error {
	req, err := readRequest(requestFile)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	out, err := service.RunOnce(ctx, req, rec, logger)
	if err != nil {
		return err
	}
	return writeResult(outFile, out)
}

// readRequest loads and decodes a request file with the same strict
// field checking the HTTP daemon applies, so a request rejected by one
// front end is rejected by all of them.
func readRequest(path string) (*service.Request, error) {
	if path == "" {
		return nil, errors.New("-request FILE is required")
	}
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var req service.Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decode request %s: %w", path, err)
	}
	return &req, nil
}

// writeResult sends the rendered result JSON to the named file, or to
// stdout when no -o was given.
func writeResult(outFile string, b []byte) error {
	if outFile == "" {
		_, err := os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(outFile, b, 0o644)
}
