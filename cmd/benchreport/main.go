// Command benchreport merges `go test -bench` output into a JSON run
// report produced by `asiccloud ... -report-json`, so benchmark numbers
// (e.g. the repeated-sweep cache comparison) land in the same artifact
// as the explorer's counters and span timings. Runs made with -benchmem
// additionally land their B/op and allocs/op columns in the report
// (benchmarks_bytes_per_op, benchmarks_allocs_per_op), so allocation
// regressions on the sweep's hot path are tracked alongside latency.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkRepeatedSweep . | benchreport -into BENCH_3.json
//
// Lines that are not benchmark results pass through to stdout, so the
// command is transparent in a pipeline. Any malformed input — a result
// line whose ns/op field does not parse, a missing or unreadable report
// file, a report that is not a JSON object — aborts with a non-zero
// exit before the report file is touched, so a broken pipeline can
// never leave a partial or silently wrong artifact behind.
//
// Trajectory mode reads every BENCH_<n>.json accumulated across PRs and
// renders the perf trajectory as a table — explorer throughput plus the
// plan-cache and result-cache speedups — exiting non-zero when the
// newest report regressed explorer throughput by more than 20% against
// its predecessor, so CI catches perf cliffs mechanically:
//
//	benchreport -trajectory [dir]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// resultLine matches e.g. "BenchmarkRepeatedSweep/warm-8   30   37843554 ns/op"
// with optional -benchmem columns "14571114 B/op   146 allocs/op".
// The optional -\d+ strips the GOMAXPROCS suffix so names are stable
// across machines.
var resultLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\S+) ns/op(?:\s+(\S+) B/op\s+(\S+) allocs/op)?`)

// benchResult is one parsed result line; the memory columns are present
// only when the run used -benchmem.
type benchResult struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}

func run(argv []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	into := fs.String("into", "", "JSON report file to merge benchmark results into")
	trajectory := fs.Bool("trajectory", false,
		"render the BENCH_<n>.json perf trajectory instead of merging; non-zero exit on >20% throughput regression")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *trajectory {
		dir := "."
		if fs.NArg() > 0 {
			dir = fs.Arg(0)
		}
		return runTrajectory(dir, stdout)
	}
	if *into == "" {
		return fmt.Errorf("usage: go test -bench ... | benchreport -into report.json, or benchreport -trajectory [dir]")
	}

	results, err := parseBench(stdin, stdout)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin (did the bench run fail, or was -bench unmatched?)")
	}

	report, err := loadReport(*into)
	if err != nil {
		return err
	}
	ns := make(map[string]float64, len(results))
	bytesPer := make(map[string]float64)
	allocsPer := make(map[string]float64)
	for name, r := range results {
		ns[name] = r.nsPerOp
		if r.hasMem {
			bytesPer[name] = r.bytesPerOp
			allocsPer[name] = r.allocsPerOp
		}
	}
	report["benchmarks_ns_per_op"] = ns
	// Memory columns appear only for -benchmem runs, so their absence
	// in a report means "not measured", never "zero allocations".
	if len(bytesPer) > 0 {
		report["benchmarks_bytes_per_op"] = bytesPer
		report["benchmarks_allocs_per_op"] = allocsPer
	}

	// The headlines: how much faster a warm plan cache makes an
	// identical engine sweep, and how much faster the daemon's result
	// cache answers an identical HTTP submission.
	if s, ok := speedup(ns, "BenchmarkRepeatedSweep/cold", "BenchmarkRepeatedSweep/warm"); ok {
		report["plan_cache_speedup"] = s
	}
	if s, ok := speedup(ns, "BenchmarkServiceSweep/cold", "BenchmarkServiceSweep/cached"); ok {
		report["service_cache_speedup"] = s
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*into, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchreport: merged %d benchmark results into %s\n", len(results), *into)
	return nil
}

// parseBench scans `go test -bench` output, echoing every line to out
// and collecting result lines. A line that looks like a result but does
// not parse is an error, not a skip: silently dropping it would produce
// a report that claims the benchmark never ran.
func parseBench(in io.Reader, out io.Writer) (map[string]benchResult, error) {
	results := make(map[string]benchResult)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(out, line)
		m := resultLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed benchmark line %q: ns/op field %q: %v", line, m[2], err)
		}
		r := benchResult{nsPerOp: ns}
		if m[3] != "" {
			if r.bytesPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
				return nil, fmt.Errorf("malformed benchmark line %q: B/op field %q: %v", line, m[3], err)
			}
			if r.allocsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("malformed benchmark line %q: allocs/op field %q: %v", line, m[4], err)
			}
			r.hasMem = true
		}
		results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read stdin: %v", err)
	}
	return results, nil
}

// loadReport reads and validates the target report file.
func loadReport(path string) (map[string]any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("report file: %v (run `asiccloud ... -report-json %s` first)", err, path)
	}
	var report map[string]any
	if err := json.Unmarshal(raw, &report); err != nil {
		return nil, fmt.Errorf("report file %s is not a JSON object: %v", path, err)
	}
	if report == nil {
		return nil, fmt.Errorf("report file %s is JSON null, not an object", path)
	}
	return report, nil
}

// speedup returns numerator/denominator when both benchmarks are
// present and the denominator is positive.
func speedup(results map[string]float64, num, den string) (float64, bool) {
	n, okn := results[num]
	d, okd := results[den]
	if !okn || !okd || d <= 0 {
		return 0, false
	}
	return n / d, true
}

// benchFile matches the repository's per-PR report artifacts.
var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// regressionTolerance is the fractional explorer-throughput drop
// (newest vs its predecessor) trajectory mode tolerates before failing.
const regressionTolerance = 0.20

// trajectoryRow is one report's headline numbers; NaN-free by
// construction (absent fields stay 0 and render as "-").
type trajectoryRow struct {
	seq                 int
	command             string
	configsPerSec       float64
	planCacheSpeedup    float64
	serviceCacheSpeedup float64
}

// runTrajectory loads every BENCH_<n>.json in dir (ascending by n),
// prints the perf trajectory, and errors when the newest report's
// explorer throughput fell more than regressionTolerance below the
// previous report that measured it.
func runTrajectory(dir string, stdout io.Writer) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("trajectory dir: %v", err)
	}
	var rows []trajectoryRow
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		seq, err := strconv.Atoi(m[1])
		if err != nil {
			continue // unreachable given the \d+ match; belt and braces
		}
		report, err := loadReport(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("%s: %v", e.Name(), err)
		}
		row := trajectoryRow{seq: seq}
		row.command, _ = report["command"].(string)
		if explore, ok := report["explore"].(map[string]any); ok {
			row.configsPerSec, _ = explore["configs_per_sec"].(float64)
		}
		row.planCacheSpeedup, _ = report["plan_cache_speedup"].(float64)
		row.serviceCacheSpeedup, _ = report["service_cache_speedup"].(float64)
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return fmt.Errorf("no BENCH_<n>.json files in %s", dir)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].seq < rows[j].seq })

	cell := func(v float64, format string) string {
		if v <= 0 {
			return "-"
		}
		return fmt.Sprintf(format, v)
	}
	fmt.Fprintf(stdout, "%-10s %14s %12s %12s  %s\n",
		"bench", "configs/sec", "plan-cache", "result-cache", "command")
	for _, r := range rows {
		fmt.Fprintf(stdout, "%-10s %14s %12s %12s  %s\n",
			fmt.Sprintf("BENCH_%d", r.seq),
			cell(r.configsPerSec, "%.0f"),
			cell(r.planCacheSpeedup, "%.2fx"),
			cell(r.serviceCacheSpeedup, "%.2fx"),
			r.command)
	}

	// Regression gate: compare the two newest reports that measured
	// explorer throughput (not every report runs a sweep).
	var measured []trajectoryRow
	for _, r := range rows {
		if r.configsPerSec > 0 {
			measured = append(measured, r)
		}
	}
	if len(measured) < 2 {
		return nil
	}
	prev, last := measured[len(measured)-2], measured[len(measured)-1]
	drop := 1 - last.configsPerSec/prev.configsPerSec
	if drop > regressionTolerance {
		return fmt.Errorf(
			"throughput regression: BENCH_%d explores %.0f configs/sec, %.0f%% below BENCH_%d's %.0f (tolerance %.0f%%)",
			last.seq, last.configsPerSec, drop*100, prev.seq, prev.configsPerSec, regressionTolerance*100)
	}
	fmt.Fprintf(stdout, "throughput: BENCH_%d vs BENCH_%d within tolerance (%+.1f%%)\n",
		last.seq, prev.seq, -drop*100)
	return nil
}
