// Command benchreport merges `go test -bench` output into a JSON run
// report produced by `asiccloud ... -report-json`, so benchmark numbers
// (e.g. the repeated-sweep cache comparison) land in the same artifact
// as the explorer's counters and span timings.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkRepeatedSweep . | benchreport -into BENCH_3.json
//
// Lines that are not benchmark results pass through to stdout, so the
// command is transparent in a pipeline. Any malformed input — a result
// line whose ns/op field does not parse, a missing or unreadable report
// file, a report that is not a JSON object — aborts with a non-zero
// exit before the report file is touched, so a broken pipeline can
// never leave a partial or silently wrong artifact behind.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// resultLine matches e.g. "BenchmarkRepeatedSweep/warm-8   30   37843554 ns/op".
// The optional -\d+ strips the GOMAXPROCS suffix so names are stable
// across machines.
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\S+) ns/op`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}

func run(argv []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	into := fs.String("into", "", "JSON report file to merge benchmark results into")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *into == "" {
		return fmt.Errorf("usage: go test -bench ... | benchreport -into report.json")
	}

	results, err := parseBench(stdin, stdout)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin (did the bench run fail, or was -bench unmatched?)")
	}

	report, err := loadReport(*into)
	if err != nil {
		return err
	}
	report["benchmarks_ns_per_op"] = results

	// The headlines: how much faster a warm plan cache makes an
	// identical engine sweep, and how much faster the daemon's result
	// cache answers an identical HTTP submission.
	if s, ok := speedup(results, "BenchmarkRepeatedSweep/cold", "BenchmarkRepeatedSweep/warm"); ok {
		report["plan_cache_speedup"] = s
	}
	if s, ok := speedup(results, "BenchmarkServiceSweep/cold", "BenchmarkServiceSweep/cached"); ok {
		report["service_cache_speedup"] = s
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*into, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchreport: merged %d benchmark results into %s\n", len(results), *into)
	return nil
}

// parseBench scans `go test -bench` output, echoing every line to out
// and collecting result lines. A line that looks like a result but does
// not parse is an error, not a skip: silently dropping it would produce
// a report that claims the benchmark never ran.
func parseBench(in io.Reader, out io.Writer) (map[string]float64, error) {
	results := make(map[string]float64)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(out, line)
		m := resultLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed benchmark line %q: ns/op field %q: %v", line, m[2], err)
		}
		results[m[1]] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read stdin: %v", err)
	}
	return results, nil
}

// loadReport reads and validates the target report file.
func loadReport(path string) (map[string]any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("report file: %v (run `asiccloud ... -report-json %s` first)", err, path)
	}
	var report map[string]any
	if err := json.Unmarshal(raw, &report); err != nil {
		return nil, fmt.Errorf("report file %s is not a JSON object: %v", path, err)
	}
	if report == nil {
		return nil, fmt.Errorf("report file %s is JSON null, not an object", path)
	}
	return report, nil
}

// speedup returns numerator/denominator when both benchmarks are
// present and the denominator is positive.
func speedup(results map[string]float64, num, den string) (float64, bool) {
	n, okn := results[num]
	d, okd := results[den]
	if !okn || !okd || d <= 0 {
		return 0, false
	}
	return n / d, true
}
