// Command benchreport merges `go test -bench` output into a JSON run
// report produced by `asiccloud ... -report-json`, so benchmark numbers
// (e.g. the repeated-sweep cache comparison) land in the same artifact
// as the explorer's counters and span timings.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkRepeatedSweep . | benchreport -into BENCH_3.json
//
// Lines that are not benchmark results pass through to stdout, so the
// command is transparent in a pipeline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
)

// resultLine matches e.g. "BenchmarkRepeatedSweep/warm-8   30   37843554 ns/op".
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	into := flag.String("into", "", "JSON report file to merge benchmark results into")
	flag.Parse()
	if *into == "" {
		log.Fatal("usage: go test -bench ... | benchreport -into report.json")
	}

	results := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if m := resultLine.FindStringSubmatch(line); m != nil {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			results[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark result lines on stdin")
	}

	raw, err := os.ReadFile(*into)
	if err != nil {
		log.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal(raw, &report); err != nil {
		log.Fatalf("%s: %v", *into, err)
	}
	report["benchmarks_ns_per_op"] = results

	// The headline of the repeated-sweep benchmark: how much faster a
	// warm plan cache makes an identical second sweep.
	cold, okc := results["BenchmarkRepeatedSweep/cold"]
	warm, okw := results["BenchmarkRepeatedSweep/warm"]
	if okc && okw && warm > 0 {
		report["plan_cache_speedup"] = cold / warm
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*into, append(out, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("merged %d benchmark results into %s", len(results), *into)
}
