package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport seeds a minimal valid run report and returns its path.
func writeReport(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const benchOutput = `goos: linux
BenchmarkRepeatedSweep/cold-8         	      10	 40000000 ns/op
BenchmarkRepeatedSweep/warm-8         	     100	 10000000 ns/op
BenchmarkServiceSweep/cold-8          	      10	 50000000 ns/op
BenchmarkServiceSweep/cached-8        	   10000	   100000 ns/op
PASS
`

func TestMergeAndSpeedups(t *testing.T) {
	path := writeReport(t, `{"command":"design"}`)
	var out strings.Builder
	if err := run([]string{"-into", path}, strings.NewReader(benchOutput), &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	bench, ok := report["benchmarks_ns_per_op"].(map[string]any)
	if !ok || len(bench) != 4 {
		t.Fatalf("benchmarks_ns_per_op = %v", report["benchmarks_ns_per_op"])
	}
	if got := report["plan_cache_speedup"].(float64); got != 4.0 {
		t.Fatalf("plan_cache_speedup = %v, want 4", got)
	}
	if got := report["service_cache_speedup"].(float64); got != 500.0 {
		t.Fatalf("service_cache_speedup = %v, want 500", got)
	}
	if report["command"] != "design" {
		t.Fatal("existing report fields were not preserved")
	}
	// Bench lines pass through for the pipeline.
	if !strings.Contains(out.String(), "BenchmarkRepeatedSweep/cold-8") {
		t.Fatal("benchmark lines were not echoed to stdout")
	}
}

func TestErrorPaths(t *testing.T) {
	valid := `{"command":"design"}`
	for name, tc := range map[string]struct {
		argv   []string
		stdin  string
		report string // "" = do not create the file
		want   string // substring of the error
	}{
		"missing -into":    {argv: nil, stdin: benchOutput, report: valid, want: "usage"},
		"no bench lines":   {stdin: "goos: linux\nPASS\n", report: valid, want: "no benchmark result lines"},
		"empty stdin":      {stdin: "", report: valid, want: "no benchmark result lines"},
		"malformed ns/op":  {stdin: "BenchmarkX-8 10 1e999e9 ns/op\n", report: valid, want: "malformed benchmark line"},
		"missing report":   {stdin: benchOutput, report: "", want: "report file"},
		"report not json":  {stdin: benchOutput, report: "{broken", want: "not a JSON object"},
		"report is array":  {stdin: benchOutput, report: "[1,2]", want: "not a JSON object"},
		"report json null": {stdin: benchOutput, report: "null", want: "JSON null"},
	} {
		t.Run(name, func(t *testing.T) {
			argv := tc.argv
			var path string
			if tc.report != "" {
				path = writeReport(t, tc.report)
			} else {
				path = filepath.Join(t.TempDir(), "absent.json")
			}
			if name != "missing -into" {
				argv = []string{"-into", path}
			}
			var out strings.Builder
			err := run(argv, strings.NewReader(tc.stdin), &out)
			if err == nil {
				t.Fatal("run succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// The report file must be untouched on every error.
			if tc.report != "" {
				raw, _ := os.ReadFile(path)
				if string(raw) != tc.report {
					t.Fatal("report file was modified despite the error")
				}
			}
		})
	}
}

func TestBenchmemColumns(t *testing.T) {
	path := writeReport(t, `{"command":"design"}`)
	in := `BenchmarkRepeatedSweep/cold-8   20   64589258 ns/op   15957676 B/op   13980 allocs/op
BenchmarkRepeatedSweep/warm-8   20   20938381 ns/op   14571114 B/op   146 allocs/op
BenchmarkFig1NetworkRamp-8      50    1000000 ns/op
`
	var out strings.Builder
	if err := run([]string{"-into", path}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	var report map[string]any
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	allocs, ok := report["benchmarks_allocs_per_op"].(map[string]any)
	if !ok {
		t.Fatalf("benchmarks_allocs_per_op = %v", report["benchmarks_allocs_per_op"])
	}
	if got := allocs["BenchmarkRepeatedSweep/warm"].(float64); got != 146 {
		t.Fatalf("warm allocs/op = %v, want 146", got)
	}
	// A result without -benchmem columns contributes ns/op only.
	if _, ok := allocs["BenchmarkFig1NetworkRamp"]; ok {
		t.Fatal("allocs/op reported for a benchmark that never measured memory")
	}
	bytesPer, ok := report["benchmarks_bytes_per_op"].(map[string]any)
	if !ok || bytesPer["BenchmarkRepeatedSweep/cold"].(float64) != 15957676 {
		t.Fatalf("benchmarks_bytes_per_op = %v", report["benchmarks_bytes_per_op"])
	}
	ns, _ := report["benchmarks_ns_per_op"].(map[string]any)
	if len(ns) != 3 {
		t.Fatalf("benchmarks_ns_per_op should keep all 3 results, got %v", ns)
	}
}

func TestMemColumnsAbsentWithoutBenchmem(t *testing.T) {
	path := writeReport(t, `{}`)
	var out strings.Builder
	if err := run([]string{"-into", path}, strings.NewReader(benchOutput), &out); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	var report map[string]any
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if _, ok := report["benchmarks_bytes_per_op"]; ok {
		t.Fatal("bytes/op emitted for a run without -benchmem")
	}
	if _, ok := report["benchmarks_allocs_per_op"]; ok {
		t.Fatal("allocs/op emitted for a run without -benchmem")
	}
}

func TestSpeedupAbsentWhenBenchMissing(t *testing.T) {
	path := writeReport(t, `{}`)
	in := "BenchmarkRepeatedSweep/cold-8 10 40000000 ns/op\n"
	var out strings.Builder
	if err := run([]string{"-into", path}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	var report map[string]any
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if _, ok := report["plan_cache_speedup"]; ok {
		t.Fatal("plan_cache_speedup emitted although the warm benchmark is missing")
	}
}

// writeBench drops a BENCH_<n>.json into dir.
func writeBench(t *testing.T, dir string, seq int, content string) {
	t.Helper()
	name := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", seq))
	if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTrajectoryTable(t *testing.T) {
	dir := t.TempDir()
	// Written out of numeric order, and with 10 after 2 to prove the
	// sort is numeric rather than lexicographic.
	writeBench(t, dir, 10, `{"command":"design","explore":{"configs_per_sec":120000},"service_cache_speedup":80.5}`)
	writeBench(t, dir, 2, `{"command":"design","explore":{"configs_per_sec":100000},"plan_cache_speedup":2.5}`)
	writeBench(t, dir, 1, `{"command":"design","explore":{"configs_per_sec":90000}}`)
	var out strings.Builder
	if err := run([]string{"-trajectory", dir}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	// Header + three rows + tolerance verdict.
	if len(lines) != 5 {
		t.Fatalf("trajectory output = %d lines:\n%s", len(lines), got)
	}
	for i, want := range []string{"BENCH_1", "BENCH_2", "BENCH_10"} {
		if !strings.HasPrefix(lines[i+1], want+" ") {
			t.Errorf("row %d = %q, want %s first (numeric sort)", i, lines[i+1], want)
		}
	}
	if !strings.Contains(lines[2], "2.50x") {
		t.Errorf("plan-cache speedup missing from BENCH_2 row: %q", lines[2])
	}
	if !strings.Contains(lines[3], "80.50x") {
		t.Errorf("result-cache speedup missing from BENCH_10 row: %q", lines[3])
	}
	// Absent measurements render as "-", never 0.
	if !strings.Contains(lines[1], "-") {
		t.Errorf("absent speedups should render as -: %q", lines[1])
	}
	if !strings.Contains(got, "within tolerance") {
		t.Errorf("improving trajectory should pass the gate:\n%s", got)
	}
}

func TestTrajectoryRegressionGate(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 1, `{"command":"design","explore":{"configs_per_sec":100000}}`)
	// 30% drop: over the 20% tolerance.
	writeBench(t, dir, 2, `{"command":"design","explore":{"configs_per_sec":70000}}`)
	var out strings.Builder
	err := run([]string{"-trajectory", dir}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatal("30% throughput drop passed the regression gate")
	}
	if !strings.Contains(err.Error(), "throughput regression") {
		t.Fatalf("error %q does not name the regression", err)
	}

	// Exactly at tolerance passes: the gate is strictly-greater-than.
	writeBench(t, dir, 2, `{"command":"design","explore":{"configs_per_sec":80000}}`)
	out.Reset()
	if err := run([]string{"-trajectory", dir}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("20%% drop should be within tolerance: %v", err)
	}
}

func TestTrajectorySkipsUnmeasuredReports(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 1, `{"command":"design","explore":{"configs_per_sec":100000}}`)
	// A report with no sweep (e.g. a poolsim run) must not read as a
	// drop to zero.
	writeBench(t, dir, 2, `{"command":"poolsim"}`)
	writeBench(t, dir, 3, `{"command":"design","explore":{"configs_per_sec":95000}}`)
	var out strings.Builder
	if err := run([]string{"-trajectory", dir}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("unmeasured report broke the gate: %v", err)
	}
	if !strings.Contains(out.String(), "BENCH_3 vs BENCH_1") {
		t.Errorf("gate should compare the two measured reports:\n%s", out.String())
	}
}

func TestTrajectoryErrors(t *testing.T) {
	empty := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-trajectory", empty}, strings.NewReader(""), &out); err == nil ||
		!strings.Contains(err.Error(), "no BENCH_") {
		t.Fatalf("empty dir error = %v", err)
	}
	bad := t.TempDir()
	writeBench(t, bad, 1, `{broken`)
	if err := run([]string{"-trajectory", bad}, strings.NewReader(""), &out); err == nil ||
		!strings.Contains(err.Error(), "BENCH_1.json") {
		t.Fatalf("broken report error = %v", err)
	}
}
