// Command paperfigs regenerates every table and figure of "ASIC Clouds:
// Specializing the Datacenter" (ISCA 2016) into a results directory, as
// aligned text (.txt) and CSV (.csv) files, and prints a summary.
//
// Usage:
//
//	paperfigs [-out results] [-only fig12,table3]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"asiccloud/internal/figures"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")
	out := flag.String("out", "results", "output directory")
	only := flag.String("only", "", "comma-separated artifact ids to regenerate (default all)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}

	start := time.Now()
	all, err := figures.All()
	if err != nil {
		log.Fatal(err)
	}
	ext, err := figures.Extensions()
	if err != nil {
		log.Fatal(err)
	}
	all = append(all, ext...)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	written := 0
	for _, a := range all {
		if len(want) > 0 && !want[a.ID] {
			continue
		}
		txt := filepath.Join(*out, a.ID+".txt")
		if err := os.WriteFile(txt, []byte(a.Text), 0o644); err != nil {
			log.Fatal(err)
		}
		csv := filepath.Join(*out, a.ID+".csv")
		if err := os.WriteFile(csv, []byte(a.CSV), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %-60s %4d rows  -> %s\n", a.ID, a.Title, len(a.Rows)-1, txt)
		written++
	}
	if written == 0 {
		log.Fatalf("no artifacts matched -only=%q", *only)
	}
	fmt.Printf("regenerated %d artifacts in %v\n", written, time.Since(start).Round(time.Millisecond))
}
