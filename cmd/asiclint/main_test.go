package main

import (
	"bytes"
	"strings"
	"testing"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/suite"
)

func TestUnknownAnalyzerExitsTwoListingNames(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-analyzers", "nosuch"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr does not name the bad analyzer: %s", msg)
	}
	for _, a := range suite.Analyzers() {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("stderr does not list available analyzer %s: %s", a.Name, msg)
		}
	}
}

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-list"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	for _, a := range suite.Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output is missing %s", a.Name)
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestFilterByDiffFallsBackWithoutGit pins the -diff degradation path:
// when git cannot run, every diagnostic is kept (whole-module mode) and
// the degradation is announced on stderr rather than failing the run.
func TestFilterByDiffFallsBackWithoutGit(t *testing.T) {
	t.Setenv("PATH", t.TempDir()) // no git binary findable
	diags := []analysis.Diagnostic{{Analyzer: "x", Message: "m"}}
	var stderr bytes.Buffer
	got, err := filterByDiff(diags, t.TempDir(), "HEAD", &stderr)
	if err != nil {
		t.Fatalf("filterByDiff without git: %v", err)
	}
	if len(got) != len(diags) {
		t.Fatalf("fallback dropped diagnostics: got %d, want %d", len(got), len(diags))
	}
	if !strings.Contains(stderr.String(), "reporting the whole module") {
		t.Errorf("fallback not announced on stderr: %s", stderr.String())
	}
}
