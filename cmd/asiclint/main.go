// Command asiclint runs the repository's domain-aware static-analysis
// suite: unit-conversion discipline (unitconv), float-comparison hygiene
// (floatcmp), error propagation (droppederr), unit documentation
// (unitdoc), context discipline (ctxflow), goroutine cancellation
// (goroleak), locks held across blocking operations (lockheld),
// unit-mixing arithmetic (unitflow), hot-path allocation budgets
// (hotalloc), span lifecycle on all CFG paths (spanend), observability
// naming conventions (obskeys), nondeterministic data reaching
// serialized output (detflow), concurrent fan-in emitted without a
// canonical order (foldorder) and canonical-hash schema drift against
// the committed fingerprint (wirehash). Most are dataflow-aware, built
// on the control-flow graphs and call graph of internal/analysis/cfg;
// hotalloc, detflow and foldorder are interprocedural, propagating
// per-function summaries (allocation counts, taint flows) bounded by
// call depth. It is stdlib-only and offline — packages are parsed and
// type-checked by internal/analysis without external tooling.
//
// Usage:
//
//	asiclint [-json [-group]] [-analyzers a,b] [-diff ref] [-list] [patterns ...]
//
// Patterns are directories, optionally ending in /... (default ./...).
// With -diff, whole packages are still loaded and analyzed (dataflow
// facts need complete packages) but only diagnostics in .go files that
// changed versus the given git ref — committed, staged, unstaged or
// untracked — are reported. When git is missing or the lint root is not
// a git work tree, -diff degrades to whole-module reporting with a
// warning on stderr rather than failing. Exit status: 0 clean, 1
// diagnostics reported, 2 usage or load error. Suppress a finding with
// a trailing or immediately preceding "//lint:ignore analyzer reason"
// comment.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("asiclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	diffRef := fs.String("diff", "", "only report diagnostics in files changed since this git ref")
	group := fs.Bool("group", false, "with -json, bucket diagnostics by analyzer (fix-list form)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: asiclint [-json [-group]] [-analyzers a,b] [-diff ref] [-list] [patterns ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *names != "" {
		picked, unknown := suite.ByName(strings.Split(*names, ","))
		if unknown != "" {
			available := make([]string, len(analyzers))
			for i, a := range analyzers {
				available[i] = a.Name
			}
			fmt.Fprintf(stderr, "asiclint: unknown analyzer %q; available: %s\n",
				unknown, strings.Join(available, ", "))
			return 2
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "asiclint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "asiclint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "asiclint:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "asiclint:", err)
		return 2
	}
	if *diffRef != "" {
		diags, err = filterByDiff(diags, cwd, *diffRef, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "asiclint:", err)
			return 2
		}
	}
	if *jsonOut {
		write := analysis.WriteJSON
		if *group {
			write = analysis.WriteGroupedJSON
		}
		if err := write(stdout, diags, cwd); err != nil {
			fmt.Fprintln(stderr, "asiclint:", err)
			return 2
		}
	} else if err := analysis.WriteText(stdout, diags, cwd); err != nil {
		fmt.Fprintln(stderr, "asiclint:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// filterByDiff narrows diags to files changed since ref. When git is
// missing, or the lint root is not a work tree (tarball checkouts,
// hermetic CI sandboxes), it degrades to whole-module reporting with a
// warning: strictly more findings than the filtered run, same exit
// semantics.
func filterByDiff(diags []analysis.Diagnostic, cwd, ref string, stderr io.Writer) ([]analysis.Diagnostic, error) {
	changed, err := analysis.ChangedFiles(cwd, ref)
	switch {
	case errors.Is(err, analysis.ErrGitUnavailable):
		fmt.Fprintf(stderr, "asiclint: -diff %s: %v; reporting the whole module\n", ref, err)
		return diags, nil
	case err != nil:
		return nil, err
	}
	return analysis.FilterFiles(diags, changed), nil
}
