// Command asiclint runs the repository's domain-aware static-analysis
// suite: unit-conversion discipline (unitconv), float-comparison hygiene
// (floatcmp), error propagation (droppederr), unit documentation
// (unitdoc), context discipline (ctxflow), goroutine cancellation
// (goroleak), locks held across blocking operations (lockheld),
// unit-mixing arithmetic (unitflow), hot-path allocation budgets
// (hotalloc), span lifecycle on all CFG paths (spanend) and
// observability naming conventions (obskeys). Most are dataflow-aware,
// built on the control-flow graphs and call graph of
// internal/analysis/cfg; hotalloc is interprocedural, propagating
// per-function allocation summaries from //asic:hotpath roots. It is
// stdlib-only and offline — packages are parsed and type-checked by
// internal/analysis without external tooling.
//
// Usage:
//
//	asiclint [-json [-group]] [-analyzers a,b] [-diff ref] [-list] [patterns ...]
//
// Patterns are directories, optionally ending in /... (default ./...).
// With -diff, whole packages are still loaded and analyzed (dataflow
// facts need complete packages) but only diagnostics in .go files that
// changed versus the given git ref — committed, staged, unstaged or
// untracked — are reported. When git is missing or the lint root is not
// a git work tree, -diff degrades to whole-module reporting with a
// warning on stderr rather than failing. Exit status: 0 clean, 1
// diagnostics reported, 2 usage or load error. Suppress a finding with
// a trailing or immediately preceding "//lint:ignore analyzer reason"
// comment.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/suite"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	diffRef := flag.String("diff", "", "only report diagnostics in files changed since this git ref")
	group := flag.Bool("group", false, "with -json, bucket diagnostics by analyzer (fix-list form)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: asiclint [-json [-group]] [-analyzers a,b] [-diff ref] [-list] [patterns ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *names != "" {
		picked, unknown := suite.ByName(strings.Split(*names, ","))
		if unknown != "" {
			fmt.Fprintf(os.Stderr, "asiclint: unknown analyzer %q\n", unknown)
			return 2
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asiclint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asiclint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asiclint:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asiclint:", err)
		return 2
	}
	if *diffRef != "" {
		changed, err := analysis.ChangedFiles(cwd, *diffRef)
		switch {
		case errors.Is(err, analysis.ErrGitUnavailable):
			// No git, or not a work tree (tarball checkouts, hermetic CI
			// sandboxes). Reporting everything is the safe direction:
			// strictly more findings than the filtered run, same exit
			// semantics.
			fmt.Fprintf(os.Stderr, "asiclint: -diff %s: %v; reporting the whole module\n", *diffRef, err)
		case err != nil:
			fmt.Fprintln(os.Stderr, "asiclint:", err)
			return 2
		default:
			diags = analysis.FilterFiles(diags, changed)
		}
	}
	if *jsonOut {
		write := analysis.WriteJSON
		if *group {
			write = analysis.WriteGroupedJSON
		}
		if err := write(os.Stdout, diags, cwd); err != nil {
			fmt.Fprintln(os.Stderr, "asiclint:", err)
			return 2
		}
	} else if err := analysis.WriteText(os.Stdout, diags, cwd); err != nil {
		fmt.Fprintln(os.Stderr, "asiclint:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
