// Command poolsim demonstrates the scale-out layer of an ASIC Cloud: a
// TCP pool server distributing Bitcoin nonce-range jobs to a fleet of
// worker processes (here goroutines) running the repository's own
// SHA-256 mining core, with difficulty low enough to find shares on a
// laptop. This is the distributed pattern the paper describes: "Machines
// on the network request work to do from a third-party pool server."
//
// Usage:
//
//	poolsim [-workers 4] [-jobs 64] [-range 4096] [-bits 0x2000ffff]
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"asiccloud/internal/apps/bitcoin"
	"asiccloud/internal/cloud"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("poolsim: ")
	workers := flag.Int("workers", 4, "worker count")
	jobs := flag.Int("jobs", 64, "nonce-range jobs to distribute")
	rangeSize := flag.Uint64("range", 4096, "nonces per job")
	bits := flag.Uint("bits", 0x2000ffff, "compact difficulty target")
	flag.Parse()

	header := bitcoin.Header{
		Version: 2,
		Time:    uint32(time.Now().Unix()),
		Bits:    uint32(*bits),
	}
	diff, err := bitcoin.Difficulty(header.Bits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mining at difficulty %.3g, %d jobs of %d nonces across %d workers\n",
		diff, *jobs, *rangeSize, *workers)

	jobList := make([]cloud.Job, *jobs)
	for i := range jobList {
		payload := make([]byte, 4)
		binary.LittleEndian.PutUint32(payload, uint32(uint64(i)*(*rangeSize)))
		jobList[i] = cloud.Job{ID: uint64(i + 1), Payload: payload}
	}
	pool := cloud.NewPool(jobList)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := pool.Serve(ctx, l); err != nil {
			log.Print(err)
		}
	}()
	fmt.Println("pool listening on", l.Addr())

	handler := func(j cloud.Job) ([]byte, error) {
		start := binary.LittleEndian.Uint32(j.Payload)
		h := header
		nonce, found, err := bitcoin.Mine(&h, start, *rangeSize)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, errors.New("range exhausted without a share")
		}
		out := make([]byte, 4)
		binary.LittleEndian.PutUint32(out, nonce)
		return out, nil
	}

	begin := time.Now()
	total, err := cloud.RunFleet(ctx, l.Addr().String(), "miner", *workers, handler)
	if err != nil {
		log.Print(err)
	}
	elapsed := time.Since(begin)
	fmt.Printf("fleet of %d miners processed %d jobs\n", *workers, total)

	s := pool.Stats()
	totalHashes := float64(*jobs) * float64(*rangeSize)
	fmt.Printf("\n%d shares found, %d dry ranges in %v (%.2f MH/s across the fleet)\n",
		s.JobsDone, s.JobsFailed, elapsed.Round(time.Millisecond),
		totalHashes/elapsed.Seconds()/1e6)

	// Verify every share.
	verified := 0
	for {
		select {
		case r := <-pool.Results():
			if r.Err != "" {
				continue
			}
			h := header
			h.Nonce = binary.LittleEndian.Uint32(r.Output)
			ok, err := bitcoin.CheckProofOfWork(&h)
			if err != nil || !ok {
				log.Fatalf("share from %s does not verify", r.Worker)
			}
			verified++
		default:
			fmt.Printf("%d shares verified against the target\n", verified)
			return
		}
	}
}
