// Command poolsim demonstrates the scale-out layer of an ASIC Cloud: a
// TCP pool server distributing Bitcoin nonce-range jobs to a fleet of
// worker processes (here goroutines) running the repository's own
// SHA-256 mining core, with difficulty low enough to find shares on a
// laptop. This is the distributed pattern the paper describes: "Machines
// on the network request work to do from a third-party pool server."
//
// Usage:
//
//	poolsim [-workers 4] [-jobs 64] [-range 4096] [-bits 0x2000ffff]
//	        [-metrics-addr :9090] [-trace] [-cpuprofile cpu.out]
//	        [-report-json report.json] [-lease 5s]
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"runtime/pprof"
	"time"

	"asiccloud/internal/apps/bitcoin"
	"asiccloud/internal/cloud"
	"asiccloud/internal/units"
	"asiccloud/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("poolsim: ")
	workers := flag.Int("workers", 4, "worker count")
	jobs := flag.Int("jobs", 64, "nonce-range jobs to distribute")
	rangeSize := flag.Uint64("range", 4096, "nonces per job")
	bits := flag.Uint("bits", 0x2000ffff, "compact difficulty target")
	lease := flag.Duration("lease", 5*time.Second, "job lease before requeue (0 disables)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve Prometheus /metrics, expvar and pprof on this address (e.g. :9090)")
	trace := flag.Bool("trace", false, "print the span trace with the end-of-run report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	reportJSON := flag.String("report-json", "", "write the structured run report as JSON to this file")
	logLevel := flag.String("log-level", "warn",
		"pool event log threshold (debug, info, warn, error); JSON lines on stderr")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		log.Fatalf("bad -log-level %q: %v", *logLevel, err)
	}
	logger := obs.NewLogger(os.Stderr, level)

	var rec *obs.Recorder
	if *metricsAddr != "" || *trace || *cpuprofile != "" || *reportJSON != "" {
		rec = obs.NewRecorder()
	}
	if *metricsAddr != "" {
		_, addr, err := obs.Serve(*metricsAddr, rec.Registry())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", addr)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	header := bitcoin.Header{
		Version: 2,
		Time:    uint32(time.Now().Unix()),
		Bits:    uint32(*bits),
	}
	diff, err := bitcoin.Difficulty(header.Bits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mining at difficulty %.3g, %d jobs of %d nonces across %d workers\n",
		diff, *jobs, *rangeSize, *workers)

	// The run's root span doubles as the trace every distributed job is
	// stamped with, so worker-side tooling can join the coordinator's
	// trace across the TCP hop.
	rootSpan := rec.Span("poolsim")
	jobList := make([]cloud.Job, *jobs)
	for i := range jobList {
		payload := make([]byte, 4)
		binary.LittleEndian.PutUint32(payload, uint32(uint64(i)*(*rangeSize)))
		jobList[i] = cloud.Job{
			ID:          uint64(i + 1),
			Payload:     payload,
			Traceparent: rootSpan.Traceparent(),
		}
	}
	pool := cloud.NewPool(jobList)
	pool.Instrument(rec)
	pool.SetLogger(logger)
	if *lease > 0 {
		pool.SetLeaseDuration(*lease)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := pool.Serve(ctx, l); err != nil {
			log.Print(err)
		}
	}()
	fmt.Println("pool listening on", l.Addr())

	handler := func(j cloud.Job) ([]byte, error) {
		start := binary.LittleEndian.Uint32(j.Payload)
		h := header
		nonce, found, err := bitcoin.Mine(&h, start, *rangeSize)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, errors.New("range exhausted without a share")
		}
		out := make([]byte, 4)
		binary.LittleEndian.PutUint32(out, nonce)
		return out, nil
	}

	begin := time.Now()
	// The job list is complete before the fleet starts, so the pool can
	// be closed up front: Results will deliver every recorded result
	// and close once the last job resolves.
	pool.Close()
	fleetSpan := rootSpan.Child("fleet")
	total, err := cloud.RunFleet(ctx, l.Addr().String(), "miner", *workers, handler)
	if err != nil {
		log.Print(err)
	}
	fleetSpan.End()
	elapsed := time.Since(begin)
	fmt.Printf("fleet of %d miners processed %d jobs\n", *workers, total)

	s := pool.Stats()
	totalHashes := float64(*jobs) * float64(*rangeSize)
	fmt.Printf("\n%d shares found, %d dry ranges in %v (%.2f MH/s across the fleet)\n",
		s.JobsDone, s.JobsFailed, elapsed.Round(time.Millisecond),
		units.HsToMHs(totalHashes/elapsed.Seconds()))

	// Verify every share. The pool was closed before the fleet ran, so
	// Results delivers each recorded result losslessly and closes once
	// the last job resolved — no drop-on-full, no guessing when the
	// stream is done.
	verifySpan := rootSpan.Child("verify_shares")
	verified := 0
	for r := range pool.Results() {
		if r.Err != "" {
			continue
		}
		h := header
		h.Nonce = binary.LittleEndian.Uint32(r.Output)
		ok, err := bitcoin.CheckProofOfWork(&h)
		if err != nil || !ok {
			log.Fatalf("share from %s does not verify", r.Worker)
		}
		verified++
	}
	fmt.Printf("%d shares verified against the target\n", verified)
	verifySpan.End()
	rootSpan.End()

	if rec != nil {
		report := obs.NewReport("poolsim", rec)
		if *trace {
			fmt.Fprintln(os.Stderr)
			fmt.Fprint(os.Stderr, rec.TraceTree())
		}
		fmt.Fprintln(os.Stderr)
		fmt.Fprint(os.Stderr, report.Text())
		if *reportJSON != "" {
			if err := report.WriteJSONFile(*reportJSON); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "run report written to %s\n", *reportJSON)
		}
	}
}
