// Bitcoin ASIC Cloud end to end: mine real blocks with the repository's
// own SHA-256 core, replay the global network's difficulty ramp
// (Figure 1), then design the cloud that would serve it (Table 3).
//
//	go run ./examples/bitcoin
package main

import (
	"fmt"
	"log"
	"time"

	"asiccloud"
	"asiccloud/internal/apps/bitcoin"
	"asiccloud/internal/units"
)

func main() {
	log.SetFlags(0)

	// --- 1. The computation itself: double-SHA256 proof of work. ------
	header := bitcoin.Header{
		Version: 2,
		Time:    uint32(time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC).Unix()),
		Bits:    0x2000ffff, // demo difficulty: ~256 hashes per share
	}
	start := time.Now()
	const attempts = 1 << 16
	nonce, found, err := bitcoin.Mine(&header, 0, attempts)
	if err != nil {
		log.Fatal(err)
	}
	rate := float64(attempts) / time.Since(start).Seconds()
	if found {
		header.Nonce = nonce
		hash := header.Hash()
		fmt.Printf("mined a share: nonce %d, hash %x...\n", nonce, hash[28:])
	}
	fmt.Printf("this machine's software hashrate: %.2f MH/s\n\n", units.HsToMHs(rate))

	// --- 2. The network that motivates the cloud (Figure 1). ----------
	samples, err := bitcoin.SimulateNetwork(
		bitcoin.HistoricalGenerations(), bitcoin.DefaultNetworkParams(), 6.9)
	if err != nil {
		log.Fatal(err)
	}
	last := samples[len(samples)-1]
	fmt.Printf("simulated network after %.1f years: difficulty x%.3g, %.0f million GH/s\n",
		last.Years, last.Difficulty, last.HashrateGH/units.Million)
	fmt.Printf("(the paper reports a 50-billion-fold ramp to ~575 million GH/s)\n\n")

	// --- 3. The ASIC Cloud that serves it (Table 3). -------------------
	result, err := asiccloud.Explore(asiccloud.Sweep{
		Base: asiccloud.DefaultServer(asiccloud.BitcoinRCA()),
	}, asiccloud.DefaultTCO())
	if err != nil {
		log.Fatal(err)
	}
	opt := result.TCOOptimal
	fmt.Println("TCO-optimal server:", opt.Describe())

	// How many servers and megawatts to host the whole network?
	d, err := asiccloud.PlanDeployment(asiccloud.DefaultRack(),
		opt.Perf, opt.WallPower, last.HashrateGH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world-scale deployment: %d servers, %d racks, %.0f MW\n",
		d.Servers, d.Racks, units.WToMW(d.TotalPowerW))
	fmt.Println("(the paper: 'the global power budget dedicated to ASIC Clouds ... is")
	fmt.Println(" estimated by experts to be in the range of 300-500 megawatts')")
}
