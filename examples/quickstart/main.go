// Quickstart: design a TCO-optimal ASIC Cloud server for the paper's
// Bitcoin accelerator in a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"asiccloud"
)

func main() {
	log.SetFlags(0)

	// 1. Start from an RCA spec — here the paper's published 28nm
	//    double-SHA256 core (0.66 mm², 0.83 GH/s and 2 W/mm² at 1 V).
	rca := asiccloud.BitcoinRCA()

	// 2. Sweep the joint design space: operating voltage, silicon per
	//    lane, and chips per lane, around the standard 1U 8-lane server.
	result, err := asiccloud.Explore(asiccloud.Sweep{
		Base: asiccloud.DefaultServer(rca),
	}, asiccloud.DefaultTCO())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Read off the three optimal servers the paper tabulates.
	fmt.Printf("explored %d feasible designs, %d on the Pareto frontier\n\n",
		len(result.Points), len(result.Frontier))
	fmt.Println("energy-optimal:", result.EnergyOptimal.Describe())
	fmt.Println("cost-optimal:  ", result.CostOptimal.Describe())
	fmt.Println("TCO-optimal:   ", result.TCOOptimal.Describe())

	// 4. TCO analysis is what picks the single best point: the paper's
	//    central observation is that it beats both extremes.
	o := result.TCOOptimal
	fmt.Printf("\nTCO breakdown per %s over the 1.5-year server life:\n", rca.PerfUnit)
	fmt.Printf("  server amortization  $%.3f\n", o.TCO.ServerAmort)
	fmt.Printf("  amortized interest   $%.3f\n", o.TCO.AmortInterest)
	fmt.Printf("  datacenter CAPEX     $%.3f\n", o.TCO.DCCapex)
	fmt.Printf("  electricity          $%.3f\n", o.TCO.Electricity)
	fmt.Printf("  datacenter interest  $%.3f\n", o.TCO.DCInterest)
	fmt.Printf("  total                $%.3f per %s\n", o.TCO.Total(), rca.PerfUnit)
}
