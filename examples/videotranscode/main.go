// Video transcoding ASIC Cloud: run the functional transcode kernel on a
// synthetic frame pair, then explore the DRAM-bound design space the
// paper calls XCode (Table 5) — the archetype of accelerators that need
// external DRAM.
//
//	go run ./examples/videotranscode
package main

import (
	"fmt"
	"log"
	"math/rand"

	"asiccloud"
	"asiccloud/internal/apps/xcode"
)

func main() {
	log.SetFlags(0)

	// --- 1. The kernel: motion search + transform on a real frame. ----
	rng := rand.New(rand.NewSource(7))
	ref, err := xcode.NewFrame(128, 128)
	if err != nil {
		log.Fatal(err)
	}
	for i := range ref.Pix {
		ref.Pix[i] = uint8(rng.Intn(256))
	}
	// The "camera" panned by (+2, +1): every block should find it.
	cur, err := xcode.NewFrame(128, 128)
	if err != nil {
		log.Fatal(err)
	}
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			cur.Set(x, y, ref.At(x+2, y+1))
		}
	}
	_, stats, err := xcode.TranscodeFrame(cur, ref, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transcoded %d blocks: %.1f dB PSNR, ~%.1f KB "+
		"(perfect motion compensation => sparse residuals)\n\n",
		stats.Blocks, stats.PSNR, float64(stats.BitsEstimate)/8/1024)

	// --- 2. The design space: performance is set by DRAM count. -------
	base, err := asiccloud.XcodeServer(1)
	if err != nil {
		log.Fatal(err)
	}
	result, err := asiccloud.Explore(asiccloud.Sweep{
		Base:        base,
		DRAMPerASIC: []int{1, 2, 3, 4, 5, 6, 7, 8, 9},
	}, asiccloud.DefaultTCO())
	if err != nil {
		log.Fatal(err)
	}
	show := func(name string, p asiccloud.DesignPoint) {
		fmt.Printf("%-15s %d DRAMs/ASIC, %d chips/lane, %.2f V: %.0f Kfps, "+
			"%.1f W/Kfps, $%.1f/Kfps, TCO $%.1f/Kfps\n",
			name, p.Config.DRAM.PerASIC, p.Config.ChipsPerLane, p.Config.Voltage,
			p.Perf, p.WattsPerOp, p.DollarsPerOp, p.TCOPerOp())
	}
	show("energy-optimal:", result.EnergyOptimal)
	show("TCO-optimal:", result.TCOOptimal)
	show("cost-optimal:", result.CostOptimal)
	fmt.Println("\nnote the paper's pattern: the cost-optimal design packs more DRAMs per")
	fmt.Println("ASIC and pays for it with higher logic voltage to stay within the die")
	fmt.Println("area limit, while the energy-optimal design runs fewer DRAMs low and slow.")
}
