// Custom accelerator: take a new design from gate counts to a go/no-go
// ASIC Cloud decision. This is the workflow the paper ends on ("When do
// we go ASIC Cloud?", §12): estimate the RCA from a netlist, explore the
// design space, compare against the incumbent cloud, and apply the
// two-for-two rule against the NRE.
//
//	go run ./examples/customaccel
package main

import (
	"fmt"
	"log"

	"asiccloud"
	"asiccloud/internal/units"
)

func main() {
	log.SetFlags(0)

	// --- 1. A genomics-style string-matching accelerator, described ---
	//     structurally: systolic comparator array plus reference SRAM.
	netlist := asiccloud.Netlist{
		Name:                 "seqmatch",
		Gates:                600_000,
		Flops:                90_000,
		SRAMBits:             512 * 1024 * 8, // 512 KB reference window
		CombActivity:         0.25,
		FlopActivity:         0.5,
		SRAMAccessesPerCycle: 2,
		SRAMWordBits:         256,
	}
	// One fully pipelined alignment per cycle, counted in millions of
	// alignments per second (Mal/s): perf-per-cycle = 1e-6 Mal.
	spec, err := asiccloud.Estimate28nm(netlist, 750e6, 1e-6, "Mal/s")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated RCA: %.2f mm², %.3f W/mm² nominal, %.0f%% of power on the SRAM rail\n\n",
		spec.Area, spec.NominalPowerDensity, 100*spec.SRAMPowerFraction)

	// --- 2. Explore the cloud design space around it. ------------------
	result, err := asiccloud.Explore(asiccloud.Sweep{
		Base: asiccloud.DefaultServer(spec),
	}, asiccloud.DefaultTCO())
	if err != nil {
		log.Fatal(err)
	}
	opt := result.TCOOptimal
	fmt.Println("TCO-optimal server:", opt.Describe())

	// --- 3. When do we go ASIC Cloud? ----------------------------------
	// Suppose the incumbent CPU cloud spends $24M of TCO on this
	// computation over the comparison horizon, and the ASIC improves
	// TCO per op/s by 120x (typical for a memory-friendly accelerator).
	const incumbentTCO = 24e6
	const projectedSpeedup = 120.0
	nreCost := asiccloud.UMC28nm().MaskCost + 3.5e6 // masks + development
	decision, err := asiccloud.EvaluateNRE(incumbentTCO, nreCost, projectedSpeedup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNRE analysis (two-for-two rule, paper §12):\n")
	fmt.Printf("  TCO/NRE ratio:      %.1f\n", decision.TCONRERatio)
	fmt.Printf("  breakeven speedup:  %.2fx\n", decision.RequiredSpeedup)
	fmt.Printf("  projected speedup:  %.0fx\n", decision.ProjectedSpeedup)
	fmt.Printf("  two-for-two:        %v\n", decision.PassesTwoForTwo)
	fmt.Printf("  projected savings:  $%.1fM over the horizon\n", decision.ProjectedSavings/units.Million)
	if decision.PassesTwoForTwo && decision.PassesBreakeven {
		fmt.Println("\nverdict: build the ASIC Cloud.")
	} else {
		fmt.Println("\nverdict: stay on the commodity cloud for now.")
	}
}
