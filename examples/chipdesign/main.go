// Chip designer's workflow: from a structural netlist to a deployable
// ASIC — estimate the RCA, compare pipelined vs rolled microarchitectures,
// simulate the on-chip network and thermal control loop (paper Figure 2),
// account for frequency binning (§3's argument for self-operated clouds),
// and finally place the chip in a TCO-optimal server.
//
//	go run ./examples/chipdesign
package main

import (
	"fmt"
	"log"

	"asiccloud"
	"asiccloud/internal/apps/bitcoin"
	"asiccloud/internal/vlsi"
)

func main() {
	log.SetFlags(0)

	// --- 1. Microarchitecture choice: pipelined vs rolled SHA core. ---
	pipelined := bitcoin.RCA()
	rolled := bitcoin.RolledRCA()
	fmt.Println("RCA style comparison (paper §7):")
	fmt.Printf("  %-10s %8s %12s %14s\n", "style", "mm²", "GH/s", "GH/s per mm²")
	fmt.Printf("  %-10s %8.3f %12.4f %14.3f\n", "pipelined",
		pipelined.Area, pipelined.NominalPerf, pipelined.NominalPerf/pipelined.Area)
	fmt.Printf("  %-10s %8.4f %12.5f %14.3f\n", "rolled",
		rolled.Area, rolled.NominalPerf, rolled.NominalPerf/rolled.Area)
	fmt.Println("  → the pipelined style wins per-area throughput, as in industry.")

	// --- 2. On-chip architecture: RCAs + NoC + control plane. ----------
	cfg := asiccloud.DefaultChipConfig()
	cfg.Width, cfg.Height = 6, 6
	cfg.JobCycles = 128 // one rolled double-SHA per job
	chip, err := asiccloud.NewChip(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		chip.Submit(uint64(i+1), uint64(i))
	}
	if !chip.RunUntilDrained(50_000_000) {
		log.Fatal("chip did not drain")
	}
	s := chip.Stats()
	fmt.Printf("\non-ASIC simulation (%dx%d mesh, Figure 2):\n", cfg.Width, cfg.Height)
	fmt.Printf("  %d jobs in %d cycles: %.1f%% RCA utilization, %.0f-cycle mean latency\n",
		s.Completed, s.Cycle, 100*s.Utilization(cfg.Width*cfg.Height), s.AvgLatency())
	fmt.Printf("  hottest sensor %.1f °C, injection throttled %d cycles\n",
		s.MaxTempC, s.ThrottledCycles)

	// --- 3. Binning: why self-operated clouds deploy silicon better. ---
	bin := vlsi.DefaultBinning()
	promise, vendorT, err := bin.BestVendorPromise()
	if err != nil {
		log.Fatal(err)
	}
	adv, err := bin.CloudAdvantage(0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfrequency binning at %.0f%% sigma (paper §3):\n", 100*bin.Sigma)
	fmt.Printf("  best vendor bin: promise %.0f%% of nominal → %.2f throughput per chip\n",
		100*promise, vendorT)
	fmt.Printf("  self-operated cloud: %.2fx more throughput per manufactured chip\n", adv)

	// --- 4. The cloud around the chip. ---------------------------------
	res, err := asiccloud.Explore(asiccloud.Sweep{
		Base: asiccloud.DefaultServer(pipelined),
	}, asiccloud.DefaultTCO())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTCO-optimal server datasheet:")
	fmt.Print(res.TCOOptimal.Report())
}
