// Convolutional neural network ASIC Cloud: run a real inference
// partitioned across the 64 nodes of a DaDianNao-style 8×8 mesh, then
// evaluate the paper's twelve chip partitionings (Figure 17, Table 6).
//
//	go run ./examples/cnn
package main

import (
	"fmt"
	"log"

	"asiccloud"
	"asiccloud/internal/apps/cnn"
	"asiccloud/internal/units"
)

func main() {
	log.SetFlags(0)

	// --- 1. Functional substrate: partitioned inference. --------------
	net, err := cnn.ReferenceNetwork()
	if err != nil {
		log.Fatal(err)
	}
	in, err := cnn.NewTensor(3, 32, 32)
	if err != nil {
		log.Fatal(err)
	}
	for i := range in.Data {
		in.Data[i] = float32(i%251) / 251
	}
	mono, err := net.Forward(in)
	if err != nil {
		log.Fatal(err)
	}
	part, err := cnn.PartitionedForward(net, in, cnn.NodesPerSystem)
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range mono.Data {
		//lint:ignore floatcmp the partitioned schedule must match the monolithic one bit for bit
		if mono.Data[i] != part.Output.Data[i] {
			same = false
			break
		}
	}
	macs, err := net.TotalMACs(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one inference: %.1f MMACs, 64-node partition matches monolithic: %v\n",
		float64(macs)/units.Million, same)
	fmt.Printf("inter-node activation traffic: %.1f KB per inference\n\n",
		float64(part.TrafficBytes)/1024)

	// --- 2. Chip partitioning: how many mesh nodes per die? -----------
	evals, err := asiccloud.CNNExplore(asiccloud.DefaultTCO())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the paper's twelve chip shapes, best packing each, by TCO:")
	fmt.Printf("%-8s %-8s %-9s %-11s %-12s %s\n",
		"chip", "systems", "die mm²", "W/TOps/s", "$/TOps/s", "TCO/TOps/s")
	for _, e := range evals {
		fmt.Printf("%-8s %-8d %-9.0f %-11.2f %-12.2f %.2f\n",
			e.Shape, e.Systems, e.Eval.DieArea,
			e.Eval.WattsPerOp, e.Eval.DollarsPerOp, e.TCOPerOp())
	}
	fmt.Println("\nthe (4, 2) chip wins energy and TCO, exactly as in the paper's Table 6:")
	fmt.Println("a squarish node array converts the most HyperTransport links into")
	fmt.Println("nearly-free on-chip NoC hops.")
}
