package interconnect

import (
	"testing"
	"testing/quick"
)

func TestLinkHierarchy(t *testing.T) {
	// SPI is the cheapest and slowest on-PCB option; QPI the fastest.
	if SPI.Bandwidth >= HyperTransport.Bandwidth {
		t.Error("SPI should be slower than HyperTransport")
	}
	if HyperTransport.Bandwidth >= QPI.Bandwidth {
		t.Error("HyperTransport should be slower than QPI")
	}
	if SPI.Pins != 4 {
		t.Errorf("SPI is a 4-pin interface, got %d pins", SPI.Pins)
	}
	// On-chip NoC hops are nearly free versus off-chip links — the
	// saving the CNN cloud gets from bigger chips.
	if NoC.Power >= HyperTransport.Power/10 {
		t.Error("NoC hop power should be tiny versus HyperTransport")
	}
	if NoC.Pins != 0 {
		t.Error("NoC uses no package pins")
	}
}

func TestOffPCBLinks(t *testing.T) {
	if GigE1.Bandwidth >= GigE10.Bandwidth || GigE10.Bandwidth >= GigE40.Bandwidth {
		t.Error("GigE family bandwidth ordering broken")
	}
	if GigE10.BoardCost <= GigE1.BoardCost {
		t.Error("10 GigE should cost more than 1 GigE")
	}
}

func TestNetworkAggregates(t *testing.T) {
	n := Network{
		OnPCB:      SPI,
		OnPCBLinks: 40,
		OffPCB:     GigE10,
		OffLinks:   2,
		Control:    ControlFPGA,
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	wantPower := ControlFPGA.Power + 40*SPI.Power + 2*GigE10.Power
	if got := n.Power(); got != wantPower {
		t.Errorf("Power = %v, want %v", got, wantPower)
	}
	wantCost := ControlFPGA.Cost + 40*SPI.BoardCost + 2*GigE10.BoardCost
	if got := n.Cost(); got != wantCost {
		t.Errorf("Cost = %v, want %v", got, wantCost)
	}
	if got := n.PerChipPins(); got != 4 {
		t.Errorf("PerChipPins = %d, want 4", got)
	}
	if got := n.PerChipArea(); got != SPI.ASICArea {
		t.Errorf("PerChipArea = %v", got)
	}
}

func TestNetworkValidate(t *testing.T) {
	n := Network{OnPCBLinks: -1}
	if err := n.Validate(); err == nil {
		t.Error("negative link count should fail")
	}
}

func TestRequiredOffLinks(t *testing.T) {
	cases := []struct {
		link   Link
		demand float64
		want   int
	}{
		{GigE10, 0, 0},
		{GigE10, 1.0, 1},
		{GigE10, 1.25, 1},
		{GigE10, 1.26, 2},
		{GigE10, 2.5, 2},
		{NoneOff, 5, 0},
	}
	for _, c := range cases {
		if got := RequiredOffLinks(c.link, c.demand); got != c.want {
			t.Errorf("RequiredOffLinks(%s, %v) = %d, want %d", c.link.Name, c.demand, got, c.want)
		}
	}
}

func TestRequiredOffLinksCoverDemandProperty(t *testing.T) {
	f := func(a uint16) bool {
		demand := float64(a) / 100
		n := RequiredOffLinks(GigE10, demand)
		return float64(n)*GigE10.Bandwidth >= demand-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestControlProcessorOptions(t *testing.T) {
	if Microcontroller.Cost >= ControlFPGA.Cost || ControlFPGA.Cost >= ControlCPU.Cost {
		t.Error("control processor cost ordering: uC < FPGA < CPU")
	}
}
