// Package interconnect models the communication fabric of an ASIC Cloud
// server: on-PCB links between the control processor and the ASICs (SPI,
// HyperTransport, RapidIO, QPI), off-PCB interfaces (PCIe, 1/10/40 GigE,
// SL3 serial links), and on-ASIC network-on-chip links between RCAs
// (paper §5, Figure 2).
package interconnect

import "fmt"

// Link is one interconnect technology with its per-endpoint costs.
type Link struct {
	Name      string
	Bandwidth float64 // GB/s per link, per direction
	// ASICArea is the PHY+controller area per endpoint on the ASIC (mm²).
	ASICArea float64
	// Power per endpoint (W). Interface PHYs do not voltage scale.
	Power float64
	// Pins per endpoint on the package.
	Pins int
	// BoardCost is the per-link PCB/connector cost share in dollars.
	BoardCost float64
}

// On-PCB link technologies the paper lists as candidates for the control
// network ("the on-PCB network could be as simple as a 4-pin SPI
// interface, or it could be high-bandwidth HyperTransport, RapidIO or QPI
// links").
var (
	SPI = Link{Name: "SPI", Bandwidth: 0.006, ASICArea: 0.05, Power: 0.01, Pins: 4, BoardCost: 0.05}
	// HyperTransport: a 16-bit 3.2 GT/s HT3 link, the inter-chip fabric
	// of the DaDianNao CNN system.
	HyperTransport = Link{Name: "HyperTransport", Bandwidth: 12.8, ASICArea: 3.5, Power: 2.4, Pins: 76, BoardCost: 1.5}
	RapidIO        = Link{Name: "RapidIO", Bandwidth: 5.0, ASICArea: 2.4, Power: 1.6, Pins: 36, BoardCost: 1.0}
	QPI            = Link{Name: "QPI", Bandwidth: 19.2, ASICArea: 4.5, Power: 3.1, Pins: 84, BoardCost: 2.0}
	// NoC is an on-die mesh hop between co-located RCAs: nearly free
	// relative to off-chip links — the saving the CNN cloud harvests by
	// integrating more RCAs per chip.
	NoC = Link{Name: "on-chip NoC", Bandwidth: 64.0, ASICArea: 0.12, Power: 0.05, Pins: 0, BoardCost: 0}
)

// Off-PCB interfaces (paper: "Candidate off-PCB interfaces include PCI-e,
// commodity 1/10/40 GigE interfaces, and high speed point-to-point 10-20
// gbps serial links like Microsoft Catapult's inter-system SL3 links").
var (
	GigE1   = Link{Name: "1 GigE", Bandwidth: 0.125, ASICArea: 0, Power: 1.0, Pins: 8, BoardCost: 4}
	GigE10  = Link{Name: "10 GigE", Bandwidth: 1.25, ASICArea: 0, Power: 3.5, Pins: 16, BoardCost: 18}
	GigE40  = Link{Name: "40 GigE", Bandwidth: 5.0, ASICArea: 0, Power: 6.0, Pins: 32, BoardCost: 60}
	PCIeX8  = Link{Name: "PCIe x8", Bandwidth: 7.9, ASICArea: 0, Power: 4.0, Pins: 49, BoardCost: 12}
	SL3     = Link{Name: "SL3 serial", Bandwidth: 2.0, ASICArea: 0, Power: 1.2, Pins: 8, BoardCost: 6}
	NoneOff = Link{Name: "none"}
)

// ControlProcessor is the PCB-level scheduler ("typically an FPGA or
// microcontroller, but also potentially a CPU") that routes work from the
// off-PCB interfaces onto the on-PCB network.
type ControlProcessor struct {
	Name  string
	Power float64 // W
	Cost  float64 // $
}

// Standard control processor choices.
var (
	Microcontroller = ControlProcessor{Name: "microcontroller", Power: 1.5, Cost: 6}
	ControlFPGA     = ControlProcessor{Name: "FPGA", Power: 8, Cost: 55}
	ControlCPU      = ControlProcessor{Name: "embedded CPU", Power: 18, Cost: 90}
)

// Network is the complete communication plan for one server.
type Network struct {
	OnPCB      Link
	OnPCBLinks int // number of on-PCB link endpoints (≈ chip count)
	OffPCB     Link
	OffLinks   int
	Control    ControlProcessor
}

// Validate checks the plan's sanity.
func (n Network) Validate() error {
	if n.OnPCBLinks < 0 || n.OffLinks < 0 {
		return fmt.Errorf("interconnect: negative link counts")
	}
	return nil
}

// Power is the total network power on the 12 V domain (control processor
// and off-PCB PHYs) plus on-PCB endpoint power (dissipated on the ASICs
// but supplied at fixed I/O voltage).
func (n Network) Power() float64 {
	return n.Control.Power +
		float64(n.OnPCBLinks)*n.OnPCB.Power +
		float64(n.OffLinks)*n.OffPCB.Power
}

// Cost is the board-level network cost.
func (n Network) Cost() float64 {
	return n.Control.Cost +
		float64(n.OnPCBLinks)*n.OnPCB.BoardCost +
		float64(n.OffLinks)*n.OffPCB.BoardCost
}

// PerChipPins is the package pin overhead per ASIC for its on-PCB link.
func (n Network) PerChipPins() int { return n.OnPCB.Pins }

// PerChipArea is the die overhead per ASIC for its on-PCB endpoint (mm²).
func (n Network) PerChipArea() float64 { return n.OnPCB.ASICArea }

// RequiredOffLinks returns how many off-PCB links of kind l are needed to
// carry the given aggregate bandwidth demand (GB/s).
func RequiredOffLinks(l Link, demandGBs float64) int {
	if demandGBs <= 0 {
		return 0
	}
	if l.Bandwidth <= 0 {
		return 0
	}
	n := int(demandGBs / l.Bandwidth)
	if float64(n)*l.Bandwidth < demandGBs-1e-12 {
		n++
	}
	return n
}
