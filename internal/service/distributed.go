package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"time"

	"asiccloud/internal/cloud"
	"asiccloud/internal/core"
	"asiccloud/internal/obs"
	"asiccloud/internal/tco"
)

// Distributed sweep execution: a coordinator partitions one sweep into
// the deterministic chunks core.PlanSweep enumerates, serializes each
// as a cloud.Job, and fans them out over the cloud.Pool protocol
// (leases, requeue on expiry, first-result-wins dedup). Workers — any
// process running NewChunkHandler under cloud.RunWorker, typically
// `asiccloudd -worker -join <addr>` — evaluate chunks on a local
// core.Engine and return serialized core.ChunkResults. The coordinator
// merges them with core.ResultMerger and renders the result through
// the same marshalResult the daemon and RunOnce use, so a distributed
// sweep's bytes are identical to a single-process run: frontier merge
// is associative and order-independent, optimum merge is commutative,
// prune accounting counts grid-build prunes once and per-geometry
// prunes per chunk, and float64s round-trip JSON exactly.
//
// Chunk identity is stable across processes: the payload carries the
// full wire Request plus its canonical hash, and the worker
// re-canonicalizes and verifies the hash before evaluating, so a
// version-skewed worker (one that would resolve the request to a
// different design space) refuses the chunk instead of corrupting the
// merge.

// chunkPayload is the cloud.Job payload for one sweep chunk.
type chunkPayload struct {
	// Request is the full wire-form request; the worker resolves it
	// with its own Canonicalize, exactly as a daemon would.
	Request Request `json:"request"`
	// RequestHash is the coordinator's canonical hash; a worker whose
	// canonicalization disagrees must refuse the chunk.
	RequestHash string `json:"request_hash"`
	// ChunkSize and Chunk select one chunk of the deterministic
	// partition; NumChunks rides along as a consistency check.
	ChunkSize int `json:"chunk_size"`
	Chunk     int `json:"chunk"`
	NumChunks int `json:"num_chunks"`
}

// NewChunkHandler returns the cloud.Handler a distributed sweep worker
// runs: decode the chunk payload, re-canonicalize the request and
// verify the coordinator's hash, evaluate the chunk on eng (whose
// thermal-plan cache warms up across chunks of the same sweep), and
// return the serialized core.ChunkResult. The job's traceparent joins
// the worker's chunk span to the coordinator's trace.
func NewChunkHandler(eng *core.Engine, rec *obs.Recorder, log *slog.Logger) cloud.Handler {
	log = obs.OrNop(log)
	return func(j cloud.Job) ([]byte, error) {
		var p chunkPayload
		if err := json.Unmarshal(j.Payload, &p); err != nil {
			return nil, fmt.Errorf("service: decode chunk payload: %w", err)
		}
		can, err := Canonicalize(&p.Request)
		if err != nil {
			return nil, fmt.Errorf("service: canonicalize chunk request: %w", err)
		}
		if h := can.Hash(); h != p.RequestHash {
			return nil, fmt.Errorf(
				"service: request hash mismatch (coordinator %s, worker %s): refusing the chunk — coordinator and worker resolve the request differently (version skew?)",
				p.RequestHash, h)
		}
		sweep, model, err := can.Plan()
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		if sc, ok := obs.ParseTraceparent(j.Traceparent); ok {
			ctx = obs.WithSpanContext(ctx, sc)
		}
		ctx, span := rec.StartSpan(ctx, "chunk")
		defer span.End()
		from := time.Now()
		cr, err := eng.EvaluateChunk(ctx, sweep, model, p.ChunkSize, p.Chunk)
		if err != nil {
			return nil, err
		}
		log.LogAttrs(ctx, slog.LevelDebug, "chunk evaluated",
			slog.Int("chunk", p.Chunk),
			slog.Int("num_chunks", p.NumChunks),
			slog.Int64("generated", cr.Pruned.Generated),
			slog.Int64("feasible", cr.Pruned.Feasible),
			slog.Float64("duration_seconds", time.Since(from).Seconds()))
		out, err := json.Marshal(cr)
		if err != nil {
			return nil, fmt.Errorf("service: marshal chunk result: %w", err)
		}
		return out, nil
	}
}

// drainGrace bounds how long a finished coordinator waits for
// connected workers to collect their clean drained nojob before
// forcing the sockets closed.
const drainGrace = 5 * time.Second

// CoordinatorOptions tunes a distributed sweep run.
type CoordinatorOptions struct {
	// ChunkSize is geometries per chunk (0 selects
	// core.DefaultChunkSize).
	ChunkSize int
	// LeaseDuration bounds how long a worker may hold a chunk before
	// it is requeued to the fleet (0 disables leasing — a crashed
	// worker then strands its chunk, so coordinators serving real
	// fleets should always set one).
	LeaseDuration time.Duration
	// Logger receives pool lifecycle and coordinator progress events.
	Logger *slog.Logger
}

// RunCoordinator runs one sweep distributed over the pool protocol:
// it serves chunk jobs to every worker that connects to ln, merges the
// returned partial frontiers and optima, and renders the exact bytes
// the daemon (and RunOnce) would serve for the same request. It
// returns when every chunk has been merged — surviving worker crashes
// via lease requeue — or when the context is canceled, any chunk
// fails, or a worker returns an undecodable result. ln is closed by
// the time RunCoordinator returns.
func RunCoordinator(ctx context.Context, req *Request, ln net.Listener, rec *obs.Recorder, opts CoordinatorOptions) ([]byte, error) {
	log := obs.OrNop(opts.Logger)
	can, err := Canonicalize(req)
	if err != nil {
		return nil, err
	}
	sweep, model, err := can.Plan()
	if err != nil {
		return nil, err
	}
	plan, err := core.PlanSweep(sweep, model, opts.ChunkSize)
	if err != nil {
		return nil, err
	}

	ctx, root := rec.StartSpan(ctx, "coordinate")
	defer root.End()
	hash := can.Hash()
	jobs := make([]cloud.Job, plan.NumChunks())
	for c := range jobs {
		payload, err := json.Marshal(chunkPayload{
			Request:     *req,
			RequestHash: hash,
			ChunkSize:   plan.ChunkSize(),
			Chunk:       c,
			NumChunks:   plan.NumChunks(),
		})
		if err != nil {
			return nil, fmt.Errorf("service: marshal chunk payload: %w", err)
		}
		// Chunk c is job ID c+1 (pool job IDs are conventionally
		// non-zero); the traceparent joins worker spans to this trace.
		jobs[c] = cloud.Job{ID: uint64(c + 1), Payload: payload, Traceparent: root.Traceparent()}
	}

	pool := cloud.NewPool(jobs)
	pool.Instrument(rec)
	pool.SetLogger(opts.Logger)
	if opts.LeaseDuration > 0 {
		pool.SetLeaseDuration(opts.LeaseDuration)
	}
	serveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- pool.Serve(serveCtx, ln) }()
	// The job list is complete: Close now so Results terminates once
	// the last chunk resolves.
	pool.Close()
	log.LogAttrs(ctx, slog.LevelInfo, "coordinator started",
		slog.String("request_hash", hash),
		slog.Int("chunks", plan.NumChunks()),
		slog.Int("chunk_size", plan.ChunkSize()),
		slog.Int("geometries", plan.Geometries()))

	merger := core.NewResultMerger(plan)
	results := pool.Results()
drain:
	for {
		select {
		case r, ok := <-results:
			if !ok {
				break drain
			}
			if r.Err != "" {
				// Chunks are deterministic: a handler failure would
				// recur on retry, so surface it instead of spinning.
				return nil, fmt.Errorf("service: chunk %d failed on worker %s: %s",
					r.JobID-1, r.Worker, r.Err)
			}
			var cr core.ChunkResult
			if err := json.Unmarshal(r.Output, &cr); err != nil {
				return nil, fmt.Errorf("service: decode chunk %d result from worker %s: %w",
					r.JobID-1, r.Worker, err)
			}
			merger.Add(cr)
			log.LogAttrs(ctx, slog.LevelDebug, "chunk merged",
				slog.Int("chunk", cr.Chunk),
				slog.String("worker", r.Worker),
				slog.Int("merged", merger.Merged()),
				slog.Int("total", plan.NumChunks()))
		case <-ctx.Done():
			return nil, fmt.Errorf("service: coordinator aborted after %d of %d chunks: %w",
				merger.Merged(), plan.NumChunks(), ctx.Err())
		}
	}
	// Graceful teardown: stop accepting, then let connected workers
	// collect their drained nojob — the protocol's clean exit — and
	// disconnect on their own. Serve returns once the last connection
	// goroutine finishes; cancellation is only the backstop against a
	// hung worker socket wedging the coordinator.
	//lint:ignore droppederr close error on a drained listener is unactionable
	ln.Close()
	select {
	case err := <-serveDone:
		if err != nil {
			return nil, fmt.Errorf("service: pool serve: %w", err)
		}
	case <-time.After(drainGrace):
		log.LogAttrs(ctx, slog.LevelWarn, "worker connections did not drain; forcing shutdown",
			slog.Duration("grace", drainGrace))
		cancel()
		<-serveDone
	}

	res, err := merger.Finish()
	if err != nil {
		return nil, err
	}
	stats := pool.Stats()
	log.LogAttrs(ctx, slog.LevelInfo, "coordinator finished",
		slog.Int("chunks", plan.NumChunks()),
		slog.Int("workers", len(stats.WorkerResults)),
		slog.Int("requeued", stats.JobsRequeued),
		slog.Int64("feasible", res.Pruned.Feasible))
	return marshalResult(can, res)
}

// RunOnce resolves and runs the request on a local engine, returning
// the same bytes the daemon serves and RunCoordinator produces — the
// single-process baseline a distributed run is diffed against.
func RunOnce(ctx context.Context, req *Request, rec *obs.Recorder, log *slog.Logger) ([]byte, error) {
	can, err := Canonicalize(req)
	if err != nil {
		return nil, err
	}
	sweep, model, err := can.Plan()
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(rec)
	eng.DiscardPoints = true // same streaming path the daemon serves
	eng.Log = log
	res, err := eng.ExploreContext(ctx, sweep, model)
	if err != nil {
		return nil, err
	}
	return marshalResult(can, res)
}

// planFor exposes the request's resolved sweep plan to tests and
// callers that need the partition without running anything.
func planFor(req *Request, chunkSize int) (*core.SweepPlan, core.Sweep, tco.Model, error) {
	can, err := Canonicalize(req)
	if err != nil {
		return nil, core.Sweep{}, tco.Model{}, err
	}
	sweep, model, err := can.Plan()
	if err != nil {
		return nil, core.Sweep{}, tco.Model{}, err
	}
	plan, err := core.PlanSweep(sweep, model, chunkSize)
	return plan, sweep, model, err
}
