package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"asiccloud/internal/core"
	"asiccloud/internal/obs"
	"asiccloud/internal/tco"
)

// newTestService builds a server (and its HTTP front end) whose sweep
// execution can be scripted: a non-nil explore replaces the engine so
// tests control exactly when jobs block, fail, or finish.
func newTestService(t *testing.T, cfg Config,
	explore func(ctx context.Context, sweep core.Sweep, model tco.Model) (core.Result, error),
) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg, obs.NewRecorder())
	if explore != nil {
		s.explore = explore
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// postSweep submits a request body and decodes the status reply.
func postSweep(t *testing.T, ts *httptest.Server, body string) (StatusJSON, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusJSON
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
	}
	return st, resp.StatusCode
}

// get fetches a path and returns code and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// await polls a job until it reaches a terminal state.
func await(t *testing.T, ts *httptest.Server, id string) StatusJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, b := get(t, ts, "/v1/sweeps/"+id)
		if code != http.StatusOK {
			t.Fatalf("status poll: %d %s", code, b)
		}
		var st StatusJSON
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return StatusJSON{}
}

// tinySweep is a real bitcoin sweep small enough for unit tests.
const tinySweep = `{"app":"bitcoin","sweep":{"voltages_v":[0.6],"silicon_per_lane_mm2":[30,50],"chips_per_lane":[1,2]}}`

func TestSubmitPollResultAndCacheHit(t *testing.T) {
	s, ts := newTestService(t, Config{Workers: 1}, nil)

	st, code := postSweep(t, ts, tinySweep)
	if code != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", code)
	}
	if st.Cached {
		t.Fatal("first submission claims cached")
	}
	fin := await(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job state = %s (%s)", fin.State, fin.Error)
	}
	if fin.GeometriesDone == 0 || fin.GeometriesDone != fin.GeometriesTotal {
		t.Fatalf("progress = %d/%d, want complete and non-zero", fin.GeometriesDone, fin.GeometriesTotal)
	}
	code, first := get(t, ts, "/v1/sweeps/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result = %d %s", code, first)
	}
	var res ResultJSON
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatalf("result not valid JSON: %v", err)
	}
	if res.App != "bitcoin" || len(res.Frontier) == 0 {
		t.Fatalf("result app=%q frontier=%d", res.App, len(res.Frontier))
	}

	// Same request again: served from cache, byte-identical.
	st2, code := postSweep(t, ts, tinySweep)
	if code != http.StatusOK {
		t.Fatalf("second POST = %d, want 200 (cache hit)", code)
	}
	if !st2.Cached || st2.State != StateDone {
		t.Fatalf("second POST state=%s cached=%v", st2.State, st2.Cached)
	}
	if st2.RequestHash != st.RequestHash {
		t.Fatalf("hashes differ: %s vs %s", st2.RequestHash, st.RequestHash)
	}
	_, second := get(t, ts, "/v1/sweeps/"+st2.ID+"/result")
	if !bytes.Equal(first, second) {
		t.Fatal("cache hit served different bytes than the original result")
	}
	if hits, misses := s.cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits, %d misses; want 1, 1", hits, misses)
	}

	// The counters are visible on /metrics for operators.
	_, metrics := get(t, ts, "/metrics")
	for _, want := range []string{"asiccloud_cache_hits_total 1", "asiccloud_cache_misses_total 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestCancelMidSweep(t *testing.T) {
	started := make(chan struct{})
	_, ts := newTestService(t, Config{Workers: 1},
		func(ctx context.Context, _ core.Sweep, _ tco.Model) (core.Result, error) {
			close(started)
			<-ctx.Done()
			return core.Result{}, ctx.Err()
		})
	st, code := postSweep(t, ts, `{"app":"bitcoin"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	fin := await(t, ts, st.ID)
	if fin.State != StateCanceled {
		t.Fatalf("state after cancel = %s (%s)", fin.State, fin.Error)
	}
	code, body := get(t, ts, "/v1/sweeps/"+st.ID+"/result")
	if code != http.StatusConflict {
		t.Fatalf("result of canceled job = %d %s, want 409", code, body)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestService(t, Config{Workers: 1},
		func(ctx context.Context, _ core.Sweep, _ tco.Model) (core.Result, error) {
			select {
			case <-release:
				return core.Result{}, nil
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			}
		})
	defer close(release)

	blocker, _ := postSweep(t, ts, `{"app":"bitcoin"}`)
	queued, _ := postSweep(t, ts, `{"app":"litecoin"}`)
	_ = blocker

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st StatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != StateCanceled {
		t.Fatalf("queued job after DELETE = %s, want canceled immediately", st.State)
	}
}

func TestJobTimeout(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1},
		func(ctx context.Context, _ core.Sweep, _ tco.Model) (core.Result, error) {
			<-ctx.Done()
			return core.Result{}, ctx.Err()
		})
	st, _ := postSweep(t, ts, `{"app":"bitcoin","timeout_seconds":0.05}`)
	fin := await(t, ts, st.ID)
	if fin.State != StateFailed {
		t.Fatalf("timed-out job = %s, want failed", fin.State)
	}
	code, _ := get(t, ts, "/v1/sweeps/"+st.ID+"/result")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("result of failed job = %d, want 422", code)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestService(t, Config{Workers: 1},
		func(ctx context.Context, _ core.Sweep, _ tco.Model) (core.Result, error) {
			close(started)
			select {
			case <-release:
				return core.Result{}, nil
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			}
		})
	st, _ := postSweep(t, ts, `{"app":"bitcoin"}`)
	<-started

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while draining...
	if _, code := postSweep(t, ts, `{"app":"litecoin"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", code)
	}
	// ...but the in-flight job is allowed to finish.
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	fin := await(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("in-flight job after drain = %s (%s), want done", fin.State, fin.Error)
	}
	if code, _ := get(t, ts, "/v1/sweeps/"+st.ID+"/result"); code != http.StatusOK {
		t.Fatalf("result after drain = %d", code)
	}
}

func TestShutdownGraceExpiryCancelsInFlight(t *testing.T) {
	started := make(chan struct{})
	s, ts := newTestService(t, Config{Workers: 1},
		func(ctx context.Context, _ core.Sweep, _ tco.Model) (core.Result, error) {
			close(started)
			<-ctx.Done() // never finishes voluntarily
			return core.Result{}, ctx.Err()
		})
	st, _ := postSweep(t, ts, `{"app":"bitcoin"}`)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil although the job could not drain")
	}
	// The pool is idle after Shutdown returns, so the job is terminal.
	fin := await(t, ts, st.ID)
	if fin.State != StateFailed {
		t.Fatalf("hard-canceled job = %s, want failed", fin.State)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestService(t, Config{Workers: 1, QueueDepth: 1},
		func(ctx context.Context, _ core.Sweep, _ tco.Model) (core.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return core.Result{}, ctx.Err()
		})
	defer close(release)

	// First job occupies the worker; second fills the queue. Distinct
	// sweeps keep the cache out of the picture.
	if _, code := postSweep(t, ts, `{"app":"bitcoin"}`); code != http.StatusAccepted {
		t.Fatalf("first POST = %d", code)
	}
	// The worker may not have dequeued the first job yet, so the queue
	// can reject as early as the second POST; accept either split.
	_, code2 := postSweep(t, ts, `{"app":"litecoin"}`)
	_, code3 := postSweep(t, ts, `{"app":"xcode"}`)
	if code3 != http.StatusServiceUnavailable &&
		!(code2 == http.StatusServiceUnavailable && code3 == http.StatusAccepted) {
		t.Fatalf("POSTs 2,3 = %d,%d; want a 503 once the queue is full", code2, code3)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1}, nil)
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"malformed json": {`{app:`, http.StatusBadRequest},
		"unknown field":  {`{"app":"bitcoin","bogus":1}`, http.StatusBadRequest},
		"unknown app":    {`{"app":"quantum"}`, http.StatusBadRequest},
		"cnn":            {`{"app":"cnn"}`, http.StatusBadRequest},
		"neg timeout":    {`{"app":"bitcoin","timeout_seconds":-1}`, http.StatusBadRequest},
	} {
		if _, code := postSweep(t, ts, tc.body); code != tc.want {
			t.Errorf("%s: POST = %d, want %d", name, code, tc.want)
		}
	}
	if code, _ := get(t, ts, "/v1/sweeps/nope"); code != http.StatusNotFound {
		t.Errorf("unknown id status = %d", code)
	}
	if code, _ := get(t, ts, "/v1/sweeps/nope/result"); code != http.StatusNotFound {
		t.Errorf("unknown id result = %d", code)
	}
	if code, _ := get(t, ts, "/v1/nothing"); code != http.StatusNotFound {
		t.Errorf("unknown endpoint = %d", code)
	}
}

func TestHealthzAndList(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1}, nil)
	code, body := get(t, ts, "/v1/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("healthz = %d %s", code, body)
	}
	st, _ := postSweep(t, ts, tinySweep)
	await(t, ts, st.ID)
	code, body = get(t, ts, "/v1/sweeps")
	if code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	var list struct {
		Jobs []StatusJSON `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("list = %+v", list.Jobs)
	}
}

func TestConcurrentSubmissionsShareTheCache(t *testing.T) {
	// Hammer the same sweep from many goroutines: exactly the jobs that
	// miss run on the engine; everything is race-free under -race.
	s, ts := newTestService(t, Config{Workers: 2}, nil)
	const n = 8
	ids := make(chan string, n)
	for i := 0; i < n; i++ {
		go func() {
			st, code := postSweep(t, ts, tinySweep)
			if code != http.StatusOK && code != http.StatusAccepted {
				ids <- fmt.Sprintf("error:%d", code)
				return
			}
			ids <- st.ID
		}()
	}
	var results [][]byte
	for i := 0; i < n; i++ {
		id := <-ids
		if strings.HasPrefix(id, "error:") {
			t.Fatal(id)
		}
		fin := await(t, ts, id)
		if fin.State != StateDone {
			t.Fatalf("job %s = %s (%s)", id, fin.State, fin.Error)
		}
		_, body := get(t, ts, "/v1/sweeps/"+id+"/result")
		results = append(results, body)
	}
	for i := 1; i < len(results); i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatal("concurrent submissions of one sweep returned different bytes")
		}
	}
	hits, misses := s.cache.Stats()
	if hits+misses != n {
		t.Fatalf("lookups = %d, want %d", hits+misses, n)
	}
	// All n submissions can race past the cache before the first result
	// lands, so anywhere from 1 to n misses is legal; byte-identity above
	// is the property that must hold regardless.
	if misses < 1 {
		t.Fatalf("misses = %d, want at least 1", misses)
	}
}
