package service

import (
	"encoding/json"
	"fmt"

	"asiccloud/internal/core"
	"asiccloud/internal/units"
)

// PointJSON is the wire form of one design point: the configuration
// coordinates the sweep chose plus the headline metrics, with units in
// the field names. Describe carries the same human rendering the CLI
// prints, so a daemon answer can be diffed against `asiccloud design`
// output verbatim.
type PointJSON struct {
	// VoltageV is the logic operating voltage in V.
	VoltageV float64 `json:"voltage_v"`
	// ChipsPerLane and Lanes give the server organization.
	ChipsPerLane int `json:"chips_per_lane"`
	Lanes        int `json:"lanes"`
	// RCAsPerChip is the replicated-accelerator count per die.
	RCAsPerChip int `json:"rcas_per_chip"`
	// DRAMPerASIC is the DRAM device count per ASIC.
	DRAMPerASIC int `json:"dram_per_asic"`
	// Stacked marks voltage-stacked power delivery.
	Stacked bool `json:"stacked"`
	// DieAreaMM2 is the per-chip die area in mm².
	DieAreaMM2 float64 `json:"die_area_mm2"`
	// FreqMHz is the operating clock in MHz.
	FreqMHz float64 `json:"freq_mhz"`
	// Perf is server throughput in the RCA's PerfUnit.
	Perf float64 `json:"perf"`
	// WallPowerW is wall power in W.
	WallPowerW float64 `json:"wall_power_w"`
	// CostUSD is the server bill of materials in $.
	CostUSD float64 `json:"cost_usd"`
	// DollarsPerOp and WattsPerOp are the two Pareto metrics ($ per
	// op/s, W per op/s); TCOPerOp is the headline scalar ($ per op/s
	// over the lifetime).
	DollarsPerOp float64 `json:"dollars_per_op"`
	WattsPerOp   float64 `json:"watts_per_op"`
	TCOPerOp     float64 `json:"tco_per_op"`
	// CO2KgPerOp is the carbon scalar (kg CO2e per op/s over the
	// amortization lifetime), with its embodied and operational shares
	// alongside.
	CO2KgPerOp            float64 `json:"co2_kg_per_op"`
	EmbodiedCO2KgPerOp    float64 `json:"embodied_co2_kg_per_op"`
	OperationalCO2KgPerOp float64 `json:"operational_co2_kg_per_op"`
	// Describe is the CLI's one-line rendering of this point.
	Describe string `json:"describe"`
}

// toPointJSON projects a core.Point onto the wire form.
func toPointJSON(p core.Point) PointJSON {
	return PointJSON{
		VoltageV:              p.Config.Voltage,
		ChipsPerLane:          p.Config.ChipsPerLane,
		Lanes:                 p.Config.Lanes,
		RCAsPerChip:           p.Config.RCAsPerChip,
		DRAMPerASIC:           p.Config.DRAM.PerASIC,
		Stacked:               p.Config.Stacked,
		DieAreaMM2:            p.DieArea,
		FreqMHz:               units.HzToMHz(p.Freq),
		Perf:                  p.Perf,
		WallPowerW:            p.WallPower,
		CostUSD:               p.Cost(),
		DollarsPerOp:          p.DollarsPerOp,
		WattsPerOp:            p.WattsPerOp,
		TCOPerOp:              p.TCOPerOp(),
		CO2KgPerOp:            p.CO2PerOp(),
		EmbodiedCO2KgPerOp:    p.Carbon.EmbodiedKg,
		OperationalCO2KgPerOp: p.Carbon.OperationalKg,
		Describe:              p.Describe(),
	}
}

// ResultJSON is the body of GET /v1/sweeps/{id}/result.
type ResultJSON struct {
	// RequestHash is the canonical hash the result is cached under.
	RequestHash string `json:"request_hash"`
	// App and PerfUnit identify what the numbers measure; Objective is
	// the axis the request designed for ("tco" or "carbon").
	App       string `json:"app"`
	PerfUnit  string `json:"perf_unit"`
	Objective string `json:"objective"`
	// Pruned is the engine's exact candidate accounting.
	Pruned core.PruneSummary `json:"pruned"`
	// Frontier is the Pareto frontier, ascending in $ per op/s.
	Frontier []PointJSON `json:"frontier"`
	// CarbonFrontier is the (TCO per op/s, kg CO2e per op/s) frontier,
	// ascending in TCO per op/s.
	CarbonFrontier []PointJSON `json:"carbon_frontier"`
	// EnergyOptimal, CostOptimal and TCOOptimal are the three columns
	// of the paper's per-application tables; CarbonOptimal minimizes
	// kg CO2e per op/s.
	EnergyOptimal PointJSON `json:"energy_optimal"`
	CostOptimal   PointJSON `json:"cost_optimal"`
	TCOOptimal    PointJSON `json:"tco_optimal"`
	CarbonOptimal PointJSON `json:"carbon_optimal"`
}

// marshalResult renders the engine's result to the exact bytes both the
// first response and every later cache hit serve. Marshaling once at
// job completion — rather than re-encoding per request — is what makes
// "byte-identical on a cache hit" a structural guarantee instead of a
// property of encoder stability.
//
//asic:canonical
func marshalResult(c Canonical, res core.Result) ([]byte, error) {
	out := ResultJSON{
		RequestHash:    c.Hash(),
		App:            c.App,
		PerfUnit:       c.RCA.PerfUnit,
		Objective:      c.Objective,
		Pruned:         res.Pruned,
		Frontier:       make([]PointJSON, 0, len(res.Frontier)),
		CarbonFrontier: make([]PointJSON, 0, len(res.CarbonFrontier)),
		EnergyOptimal:  toPointJSON(res.EnergyOptimal),
		CostOptimal:    toPointJSON(res.CostOptimal),
		TCOOptimal:     toPointJSON(res.TCOOptimal),
		CarbonOptimal:  toPointJSON(res.CarbonOptimal),
	}
	for _, p := range res.Frontier {
		out.Frontier = append(out.Frontier, toPointJSON(p))
	}
	for _, p := range res.CarbonFrontier {
		out.CarbonFrontier = append(out.CarbonFrontier, toPointJSON(p))
	}
	b, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("service: marshal result: %w", err)
	}
	return append(b, '\n'), nil
}
