package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"asiccloud/internal/cloud"
	"asiccloud/internal/core"
	"asiccloud/internal/obs"
)

// distRequest is a real bitcoin sweep with enough geometries to split
// into several chunks at small chunk sizes.
func distRequest(t *testing.T) *Request {
	t.Helper()
	var req Request
	err := json.Unmarshal([]byte(
		`{"app":"bitcoin","sweep":{"voltages_v":[0.55,0.6],"silicon_per_lane_mm2":[30,50,70],"chips_per_lane":[1,2]}}`,
	), &req)
	if err != nil {
		t.Fatal(err)
	}
	return &req
}

// startCoordinator runs RunCoordinator against a fresh loopback
// listener and returns the pool address plus a channel carrying the
// rendered result bytes.
func startCoordinator(t *testing.T, ctx context.Context, req *Request, opts CoordinatorOptions) (string, <-chan []byte, <-chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	out := make(chan []byte, 1)
	errc := make(chan error, 1)
	go func() {
		b, err := RunCoordinator(ctx, req, ln, obs.NewRecorder(), opts)
		out <- b
		errc <- err
	}()
	return ln.Addr().String(), out, errc
}

// TestDistributedMatchesRunOnce is the tentpole acceptance check in
// process form: a coordinator fanning chunks out to a three-worker
// fleet renders byte-identical result JSON to the single-process run.
func TestDistributedMatchesRunOnce(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := distRequest(t)
	want, err := RunOnce(ctx, req, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	addr, out, errc := startCoordinator(t, ctx, req, CoordinatorOptions{ChunkSize: 2})
	// Three workers, each with its own engine — separate thermal-plan
	// caches, as separate processes would have.
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := NewChunkHandler(core.NewEngine(nil), nil, nil)
			if _, err := cloud.RunWorker(ctx, addr, "w", h); err != nil {
				t.Errorf("worker %d: %v", id, err)
			}
		}(w)
	}
	wg.Wait()
	got := <-out
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("distributed result differs from single-process run:\nonce: %s\ndist: %s", want, got)
	}
}

// TestDistributedSurvivesWorkerDeath kills a worker that is sitting on
// a chunk; the lease expires, the chunk is requeued to the healthy
// fleet, and the final bytes still match the single-process run.
func TestDistributedSurvivesWorkerDeath(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := distRequest(t)
	want, err := RunOnce(ctx, req, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	addr, out, errc := startCoordinator(t, ctx, req, CoordinatorOptions{
		ChunkSize:     2,
		LeaseDuration: 50 * time.Millisecond,
	})

	// The doomed worker takes one chunk and hangs until "killed" (its
	// context canceled closes the connection mid-hold).
	grabbed := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	doomedCtx, kill := context.WithCancel(ctx)
	defer kill()
	go func() {
		_, _ = cloud.RunWorker(doomedCtx, addr, "doomed", func(cloud.Job) ([]byte, error) {
			close(grabbed)
			<-release
			return nil, errors.New("stalled")
		})
	}()
	select {
	case <-grabbed:
	case <-ctx.Done():
		t.Fatal("doomed worker never received a chunk")
	}
	kill()

	if _, err := cloud.RunFleet(ctx, addr, "healthy", 2, NewChunkHandler(core.NewEngine(nil), nil, nil)); err != nil {
		t.Fatalf("healthy fleet: %v", err)
	}
	got := <-out
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("result after worker death differs from single-process run")
	}
}

// TestChunkHandlerRejectsHashMismatch: a worker whose canonicalization
// disagrees with the coordinator's hash must refuse the chunk rather
// than contribute to the merge.
func TestChunkHandlerRejectsHashMismatch(t *testing.T) {
	req := distRequest(t)
	payload, err := json.Marshal(chunkPayload{
		Request:     *req,
		RequestHash: "sha256:not-the-real-hash",
		ChunkSize:   2,
		Chunk:       0,
		NumChunks:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := NewChunkHandler(core.NewEngine(nil), nil, nil)
	_, err = h(cloud.Job{ID: 1, Payload: payload})
	if err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Errorf("want hash mismatch error, got %v", err)
	}
}

// TestChunkHandlerRejectsGarbage covers the two remaining refusal
// paths: an undecodable payload and an out-of-range chunk index.
func TestChunkHandlerRejectsGarbage(t *testing.T) {
	h := NewChunkHandler(core.NewEngine(nil), nil, nil)
	if _, err := h(cloud.Job{ID: 1, Payload: []byte("not json")}); err == nil {
		t.Error("garbage payload should fail")
	}

	req := distRequest(t)
	can, err := Canonicalize(req)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(chunkPayload{
		Request:     *req,
		RequestHash: can.Hash(),
		ChunkSize:   2,
		Chunk:       10000,
		NumChunks:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h(cloud.Job{ID: 1, Payload: payload}); err == nil {
		t.Error("out-of-range chunk should fail")
	}
}

// TestCoordinatorSurfacesChunkFailure: a handler error on any chunk
// aborts the run with a descriptive error instead of hanging or
// silently dropping the chunk.
func TestCoordinatorSurfacesChunkFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addr, out, errc := startCoordinator(t, ctx, distRequest(t), CoordinatorOptions{ChunkSize: 2})

	// The coordinator aborts on the first failed chunk and tears the
	// pool down, so the worker may see either a clean drain or an
	// unexpected disconnect — ignore its exit.
	broken := func(cloud.Job) ([]byte, error) { return nil, errors.New("solder bridge") }
	_, _ = cloud.RunWorker(ctx, addr, "broken", broken)
	<-out
	err := <-errc
	if err == nil || !strings.Contains(err.Error(), "solder bridge") {
		t.Errorf("want chunk failure surfaced, got %v", err)
	}
}

// TestCoordinatorRejectsBadRequest: request validation fails before any
// pool machinery spins up.
func TestCoordinatorRejectsBadRequest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var req Request
	req.App = "no-such-app"
	if _, err := RunCoordinator(context.Background(), &req, ln, nil, CoordinatorOptions{}); err == nil {
		t.Error("unknown app should fail")
	}
}

// TestPlanForPartition sanity-checks the helper tests and CLIs use to
// inspect the partition a request resolves to.
func TestPlanForPartition(t *testing.T) {
	plan, _, _, err := planFor(distRequest(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Geometries() != 6 {
		t.Errorf("geometries = %d, want 6", plan.Geometries())
	}
	if plan.NumChunks() != 3 {
		t.Errorf("chunks = %d, want 3", plan.NumChunks())
	}
}
