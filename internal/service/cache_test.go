package service

import (
	"bytes"
	"fmt"
	"testing"

	"asiccloud/internal/obs"
)

func TestCacheHitMissAccounting(t *testing.T) {
	c := newResultCache(4, obs.NewRecorder())
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", []byte("result-a"))
	got, ok := c.Get("a")
	if !ok || string(got) != "result-a" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, obs.NewRecorder())
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Get("a")              // promote a over b
	c.Put("c", []byte("C")) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction although it was least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s was evicted although it was recently used", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestCacheRePutKeepsFirstBytes(t *testing.T) {
	c := newResultCache(2, obs.NewRecorder())
	first := []byte("first")
	c.Put("a", first)
	c.Put("a", []byte("second"))
	got, _ := c.Get("a")
	if !bytes.Equal(got, first) {
		t.Fatalf("re-put replaced the stored bytes: %q", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1, obs.NewRecorder())
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.Len())
	}
}

func TestCacheNilRecorder(t *testing.T) {
	// The cache must work without observability wired in.
	c := newResultCache(8, nil)
	for i := 0; i < 16; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d, want 8", c.Len())
	}
}
