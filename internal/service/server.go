package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"asiccloud/internal/core"
	"asiccloud/internal/obs"
	"asiccloud/internal/tco"
)

// Config sizes the daemon. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of concurrent sweep jobs (default 2). Each
	// sweep additionally parallelizes internally over EngineWorkers
	// goroutines.
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (default 64);
	// a full queue turns POST /v1/sweeps into 503, which is the
	// backpressure signal a load balancer retries against another
	// replica.
	QueueDepth int
	// CacheEntries bounds the result LRU (default 128 results; <0
	// disables caching).
	CacheEntries int
	// DefaultTimeout caps a job's run time when the request names none
	// (default 2m).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts (default 10m).
	MaxTimeout time.Duration
	// EngineWorkers caps each sweep's internal parallelism (default
	// GOMAXPROCS / Workers, at least 1), so a saturated pool does not
	// oversubscribe the machine.
	EngineWorkers int
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = runtime.GOMAXPROCS(0) / c.Workers
		if c.EngineWorkers < 1 {
			c.EngineWorkers = 1
		}
	}
	return c
}

// Server is the exploration job service: a bounded worker pool over one
// shared core.Engine, a job registry, and the result cache. Create it
// with New; it is safe for concurrent use.
type Server struct {
	cfg    Config
	rec    *obs.Recorder
	engine *core.Engine
	cache  *resultCache

	//lint:ignore ctxflow server-lifetime root context, the http.Server.BaseContext pattern: Shutdown calls baseCancel, which cancels every job context derived from it
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // creation order, for the list endpoint
	queue    chan *Job
	draining atomic.Bool
	seq      atomic.Int64

	workerWg sync.WaitGroup

	// explore runs one sweep; tests substitute a fake to script slow or
	// failing jobs deterministically.
	explore func(ctx context.Context, sweep core.Sweep, model tco.Model) (core.Result, error)

	queueDepth  *obs.Gauge
	busyWorkers *obs.Gauge
	sweepSecs   *obs.Histogram
}

// New builds the service and starts its worker pool. The recorder (nil
// is a valid no-op) receives the service's own metrics plus everything
// the shared engine records; mount Handler on an http.Server to serve
// it, and call Shutdown to drain.
func New(cfg Config, rec *obs.Recorder) *Server {
	cfg = cfg.withDefaults()
	reg := rec.Registry()
	reg.SetHelp("asiccloudd_jobs_total", "sweep jobs reaching a terminal state, by state")
	reg.SetHelp("asiccloudd_queue_depth", "jobs accepted but not yet claimed by a worker")
	reg.SetHelp("asiccloudd_busy_workers", "pool workers currently running a sweep")
	reg.SetHelp("asiccloudd_sweep_seconds", "wall-clock seconds per engine sweep (cache hits excluded)")
	eng := core.NewEngine(rec)
	eng.DiscardPoints = true // the API returns frontier + optima, never the full point set
	eng.Workers = cfg.EngineWorkers
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		rec:         rec,
		engine:      eng,
		cache:       newResultCache(cfg.CacheEntries, rec),
		baseCtx:     ctx,
		baseCancel:  cancel,
		jobs:        make(map[string]*Job),
		queue:       make(chan *Job, cfg.QueueDepth),
		queueDepth:  rec.Gauge("asiccloudd_queue_depth"),
		busyWorkers: rec.Gauge("asiccloudd_busy_workers"),
		sweepSecs:   rec.Histogram("asiccloudd_sweep_seconds", nil),
	}
	s.explore = s.engine.ExploreContext
	for i := 0; i < cfg.Workers; i++ {
		s.workerWg.Add(1)
		go s.worker()
	}
	return s
}

// Engine exposes the shared engine (for CLI-vs-daemon comparisons and
// cache-stat reporting).
func (s *Server) Engine() *core.Engine { return s.engine }

// worker drains the job queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workerWg.Done()
	for job := range s.queue {
		s.queueDepth.Add(-1)
		s.runJob(job)
	}
}

// runJob executes one queued job end to end.
func (s *Server) runJob(job *Job) {
	ctx, cancel := context.WithTimeout(s.baseCtx, job.timeout)
	defer cancel()
	if !job.claim(cancel) {
		// Canceled while queued; requestCancel already finalized it.
		s.rec.Counter("asiccloudd_jobs_total", "state", string(StateCanceled)).Inc()
		return
	}
	s.busyWorkers.Add(1)
	defer s.busyWorkers.Add(-1)

	finish := func(result []byte, err error) {
		job.finish(result, err)
		state, _, _ := job.snapshot()
		s.rec.Counter("asiccloudd_jobs_total", "state", string(state)).Inc()
	}

	sweep, model, err := job.can.Plan()
	if err != nil {
		finish(nil, err)
		return
	}
	sweep.Progress = func(done, total int) {
		job.geomsDone.Store(int64(done))
		job.geomsTotal.Store(int64(total))
	}
	from := time.Now()
	res, err := s.explore(ctx, sweep, model)
	s.sweepSecs.Observe(time.Since(from).Seconds())
	if err != nil {
		finish(nil, err)
		return
	}
	data, err := marshalResult(job.can, res)
	if err != nil {
		finish(nil, err)
		return
	}
	s.cache.Put(job.hash, data)
	finish(data, nil)
}

// submit canonicalizes, consults the cache, and either completes the
// job instantly (hit) or enqueues it (miss). The returned status is the
// HTTP code the handler writes: 200 for a cache hit, 202 for an
// accepted job, 400/503 with err for rejections.
func (s *Server) submit(req *Request) (*Job, int, error) {
	can, err := Canonicalize(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if req.TimeoutSeconds < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("timeout_seconds must be >= 0")
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSeconds > 0 {
		timeout = time.Duration(req.TimeoutSeconds * float64(time.Second))
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is draining; not accepting new sweeps")
	}
	hash := can.Hash()
	job := &Job{
		id:      fmt.Sprintf("s%06d-%s", s.seq.Add(1), hash[:12]),
		hash:    hash,
		can:     can,
		timeout: timeout,
		created: time.Now(),
		state:   StateQueued,
	}

	if data, ok := s.cache.Get(hash); ok {
		job.completeFromCache(data)
		s.mu.Lock()
		s.register(job)
		s.mu.Unlock()
		return job, http.StatusOK, nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is draining; not accepting new sweeps")
	}
	select {
	case s.queue <- job:
		s.queueDepth.Add(1)
	default:
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("job queue full (%d queued); retry later", s.cfg.QueueDepth)
	}
	s.register(job)
	return job, http.StatusAccepted, nil
}

// register files a job in the registry; callers hold s.mu.
func (s *Server) register(job *Job) {
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
}

// lookup returns a registered job.
func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Shutdown drains the service: new submissions get 503 immediately,
// queued and running jobs are allowed to finish, and the call returns
// when the pool is idle. If ctx expires first, in-flight sweeps are
// hard-canceled through their contexts (they stop within one geometry's
// work) and the pool is still waited for, so no worker goroutine
// outlives the call. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining.Swap(true) {
		close(s.queue)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.workerWg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-idle
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// errorJSON is the uniform error body.
type errorJSON struct {
	// Error is a human-readable reason.
	Error string `json:"error"`
}

// writeJSON writes a JSON response body with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	//lint:ignore droppederr a failed response write means the client went away; there is no one left to tell
	_ = enc.Encode(v)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorJSON{Error: err.Error()})
}

// maxRequestBody bounds POST bodies (bytes); sweep requests are small.
const maxRequestBody = 1 << 20

// handleSubmit is POST /v1/sweeps.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// net/http closes the request body after the handler returns.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	job, code, err := s.submit(&req)
	if err != nil {
		writeError(w, code, err)
		return
	}
	writeJSON(w, code, job.Status())
}

// handleList is GET /v1/sweeps.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := struct {
		Jobs []StatusJSON `json:"jobs"`
	}{Jobs: make([]StatusJSON, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus is GET /v1/sweeps/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleResult is GET /v1/sweeps/{id}/result.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	state, result, errMsg := job.snapshot()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		//lint:ignore droppederr a failed response write means the client went away; there is no one left to tell
		_, _ = w.Write(result)
	case StateQueued, StateRunning:
		writeJSON(w, http.StatusAccepted, job.Status())
	case StateCanceled:
		writeError(w, http.StatusConflict, fmt.Errorf("job canceled: %s", errMsg))
	default: // StateFailed
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("sweep failed: %s", errMsg))
	}
}

// handleCancel is DELETE /v1/sweeps/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	job.requestCancel()
	writeJSON(w, http.StatusOK, job.Status())
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	hits, misses := s.cache.Stats()
	writeJSON(w, code, struct {
		Status      string `json:"status"`
		Jobs        int    `json:"jobs"`
		CacheHits   int64  `json:"cache_hits"`
		CacheMisses int64  `json:"cache_misses"`
	}{status, n, hits, misses})
}

// Handler returns the service's HTTP API plus the observability
// endpoints (/metrics, /debug/vars, /debug/pprof/) of the recorder the
// server was built with.
func (s *Server) Handler() http.Handler {
	reg := s.rec.Registry()
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.Handle(pattern, obs.Instrument(reg, label, h))
	}
	route("POST /v1/sweeps", "/v1/sweeps", s.handleSubmit)
	route("GET /v1/sweeps", "/v1/sweeps", s.handleList)
	route("GET /v1/sweeps/{id}", "/v1/sweeps/{id}", s.handleStatus)
	route("GET /v1/sweeps/{id}/result", "/v1/sweeps/{id}/result", s.handleResult)
	route("DELETE /v1/sweeps/{id}", "/v1/sweeps/{id}", s.handleCancel)
	route("GET /v1/healthz", "/v1/healthz", s.handleHealthz)
	oh := obs.Handler(reg)
	mux.Handle("/metrics", oh)
	mux.Handle("/debug/", oh)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such endpoint %s", r.URL.Path))
			return
		}
		fmt.Fprintln(w, "asiccloudd: POST /v1/sweeps, GET /v1/sweeps/{id}[/result], DELETE /v1/sweeps/{id}, /v1/healthz, /metrics, /debug/pprof/")
	})
	return mux
}
