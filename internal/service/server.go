package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"asiccloud/internal/core"
	"asiccloud/internal/obs"
	"asiccloud/internal/tco"
)

// Config sizes the daemon. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of concurrent sweep jobs (default 2). Each
	// sweep additionally parallelizes internally over EngineWorkers
	// goroutines.
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (default 64);
	// a full queue turns POST /v1/sweeps into 503, which is the
	// backpressure signal a load balancer retries against another
	// replica.
	QueueDepth int
	// CacheEntries bounds the result LRU (default 128 results; <0
	// disables caching).
	CacheEntries int
	// DefaultTimeout caps a job's run time when the request names none
	// (default 2m).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts (default 10m).
	MaxTimeout time.Duration
	// EngineWorkers caps each sweep's internal parallelism (default
	// GOMAXPROCS / Workers, at least 1), so a saturated pool does not
	// oversubscribe the machine.
	EngineWorkers int
	// Logger receives the daemon's structured log lines (request access
	// lines, job lifecycle transitions, engine sweep telemetry), each
	// correlated with trace/span/job IDs. Nil logs nothing.
	Logger *slog.Logger
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = runtime.GOMAXPROCS(0) / c.Workers
		if c.EngineWorkers < 1 {
			c.EngineWorkers = 1
		}
	}
	return c
}

// Server is the exploration job service: a bounded worker pool over one
// shared core.Engine, a job registry, and the result cache. Create it
// with New; it is safe for concurrent use.
type Server struct {
	cfg    Config
	rec    *obs.Recorder
	log    *slog.Logger
	engine *core.Engine
	cache  *resultCache
	events *eventHub

	//lint:ignore ctxflow server-lifetime root context, the http.Server.BaseContext pattern: Shutdown calls baseCancel, which cancels every job context derived from it
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // creation order, for the list endpoint
	queue    chan *Job
	draining atomic.Bool
	seq      atomic.Int64

	workerWg sync.WaitGroup

	// explore runs one sweep; tests substitute a fake to script slow or
	// failing jobs deterministically.
	explore func(ctx context.Context, sweep core.Sweep, model tco.Model) (core.Result, error)

	queueDepth  *obs.Gauge
	busyWorkers *obs.Gauge
	sweepSecs   *obs.Histogram
}

// New builds the service and starts its worker pool. The recorder (nil
// is a valid no-op) receives the service's own metrics plus everything
// the shared engine records; mount Handler on an http.Server to serve
// it, and call Shutdown to drain.
func New(cfg Config, rec *obs.Recorder) *Server {
	cfg = cfg.withDefaults()
	reg := rec.Registry()
	reg.SetHelp("asiccloud_jobs_total", "sweep jobs reaching a terminal state, by state")
	reg.SetHelp("asiccloud_queue_depth", "jobs accepted but not yet claimed by a worker")
	reg.SetHelp("asiccloud_busy_workers", "pool workers currently running a sweep")
	reg.SetHelp("asiccloud_sweep_seconds", "wall-clock seconds per engine sweep (cache hits excluded)")
	eng := core.NewEngine(rec)
	eng.DiscardPoints = true // the API returns frontier + optima, never the full point set
	eng.Workers = cfg.EngineWorkers
	eng.Log = cfg.Logger
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		rec:         rec,
		log:         obs.OrNop(cfg.Logger),
		engine:      eng,
		cache:       newResultCache(cfg.CacheEntries, rec),
		events:      newEventHub(),
		baseCtx:     ctx,
		baseCancel:  cancel,
		jobs:        make(map[string]*Job),
		queue:       make(chan *Job, cfg.QueueDepth),
		queueDepth:  rec.Gauge("asiccloud_queue_depth"),
		busyWorkers: rec.Gauge("asiccloud_busy_workers"),
		sweepSecs:   rec.Histogram("asiccloud_sweep_seconds", nil),
	}
	s.explore = s.engine.ExploreContext
	for i := 0; i < cfg.Workers; i++ {
		s.workerWg.Add(1)
		go s.worker()
	}
	return s
}

// Engine exposes the shared engine (for CLI-vs-daemon comparisons and
// cache-stat reporting).
func (s *Server) Engine() *core.Engine { return s.engine }

// worker drains the job queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workerWg.Done()
	for job := range s.queue {
		s.queueDepth.Add(-1)
		//lint:ignore foldorder arrival order picks which job runs next, not what bytes it produces — each job's canonical result is a pure function of that job alone
		s.runJob(job)
	}
}

// progressPublishInterval throttles SSE progress snapshots, so a fast
// sweep does not flood every subscriber with per-geometry events.
const progressPublishInterval = 100 * time.Millisecond

// runJob executes one queued job end to end.
func (s *Server) runJob(job *Job) {
	ctx, cancel := context.WithTimeout(s.baseCtx, job.timeout)
	defer cancel()
	// Rejoin the trace begun at submission: the engine's spans and log
	// lines below parent under (and correlate to) the job's span.
	ctx = obs.WithSpan(ctx, job.span)
	if !job.claim(cancel) {
		// Canceled while queued; requestCancel already finalized it.
		s.rec.Counter("asiccloud_jobs_total", "state", string(StateCanceled)).Inc()
		return
	}
	s.busyWorkers.Add(1)
	defer s.busyWorkers.Add(-1)
	s.log.LogAttrs(ctx, slog.LevelInfo, "job started",
		slog.String("job_id", job.id),
		slog.String("request_hash", job.hash))
	s.events.publish(job.Status())
	from := time.Now()

	finish := func(result []byte, err error) {
		job.finish(result, err)
		state, _, errMsg := job.snapshot()
		s.rec.Counter("asiccloud_jobs_total", "state", string(state)).Inc()
		attrs := []slog.Attr{
			slog.String("job_id", job.id),
			slog.String("state", string(state)),
			slog.Float64("duration_seconds", time.Since(from).Seconds()),
		}
		level := slog.LevelInfo
		if errMsg != "" {
			attrs = append(attrs, slog.String("error", errMsg))
			level = slog.LevelWarn
		}
		s.log.LogAttrs(ctx, level, "job finished", attrs...)
		s.events.publish(job.Status())
	}

	sweep, model, err := job.can.Plan()
	if err != nil {
		finish(nil, err)
		return
	}
	var lastPublish atomic.Int64
	sweep.Progress = func(done, total int) {
		job.geomsDone.Store(int64(done))
		job.geomsTotal.Store(int64(total))
		now := time.Now().UnixNano()
		last := lastPublish.Load()
		if now-last >= int64(progressPublishInterval) && lastPublish.CompareAndSwap(last, now) {
			s.events.publish(job.Status())
		}
	}
	planBefore := s.engine.CacheStats()
	res, err := s.explore(ctx, sweep, model)
	s.sweepSecs.Observe(time.Since(from).Seconds())
	planAfter := s.engine.CacheStats()
	// The engine is shared, so under concurrent jobs this delta is the
	// engine-wide activity during this job's run — exact when one job
	// runs at a time, an upper bound otherwise.
	job.setSweepStats(res.Pruned,
		planAfter.Hits-planBefore.Hits, planAfter.Misses-planBefore.Misses)
	if err != nil {
		finish(nil, err)
		return
	}
	data, err := marshalResult(job.can, res)
	if err != nil {
		finish(nil, err)
		return
	}
	s.cache.Put(job.hash, data)
	finish(data, nil)
}

// submit canonicalizes, consults the cache, and either completes the
// job instantly (hit) or enqueues it (miss). The returned status is the
// HTTP code the handler writes: 200 for a cache hit, 202 for an
// accepted job, 400/503 with err for rejections. The job's trace span
// is created here as a child of whatever ctx carries (the HTTP request
// span), so the submission, the queued wait and the sweep are one
// connected trace.
func (s *Server) submit(ctx context.Context, req *Request) (*Job, int, error) {
	can, err := Canonicalize(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if req.TimeoutSeconds < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("timeout_seconds must be >= 0")
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSeconds > 0 {
		timeout = time.Duration(req.TimeoutSeconds * float64(time.Second))
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is draining; not accepting new sweeps")
	}
	hash := can.Hash()
	ctx, span := s.rec.StartSpan(ctx, "job")
	job := &Job{
		id:      fmt.Sprintf("s%06d-%s", s.seq.Add(1), hash[:12]),
		hash:    hash,
		can:     can,
		timeout: timeout,
		created: time.Now(),
		state:   StateQueued,
		span:    span,
	}

	if data, ok := s.cache.Get(hash); ok {
		job.completeFromCache(data)
		s.mu.Lock()
		s.register(job)
		s.mu.Unlock()
		s.log.LogAttrs(ctx, slog.LevelInfo, "sweep served from cache",
			slog.String("job_id", job.id),
			slog.String("request_hash", hash))
		s.events.publish(job.Status())
		return job, http.StatusOK, nil
	}

	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		span.End()
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is draining; not accepting new sweeps")
	}
	select {
	case s.queue <- job:
		s.queueDepth.Add(1)
	default:
		depth := s.cfg.QueueDepth
		s.mu.Unlock()
		span.End()
		s.log.LogAttrs(ctx, slog.LevelWarn, "sweep rejected: queue full",
			slog.String("request_hash", hash),
			slog.Int("queue_depth", depth))
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("job queue full (%d queued); retry later", depth)
	}
	s.register(job)
	s.mu.Unlock()
	s.log.LogAttrs(ctx, slog.LevelInfo, "sweep queued",
		slog.String("job_id", job.id),
		slog.String("request_hash", hash))
	s.events.publish(job.Status())
	return job, http.StatusAccepted, nil
}

// register files a job in the registry; callers hold s.mu.
func (s *Server) register(job *Job) {
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
}

// lookup returns a registered job.
func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Shutdown drains the service: new submissions get 503 immediately,
// queued and running jobs are allowed to finish, and the call returns
// when the pool is idle. If ctx expires first, in-flight sweeps are
// hard-canceled through their contexts (they stop within one geometry's
// work) and the pool is still waited for, so no worker goroutine
// outlives the call. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining.Swap(true) {
		close(s.queue)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.workerWg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-idle
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// errorJSON is the uniform error body.
type errorJSON struct {
	// Error is a human-readable reason.
	Error string `json:"error"`
}

// writeJSON writes a JSON response body with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	//lint:ignore droppederr a failed response write means the client went away; there is no one left to tell
	_ = enc.Encode(v)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorJSON{Error: err.Error()})
}

// maxRequestBody bounds POST bodies (bytes); sweep requests are small.
const maxRequestBody = 1 << 20

// handleSubmit is POST /v1/sweeps.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// net/http closes the request body after the handler returns.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	job, code, err := s.submit(r.Context(), &req)
	if err != nil {
		writeError(w, code, err)
		return
	}
	writeJSON(w, code, job.Status())
}

// handleList is GET /v1/sweeps.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := struct {
		Jobs []StatusJSON `json:"jobs"`
	}{Jobs: make([]StatusJSON, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus is GET /v1/sweeps/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleResult is GET /v1/sweeps/{id}/result.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	state, result, errMsg := job.snapshot()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		//lint:ignore droppederr a failed response write means the client went away; there is no one left to tell
		_, _ = w.Write(result)
	case StateQueued, StateRunning:
		writeJSON(w, http.StatusAccepted, job.Status())
	case StateCanceled:
		writeError(w, http.StatusConflict, fmt.Errorf("job canceled: %s", errMsg))
	default: // StateFailed
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("sweep failed: %s", errMsg))
	}
}

// handleCancel is DELETE /v1/sweeps/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	job.requestCancel()
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "job cancel requested",
		slog.String("job_id", job.id))
	s.events.publish(job.Status())
	writeJSON(w, http.StatusOK, job.Status())
}

// TraceJSON is the body of GET /v1/sweeps/{id}/trace: the job's
// connected span set (flat and as a tree) plus the sweep accounting
// that explains where the time went.
type TraceJSON struct {
	// JobID, State, TraceID and RequestHash identify the job; Cached
	// marks results served without running the engine.
	JobID       string `json:"job_id"`
	State       State  `json:"state"`
	TraceID     string `json:"trace_id"`
	RequestHash string `json:"request_hash"`
	Cached      bool   `json:"cached"`
	// PlanCacheHits/Misses are the thermal-plan cache's delta across
	// this job's run (engine-wide when jobs overlap).
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	// Pruned is the engine's exact candidate accounting (null until the
	// sweep has run).
	Pruned *core.PruneSummary `json:"pruned,omitempty"`
	// SpansTruncated counts spans dropped to the per-trace retention
	// bound; nonzero means the tree below is incomplete.
	SpansTruncated int `json:"spans_truncated,omitempty"`
	// Spans is every retained span of the trace in start order; Tree is
	// the same set nested by parent link.
	Spans []obs.SpanInfo  `json:"spans"`
	Tree  []*obs.SpanNode `json:"tree"`
}

// handleTrace is GET /v1/sweeps/{id}/trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	st := job.Status()
	pruned, planHits, planMisses := job.sweepStats()
	spans, truncated := s.rec.Trace(job.span.TraceID())
	//lint:ignore detflow the trace view is a live snapshot — open spans report elapsed-so-far durations by design; the canonical artifact is the cached result body, not this endpoint
	writeJSON(w, http.StatusOK, TraceJSON{
		JobID:           st.ID,
		State:           st.State,
		TraceID:         st.TraceID,
		RequestHash:     st.RequestHash,
		Cached:          st.Cached,
		PlanCacheHits:   planHits,
		PlanCacheMisses: planMisses,
		Pruned:          pruned,
		SpansTruncated:  truncated,
		Spans:           spans,
		Tree:            obs.BuildSpanTree(spans),
	})
}

// handleEvents is GET /v1/sweeps/{id}/events: a Server-Sent Events
// stream of StatusJSON snapshots — one on connect, one per lifecycle
// transition, throttled progress ticks while running — that closes
// itself after the terminal snapshot, so `curl -N` ends when the job
// does.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	// Subscribe before the initial snapshot so a transition between the
	// two is seen on the channel rather than lost.
	ch, unsubscribe := s.events.subscribe(job.id)
	defer unsubscribe()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	send := func(st StatusJSON) bool {
		data, err := json.Marshal(st)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: status\ndata: %s\n\n", data); err != nil {
			// The client went away; the stream just ends.
			return false
		}
		return rc.Flush() == nil
	}
	st := job.Status()
	if !send(st) || st.State.Terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case st := <-ch:
			if !send(st) || st.State.Terminal() {
				return
			}
		}
	}
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	hits, misses := s.cache.Stats()
	writeJSON(w, code, struct {
		Status      string `json:"status"`
		Jobs        int    `json:"jobs"`
		CacheHits   int64  `json:"cache_hits"`
		CacheMisses int64  `json:"cache_misses"`
	}{status, n, hits, misses})
}

// Handler returns the service's HTTP API plus the observability
// endpoints (/metrics, /debug/vars, /debug/pprof/) of the recorder the
// server was built with.
func (s *Server) Handler() http.Handler {
	reg := s.rec.Registry()
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.Handle(pattern, obs.Instrument(s.rec, s.log, label, h))
	}
	route("POST /v1/sweeps", "/v1/sweeps", s.handleSubmit)
	route("GET /v1/sweeps", "/v1/sweeps", s.handleList)
	route("GET /v1/sweeps/{id}", "/v1/sweeps/{id}", s.handleStatus)
	route("GET /v1/sweeps/{id}/result", "/v1/sweeps/{id}/result", s.handleResult)
	route("GET /v1/sweeps/{id}/trace", "/v1/sweeps/{id}/trace", s.handleTrace)
	route("GET /v1/sweeps/{id}/events", "/v1/sweeps/{id}/events", s.handleEvents)
	route("DELETE /v1/sweeps/{id}", "/v1/sweeps/{id}", s.handleCancel)
	route("GET /v1/healthz", "/v1/healthz", s.handleHealthz)
	oh := obs.Handler(reg)
	mux.Handle("/metrics", oh)
	mux.Handle("/debug/", oh)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such endpoint %s", r.URL.Path))
			return
		}
		fmt.Fprintln(w, "asiccloudd: POST /v1/sweeps, GET /v1/sweeps/{id}[/result|/trace|/events], DELETE /v1/sweeps/{id}, /v1/healthz, /metrics, /debug/pprof/")
	})
	return mux
}
