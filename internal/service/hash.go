package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
)

// hashVersion is folded into every request hash. Bump it whenever the
// canonical encoding, the engine's result schema, or the models behind
// them change meaning, so a stale cache entry can never be mistaken for
// the answer to a new question. (Within one process this is belt and
// braces — the cache dies with the daemon — but it keeps the hash
// stable enough to log and compare across runs of the same build.)
// v2: the objective and carbon-model fields joined the canonical
// encoding (and the result schema grew the carbon axis).
const hashVersion = "asiccloudd/v2"

// fstr formats a float for the canonical encoding: 'g' with the
// shortest round-trip precision, so 0.5, 0.50 and 5e-1 — equal float64s
// however they were spelled in JSON — encode identically, while any two
// distinct float64 values encode distinctly.
func fstr(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Hash returns the canonical SHA-256 of the request as lowercase hex.
// It is a pure function of the Canonical value: every field that can
// change the engine's result is written to the digest in a fixed order
// with fixed formatting, and nothing else is. Execution options
// (timeouts, worker counts) deliberately stay out.
//
//asic:canonical
func (c Canonical) Hash() string {
	h := sha256.New()
	// fmt.Fprintf on a hash.Hash cannot fail (Write never returns an
	// error by contract), so the error returns are not checked.
	fmt.Fprintf(h, "%s\napp=%s\n", hashVersion, c.App)
	fmt.Fprintf(h, "rca=%s|%s|%s|%s|%s|%s|%s|%s|%s|%s|%t\n",
		c.RCA.Name, c.RCA.PerfUnit,
		fstr(c.RCA.Area), fstr(c.RCA.NominalVoltage), fstr(c.RCA.NominalFreq),
		fstr(c.RCA.NominalPerf), fstr(c.RCA.NominalPowerDensity),
		fstr(c.RCA.LeakageFraction), fstr(c.RCA.SRAMPowerFraction),
		fstr(c.RCA.SRAMVmin), c.RCA.VoltageScalable)
	writeFloats(h, "voltages_v", c.Voltages)
	writeFloats(h, "silicon_per_lane_mm2", c.SiliconPerLane)
	writeInts(h, "chips_per_lane", c.ChipsPerLane)
	writeInts(h, "dram_per_asic", c.DRAMPerASIC)
	fmt.Fprintf(h, "dram_kind=%d\nstacked=%t\n", int(c.DRAMKind), c.Stacked)
	m := c.Model
	fmt.Fprintf(h, "tco=%s|%s|%s|%s|%s|%s|%s\n",
		fstr(m.ServerMarkup), fstr(m.InterestRate), fstr(m.LifetimeYears),
		fstr(m.DCCapexPerWattYear), fstr(m.DCAmortYears),
		fstr(m.ElectricityPerKWh), fstr(m.PUE))
	fmt.Fprintf(h, "objective=%s\n", c.Objective)
	cb := c.Carbon
	fmt.Fprintf(h, "carbon=%s|%s|%s|%s|%s|%s|%s|%s\n",
		fstr(cb.WaferKgCO2e), fstr(cb.PackageKgCO2e), fstr(cb.HeatSinkKgCO2e),
		fstr(cb.BoardKgCO2e), fstr(cb.GridGCO2ePerKWh), fstr(cb.PUE),
		fstr(cb.LifetimeYears), fstr(cb.Utilization))
	return hex.EncodeToString(h.Sum(nil))
}

// writeFloats appends one canonical "name=v1,v2,...\n" line.
//
//asic:canonical
func writeFloats(h io.Writer, name string, vs []float64) {
	fmt.Fprintf(h, "%s=", name)
	for i, v := range vs {
		if i > 0 {
			fmt.Fprintf(h, ",")
		}
		fmt.Fprintf(h, "%s", fstr(v))
	}
	fmt.Fprintf(h, "\n")
}

// writeInts appends one canonical "name=v1,v2,...\n" line.
//
//asic:canonical
func writeInts(h io.Writer, name string, vs []int) {
	fmt.Fprintf(h, "%s=", name)
	for i, v := range vs {
		if i > 0 {
			fmt.Fprintf(h, ",")
		}
		fmt.Fprintf(h, "%d", v)
	}
	fmt.Fprintf(h, "\n")
}
