package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"

	"asiccloud/internal/core"
	"asiccloud/internal/obs"
	"asiccloud/internal/tco"
)

// syncBuffer is a mutex-guarded bytes.Buffer so the test can read log
// output while worker goroutines are still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestTraceEndpointConnectedTrace(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1}, nil)
	st, code := postSweep(t, ts, tinySweep)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	if st.TraceID == "" {
		t.Fatal("submission status has no trace_id")
	}
	await(t, ts, st.ID)

	code, body := get(t, ts, "/v1/sweeps/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace = %d %s", code, body)
	}
	var tr TraceJSON
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if tr.TraceID != st.TraceID || tr.JobID != st.ID {
		t.Fatalf("trace identity = %s/%s, want %s/%s", tr.JobID, tr.TraceID, st.ID, st.TraceID)
	}
	// One POST must yield one connected trace: the HTTP request span,
	// the job span, and the engine's explore/sweep/chunk spans all
	// sharing the submission's trace ID.
	if len(tr.Spans) < 3 {
		t.Fatalf("trace has %d spans, want at least request+job+engine", len(tr.Spans))
	}
	paths := make(map[string]bool)
	for _, sp := range tr.Spans {
		if sp.TraceID != st.TraceID {
			t.Fatalf("span %q carries trace %s, want %s (trace not connected)",
				sp.Path, sp.TraceID, st.TraceID)
		}
		paths[sp.Path] = true
	}
	for _, want := range []string{
		"POST /v1/sweeps",
		"POST /v1/sweeps/job",
		"POST /v1/sweeps/job/explore",
		"POST /v1/sweeps/job/explore/sweep/chunk",
	} {
		if !paths[want] {
			t.Errorf("trace missing span path %q (have %v)", want, paths)
		}
	}
	if len(tr.Tree) == 0 || tr.Tree[0].Name != "POST /v1/sweeps" {
		t.Fatalf("tree root = %+v, want the HTTP request span", tr.Tree)
	}
	if tr.Pruned == nil || tr.Pruned.Generated == 0 {
		t.Errorf("trace missing prune accounting: %+v", tr.Pruned)
	}
	if tr.PlanCacheMisses == 0 {
		t.Error("first sweep should report plan-cache misses")
	}

	// A cache hit's trace is its own (new request, new trace), flagged
	// cached, with no engine spans.
	st2, code := postSweep(t, ts, tinySweep)
	if code != http.StatusOK {
		t.Fatalf("second POST = %d", code)
	}
	if st2.TraceID == st.TraceID {
		t.Fatal("distinct submissions must not share a trace")
	}
	_, body = get(t, ts, "/v1/sweeps/"+st2.ID+"/trace")
	var tr2 TraceJSON
	if err := json.Unmarshal(body, &tr2); err != nil {
		t.Fatal(err)
	}
	if !tr2.Cached {
		t.Error("cache-hit trace not flagged cached")
	}
	for _, sp := range tr2.Spans {
		if strings.Contains(sp.Path, "explore") {
			t.Errorf("cache hit ran engine spans: %q", sp.Path)
		}
	}

	if code, _ := get(t, ts, "/v1/sweeps/nope/trace"); code != http.StatusNotFound {
		t.Errorf("unknown job trace = %d", code)
	}
}

// readSSE consumes one SSE stream to EOF and returns the decoded
// status events in order.
func readSSE(t *testing.T, ts *httptest.Server, path string) []StatusJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []StatusJSON
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var st StatusJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		events = append(events, st)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return events
}

func TestEventsStreamFollowsJobToCompletion(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestService(t, Config{Workers: 1},
		func(ctx context.Context, _ core.Sweep, _ tco.Model) (core.Result, error) {
			select {
			case <-release:
				return core.Result{Pruned: core.PruneSummary{Generated: 1, Feasible: 1}}, nil
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			}
		})
	st, code := postSweep(t, ts, `{"app":"bitcoin"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}

	done := make(chan []StatusJSON, 1)
	go func() { done <- readSSE(t, ts, "/v1/sweeps/"+st.ID+"/events") }()
	// Give the stream a moment to attach, then let the job finish.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case events := <-done:
		if len(events) == 0 {
			t.Fatal("stream closed without events")
		}
		last := events[len(events)-1]
		if !last.State.Terminal() {
			t.Fatalf("stream ended on non-terminal state %s", last.State)
		}
		for _, ev := range events {
			if ev.ID != st.ID {
				t.Fatalf("event for wrong job: %s", ev.ID)
			}
			if ev.TraceID != st.TraceID {
				t.Fatalf("event trace %s != job trace %s", ev.TraceID, st.TraceID)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream never closed after the job finished")
	}

	// A terminal job's stream replays the final snapshot and closes.
	events := readSSE(t, ts, "/v1/sweeps/"+st.ID+"/events")
	if len(events) != 1 || !events[0].State.Terminal() {
		t.Fatalf("terminal-job stream = %+v, want one terminal snapshot", events)
	}

	if code, _ := get(t, ts, "/v1/sweeps/nope/events"); code != http.StatusNotFound {
		t.Errorf("unknown job events = %d", code)
	}
}

func TestLogLinesCarryTraceAndJobIDs(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestService(t, Config{Workers: 1, Logger: obs.NewLogger(&buf, slog.LevelInfo)}, nil)
	st, _ := postSweep(t, ts, tinySweep)
	await(t, ts, st.ID)

	// The terminal log line lands just after the state flip await sees;
	// poll briefly instead of racing it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := buf.String(); strings.Contains(s, "job finished") || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var sawSubmit, sawFinish, sawSweep bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		switch rec["msg"] {
		case "sweep queued":
			sawSubmit = true
			if rec["job_id"] != st.ID || rec["trace_id"] != st.TraceID {
				t.Errorf("sweep queued line not correlated: %v", rec)
			}
		case "job finished":
			sawFinish = true
			if rec["job_id"] != st.ID || rec["trace_id"] != st.TraceID {
				t.Errorf("job finished line not correlated: %v", rec)
			}
			if rec["state"] != string(StateDone) {
				t.Errorf("job finished state = %v", rec["state"])
			}
		case "sweep finished":
			sawSweep = true
			if rec["trace_id"] != st.TraceID {
				t.Errorf("engine line not correlated to the job trace: %v", rec)
			}
		}
	}
	if !sawSubmit || !sawFinish || !sawSweep {
		t.Errorf("missing lifecycle log lines: submit=%v finish=%v sweep=%v in\n%s",
			sawSubmit, sawFinish, sawSweep, buf.String())
	}
}
