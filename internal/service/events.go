package service

import "sync"

// eventBuffer is each SSE subscriber's channel capacity. Progress
// publishes are throttled, so the buffer only needs to ride out a
// slow client between flushes; the drop-oldest send below guarantees
// the terminal event always lands regardless.
const eventBuffer = 16

// eventHub fans job status snapshots out to SSE subscribers. It is a
// plain pub/sub keyed by job ID: the server publishes a snapshot on
// every lifecycle transition (and throttled progress ticks), each
// /events stream subscribes for its job. Publishing never blocks —
// when a subscriber's buffer is full the oldest snapshot is dropped in
// favor of the newest, so a stalled client sees a coarser history but
// never a stale terminal state.
type eventHub struct {
	mu   sync.Mutex
	subs map[string]map[chan StatusJSON]struct{}
}

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[string]map[chan StatusJSON]struct{})}
}

// subscribe registers a new stream for a job and returns its channel
// plus the unsubscribe func (idempotent, safe after publishes).
func (h *eventHub) subscribe(jobID string) (<-chan StatusJSON, func()) {
	ch := make(chan StatusJSON, eventBuffer)
	h.mu.Lock()
	set, ok := h.subs[jobID]
	if !ok {
		set = make(map[chan StatusJSON]struct{})
		h.subs[jobID] = set
	}
	set[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs[jobID], ch)
			if len(h.subs[jobID]) == 0 {
				delete(h.subs, jobID)
			}
			h.mu.Unlock()
		})
	}
}

// publish delivers a snapshot to every subscriber of its job without
// blocking: a full buffer sheds its oldest entry so the newest state
// (in particular the terminal one) is always enqueued.
func (h *eventHub) publish(st StatusJSON) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs[st.ID] {
		select {
		case ch <- st:
			continue
		default:
		}
		// Buffer full: drop the oldest snapshot, then retry once. Both
		// selects are non-blocking, so holding h.mu here cannot stall.
		select {
		case <-ch:
		default:
		}
		select {
		case ch <- st:
		default:
		}
	}
}
