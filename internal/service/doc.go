// Package service turns the design-space exploration engine into a
// long-running HTTP job service: the substrate behind cmd/asiccloudd.
//
// A client POSTs a sweep request (an application name or a custom RCA
// spec, a voltage grid in V, geometry ranges — silicon per lane in mm²,
// chips per lane, DRAM devices per ASIC — and TCO model overrides) to
// /v1/sweeps and receives a job ID. Jobs run asynchronously on a
// bounded worker pool that shares one core.Engine, so every job
// benefits from the engine's memoized thermal plans; GET /v1/sweeps/{id}
// polls status and geometry-level progress, GET /v1/sweeps/{id}/result
// returns the Pareto frontier and the energy-, cost- and TCO-optimal
// points, and DELETE cancels the job via its context.
//
// Requests are canonicalized (defaults filled, grids sorted exactly as
// the engine normalizes them) and hashed; completed results are
// memoized in a concurrency-safe LRU keyed on that hash, so submitting
// an identical sweep again serves the stored bytes without touching the
// engine — the response is byte-identical to the first run's. See
// API.md at the repository root for the HTTP contract and DESIGN.md for
// the job lifecycle and the cache-coherence argument.
package service
