package service

import (
	"fmt"
	"math"
	"sort"

	appbitcoin "asiccloud/internal/apps/bitcoin"
	applitecoin "asiccloud/internal/apps/litecoin"
	appxcode "asiccloud/internal/apps/xcode"
	"asiccloud/internal/carbon"
	"asiccloud/internal/core"
	"asiccloud/internal/dram"
	"asiccloud/internal/server"
	"asiccloud/internal/tco"
	"asiccloud/internal/vlsi"
)

// Request is the JSON body of POST /v1/sweeps. Omitted fields take the
// documented defaults, and a request that spells out a default hashes
// identically to one that omits it (see Canonicalize).
type Request struct {
	// App selects the exploration target: "bitcoin", "litecoin",
	// "xcode", or "custom" (which requires RCA). The CNN cloud is not
	// served here: its explorer enumerates chip shapes rather than a
	// core.Sweep; use `asiccloud design -app cnn`.
	App string `json:"app"`

	// RCA describes a custom accelerator; required iff App == "custom".
	RCA *RCASpec `json:"rca,omitempty"`

	// Sweep bounds the swept design space; zero-valued fields select
	// the paper's grids.
	Sweep SweepSpec `json:"sweep,omitempty"`

	// TCO overrides individual datacenter-economics parameters; omitted
	// fields keep tco.Default().
	TCO *TCOSpec `json:"tco,omitempty"`

	// Objective names the optimization axis the caller designs for:
	// "tco" (the default) or "carbon". Every result carries all four
	// optima and both frontiers regardless; the objective is recorded
	// in the result (and in the request hash, so differently-aimed
	// requests never share a cache entry).
	Objective string `json:"objective,omitempty"`

	// Carbon overrides individual emission-model parameters; omitted
	// fields keep carbon.Default(). Like TCO it is part of the design
	// question and enters the request hash.
	Carbon *CarbonSpec `json:"carbon,omitempty"`

	// TimeoutSeconds caps this job's run time (s). Zero selects the
	// server default; values above the server maximum are clamped. The
	// timeout is an execution option, not part of the design space, so
	// it does not enter the request hash.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// RCASpec mirrors the scalar fields of vlsi.Spec with JSON names that
// carry their units, plus the same defaults the CLI's `custom`
// subcommand applies.
type RCASpec struct {
	// Name labels the accelerator (default "custom").
	Name string `json:"name,omitempty"`
	// PerfUnit is the human unit for one op/s (default "ops/s").
	PerfUnit string `json:"perf_unit,omitempty"`
	// AreaMM2 is the silicon area of one RCA in mm². Required.
	AreaMM2 float64 `json:"area_mm2"`
	// NominalVoltage is the characterization voltage in V (default 1.0).
	NominalVoltage float64 `json:"nominal_voltage_v,omitempty"`
	// NominalFreqHz is the post-layout clock in Hz (default 800e6).
	NominalFreqHz float64 `json:"nominal_freq_hz,omitempty"`
	// NominalPerf is one RCA's throughput in PerfUnit at the nominal
	// point. Required.
	NominalPerf float64 `json:"nominal_perf"`
	// NominalPowerDensity is W/mm² at the nominal point. Required.
	NominalPowerDensity float64 `json:"nominal_power_density_w_per_mm2"`
	// LeakageFraction is the leakage share of nominal power,
	// dimensionless in [0,1) (default 0.03).
	LeakageFraction float64 `json:"leakage_fraction,omitempty"`
	// SRAMPowerFraction is the share of nominal power on the SRAM rail,
	// dimensionless in [0,1]; non-zero pins that rail at 0.9 V.
	SRAMPowerFraction float64 `json:"sram_power_fraction,omitempty"`
}

// SweepSpec bounds the swept design space. Empty slices select the
// paper's grids (and, for app "xcode", 1..9 DRAM devices per ASIC, as
// the CLI sweeps).
type SweepSpec struct {
	// Voltages lists operating voltages in V; the grid is sorted and
	// de-duplicated exactly as the engine normalizes it.
	Voltages []float64 `json:"voltages_v,omitempty"`
	// SiliconPerLane lists target RCA silicon per lane in mm².
	SiliconPerLane []float64 `json:"silicon_per_lane_mm2,omitempty"`
	// ChipsPerLane lists chip counts per lane.
	ChipsPerLane []int `json:"chips_per_lane,omitempty"`
	// DRAMPerASIC lists DRAM device counts per ASIC.
	DRAMPerASIC []int `json:"dram_per_asic,omitempty"`
	// DRAMKind overrides the DRAM technology ("LPDDR3", "DDR4",
	// "GDDR5", "HBM") when DRAMPerASIC sweeps non-zero counts; the
	// default is the application's own device (LPDDR3 where the app
	// defines none).
	DRAMKind string `json:"dram_kind,omitempty"`
	// Stacked additionally evaluates voltage-stacked variants.
	Stacked bool `json:"stacked,omitempty"`
}

// TCOSpec overrides tco.Model fields; pointers distinguish "omitted"
// from explicit zeros, which the model would reject anyway.
type TCOSpec struct {
	// ServerMarkup is the dimensionless integration markup on the BOM.
	ServerMarkup *float64 `json:"server_markup,omitempty"`
	// InterestRate is the annual cost of capital, dimensionless.
	InterestRate *float64 `json:"interest_rate,omitempty"`
	// LifetimeYears is the hardware amortization period in years.
	LifetimeYears *float64 `json:"lifetime_years,omitempty"`
	// DCCapexPerWattYear is facility cost in $ per wall watt per year.
	DCCapexPerWattYear *float64 `json:"dc_capex_per_watt_year,omitempty"`
	// DCAmortYears is the facility amortization period in years.
	DCAmortYears *float64 `json:"dc_amort_years,omitempty"`
	// ElectricityPerKWh is the energy price in $ per kWh.
	ElectricityPerKWh *float64 `json:"electricity_per_kwh,omitempty"`
	// PUE is the power usage effectiveness multiplier, dimensionless.
	PUE *float64 `json:"pue,omitempty"`
}

// CarbonSpec overrides carbon.Model fields; pointers distinguish
// "omitted" from explicit zeros (a zero grid intensity — a fully
// decarbonized grid — is meaningful and accepted).
type CarbonSpec struct {
	// WaferKgCO2e is the embodied emission of one processed wafer in
	// kg CO2e.
	WaferKgCO2e *float64 `json:"wafer_kg_co2e,omitempty"`
	// PackageKgCO2e is the per-chip packaging emission in kg CO2e.
	PackageKgCO2e *float64 `json:"package_kg_co2e,omitempty"`
	// HeatSinkKgCO2e is the per-chip cooling-hardware emission in
	// kg CO2e.
	HeatSinkKgCO2e *float64 `json:"heatsink_kg_co2e,omitempty"`
	// BoardKgCO2e is the per-server board/PSU/chassis emission in
	// kg CO2e.
	BoardKgCO2e *float64 `json:"board_kg_co2e,omitempty"`
	// GridGCO2ePerKWh is the grid carbon intensity in g CO2e per kWh.
	GridGCO2ePerKWh *float64 `json:"grid_g_co2e_per_kwh,omitempty"`
	// PUE is the power usage effectiveness multiplier, dimensionless.
	PUE *float64 `json:"pue,omitempty"`
	// LifetimeYears is the amortization period in years.
	LifetimeYears *float64 `json:"lifetime_years,omitempty"`
	// Utilization is the average duty factor in (0, 1], dimensionless.
	Utilization *float64 `json:"utilization,omitempty"`
}

// Canonical is a Request with every default resolved and every grid in
// the exact order the engine will sweep it. Two requests that differ
// only in JSON field order, spelled-out defaults, float formatting, or
// grid ordering canonicalize to equal values — and therefore equal
// hashes (Hash), which is what makes the result cache sound.
type Canonical struct {
	// App is the resolved application name ("custom" for RCA requests).
	App string
	// RCA is the resolved accelerator spec.
	RCA vlsi.Spec
	// Voltages is the resolved grid in V, ascending and de-duplicated
	// (core.NormalizeVoltages).
	Voltages []float64
	// SiliconPerLane is the resolved silicon series in mm², ascending.
	SiliconPerLane []float64
	// ChipsPerLane is the resolved chip-count series, ascending.
	ChipsPerLane []int
	// DRAMPerASIC is the resolved DRAM-count series, ascending.
	DRAMPerASIC []int
	// DRAMKind is the resolved device technology; meaningful only when
	// DRAMPerASIC sweeps a non-zero count (it is forced to the app's
	// own kind otherwise, so it cannot split hashes of equal sweeps).
	DRAMKind dram.Kind
	// Stacked mirrors SweepSpec.Stacked.
	Stacked bool
	// Model is the fully-resolved TCO model.
	Model tco.Model
	// Objective is the resolved optimization axis: "tco" or "carbon"
	// (an omitted objective canonicalizes to "tco", so spelling the
	// default hashes identically to omitting it).
	Objective string
	// Carbon is the fully-resolved emission model.
	Carbon carbon.Model
}

// parseDRAMKind maps the JSON technology names onto dram.Kind.
func parseDRAMKind(s string) (dram.Kind, error) {
	for _, k := range []dram.Kind{dram.LPDDR3, dram.DDR4, dram.GDDR5, dram.HBM} {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown dram_kind %q (want LPDDR3, DDR4, GDDR5 or HBM)", s)
}

// baseConfig returns the application's base server configuration — the
// same one the CLI sweeps, so daemon and CLI answers agree bit for bit.
func baseConfig(app string, rca vlsi.Spec) (server.Config, error) {
	switch app {
	case "bitcoin", "litecoin", "custom":
		return server.Default(rca), nil
	case "xcode":
		return appxcode.ServerConfig(1)
	default:
		return server.Config{}, fmt.Errorf("unknown app %q (want bitcoin, litecoin, xcode or custom)", app)
	}
}

// resolveRCA returns the app's published spec, or the custom spec with
// the CLI's defaults filled in.
func resolveRCA(req *Request) (vlsi.Spec, error) {
	switch req.App {
	case "bitcoin":
		return appbitcoin.RCA(), nil
	case "litecoin":
		return applitecoin.RCA(), nil
	case "xcode":
		return appxcode.RCA(), nil
	case "custom":
		if req.RCA == nil {
			return vlsi.Spec{}, fmt.Errorf(`app "custom" requires an rca object`)
		}
		r := *req.RCA
		if r.Name == "" {
			r.Name = "custom"
		}
		if r.PerfUnit == "" {
			r.PerfUnit = "ops/s"
		}
		//lint:ignore floatcmp a field omitted in JSON decodes to exactly 0; that exact zero selects the default
		if r.NominalVoltage == 0 {
			r.NominalVoltage = 1.0
		}
		//lint:ignore floatcmp a field omitted in JSON decodes to exactly 0; that exact zero selects the default
		if r.NominalFreqHz == 0 {
			r.NominalFreqHz = 800e6
		}
		//lint:ignore floatcmp a field omitted in JSON decodes to exactly 0; that exact zero selects the default
		if r.LeakageFraction == 0 {
			r.LeakageFraction = 0.03
		}
		spec := vlsi.Spec{
			Name:                r.Name,
			PerfUnit:            r.PerfUnit,
			Area:                r.AreaMM2,
			NominalVoltage:      r.NominalVoltage,
			NominalFreq:         r.NominalFreqHz,
			NominalPerf:         r.NominalPerf,
			NominalPowerDensity: r.NominalPowerDensity,
			LeakageFraction:     r.LeakageFraction,
			SRAMPowerFraction:   r.SRAMPowerFraction,
			VoltageScalable:     true,
		}
		if spec.SRAMPowerFraction > 0 {
			spec.SRAMVmin = 0.9
		}
		if err := spec.Validate(); err != nil {
			return vlsi.Spec{}, err
		}
		return spec, nil
	case "":
		return vlsi.Spec{}, fmt.Errorf("missing app (want bitcoin, litecoin, xcode or custom)")
	default:
		return vlsi.Spec{}, fmt.Errorf("unknown app %q (want bitcoin, litecoin, xcode or custom)", req.App)
	}
}

// sortedFloats validates that every entry is positive and finite, then
// returns an ascending copy. Duplicates are kept: they change the
// sweep's duplicate accounting, which is part of the response.
func sortedFloats(what string, vs []float64) ([]float64, error) {
	out := append([]float64(nil), vs...)
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return nil, fmt.Errorf("invalid %s entry %v (must be positive and finite)", what, v)
		}
	}
	sort.Float64s(out)
	return out, nil
}

// sortedInts validates entries against a floor and returns an ascending
// copy.
func sortedInts(what string, vs []int, min int) ([]int, error) {
	out := append([]int(nil), vs...)
	for _, v := range out {
		if v < min {
			return nil, fmt.Errorf("invalid %s entry %d (must be >= %d)", what, v, min)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Canonicalize validates a request and resolves it to canonical form.
// Grid reordering and duplicate silicon/chip entries are preserved in
// meaning: the engine's result is independent of grid order, and its
// duplicate-geometry accounting is independent of order too, so sorting
// here cannot make two requests with different responses collide.
func Canonicalize(req *Request) (Canonical, error) {
	rca, err := resolveRCA(req)
	if err != nil {
		return Canonical{}, err
	}
	c := Canonical{App: req.App, RCA: rca, Stacked: req.Sweep.Stacked}

	if len(req.Sweep.Voltages) > 0 {
		if c.Voltages, err = core.NormalizeVoltages(req.Sweep.Voltages); err != nil {
			return Canonical{}, err
		}
	} else {
		c.Voltages = core.VoltageGrid(rca.MinVoltage(), rca.MaxVoltage())
	}
	if c.SiliconPerLane, err = sortedFloats("silicon_per_lane_mm2", req.Sweep.SiliconPerLane); err != nil {
		return Canonical{}, err
	}
	if len(c.SiliconPerLane) == 0 {
		c.SiliconPerLane = core.DefaultSiliconPerLane()
	}
	if c.ChipsPerLane, err = sortedInts("chips_per_lane", req.Sweep.ChipsPerLane, 1); err != nil {
		return Canonical{}, err
	}
	if len(c.ChipsPerLane) == 0 {
		c.ChipsPerLane = core.DefaultChipsPerLane()
	}
	if c.DRAMPerASIC, err = sortedInts("dram_per_asic", req.Sweep.DRAMPerASIC, 0); err != nil {
		return Canonical{}, err
	}
	if len(c.DRAMPerASIC) == 0 {
		if req.App == "xcode" {
			c.DRAMPerASIC = []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
		} else {
			c.DRAMPerASIC = []int{0}
		}
	}

	base, err := baseConfig(req.App, rca)
	if err != nil {
		return Canonical{}, err
	}
	c.DRAMKind = base.DRAM.Device.Kind
	sweepsDRAM := c.DRAMPerASIC[len(c.DRAMPerASIC)-1] > 0
	if req.Sweep.DRAMKind != "" {
		k, err := parseDRAMKind(req.Sweep.DRAMKind)
		if err != nil {
			return Canonical{}, err
		}
		if sweepsDRAM {
			c.DRAMKind = k
		}
		// With no DRAM in the sweep the kind is inert; keeping the
		// base's kind means it cannot split the hashes of two requests
		// whose swept spaces are identical.
	}

	c.Model = tco.Default()
	apply := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	if o := req.TCO; o != nil {
		apply(&c.Model.ServerMarkup, o.ServerMarkup)
		apply(&c.Model.InterestRate, o.InterestRate)
		apply(&c.Model.LifetimeYears, o.LifetimeYears)
		apply(&c.Model.DCCapexPerWattYear, o.DCCapexPerWattYear)
		apply(&c.Model.DCAmortYears, o.DCAmortYears)
		apply(&c.Model.ElectricityPerKWh, o.ElectricityPerKWh)
		apply(&c.Model.PUE, o.PUE)
	}
	if err := c.Model.Validate(); err != nil {
		return Canonical{}, err
	}

	switch req.Objective {
	case "", "tco":
		c.Objective = "tco"
	case "carbon":
		c.Objective = "carbon"
	default:
		return Canonical{}, fmt.Errorf("unknown objective %q (want tco or carbon)", req.Objective)
	}
	c.Carbon = carbon.Default()
	if o := req.Carbon; o != nil {
		apply(&c.Carbon.WaferKgCO2e, o.WaferKgCO2e)
		apply(&c.Carbon.PackageKgCO2e, o.PackageKgCO2e)
		apply(&c.Carbon.HeatSinkKgCO2e, o.HeatSinkKgCO2e)
		apply(&c.Carbon.BoardKgCO2e, o.BoardKgCO2e)
		apply(&c.Carbon.GridGCO2ePerKWh, o.GridGCO2ePerKWh)
		apply(&c.Carbon.PUE, o.PUE)
		apply(&c.Carbon.LifetimeYears, o.LifetimeYears)
		apply(&c.Carbon.Utilization, o.Utilization)
	}
	if err := c.Carbon.Validate(); err != nil {
		return Canonical{}, err
	}
	return c, nil
}

// Plan materializes the canonical request into the engine's inputs: the
// application's base configuration (with the resolved DRAM technology
// substituted when the sweep provisions DRAM) and the sweep grids.
func (c Canonical) Plan() (core.Sweep, tco.Model, error) {
	base, err := baseConfig(c.App, c.RCA)
	if err != nil {
		return core.Sweep{}, tco.Model{}, err
	}
	if c.DRAMKind != base.DRAM.Device.Kind {
		sub, err := dram.NewSubsystem(c.DRAMKind, base.DRAM.PerASIC)
		if err != nil {
			return core.Sweep{}, tco.Model{}, err
		}
		base.DRAM = sub
	}
	cm := c.Carbon
	return core.Sweep{
		Base:           base,
		Voltages:       c.Voltages,
		SiliconPerLane: c.SiliconPerLane,
		ChipsPerLane:   c.ChipsPerLane,
		DRAMPerASIC:    c.DRAMPerASIC,
		Stacked:        c.Stacked,
		Carbon:         &cm,
	}, c.Model, nil
}
