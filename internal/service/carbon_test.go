package service

import (
	"strings"
	"testing"
)

// TestHashObjectiveDefaultsToTCO: an omitted objective and an explicit
// "tco" are the same question and must share a cache entry.
func TestHashObjectiveDefaultsToTCO(t *testing.T) {
	a := hashOf(t, `{"app":"bitcoin"}`)
	b := hashOf(t, `{"app":"bitcoin","objective":"tco"}`)
	if a != b {
		t.Fatalf("omitted vs spelled objective changed hash: %s vs %s", a, b)
	}
}

// TestHashObjectiveSeparatesCarbon: a carbon-objective request is a
// different question — its echo field and optimization intent differ —
// so it must not collide with the TCO request over the same sweep.
func TestHashObjectiveSeparatesCarbon(t *testing.T) {
	a := hashOf(t, `{"app":"bitcoin"}`)
	b := hashOf(t, `{"app":"bitcoin","objective":"carbon"}`)
	if a == b {
		t.Fatal("carbon objective hashed identically to tco")
	}
}

// TestHashIgnoresSpelledCarbonDefaults: writing out the default carbon
// model field by field must hash identically to omitting the block.
func TestHashIgnoresSpelledCarbonDefaults(t *testing.T) {
	a := hashOf(t, `{"app":"bitcoin"}`)
	b := hashOf(t, `{"app":"bitcoin","carbon":{
		"wafer_kg_co2e":950,"package_kg_co2e":0.15,"heatsink_kg_co2e":1.1,
		"board_kg_co2e":75,"grid_g_co2e_per_kwh":475,"pue":1.1,
		"lifetime_years":1.5,"utilization":1.0}}`)
	if a != b {
		t.Fatalf("spelled-out default carbon model changed hash: %s vs %s", a, b)
	}
}

// TestHashSeparatesCarbonParams: every carbon override that changes the
// resolved model must change the hash.
func TestHashSeparatesCarbonParams(t *testing.T) {
	base := hashOf(t, `{"app":"bitcoin"}`)
	for _, body := range []string{
		`{"app":"bitcoin","carbon":{"wafer_kg_co2e":1200}}`,
		`{"app":"bitcoin","carbon":{"grid_g_co2e_per_kwh":20}}`,
		`{"app":"bitcoin","carbon":{"utilization":0.5}}`,
		`{"app":"bitcoin","carbon":{"lifetime_years":3}}`,
	} {
		if hashOf(t, body) == base {
			t.Errorf("carbon override did not change hash: %s", body)
		}
	}
}

// TestCanonicalizeRejectsBadCarbon covers the request-validation edges:
// an unknown objective, a NaN-free but invalid model, and utilization
// out of range must all fail before any sweep runs.
func TestCanonicalizeRejectsBadCarbon(t *testing.T) {
	cases := []struct {
		body string
		want string
	}{
		{`{"app":"bitcoin","objective":"dollars"}`, "unknown objective"},
		{`{"app":"bitcoin","carbon":{"grid_g_co2e_per_kwh":-5}}`, "intensity"},
		{`{"app":"bitcoin","carbon":{"utilization":1.5}}`, "utilization"},
		{`{"app":"bitcoin","carbon":{"pue":0.8}}`, "PUE"},
	}
	for _, tc := range cases {
		_, err := Canonicalize(decode(t, tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Canonicalize(%s) err = %v, want mention of %q", tc.body, err, tc.want)
		}
	}
	// Zero intensity is a valid decarbonized grid, not an error.
	if _, err := Canonicalize(decode(t, `{"app":"bitcoin","carbon":{"grid_g_co2e_per_kwh":0}}`)); err != nil {
		t.Errorf("zero grid intensity rejected: %v", err)
	}
}

// TestCanonicalObjectiveEcho: the resolved objective rides into the
// canonical form (and from there into the result JSON).
func TestCanonicalObjectiveEcho(t *testing.T) {
	can, err := Canonicalize(decode(t, `{"app":"bitcoin","objective":"carbon"}`))
	if err != nil {
		t.Fatal(err)
	}
	if can.Objective != "carbon" {
		t.Errorf("Objective = %q, want carbon", can.Objective)
	}
	if can.Carbon.GridGCO2ePerKWh != 475 {
		t.Errorf("default grid intensity = %v, want 475", can.Carbon.GridGCO2ePerKWh)
	}
}
