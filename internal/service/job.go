package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"asiccloud/internal/core"
	"asiccloud/internal/obs"
)

// State is a job's lifecycle phase. Transitions only move rightward:
//
//	queued -> running -> done | failed | canceled
//	queued -> canceled            (canceled before a worker claimed it)
//
// A cache hit creates the job directly in state done with Cached set.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final (done, failed or
// canceled), which is when SSE event streams close.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one asynchronous sweep. All exported access goes through
// methods; the engine's progress callback writes the atomic counters
// without taking the mutex, so polling status never contends with the
// sweep's workers.
type Job struct {
	id   string
	hash string
	can  Canonical

	timeout time.Duration

	// span is the job's trace span, created at submission as a child of
	// the submitting request's span (so the whole request is one
	// connected trace) and ended on the terminal transition. It is an
	// identity + timer, not a context; the run context is rebuilt per
	// worker from the server's base context.
	span *obs.Span

	mu       sync.Mutex
	state    State
	cached   bool
	errMsg   string
	result   []byte
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	userStop bool

	// Sweep telemetry stored at completion for the trace endpoint:
	// the engine's prune accounting and the shared plan cache's
	// hit/miss delta observed across this job's run.
	pruned               *core.PruneSummary
	planHits, planMisses int64

	geomsDone  atomic.Int64
	geomsTotal atomic.Int64
}

// StatusJSON is the body of GET /v1/sweeps/{id} (and the POST reply).
type StatusJSON struct {
	// ID addresses the job in later calls.
	ID string `json:"id"`
	// State is queued, running, done, failed or canceled.
	State State `json:"state"`
	// RequestHash is the canonical hash of the submitted sweep.
	RequestHash string `json:"request_hash"`
	// TraceID addresses the job's end-to-end trace
	// (GET /v1/sweeps/{id}/trace); log lines carry the same value.
	TraceID string `json:"trace_id,omitempty"`
	// Cached is true when the result was served from the result cache
	// without running the engine.
	Cached bool `json:"cached"`
	// GeometriesDone and GeometriesTotal report sweep progress in
	// deduplicated geometry cells (counts, not configurations: one cell
	// spawns stacking x voltage candidates).
	GeometriesDone  int64 `json:"geometries_done"`
	GeometriesTotal int64 `json:"geometries_total"`
	// CreatedAt, StartedAt and FinishedAt are RFC 3339 timestamps;
	// Started/Finished are empty until reached.
	CreatedAt  string `json:"created_at"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
	// Error holds the failure or cancellation reason for terminal
	// non-done states.
	Error string `json:"error,omitempty"`
}

// Status snapshots the job for JSON rendering.
func (j *Job) Status() StatusJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := StatusJSON{
		ID:              j.id,
		State:           j.state,
		RequestHash:     j.hash,
		Cached:          j.cached,
		GeometriesDone:  j.geomsDone.Load(),
		GeometriesTotal: j.geomsTotal.Load(),
		CreatedAt:       j.created.UTC().Format(time.RFC3339Nano),
		Error:           j.errMsg,
	}
	if tid := j.span.TraceID(); !tid.IsZero() {
		s.TraceID = tid.String()
	}
	if !j.started.IsZero() {
		s.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		s.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return s
}

// snapshot returns the terminal fields needed by the result endpoint.
func (j *Job) snapshot() (state State, result []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.errMsg
}

// requestCancel cancels the job's context (if it has started) and marks
// the cancellation as user-requested so the terminal state becomes
// canceled rather than failed. Canceling a still-queued job completes
// it immediately; canceling a terminal job is a harmless no-op.
func (j *Job) requestCancel() {
	j.mu.Lock()
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		j.mu.Unlock()
		return
	case StateQueued:
		j.userStop = true
		j.state = StateCanceled
		j.errMsg = "canceled before start"
		j.finished = time.Now()
		j.mu.Unlock()
		j.span.End()
		return
	}
	j.userStop = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// claim moves a queued job to running and installs its cancel func. It
// returns false when the job was canceled while waiting in the queue,
// so the worker skips it.
func (j *Job) claim(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish records the terminal state. A user-requested stop that
// surfaces as a context error lands in canceled; every other error in
// failed.
func (j *Job) finish(result []byte, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
	case j.userStop:
		j.state = StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.mu.Unlock()
	j.span.End()
}

// completeFromCache marks a freshly created job done with cached bytes.
func (j *Job) completeFromCache(result []byte) {
	j.mu.Lock()
	j.state = StateDone
	j.cached = true
	j.result = result
	j.finished = time.Now()
	j.mu.Unlock()
	j.span.End()
}

// setSweepStats stores the engine's prune accounting and the plan
// cache's hit/miss delta for the trace endpoint. Called by the worker
// before the terminal transition.
func (j *Job) setSweepStats(pruned core.PruneSummary, planHits, planMisses int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.pruned = &pruned
	j.planHits, j.planMisses = planHits, planMisses
}

// sweepStats returns the stored telemetry (pruned is nil until the
// sweep has run).
func (j *Job) sweepStats() (pruned *core.PruneSummary, planHits, planMisses int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pruned, j.planHits, j.planMisses
}
