package service

import (
	"encoding/json"
	"testing"
)

// decode parses a JSON request body exactly as the HTTP handler does.
func decode(t *testing.T, body string) *Request {
	t.Helper()
	var req Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	return &req
}

// hashOf canonicalizes a JSON body and returns its request hash.
func hashOf(t *testing.T, body string) string {
	t.Helper()
	can, err := Canonicalize(decode(t, body))
	if err != nil {
		t.Fatalf("canonicalize %s: %v", body, err)
	}
	return can.Hash()
}

func TestHashIgnoresFieldOrder(t *testing.T) {
	a := hashOf(t, `{"app":"bitcoin","sweep":{"voltages_v":[0.5,0.6],"chips_per_lane":[1,2]}}`)
	b := hashOf(t, `{"sweep":{"chips_per_lane":[1,2],"voltages_v":[0.5,0.6]},"app":"bitcoin"}`)
	if a != b {
		t.Fatalf("field order changed hash: %s vs %s", a, b)
	}
}

func TestHashIgnoresFloatSpelling(t *testing.T) {
	a := hashOf(t, `{"app":"bitcoin","sweep":{"voltages_v":[0.5]}}`)
	b := hashOf(t, `{"app":"bitcoin","sweep":{"voltages_v":[0.50]}}`)
	c := hashOf(t, `{"app":"bitcoin","sweep":{"voltages_v":[5e-1]}}`)
	if a != b || a != c {
		t.Fatalf("float spelling changed hash: %s / %s / %s", a, b, c)
	}
}

func TestHashIgnoresGridOrderAndDuplicateVoltages(t *testing.T) {
	a := hashOf(t, `{"app":"bitcoin","sweep":{"voltages_v":[0.6,0.5,0.5],"silicon_per_lane_mm2":[50,30]}}`)
	b := hashOf(t, `{"app":"bitcoin","sweep":{"voltages_v":[0.5,0.6],"silicon_per_lane_mm2":[30,50]}}`)
	if a != b {
		t.Fatalf("grid order / duplicate voltage changed hash: %s vs %s", a, b)
	}
}

func TestHashKeepsDuplicateSilicon(t *testing.T) {
	// Duplicate silicon entries change the sweep's duplicate accounting,
	// which is part of the response — they must NOT collapse.
	a := hashOf(t, `{"app":"bitcoin","sweep":{"silicon_per_lane_mm2":[30,30]}}`)
	b := hashOf(t, `{"app":"bitcoin","sweep":{"silicon_per_lane_mm2":[30]}}`)
	if a == b {
		t.Fatal("duplicate silicon entries collapsed, but they change PruneSummary.Duplicates")
	}
}

func TestHashIgnoresSpelledOutDefaults(t *testing.T) {
	// Explicitly writing the default TCO model must hash like omitting it.
	a := hashOf(t, `{"app":"bitcoin"}`)
	b := hashOf(t, `{"app":"bitcoin","tco":{"pue":1.1}}`) // tco.Default().PUE
	if a != b {
		t.Fatalf("spelled-out default PUE changed hash: %s vs %s", a, b)
	}
	// Same for the custom RCA defaults.
	c := hashOf(t, `{"app":"custom","rca":{"area_mm2":2,"nominal_perf":100,"nominal_power_density_w_per_mm2":0.3}}`)
	d := hashOf(t, `{"app":"custom","rca":{"area_mm2":2,"nominal_perf":100,"nominal_power_density_w_per_mm2":0.3,"nominal_voltage_v":1.0,"nominal_freq_hz":800e6,"leakage_fraction":0.03,"name":"custom","perf_unit":"ops/s"}}`)
	if c != d {
		t.Fatalf("spelled-out custom RCA defaults changed hash: %s vs %s", c, d)
	}
}

func TestHashExcludesTimeout(t *testing.T) {
	a := hashOf(t, `{"app":"bitcoin"}`)
	b := hashOf(t, `{"app":"bitcoin","timeout_seconds":7}`)
	if a != b {
		t.Fatal("timeout_seconds entered the hash; it is an execution option")
	}
}

func TestHashSeparatesDifferentSweeps(t *testing.T) {
	base := hashOf(t, `{"app":"bitcoin"}`)
	for name, body := range map[string]string{
		"app":      `{"app":"litecoin"}`,
		"voltages": `{"app":"bitcoin","sweep":{"voltages_v":[0.5]}}`,
		"chips":    `{"app":"bitcoin","sweep":{"chips_per_lane":[1,2,3]}}`,
		"dram":     `{"app":"bitcoin","sweep":{"dram_per_asic":[0,2]}}`,
		"stacked":  `{"app":"bitcoin","sweep":{"stacked":true}}`,
		"tco":      `{"app":"bitcoin","tco":{"electricity_per_kwh":0.10}}`,
	} {
		if h := hashOf(t, body); h == base {
			t.Errorf("%s: hash collided with the default bitcoin sweep", name)
		}
	}
}

func TestInertDRAMKindCannotSplitHashes(t *testing.T) {
	// With no DRAM swept, dram_kind is inert and must not split hashes.
	a := hashOf(t, `{"app":"bitcoin"}`)
	b := hashOf(t, `{"app":"bitcoin","sweep":{"dram_kind":"GDDR5"}}`)
	if a != b {
		t.Fatal("inert dram_kind split the hash of two identical sweeps")
	}
	// Once DRAM is swept, the kind matters.
	c := hashOf(t, `{"app":"bitcoin","sweep":{"dram_per_asic":[2],"dram_kind":"GDDR5"}}`)
	d := hashOf(t, `{"app":"bitcoin","sweep":{"dram_per_asic":[2],"dram_kind":"DDR4"}}`)
	if c == d {
		t.Fatal("dram_kind ignored although the sweep provisions DRAM")
	}
}

func TestCanonicalizeRejects(t *testing.T) {
	for name, body := range map[string]string{
		"missing app":      `{}`,
		"unknown app":      `{"app":"quantum"}`,
		"cnn not served":   `{"app":"cnn"}`,
		"custom needs rca": `{"app":"custom"}`,
		"negative voltage": `{"app":"bitcoin","sweep":{"voltages_v":[-0.5]}}`,
		"zero silicon":     `{"app":"bitcoin","sweep":{"silicon_per_lane_mm2":[0]}}`,
		"zero chips":       `{"app":"bitcoin","sweep":{"chips_per_lane":[0]}}`,
		"negative dram":    `{"app":"bitcoin","sweep":{"dram_per_asic":[-1]}}`,
		"bad dram kind":    `{"app":"bitcoin","sweep":{"dram_per_asic":[1],"dram_kind":"SRAM"}}`,
		"bad tco":          `{"app":"bitcoin","tco":{"pue":0.5}}`,
		"bad rca":          `{"app":"custom","rca":{"area_mm2":-1,"nominal_perf":1,"nominal_power_density_w_per_mm2":0.1}}`,
	} {
		if _, err := Canonicalize(decode(t, body)); err == nil {
			t.Errorf("%s: Canonicalize accepted %s", name, body)
		}
	}
}

func TestCanonicalXcodeDefaults(t *testing.T) {
	can, err := Canonicalize(decode(t, `{"app":"xcode"}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(can.DRAMPerASIC) != 9 || can.DRAMPerASIC[0] != 1 || can.DRAMPerASIC[8] != 9 {
		t.Fatalf("xcode DRAM default = %v, want 1..9", can.DRAMPerASIC)
	}
	if got := can.RCA.PerfUnit; got != "Kfps" {
		t.Fatalf("xcode perf unit = %q", got)
	}
}

func TestPlanMatchesCanonicalGrids(t *testing.T) {
	can, err := Canonicalize(decode(t, `{"app":"bitcoin","sweep":{"voltages_v":[0.6,0.5],"chips_per_lane":[2,1]}}`))
	if err != nil {
		t.Fatal(err)
	}
	sweep, model, err := can.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Voltages) != 2 || sweep.Voltages[0] != 0.5 {
		t.Fatalf("sweep voltages = %v", sweep.Voltages)
	}
	if len(sweep.ChipsPerLane) != 2 || sweep.ChipsPerLane[0] != 1 {
		t.Fatalf("sweep chips = %v", sweep.ChipsPerLane)
	}
	if err := model.Validate(); err != nil {
		t.Fatalf("planned model invalid: %v", err)
	}
}
