package service

import (
	"container/list"
	"sync"

	"asiccloud/internal/obs"
)

// resultCache is a concurrency-safe LRU over marshaled result bytes,
// keyed on the canonical request hash. Entries are immutable once
// stored (the server never mutates a result after marshaling), so a hit
// can hand out the stored slice without copying.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // hash -> element whose Value is *cacheEntry

	hits, misses *obs.Counter
	residency    *obs.Gauge
}

type cacheEntry struct {
	hash string
	data []byte
}

// newResultCache builds a cache holding up to max completed results;
// max <= 0 disables caching (every Get misses, Put is a no-op).
func newResultCache(max int, rec *obs.Recorder) *resultCache {
	reg := rec.Registry()
	reg.SetHelp("asiccloud_cache_hits_total",
		"sweep requests answered from the result cache")
	reg.SetHelp("asiccloud_cache_misses_total",
		"sweep requests that had to run on the engine")
	reg.SetHelp("asiccloud_cache_entries",
		"completed sweep results resident in the cache")
	return &resultCache{
		max:       max,
		order:     list.New(),
		entries:   make(map[string]*list.Element),
		hits:      rec.Counter("asiccloud_cache_hits_total"),
		misses:    rec.Counter("asiccloud_cache_misses_total"),
		residency: rec.Gauge("asiccloud_cache_entries"),
	}
}

// Get returns the cached result bytes for a hash, promoting the entry
// to most-recently-used, and counts the lookup as a hit or miss.
func (c *resultCache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).data, true
}

// Put stores result bytes under a hash, evicting the least recently
// used entry when the cache is full. Re-putting an existing hash keeps
// the first bytes: results are pure functions of the hash, so the
// replacement could only be identical anyway, and keeping the original
// preserves the byte-identity guarantee trivially.
func (c *resultCache) Put(hash string, data []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[hash] = c.order.PushFront(&cacheEntry{hash: hash, data: data})
	if c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).hash)
	}
	c.residency.Set(float64(c.order.Len()))
}

// Len reports resident entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns hit/miss totals since the cache was created.
func (c *resultCache) Stats() (hits, misses int64) {
	return c.hits.Value(), c.misses.Value()
}
