package dram

import (
	"testing"
	"testing/quick"
)

func TestCatalogCoversAllKinds(t *testing.T) {
	for _, k := range []Kind{LPDDR3, DDR4, GDDR5, HBM} {
		d, err := Catalog(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if d.Bandwidth <= 0 || d.Cost <= 0 || d.Power <= 0 {
			t.Errorf("%v: non-positive bandwidth/cost/power: %+v", k, d)
		}
		if d.Kind != k {
			t.Errorf("%v: kind mismatch", k)
		}
	}
	if _, err := Catalog(Kind(99)); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{LPDDR3: "LPDDR3", DDR4: "DDR4", GDDR5: "GDDR5", HBM: "HBM", Kind(7): "Kind(7)"}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestBandwidthOrdering(t *testing.T) {
	lp, _ := Catalog(LPDDR3)
	d4, _ := Catalog(DDR4)
	g5, _ := Catalog(GDDR5)
	hbm, _ := Catalog(HBM)
	if !(lp.Bandwidth < d4.Bandwidth && d4.Bandwidth < g5.Bandwidth && g5.Bandwidth < hbm.Bandwidth) {
		t.Error("bandwidth should rise LPDDR3 < DDR4 < GDDR5 < HBM")
	}
	// But so does power and cost.
	if !(lp.Power < hbm.Power && lp.Cost < hbm.Cost) {
		t.Error("HBM should cost more power and dollars than LPDDR3")
	}
}

func TestSubsystemAggregates(t *testing.T) {
	s, err := NewSubsystem(LPDDR3, 6)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Device
	if got := s.Bandwidth(); got != 6*d.Bandwidth {
		t.Errorf("Bandwidth = %v, want %v", got, 6*d.Bandwidth)
	}
	if got := s.Power(); got != 6*d.Power {
		t.Errorf("Power = %v", got)
	}
	if got := s.CtrlPower(); got != 6*d.CtrlPower {
		t.Errorf("CtrlPower = %v", got)
	}
	if got := s.CtrlArea(); got != 6*d.CtrlArea {
		t.Errorf("CtrlArea = %v", got)
	}
	if got := s.Cost(); got != 6*d.Cost {
		t.Errorf("Cost = %v", got)
	}
	if got := s.SignalPins(); got != 6*d.SignalPins {
		t.Errorf("SignalPins = %v", got)
	}
}

func TestSubsystemErrors(t *testing.T) {
	if _, err := NewSubsystem(LPDDR3, -1); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := NewSubsystem(Kind(42), 1); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestBoardDepthRows(t *testing.T) {
	// LPDDR3 sits in rows of 3 per side: 6 devices per row-pair.
	cases := []struct {
		n     int
		pairs int
	}{
		{0, 0}, {1, 1}, {3, 1}, {6, 1}, {7, 2}, {9, 2}, {12, 2}, {13, 3},
	}
	for _, c := range cases {
		s, _ := NewSubsystem(LPDDR3, c.n)
		d := s.Device.BoardDepth * float64(c.pairs)
		if got := s.BoardDepth(); got != d {
			t.Errorf("BoardDepth(%d devices) = %v, want %v (%d row pairs)", c.n, got, d, c.pairs)
		}
	}
}

func TestHBMNoBoardDepth(t *testing.T) {
	s, _ := NewSubsystem(HBM, 4)
	if got := s.BoardDepth(); got != 0 {
		t.Errorf("HBM board depth = %v, want 0 (stacked on interposer)", got)
	}
}

func TestBoardDepthMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		n1, n2 := int(a%32), int(b%32)
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		s1, _ := NewSubsystem(DDR4, n1)
		s2, _ := NewSubsystem(DDR4, n2)
		return s1.BoardDepth() <= s2.BoardDepth()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
