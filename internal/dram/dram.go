// Package dram models the ASIC-local DRAM subsystem: the memory
// technologies an ASIC Cloud can provision per application ("LP-DDR3,
// DDR4, GDDR5, HBM..."), their bandwidth, power, cost, board footprint,
// and the on-die controller each channel requires (paper §5, §9).
package dram

import "fmt"

// Kind selects a DRAM technology.
type Kind int

const (
	LPDDR3 Kind = iota
	DDR4
	GDDR5
	HBM
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LPDDR3:
		return "LPDDR3"
	case DDR4:
		return "DDR4"
	case GDDR5:
		return "GDDR5"
	case HBM:
		return "HBM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device describes one DRAM package/stack plus the per-channel controller
// it requires on the ASIC.
type Device struct {
	Kind      Kind
	Bandwidth float64 // GB/s per device
	Power     float64 // W per device at full utilization
	Cost      float64 // $ per device
	// BoardDepth is the lane depth (m, along airflow) consumed per row
	// of devices beside the ASIC. HBM consumes none (it stacks on the
	// interposer).
	BoardDepth float64
	// DevicesPerRow beside an ASIC; the paper places video-transcode
	// DRAMs "in rows of 3 on either side of the ASIC".
	DevicesPerRow int
	// CtrlArea is the ASIC-side controller+PHY area per device (mm²).
	CtrlArea float64
	// CtrlPower is the controller+PHY power per device (W). Memory
	// controllers "do not voltage scale" — this power is fixed.
	CtrlPower float64
	// SignalPins per device on the ASIC package.
	SignalPins int
}

// Catalog returns the modeled device for a technology, calibrated to
// 2015-era parts.
func Catalog(k Kind) (Device, error) {
	switch k {
	case LPDDR3:
		return Device{
			Kind: LPDDR3, Bandwidth: 12.8, Power: 0.9, Cost: 7.0,
			BoardDepth: 0.014, DevicesPerRow: 3,
			CtrlArea: 6.5, CtrlPower: 0.45, SignalPins: 60,
		}, nil
	case DDR4:
		return Device{
			Kind: DDR4, Bandwidth: 19.2, Power: 2.5, Cost: 9.0,
			BoardDepth: 0.015, DevicesPerRow: 3,
			CtrlArea: 7.5, CtrlPower: 0.7, SignalPins: 90,
		}, nil
	case GDDR5:
		return Device{
			Kind: GDDR5, Bandwidth: 28.0, Power: 5.5, Cost: 14.0,
			BoardDepth: 0.016, DevicesPerRow: 2,
			CtrlArea: 11.0, CtrlPower: 1.6, SignalPins: 110,
		}, nil
	case HBM:
		return Device{
			Kind: HBM, Bandwidth: 128.0, Power: 14.0, Cost: 120.0,
			BoardDepth: 0, DevicesPerRow: 0,
			CtrlArea: 18.0, CtrlPower: 2.5, SignalPins: 0,
		}, nil
	default:
		return Device{}, fmt.Errorf("dram: unknown kind %d", int(k))
	}
}

// Subsystem is the DRAM complement attached to one ASIC.
type Subsystem struct {
	Device  Device
	PerASIC int // devices per ASIC
}

// NewSubsystem builds a subsystem of n devices of kind k per ASIC.
func NewSubsystem(k Kind, n int) (Subsystem, error) {
	if n < 0 {
		return Subsystem{}, fmt.Errorf("dram: negative device count %d", n)
	}
	d, err := Catalog(k)
	if err != nil {
		return Subsystem{}, err
	}
	return Subsystem{Device: d, PerASIC: n}, nil
}

// Bandwidth is the aggregate GB/s available to one ASIC.
func (s Subsystem) Bandwidth() float64 { return s.Device.Bandwidth * float64(s.PerASIC) }

// Power is the DRAM-side power per ASIC (devices only; controller power
// is on the ASIC die and reported separately).
func (s Subsystem) Power() float64 { return s.Device.Power * float64(s.PerASIC) }

// CtrlPower is the fixed (non-voltage-scaling) controller power on the
// ASIC per ASIC.
func (s Subsystem) CtrlPower() float64 { return s.Device.CtrlPower * float64(s.PerASIC) }

// CtrlArea is the die area consumed by controllers per ASIC in mm².
func (s Subsystem) CtrlArea() float64 { return s.Device.CtrlArea * float64(s.PerASIC) }

// Cost is the DRAM bill of materials per ASIC.
func (s Subsystem) Cost() float64 { return s.Device.Cost * float64(s.PerASIC) }

// SignalPins is the extra package pin count per ASIC.
func (s Subsystem) SignalPins() int { return s.Device.SignalPins * s.PerASIC }

// BoardDepth is the lane depth (m) consumed next to one ASIC by its DRAM
// rows: devices fill rows of DevicesPerRow on either side of the ASIC,
// perpendicular to the airflow.
func (s Subsystem) BoardDepth() float64 {
	if s.PerASIC == 0 || s.Device.DevicesPerRow == 0 {
		return 0
	}
	// Two rows (one per side) are consumed per row-pair; row pairs sit
	// at the same lane depth.
	perPair := 2 * s.Device.DevicesPerRow
	pairs := (s.PerASIC + perPair - 1) / perPair
	return float64(pairs) * s.Device.BoardDepth
}
