package vlsi

import (
	"fmt"
	"math"
	"sort"
)

// Binning models process variation: manufactured chips spread around the
// nominal frequency, and a vendor must decide what to promise. The paper
// (§3) explains why merged ASIC development and cloud operation won:
// "meeting an exact target for an ASIC chip is a challenging process,
// and tuning the system until it meets the promised specifications
// exactly ... delays the deployment of the ASICs." A self-operated cloud
// runs every chip at its own best frequency immediately; a hardware
// vendor ships only chips that meet the advertised bin and waits on the
// rest.
type Binning struct {
	// Sigma is the relative standard deviation of chip frequency
	// (5-8% is typical for a mature 28nm process).
	Sigma float64
}

// DefaultBinning is a mature-process spread.
func DefaultBinning() Binning { return Binning{Sigma: 0.06} }

// Validate reports whether the model is usable.
func (b Binning) Validate() error {
	if b.Sigma < 0 || b.Sigma >= 0.5 {
		return fmt.Errorf("vlsi: binning sigma %v outside [0, 0.5)", b.Sigma)
	}
	return nil
}

// normalCDF is Φ(x) via the complementary error function.
func normalCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// SpecYield is the fraction of chips meeting a promised frequency,
// expressed relative to nominal (promise=0.95 ⇒ 95% of nominal).
func (b Binning) SpecYield(promise float64) float64 {
	//lint:ignore floatcmp Sigma==0 is the assigned "no process variation" model, never computed
	if b.Sigma == 0 {
		if promise <= 1 {
			return 1
		}
		return 0
	}
	return 1 - normalCDF((promise-1)/b.Sigma)
}

// SelfRunThroughput is the expected per-chip throughput, relative to
// nominal, when the operator runs every chip at its own measured
// frequency (the cloud model): simply the mean of the distribution, 1.0,
// less a small margin for the guard band the operator still applies.
func (b Binning) SelfRunThroughput(guardBand float64) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if guardBand < 0 || guardBand >= 1 {
		return 0, fmt.Errorf("vlsi: guard band %v outside [0, 1)", guardBand)
	}
	return 1 - guardBand, nil
}

// VendorThroughput is the expected per-manufactured-chip throughput when
// chips are sold at a promised bin: chips below the bin are discarded
// (or delayed), chips above run at the promise. Expected throughput per
// manufactured chip = promise × yield(promise).
func (b Binning) VendorThroughput(promise float64) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if promise <= 0 {
		return 0, fmt.Errorf("vlsi: promise %v must be positive", promise)
	}
	return promise * b.SpecYield(promise), nil
}

// BestVendorPromise searches the promised bin that maximizes expected
// throughput per manufactured chip, returning the promise and its
// throughput. Even at the optimum, the vendor model loses to self-run:
// discarded slow chips and the under-clocking of fast chips both waste
// silicon.
func (b Binning) BestVendorPromise() (promise, throughput float64, err error) {
	if err := b.Validate(); err != nil {
		return 0, 0, err
	}
	grid := make([]float64, 0, 81)
	for p := 0.70; p <= 1.10001; p += 0.005 {
		grid = append(grid, p)
	}
	best := -1.0
	bestP := 0.0
	for _, p := range grid {
		t, err := b.VendorThroughput(p)
		if err != nil {
			return 0, 0, err
		}
		if t > best {
			best, bestP = t, p
		}
	}
	return bestP, best, nil
}

// CloudAdvantage quantifies §3's argument: the throughput ratio of the
// self-operated cloud over the best-binning hardware vendor, per
// manufactured chip, with the given operator guard band.
func (b Binning) CloudAdvantage(guardBand float64) (float64, error) {
	self, err := b.SelfRunThroughput(guardBand)
	if err != nil {
		return 0, err
	}
	_, vendor, err := b.BestVendorPromise()
	if err != nil {
		return 0, err
	}
	if vendor <= 0 {
		return math.Inf(1), nil
	}
	return self / vendor, nil
}

// SampleFrequencies draws a deterministic sample of relative chip
// frequencies for simulation (inverse-CDF over a stratified grid, so the
// sample is reproducible and exactly spans the distribution).
func (b Binning) SampleFrequencies(n int) ([]float64, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("vlsi: sample size %d must be positive", n)
	}
	out := make([]float64, n)
	for i := range out {
		// Midpoint-stratified quantiles.
		q := (float64(i) + 0.5) / float64(n)
		out[i] = 1 + b.Sigma*inverseNormalCDF(q)
	}
	sort.Float64s(out)
	return out, nil
}

// inverseNormalCDF is the Acklam approximation of Φ⁻¹, accurate to
// ~1e-9 over (0, 1).
func inverseNormalCDF(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	bb := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((bb[0]*r+bb[1])*r+bb[2])*r+bb[3])*r+bb[4])*r + 1)
	}
}
