package vlsi

import (
	"fmt"

	"asiccloud/internal/units"
)

// Netlist is a coarse structural description of an accelerator, the input
// to the gate-level area/power estimator. It substitutes for a synthesis
// run when designing a new RCA from scratch (see examples/customaccel).
type Netlist struct {
	// Name of the design.
	Name string

	// Gates is the combinational complexity in NAND2-equivalent gates.
	Gates float64

	// Flops is the number of flip-flops (pipeline and state registers).
	Flops float64

	// SRAMBits is the total on-chip SRAM capacity in bits.
	SRAMBits float64

	// CombActivity is the average combinational toggle rate per cycle.
	// Cryptographic logic approaches 0.5 ("50% or higher"); typical
	// datapaths run nearer 0.1–0.2.
	CombActivity float64

	// FlopActivity is the flip-flop toggle rate per cycle; the paper
	// notes 100% for Bitcoin's fully random data.
	FlopActivity float64

	// SRAMAccessesPerCycle is the average number of word accesses per
	// cycle across all SRAMs.
	SRAMAccessesPerCycle float64

	// SRAMWordBits is the word width of SRAM accesses.
	SRAMWordBits float64
}

// Technology holds the per-element area and energy coefficients of a
// standard-cell library at its nominal voltage. The defaults are
// calibrated so a structural model of the paper's Bitcoin RCA reproduces
// its published 0.66 mm² / 2 W/mm² @ 830 MHz within a few percent (this is
// asserted by tests).
type Technology struct {
	Name string

	// NominalVoltage is the characterization supply voltage in V.
	NominalVoltage float64

	// GateArea is placed area per NAND2-equivalent in µm², including
	// routing/utilization overhead.
	GateArea float64

	// FlopArea is placed area per flop in µm², including clock tree.
	FlopArea float64

	// SRAMBitArea is array area per bit in µm² including periphery.
	SRAMBitArea float64

	// GateEnergy is switching energy per gate toggle in femtojoules.
	GateEnergy float64

	// FlopEnergy is energy per flop toggle in femtojoules, including its
	// share of the clock tree.
	FlopEnergy float64

	// SRAMBitEnergy is energy per bit accessed in femtojoules.
	SRAMBitEnergy float64

	// LeakagePerMM2 is leakage power density in W/mm² at nominal voltage.
	LeakagePerMM2 float64
}

// Generic28nm is the calibrated 28nm HPM-class library model.
func Generic28nm() Technology {
	return Technology{
		Name:           "generic 28nm",
		NominalVoltage: 1.0,
		GateArea:       0.95,
		FlopArea:       4.6,
		SRAMBitArea:    0.16,
		GateEnergy:     4.0,
		FlopEnergy:     10.5,
		SRAMBitEnergy:  2.2,
		LeakagePerMM2:  0.04,
	}
}

// Estimate converts a netlist into an RCA Spec at the given clock
// frequency (Hz) and performance (ops per cycle in perfUnit·s terms, i.e.
// throughput per clock). perfPerCycle is the work completed per clock in
// PerfUnit·seconds — e.g. a fully pipelined hash core finishing one hash
// per cycle at GH/s granularity passes 1e-9.
func (t Technology) Estimate(n Netlist, freqHz, perfPerCycle float64, perfUnit string) (Spec, error) {
	if n.Gates < 0 || n.Flops < 0 || n.SRAMBits < 0 {
		return Spec{}, fmt.Errorf("vlsi: netlist %s has negative element counts", n.Name)
	}
	if freqHz <= 0 {
		return Spec{}, fmt.Errorf("vlsi: netlist %s needs a positive frequency", n.Name)
	}
	areaUM2 := n.Gates*t.GateArea + n.Flops*t.FlopArea + n.SRAMBits*t.SRAMBitArea
	areaMM2 := units.UM2ToMM2(areaUM2)
	if areaMM2 <= 0 {
		return Spec{}, fmt.Errorf("vlsi: netlist %s has zero area", n.Name)
	}

	// Energy per cycle in femtojoules.
	epc := n.Gates*n.CombActivity*t.GateEnergy +
		n.Flops*n.FlopActivity*t.FlopEnergy +
		n.SRAMAccessesPerCycle*n.SRAMWordBits*t.SRAMBitEnergy
	dynW := epc * 1e-15 * freqHz
	leakW := t.LeakagePerMM2 * areaMM2
	totalW := dynW + leakW

	sramAreaFrac := n.SRAMBits * t.SRAMBitArea / areaUM2
	sramPowerW := n.SRAMAccessesPerCycle*n.SRAMWordBits*t.SRAMBitEnergy*1e-15*freqHz +
		leakW*sramAreaFrac
	sramFrac := 0.0
	if totalW > 0 {
		sramFrac = sramPowerW / totalW
	}

	spec := Spec{
		Name:                n.Name,
		PerfUnit:            perfUnit,
		Area:                areaMM2,
		NominalVoltage:      t.NominalVoltage,
		NominalFreq:         freqHz,
		NominalPerf:         perfPerCycle * freqHz,
		NominalPowerDensity: totalW / areaMM2,
		LeakageFraction:     leakW / totalW,
		SRAMPowerFraction:   sramFrac,
		VoltageScalable:     true,
	}
	if n.SRAMBits > 0 {
		spec.SRAMVmin = 0.9
	}
	return spec, spec.Validate()
}
