package vlsi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestYieldBounds(t *testing.T) {
	p := UMC28nm()
	if y := p.Yield(0); y != 1 {
		t.Errorf("Yield(0) = %v, want 1", y)
	}
	y600 := p.Yield(600)
	if y600 <= 0 || y600 >= 1 {
		t.Errorf("Yield(600) = %v, want in (0,1)", y600)
	}
	// Large dies yield worse.
	if p.Yield(100) <= y600 {
		t.Errorf("Yield(100)=%v should exceed Yield(600)=%v", p.Yield(100), y600)
	}
}

func TestYieldMonotoneProperty(t *testing.T) {
	p := UMC28nm()
	f := func(a, b uint16) bool {
		a1 := 1 + float64(a%600)
		a2 := 1 + float64(b%600)
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		return p.Yield(a1) >= p.Yield(a2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiesPerWafer(t *testing.T) {
	p := UMC28nm()
	// A 300 mm wafer is 70,686 mm²; a 600 mm² die should give ~90 gross
	// dies after edge loss.
	got := p.DiesPerWafer(600)
	if got < 80 || got > 100 {
		t.Errorf("DiesPerWafer(600) = %v, want ~90", got)
	}
	small := p.DiesPerWafer(50)
	if small < 1200 || small > 1420 {
		t.Errorf("DiesPerWafer(50) = %v, want ~1300", small)
	}
}

func TestDieCost(t *testing.T) {
	p := UMC28nm()
	c600, err := p.DieCost(600)
	if err != nil {
		t.Fatal(err)
	}
	// Calibration anchor: a max-size 28nm die lands near $125 so that
	// the paper's 80-die energy-optimal Bitcoin server is silicon-
	// dominated at ~$9k (Table 3 / Figure 13).
	if c600 < 90 || c600 > 160 {
		t.Errorf("DieCost(600) = $%.2f, want ~$110-130", c600)
	}
	c100, err := p.DieCost(100)
	if err != nil {
		t.Fatal(err)
	}
	if c100 >= c600/4 {
		t.Errorf("small dies should be much cheaper per die: 100mm²=$%.2f vs 600mm²=$%.2f", c100, c600)
	}
	// Cost per good mm² must increase with die size (yield effect).
	pm100, _ := p.CostPerGoodMM2(100)
	pm600, _ := p.CostPerGoodMM2(600)
	if pm100 >= pm600 {
		t.Errorf("cost/mm² should grow with die size: %v vs %v", pm100, pm600)
	}
}

func TestDieCostErrors(t *testing.T) {
	p := UMC28nm()
	if _, err := p.DieCost(0); err == nil {
		t.Error("zero-area die should fail")
	}
	if _, err := p.DieCost(601); err == nil {
		t.Error("die above the 600 mm² limit should fail")
	}
	bad := p
	bad.WaferCost = 0
	if _, err := bad.DieCost(100); err == nil {
		t.Error("invalid process should fail")
	}
}

func TestDieCostMonotoneProperty(t *testing.T) {
	p := UMC28nm()
	f := func(a, b uint16) bool {
		a1 := 10 + float64(a%590)
		a2 := 10 + float64(b%590)
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		c1, err1 := p.DieCost(a1)
		c2, err2 := p.DieCost(a2)
		return err1 == nil && err2 == nil && c1 <= c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func Test40nmCheaperMasks(t *testing.T) {
	if TSMC40nm().MaskCost >= UMC28nm().MaskCost {
		t.Error("40nm mask NRE should be below 28nm (paper §12: ~half)")
	}
}

func TestPackageCost(t *testing.T) {
	m := DefaultPackageModel()
	// The paper: per-chip assembly about $1; a small low-current chip
	// should cost only a few dollars total.
	c, err := m.Cost(100, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c < 1 || c > 10 {
		t.Errorf("package cost for 100 mm²/20 A = $%.2f, want a few dollars", c)
	}
	// High current adds power pins and cost.
	cHigh, err := m.Cost(100, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cHigh <= c {
		t.Errorf("200 A package ($%.2f) should cost more than 20 A ($%.2f)", cHigh, c)
	}
	if _, err := m.Cost(0, 10, 0); err == nil {
		t.Error("zero-area package should fail")
	}
}

func TestPackagePins(t *testing.T) {
	m := DefaultPackageModel()
	pins := m.Pins(30, 0)
	// 30 A at 0.5 A per pin = 60 power pins, doubled for ground, plus
	// 96 signal pins.
	if pins != 2*60+96 {
		t.Errorf("Pins(30,0) = %d, want 216", pins)
	}
	if got := m.Pins(-5, 0); got != m.BaseSignalPins {
		t.Errorf("negative current should clamp: got %d", got)
	}
	if got := m.Pins(0, 50); got != m.BaseSignalPins+50 {
		t.Errorf("extra signal pins not added: got %d", got)
	}
}

func TestEstimatorReproducesBitcoinRCA(t *testing.T) {
	// Structural model of the unrolled 128-stage double-SHA256 pipeline:
	// ~768 pipeline bits per stage and ~1500 NAND2 of round logic.
	n := Netlist{
		Name:         "bitcoin-structural",
		Gates:        128 * 1500,
		Flops:        128 * 768,
		CombActivity: 0.5,
		FlopActivity: 1.0,
	}
	spec, err := Generic28nm().Estimate(n, 830e6, 1e-9, "GH/s")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spec.Area-0.66)/0.66 > 0.10 {
		t.Errorf("estimated area %.3f mm², want 0.66 ±10%%", spec.Area)
	}
	if math.Abs(spec.NominalPowerDensity-2.0)/2.0 > 0.10 {
		t.Errorf("estimated power density %.3f W/mm², want 2.0 ±10%%", spec.NominalPowerDensity)
	}
	if spec.SRAMPowerFraction != 0 {
		t.Errorf("no SRAM in netlist but SRAM fraction = %v", spec.SRAMPowerFraction)
	}
	if math.Abs(spec.NominalPerf-0.83)/0.83 > 1e-9 {
		t.Errorf("estimated perf %.3f GH/s, want 0.83", spec.NominalPerf)
	}
}

func TestEstimatorSRAMDesign(t *testing.T) {
	n := Netlist{
		Name:                 "sram-heavy",
		Gates:                50_000,
		Flops:                10_000,
		SRAMBits:             128 * 1024 * 8, // 128 KB, the Litecoin scratchpad
		CombActivity:         0.15,
		FlopActivity:         0.3,
		SRAMAccessesPerCycle: 1,
		SRAMWordBits:         128,
	}
	spec, err := Generic28nm().Estimate(n, 800e6, 1e-6, "MH/s")
	if err != nil {
		t.Fatal(err)
	}
	if spec.SRAMPowerFraction <= 0 {
		t.Error("SRAM design should report SRAM power fraction")
	}
	if spec.SRAMVmin != 0.9 {
		t.Errorf("SRAM Vmin = %v, want 0.9", spec.SRAMVmin)
	}
	// SRAM-heavy designs have much lower power density than crypto logic.
	if spec.NominalPowerDensity >= 1.0 {
		t.Errorf("SRAM-heavy density %.3f W/mm² should be well under crypto's 2.0", spec.NominalPowerDensity)
	}
}

func TestEstimatorErrors(t *testing.T) {
	tech := Generic28nm()
	if _, err := tech.Estimate(Netlist{Gates: -1}, 1e9, 1, "x"); err == nil {
		t.Error("negative gates should fail")
	}
	if _, err := tech.Estimate(Netlist{Gates: 100}, 0, 1, "x"); err == nil {
		t.Error("zero frequency should fail")
	}
	if _, err := tech.Estimate(Netlist{}, 1e9, 1, "x"); err == nil {
		t.Error("empty netlist should fail")
	}
}
