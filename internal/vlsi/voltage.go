package vlsi

import (
	"fmt"
	"math"
	"sort"
)

// DelayCurve maps logic supply voltage to normalized critical-path delay
// (delay at the nominal voltage is 1.0). It is implemented as a monotone
// piecewise-cubic (Fritsch–Carlson) interpolant over calibration anchors so
// the curve is smooth, strictly decreasing in voltage, and passes exactly
// through the published operating points.
type DelayCurve struct {
	v, d []float64 // anchor voltages (ascending) and delays
	m    []float64 // Hermite slopes at the anchors
}

// NewDelayCurve builds a curve from (voltage, normalized delay) anchors.
// Anchors need not be sorted. It returns an error if fewer than two anchors
// are given, if voltages repeat, or if delay is not strictly decreasing
// with voltage (faster at higher voltage is a physical requirement).
func NewDelayCurve(anchors map[float64]float64) (*DelayCurve, error) {
	if len(anchors) < 2 {
		return nil, fmt.Errorf("vlsi: delay curve needs at least 2 anchors, got %d", len(anchors))
	}
	vs := make([]float64, 0, len(anchors))
	for v := range anchors {
		vs = append(vs, v)
	}
	sort.Float64s(vs)
	ds := make([]float64, len(vs))
	for i, v := range vs {
		ds[i] = anchors[v]
		if ds[i] <= 0 {
			return nil, fmt.Errorf("vlsi: delay must be positive at %.2f V", v)
		}
		if i > 0 && ds[i] >= ds[i-1] {
			return nil, fmt.Errorf("vlsi: delay must strictly decrease with voltage (violated at %.2f V)", v)
		}
	}
	c := &DelayCurve{v: vs, d: ds}
	c.computeSlopes()
	return c, nil
}

// computeSlopes fills in monotonicity-preserving Hermite slopes
// (Fritsch–Carlson limiter).
func (c *DelayCurve) computeSlopes() {
	n := len(c.v)
	sec := make([]float64, n-1) // secant slopes
	for i := 0; i < n-1; i++ {
		sec[i] = (c.d[i+1] - c.d[i]) / (c.v[i+1] - c.v[i])
	}
	m := make([]float64, n)
	m[0], m[n-1] = sec[0], sec[n-2]
	for i := 1; i < n-1; i++ {
		if sec[i-1]*sec[i] <= 0 {
			m[i] = 0
		} else {
			// Harmonic mean preserves monotonicity.
			w1 := 2*(c.v[i+1]-c.v[i]) + (c.v[i] - c.v[i-1])
			w2 := (c.v[i+1] - c.v[i]) + 2*(c.v[i]-c.v[i-1])
			m[i] = (w1 + w2) / (w1/sec[i-1] + w2/sec[i])
		}
	}
	c.m = m
}

// Min and Max report the calibrated voltage range of the curve.
func (c *DelayCurve) Min() float64 { return c.v[0] }

// Max reports the highest calibrated voltage.
func (c *DelayCurve) Max() float64 { return c.v[len(c.v)-1] }

// Delay returns the normalized critical-path delay at voltage v. Voltages
// outside the calibrated range are clamped to the range endpoints: below
// the minimum the circuit is assumed non-functional and callers should
// first check v >= Min().
func (c *DelayCurve) Delay(v float64) float64 {
	n := len(c.v)
	if v <= c.v[0] {
		return c.d[0]
	}
	if v >= c.v[n-1] {
		return c.d[n-1]
	}
	// Binary search for the interval.
	i := sort.SearchFloat64s(c.v, v) - 1
	h := c.v[i+1] - c.v[i]
	t := (v - c.v[i]) / h
	t2, t3 := t*t, t*t*t
	h00 := 2*t3 - 3*t2 + 1
	h10 := t3 - 2*t2 + t
	h01 := -2*t3 + 3*t2
	h11 := t3 - t2
	return h00*c.d[i] + h10*h*c.m[i] + h01*c.d[i+1] + h11*h*c.m[i+1]
}

// SpeedupVs returns the frequency ratio f(v)/f(ref).
func (c *DelayCurve) SpeedupVs(v, ref float64) float64 {
	return c.Delay(ref) / c.Delay(v)
}

// default28nm is the paper's Figure 5 curve, anchored to the published
// Bitcoin server operating points (830 MHz @ 1.00 V, 465 MHz @ 0.62 V,
// 202 MHz @ 0.49 V, 70 MHz @ 0.40 V) and to the Litecoin points, with
// alpha-power-law infill between anchors and a gentle tail above nominal.
var default28nm = mustCurve(map[float64]float64{
	0.40: 830.0 / 70.0, // 11.857
	0.45: 6.60,
	0.49: 830.0 / 202.0, // 4.109
	0.55: 2.55,
	0.62: 830.0 / 465.0, // 1.785
	0.70: 1.45,
	0.80: 1.25,
	0.91: 1.09,
	1.00: 1.00,
	1.10: 0.94,
	1.25: 0.87,
	1.40: 0.82,
	1.50: 0.80,
})

func mustCurve(anchors map[float64]float64) *DelayCurve {
	c, err := NewDelayCurve(anchors)
	if err != nil {
		panic(err)
	}
	return c
}

// Default28nm returns the calibrated UMC 28nm logic delay–voltage curve
// used throughout the paper (Figure 5).
func Default28nm() *DelayCurve { return default28nm }

// AlphaPowerDelay returns a normalized alpha-power-law delay model
// delay(v) = k · v/(v-vth)^alpha with delay(vnom) = 1. It is provided for
// modeling process nodes for which no published anchors exist.
func AlphaPowerDelay(vth, alpha, vnom float64) func(v float64) float64 {
	norm := vnom / math.Pow(vnom-vth, alpha)
	return func(v float64) float64 {
		if v <= vth {
			return math.Inf(1)
		}
		return (v / math.Pow(v-vth, alpha)) / norm
	}
}
