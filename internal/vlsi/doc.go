// Package vlsi models the circuit-level inputs of the ASIC Cloud design
// flow: the delay–voltage behaviour of 28nm logic (paper Figure 5), dynamic
// and leakage power scaling, replicated compute accelerator (RCA)
// specifications, wafer yield and die cost, and flip-chip packaging.
//
// The paper extracts these numbers from Synopsys place-and-route plus
// PrimeTime power analysis of fully placed-and-routed designs in UMC 28nm.
// This package substitutes an analytical model calibrated to every
// operating point the paper publishes (see DESIGN.md).
//
// # Units
//
// Voltages are in volts, frequencies in Hz, areas in mm² (the paper's
// convention), power densities in W/mm², wafer diameters in mm, costs in
// dollars. Spec.NominalPerf is in the application's own performance unit
// (Spec.PerfUnit). Every exported quantity's doc states its unit; the
// asiclint unitdoc analyzer enforces this.
//
// # Entry points
//
// Default28nm is the calibrated process; Spec describes one RCA and is
// the root input of every sweep — the CLI builds it from flags, the
// asiccloudd service from the JSON rca object. Spec.Validate is the
// single gate both front ends rely on.
package vlsi
