package vlsi

import "fmt"

// PackageModel prices a flip-chip BGA package. The paper: "Using Flip
// Chip, the packaging cost is a function of die size because of yield
// effects. Pin cost is based on the number of pins, which is set by power
// delivery requirements to the silicon. Our package cost model, based on
// input from industry veterans, suggests the per-chip assembly cost runs
// about $1."
type PackageModel struct {
	// AssemblyCost is the per-chip attach/assembly cost (~$1).
	AssemblyCost float64

	// SubstrateCostPerMM2 prices the organic substrate, which grows with
	// the die it must carry (plus margin).
	SubstrateCostPerMM2 float64

	// SubstrateMargin is the substrate-to-die area ratio.
	SubstrateMargin float64

	// PinCost is the cost in $ per pin (ball + routing layer share).
	PinCost float64

	// AmpsPerPowerPin is the current-carrying capacity assumed per
	// power/ground pin pair member.
	AmpsPerPowerPin float64

	// BaseSignalPins covers clocks, control, on-PCB network.
	BaseSignalPins int
}

// DefaultPackageModel returns the calibrated flip-chip model.
func DefaultPackageModel() PackageModel {
	return PackageModel{
		AssemblyCost:        1.00,
		SubstrateCostPerMM2: 0.015,
		SubstrateMargin:     1.3,
		PinCost:             0.008,
		AmpsPerPowerPin:     0.5,
		BaseSignalPins:      96,
	}
}

// Pins returns the total pin count for a chip drawing the given supply
// current in amps: power and ground pins sized by current, plus signal
// pins (base + any extra the design needs, e.g. DRAM interfaces or
// HyperTransport lanes).
func (m PackageModel) Pins(supplyAmps float64, extraSignalPins int) int {
	if supplyAmps < 0 {
		supplyAmps = 0
	}
	perPin := m.AmpsPerPowerPin
	if perPin <= 0 {
		perPin = 0.5
	}
	powerPins := int(supplyAmps/perPin + 0.9999)
	// Each power pin needs a ground return.
	return 2*powerPins + m.BaseSignalPins + extraSignalPins
}

// Cost returns the package cost in dollars for a die of the given area
// drawing the given current, with extra signal pins for I/O-heavy designs.
func (m PackageModel) Cost(dieAreaMM2, supplyAmps float64, extraSignalPins int) (float64, error) {
	if dieAreaMM2 <= 0 {
		//lint:ignore hotalloc geometry generation only emits positive die areas; this branch never runs per swept configuration
		return 0, fmt.Errorf("vlsi: package for non-positive die area %.1f mm²", dieAreaMM2)
	}
	pins := m.Pins(supplyAmps, extraSignalPins)
	substrate := m.SubstrateCostPerMM2 * dieAreaMM2 * m.SubstrateMargin
	return m.AssemblyCost + substrate + float64(pins)*m.PinCost, nil
}
