package vlsi

import (
	"math"
	"testing"
)

func TestPowerGridValidate(t *testing.T) {
	if err := DefaultPowerGrid().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*PowerGrid){
		func(g *PowerGrid) { g.BumpPitch = 0 },
		func(g *PowerGrid) { g.SheetOhms = -1 },
		func(g *PowerGrid) { g.MetalFraction = 0 },
		func(g *PowerGrid) { g.MetalFraction = 1.1 },
		func(g *PowerGrid) { g.DroopBudget = 0 },
		func(g *PowerGrid) { g.DroopBudget = 0.6 },
	}
	for i, mutate := range bad {
		g := DefaultPowerGrid()
		mutate(&g)
		if g.Validate() == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestDroopScaling(t *testing.T) {
	g := DefaultPowerGrid()
	// The paper's point: the same power density needs far more grid at
	// near-threshold voltage, because current density rises as V falls.
	dNom, err := g.Droop(2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	dNT, err := g.Droop(2.0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dNT/dNom-2.5) > 1e-9 {
		t.Errorf("droop ratio 0.4V/1.0V = %v, want 2.5 (1/V scaling)", dNT/dNom)
	}
	// Droop is linear in power density.
	d4, _ := g.Droop(4.0, 1.0)
	if math.Abs(d4/dNom-2) > 1e-9 {
		t.Error("droop should be linear in power density")
	}
	if d0, _ := g.Droop(0, 1.0); d0 != 0 {
		t.Error("no power, no droop")
	}
	if _, err := g.Droop(1, 0); err == nil {
		t.Error("zero voltage should fail")
	}
}

func TestGridOKRegimes(t *testing.T) {
	g := DefaultPowerGrid()
	// Bitcoin at nominal (2 W/mm², 1.0 V): comfortably fine.
	ok, err := g.OK(2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("2 W/mm² at 1.0 V should fit the default grid")
	}
	// The same silicon at deep near-threshold with crypto density is
	// near or beyond the default grid: the relative droop grows as
	// 1/V², the paper's "engineered explicitly" regime.
	okNT, err := g.OK(3.5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if okNT {
		t.Error("3.5 W/mm² at 0.4 V should exceed the default droop budget")
	}
}

func TestRequiredMetalFraction(t *testing.T) {
	g := DefaultPowerGrid()
	nom, err := g.RequiredMetalFraction(2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := g.RequiredMetalFraction(2.0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if nt <= nom {
		t.Errorf("near-threshold should need more metal: %v vs %v", nt, nom)
	}
	// The ratio follows 1/V²: (1.0/0.4)² = 6.25 (above the 2% floor).
	if nom > 0.02+1e-9 {
		if math.Abs(nt/nom-6.25) > 0.01 {
			t.Errorf("metal ratio = %v, want 6.25", nt/nom)
		}
	}
	// An impossible point errors with advice.
	if _, err := g.RequiredMetalFraction(50, 0.4); err == nil {
		t.Error("unreachable droop budget should fail")
	}
	if _, err := g.RequiredMetalFraction(-1, 1); err == nil {
		t.Error("negative power density should fail")
	}
}

func TestMaxPowerDensityConsistent(t *testing.T) {
	g := DefaultPowerGrid()
	for _, v := range []float64{0.4, 0.7, 1.0} {
		pmax, err := g.MaxPowerDensity(v)
		if err != nil {
			t.Fatal(err)
		}
		// At exactly pmax the droop equals the budget.
		d, err := g.Droop(pmax, v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-g.DroopBudget*v) > 1e-12 {
			t.Errorf("droop at pmax = %v, want %v", d, g.DroopBudget*v)
		}
	}
	lo, _ := g.MaxPowerDensity(0.4)
	hi, _ := g.MaxPowerDensity(1.0)
	if lo >= hi {
		t.Error("supportable power density should grow with voltage")
	}
	if _, err := g.MaxPowerDensity(0); err == nil {
		t.Error("zero voltage should fail")
	}
}
