package vlsi

import (
	"errors"
	"fmt"
	"math"
)

// PowerGrid models the on-die supply network the paper calls out
// explicitly in its Figure 2: "we show the Power Grid explicitly,
// because for high power density or low-voltage ASICs, it will have to
// be engineered explicitly for low IR drop and high current."
//
// The model: a flip-chip die draws current through an area array of
// bumps into upper-metal power straps. Worst-case static droop is the
// droop across half a bump pitch of grid metal carrying the current of
// one bump cell, a standard first-order sizing relation:
//
//	droop ≈ J · pitch² · Rsheet / (8 · metalFraction)
//
// with J the current per area (A/mm²). Designs must keep droop below a
// fraction of the supply; low-voltage near-threshold operation squeezes
// the budget from both sides (higher J at a given power density, and a
// smaller absolute budget).
type PowerGrid struct {
	// BumpPitch is the flip-chip power bump spacing (mm); ~0.2 mm for
	// a dense array.
	BumpPitch float64
	// SheetOhms is the upper-metal sheet resistance (Ω/□).
	SheetOhms float64
	// MetalFraction is the fraction of the top metal layers dedicated to
	// power and ground straps.
	MetalFraction float64
	// DroopBudget is the allowed static droop as a fraction of VDD.
	DroopBudget float64
}

// DefaultPowerGrid is a dense flip-chip grid.
func DefaultPowerGrid() PowerGrid {
	return PowerGrid{
		BumpPitch:     0.40,
		SheetOhms:     0.040,
		MetalFraction: 0.30,
		DroopBudget:   0.05,
	}
}

// Validate reports whether the grid is physical.
//
//asic:coldpath
func (g PowerGrid) Validate() error {
	switch {
	case g.BumpPitch <= 0:
		return fmt.Errorf("vlsi: bump pitch must be positive")
	case g.SheetOhms <= 0:
		return fmt.Errorf("vlsi: sheet resistance must be positive")
	case g.MetalFraction <= 0 || g.MetalFraction > 1:
		return fmt.Errorf("vlsi: metal fraction %v outside (0, 1]", g.MetalFraction)
	case g.DroopBudget <= 0 || g.DroopBudget >= 0.5:
		return fmt.Errorf("vlsi: droop budget %v outside (0, 0.5)", g.DroopBudget)
	}
	return nil
}

// Droop returns the worst-case static IR droop in volts for a design
// drawing powerDensity W/mm² at voltage volts.
func (g PowerGrid) Droop(powerDensity, volts float64) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if powerDensity < 0 || volts <= 0 {
		return 0, fmt.Errorf("vlsi: power density must be >= 0 and voltage positive")
	}
	j := powerDensity / volts // A/mm²
	return j * g.BumpPitch * g.BumpPitch * g.SheetOhms / (8 * g.MetalFraction), nil
}

// OK reports whether the design's droop fits the budget.
func (g PowerGrid) OK(powerDensity, volts float64) (bool, error) {
	d, err := g.Droop(powerDensity, volts)
	if err != nil {
		return false, err
	}
	return d <= g.DroopBudget*volts, nil
}

// RequiredMetalFraction returns the top-metal share needed to hold the
// droop budget at the given operating point — the explicit engineering
// the paper says near-threshold high-density ASICs need. It returns an
// error when even 100% metal cannot meet the budget (the design must
// shrink its bump pitch instead).
func (g PowerGrid) RequiredMetalFraction(powerDensity, volts float64) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if powerDensity < 0 || volts <= 0 {
		//lint:ignore hotalloc input sanity; the sweep derives both operands from validated configs, so this branch never runs per configuration
		return 0, fmt.Errorf("vlsi: power density must be >= 0 and voltage positive")
	}
	j := powerDensity / volts
	need := j * g.BumpPitch * g.BumpPitch * g.SheetOhms / (8 * g.DroopBudget * volts)
	if need > 1 {
		// A bare sentinel: dense near-threshold sweeps hit this once per
		// swept configuration and discard the error (the evaluation just
		// records GridOK=false), so formatting the numbers here would
		// allocate on the hot path for nothing.
		return 0, ErrDroopBudget
	}
	return math.Max(need, 0.02), nil
}

// ErrDroopBudget flags operating points whose droop budget cannot be
// met even with a full metal layer; the design must shrink its bump
// pitch instead.
var ErrDroopBudget = errors.New("vlsi: droop budget unreachable even at 100% metal; shrink the bump pitch")

// MaxPowerDensity is the highest power density the grid supports at the
// given voltage within its droop budget.
func (g PowerGrid) MaxPowerDensity(volts float64) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if volts <= 0 {
		return 0, fmt.Errorf("vlsi: voltage must be positive")
	}
	// droop = (p/v)·k/(8m) <= budget·v  =>  p <= 8·m·budget·v²/k.
	k := g.BumpPitch * g.BumpPitch * g.SheetOhms
	return 8 * g.MetalFraction * g.DroopBudget * volts * volts / k, nil
}
