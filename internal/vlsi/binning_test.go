package vlsi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinningValidate(t *testing.T) {
	if err := DefaultBinning().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Binning{Sigma: -0.1}).Validate() == nil {
		t.Error("negative sigma should fail")
	}
	if (Binning{Sigma: 0.6}).Validate() == nil {
		t.Error("huge sigma should fail")
	}
}

func TestSpecYield(t *testing.T) {
	b := DefaultBinning()
	// Promising the nominal frequency loses half the chips.
	if y := b.SpecYield(1.0); math.Abs(y-0.5) > 1e-9 {
		t.Errorf("yield at nominal promise = %v, want 0.5", y)
	}
	// Promising one sigma below nominal keeps ~84%.
	if y := b.SpecYield(1 - b.Sigma); math.Abs(y-0.8413) > 0.001 {
		t.Errorf("yield at -1σ = %v, want ~0.841", y)
	}
	// Yield is monotone decreasing in the promise.
	prev := 1.1
	for p := 0.7; p <= 1.2; p += 0.01 {
		y := b.SpecYield(p)
		if y > prev+1e-12 {
			t.Fatalf("yield not monotone at %v", p)
		}
		prev = y
	}
	// Zero-variance process: everything meets up to nominal.
	exact := Binning{Sigma: 0}
	if exact.SpecYield(0.99) != 1 || exact.SpecYield(1.01) != 0 {
		t.Error("zero-sigma yields wrong")
	}
}

func TestVendorVsCloud(t *testing.T) {
	b := DefaultBinning()
	promise, vendor, err := b.BestVendorPromise()
	if err != nil {
		t.Fatal(err)
	}
	// The best promise sits below nominal (discarding half the chips at
	// promise=1.0 is never optimal at 6% sigma).
	if promise >= 1.0 {
		t.Errorf("best vendor promise = %v, want below nominal", promise)
	}
	if vendor <= 0 || vendor >= 1 {
		t.Errorf("vendor throughput = %v, want in (0, 1)", vendor)
	}
	// §3: the self-operated cloud beats the best vendor bin even after
	// a guard band, because it wastes no manufactured silicon.
	adv, err := b.CloudAdvantage(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if adv <= 1.0 {
		t.Errorf("cloud advantage = %v, want > 1 (the paper's §3 argument)", adv)
	}
	if adv > 1.5 {
		t.Errorf("cloud advantage = %v suspiciously large for 6%% sigma", adv)
	}
}

func TestCloudAdvantageGrowsWithVariation(t *testing.T) {
	// The worse the process spread, the more the vendor model wastes.
	tight, err := (Binning{Sigma: 0.03}).CloudAdvantage(0.02)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := (Binning{Sigma: 0.12}).CloudAdvantage(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if loose <= tight {
		t.Errorf("advantage should grow with sigma: %v vs %v", tight, loose)
	}
}

func TestBinningErrors(t *testing.T) {
	b := DefaultBinning()
	if _, err := b.SelfRunThroughput(-0.1); err == nil {
		t.Error("negative guard band should fail")
	}
	if _, err := b.SelfRunThroughput(1.0); err == nil {
		t.Error("full guard band should fail")
	}
	if _, err := b.VendorThroughput(0); err == nil {
		t.Error("zero promise should fail")
	}
	if _, err := b.SampleFrequencies(0); err == nil {
		t.Error("zero sample should fail")
	}
	bad := Binning{Sigma: 0.9}
	if _, err := bad.SampleFrequencies(5); err == nil {
		t.Error("invalid model should fail to sample")
	}
}

func TestSampleFrequencies(t *testing.T) {
	b := DefaultBinning()
	s, err := b.SampleFrequencies(1001)
	if err != nil {
		t.Fatal(err)
	}
	// Mean ~1.0, stddev ~sigma, sorted.
	var sum float64
	for i, v := range s {
		sum += v
		if i > 0 && v < s[i-1] {
			t.Fatal("sample not sorted")
		}
	}
	mean := sum / float64(len(s))
	if math.Abs(mean-1) > 0.001 {
		t.Errorf("sample mean = %v, want ~1", mean)
	}
	var ss float64
	for _, v := range s {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(len(s)))
	if math.Abs(sd-b.Sigma)/b.Sigma > 0.03 {
		t.Errorf("sample stddev = %v, want ~%v", sd, b.Sigma)
	}
}

func TestInverseNormalCDFRoundTrip(t *testing.T) {
	f := func(u uint16) bool {
		p := (float64(u) + 0.5) / 65536
		x := inverseNormalCDF(p)
		return math.Abs(normalCDF(x)-p) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsNaN(inverseNormalCDF(0)) || !math.IsNaN(inverseNormalCDF(1)) {
		t.Error("endpoints should be NaN")
	}
}
