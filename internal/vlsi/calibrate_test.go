package vlsi

import (
	"math"
	"testing"
)

func TestFitDelayCurveFromShmoo(t *testing.T) {
	// Synthesize shmoo data from the reference curve, then refit it:
	// the round trip must reproduce the curve at the anchors.
	ref := Default28nm()
	const f0 = 830e6
	points := map[float64]float64{}
	for _, v := range []float64{0.40, 0.49, 0.62, 0.80, 1.00} {
		points[v] = f0 / ref.Delay(v)
	}
	fit, err := FitDelayCurve(points)
	if err != nil {
		t.Fatal(err)
	}
	for v := range points {
		want := ref.Delay(v) / ref.Delay(1.00)
		if got := fit.Delay(v); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("fit.Delay(%v) = %v, want %v", v, got, want)
		}
	}
	// Interpolated points stay monotone.
	prev := math.Inf(1)
	for v := 0.40; v <= 1.0; v += 0.01 {
		d := fit.Delay(v)
		if d > prev+1e-12 {
			t.Fatalf("fitted curve not monotone at %v", v)
		}
		prev = d
	}
}

func TestFitDelayCurveErrors(t *testing.T) {
	if _, err := FitDelayCurve(map[float64]float64{1.0: 8e8}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := FitDelayCurve(map[float64]float64{0.5: -1, 1.0: 8e8}); err == nil {
		t.Error("negative frequency should fail")
	}
	// Non-monotone silicon (noise) is rejected rather than fit.
	if _, err := FitDelayCurve(map[float64]float64{0.5: 9e8, 0.7: 4e8, 1.0: 8e8}); err == nil {
		t.Error("non-monotone measurements should fail")
	}
}

func TestNodeScaling40nm(t *testing.T) {
	base := Spec{
		Name: "x", PerfUnit: "GH/s", Area: 0.66,
		NominalVoltage: 1.0, NominalFreq: 830e6, NominalPerf: 0.83,
		NominalPowerDensity: 2.0, LeakageFraction: 0.01, VoltageScalable: true,
	}
	ported, err := To40nmFrom28nm().Apply(base, "x-40nm")
	if err != nil {
		t.Fatal(err)
	}
	if ported.Name != "x-40nm" {
		t.Error("name not applied")
	}
	if math.Abs(ported.Area-1.32) > 1e-12 {
		t.Errorf("area = %v, want 1.32", ported.Area)
	}
	if math.Abs(ported.NominalPerf-0.83*0.75) > 1e-12 {
		t.Error("performance should follow frequency")
	}
	// Power density: ×1.35 energy ×0.75 freq ÷2.0 area ≈ ×0.506.
	if math.Abs(ported.NominalPowerDensity-2.0*1.35*0.75/2.0) > 1e-12 {
		t.Errorf("density = %v", ported.NominalPowerDensity)
	}
	// Energy per op worsened by exactly the energy factor.
	baseE := base.NominalPowerDensity * base.Area / base.NominalPerf
	portE := ported.NominalPowerDensity * ported.Area / ported.NominalPerf
	if math.Abs(portE/baseE-1.35) > 1e-9 {
		t.Errorf("energy/op ratio = %v, want 1.35", portE/baseE)
	}
}

func TestNodeScalingForward(t *testing.T) {
	base := Spec{
		Name: "x", PerfUnit: "GH/s", Area: 0.66,
		NominalVoltage: 1.0, NominalFreq: 830e6, NominalPerf: 0.83,
		NominalPowerDensity: 2.0, LeakageFraction: 0.01, VoltageScalable: true,
	}
	fwd, err := To20nmFrom28nm().Apply(base, "x-20nm")
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Area >= base.Area {
		t.Error("forward port should shrink")
	}
	if fwd.NominalPerf <= base.NominalPerf {
		t.Error("forward port should speed up")
	}
	bad := NodeScaling{AreaFactor: 0}
	if _, err := bad.Apply(base, "y"); err == nil {
		t.Error("zero factor should fail")
	}
	invalid := base
	invalid.Area = 0
	if _, err := To40nmFrom28nm().Apply(invalid, "y"); err == nil {
		t.Error("invalid spec should fail")
	}
}
