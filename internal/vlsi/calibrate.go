package vlsi

import (
	"fmt"
	"sort"
)

// FitDelayCurve calibrates a DelayCurve from measured (voltage, frequency)
// operating points of real silicon — the workflow a user follows with
// their own shmoo data, mirroring how this repository's 28nm curve was
// anchored to the paper's published points. Frequencies are normalized to
// the measurement at the highest voltage.
func FitDelayCurve(points map[float64]float64) (*DelayCurve, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("vlsi: need at least 2 measured points, got %d", len(points))
	}
	vs := make([]float64, 0, len(points))
	for v, f := range points {
		if v <= 0 || f <= 0 {
			return nil, fmt.Errorf("vlsi: non-positive measurement (%.2f V, %.3g Hz)", v, f)
		}
		vs = append(vs, v)
	}
	sort.Float64s(vs)
	ref := points[vs[len(vs)-1]]
	anchors := make(map[float64]float64, len(points))
	for v, f := range points {
		anchors[v] = ref / f // delay relative to the fastest point
	}
	c, err := NewDelayCurve(anchors)
	if err != nil {
		return nil, fmt.Errorf("vlsi: measurements are not monotone in voltage: %w", err)
	}
	return c, nil
}

// NodeScaling holds first-order inter-node scaling factors for porting an
// RCA spec between process generations (the §12 discussion of building on
// 40 nm instead of 28 nm).
type NodeScaling struct {
	// AreaFactor multiplies RCA area (≈2.0 per full node backwards).
	AreaFactor float64
	// FreqFactor multiplies clock frequency (≈0.75 per node backwards).
	FreqFactor float64
	// EnergyFactor multiplies energy per operation (≈1.35 per node
	// backwards).
	EnergyFactor float64
}

// To40nmFrom28nm is the standard one-node-back scaling.
func To40nmFrom28nm() NodeScaling {
	return NodeScaling{AreaFactor: 2.0, FreqFactor: 0.75, EnergyFactor: 1.35}
}

// To20nmFrom28nm is a forward port to the bleeding-edge node the paper's
// Gen-6 miners used.
func To20nmFrom28nm() NodeScaling {
	return NodeScaling{AreaFactor: 0.55, FreqFactor: 1.20, EnergyFactor: 0.75}
}

// Apply ports a spec to the scaled node. Performance follows frequency;
// power density follows energy × frequency over area.
func (s NodeScaling) Apply(spec Spec, name string) (Spec, error) {
	if s.AreaFactor <= 0 || s.FreqFactor <= 0 || s.EnergyFactor <= 0 {
		return Spec{}, fmt.Errorf("vlsi: scaling factors must be positive")
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	out := spec
	out.Name = name
	out.Area *= s.AreaFactor
	out.NominalFreq *= s.FreqFactor
	out.NominalPerf *= s.FreqFactor
	// Power = (energy/op)·(ops/s); density divides by the new area.
	out.NominalPowerDensity = spec.NominalPowerDensity * s.EnergyFactor * s.FreqFactor / s.AreaFactor
	return out, out.Validate()
}
