package vlsi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDelayCurveAnchorsExact(t *testing.T) {
	c := Default28nm()
	cases := []struct{ v, want float64 }{
		{1.00, 1.0},
		{0.62, 830.0 / 465.0},
		{0.49, 830.0 / 202.0},
		{0.40, 830.0 / 70.0},
	}
	for _, tc := range cases {
		if got := c.Delay(tc.v); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Delay(%.2f) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestDelayCurveMonotone(t *testing.T) {
	c := Default28nm()
	prev := math.Inf(1)
	for v := 0.40; v <= 1.50; v += 0.001 {
		d := c.Delay(v)
		if d > prev+1e-12 {
			t.Fatalf("delay not monotone: Delay(%.3f)=%v > previous %v", v, d, prev)
		}
		if d <= 0 {
			t.Fatalf("delay non-positive at %.3f V", v)
		}
		prev = d
	}
}

func TestDelayCurveMonotoneProperty(t *testing.T) {
	c := Default28nm()
	f := func(a, b uint16) bool {
		v1 := 0.40 + 1.10*float64(a)/65535
		v2 := 0.40 + 1.10*float64(b)/65535
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		return c.Delay(v1) >= c.Delay(v2)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayCurveClampsOutsideRange(t *testing.T) {
	c := Default28nm()
	if got := c.Delay(0.2); got != c.Delay(0.40) {
		t.Errorf("below-range delay = %v, want clamp to %v", got, c.Delay(0.40))
	}
	if got := c.Delay(2.0); got != c.Delay(1.50) {
		t.Errorf("above-range delay = %v, want clamp to %v", got, c.Delay(1.50))
	}
}

func TestDelayCurveSpeedup(t *testing.T) {
	c := Default28nm()
	// 830 MHz at 1.0 V should slow to ~202 MHz at 0.49 V.
	got := 830e6 * c.SpeedupVs(0.49, 1.0)
	if math.Abs(got-202e6)/202e6 > 1e-9 {
		t.Errorf("freq at 0.49 V = %v, want 202 MHz", got)
	}
}

func TestNewDelayCurveRejectsBadInput(t *testing.T) {
	if _, err := NewDelayCurve(map[float64]float64{1.0: 1.0}); err == nil {
		t.Error("single anchor should fail")
	}
	if _, err := NewDelayCurve(map[float64]float64{0.5: 1.0, 1.0: 2.0}); err == nil {
		t.Error("increasing delay with voltage should fail")
	}
	if _, err := NewDelayCurve(map[float64]float64{0.5: -1.0, 1.0: -2.0}); err == nil {
		t.Error("negative delay should fail")
	}
}

func TestAlphaPowerDelay(t *testing.T) {
	f := AlphaPowerDelay(0.3, 1.6, 1.0)
	if got := f(1.0); math.Abs(got-1) > 1e-12 {
		t.Errorf("normalized delay at vnom = %v, want 1", got)
	}
	if f(0.5) <= f(0.8) {
		t.Error("alpha-power delay should decrease with voltage")
	}
	if !math.IsInf(f(0.3), 1) {
		t.Error("delay at threshold should be infinite")
	}
}
