package vlsi

import (
	"errors"
	"fmt"

	"asiccloud/internal/units"
)

// Spec describes a replicated compute accelerator (RCA) as extracted from a
// placed-and-routed implementation: the "RCA Spec" box in the paper's
// Figure 4 evaluation flow. All densities are quoted at the nominal
// voltage and frequency.
type Spec struct {
	// Name identifies the accelerator, e.g. "bitcoin-sha256d".
	Name string

	// PerfUnit is the human unit for one op/s, e.g. "GH/s", "MH/s",
	// "Kfps", "TOps/s". Performance values below are in this unit.
	PerfUnit string

	// Area is the silicon area of one RCA instance in mm².
	Area float64

	// NominalVoltage is the library characterization voltage (1.0 V for
	// the UMC 28nm flow used in the paper).
	NominalVoltage float64

	// NominalFreq is the post-layout clock frequency in Hz at the
	// nominal voltage.
	NominalFreq float64

	// NominalPerf is the throughput of one RCA at NominalFreq, in
	// PerfUnit.
	NominalPerf float64

	// NominalPowerDensity is total power density in W/mm² at the nominal
	// voltage and frequency, including leakage and SRAM.
	NominalPowerDensity float64

	// LeakageFraction is the fraction of nominal power that is leakage.
	LeakageFraction float64

	// SRAMPowerFraction is the fraction of nominal power drawn on the
	// SRAM rail. SRAM sits on a separate rail whose voltage cannot fall
	// below SRAMVmin, reflecting the difficulty of scaling SRAM supply.
	SRAMPowerFraction float64

	// SRAMVmin is the minimum SRAM rail voltage in V. Zero means the
	// design has no SRAM rail.
	SRAMVmin float64

	// VoltageScalable is false for third-party IP whose micro-architecture
	// we do not control (the paper's DaDianNao CNN chips); such RCAs run
	// only at their nominal point.
	VoltageScalable bool

	// Curve is the logic delay–voltage curve; nil selects Default28nm.
	Curve *DelayCurve
}

// Validate reports whether the spec is physically meaningful. A spec
// that fails validation never enters a sweep — the engine validates
// before building the grid, and EvaluateColumn validates once per
// column — so the error formatting below is off the per-configuration
// path.
//
//asic:coldpath
func (s *Spec) Validate() error {
	switch {
	case s.Area <= 0:
		return fmt.Errorf("vlsi: %s: RCA area must be positive", s.Name)
	case s.NominalVoltage <= 0:
		return fmt.Errorf("vlsi: %s: nominal voltage must be positive", s.Name)
	case s.NominalFreq <= 0:
		return fmt.Errorf("vlsi: %s: nominal frequency must be positive", s.Name)
	case s.NominalPerf <= 0:
		return fmt.Errorf("vlsi: %s: nominal performance must be positive", s.Name)
	case s.NominalPowerDensity <= 0:
		return fmt.Errorf("vlsi: %s: nominal power density must be positive", s.Name)
	case s.LeakageFraction < 0 || s.LeakageFraction >= 1:
		return fmt.Errorf("vlsi: %s: leakage fraction %v out of [0,1)", s.Name, s.LeakageFraction)
	case s.SRAMPowerFraction < 0 || s.SRAMPowerFraction > 1:
		return fmt.Errorf("vlsi: %s: SRAM power fraction %v out of [0,1]", s.Name, s.SRAMPowerFraction)
	case s.SRAMVmin < 0:
		return fmt.Errorf("vlsi: %s: SRAM Vmin must be >= 0", s.Name)
	}
	return nil
}

// curve returns the delay curve, defaulting to the 28nm model.
func (s *Spec) curve() *DelayCurve {
	if s.Curve != nil {
		return s.Curve
	}
	return default28nm
}

// MinVoltage is the lowest logic voltage this RCA can operate at.
func (s *Spec) MinVoltage() float64 {
	if !s.VoltageScalable {
		return s.NominalVoltage
	}
	return s.curve().Min()
}

// MaxVoltage is the highest logic voltage considered for this RCA.
func (s *Spec) MaxVoltage() float64 {
	if !s.VoltageScalable {
		return s.NominalVoltage
	}
	return s.curve().Max()
}

// OperatingPoint is the state of one RCA at a chosen logic voltage: the
// output of the paper's voltage scaling model, connecting W/mm² and
// ops/s/mm² (Figure 4, "Voltage scaling model").
type OperatingPoint struct {
	Voltage      float64 // logic rail voltage (V)
	SRAMVoltage  float64 // SRAM rail voltage (V); 0 if no SRAM rail
	Freq         float64 // clock frequency (Hz)
	Perf         float64 // throughput of one RCA (PerfUnit)
	LogicPower   float64 // logic rail power of one RCA (W)
	SRAMPower    float64 // SRAM rail power of one RCA (W)
	PowerDensity float64 // total W/mm²
	PerfDensity  float64 // PerfUnit per mm²
}

// TotalPower is the full power of one RCA in watts.
func (p OperatingPoint) TotalPower() float64 { return p.LogicPower + p.SRAMPower }

// ErrNotScalable is returned when a voltage other than nominal is requested
// for an RCA that does not support voltage scaling.
var ErrNotScalable = errors.New("vlsi: RCA does not support voltage scaling")

// At evaluates the RCA at logic voltage v.
//
// Dynamic power scales as V²·f with frequency following the delay curve;
// leakage scales linearly with V (the paper: "The dynamic power is
// evaluated by the new frequency and voltage while leakage is affected
// only by the voltage"). SRAM power is computed on its own rail clamped at
// SRAMVmin, with SRAM dynamic power still proportional to the logic clock.
func (s *Spec) At(v float64) (OperatingPoint, error) {
	if err := s.Validate(); err != nil {
		return OperatingPoint{}, err
	}
	if !s.VoltageScalable {
		// Tolerant match: sweep grids reconstruct voltages by repeated
		// addition, so the nominal point may differ in the last ulp.
		if !units.ApproxEqual(v, s.NominalVoltage, 1e-9) {
			//lint:ignore hotalloc the engine pre-validates its grid against the RCA range before sweeping, so this branch only runs for hand-built calls
			return OperatingPoint{}, fmt.Errorf("%w: %s runs only at %.2f V", ErrNotScalable, s.Name, s.NominalVoltage)
		}
	}
	c := s.curve()
	if v < c.Min() || v > c.Max() {
		//lint:ignore hotalloc the engine pre-validates its grid against the RCA range before sweeping, so this branch only runs for hand-built calls
		return OperatingPoint{}, fmt.Errorf("vlsi: %s: voltage %.2f V outside [%.2f, %.2f]", s.Name, v, c.Min(), c.Max())
	}

	fRatio := c.SpeedupVs(v, s.NominalVoltage)
	freq := s.NominalFreq * fRatio
	vr := v / s.NominalVoltage

	nomPower := s.NominalPowerDensity * s.Area
	sramNom := nomPower * s.SRAMPowerFraction
	logicNom := nomPower - sramNom

	logicDynNom := logicNom * (1 - s.LeakageFraction)
	logicLeakNom := logicNom * s.LeakageFraction
	logicPower := logicDynNom*vr*vr*fRatio + logicLeakNom*vr

	var sramPower, vsram float64
	if sramNom > 0 {
		vsram = v
		if s.SRAMVmin > 0 && vsram < s.SRAMVmin {
			vsram = s.SRAMVmin
		}
		svr := vsram / s.NominalVoltage
		sramDynNom := sramNom * (1 - s.LeakageFraction)
		sramLeakNom := sramNom * s.LeakageFraction
		// SRAM switching still happens once per logic clock.
		sramPower = sramDynNom*svr*svr*fRatio + sramLeakNom*svr
	}

	perf := s.NominalPerf * fRatio
	total := logicPower + sramPower
	return OperatingPoint{
		Voltage:      v,
		SRAMVoltage:  vsram,
		Freq:         freq,
		Perf:         perf,
		LogicPower:   logicPower,
		SRAMPower:    sramPower,
		PowerDensity: total / s.Area,
		PerfDensity:  perf / s.Area,
	}, nil
}

// Nominal evaluates the RCA at its characterization voltage.
func (s *Spec) Nominal() OperatingPoint {
	op, err := s.At(s.NominalVoltage)
	if err != nil {
		// A validated spec always has a nominal point; surface
		// programmer errors loudly.
		panic(err)
	}
	return op
}
