package vlsi

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// bitcoinLike is the paper's published Bitcoin RCA: 0.66 mm², 830 MHz and
// 2 W/mm² at 1.0 V, one hash per cycle (0.83 GH/s), no SRAM.
func bitcoinLike() Spec {
	return Spec{
		Name:                "bitcoin-test",
		PerfUnit:            "GH/s",
		Area:                0.66,
		NominalVoltage:      1.0,
		NominalFreq:         830e6,
		NominalPerf:         0.83,
		NominalPowerDensity: 2.0,
		LeakageFraction:     0.05,
		VoltageScalable:     true,
	}
}

func TestSpecValidate(t *testing.T) {
	good := bitcoinLike()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Area = 0 },
		func(s *Spec) { s.NominalVoltage = -1 },
		func(s *Spec) { s.NominalFreq = 0 },
		func(s *Spec) { s.NominalPerf = 0 },
		func(s *Spec) { s.NominalPowerDensity = 0 },
		func(s *Spec) { s.LeakageFraction = 1.0 },
		func(s *Spec) { s.SRAMPowerFraction = 1.5 },
		func(s *Spec) { s.SRAMVmin = -0.1 },
	}
	for i, mutate := range bad {
		s := bitcoinLike()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestNominalPoint(t *testing.T) {
	s := bitcoinLike()
	op := s.Nominal()
	if math.Abs(op.Freq-830e6) > 1 {
		t.Errorf("nominal freq = %v, want 830 MHz", op.Freq)
	}
	if math.Abs(op.PowerDensity-2.0) > 1e-9 {
		t.Errorf("nominal power density = %v, want 2.0", op.PowerDensity)
	}
	if math.Abs(op.Perf-0.83) > 1e-12 {
		t.Errorf("nominal perf = %v, want 0.83", op.Perf)
	}
	if op.SRAMPower != 0 || op.SRAMVoltage != 0 {
		t.Errorf("SRAM-free design has SRAM power %v at %v V", op.SRAMPower, op.SRAMVoltage)
	}
}

func TestVoltageScalingMatchesPaperPoints(t *testing.T) {
	s := bitcoinLike()
	// Paper Table 3: TCO-optimal Bitcoin runs 202 MHz at 0.49 V.
	op, err := s.At(0.49)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.Freq-202e6)/202e6 > 1e-9 {
		t.Errorf("freq at 0.49 V = %v, want 202 MHz", op.Freq)
	}
	// Performance scales with frequency.
	wantPerf := 0.83 * 202.0 / 830.0
	if math.Abs(op.Perf-wantPerf)/wantPerf > 1e-9 {
		t.Errorf("perf at 0.49 V = %v, want %v", op.Perf, wantPerf)
	}
}

func TestPowerScalesSuperlinearly(t *testing.T) {
	s := bitcoinLike()
	low, err := s.At(0.5)
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.At(1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic power ~ V²f: halving V should cut power by far more than 2x.
	if high.TotalPower() < 4*low.TotalPower() {
		t.Errorf("power at 1.0 V (%v) should be >4x power at 0.5 V (%v)",
			high.TotalPower(), low.TotalPower())
	}
	// But performance drops too; energy per op must IMPROVE at low voltage.
	eLow := low.TotalPower() / low.Perf
	eHigh := high.TotalPower() / high.Perf
	if eLow >= eHigh {
		t.Errorf("energy/op at 0.5 V (%v) should beat 1.0 V (%v)", eLow, eHigh)
	}
}

func TestPowerMonotoneInVoltageProperty(t *testing.T) {
	s := bitcoinLike()
	f := func(a, b uint16) bool {
		v1 := 0.40 + 1.10*float64(a)/65535
		v2 := 0.40 + 1.10*float64(b)/65535
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		p1, err1 := s.At(v1)
		p2, err2 := s.At(v2)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1.TotalPower() <= p2.TotalPower()+1e-12 &&
			p1.Perf <= p2.Perf+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSRAMRailClampsAtVmin(t *testing.T) {
	s := bitcoinLike()
	s.SRAMPowerFraction = 0.6
	s.SRAMVmin = 0.9
	op, err := s.At(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if op.SRAMVoltage != 0.9 {
		t.Errorf("SRAM rail = %v V, want clamp at 0.9", op.SRAMVoltage)
	}
	opHigh, err := s.At(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if opHigh.SRAMVoltage != 0.95 {
		t.Errorf("SRAM rail above Vmin = %v V, want 0.95", opHigh.SRAMVoltage)
	}
	// With the SRAM rail pinned, scaling logic voltage down saves less
	// energy than it would for a pure-logic design.
	pure := bitcoinLike()
	pOp, _ := pure.At(0.5)
	pNom := pure.Nominal()
	sNom := s.Nominal()
	sramSaving := op.TotalPower() / sNom.TotalPower()
	logicSaving := pOp.TotalPower() / pNom.TotalPower()
	if sramSaving <= logicSaving {
		t.Errorf("SRAM-heavy design saved more (%v) than pure logic (%v)", sramSaving, logicSaving)
	}
}

func TestNonScalableRejectsOffNominal(t *testing.T) {
	s := bitcoinLike()
	s.VoltageScalable = false
	s.NominalVoltage = 0.9
	if _, err := s.At(0.8); !errors.Is(err, ErrNotScalable) {
		t.Errorf("expected ErrNotScalable, got %v", err)
	}
	if _, err := s.At(0.9); err != nil {
		t.Errorf("nominal point rejected: %v", err)
	}
	if s.MinVoltage() != 0.9 || s.MaxVoltage() != 0.9 {
		t.Errorf("voltage range = [%v, %v], want pinned at 0.9", s.MinVoltage(), s.MaxVoltage())
	}
}

func TestAtRejectsOutOfRange(t *testing.T) {
	s := bitcoinLike()
	if _, err := s.At(0.2); err == nil {
		t.Error("0.2 V should be rejected")
	}
	if _, err := s.At(1.8); err == nil {
		t.Error("1.8 V should be rejected")
	}
}

func TestLeakageOnlyScalesWithVoltage(t *testing.T) {
	// A 100%-leakage (pathological) design: power should scale linearly
	// in V, independent of frequency.
	s := bitcoinLike()
	s.LeakageFraction = 0.999999
	nom := s.Nominal()
	op, err := s.At(0.5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := op.TotalPower() / nom.TotalPower()
	if math.Abs(ratio-0.5) > 0.01 {
		t.Errorf("pure-leakage power ratio at half voltage = %v, want ~0.5", ratio)
	}
}
