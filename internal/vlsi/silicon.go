package vlsi

import (
	"fmt"
	"math"
)

// Process describes a fabrication node's economic parameters: everything
// needed to turn a die area into a manufactured cost.
type Process struct {
	// Name, e.g. "UMC 28nm".
	Name string

	// WaferDiameter in mm (300 for every node the paper considers).
	WaferDiameter float64

	// WaferCost is the foundry price of one processed wafer in dollars.
	WaferCost float64

	// DefectDensity D0 in defects per cm².
	DefectDensity float64

	// Clustering is the dimensionless negative-binomial clustering
	// parameter alpha.
	Clustering float64

	// MaxDieArea is the manufacturable reticle/assembly limit in mm².
	// The paper caps dies at 600 mm².
	MaxDieArea float64

	// MaskCost is the full mask-set NRE in dollars (~$1.5M at 28nm).
	MaskCost float64
}

// UMC28nm is the process used for every design in the paper, calibrated so
// that the Bitcoin server silicon costs land on the paper's Table 3 (see
// DESIGN.md "Model calibration anchors").
func UMC28nm() Process {
	return Process{
		Name:          "UMC 28nm",
		WaferDiameter: 300,
		WaferCost:     3700,
		DefectDensity: 0.22,
		Clustering:    2,
		MaxDieArea:    600,
		MaskCost:      1.5e6,
	}
}

// TSMC40nm is an older node offered as the paper's suggested lower-NRE
// alternative ("older nodes such as 40 nm ... with half the mask cost and
// only a small difference in performance and energy efficiency").
func TSMC40nm() Process {
	return Process{
		Name:          "TSMC 40nm",
		WaferDiameter: 300,
		WaferCost:     2600,
		DefectDensity: 0.18,
		Clustering:    2,
		MaxDieArea:    600,
		MaskCost:      0.75e6,
	}
}

// Validate reports whether the process parameters are usable. Only the
// error branches allocate, and a process that fails validation never
// enters a sweep, so the happy path is allocation-free per call.
//
//asic:coldpath
func (p Process) Validate() error {
	switch {
	case p.WaferDiameter <= 0:
		return fmt.Errorf("vlsi: %s: wafer diameter must be positive", p.Name)
	case p.WaferCost <= 0:
		return fmt.Errorf("vlsi: %s: wafer cost must be positive", p.Name)
	case p.DefectDensity < 0:
		return fmt.Errorf("vlsi: %s: defect density must be >= 0", p.Name)
	case p.Clustering <= 0:
		return fmt.Errorf("vlsi: %s: clustering alpha must be positive", p.Name)
	case p.MaxDieArea <= 0:
		return fmt.Errorf("vlsi: %s: max die area must be positive", p.Name)
	}
	return nil
}

// Yield returns the negative-binomial die yield for a die of the given
// area in mm²: Y = (1 + A·D0/alpha)^(-alpha) with A in cm².
func (p Process) Yield(dieAreaMM2 float64) float64 {
	if dieAreaMM2 <= 0 {
		return 1
	}
	acm2 := dieAreaMM2 / 100
	return math.Pow(1+acm2*p.DefectDensity/p.Clustering, -p.Clustering)
}

// DiesPerWafer returns the gross die count for a die of the given area in
// mm², using the standard circular-wafer edge-loss approximation.
func (p Process) DiesPerWafer(dieAreaMM2 float64) float64 {
	if dieAreaMM2 <= 0 {
		return 0
	}
	r := p.WaferDiameter / 2
	gross := math.Pi*r*r/dieAreaMM2 - math.Pi*p.WaferDiameter/math.Sqrt(2*dieAreaMM2)
	if gross < 0 {
		return 0
	}
	return gross
}

// DieCost returns the manufactured cost of one good die of the given area
// in mm², i.e. wafer cost divided by good dies per wafer. It returns an
// error for dies above the manufacturable limit or too large to fit the
// wafer.
func (p Process) DieCost(dieAreaMM2 float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if dieAreaMM2 <= 0 {
		//lint:ignore hotalloc geometry generation only emits positive die areas; this branch never runs per swept configuration
		return 0, fmt.Errorf("vlsi: die area %.1f mm² must be positive", dieAreaMM2)
	}
	if dieAreaMM2 > p.MaxDieArea {
		//lint:ignore hotalloc the thermal plan rejects oversized dies before evaluation reaches costing; this branch never runs per swept configuration
		return 0, fmt.Errorf("vlsi: die area %.1f mm² exceeds %s limit of %.0f mm²", dieAreaMM2, p.Name, p.MaxDieArea)
	}
	gross := p.DiesPerWafer(dieAreaMM2)
	if gross < 1 {
		//lint:ignore hotalloc the thermal plan rejects oversized dies before evaluation reaches costing; this branch never runs per swept configuration
		return 0, fmt.Errorf("vlsi: die area %.1f mm² does not fit on a %.0f mm wafer", dieAreaMM2, p.WaferDiameter)
	}
	good := gross * p.Yield(dieAreaMM2)
	return p.WaferCost / good, nil
}

// CostPerGoodMM2 is the effective silicon cost per good mm² at the given
// die size; larger dies pay a yield penalty.
func (p Process) CostPerGoodMM2(dieAreaMM2 float64) (float64, error) {
	c, err := p.DieCost(dieAreaMM2)
	if err != nil {
		return 0, err
	}
	return c / dieAreaMM2, nil
}
