package cloud

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"asiccloud/internal/obs"
)

// Job is one independent unit of work.
type Job struct {
	ID      uint64 `json:"id"`
	Payload []byte `json:"payload"`
	// Traceparent optionally carries the coordinator's W3C traceparent
	// header value so worker-side instrumentation can join the
	// submitting trace across the TCP hop (obs.ParseTraceparent +
	// obs.WithSpanContext on the worker).
	Traceparent string `json:"traceparent,omitempty"`
}

// Result is a completed (or failed) job.
type Result struct {
	JobID  uint64 `json:"job_id"`
	Worker string `json:"worker"`
	Output []byte `json:"output,omitempty"`
	Err    string `json:"err,omitempty"`
}

// message is the wire envelope.
type message struct {
	Type   string  `json:"type"` // hello, getwork, job, nojob, result, ack
	Worker string  `json:"worker,omitempty"`
	Job    *Job    `json:"job,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// Stats summarizes pool progress.
type Stats struct {
	JobsQueued int
	JobsDone   int
	JobsFailed int
	// JobsRequeued counts every return of an issued job to the pending
	// queue, whether from a lapsed lease or a connection that died
	// holding the job.
	JobsRequeued int
	// JobsExpired counts the lease-deadline subset of requeues.
	JobsExpired   int
	WorkerResults map[string]int
}

// poolMetrics holds the pool's obs handles. All fields are nil until
// Instrument is called; the obs types are nil-safe, so the hot paths
// update them unconditionally.
type poolMetrics struct {
	latency  *obs.Histogram // seconds from job issue to result
	requeued *obs.Counter
	expired  *obs.Counter
	done     *obs.Counter
	failed   *obs.Counter
	inflight *obs.Gauge // jobs issued and not yet resolved or requeued
	queued   *obs.Gauge // jobs waiting in the pending queue
	// rec mints per-worker latency histograms on demand: worker names
	// are not known at Instrument time, and each result is one registry
	// lookup (off the hot path — one per completed job).
	rec *obs.Recorder
}

// lease tracks a job handed to a worker that has not reported back.
type lease struct {
	job      Job
	deadline time.Time
}

// Pool is the job server.
type Pool struct {
	mu      sync.Mutex
	pending []Job
	leases  map[uint64]lease
	done    map[uint64]bool
	issued  map[uint64]time.Time // last hand-out time of outstanding jobs
	stats   Stats
	met     poolMetrics
	// resBuf holds recorded results until the pump goroutine moves them
	// to the results channel. Delivery is lossless: the buffer grows as
	// needed, so jobs enqueued via Add past the channel's construction
	// capacity can never overflow it.
	resBuf  []Result
	resCond *sync.Cond // signaled on resBuf append and on Close
	results chan Result
	closed  bool
	// leaseDuration bounds how long a worker may hold a job before it
	// is assumed dead and the job is requeued (0 = no leasing).
	leaseDuration time.Duration
	// log receives lifecycle events (worker connects, lease expiries,
	// requeues, failed jobs); never nil (no-op by default).
	log *slog.Logger
	// now is injectable for deterministic tests.
	now func() time.Time
}

// NewPool creates a pool preloaded with jobs.
func NewPool(jobs []Job) *Pool {
	p := &Pool{
		pending: append([]Job(nil), jobs...),
		leases:  make(map[uint64]lease),
		done:    make(map[uint64]bool),
		issued:  make(map[uint64]time.Time),
		results: make(chan Result, len(jobs)+16),
		log:     obs.NopLogger(),
		now:     time.Now,
	}
	p.resCond = sync.NewCond(&p.mu)
	p.stats.JobsQueued = len(jobs)
	p.stats.WorkerResults = make(map[string]int)
	// The pump owns the consumer side of resBuf for the pool's
	// lifetime; Close is its cancellation signal (it exits after the
	// closed pool drains).
	//lint:ignore goroleak the pump exits when Close marks the pool drained; a pool that is never closed intentionally keeps it for the process lifetime
	go p.pump()
	return p
}

// pump moves recorded results from the internal buffer to the results
// channel, preserving record order. It blocks on the channel rather
// than dropping, which is what makes Results lossless for slow
// consumers; once the pool is closed and every queued job has a
// recorded result, it closes the channel and exits, turning a
// coordinator's `for range pool.Results()` into a clean termination.
func (p *Pool) pump() {
	for {
		p.mu.Lock()
		for len(p.resBuf) == 0 && !p.drainedLocked() {
			//lint:ignore lockheld Cond.Wait atomically releases p.mu while blocked and reacquires it on wake; the lock is never held across the sleep
			p.resCond.Wait()
		}
		batch := p.resBuf
		p.resBuf = nil
		finished := len(batch) == 0 && p.drainedLocked()
		p.mu.Unlock()
		if finished {
			close(p.results)
			return
		}
		for _, r := range batch {
			p.results <- r
		}
	}
}

// drainedLocked reports whether the pool is closed and every queued job
// has a recorded result. Callers hold p.mu.
func (p *Pool) drainedLocked() bool {
	return p.closed && p.stats.JobsDone+p.stats.JobsFailed >= p.stats.JobsQueued
}

// idleLocked reports whether the pool has nothing to hand out and
// nothing outstanding that could be requeued: pending is empty and no
// issued job is in flight. Distinct from drained — an idle pool may
// receive more work via Add. Callers hold p.mu.
// drained reports whether the pool is closed with every queued job
// resolved — the state in which a closed listener means graceful
// shutdown, not failure.
func (p *Pool) drained() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drainedLocked()
}

func (p *Pool) idleLocked() bool {
	return len(p.pending) == 0 && len(p.issued) == 0
}

// Close marks the pool complete: no further Add succeeds, and once
// every queued job has a recorded result the Results channel is closed.
// A coordinator calls Close after enqueueing its last job and then
// ranges over Results until the channel closes. Close is idempotent and
// does not interrupt jobs already pending or leased — they still run to
// completion and their results are still delivered.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.resCond.Broadcast()
	p.mu.Unlock()
}

// Instrument attaches an obs recorder: job latency histograms
// (asiccloud_pool_job_seconds, issue → result), lease-expiry and
// requeue counters, done/failed counters, and in-flight/queued gauges.
// Call before Serve; a nil recorder leaves the pool un-instrumented.
func (p *Pool) Instrument(rec *obs.Recorder) {
	rec.Registry().SetHelp("asiccloud_pool_worker_job_seconds",
		"per-worker seconds from job issue to result")
	p.mu.Lock()
	defer p.mu.Unlock()
	p.met = poolMetrics{
		latency:  rec.Histogram("asiccloud_pool_job_seconds", nil),
		requeued: rec.Counter("asiccloud_pool_requeued_total"),
		expired:  rec.Counter("asiccloud_pool_lease_expired_total"),
		done:     rec.Counter("asiccloud_pool_jobs_done_total"),
		failed:   rec.Counter("asiccloud_pool_jobs_failed_total"),
		inflight: rec.Gauge("asiccloud_pool_inflight_jobs"),
		queued:   rec.Gauge("asiccloud_pool_queued_jobs"),
		rec:      rec,
	}
	p.met.queued.Set(float64(len(p.pending)))
}

// SetLogger attaches a structured logger for pool lifecycle events:
// worker connect/disconnect, lease expiries, requeues, watchdog
// closes, and failed jobs. Call before Serve; nil restores the no-op
// logger.
func (p *Pool) SetLogger(l *slog.Logger) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.log = obs.OrNop(l)
}

// SetLeaseDuration enables work recovery: a job not answered within d
// is handed to the next worker that asks. Results arriving after the
// job was re-answered are ignored (first result wins).
func (p *Pool) SetLeaseDuration(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.leaseDuration = d
}

// reapExpiredLocked requeues jobs whose lease has lapsed and returns
// their IDs so the caller can log them after releasing p.mu (logging
// never happens under the pool lock). Callers hold p.mu.
func (p *Pool) reapExpiredLocked() []uint64 {
	if p.leaseDuration <= 0 {
		return nil
	}
	var expired []uint64
	now := p.now()
	for id, l := range p.leases {
		if now.After(l.deadline) {
			delete(p.leases, id)
			delete(p.issued, id)
			p.pending = append(p.pending, l.job)
			p.stats.JobsRequeued++
			p.stats.JobsExpired++
			p.met.expired.Inc()
			p.met.requeued.Inc()
			p.met.inflight.Add(-1)
			p.met.queued.Set(float64(len(p.pending)))
			expired = append(expired, id)
		}
	}
	return expired
}

// requeue returns a job whose connection died before it could be
// answered to the pending queue.
func (p *Pool) requeue(j Job) {
	p.mu.Lock()
	p.requeueLocked(j)
	log := p.log
	p.mu.Unlock()
	log.LogAttrs(context.Background(), slog.LevelWarn, "connection died holding job; requeued",
		slog.Uint64("job_id", j.ID))
}

// requeueLocked returns an issued job to the pending queue. Callers
// hold p.mu.
func (p *Pool) requeueLocked(j Job) {
	delete(p.leases, j.ID)
	delete(p.issued, j.ID)
	p.pending = append(p.pending, j)
	p.stats.JobsRequeued++
	p.met.requeued.Inc()
	p.met.inflight.Add(-1)
	p.met.queued.Set(float64(len(p.pending)))
}

// releaseDeadConn requeues the job a dying connection still holds —
// but only on pools without leasing, where no other recovery mechanism
// exists and the job would otherwise be stranded while other workers
// wait on it forever. With leasing enabled the lease timer owns
// recovery: the worker behind the dead socket may still be computing,
// and its result (arriving on a new connection) should win the
// first-result race rather than racing a premature requeue.
func (p *Pool) releaseDeadConn(j Job) {
	p.mu.Lock()
	if p.leaseDuration > 0 || p.done[j.ID] {
		p.mu.Unlock()
		return
	}
	if _, outstanding := p.issued[j.ID]; !outstanding {
		p.mu.Unlock()
		return // already requeued or re-answered elsewhere
	}
	p.requeueLocked(j)
	log := p.log
	p.mu.Unlock()
	log.LogAttrs(context.Background(), slog.LevelWarn, "connection died holding job; requeued",
		slog.Uint64("job_id", j.ID))
}

// Add enqueues another job. It fails once Close has been called.
func (p *Pool) Add(j Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("cloud: pool closed")
	}
	p.pending = append(p.pending, j)
	p.stats.JobsQueued++
	p.met.queued.Set(float64(len(p.pending)))
	return nil
}

// next pops a job, or ok=false when none remain. Expired leases are
// recycled first.
func (p *Pool) next() (Job, bool) {
	p.mu.Lock()
	expired := p.reapExpiredLocked()
	var (
		out Job
		ok  bool
	)
	for len(p.pending) > 0 {
		j := p.pending[0]
		p.pending = p.pending[1:]
		if p.done[j.ID] {
			continue // a late duplicate beat this requeue
		}
		if p.leaseDuration > 0 {
			p.leases[j.ID] = lease{job: j, deadline: p.now().Add(p.leaseDuration)}
		}
		if _, outstanding := p.issued[j.ID]; !outstanding {
			p.met.inflight.Add(1)
		}
		p.issued[j.ID] = p.now()
		p.met.queued.Set(float64(len(p.pending)))
		out, ok = j, true
		break
	}
	if !ok {
		p.met.queued.Set(0)
	}
	log := p.log
	p.mu.Unlock()
	logExpired(log, expired)
	return out, ok
}

// record stores a result, ignoring duplicates for the same job. The
// arriving result always beats its own just-lapsing lease (it is
// recorded before expired leases are reaped), and reaping here means
// leases lapse even when no worker is asking for work.
func (p *Pool) record(r Result) {
	p.mu.Lock()
	if p.done[r.JobID] {
		p.mu.Unlock()
		return
	}
	p.done[r.JobID] = true
	delete(p.leases, r.JobID)
	if issuedAt, ok := p.issued[r.JobID]; ok {
		lat := p.now().Sub(issuedAt).Seconds()
		p.met.latency.Observe(lat)
		p.met.rec.Histogram("asiccloud_pool_worker_job_seconds", nil,
			"worker", r.Worker).Observe(lat)
		p.met.inflight.Add(-1)
		delete(p.issued, r.JobID)
	}
	if r.Err == "" {
		p.stats.JobsDone++
		p.met.done.Inc()
	} else {
		p.stats.JobsFailed++
		p.met.failed.Inc()
	}
	p.stats.WorkerResults[r.Worker]++
	// Lossless delivery: buffer under the lock, let the pump do the
	// (possibly blocking) channel send outside it.
	p.resBuf = append(p.resBuf, r)
	p.resCond.Signal()
	expired := p.reapExpiredLocked()
	log := p.log
	p.mu.Unlock()
	logExpired(log, expired)
	if r.Err != "" {
		log.LogAttrs(context.Background(), slog.LevelWarn, "job failed",
			slog.Uint64("job_id", r.JobID),
			slog.String("worker", r.Worker),
			slog.String("error", r.Err))
	} else {
		log.LogAttrs(context.Background(), slog.LevelDebug, "job completed",
			slog.Uint64("job_id", r.JobID),
			slog.String("worker", r.Worker))
	}
}

// Stats returns a snapshot. Expired leases are reaped first, so the
// snapshot reflects lease state even when every worker is busy or gone
// (before, leases only lapsed when a worker asked for more work).
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	expired := p.reapExpiredLocked()
	s := p.stats
	s.WorkerResults = make(map[string]int, len(p.stats.WorkerResults))
	for k, v := range p.stats.WorkerResults {
		s.WorkerResults[k] = v
	}
	log := p.log
	p.mu.Unlock()
	logExpired(log, expired)
	return s
}

// logExpired reports reaped leases after p.mu is released (logging
// never happens under the pool lock).
func logExpired(log *slog.Logger, expired []uint64) {
	for _, id := range expired {
		log.LogAttrs(context.Background(), slog.LevelWarn, "lease expired; job requeued",
			slog.Uint64("job_id", id))
	}
}

// Results streams every recorded result in record order. Delivery is
// lossless — a slow consumer back-pressures the internal buffer instead
// of dropping — and the channel is closed once Close has been called
// and all queued jobs are resolved, so `for range pool.Results()` is
// the coordinator's drain loop.
func (p *Pool) Results() <-chan Result { return p.results }

// Remaining reports jobs not yet handed out.
func (p *Pool) Remaining() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// Serve accepts worker connections until the context is canceled or the
// listener fails. Each connection is served on its own goroutine, and
// Serve returns only after every connection goroutine has finished.
//
// Closing the listener once the pool has drained is the graceful
// shutdown: Serve stops accepting, treats the closed listener as a
// clean exit rather than a failure, and its return waits for connected
// workers to collect their final drained nojob and disconnect on their
// own — no worker sees a mid-protocol hangup. Canceling the context is
// the hard stop: it closes the listener and every worker socket.
func (p *Pool) Serve(ctx context.Context, l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	go func() {
		<-ctx.Done()
		//lint:ignore droppederr best-effort shutdown; Accept surfaces the closed listener
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil || p.drained() {
				return nil
			}
			return fmt.Errorf("cloud: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			//lint:ignore droppederr close error on a finished worker socket is unactionable
			defer conn.Close()
			p.serveConn(ctx, conn)
		}()
	}
}

// getworkPollInterval is how often a serveConn holding an unanswerable
// getwork re-checks the queue. Each poll also reaps expired leases (via
// next), so a waiting worker is what recycles a stalled peer's job.
const getworkPollInterval = 15 * time.Millisecond

// serveConn speaks the pull protocol with one worker. Cancellation
// closes the connection, which unblocks the Decode the loop would
// otherwise sit in until the worker disconnected on its own — before
// this, Serve's wg.Wait could hang shutdown behind an idle worker
// socket.
func (p *Pool) serveConn(ctx context.Context, conn net.Conn) {
	p.mu.Lock()
	log := p.log
	p.mu.Unlock()
	remote := conn.RemoteAddr().String()
	stop := context.AfterFunc(ctx, func() {
		log.LogAttrs(ctx, slog.LevelDebug, "watchdog closing worker connection on cancellation",
			slog.String("remote", remote))
		//lint:ignore droppederr best-effort cancellation; the reader sees the closed socket
		conn.Close()
	})
	defer stop()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	worker := "anonymous"
	// held is the job this connection was handed and has not answered;
	// if the connection dies holding it, a lease-less pool requeues it
	// immediately (a leased pool lets the lease timer decide).
	var held *Job
	defer func() {
		if held != nil {
			p.releaseDeadConn(*held)
		}
		log.LogAttrs(ctx, slog.LevelDebug, "worker disconnected",
			slog.String("worker", worker),
			slog.String("remote", remote))
	}()
	for {
		if ctx.Err() != nil {
			return
		}
		var m message
		if err := dec.Decode(&m); err != nil {
			return // disconnect, cancellation, or garbage: drop the connection
		}
		switch m.Type {
		case "hello":
			if m.Worker != "" {
				worker = m.Worker
			}
			log.LogAttrs(ctx, slog.LevelInfo, "worker connected",
				slog.String("worker", worker),
				slog.String("remote", remote))
			if err := enc.Encode(message{Type: "ack"}); err != nil {
				return
			}
		case "getwork":
			j, ok := p.waitNext(ctx)
			if !ok {
				// Truly out of work — drained, idle, or shutting down —
				// not just momentarily empty; nojob is the worker's
				// clean exit.
				//lint:ignore droppederr courtesy reply on a connection we are about to drop
				_ = enc.Encode(message{Type: "nojob"})
				return
			}
			if err := enc.Encode(message{Type: "job", Job: &j}); err != nil {
				// Connection died holding a job: requeue it.
				p.requeue(j)
				return
			}
			held = &j
		case "result":
			if m.Result == nil {
				return
			}
			r := *m.Result
			if r.Worker == "" {
				r.Worker = worker
			}
			if held != nil && r.JobID == held.ID {
				held = nil
			}
			p.record(r)
			if err := enc.Encode(message{Type: "ack"}); err != nil {
				return
			}
		default:
			return // unknown message: drop the connection
		}
	}
}

// waitNext pops the next job, blocking while the pending queue is
// momentarily empty but jobs are still outstanding: an expired lease or
// a dead connection can requeue work at any moment, and dropping the
// worker here would leave that work with nobody to run it. It returns
// ok=false only when the pool is genuinely out of work — drained and
// closed, or idle with nothing in flight — or the context is canceled.
func (p *Pool) waitNext(ctx context.Context) (Job, bool) {
	for {
		if j, ok := p.next(); ok {
			return j, true
		}
		p.mu.Lock()
		idle := p.idleLocked() || p.drainedLocked()
		p.mu.Unlock()
		if idle || ctx.Err() != nil {
			return Job{}, false
		}
		select {
		case <-ctx.Done():
			return Job{}, false
		case <-time.After(getworkPollInterval):
		}
	}
}

// Handler computes a job's output — for a Bitcoin cloud, scanning a
// nonce range; for a transcode cloud, encoding a chunk.
type Handler func(Job) ([]byte, error)

// RunWorker connects to a pool and processes jobs until the pool runs
// dry, the context is canceled, or the connection breaks. It returns the
// number of jobs completed.
func RunWorker(ctx context.Context, addr, id string, h Handler) (int, error) {
	if h == nil {
		return 0, errors.New("cloud: nil handler")
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("cloud: dial %s: %w", addr, err)
	}
	//lint:ignore droppederr close error after the protocol exchange is unactionable
	defer conn.Close()
	go func() {
		<-ctx.Done()
		//lint:ignore droppederr best-effort cancellation; the reader sees the closed socket
		conn.Close()
	}()

	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	if err := enc.Encode(message{Type: "hello", Worker: id}); err != nil {
		return 0, err
	}
	var m message
	if err := dec.Decode(&m); err != nil || m.Type != "ack" {
		return 0, fmt.Errorf("cloud: bad handshake")
	}

	completed := 0
	for {
		if err := enc.Encode(message{Type: "getwork"}); err != nil {
			return completed, ctxErrOr(ctx, err)
		}
		if err := dec.Decode(&m); err != nil {
			return completed, ctxErrOr(ctx, err)
		}
		switch m.Type {
		case "nojob":
			// The explicit drained nojob is the only clean exit.
			return completed, nil
		case "job":
			if m.Job == nil {
				return completed, errors.New("cloud: job message without job")
			}
			out, herr := h(*m.Job)
			r := Result{JobID: m.Job.ID, Worker: id, Output: out}
			if herr != nil {
				r.Err = herr.Error()
			}
			if err := enc.Encode(message{Type: "result", Result: &r}); err != nil {
				return completed, ctxErrOr(ctx, err)
			}
			if err := dec.Decode(&m); err != nil {
				return completed, ctxErrOr(ctx, err)
			}
			if m.Type != "ack" {
				return completed, fmt.Errorf("cloud: expected result ack, got %q", m.Type)
			}
			completed++
		default:
			return completed, fmt.Errorf("cloud: unexpected message %q", m.Type)
		}
	}
}

// ErrUnexpectedDisconnect reports that the connection to the pool died
// mid-protocol — a coordinator crash, a network partition, a watchdog
// close — as opposed to the pool's explicit drained "nojob", which is
// the only clean worker exit. Before this distinction an io.EOF was
// mapped to nil, so a coordinator crash mid-sweep looked exactly like a
// completed drain to RunWorker and RunFleet callers.
var ErrUnexpectedDisconnect = errors.New("cloud: connection to pool lost before drain")

// ctxErrOr maps a transport error seen by the worker: context
// cancellation wins (the watchdog's own close is not a pool failure),
// and any connection-level failure — EOF included — is wrapped in
// ErrUnexpectedDisconnect so callers can tell a dead coordinator from a
// drained pool.
func ctxErrOr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	var opErr *net.OpError
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.As(err, &opErr) {
		return fmt.Errorf("%w: %v", ErrUnexpectedDisconnect, err)
	}
	return err
}

// RunFleet launches n workers against the pool address and waits for all
// of them to drain it, returning the total jobs completed. Worker IDs
// are prefix-0 ... prefix-(n-1). The first worker error (other than a
// clean pool drain) is returned, but all workers always finish.
func RunFleet(ctx context.Context, addr, prefix string, n int, h Handler) (int, error) {
	if n <= 0 {
		return 0, errors.New("cloud: fleet needs at least one worker")
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    int
		firstErr error
	)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			done, err := RunWorker(ctx, addr, fmt.Sprintf("%s-%d", prefix, id), h)
			mu.Lock()
			defer mu.Unlock()
			total += done
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}(w)
	}
	wg.Wait()
	return total, firstErr
}
