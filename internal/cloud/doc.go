// Package cloud is the scale-out layer of an ASIC Cloud: a pool server
// that distributes independent jobs to worker machines over TCP, in the
// style of the third-party pool servers Bitcoin machines pull work from
// ("Machines on the network request work to do from a third-party pool
// server"), and of the paper's general model — "ASIC Clouds target
// workloads consisting of many independent but similar jobs ... Work
// requests from outside the datacenter will be distributed across these
// RCAs in a scale-out fashion."
//
// The protocol is line-delimited JSON. Workers pull: they connect, say
// hello, then alternate getwork requests and result submissions. A
// getwork that cannot be answered immediately blocks server-side while
// jobs are still outstanding — an expired lease or a dead connection
// can requeue work at any moment — and the pool answers nojob only when
// it is genuinely out of work (drained and closed, or idle with nothing
// in flight), so nojob is the worker's clean exit; any other connection
// loss surfaces as ErrUnexpectedDisconnect. A coordinator enqueues
// jobs, calls Close after the last Add, and ranges over Results, which
// delivers every recorded result losslessly and closes once the pool
// drains.
//
// Note the division of labor with package service: cloud distributes
// the *workload itself* (hashing jobs, sweep chunks) across worker
// machines, while service serves *design-space explorations* (which
// server to build) over HTTP — and, via service.RunCoordinator, fans
// one exploration out over this pool. The two layers correspond to the
// paper's runtime system and its design methodology respectively.
package cloud
