// Package cloud is the scale-out layer of an ASIC Cloud: a pool server
// that distributes independent jobs to worker machines over TCP, in the
// style of the third-party pool servers Bitcoin machines pull work from
// ("Machines on the network request work to do from a third-party pool
// server"), and of the paper's general model — "ASIC Clouds target
// workloads consisting of many independent but similar jobs ... Work
// requests from outside the datacenter will be distributed across these
// RCAs in a scale-out fashion."
//
// The protocol is line-delimited JSON. Workers pull: they connect, say
// hello, then alternate getwork requests and result submissions.
//
// Note the division of labor with package service: cloud distributes
// the *workload itself* (hashing jobs) across ASIC worker machines,
// while service serves *design-space explorations* (which server to
// build) over HTTP. The two layers correspond to the paper's runtime
// system and its design methodology respectively.
package cloud
