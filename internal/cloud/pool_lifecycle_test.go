package cloud

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"
)

// TestAddAfterCloseErrors pins the Close contract: Close is idempotent,
// Add fails afterwards, and the Results channel of a closed empty pool
// closes immediately.
func TestAddAfterCloseErrors(t *testing.T) {
	p := NewPool(nil)
	p.Close()
	p.Close() // idempotent
	if err := p.Add(Job{ID: 1}); err == nil {
		t.Fatal("Add after Close should fail")
	}
	select {
	case _, ok := <-p.Results():
		if ok {
			t.Fatal("closed empty pool delivered a result")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Results never closed on a closed empty pool")
	}
}

// TestCloseDrainsResults is the coordinator's loop: enqueue, serve,
// Close, then range Results until the channel closes with every result
// delivered.
func TestCloseDrainsResults(t *testing.T) {
	p := NewPool(makeJobs(8))
	addr, stop := startPool(t, p)
	defer stop()
	if _, err := RunWorker(context.Background(), addr, "w", echoHandler); err != nil {
		t.Fatal(err)
	}
	p.Close()
	got := map[uint64]bool{}
	for r := range p.Results() {
		got[r.JobID] = true
	}
	if len(got) != 8 {
		t.Fatalf("drained %d results, want 8", len(got))
	}
}

// TestLosslessResultsBeyondCapacity pushes far more jobs through Add
// than the results channel's construction capacity (len(jobs)+16 = 16
// for an initially-empty pool) with nobody consuming until the end.
// Before the internal buffer, record dropped every result past the
// channel capacity.
func TestLosslessResultsBeyondCapacity(t *testing.T) {
	const jobs = 100
	p := NewPool(nil)
	for i := 1; i <= jobs; i++ {
		if err := p.Add(Job{ID: uint64(i), Payload: make([]byte, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	addr, stop := startPool(t, p)
	defer stop()
	if n, err := RunWorker(context.Background(), addr, "w", echoHandler); err != nil || n != jobs {
		t.Fatalf("worker: n=%d err=%v, want %d nil", n, err, jobs)
	}
	p.Close()
	got := map[uint64]bool{}
	for r := range p.Results() {
		if got[r.JobID] {
			t.Fatalf("job %d delivered twice", r.JobID)
		}
		got[r.JobID] = true
	}
	if len(got) != jobs {
		t.Fatalf("received %d results, want every one of %d", len(got), jobs)
	}
}

// TestStalledWorkerPastLease is the getwork-wait bug end to end: one
// worker takes a job and stalls past its lease with the connection
// open; the healthy worker drains the rest and must NOT be dropped
// with a premature nojob while that lease is outstanding — it waits,
// the lease lapses, and it completes every job.
func TestStalledWorkerPastLease(t *testing.T) {
	p := NewPool(makeJobs(4))
	p.SetLeaseDuration(60 * time.Millisecond)
	addr, stop := startPool(t, p)
	defer stop()

	// Staller speaking the raw protocol: takes a job, never answers,
	// keeps the connection open so no disconnect path can requeue it.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	if err := enc.Encode(message{Type: "hello", Worker: "staller"}); err != nil {
		t.Fatal(err)
	}
	var m message
	if err := dec.Decode(&m); err != nil || m.Type != "ack" {
		t.Fatal("handshake failed")
	}
	if err := enc.Encode(message{Type: "getwork"}); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&m); err != nil || m.Type != "job" {
		t.Fatal("no job issued to the staller")
	}

	n, err := RunWorker(context.Background(), addr, "healthy", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("healthy worker completed %d jobs, want all 4 (including the stalled one)", n)
	}
	s := p.Stats()
	if s.JobsDone != 4 || s.JobsExpired != 1 {
		t.Fatalf("stats = %+v, want 4 done with 1 expired lease", s)
	}
}

// TestReapWithoutGetwork pins the timer-independent reap paths: leases
// lapse via Stats and via record even when no worker ever asks for
// more work.
func TestReapWithoutGetwork(t *testing.T) {
	p := NewPool(makeJobs(2))
	p.SetLeaseDuration(time.Minute)
	now := time.Unix(1000, 0)
	p.now = func() time.Time { return now }

	j1, ok := p.next()
	if !ok {
		t.Fatal("no job")
	}
	j2, ok := p.next()
	if !ok {
		t.Fatal("no job")
	}
	now = now.Add(2 * time.Minute)

	// record must (a) credit the arriving result even though its own
	// lease just lapsed, and (b) reap the other expired lease.
	p.record(Result{JobID: j1.ID, Worker: "w"})
	s := p.Stats()
	if s.JobsDone != 1 {
		t.Fatalf("done = %d, want the late-but-first result credited", s.JobsDone)
	}
	if s.JobsExpired != 1 {
		t.Fatalf("expired = %d, want exactly the unanswered lease reaped", s.JobsExpired)
	}
	if p.Remaining() != 1 {
		t.Fatalf("remaining = %d, want the reaped job back in pending", p.Remaining())
	}

	// Stats alone reaps too: re-issue, lapse, snapshot.
	j3, ok := p.next()
	if !ok || j3.ID != j2.ID {
		t.Fatalf("expected job %d re-issued, got %d ok=%v", j2.ID, j3.ID, ok)
	}
	now = now.Add(2 * time.Minute)
	if s := p.Stats(); s.JobsExpired != 2 {
		t.Fatalf("expired = %d after Stats, want 2 (Stats must reap)", s.JobsExpired)
	}
}

// TestUnexpectedDisconnect pins satellite 5: a coordinator that dies
// mid-protocol must not look like a clean drain. Only the explicit
// nojob is a clean exit; a dropped connection surfaces as
// ErrUnexpectedDisconnect.
func TestUnexpectedDisconnect(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		dec := json.NewDecoder(conn)
		enc := json.NewEncoder(conn)
		var m message
		if err := dec.Decode(&m); err != nil || m.Type != "hello" {
			conn.Close()
			return
		}
		//lint:ignore droppederr test double; the worker under test sees the close either way
		_ = enc.Encode(message{Type: "ack"})
		_ = dec.Decode(&m) // getwork
		conn.Close()       // coordinator "crashes" instead of answering
	}()

	n, err := RunWorker(context.Background(), l.Addr().String(), "w", echoHandler)
	if !errors.Is(err, ErrUnexpectedDisconnect) {
		t.Fatalf("err = %v, want ErrUnexpectedDisconnect", err)
	}
	if n != 0 {
		t.Fatalf("completed = %d, want 0", n)
	}
}
