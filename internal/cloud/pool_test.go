package cloud

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"asiccloud/internal/apps/bitcoin"
)

// startPool launches a pool on a loopback listener and returns its
// address and a stop function.
func startPool(t *testing.T, p *Pool) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = p.Serve(ctx, l)
	}()
	return l.Addr().String(), func() {
		cancel()
		<-done
	}
}

func makeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		payload := make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, uint64(i))
		jobs[i] = Job{ID: uint64(i + 1), Payload: payload}
	}
	return jobs
}

// echoHandler doubles the payload value.
func echoHandler(j Job) ([]byte, error) {
	v := binary.LittleEndian.Uint64(j.Payload)
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, v*2)
	return out, nil
}

func TestSingleWorkerDrainsPool(t *testing.T) {
	p := NewPool(makeJobs(20))
	addr, stop := startPool(t, p)
	defer stop()

	n, err := RunWorker(context.Background(), addr, "w1", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("worker completed %d jobs, want 20", n)
	}
	s := p.Stats()
	if s.JobsDone != 20 || s.JobsFailed != 0 {
		t.Errorf("stats = %+v, want 20 done", s)
	}
	if s.WorkerResults["w1"] != 20 {
		t.Errorf("w1 results = %d, want 20", s.WorkerResults["w1"])
	}
	if p.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", p.Remaining())
	}
}

func TestResultsContent(t *testing.T) {
	p := NewPool(makeJobs(5))
	addr, stop := startPool(t, p)
	defer stop()
	if _, err := RunWorker(context.Background(), addr, "w1", echoHandler); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]uint64{}
	for i := 0; i < 5; i++ {
		select {
		case r := <-p.Results():
			seen[r.JobID] = binary.LittleEndian.Uint64(r.Output)
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for results")
		}
	}
	for id, out := range seen {
		if out != (id-1)*2 {
			t.Errorf("job %d output = %d, want %d", id, out, (id-1)*2)
		}
	}
}

func TestManyWorkersShareLoad(t *testing.T) {
	const jobs = 60
	p := NewPool(makeJobs(jobs))
	addr, stop := startPool(t, p)
	defer stop()

	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			n, err := RunWorker(context.Background(), addr, fmt.Sprintf("w%d", id), echoHandler)
			if err != nil {
				t.Errorf("worker %d: %v", id, err)
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if total != jobs {
		t.Errorf("workers completed %d jobs total, want %d (each job exactly once)", total, jobs)
	}
	s := p.Stats()
	if s.JobsDone != jobs {
		t.Errorf("pool recorded %d done, want %d", s.JobsDone, jobs)
	}
	// With 60 jobs and 4 pullers, everyone should get some work.
	for w := 0; w < 4; w++ {
		if s.WorkerResults[fmt.Sprintf("w%d", w)] == 0 {
			t.Errorf("worker w%d got no jobs", w)
		}
	}
}

func TestHandlerErrorsAreRecorded(t *testing.T) {
	p := NewPool(makeJobs(10))
	addr, stop := startPool(t, p)
	defer stop()
	bad := func(j Job) ([]byte, error) {
		if j.ID%2 == 0 {
			return nil, errors.New("boom")
		}
		return echoHandler(j)
	}
	if _, err := RunWorker(context.Background(), addr, "w1", bad); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.JobsDone != 5 || s.JobsFailed != 5 {
		t.Errorf("stats = %+v, want 5 done / 5 failed", s)
	}
}

func TestMiningPoolEndToEnd(t *testing.T) {
	// The real thing: distribute nonce ranges for an easy-target block
	// across workers running the actual SHA-256 miner.
	header := bitcoin.Header{Version: 1, Time: 1231006505, Bits: 0x207fffff}
	const rangeSize = 64
	jobs := make([]Job, 8)
	for i := range jobs {
		start := make([]byte, 4)
		binary.LittleEndian.PutUint32(start, uint32(i*rangeSize))
		jobs[i] = Job{ID: uint64(i + 1), Payload: start}
	}
	p := NewPool(jobs)
	addr, stop := startPool(t, p)
	defer stop()

	mine := func(j Job) ([]byte, error) {
		start := binary.LittleEndian.Uint32(j.Payload)
		h := header
		nonce, found, err := bitcoin.Mine(&h, start, rangeSize)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, errors.New("range exhausted")
		}
		out := make([]byte, 4)
		binary.LittleEndian.PutUint32(out, nonce)
		return out, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, _ = RunWorker(context.Background(), addr, fmt.Sprintf("miner%d", id), mine)
		}(w)
	}
	wg.Wait()
	s := p.Stats()
	if s.JobsDone == 0 {
		t.Fatal("no shares found at trivial difficulty")
	}
	// Verify one returned share.
	for i := 0; i < s.JobsDone; i++ {
		select {
		case r := <-p.Results():
			if r.Err != "" {
				continue
			}
			h := header
			h.Nonce = binary.LittleEndian.Uint32(r.Output)
			ok, err := bitcoin.CheckProofOfWork(&h)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("share nonce %d does not verify", h.Nonce)
			}
		default:
		}
	}
}

func TestAddAfterStart(t *testing.T) {
	p := NewPool(nil)
	if err := p.Add(Job{ID: 1, Payload: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	addr, stop := startPool(t, p)
	defer stop()
	n, err := RunWorker(context.Background(), addr, "w", echoHandler)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("completed %d, want 1", n)
	}
}

func TestWorkerContextCancel(t *testing.T) {
	p := NewPool(makeJobs(1000))
	addr, stop := startPool(t, p)
	defer stop()
	ctx, cancel := context.WithCancel(context.Background())
	slow := func(j Job) ([]byte, error) {
		time.Sleep(5 * time.Millisecond)
		return echoHandler(j)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err := RunWorker(ctx, addr, "w", slow)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want nil or context.Canceled", err)
	}
	if p.Remaining() == 0 {
		t.Error("cancellation should leave work behind")
	}
}

func TestWorkerErrors(t *testing.T) {
	if _, err := RunWorker(context.Background(), "127.0.0.1:1", "w", nil); err == nil {
		t.Error("nil handler should fail")
	}
	if _, err := RunWorker(context.Background(), "127.0.0.1:1", "w", echoHandler); err == nil {
		t.Error("unreachable pool should fail")
	}
}

func TestPoolIgnoresDuplicateResults(t *testing.T) {
	p := NewPool(nil)
	p.record(Result{JobID: 7, Worker: "a"})
	p.record(Result{JobID: 7, Worker: "b"})
	s := p.Stats()
	if s.JobsDone != 1 {
		t.Errorf("duplicate results counted: %+v", s)
	}
}

func TestLeaseRequeuesAbandonedJobs(t *testing.T) {
	p := NewPool(makeJobs(3))
	p.SetLeaseDuration(time.Minute)
	// Deterministic clock.
	now := time.Unix(1000, 0)
	p.now = func() time.Time { return now }

	// A worker takes a job and vanishes.
	j1, ok := p.next()
	if !ok {
		t.Fatal("no job")
	}
	if p.Remaining() != 2 {
		t.Fatalf("remaining = %d, want 2", p.Remaining())
	}
	// Before expiry the job stays leased.
	p.mu.Lock()
	p.reapExpiredLocked()
	p.mu.Unlock()
	if p.Remaining() != 2 {
		t.Error("lease reaped early")
	}
	// After expiry the job returns to the queue.
	now = now.Add(2 * time.Minute)
	j2, ok := p.next() // also reaps
	if !ok {
		t.Fatal("no job")
	}
	_ = j2
	if got := p.Stats().JobsRequeued; got != 1 {
		t.Errorf("requeued = %d, want 1", got)
	}
	// The abandoned job is eventually re-issued.
	seen := map[uint64]bool{j1.ID: false, j2.ID: true}
	for {
		j, ok := p.next()
		if !ok {
			break
		}
		seen[j.ID] = true
	}
	if !seen[j1.ID] {
		t.Error("abandoned job never re-issued")
	}
}

func TestLeaseFirstResultWins(t *testing.T) {
	p := NewPool(makeJobs(1))
	p.SetLeaseDuration(time.Nanosecond)
	now := time.Unix(0, 0)
	p.now = func() time.Time { return now }

	j, ok := p.next()
	if !ok {
		t.Fatal("no job")
	}
	// Lease expires; the job is re-issued to a second worker.
	now = now.Add(time.Second)
	j2, ok := p.next()
	if !ok || j2.ID != j.ID {
		t.Fatalf("expected the same job re-issued, got %+v ok=%v", j2, ok)
	}
	// Both workers answer; only the first counts.
	p.record(Result{JobID: j.ID, Worker: "slow"})
	p.record(Result{JobID: j.ID, Worker: "late"})
	s := p.Stats()
	if s.JobsDone != 1 {
		t.Errorf("done = %d, want 1", s.JobsDone)
	}
	if s.WorkerResults["late"] != 0 {
		t.Error("late duplicate result should not be credited")
	}
	// A done job must never be issued again even if a stale requeue
	// lands in pending.
	p.mu.Lock()
	p.pending = append(p.pending, j)
	p.mu.Unlock()
	if _, ok := p.next(); ok {
		t.Error("completed job re-issued")
	}
}

func TestLeaseEndToEndRecovery(t *testing.T) {
	// A flaky worker connects, takes a job, and drops the connection
	// without answering; after the lease expires a healthy worker
	// finishes everything.
	p := NewPool(makeJobs(5))
	p.SetLeaseDuration(50 * time.Millisecond)
	addr, stop := startPool(t, p)
	defer stop()

	// Flaky client speaking the raw protocol.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	if err := enc.Encode(message{Type: "hello", Worker: "flaky"}); err != nil {
		t.Fatal(err)
	}
	var m message
	if err := dec.Decode(&m); err != nil || m.Type != "ack" {
		t.Fatal("handshake failed")
	}
	if err := enc.Encode(message{Type: "getwork"}); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&m); err != nil || m.Type != "job" {
		t.Fatal("no job issued")
	}
	conn.Close() // vanish with the job

	time.Sleep(80 * time.Millisecond) // let the lease lapse

	n, err := RunWorker(context.Background(), addr, "healthy", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("healthy worker completed %d jobs, want all 5", n)
	}
	s := p.Stats()
	if s.JobsDone != 5 {
		t.Errorf("done = %d, want 5", s.JobsDone)
	}
	if s.JobsRequeued != 1 {
		t.Errorf("requeued = %d, want 1", s.JobsRequeued)
	}
}

func TestRunFleet(t *testing.T) {
	p := NewPool(makeJobs(40))
	addr, stop := startPool(t, p)
	defer stop()
	total, err := RunFleet(context.Background(), addr, "fleet", 4, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if total != 40 {
		t.Errorf("fleet completed %d, want 40", total)
	}
	s := p.Stats()
	if len(s.WorkerResults) == 0 {
		t.Error("no per-worker accounting")
	}
	for name := range s.WorkerResults {
		if len(name) < 6 || name[:6] != "fleet-" {
			t.Errorf("unexpected worker name %q", name)
		}
	}
	if _, err := RunFleet(context.Background(), addr, "x", 0, echoHandler); err == nil {
		t.Error("zero workers should fail")
	}
	// A fleet pointed at a dead address reports the dial error.
	if _, err := RunFleet(context.Background(), "127.0.0.1:1", "x", 2, echoHandler); err == nil {
		t.Error("unreachable pool should surface an error")
	}
}
