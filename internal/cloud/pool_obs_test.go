package cloud

import (
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"asiccloud/internal/obs"
)

// TestPoolMetricsEndToEnd drains an instrumented pool and checks the
// counters, gauges and latency histogram against Stats().
func TestPoolMetricsEndToEnd(t *testing.T) {
	p := NewPool(makeJobs(25))
	rec := obs.NewRecorder()
	p.Instrument(rec)
	addr, stop := startPool(t, p)
	defer stop()

	if _, err := RunWorker(context.Background(), addr, "w1", echoHandler); err != nil {
		t.Fatal(err)
	}
	reg := rec.Registry()
	if got := reg.Counter("asiccloud_pool_jobs_done_total").Value(); got != 25 {
		t.Errorf("done counter = %d, want 25", got)
	}
	if got := reg.Histogram("asiccloud_pool_job_seconds", nil).Count(); got != 25 {
		t.Errorf("latency observations = %d, want 25", got)
	}
	if got := reg.Gauge("asiccloud_pool_inflight_jobs").Value(); got != 0 {
		t.Errorf("inflight after drain = %v, want 0", got)
	}
	if got := reg.Gauge("asiccloud_pool_queued_jobs").Value(); got != 0 {
		t.Errorf("queued after drain = %v, want 0", got)
	}
}

// TestLeaseExpiryUnderConcurrentFleet is the satellite coverage task:
// a worker vanishes holding a leased job, the lease lapses, and a
// concurrent fleet drains everything while another goroutine hammers
// Stats() — run with -race. The new requeue/expiry counters must agree
// with the stats snapshot.
func TestLeaseExpiryUnderConcurrentFleet(t *testing.T) {
	const jobs = 30
	p := NewPool(makeJobs(jobs))
	p.SetLeaseDuration(200 * time.Millisecond)
	rec := obs.NewRecorder()
	p.Instrument(rec)
	addr, stop := startPool(t, p)
	defer stop()

	// A flaky raw-protocol client takes one job and vanishes.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	if err := enc.Encode(message{Type: "hello", Worker: "flaky"}); err != nil {
		t.Fatal(err)
	}
	var m message
	if err := dec.Decode(&m); err != nil || m.Type != "ack" {
		t.Fatal("handshake failed")
	}
	if err := enc.Encode(message{Type: "getwork"}); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&m); err != nil || m.Type != "job" {
		t.Fatal("no job issued")
	}
	conn.Close()

	time.Sleep(250 * time.Millisecond) // let the lease lapse

	// Hammer the stats surface while the fleet runs.
	statsCtx, stopStats := context.WithCancel(context.Background())
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		for statsCtx.Err() == nil {
			s := p.Stats()
			if s.JobsDone < 0 || s.JobsRequeued < s.JobsExpired {
				t.Error("inconsistent stats snapshot")
				return
			}
			_ = p.Remaining()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	slow := func(j Job) ([]byte, error) {
		time.Sleep(time.Millisecond)
		return echoHandler(j)
	}
	total, err := RunFleet(context.Background(), addr, "fleet", 4, slow)
	stopStats()
	statsWG.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// >= rather than ==: if a lease lapses mid-computation the job runs
	// twice (first result wins), which is correct at-least-once behavior.
	if total < jobs {
		t.Errorf("fleet completed %d, want >= %d", total, jobs)
	}

	s := p.Stats()
	if s.JobsDone != jobs {
		t.Errorf("done = %d, want %d", s.JobsDone, jobs)
	}
	if s.JobsExpired < 1 {
		t.Errorf("expired = %d, want >= 1 (the flaky worker's lease)", s.JobsExpired)
	}
	if s.JobsRequeued < s.JobsExpired {
		t.Errorf("requeued %d must include the %d expiries", s.JobsRequeued, s.JobsExpired)
	}

	reg := rec.Registry()
	if got := reg.Counter("asiccloud_pool_lease_expired_total").Value(); got != int64(s.JobsExpired) {
		t.Errorf("expiry counter = %d, stats say %d", got, s.JobsExpired)
	}
	if got := reg.Counter("asiccloud_pool_requeued_total").Value(); got != int64(s.JobsRequeued) {
		t.Errorf("requeue counter = %d, stats say %d", got, s.JobsRequeued)
	}
	if got := reg.Counter("asiccloud_pool_jobs_done_total").Value(); got != int64(s.JobsDone) {
		t.Errorf("done counter = %d, stats say %d", got, s.JobsDone)
	}
	if got := reg.Gauge("asiccloud_pool_inflight_jobs").Value(); got != 0 {
		t.Errorf("inflight after drain = %v, want 0", got)
	}
	// A lease that lapses mid-computation drops its issue timestamp, so
	// that completion records no latency sample: the count is bounded by
	// the job count but may fall below it under scheduler starvation.
	if got := reg.Histogram("asiccloud_pool_job_seconds", nil).Count(); got < 1 || got > int64(jobs) {
		t.Errorf("latency observations = %d, want within [1, %d]", got, jobs)
	}
}

// TestUninstrumentedPoolUnchanged pins that a pool without Instrument
// still works: all metric handles are nil and every update is a no-op.
func TestUninstrumentedPoolUnchanged(t *testing.T) {
	p := NewPool(makeJobs(5))
	p.SetLeaseDuration(time.Nanosecond)
	now := time.Unix(0, 0)
	p.now = func() time.Time { return now }
	j, ok := p.next()
	if !ok {
		t.Fatal("no job")
	}
	now = now.Add(time.Second)
	if _, ok := p.next(); !ok { // triggers a reap of j's lease
		t.Fatal("no job")
	}
	p.record(Result{JobID: j.ID, Worker: "w"})
	s := p.Stats()
	if s.JobsExpired != 1 || s.JobsRequeued != 1 {
		t.Errorf("stats = %+v, want 1 expired / 1 requeued", s)
	}
}
