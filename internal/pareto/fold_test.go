package pareto

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestCompareNaN(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		a, b float64
		want int
	}{
		{1, 2, -1}, {2, 1, 1}, {1, 1, 0},
		{nan, 1, 1}, {1, nan, -1}, {nan, nan, 0},
		{math.Inf(1), nan, -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesNaN(t *testing.T) {
	nan := math.NaN()
	if Dominates(nan, 0, 1, 1) {
		t.Error("a NaN coordinate must never dominate")
	}
	if Dominates(nan, nan, 1, 1) {
		t.Error("an all-NaN point must never dominate")
	}
	if !Dominates(1, 1, nan, 1) {
		t.Error("a real point should dominate a NaN-x point no better elsewhere")
	}
	if !Dominates(1, 1, nan, nan) {
		t.Error("a real point should dominate an all-NaN point")
	}
}

func TestArgMinNaN(t *testing.T) {
	nan := math.NaN()
	vals := []float64{nan, 3, 1, nan, 2}
	if got := ArgMin(vals, func(v float64) float64 { return v }); got != 2 {
		t.Fatalf("ArgMin = %d, want 2 (a leading NaN must not win)", got)
	}
	if got := ArgMin([]float64{nan, nan}, func(v float64) float64 { return v }); got != -1 {
		t.Fatalf("all-NaN ArgMin = %d, want -1", got)
	}
	if got := ArgMin(nil, func(v float64) float64 { return v }); got != -1 {
		t.Fatalf("empty ArgMin = %d, want -1", got)
	}
}

func TestFrontierFiltersNaN(t *testing.T) {
	nan := math.NaN()
	pts := []pt{{nan, 0}, {1, 2}, {0, nan}, {2, 1}}
	fr := Frontier(pts, xs, ys)
	if !reflect.DeepEqual(fr, []int{1, 3}) {
		t.Fatalf("Frontier = %v, want [1 3]", fr)
	}
	if fr := Frontier([]pt{{nan, nan}}, xs, ys); len(fr) != 0 {
		t.Fatalf("all-NaN Frontier = %v, want empty", fr)
	}
}

// frontierSet runs Frontier and returns the selected points.
func frontierSet(pts []pt) []pt {
	return Select(pts, Frontier(pts, xs, ys))
}

// randomPoints draws a deterministic cloud with exact duplicates, shared
// coordinates and occasional NaN, the cases a streaming fold can get
// wrong.
func randomPoints(rng *rand.Rand, n int) []pt {
	pts := make([]pt, 0, n)
	for i := 0; i < n; i++ {
		p := pt{float64(rng.Intn(20)), float64(rng.Intn(20))}
		switch rng.Intn(10) {
		case 0:
			p.x = math.NaN()
		case 1:
			pts = append(pts, p) // exact duplicate
		}
		pts = append(pts, p)
	}
	return pts
}

func TestFoldMatchesFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		pts := randomPoints(rng, 1+rng.Intn(60))
		f := NewFold(xs, ys)
		for _, p := range pts {
			f.Add(p)
		}
		got := frontierSet(f.Points())
		want := frontierSet(pts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: fold frontier %v != direct frontier %v (points %v)",
				trial, got, want, pts)
		}
	}
}

func TestFoldMergeMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		pts := randomPoints(rng, 1+rng.Intn(60))
		single := NewFold(xs, ys)
		parts := []*Fold[pt]{NewFold(xs, ys), NewFold(xs, ys), NewFold(xs, ys)}
		for i, p := range pts {
			single.Add(p)
			parts[i%len(parts)].Add(p)
		}
		merged := NewFold(xs, ys)
		for _, part := range parts {
			merged.Merge(part)
		}
		got := frontierSet(merged.Points())
		want := frontierSet(single.Points())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged frontier %v != single-fold frontier %v", trial, got, want)
		}
	}
}
