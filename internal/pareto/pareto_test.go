package pareto

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

type pt struct{ x, y float64 }

func xs(p pt) float64 { return p.x }
func ys(p pt) float64 { return p.y }

func TestDominates(t *testing.T) {
	cases := []struct {
		ax, ay, bx, by float64
		want           bool
	}{
		{1, 1, 2, 2, true},
		{1, 2, 2, 1, false},
		{2, 1, 1, 2, false},
		{1, 1, 1, 1, false}, // equal: no strict improvement
		{1, 1, 1, 2, true},
		{1, 1, 2, 1, true},
		{2, 2, 1, 1, false},
	}
	for _, c := range cases {
		if got := Dominates(c.ax, c.ay, c.bx, c.by); got != c.want {
			t.Errorf("Dominates(%v,%v,%v,%v) = %v, want %v", c.ax, c.ay, c.bx, c.by, got, c.want)
		}
	}
}

func TestFrontierSimple(t *testing.T) {
	pts := []pt{
		{1, 10}, // frontier
		{2, 5},  // frontier
		{3, 7},  // dominated by (2,5)
		{4, 1},  // frontier
		{5, 2},  // dominated by (4,1)
	}
	idx := Frontier(pts, xs, ys)
	want := []int{0, 1, 3}
	if len(idx) != len(want) {
		t.Fatalf("frontier = %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("frontier = %v, want %v", idx, want)
		}
	}
}

func TestFrontierEmpty(t *testing.T) {
	if got := Frontier(nil, xs, ys); len(got) != 0 {
		t.Errorf("empty frontier = %v", got)
	}
}

func TestFrontierSinglePoint(t *testing.T) {
	idx := Frontier([]pt{{3, 4}}, xs, ys)
	if len(idx) != 1 || idx[0] != 0 {
		t.Errorf("single-point frontier = %v", idx)
	}
}

func TestFrontierDropsDuplicates(t *testing.T) {
	pts := []pt{{1, 1}, {1, 1}, {2, 0.5}}
	idx := Frontier(pts, xs, ys)
	if len(idx) != 2 {
		t.Errorf("frontier with duplicates = %v, want 2 points", idx)
	}
}

func TestFrontierProperties(t *testing.T) {
	// Property: no frontier point dominates another; every non-frontier
	// point is dominated by some frontier point.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		pts := make([]pt, n)
		for i := range pts {
			pts[i] = pt{rng.Float64() * 100, rng.Float64() * 100}
		}
		idx := Frontier(pts, xs, ys)
		on := map[int]bool{}
		for _, i := range idx {
			on[i] = true
		}
		for _, i := range idx {
			for _, j := range idx {
				if i != j && Dominates(pts[i].x, pts[i].y, pts[j].x, pts[j].y) {
					return false
				}
			}
		}
		for k := range pts {
			if on[k] {
				continue
			}
			dominated := false
			for _, i := range idx {
				if Dominates(pts[i].x, pts[i].y, pts[k].x, pts[k].y) ||
					(pts[i].x == pts[k].x && pts[i].y == pts[k].y) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		// Frontier is sorted by ascending x with strictly descending y.
		if !sort.SliceIsSorted(idx, func(a, b int) bool { return pts[idx[a]].x < pts[idx[b]].x }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSelect(t *testing.T) {
	pts := []pt{{1, 1}, {2, 2}, {3, 3}}
	got := Select(pts, []int{2, 0})
	if len(got) != 2 || got[0].x != 3 || got[1].x != 1 {
		t.Errorf("Select = %v", got)
	}
}

func TestArgMin(t *testing.T) {
	pts := []pt{{5, 0}, {2, 0}, {9, 0}}
	if got := ArgMin(pts, xs); got != 1 {
		t.Errorf("ArgMin = %d, want 1", got)
	}
	if got := ArgMin(nil, xs); got != -1 {
		t.Errorf("ArgMin(empty) = %d, want -1", got)
	}
}
