// Package pareto provides generic Pareto-dominance utilities over
// two-objective minimization problems — in the ASIC Cloud flow the two
// objectives are hardware cost per op/s ($ per op/s) and energy per op
// (W per op/s), and "designs can be evaluated according to these metrics,
// and mapped into a Pareto space that trades cost and energy efficiency".
package pareto

import "sort"

// Dominates reports whether point a = (ax, ay) dominates b = (bx, by)
// under minimization of both coordinates: a is no worse in both and
// strictly better in at least one.
func Dominates(ax, ay, bx, by float64) bool {
	if ax > bx || ay > by {
		return false
	}
	return ax < bx || ay < by
}

// Frontier returns the indices of the Pareto-optimal elements of pts
// under minimization of both objective functions, sorted by ascending x.
// Ties on both coordinates keep the first-seen element only.
func Frontier[T any](pts []T, x, y func(T) float64) []int {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		xa, xb := x(pts[idx[a]]), x(pts[idx[b]])
		//lint:ignore floatcmp sort comparators need an exact total order; fuzzy ties break transitivity
		if xa != xb {
			return xa < xb
		}
		return y(pts[idx[a]]) < y(pts[idx[b]])
	})
	var out []int
	bestY := 0.0
	first := true
	for _, i := range idx {
		yi := y(pts[i])
		if first || yi < bestY {
			// Skip exact duplicates of the previous frontier point.
			//lint:ignore floatcmp dedup targets bit-identical points; near-duplicates are kept by design
			if !first && x(pts[i]) == x(pts[out[len(out)-1]]) && yi == bestY {
				continue
			}
			out = append(out, i)
			bestY = yi
			first = false
		}
	}
	return out
}

// Select returns the elements of pts at the given indices.
func Select[T any](pts []T, idx []int) []T {
	out := make([]T, 0, len(idx))
	for _, i := range idx {
		out = append(out, pts[i])
	}
	return out
}

// ArgMin returns the index of the element minimizing f, or -1 for an
// empty slice.
func ArgMin[T any](pts []T, f func(T) float64) int {
	best := -1
	var bestV float64
	for i := range pts {
		v := f(pts[i])
		if best < 0 || v < bestV {
			best, bestV = i, v
		}
	}
	return best
}
