// Package pareto provides generic Pareto-dominance utilities over
// two-objective minimization problems — in the ASIC Cloud flow the two
// objectives are hardware cost per op/s ($ per op/s) and energy per op
// (W per op/s), and "designs can be evaluated according to these metrics,
// and mapped into a Pareto space that trades cost and energy efficiency".
//
// All functions order NaN explicitly: a NaN objective ranks after every
// real value, so a degenerate point can never dominate, never wins an
// ArgMin, and never appears on a Frontier. Without that rule IEEE
// comparison semantics poison the fold — `v < NaN` is always false, so a
// leading NaN would win ArgMin forever, and a NaN coordinate could never
// be dominated away.
package pareto

import (
	"math"
	"sort"
)

// Compare orders two float64s with NaN ranking after every real value
// (and equal to another NaN). It returns -1, 0 or +1. This is the total
// order every function in this package uses, exported so callers that
// sort or tie-break the same objective values stay consistent with the
// frontier's view of them.
func Compare(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Dominates reports whether point a = (ax, ay) dominates b = (bx, by)
// under minimization of both coordinates: a is no worse in both and
// strictly better in at least one. NaN coordinates rank worse than
// everything (see Compare), so a point with a NaN coordinate never
// dominates, and is dominated by any point no worse on the other
// coordinate.
func Dominates(ax, ay, bx, by float64) bool {
	cx, cy := Compare(ax, bx), Compare(ay, by)
	if cx > 0 || cy > 0 {
		return false
	}
	return cx < 0 || cy < 0
}

// Frontier returns the indices of the Pareto-optimal elements of pts
// under minimization of both objective functions, sorted by ascending x.
// Ties on both coordinates keep the first-seen element only. Points with
// a NaN objective are filtered out: they rank worse than every real
// point, so they are Pareto-optimal only in a degenerate all-NaN set,
// where an empty frontier is the honest answer.
func Frontier[T any](pts []T, x, y func(T) float64) []int {
	idx := make([]int, 0, len(pts))
	for i := range pts {
		if math.IsNaN(x(pts[i])) || math.IsNaN(y(pts[i])) {
			continue
		}
		idx = append(idx, i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		xa, xb := x(pts[idx[a]]), x(pts[idx[b]])
		//lint:ignore floatcmp sort comparators need an exact total order; fuzzy ties break transitivity
		if xa != xb {
			return xa < xb
		}
		return y(pts[idx[a]]) < y(pts[idx[b]])
	})
	var out []int
	bestY := 0.0
	first := true
	for _, i := range idx {
		// In (x asc, y asc) order a point extends the frontier exactly
		// when it strictly improves y; everything else — including exact
		// duplicates of the previous frontier point — is dominated or
		// tied and skipped.
		if yi := y(pts[i]); first || yi < bestY {
			out = append(out, i)
			bestY = yi
			first = false
		}
	}
	return out
}

// Select returns the elements of pts at the given indices.
func Select[T any](pts []T, idx []int) []T {
	out := make([]T, 0, len(idx))
	for _, i := range idx {
		out = append(out, pts[i])
	}
	return out
}

// ArgMin returns the index of the element minimizing f. It returns -1
// for an empty slice or when every value is NaN; NaN values are never
// minimal (see Compare).
func ArgMin[T any](pts []T, f func(T) float64) int {
	best := -1
	var bestV float64
	for i := range pts {
		v := f(pts[i])
		if math.IsNaN(v) {
			continue
		}
		if best < 0 || v < bestV {
			best, bestV = i, v
		}
	}
	return best
}
