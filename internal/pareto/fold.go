package pareto

import (
	"math"
	"sort"
)

// Fold is a bounded-memory streaming accumulator for the two-objective
// Pareto frontier: points are folded in one at a time, dominated points
// are discarded immediately, and only the current non-dominated set is
// retained. Memory is O(frontier size) instead of O(points evaluated),
// which is what lets an explorer drop full point retention for
// frontier-only callers.
//
// The retained set is order-independent: folding the same multiset of
// points in any order — or folding worker-local Folds into one with
// Merge — yields the same set, because Pareto-maximality is a property
// of the set, not of arrival order. Exact duplicates of retained points
// are kept (dominance requires strict improvement somewhere), so
// downstream tie-breaking over the survivors sees the same candidates a
// full sort of all points would.
//
// Points with a NaN objective are ignored on Add, matching Frontier's
// NaN filtering.
//
// A Fold is not safe for concurrent use; give each worker its own and
// Merge under a lock.
type Fold[T any] struct {
	x, y func(T) float64
	// pts is sorted by (x asc, y asc). Across distinct retained points y
	// is strictly decreasing as x increases (the Pareto staircase); the
	// only coincident entries are exact coordinate duplicates.
	pts []T
}

// NewFold returns an empty fold over the two objective functions.
func NewFold[T any](x, y func(T) float64) *Fold[T] {
	return &Fold[T]{x: x, y: y}
}

// Len is the number of retained (non-dominated) points.
func (f *Fold[T]) Len() int { return len(f.pts) }

// Add folds one point in: a no-op if p is dominated by (or has a NaN
// objective alongside) the retained set, otherwise p is inserted and
// every retained point p dominates is dropped. The sweep engine calls
// Add once per feasible configuration, so it is allocation-sensitive:
// memory use is bounded by the frontier, not by how many points flow
// through.
//
//asic:hotpath
func (f *Fold[T]) Add(p T) {
	px, py := f.x(p), f.y(p)
	if math.IsNaN(px) || math.IsNaN(py) {
		return
	}
	// First retained index at or after p in (x asc, y asc) order.
	//lint:ignore hotalloc the closure only captures stack locals and f, so escape analysis keeps it off the heap
	pos := sort.Search(len(f.pts), func(i int) bool {
		xi := f.x(f.pts[i])
		//lint:ignore floatcmp the staircase invariant needs an exact lexicographic order over coordinates
		if xi != px {
			return xi > px
		}
		return f.y(f.pts[i]) >= py
	})
	// Only the nearest retained point to the left can dominate p: every
	// point further left has larger-or-equal y by the staircase
	// invariant, so it dominates p only if that neighbor does too.
	if pos > 0 {
		q := f.pts[pos-1]
		if Dominates(f.x(q), f.y(q), px, py) {
			return
		}
	}
	// Points p dominates form a contiguous run at pos: they have x >= px
	// and, until y drops below py, y >= py. Exact duplicates terminate
	// the run immediately (neither point dominates the other).
	end := pos
	for end < len(f.pts) {
		q := f.pts[end]
		if !Dominates(px, py, f.x(q), f.y(q)) {
			break
		}
		end++
	}
	if end > pos {
		f.pts[pos] = p
		//lint:ignore hotalloc shifts within capacity; growth is bounded by the frontier size, not the point count
		f.pts = append(f.pts[:pos+1], f.pts[end:]...)
		return
	}
	var zero T
	//lint:ignore hotalloc growth is bounded by the frontier size, not the point count
	f.pts = append(f.pts, zero)
	copy(f.pts[pos+1:], f.pts[pos:])
	f.pts[pos] = p
}

// Merge folds every point retained by o into f. o is not modified.
func (f *Fold[T]) Merge(o *Fold[T]) {
	for _, p := range o.pts {
		f.Add(p)
	}
}

// Points returns a copy of the retained set in (x asc, y asc) order.
// Run Frontier over it to apply the standard duplicate tie-breaking;
// the result is identical to Frontier over every point ever Added.
func (f *Fold[T]) Points() []T {
	return append([]T(nil), f.pts...)
}
