// Package fixture exercises goroleak: go statements with and without a
// visible cancellation edge.
package fixture

import (
	"context"
	"sync"
)

type server struct {
	queue chan int
}

// worker drains the server's work channel; closing the channel stops it.
func (s *server) worker() {
	for j := range s.queue {
		_ = j
	}
}

// supervise has no channel expressions of its own but calls worker,
// whose range-over-channel is found transitively through the call graph.
func supervise(s *server) {
	s.worker()
}

// helperSpin has no cancellation edge anywhere.
func helperSpin() {
	for {
	}
}

func (s *server) start(ctx context.Context) {
	// Clean: worker's body ranges over s.queue.
	go s.worker()

	// Clean: evidence one call-graph hop away.
	go supervise(s)

	// Flagged: no context, channel or WaitGroup in sight.
	go helperSpin()

	// Flagged: bare spinner literal.
	go func() {
		for {
		}
	}()

	// Clean: blocks on the captured context.
	go func() {
		<-ctx.Done()
	}()

	// Clean: a channel argument is a cancellation edge.
	go func(done chan struct{}) {
		<-done
	}(make(chan struct{}))

	// Clean: WaitGroup participation makes the goroutine awaitable.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
