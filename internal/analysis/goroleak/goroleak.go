// Package goroleak flags goroutine launches with no visible cancellation
// edge.
//
// A goroutine that holds no context, no done/work channel and no
// WaitGroup cannot be stopped or awaited: when the daemon shuts down it
// either leaks (blocked forever) or races the exit path. The analyzer
// inspects every `go` statement and looks for cancellation evidence in
// the call's arguments and in the body of the spawned function — a
// context.Context value, any channel operation (a worker ranging over a
// work channel stops when the channel closes), or a sync.WaitGroup.
// Named callees are resolved through the run-wide call graph and scanned
// transitively a few hops deep, so `go s.worker()` is cleared by the
// channel receive inside worker. Deliberately fire-and-forget goroutines
// take a //lint:ignore with the lifecycle justification.
package goroleak

import (
	"go/ast"
	"go/types"
	"strings"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/cfg"
)

// Analyzer is the goroleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "flags go statements whose goroutine has no cancellation edge — no context, channel or " +
		"WaitGroup in its arguments or (transitively) its body",
	Match: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "internal/") || strings.Contains(pkgPath, "cmd/")
	},
	Run: run,
}

// calleeDepth bounds the transitive body scan through the call graph.
// Two hops covers the dominant pattern (`go s.worker()` → worker →
// helper); deeper evidence is invisible at the spawn site anyway and a
// suppression with a justification reads better than a silent pass.
const calleeDepth = 3

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !hasCancellationEdge(pass, gs.Call) {
				pass.Reportf(gs.Pos(), "goroutine has no cancellation edge (no context, channel, or "+
					"WaitGroup in its arguments or body); it cannot be stopped or awaited — thread a ctx "+
					"or done channel through, or //lint:ignore with the lifecycle justification")
			}
			return true
		})
	}
	return nil
}

// hasCancellationEdge looks for cancellation evidence around one spawn:
// in the call's arguments, then in the spawned body (function literal or
// call-graph-resolved declaration, followed transitively).
func hasCancellationEdge(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isCancellationType(pass.TypeOf(arg)) {
			return true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodyHasEvidence(pass.Info, lit.Body)
	}
	// A method value spawn (`go s.worker()`) cancels through its receiver
	// state just as well as through arguments; the body scan below sees
	// the receiver's channel operations, so nothing extra is needed here.
	cg := pass.CallGraph()
	if fn := cfg.Callee(pass.Info, call); fn != nil {
		return declHasEvidence(cg, fn, calleeDepth, make(map[*types.Func]bool))
	}
	// Calls through function values resolve to nothing; the value itself
	// may be cancellation-aware, so stay quiet rather than guess.
	return true
}

// declHasEvidence scans fn's declared body for cancellation evidence,
// following named callees up to depth hops.
func declHasEvidence(cg *cfg.CallGraph, fn *types.Func, depth int, seen map[*types.Func]bool) bool {
	if seen[fn] {
		return false
	}
	seen[fn] = true
	decl := cg.DeclOf(fn)
	if decl == nil {
		// Standard-library or interface callee: its body is out of reach,
		// and flagging what we cannot see produces noise, not safety.
		return true
	}
	// A context/channel/WaitGroup parameter or receiver is itself an edge.
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && isCancellationType(recv.Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isCancellationType(sig.Params().At(i).Type()) {
			return true
		}
	}
	if decl.Body != nil {
		if info := cg.InfoOf(fn); info != nil && bodyHasEvidence(info, decl.Body) {
			return true
		}
	}
	if depth == 0 {
		return false
	}
	for _, callee := range cg.Callees(fn) {
		if declHasEvidence(cg, callee, depth-1, seen) {
			return true
		}
	}
	return false
}

// bodyHasEvidence reports whether any expression in body (including
// nested literals — a select wrapped in a closure still cancels) has a
// cancellation-capable type.
func bodyHasEvidence(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && isCancellationType(info.TypeOf(e)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isCancellationType reports whether t can carry a cancellation signal:
// a context, any channel, or a WaitGroup.
func isCancellationType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	switch types.TypeString(t, nil) {
	case "context.Context", "sync.WaitGroup":
		return true
	}
	return false
}
