package goroleak_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	atest.Run(t, goroleak.Analyzer, "goroleak", atest.Config{})
}
