// Package unitdoc flags exported numeric declarations in the physics
// packages whose doc comments do not name a unit.
//
// Every exported float64 field and numeric constant in the thermal, VLSI,
// DRAM, power, TCO and units packages is a physical quantity flowing into
// the TCO pipeline. Its unit (W, mm², K, m³/s, $, ... or an explicit
// "dimensionless"/"ratio") must appear in the doc comment — the field name
// alone is not enough, because name conventions drift while doc comments
// are what godoc and reviewers read.
package unitdoc

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"asiccloud/internal/analysis"
)

// PhysicsPackages lists the import-path suffixes the analyzer applies to.
// Extend this list as more packages join the quantity pipeline.
var PhysicsPackages = []string{
	"internal/units",
	"internal/thermal",
	"internal/vlsi",
	"internal/dram",
	"internal/power",
	"internal/tco",
	"internal/carbon",
}

// Analyzer is the unitdoc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "unitdoc",
	Doc: "flags exported float64 struct fields and exported numeric constants in physics " +
		"packages whose doc comment names no unit (W, mm², K, $, \"dimensionless\", ...)",
	Match: func(pkgPath string) bool {
		for _, suffix := range PhysicsPackages {
			if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
				return true
			}
		}
		return false
	},
	Run: run,
}

// Unit vocabulary. Three matchers because Go units mix case-sensitive
// single letters (W, K, V, A, J — case-insensitive matching would turn
// the article "a" into amperes), ordinary words, and symbols that have no
// word boundaries.
var (
	// Case-sensitive unit letters and compounds.
	unitLetters = regexp.MustCompile(`\b(W|K|V|A|J|N|m|s|g|kg|Pa|Hz|kHz|MHz|GHz|H/s|kH/s|MH/s|GH/s|TH/s|mW|kW|MW|kWh|K/W|W/mK|RPM|CFM|PUE|PerfUnit|GB|MB|KB|GB/s|mm|cm|nm|µm|um|ms|ns|µs|us)\b`)

	// Case-insensitive unit words.
	unitWords = regexp.MustCompile(`(?i)\b(watt|watts|volt|volts|amp|amps|ampere|amperes|joule|joules|kelvin|kelvins|celsius|pascal|pascals|newton|newtons|meter|meters|metre|metres|gram|grams|kilogram|kilograms|second|seconds|minute|minutes|hour|hours|day|days|year|years|month|months|annual|dollar|dollars|cent|cents|usd|hash|hashes|op|ops|bit|bits|byte|bytes|frame|frames|block|blocks|die|dies|chip|chips|lane|lanes|server|servers|gate|gates|flop|flops|access|accesses|number of|dimensionless|unitless|ratio|fraction|multiplier|percent|percentage|probability|count|exponent|factor|efficiency|index|degree|degrees)\b`)

	// Symbols and typographic units matched as plain substrings.
	unitSymbols = []string{"°C", "°F", "²", "³", "µ", "$", "%", "Ω", "·K", "·s", "/s", "/kg", "/m", "/W", "/mm", "per "}
)

// namesUnit reports whether the comment text mentions any known unit.
// Comment text arrives with hard line breaks; they are folded to spaces so
// multi-word tokens ("per cycle") match across wrapped lines.
func namesUnit(text string) bool {
	text = strings.Join(strings.Fields(text), " ")
	// Drop apostrophes so possessives don't fabricate unit letters: in
	// "the model's knob", \bs\b would otherwise match the trailing s.
	text = strings.ReplaceAll(text, "'", "")
	if unitLetters.MatchString(text) || unitWords.MatchString(text) {
		return true
	}
	for _, sym := range unitSymbols {
		if strings.Contains(text, sym) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					st, ok := spec.Type.(*ast.StructType)
					if ok && spec.Name.IsExported() {
						checkStruct(pass, st)
					}
				case *ast.ValueSpec:
					if gd.Tok.String() == "const" {
						checkConst(pass, gd, spec)
					}
				}
			}
		}
	}
	return nil
}

// checkStruct flags exported float64 fields whose doc (leading comment) or
// line comment (trailing // ...) names no unit.
func checkStruct(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if !isFloat64(pass.TypeOf(field.Type)) {
			continue
		}
		text := field.Doc.Text() + " " + field.Comment.Text()
		if namesUnit(text) {
			continue
		}
		for _, name := range field.Names {
			if name.IsExported() {
				pass.Reportf(name.Pos(), "exported float64 field %s carries a physical quantity but its doc comment names no unit (add e.g. \"in W\", \"in mm²\", or \"dimensionless\")", name.Name)
			}
		}
	}
}

// checkConst flags exported numeric constants with no unit in their doc.
// The declaration group's doc is consulted only for single-spec decls;
// inside a grouped const block each constant documents itself.
func checkConst(pass *analysis.Pass, gd *ast.GenDecl, spec *ast.ValueSpec) {
	text := spec.Doc.Text() + " " + spec.Comment.Text()
	if len(gd.Specs) == 1 {
		text += " " + gd.Doc.Text()
	}
	if namesUnit(text) {
		return
	}
	for _, name := range spec.Names {
		if !name.IsExported() {
			continue
		}
		obj, ok := pass.Info.Defs[name].(*types.Const)
		if !ok {
			continue
		}
		b, ok := obj.Type().Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsNumeric == 0 {
			continue
		}
		// Enumerators (constants of a named integer type, the `type Kind
		// int` + iota pattern) are labels, not physical quantities.
		if _, named := obj.Type().(*types.Named); named && b.Info()&types.IsInteger != 0 {
			continue
		}
		pass.Reportf(name.Pos(), "exported numeric constant %s has no unit in its doc comment (add e.g. \"in J/(kg·K)\", \"hours\", or \"dimensionless\")", name.Name)
	}
}

func isFloat64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
