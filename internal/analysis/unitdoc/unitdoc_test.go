package unitdoc_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/unitdoc"
)

// The fixture lives under testdata/internal/power/ so that its import
// path also satisfies the analyzer's Match scoping when cmd/asiclint is
// pointed at the directory directly.
func TestUnitdoc(t *testing.T) {
	atest.Run(t, unitdoc.Analyzer, "internal/power/bad", atest.Config{})
}
