// Package fixture exercises the unitdoc analyzer: exported float64
// fields and exported numeric constants must name a unit in their doc,
// while documented quantities, enum constants, strings and unexported
// names pass.
package fixture

// Chip is a fixture physical description.
type Chip struct {
	// Power is the electrical draw at the nominal operating point.
	Power float64 // flagged: no unit named

	// AreaMM2 is the die area in mm².
	AreaMM2 float64 // fine: doc comment names mm²

	Freq float64 // clock frequency in Hz — fine: trailing comment names Hz

	// Efficiency is a dimensionless ratio.
	Efficiency float64 // fine: explicitly dimensionless

	Name string // fine: not a float64

	spare float64 // fine: unexported
}

// BadConst is the model's calibration knob. (flagged: no unit named)
const BadConst = 42.0

// GoodConst is the amortization horizon in hours.
const GoodConst = 8760.0

// Kind labels the supported memory families.
type Kind int

// Enumerators are labels, not quantities: exempt even without units.
const (
	// KindA is the first family.
	KindA Kind = iota
	// KindB is the other family.
	KindB
)
