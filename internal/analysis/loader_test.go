package analysis_test

import (
	"path/filepath"
	"testing"

	"asiccloud/internal/analysis"
)

// TestLoaderSkipsTestAndTaggedFiles loads the loadpkg fixture directory,
// which holds one buildable file plus three files the loader must
// ignore: a //go:build devtools file, an in-package _test.go and an
// external-package _test.go (whose loadpkg_test package name would
// break type-checking if it were parsed).
func TestLoaderSkipsTestAndTaggedFiles(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "loadpkg"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load: got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if got, want := pkg.Pkg.Name(), "loadpkg"; got != want {
		t.Errorf("package name: got %q, want %q", got, want)
	}
	if got, want := pkg.Path, "asiccloud/internal/analysis/testdata/loadpkg"; got != want {
		t.Errorf("import path: got %q, want %q", got, want)
	}
	if len(pkg.Files) != 1 {
		names := make([]string, 0, len(pkg.Files))
		for _, f := range pkg.Files {
			names = append(names, pkg.Fset.Position(f.Pos()).Filename)
		}
		t.Fatalf("loaded files: got %v, want just a.go", names)
	}
	scope := pkg.Pkg.Scope()
	if scope.Lookup("A") == nil {
		t.Error("symbol A from a.go not loaded")
	}
	for _, sym := range []string{"Tagged", "InPackageTestSymbol", "ExternalTestSymbol"} {
		if scope.Lookup(sym) != nil {
			t.Errorf("symbol %s should have been excluded by the loader", sym)
		}
	}
}

// TestLoaderRecursiveSkipsTestdata guards the pattern expansion: a /...
// walk must not descend into testdata directories, so the loadpkg
// fixture stays invisible to ordinary recursive loads.
func TestLoaderRecursiveSkipsTestdata(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./cfg/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range pkgs {
		if filepath.Base(pkg.Dir) == "loadpkg" {
			t.Errorf("recursive load descended into testdata: %s", pkg.Path)
		}
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load ./cfg/...: got %d packages, want 1", len(pkgs))
	}
}
