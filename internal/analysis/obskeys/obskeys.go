// Package obskeys enforces observability hygiene: structured-log keys
// and metric names are part of the repo's query interface, and a typo
// in either breaks every dashboard and grep that depends on it —
// silently, because slog and the metrics registry accept any string.
//
// Three checks:
//
//   - slog attribute keys — in Logger.Debug/Info/Warn/Error (and the
//     Context/Log variants), the package-level slog functions, and the
//     slog.String/Int/... attr constructors — must be compile-time
//     constant snake_case strings. A non-constant key means the set of
//     keys in the logs is data-dependent and unqueryable.
//   - metric names passed to Counter/Gauge/Histogram/SetHelp on a
//     Recorder or Registry must be constant strings matching the
//     asiccloud_snake_case convention, and metric label keys must be
//     constant snake_case, mirroring the exported Prometheus surface.
//   - no logging while a sync.Mutex/RWMutex is held: slog handlers do
//     formatting and I/O, and serialising that under a lock turns a
//     diagnostic into a contention point. The check walks the CFG from
//     each Lock to its Unlock, the same way lockheld does.
package obskeys

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/cfg"
)

// Analyzer is the obskeys analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "obskeys",
	Doc: "flags non-constant or non-snake_case slog keys, metric names outside the " +
		"asiccloud_ convention, and log calls made while a mutex is held",
	Match: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "internal/") || strings.Contains(pkgPath, "cmd/")
	},
	Run: run,
}

var (
	snakeCase  = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
	metricName = regexp.MustCompile(`^asiccloud_[a-z0-9]+(_[a-z0-9]+)*$`)
)

// logMethods maps slog entry points (go/types full name) to the index
// of the first key/value argument.
var logMethods = map[string]int{
	"(*log/slog.Logger).Debug":        1,
	"(*log/slog.Logger).Info":         1,
	"(*log/slog.Logger).Warn":         1,
	"(*log/slog.Logger).Error":        1,
	"(*log/slog.Logger).DebugContext": 2,
	"(*log/slog.Logger).InfoContext":  2,
	"(*log/slog.Logger).WarnContext":  2,
	"(*log/slog.Logger).ErrorContext": 2,
	"(*log/slog.Logger).Log":          3,
	"(*log/slog.Logger).With":         0,
	"log/slog.Debug":                  1,
	"log/slog.Info":                   1,
	"log/slog.Warn":                   1,
	"log/slog.Error":                  1,
	"log/slog.DebugContext":           2,
	"log/slog.InfoContext":            2,
	"log/slog.WarnContext":            2,
	"log/slog.ErrorContext":           2,
	"log/slog.Log":                    3,
	"log/slog.With":                   0,
}

// attrCtors are slog attribute constructors whose first argument is a
// key.
var attrCtors = map[string]bool{
	"log/slog.String":   true,
	"log/slog.Int":      true,
	"log/slog.Int64":    true,
	"log/slog.Uint64":   true,
	"log/slog.Float64":  true,
	"log/slog.Bool":     true,
	"log/slog.Duration": true,
	"log/slog.Time":     true,
	"log/slog.Any":      true,
	"log/slog.Group":    true,
}

// metricMethods maps metric-creating method names on Recorder/Registry
// receivers to the index of the first label key/value argument.
var metricMethods = map[string]int{
	"Counter":   1,
	"Gauge":     1,
	"Histogram": 2, // (name, bounds, labels...)
	"SetHelp":   -1,
}

// lockMethods mirrors lockheld's acquisition table.
var lockMethods = map[string]string{
	"(*sync.Mutex).Lock":    "Unlock",
	"(*sync.RWMutex).Lock":  "Unlock",
	"(*sync.RWMutex).RLock": "RUnlock",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && isMetricFactory(pass, fd) {
				// A forwarding wrapper (Recorder.Counter calling
				// Registry.Counter) doesn't originate names; its callers
				// are checked at their own sites.
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockedLogging(pass, n)
				}
			case *ast.FuncLit:
				checkLockedLogging(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall classifies one call: slog entry point, attr constructor, or
// metric creation.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := cfg.Callee(pass.Info, call)
	if fn == nil {
		return
	}
	full := fn.FullName()
	if start, ok := logMethods[full]; ok {
		checkLogArgs(pass, call, start)
		return
	}
	if attrCtors[full] && len(call.Args) > 0 {
		checkKey(pass, call.Args[0], "slog key")
		return
	}
	if labelStart, ok := metricMethods[fn.Name()]; ok && receiverIsMetricSource(fn) {
		checkMetricCall(pass, call, labelStart)
	}
}

// checkLogArgs walks the variadic tail of a slog call. Arguments
// alternate key, value; a slog.Attr value occupies one slot on its own
// (its key was checked at the constructor).
func checkLogArgs(pass *analysis.Pass, call *ast.CallExpr, start int) {
	for i := start; i < len(call.Args); {
		arg := call.Args[i]
		if isAttr(pass.TypeOf(arg)) {
			i++
			continue
		}
		checkKey(pass, arg, "slog key")
		i += 2
	}
}

// checkKey requires expr to be a compile-time constant snake_case
// string.
func checkKey(pass *analysis.Pass, expr ast.Expr, what string) {
	key, isConst := constString(pass, expr)
	if !isConst {
		pass.Reportf(expr.Pos(), "%s %s is not a compile-time constant — dynamic keys make logs "+
			"unqueryable; use a constant key and put the variable part in the value",
			what, types.ExprString(expr))
		return
	}
	if !snakeCase.MatchString(key) {
		pass.Reportf(expr.Pos(), "%s %q is not snake_case — the repo's log schema is lower_snake "+
			"(see internal/obs); rename the key", what, key)
	}
}

// checkMetricCall validates the metric name (first argument) and any
// label keys at even offsets in the label tail.
func checkMetricCall(pass *analysis.Pass, call *ast.CallExpr, labelStart int) {
	if len(call.Args) == 0 {
		return
	}
	name, isConst := constString(pass, call.Args[0])
	switch {
	case !isConst:
		pass.Reportf(call.Args[0].Pos(), "metric name %s is not a compile-time constant — dynamic "+
			"metric names explode the registry; encode the variable part as a label",
			types.ExprString(call.Args[0]))
	case !metricName.MatchString(name):
		pass.Reportf(call.Args[0].Pos(), "metric name %q does not match the asiccloud_snake_case "+
			"convention every exported metric follows", name)
	}
	if labelStart < 0 {
		return
	}
	for i := labelStart; i < len(call.Args); i += 2 {
		checkKey(pass, call.Args[i], "metric label key")
	}
}

// isMetricFactory reports whether fd declares one of the metric-source
// methods itself (Counter/Gauge/Histogram/SetHelp on Recorder or
// Registry), whose bodies forward caller-supplied names.
func isMetricFactory(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if _, ok := metricMethods[fd.Name.Name]; !ok {
		return false
	}
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	return ok && receiverIsMetricSource(fn)
}

// receiverIsMetricSource reports whether fn is a method on a type named
// Recorder or Registry — the repo's two metric factories — so that
// unrelated Counter/Gauge methods stay out of scope.
func receiverIsMetricSource(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "Recorder", "Registry":
		return true
	}
	return false
}

// constString resolves expr to its compile-time string value.
func constString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[ast.Unparen(expr)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isAttr reports whether t is log/slog.Attr.
func isAttr(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Attr" && obj.Pkg() != nil && obj.Pkg().Path() == "log/slog"
}

// checkLockedLogging walks fn's CFG from each Lock acquisition and
// flags the first slog call on any path before the matching Unlock —
// the same forward walk lockheld uses for blocking operations.
func checkLockedLogging(pass *analysis.Pass, fn ast.Node) {
	g := pass.CFG(fn)
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			recv, release, ok := lockAcquisition(pass, node)
			if !ok {
				continue
			}
			scanHeld(pass, g, b, i+1, recv, release)
		}
	}
}

func lockAcquisition(pass *analysis.Pass, node ast.Node) (recv, release string, ok bool) {
	es, ok := node.(*ast.ExprStmt)
	if !ok {
		return "", "", false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn := cfg.Callee(pass.Info, call)
	if fn == nil {
		return "", "", false
	}
	release, ok = lockMethods[fn.FullName()]
	if !ok {
		return "", "", false
	}
	return types.ExprString(sel.X), release, true
}

func unlockMatches(stmt ast.Stmt, recv, release string) bool {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != release {
		return false
	}
	return types.ExprString(sel.X) == recv
}

func scanHeld(pass *analysis.Pass, g *cfg.Graph, start *cfg.Block, startIdx int, recv, release string) {
	type item struct {
		b   *cfg.Block
		idx int
	}
	visited := map[*cfg.Block]bool{}
	work := []item{{start, startIdx}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		released := false
		for _, node := range it.b.Nodes[it.idx:] {
			if stmt, ok := node.(ast.Stmt); ok {
				if _, isDefer := stmt.(*ast.DeferStmt); !isDefer && unlockMatches(stmt, recv, release) {
					released = true
					break
				}
			}
			if name, pos, found := logUnder(pass, node); found {
				pass.Reportf(pos, "%s call while %s is held — handlers format and write I/O; "+
					"release the lock first, or //lint:ignore obskeys with the reason the handler is in-memory",
					name, recv)
				return
			}
		}
		if released {
			continue
		}
		for _, succ := range it.b.Succs {
			if !visited[succ] {
				visited[succ] = true
				work = append(work, item{succ, 0})
			}
		}
	}
}

// logUnder finds the first slog entry-point call inside one CFG node.
func logUnder(pass *analysis.Pass, node ast.Node) (name string, pos token.Pos, found bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := cfg.Callee(pass.Info, call)
		if fn == nil {
			return true
		}
		if _, ok := logMethods[fn.FullName()]; ok {
			name, pos, found = "slog."+fn.Name(), call.Pos(), true
			return false
		}
		return true
	})
	return name, pos, found
}
