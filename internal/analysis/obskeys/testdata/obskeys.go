// Package fixture exercises obskeys: dynamic and wrongly-cased slog
// keys, metric names off the asiccloud_ convention, bad label keys,
// and logging under a held mutex.
package fixture

import (
	"log/slog"
	"sync"
)

type Counter struct{ n int64 }

func (c *Counter) Inc() { c.n++ }

// Recorder mimics the obs metric factory surface.
type Recorder struct {
	mu    sync.Mutex
	state int
}

func (r *Recorder) Counter(name string, labels ...string) *Counter { return &Counter{} }
func (r *Recorder) Gauge(name string, labels ...string) *Counter   { return &Counter{} }
func (r *Recorder) Histogram(name string, bounds []float64, labels ...string) *Counter {
	return &Counter{}
}
func (r *Recorder) SetHelp(name, help string) {}

const goodKey = "configs_per_sec"

// logKeys mixes good and bad slog keys.
func logKeys(log *slog.Logger, job string, n int) {
	log.Info("sweep done", "configs", n, goodKey, n)       // clean: constant snake_case keys
	log.Info("sweep done", job, n)                         // flagged: non-constant key
	log.Warn("sweep slow", "chunkSize", n)                 // flagged: camelCase key
	log.Error("sweep failed", slog.Int("exitCode", n))     // flagged: camelCase attr key
	log.Info("ok", slog.String("trace_id", job), "tdp", n) // clean: attr slot then pair
	slog.Info("boot", "gitSha", job)                       // flagged: camelCase via package-level call
}

// metricNames mixes good and bad metric identifiers.
func metricNames(r *Recorder, kind string) {
	r.Counter("asiccloud_sweeps_total", "phase", "fold").Inc()   // clean
	r.Counter("sweepCount").Inc()                                // flagged: off-convention name
	r.Gauge("asiccloud_" + kind).Inc()                           // flagged: non-constant name
	r.Histogram("asiccloud_chunk_seconds", nil, "chunkId", kind) // flagged: camelCase label key
	r.SetHelp("asiccloud_sweeps_total", "completed sweeps")      // clean
	r.SetHelp("sweep.count", "dotted name")                      // flagged: off-convention name
}

// lockedLog logs while holding the mutex.
func lockedLog(r *Recorder, log *slog.Logger) {
	r.mu.Lock()
	r.state++
	log.Info("state bumped", "state", r.state) // flagged: slog under r.mu
	r.mu.Unlock()
}

// unlockedLog releases first: clean.
func unlockedLog(r *Recorder, log *slog.Logger) {
	r.mu.Lock()
	r.state++
	v := r.state
	r.mu.Unlock()
	log.Info("state bumped", "state", v)
}

// justifiedLog documents an in-memory handler.
func justifiedLog(r *Recorder, log *slog.Logger) {
	r.mu.Lock()
	log.Info("buffered", "state", r.state) //lint:ignore obskeys handler writes to an in-memory ring, no I/O under the lock
	r.mu.Unlock()
}
