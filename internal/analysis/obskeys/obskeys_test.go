package obskeys_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/obskeys"
)

func TestObskeys(t *testing.T) {
	atest.Run(t, obskeys.Analyzer, "obskeys", atest.Config{})
}
