// Package foldorder flags fan-in ordering bugs: results collected from
// multiple goroutines or drained from channels must pass through a
// canonical sort (or an order-restoring merger) before they are
// marshaled or folded into canonical bytes.
//
// The sweep engine is embarrassingly parallel — workers evaluate design
// points concurrently and a collector drains their results — so every
// result slice starts life in arrival order, which varies run to run.
// The repository's byte-identity contract (chunked and distributed
// sweeps diff clean against single-process runs) therefore hinges on
// one discipline: sort before you emit. This analyzer checks it.
//
// Sources: a value received from a channel (`<-ch`, `range ch`, a
// select comm clause) carries an arrival-order marker — harmless for a
// single handoff, reportable once accumulated into a sequence or float
// fold; a variable the body of a `go func(){...}()` literal assigns or
// appends to is tainted outright (concurrent appends interleave
// nondeterministically even under a mutex). Sinks and sanitizers are
// shared with detflow: JSON/CSV emission and //asic:canonical
// functions; sort.*/slices.Sort* restore a canonical order.
// ResultMerger needs no special case: its Finish sorts internally, and
// its accumulated state lives on the receiver, which the engine
// deliberately does not track — the merger is the sanctioned path.
//
// Suppress a deliberate exception with //lint:ignore foldorder and a
// justification (e.g. a progress stream whose order is explicitly
// best-effort and excluded from the byte-identity contract).
package foldorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/taint"
)

// Analyzer is the foldorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "foldorder",
	Doc: "flags results collected from goroutines or channels that reach JSON/CSV emission or " +
		"//asic:canonical functions without a canonical sort",
	Run: run,
}

// kindChanElem marks a value received from a channel (arrival order —
// a marker until accumulated); kindFoldOrder is its promoted form;
// kindGoAppend taints accumulators mutated from spawned goroutines.
const (
	kindChanElem  taint.Kind = "chan-elem"
	kindFoldOrder taint.Kind = "fold-order"
	kindGoAppend  taint.Kind = "goroutine-order"
)

const canonicalDirective = "asic:canonical"

var spec = &taint.Spec{
	Name:     "foldorder",
	MaxDepth: 4,
	IsMarker: func(k taint.Kind) bool { return k == kindChanElem },
	SourceExpr: func(c *taint.Ctx, e ast.Expr) (taint.Source, bool) {
		u, ok := e.(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			return taint.Source{}, false
		}
		return taint.Source{
			Pos:  u.Pos(),
			Kind: kindChanElem,
			Desc: "channel arrival order (<-" + types.ExprString(u.X) + ")",
		}, true
	},
	RangeSource: func(c *taint.Ctx, rng *ast.RangeStmt) (taint.Source, bool) {
		tv, ok := c.Info.Types[rng.X]
		if !ok || tv.Type == nil {
			return taint.Source{}, false
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return taint.Source{}, false
		}
		return taint.Source{
			Pos:  rng.X.Pos(),
			Kind: kindChanElem,
			Desc: "channel arrival order (range over " + types.ExprString(rng.X) + ")",
		}, true
	},
	GoCapture: func(c *taint.Ctx, g *ast.GoStmt, obj types.Object) (taint.Source, bool) {
		return taint.Source{
			Pos:  g.Pos(),
			Kind: kindGoAppend,
			Desc: "goroutine interleaving (" + obj.Name() + " is appended to from a spawned goroutine)",
		}, true
	},
	Accum: func(c *taint.Ctx, pos token.Pos, target types.Type, elem taint.Taint) (taint.Source, bool) {
		if taint.CommutativeAccum(target) {
			return taint.Source{}, false
		}
		return taint.Source{
			Pos:  pos,
			Kind: kindFoldOrder,
			Desc: "sequence accumulated in channel arrival order",
		}, true
	},
	Sanitize: func(c *taint.Ctx, call *ast.CallExpr) ([]int, func(taint.Kind) bool, bool, bool) {
		if !taint.SortSanitizer(c, call) {
			return nil, nil, false, false
		}
		kills := func(k taint.Kind) bool {
			return k == kindChanElem || k == kindFoldOrder || k == kindGoAppend
		}
		return []int{0}, kills, true, true
	},
	SinkCall: func(c *taint.Ctx, call *ast.CallExpr) (taint.Sink, bool) {
		if sk, ok := taint.EmitterSink(c, call); ok {
			return sk, true
		}
		return taint.CanonicalWriteSink(c, call, canonicalDirective)
	},
	ReturnSink: func(c *taint.Ctx) (taint.Sink, bool) {
		return taint.CanonicalReturnSink(c, canonicalDirective)
	},
}

func run(pass *analysis.Pass) error {
	taint.Run(pass, spec, func(f taint.Finding) {
		via := ""
		if f.Via != "" {
			via = fmt.Sprintf(" (via %s)", f.Via)
		}
		pass.Reportf(f.Pos, "%s reaches %s%s — restore a canonical order (sort, or fold "+
			"through ResultMerger) before emitting, or //lint:ignore foldorder with the "+
			"determinism argument", f.Source.Desc, f.Sink, via)
	})
	return nil
}
