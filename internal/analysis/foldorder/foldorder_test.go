package foldorder_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/foldorder"
)

func TestFoldorder(t *testing.T) {
	atest.Run(t, foldorder.Analyzer, "foldorder", atest.Config{})
}
