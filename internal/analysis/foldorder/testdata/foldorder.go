// Fixture for the foldorder analyzer: fan-in results reaching canonical
// outputs without a canonical sort.
package fixture

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

type result struct {
	ID  int
	TCO float64
}

// --- positives ---------------------------------------------------------

// drainUnsorted collects worker results in arrival order and marshals.
func drainUnsorted(ch <-chan result, n int) ([]byte, error) {
	var out []result
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	return json.Marshal(out) // want: fold-order reaches json.Marshal
}

// rangeDrain drains by ranging over the channel.
func rangeDrain(ch chan result) ([]byte, error) {
	var out []result
	for r := range ch {
		out = append(out, r)
	}
	return json.Marshal(out) // want: fold-order reaches json.Marshal
}

// goAppend appends from spawned goroutines: interleaving order, even
// under a lock, is nondeterministic.
func goAppend(points []float64) ([]byte, error) {
	var mu sync.Mutex
	var out []float64
	var wg sync.WaitGroup
	for _, p := range points {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			out = append(out, p*2)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return json.Marshal(out) // want: goroutine-order reaches json.Marshal
}

// selectDrain receives through a select comm clause.
func selectDrain(a, b <-chan result, n int) ([]byte, error) {
	var out []result
	for i := 0; i < n; i++ {
		select {
		case r := <-a:
			out = append(out, r)
		case r := <-b:
			out = append(out, r)
		}
	}
	return json.Marshal(out) // want: fold-order reaches json.Marshal
}

// floatFold folds arriving TCO values into a float64 total: IEEE
// addition is order-sensitive, so arrival order leaks into the bytes.
func floatFold(ch <-chan result, n int, w io.Writer) error {
	total := 0.0
	for i := 0; i < n; i++ {
		r := <-ch
		total += r.TCO
	}
	return json.NewEncoder(w).Encode(total) // want: fold-order reaches Encode
}

// emitFrontier is a canonical emitter: a bare received value (marker,
// no accumulation) already violates its strict contract.
//
//asic:canonical
func emitFrontier(w io.Writer, ch <-chan result) {
	r := <-ch
	fmt.Fprintf(w, "%d,%g\n", r.ID, r.TCO) // want: chan-elem reaches canonical write (strict, twice)
}

// throughCollector reaches the sink through a module-local helper.
func throughCollector(ch chan result, w io.Writer) error {
	return json.NewEncoder(w).Encode(collect(ch)) // want: fold-order reaches Encode via collect
}

func collect(ch chan result) []result {
	var out []result
	for r := range ch {
		out = append(out, r)
	}
	return out
}

// --- negatives ---------------------------------------------------------

// drainSorted is the sanctioned idiom: drain, sort canonically, emit.
func drainSorted(ch <-chan result, n int) ([]byte, error) {
	var out []result
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return json.Marshal(out)
}

// singleHandoff marshals one value from a one-shot channel: nothing is
// accumulated, so arrival order cannot matter.
func singleHandoff(done <-chan result) ([]byte, error) {
	r := <-done
	return json.Marshal(r)
}

// countDrain folds arrivals into an int: integer addition commutes.
func countDrain(ch <-chan result, n int) ([]byte, error) {
	seen := 0
	for i := 0; i < n; i++ {
		<-ch
		seen++
	}
	return json.Marshal(seen)
}

// indexedScatter writes results into pre-assigned slots: each goroutine
// owns its index, so the final content is deterministic. The capture
// hook still taints out conservatively — the analyzer cannot prove slot
// ownership — but the sort.Float64s restores a canonical order, which
// is the discipline the sweep collector follows too.
func indexedScatter(points []float64) ([]byte, error) {
	out := make([]float64, len(points))
	var wg sync.WaitGroup
	for i, p := range points {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = p * 2
		}()
	}
	wg.Wait()
	sort.Float64s(out)
	return json.Marshal(out)
}

// collectSorted sorts the collector's result before emitting.
func collectSorted(ch chan result, w io.Writer) error {
	rs := collect(ch)
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
	return json.NewEncoder(w).Encode(rs)
}
