// Package cfg builds intraprocedural control-flow graphs and a
// lightweight call graph over the already-parsed (and, for the call
// graph, type-checked) ASTs of internal/analysis. It is the dataflow
// substrate of the asiclint suite: syntax-only per-function CFGs give
// analyzers a notion of "every path from A reaches B before C"
// (lockheld), back edges identify loops precisely where textual scans
// cannot (ctxflow), and the call graph lets a spawn-site check follow a
// `go s.worker()` into the worker's body (goroleak).
//
// The CFG is deliberately modest — the shape of golang.org/x/tools/go/cfg
// rebuilt on the standard library. Each function body becomes a Graph of
// basic Blocks; a Block holds statements (and loop/branch condition
// expressions) in execution order and edges to its successors. Composite
// statements are decomposed: an *ast.IfStmt contributes its init and
// cond to the current block and fans out to the branch blocks, so the
// composite node itself never appears in Nodes. Function literals are
// opaque expressions — their bodies get their own Graphs via Build, and
// analyzers scanning Nodes must skip *ast.FuncLit subtrees.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body. Blocks[0] is
// the entry block. Blocks unreachable from the entry (code after an
// unconditional return, bodies of dead labels) stay in the slice with no
// predecessors, so analyzers that walk forward from reachable program
// points simply never visit them.
type Graph struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit the graph was built from.
	Fn ast.Node
	// Blocks lists every basic block in creation order; entry first.
	Blocks []*Block

	// loops maps each for/range statement to the blocks that make up its
	// head, body and post sections (not the after-loop block).
	loops map[ast.Stmt][]*Block
}

// A Block is a run of nodes executed in order with no internal control
// transfer. Nodes holds statements plus decomposed control expressions
// (an if/for/switch condition, a range operand); composite statements
// themselves do not appear.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the block's statements/expressions in execution order.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
}

// Entry returns the function's entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// LoopBlocks returns the blocks belonging to a for or range statement in
// the graph: the condition/head, the body and the post statement, but
// not the block control falls to after the loop exits. The second result
// is false when s is not a loop statement of this graph.
func (g *Graph) LoopBlocks(s ast.Stmt) ([]*Block, bool) {
	b, ok := g.loops[s]
	return b, ok
}

// Loops returns every for/range statement of the function (not of nested
// function literals) in source order.
func (g *Graph) Loops() []ast.Stmt {
	var out []ast.Stmt
	for s := range g.loops {
		out = append(out, s)
	}
	// Deterministic order for tests and diagnostics.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Pos() < out[j-1].Pos(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Build constructs the CFG for fn, which must be an *ast.FuncDecl or
// *ast.FuncLit. A FuncDecl without a body (declared in assembly) yields
// a graph with a single empty block.
func Build(fn ast.Node) *Graph {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	default:
		panic("cfg: Build requires *ast.FuncDecl or *ast.FuncLit")
	}
	g := &Graph{Fn: fn, loops: make(map[ast.Stmt][]*Block)}
	b := &builder{g: g}
	b.cur = b.newBlock()
	if body != nil {
		b.stmts(body.List)
	}
	return g
}

// target is one entry of the break/continue resolution stacks.
type target struct {
	label string
	block *Block
}

type builder struct {
	g   *Graph
	cur *Block

	breakables   []target // for, range, switch, select
	continuables []target // for, range
	labels       map[string]*Block

	// pendingLabel carries the label of a LabeledStmt into the loop or
	// switch statement it labels, so `break L`/`continue L` resolve.
	pendingLabel string

	// fallthroughTo is the body block of the next case clause while
	// building a switch clause.
	fallthroughTo *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds the edge from -> to.
func (b *builder) jump(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// terminate parks the builder on a fresh unreachable block after a
// return/break/continue/goto, so trailing dead statements attach
// somewhere without creating bogus edges.
func (b *builder) terminate() {
	b.cur = b.newBlock()
}

func (b *builder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findBreak resolves a break target by label ("" = innermost).
func findTarget(stack []target, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		cond := b.cur
		cond.Nodes = append(cond.Nodes, s.Cond)
		thenB := b.newBlock()
		b.jump(cond, thenB)
		after := b.newBlock()
		b.cur = thenB
		b.stmts(s.Body.List)
		b.jump(b.cur, after)
		if s.Else != nil {
			elseB := b.newBlock()
			b.jump(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.jump(b.cur, after)
		} else {
			b.jump(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		loopStart := len(b.g.Blocks)
		head := b.newBlock()
		b.jump(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		b.jump(head, body)
		// The after block is created last so the loop's block range
		// [loopStart, after) captures head, body and post.
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			b.cur = post
			b.stmt(s.Post)
			b.jump(post, head)
			contTo = post
		}
		b.cur = body
		b.pushLoop(label, contTo)
		b.stmts(s.Body.List)
		after := b.popLoop(label)
		b.jump(b.cur, contTo)
		if s.Cond != nil {
			b.jump(head, after)
		}
		b.g.loops[s] = b.g.Blocks[loopStart:after.Index:after.Index]
		b.cur = after

	case *ast.RangeStmt:
		loopStart := len(b.g.Blocks)
		head := b.newBlock()
		b.jump(b.cur, head)
		head.Nodes = append(head.Nodes, s.X)
		body := b.newBlock()
		b.jump(head, body)
		b.cur = body
		b.pushLoop(label, head)
		b.stmts(s.Body.List)
		after := b.popLoop(label)
		b.jump(b.cur, head)
		b.jump(head, after)
		b.g.loops[s] = b.g.Blocks[loopStart:after.Index:after.Index]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchClauses(label, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchClauses(label, s.Body.List, nil)

	case *ast.SelectStmt:
		b.selectClauses(label, s.Body.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			lbl := ""
			if s.Label != nil {
				lbl = s.Label.Name
			}
			if t := findTarget(b.breakables, lbl); t != nil {
				b.jump(b.cur, t)
			}
			b.terminate()
		case token.CONTINUE:
			lbl := ""
			if s.Label != nil {
				lbl = s.Label.Name
			}
			if t := findTarget(b.continuables, lbl); t != nil {
				b.jump(b.cur, t)
			}
			b.terminate()
		case token.GOTO:
			b.jump(b.cur, b.labelBlock(s.Label.Name))
			b.terminate()
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.jump(b.cur, b.fallthroughTo)
			}
			b.terminate()
		}

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.terminate()

	default:
		// Plain statements: assignments, expressions, sends, go/defer,
		// declarations, inc/dec, empty.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *builder) pushLoop(label string, cont *Block) {
	// The after block is allocated at pop time so that body blocks get
	// smaller indices; stash a placeholder via closure on pop instead.
	b.breakables = append(b.breakables, target{label: label, block: nil})
	b.continuables = append(b.continuables, target{label: label, block: cont})
	// break edges discovered before the after block exists are resolved
	// through a proxy: allocate the after block eagerly is simpler, but
	// would land it inside the loop's index range. Instead break targets
	// a dedicated join block created now but appended at pop.
	b.breakables[len(b.breakables)-1].block = b.deferredBlock()
}

// deferredBlock creates a block that is appended to Graph.Blocks later
// (at popLoop), keeping loop block ranges contiguous.
func (b *builder) deferredBlock() *Block {
	return &Block{Index: -1}
}

func (b *builder) popLoop(label string) *Block {
	after := b.breakables[len(b.breakables)-1].block
	b.breakables = b.breakables[:len(b.breakables)-1]
	b.continuables = b.continuables[:len(b.continuables)-1]
	after.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, after)
	return after
}

// switchClauses builds the clause blocks of a switch/type-switch.
func (b *builder) switchClauses(label string, clauses []ast.Stmt, _ *Block) {
	entry := b.cur
	after := b.deferredBlock()
	b.breakables = append(b.breakables, target{label: label, block: after})

	// Pre-create the body blocks so fallthrough can edge forward.
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, cs := range clauses {
		clause := cs.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		for _, e := range clause.List {
			bodies[i].Nodes = append(bodies[i].Nodes, e)
		}
		b.jump(entry, bodies[i])
		b.cur = bodies[i]
		if i+1 < len(bodies) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmts(clause.Body)
		b.fallthroughTo = nil
		b.jump(b.cur, after)
	}
	b.breakables = b.breakables[:len(b.breakables)-1]
	after.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, after)
	if !hasDefault {
		b.jump(entry, after)
	}
	b.cur = after
}

// selectClauses builds the clause blocks of a select.
func (b *builder) selectClauses(label string, clauses []ast.Stmt) {
	entry := b.cur
	after := b.deferredBlock()
	b.breakables = append(b.breakables, target{label: label, block: after})
	for _, cs := range clauses {
		clause := cs.(*ast.CommClause)
		body := b.newBlock()
		b.jump(entry, body)
		b.cur = body
		if clause.Comm != nil {
			b.stmt(clause.Comm)
		}
		b.stmts(clause.Body)
		b.jump(b.cur, after)
	}
	b.breakables = b.breakables[:len(b.breakables)-1]
	after.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, after)
	if len(clauses) == 0 {
		b.jump(entry, after)
	}
	b.cur = after
}
