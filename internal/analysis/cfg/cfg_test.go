package cfg_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"asiccloud/internal/analysis/cfg"
)

// buildFirst parses src and builds the CFG of the first function decl.
func buildFirst(t *testing.T, src string) (*cfg.Graph, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return cfg.Build(fd), fd
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// reachable walks the graph from the entry block.
func reachable(g *cfg.Graph) map[*cfg.Block]bool {
	seen := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block)
	walk = func(b *cfg.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry())
	return seen
}

// nodesText renders every node of the given blocks, for containment
// assertions that do not depend on block layout.
func nodesText(blocks []*cfg.Block) string {
	var sb strings.Builder
	for _, b := range blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					sb.WriteString(id.Name)
					sb.WriteString(" ")
				}
				return true
			})
		}
	}
	return sb.String()
}

func TestStraightLine(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f() {
	a := 1
	b := a + 1
	_ = b
}`)
	if len(g.Entry().Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3", len(g.Entry().Nodes))
	}
	if len(g.Entry().Succs) != 0 {
		t.Errorf("straight-line entry should have no successors, got %d", len(g.Entry().Succs))
	}
}

func TestIfElseJoins(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(x int) int {
	if x > 0 {
		x++
	} else {
		x--
	}
	return x
}`)
	entry := g.Entry()
	if len(entry.Succs) != 2 {
		t.Fatalf("if condition should branch two ways, got %d", len(entry.Succs))
	}
	// Both branches must reach a common join holding the return.
	join := entry.Succs[0].Succs
	if len(join) != 1 || len(entry.Succs[1].Succs) != 1 || join[0] != entry.Succs[1].Succs[0] {
		t.Fatalf("then/else do not join in one block")
	}
	if len(join[0].Nodes) != 1 {
		t.Errorf("join block should hold the return, has %d nodes", len(join[0].Nodes))
	}
}

func TestForLoopBackEdgeAndMembership(t *testing.T) {
	g, fd := buildFirst(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	blocks, ok := g.LoopBlocks(loops[0])
	if !ok || len(blocks) < 2 {
		t.Fatalf("LoopBlocks: ok=%v blocks=%d", ok, len(blocks))
	}
	txt := nodesText(blocks)
	if !strings.Contains(txt, "s") || !strings.Contains(txt, "i") {
		t.Errorf("loop blocks missing body/cond idents: %q", txt)
	}
	// The statement after the loop must not be inside the loop.
	if strings.Contains(txt, "return") {
		t.Errorf("loop membership leaked past the loop: %q", txt)
	}
	// There must be a back edge: some loop block's successor is an
	// earlier loop block.
	back := false
	for _, b := range blocks {
		for _, s := range b.Succs {
			if s.Index <= b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Errorf("no back edge found in loop of %s", fd.Name.Name)
	}
}

func TestInfiniteLoopHasNoExitFromHead(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f() {
	for {
		g()
	}
}
func g() {}`)
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	blocks, _ := g.LoopBlocks(loops[0])
	head := blocks[0]
	for _, s := range head.Succs {
		inLoop := false
		for _, b := range blocks {
			if s == b {
				inLoop = true
			}
		}
		if !inLoop {
			t.Errorf("for{} head must only enter the body, found exit edge to block %d", s.Index)
		}
	}
}

func TestBreakLeavesLoop(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(n int) {
	for {
		if n > 0 {
			break
		}
		n++
	}
	n = 0
}`)
	loops := g.Loops()
	blocks, _ := g.LoopBlocks(loops[0])
	inLoop := make(map[*cfg.Block]bool)
	for _, b := range blocks {
		inLoop[b] = true
	}
	// Some block in the loop must edge out of the loop (the break).
	exits := 0
	for _, b := range blocks {
		for _, s := range b.Succs {
			if !inLoop[s] {
				exits++
			}
		}
	}
	if exits == 0 {
		t.Error("break produced no exit edge from a for{} loop")
	}
}

func TestRangeLoop(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`)
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	if _, ok := loops[0].(*ast.RangeStmt); !ok {
		t.Errorf("loop statement is %T, want *ast.RangeStmt", loops[0])
	}
	blocks, _ := g.LoopBlocks(loops[0])
	if !strings.Contains(nodesText(blocks), "xs") {
		t.Errorf("range operand not recorded in loop head: %q", nodesText(blocks))
	}
}

func TestSwitchFanOutAndFallthrough(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(x int) int {
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20
	default:
		x = 30
	}
	return x
}`)
	entry := g.Entry()
	// Entry fans out to the three clause bodies; with a default there is
	// no direct edge to the join.
	if len(entry.Succs) != 3 {
		t.Fatalf("switch entry has %d successors, want 3 clauses", len(entry.Succs))
	}
	// The first clause falls through to the second: clause 1's block
	// lists clause 2's block among its successors.
	c1, c2 := entry.Succs[0], entry.Succs[1]
	found := false
	for _, s := range c1.Succs {
		if s == c2 {
			found = true
		}
	}
	if !found {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
}

func TestSwitchWithoutDefaultCanSkip(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(x int) {
	switch x {
	case 1:
		x = 10
	}
	x = 99
}`)
	entry := g.Entry()
	if len(entry.Succs) != 2 {
		t.Fatalf("switch without default should edge to clause and join, got %d", len(entry.Succs))
	}
}

func TestSelectClauses(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
		return 1
	}
}`)
	entry := g.Entry()
	if len(entry.Succs) != 2 {
		t.Fatalf("select should fan out to 2 clauses, got %d", len(entry.Succs))
	}
	// Each clause starts with its comm statement.
	for i, c := range entry.Succs {
		if len(c.Nodes) == 0 {
			t.Errorf("select clause %d recorded no comm statement", i)
		}
	}
}

func TestReturnTerminatesBlock(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(x int) int {
	if x > 0 {
		return 1
	}
	return 0
}`)
	reach := reachable(g)
	for b := range reach {
		for i, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok && i != len(b.Nodes)-1 {
				t.Errorf("return is not the last node of block %d", b.Index)
			}
		}
		if last := len(b.Nodes) - 1; last >= 0 {
			if _, ok := b.Nodes[last].(*ast.ReturnStmt); ok && len(b.Succs) != 0 {
				t.Errorf("block %d ends in return but has successors", b.Index)
			}
		}
	}
}

func TestGotoAndLabels(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`)
	// The goto must produce a cycle: some reachable block reaches an
	// earlier block.
	cycle := false
	for b := range reachable(g) {
		for _, s := range b.Succs {
			if s.Index <= b.Index {
				cycle = true
			}
		}
	}
	if !cycle {
		t.Error("goto loop produced no cycle in the CFG")
	}
}

func TestLabeledBreak(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(n int) {
outer:
	for {
		for {
			if n > 0 {
				break outer
			}
		}
	}
	n = 0
}`)
	loops := g.Loops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	// The outer loop (source order first) must have an exit edge even
	// though both loops are for{}: the labeled break provides it.
	blocks, _ := g.LoopBlocks(loops[0])
	inLoop := make(map[*cfg.Block]bool)
	for _, b := range blocks {
		inLoop[b] = true
	}
	exits := 0
	for _, b := range blocks {
		for _, s := range b.Succs {
			if !inLoop[s] {
				exits++
			}
		}
	}
	if exits == 0 {
		t.Error("break outer produced no exit edge")
	}
}

func TestFuncLitBodiesAreOpaque(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f() {
	go func() {
		for {
		}
	}()
}`)
	if len(g.Loops()) != 0 {
		t.Errorf("nested func literal's loop leaked into enclosing graph")
	}
	fn := g.Fn.(*ast.FuncDecl)
	var lit *ast.FuncLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})
	lg := cfg.Build(lit)
	if len(lg.Loops()) != 1 {
		t.Errorf("func literal's own graph should contain its loop, got %d", len(lg.Loops()))
	}
}

func TestCallGraph(t *testing.T) {
	src := `package p

type S struct{ q chan int }

func (s *S) worker() {
	for range s.q {
	}
}

func (s *S) start() {
	go s.worker()
}

func helper() {}

func top() {
	helper()
	f := func() { helper() }
	f()
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	cg := cfg.NewCallGraph()
	cg.AddPackage(info, []*ast.File{f})

	lookup := func(name string) *types.Func {
		t.Helper()
		if obj := pkg.Scope().Lookup(name); obj != nil {
			return obj.(*types.Func)
		}
		// Method: find via the S type.
		named := pkg.Scope().Lookup("S").Type().(*types.Named)
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == name {
				return named.Method(i)
			}
		}
		t.Fatalf("object %s not found", name)
		return nil
	}

	start := lookup("start")
	callees := cg.Callees(start)
	if len(callees) != 1 || callees[0].Name() != "worker" {
		t.Fatalf("start's callees = %v, want [worker]", callees)
	}
	if cg.DeclOf(callees[0]) == nil {
		t.Error("worker's declaration not indexed")
	}
	// Calls from nested func literals attribute to the enclosing decl.
	top := lookup("top")
	found := false
	for _, c := range cg.Callees(top) {
		if c.Name() == "helper" {
			found = true
		}
	}
	if !found {
		t.Errorf("top's callees %v missing helper (called from literal too)", cg.Callees(top))
	}
}

func TestDeferInLoopStaysInBody(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		defer cleanup()
	}
	n = 0
}
func cleanup() {}`)
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	blocks, _ := g.LoopBlocks(loops[0])
	// The defer executes (registers) once per iteration, so its node
	// must live inside the loop body, not be hoisted to function exit.
	if !strings.Contains(nodesText(blocks), "cleanup") {
		t.Fatalf("defer statement not recorded in loop body: %q", nodesText(blocks))
	}
	// A defer is not a terminator: the body must still carry the back
	// edge, i.e. the block holding the defer has a successor.
	for _, b := range blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok && len(b.Succs) == 0 {
				t.Errorf("block %d ends at a defer with no successors", b.Index)
			}
		}
	}
}

func TestLabeledContinueReentersOuterLoop(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue outer
			}
		}
	}
}`)
	loops := g.Loops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	outerBlocks, _ := g.LoopBlocks(loops[0])
	innerBlocks, _ := g.LoopBlocks(loops[1])
	inOuter := make(map[*cfg.Block]bool)
	for _, b := range outerBlocks {
		inOuter[b] = true
	}
	inInner := make(map[*cfg.Block]bool)
	for _, b := range innerBlocks {
		inInner[b] = true
	}
	// continue outer jumps from inside the inner loop to a block that
	// belongs to the outer loop but not the inner one (its post/head).
	found := false
	for _, b := range innerBlocks {
		for _, s := range b.Succs {
			if inOuter[s] && !inInner[s] {
				found = true
			}
		}
	}
	if !found {
		t.Error("continue outer produced no edge from the inner loop back into the outer loop")
	}
}

func TestSelectInsideForLoopsAndExits(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(c chan int, done chan struct{}) int {
	s := 0
	for {
		select {
		case v := <-c:
			s += v
		case <-done:
			return s
		}
	}
}`)
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	blocks, _ := g.LoopBlocks(loops[0])
	inLoop := make(map[*cfg.Block]bool)
	for _, b := range blocks {
		inLoop[b] = true
	}
	// One select clause accumulates and loops; the return clause must
	// leave the loop even though the for{} itself has no condition.
	backEdges, exits := 0, 0
	for _, b := range blocks {
		for _, s := range b.Succs {
			if s == blocks[0] {
				backEdges++
			}
			if !inLoop[s] {
				exits++
			}
		}
	}
	if backEdges == 0 {
		t.Error("accumulating select clause produced no back edge to the loop head")
	}
	// The return terminates its block: it exits the function, not the
	// loop, so it must appear as a reachable block with no successors.
	terminated := false
	for b := range reachable(g) {
		if len(b.Nodes) > 0 {
			if _, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt); ok && len(b.Succs) == 0 {
				terminated = true
			}
		}
	}
	if !terminated {
		t.Error("return inside select clause did not terminate its block")
	}
	_ = exits
}

func TestForwardGotoSkipsStatements(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(n int) int {
	if n > 0 {
		goto done
	}
	n = -n
done:
	return n
}`)
	reach := reachable(g)
	// Locate the labeled return block. The goto itself is not a node —
	// it only contributes an edge — so the test checks the shape: both
	// if-branches reach the return, and the goto branch does so without
	// passing through the skipped negation assignment.
	var returnBlock *cfg.Block
	for b := range reach {
		if len(b.Nodes) > 0 {
			if _, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt); ok {
				returnBlock = b
			}
		}
	}
	if returnBlock == nil {
		t.Fatal("could not locate the labeled return block")
	}
	entry := g.Entry()
	if len(entry.Succs) != 2 {
		t.Fatalf("if around the goto should branch two ways, got %d", len(entry.Succs))
	}
	hasAssign := func(b *cfg.Block) bool {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok {
				return true
			}
		}
		return false
	}
	reaches := func(from *cfg.Block) bool {
		seen := map[*cfg.Block]bool{}
		var walk func(b *cfg.Block) bool
		walk = func(b *cfg.Block) bool {
			if b == returnBlock {
				return true
			}
			if seen[b] {
				return false
			}
			seen[b] = true
			for _, s := range b.Succs {
				if walk(s) {
					return true
				}
			}
			return false
		}
		return walk(from)
	}
	directGoto := false
	for _, s := range entry.Succs {
		if !reaches(s) {
			t.Errorf("if-branch block %d never reaches the labeled return", s.Index)
		}
		// The goto branch holds no statements of its own (the goto is
		// edge-only) and must jump straight to the return block.
		if !hasAssign(s) {
			for _, ss := range s.Succs {
				if ss == returnBlock {
					directGoto = true
				}
			}
		}
	}
	if !directGoto {
		t.Error("goto done does not edge directly to the labeled return block")
	}
}
