package cfg

import (
	"go/ast"
	"go/types"
	"sort"
)

// A CallGraph is a lightweight, module-local call graph: for every
// function or method declared in the packages added to it, the set of
// named functions its body calls (including calls made from nested
// function literals, which are attributed to the enclosing declaration).
// It is name-resolution only — no virtual dispatch: a call through an
// interface method edge goes to the interface method object, and calls
// through function values go nowhere. That is exactly enough for the
// asiclint analyzers, which use the graph to follow `go s.worker()`
// into a concrete method body, not to prove completeness.
type CallGraph struct {
	decls map[*types.Func]*ast.FuncDecl
	calls map[*types.Func][]*types.Func
	infos map[*types.Func]*types.Info
}

// NewCallGraph returns an empty call graph.
func NewCallGraph() *CallGraph {
	return &CallGraph{
		decls: make(map[*types.Func]*ast.FuncDecl),
		calls: make(map[*types.Func][]*types.Func),
		infos: make(map[*types.Func]*types.Info),
	}
}

// AddPackage indexes one type-checked package's declarations and call
// edges. Call it once per package before querying.
func (cg *CallGraph) AddPackage(info *types.Info, files []*ast.File) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.decls[obj] = fd
			cg.infos[obj] = info
			if fd.Body == nil {
				continue
			}
			seen := make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := Callee(info, call); callee != nil && !seen[callee] {
					seen[callee] = true
					cg.calls[obj] = append(cg.calls[obj], callee)
				}
				return true
			})
			sort.Slice(cg.calls[obj], func(i, j int) bool {
				return cg.calls[obj][i].FullName() < cg.calls[obj][j].FullName()
			})
		}
	}
}

// DeclOf returns the declaration of fn, or nil when fn was not declared
// in any added package (standard library, interface methods).
func (cg *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl {
	return cg.decls[fn]
}

// InfoOf returns the type information of the package that declared fn,
// or nil when fn's package was not added. A cross-package analyzer needs
// this to type expressions inside a callee's body: the Pass only carries
// its own package's Info.
func (cg *CallGraph) InfoOf(fn *types.Func) *types.Info {
	return cg.infos[fn]
}

// Callees returns the named functions fn's body calls, in stable order.
func (cg *CallGraph) Callees(fn *types.Func) []*types.Func {
	return cg.calls[fn]
}

// Callee resolves the *types.Func a call expression invokes, or nil for
// calls through function values, conversions and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
