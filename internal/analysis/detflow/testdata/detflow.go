// Fixture for the detflow analyzer: nondeterministic values flowing
// into canonical outputs. Positives and negatives are interleaved; the
// golden file pins the exact diagnostics.
package fixture

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// --- positives ---------------------------------------------------------

// keysUnsorted accumulates map keys in iteration order and marshals
// them: the classic byte-identity bug.
func keysUnsorted(m map[string]int) ([]byte, error) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return json.Marshal(keys) // want: map-fold reaches json.Marshal
}

// clockStamp puts a wall-clock reading into the marshaled payload.
func clockStamp(w io.Writer) error {
	payload := struct {
		At string `json:"at"`
	}{At: time.Now().Format(time.RFC3339)}
	return json.NewEncoder(w).Encode(payload) // want: clock reaches Encode
}

// randRow writes a random value into a CSV row.
func randRow(w *csv.Writer) error {
	row := []string{"config", fmt.Sprintf("%d", rand.Intn(10))}
	return w.Write(row) // want: rand reaches csv.Writer.Write
}

// joined rebuilds a string in map order (self-referential accumulation,
// no append involved).
func joined(m map[string]float64) ([]byte, error) {
	line := ""
	for k, v := range m {
		line = line + fmt.Sprintf("%s=%g;", k, v)
	}
	return json.Marshal(line) // want: map-fold reaches json.Marshal
}

// sumFloats folds map values into a float64: IEEE addition does not
// commute, so the fold is order-dependent even without a sequence.
func sumFloats(m map[string]float64) ([]byte, error) {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return json.Marshal(total) // want: map-fold reaches json.Marshal
}

// emitLine is a canonical emitter: everything it writes is part of the
// byte-identity contract, so even a bare map key (marker taint, no
// accumulation) is an error inside it.
//
//asic:canonical
func emitLine(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintf(w, "%s\n", k) // want: map-order reaches canonical write (strict)
	}
}

// throughHelper reaches json.Marshal through a module-local helper:
// the summary's parameter-sink flow flags the call site.
func throughHelper(m map[string]bool) []byte {
	var order []string
	for k := range m {
		order = append(order, k)
	}
	return marshalHelper(order) // want: map-fold reaches json.Marshal via marshalHelper
}

func marshalHelper(v []string) []byte {
	b, _ := json.Marshal(v)
	return b
}

// helperResult receives a clock reading out of a helper's result: the
// summary's result taint carries it across the call.
func helperResult(w io.Writer) error {
	return json.NewEncoder(w).Encode(stamp()) // want: clock reaches Encode via stamp
}

func stamp() string { return time.Now().String() }

// --- negatives ---------------------------------------------------------

// keysSorted is the sanctioned idiom: collect, sort, emit.
func keysSorted(m map[string]int) ([]byte, error) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return json.Marshal(keys)
}

// mapCopy rebuilds a map from a map: the destination has no order, and
// encoding/json sorts map keys, so nothing nondeterministic survives.
func mapCopy(m map[string]int) ([]byte, error) {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return json.Marshal(out)
}

// countEntries folds map values into an int: integer addition commutes
// exactly, so iteration order is invisible in the result.
func countEntries(m map[string]int) ([]byte, error) {
	n := 0
	for _, v := range m {
		n += v
	}
	return json.Marshal(n)
}

// singleLookup marshals one element fetched by key — no iteration.
func singleLookup(m map[string]int) ([]byte, error) {
	return json.Marshal(m["chip"])
}

// clockLogged reads the clock but only logs it; logging is not a
// canonical output.
func clockLogged() string {
	return fmt.Sprintf("elapsed=%v", time.Since(time.Time{}))
}

// sortedThroughHelper sorts before handing off to the marshal helper.
func sortedThroughHelper(m map[string]bool) []byte {
	var order []string
	for k := range m {
		order = append(order, k)
	}
	sort.Strings(order)
	return marshalHelper(order)
}
