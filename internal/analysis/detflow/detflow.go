// Package detflow flags nondeterministic values flowing into the
// repository's canonical outputs. The reproduction's headline claim —
// chunked, distributed and cached sweeps are byte-identical to a
// single-process run, and canonically-equal requests hash identically —
// only holds if nothing order- or time-dependent reaches the bytes:
// one unsorted map range folded into a result line, one wall-clock
// reading formatted into a figure CSV, and the invariant dies silently.
//
// Sources of nondeterminism: iterating a map (a marker — the iteration
// itself is fine until the visited order is accumulated into a
// sequence), wall-clock reads (time.Now/Since/Until) and math/rand.
// Sinks: JSON and CSV emission (encoding/json, encoding/csv), plus the
// internals, arguments and results of functions marked with the
// //asic:canonical directive — the canonical hash writer, the result
// renderer, the frontier fold — where even un-accumulated map-order
// markers are errors (strict). Sanitizers: the sort.* and slices.Sort*
// family kills ordering taint (but cannot kill a clock or rand value —
// sorting timestamps does not make them reproducible).
//
// Channel arrival order is deliberately not a detflow source: fan-in
// ordering has its own analyzer (foldorder) with accumulation-aware
// rules, and charging every channel receive here would flag the many
// single-result handoffs that are perfectly deterministic.
//
// Suppress a deliberate exception with //lint:ignore detflow and a
// justification, e.g. a timestamp field that is explicitly excluded
// from the byte-identity contract.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/taint"
)

// Analyzer is the detflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "flags nondeterministic values (map iteration order, time.Now, math/rand) reaching " +
		"canonical outputs: JSON/CSV emission and //asic:canonical functions",
	Run: run,
}

// The kind vocabulary. kindMapOrder is a marker: it rides on loop
// variables invisibly and only becomes reportable when an accumulation
// promotes it to kindMapFold (or when a strict canonical sink sees it).
const (
	kindMapOrder taint.Kind = "map-order"
	kindMapFold  taint.Kind = "map-fold"
	kindClock    taint.Kind = "clock"
	kindRand     taint.Kind = "rand"
)

// canonicalDirective marks byte-identity emitters: inside such a
// function every write and the return value are strict sinks, and its
// parameters become strict sinks at every call site (via summaries).
const canonicalDirective = "asic:canonical"

var spec = &taint.Spec{
	Name:     "detflow",
	MaxDepth: 4,
	IsMarker: func(k taint.Kind) bool { return k == kindMapOrder },
	SourceExpr: func(c *taint.Ctx, e ast.Expr) (taint.Source, bool) {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return taint.Source{}, false
		}
		fn := taint.CalleeOf(c, call)
		if fn == nil || fn.Pkg() == nil {
			return taint.Source{}, false
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				return taint.Source{
					Pos:  call.Pos(),
					Kind: kindClock,
					Desc: "wall-clock reading (time." + fn.Name() + ")",
				}, true
			}
		case "math/rand", "math/rand/v2":
			return taint.Source{
				Pos:  call.Pos(),
				Kind: kindRand,
				Desc: "math/rand value (rand." + fn.Name() + ")",
			}, true
		}
		return taint.Source{}, false
	},
	RangeSource: func(c *taint.Ctx, rng *ast.RangeStmt) (taint.Source, bool) {
		tv, ok := c.Info.Types[rng.X]
		if !ok || tv.Type == nil {
			return taint.Source{}, false
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return taint.Source{}, false
		}
		return taint.Source{
			Pos:  rng.X.Pos(),
			Kind: kindMapOrder,
			Desc: "map iteration order (range over " + types.ExprString(rng.X) + ")",
		}, true
	},
	Accum: func(c *taint.Ctx, pos token.Pos, target types.Type, elem taint.Taint) (taint.Source, bool) {
		if taint.CommutativeAccum(target) {
			return taint.Source{}, false
		}
		return taint.Source{
			Pos:  pos,
			Kind: kindMapFold,
			Desc: "sequence accumulated in map iteration order",
		}, true
	},
	Sanitize: func(c *taint.Ctx, call *ast.CallExpr) ([]int, func(taint.Kind) bool, bool, bool) {
		if !taint.SortSanitizer(c, call) {
			return nil, nil, false, false
		}
		kills := func(k taint.Kind) bool { return k == kindMapOrder || k == kindMapFold }
		return []int{0}, kills, true, true
	},
	SinkCall: func(c *taint.Ctx, call *ast.CallExpr) (taint.Sink, bool) {
		if sk, ok := taint.EmitterSink(c, call); ok {
			return sk, true
		}
		return taint.CanonicalWriteSink(c, call, canonicalDirective)
	},
	ReturnSink: func(c *taint.Ctx) (taint.Sink, bool) {
		return taint.CanonicalReturnSink(c, canonicalDirective)
	},
}

func run(pass *analysis.Pass) error {
	taint.Run(pass, spec, func(f taint.Finding) {
		via := ""
		if f.Via != "" {
			via = fmt.Sprintf(" (via %s)", f.Via)
		}
		pass.Reportf(f.Pos, "%s reaches %s%s — emit in a canonical order or drop the "+
			"nondeterministic input, or //lint:ignore detflow with the determinism argument",
			f.Source.Desc, f.Sink, via)
	})
	return nil
}
