package detflow_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/detflow"
)

func TestDetflow(t *testing.T) {
	atest.Run(t, detflow.Analyzer, "detflow", atest.Config{})
}
