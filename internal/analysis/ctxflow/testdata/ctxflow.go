// Package fixture exercises ctxflow: infinite loops that ignore an
// in-scope context, contexts stored in structs, and context parameters
// out of position.
package fixture

import (
	"context"
	"time"
)

// badHolder stores a context in a struct: flagged.
type badHolder struct {
	ctx context.Context
	n   int
}

// okHolder has no context field: clean.
type okHolder struct{ n int }

// badOrder takes ctx second: flagged.
func badOrder(n int, ctx context.Context) {}

// okOrder takes ctx first: clean.
func okOrder(ctx context.Context, n int) {}

// spin never consults ctx inside its infinite loop: flagged.
func spin(ctx context.Context) {
	for {
		time.Sleep(time.Millisecond)
	}
}

// politeErr polls ctx.Err on every iteration: clean.
func politeErr(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		step()
	}
}

// politeSelect blocks on ctx.Done and a ticker: clean.
func politeSelect(ctx context.Context, tick <-chan time.Time) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
			step()
		}
	}
}

// delegates hands ctx to its callee, which is accepted as consultation:
// clean here (the callee is responsible for observing it).
func delegates(ctx context.Context) {
	for {
		step2(ctx)
	}
}

// bounded loops have a condition; only `for {}` is flagged: clean.
func bounded(ctx context.Context) {
	for i := 0; i < 10; i++ {
		step()
	}
}

// noCtx has no context in scope, so its infinite loop is out of this
// analyzer's jurisdiction: clean.
func noCtx() {
	for {
		step()
	}
}

// nested starts a goroutine whose loop ignores the captured ctx: the
// literal inherits the enclosing scope's context and is flagged.
func nested(ctx context.Context) {
	go func() {
		for {
			step()
		}
	}()
}

// receives blocks on a channel each iteration, which hands pacing to the
// producer: clean.
func receives(ctx context.Context, jobs <-chan int) {
	for {
		j := <-jobs
		_ = j
	}
}

func step()                       {}
func step2(ctx context.Context)   {}
func use(a badHolder, b okHolder) { _, _ = a, b }
