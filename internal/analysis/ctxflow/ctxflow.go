// Package ctxflow enforces context.Context discipline in the service-era
// packages.
//
// The explorer became a long-running daemon (internal/service,
// internal/cloud): exploration jobs are cancellable and every blocking
// path is supposed to observe its context. Three patterns defeat that
// and are flagged here:
//
//   - an infinite `for {}` loop in a function that has a context in
//     scope but whose body never consults it — no ctx.Done()/ctx.Err(),
//     no call that receives the context, no channel receive that could
//     deliver cancellation. Such a loop spins until process exit no
//     matter how many callers gave up;
//   - context.Context stored in a struct field, which detaches the
//     value's lifetime from any call and hides cancellation from
//     readers (contexts are call-scoped by convention);
//   - a context.Context parameter that is not the first parameter,
//     which breaks the call-site convention the rest of the repository
//     relies on.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/cfg"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags infinite loops that never consult an in-scope context.Context, contexts stored " +
		"in struct fields, and context parameters that are not the first parameter",
	Match: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "internal/") || strings.Contains(pkgPath, "cmd/")
	},
	Run: run,
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	return t != nil && types.TypeString(t, nil) == "context.Context"
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				checkStructFields(pass, n)
			case *ast.FuncDecl:
				checkParamOrder(pass, n.Type)
				if n.Body != nil {
					checkLoops(pass, n, hasContextParam(pass, n.Type))
				}
				return false // checkLoops recurses into nested FuncLits itself
			case *ast.FuncLit:
				// Reached only for literals outside any FuncDecl (package
				// variable initializers); literals inside bodies are handled
				// by checkLoops' own recursion.
				checkParamOrder(pass, n.Type)
				checkLoops(pass, n, hasContextParam(pass, n.Type))
				return false
			}
			return true
		})
	}
	return nil
}

// checkStructFields flags context.Context struct fields.
func checkStructFields(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if !isContext(pass.TypeOf(field.Type)) {
			continue
		}
		pos := field.Pos()
		name := "embedded context.Context"
		if len(field.Names) > 0 {
			pos = field.Names[0].Pos()
			name = "field " + field.Names[0].Name
		}
		pass.Reportf(pos, "%s stores a context.Context in a struct; contexts are call-scoped — "+
			"pass ctx as the first parameter instead, or //lint:ignore with a lifecycle justification", name)
	}
}

// checkParamOrder flags context.Context parameters that are not first.
func checkParamOrder(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0 // flattened parameter index
	for gi, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContext(pass.TypeOf(field.Type)) && gi > 0 {
			// Some parameter group precedes the context group.
			p := field.Pos()
			if len(field.Names) > 0 {
				p = field.Names[0].Pos()
			}
			pass.Reportf(p, "context.Context is parameter %d; make it the first parameter so "+
				"call sites follow the ctx-first convention", pos)
		}
		pos += n
	}
}

// hasContextParam reports whether the function type declares a usable
// (named, non-blank) context.Context parameter.
func hasContextParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if !isContext(pass.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return true
			}
		}
	}
	return false
}

// checkLoops walks fn's CFG and flags infinite for-loops that never
// consult the in-scope context. It then recurses into nested function
// literals, which inherit the enclosing scope's context (captured
// variables cancel just as well as parameters).
func checkLoops(pass *analysis.Pass, fn ast.Node, ctxInScope bool) {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return
	}
	if ctxInScope {
		g := pass.CFG(fn)
		for _, s := range g.Loops() {
			fs, ok := s.(*ast.ForStmt)
			if !ok || fs.Cond != nil {
				continue // bounded or condition-driven loop; range loops end with their producer
			}
			blocks, _ := g.LoopBlocks(s)
			if !loopConsultsContext(pass, blocks) {
				pass.Reportf(fs.Pos(), "infinite loop never consults the in-scope context: no "+
					"ctx.Done()/ctx.Err() check, no call receiving ctx, and no channel receive on any path; "+
					"cancellation cannot stop it")
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkParamOrder(pass, lit.Type)
			checkLoops(pass, lit, ctxInScope || hasContextParam(pass, lit.Type))
			return false
		}
		return true
	})
}

// loopConsultsContext scans the loop's blocks (excluding nested function
// literals, which run on their own goroutine or call) for any of the
// three accepted cancellation consultations: a ctx.Done()/ctx.Err()
// selector, a call taking a context argument, or a channel receive —
// the last because a blocked receive hands pacing to a producer that can
// close the channel.
func loopConsultsContext(pass *analysis.Pass, blocks []*cfg.Block) bool {
	for _, b := range blocks {
		for _, node := range b.Nodes {
			found := false
			ast.Inspect(node, func(n ast.Node) bool {
				if found {
					return false
				}
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.SelectorExpr:
					if (n.Sel.Name == "Done" || n.Sel.Name == "Err") && isContext(pass.TypeOf(n.X)) {
						found = true
						return false
					}
				case *ast.CallExpr:
					for _, arg := range n.Args {
						if isContext(pass.TypeOf(arg)) {
							found = true
							return false
						}
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}
