package ctxflow_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	atest.Run(t, ctxflow.Analyzer, "ctxflow", atest.Config{})
}
