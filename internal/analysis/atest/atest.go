// Package atest is the golden-file test harness for asiclint analyzers.
// Each analyzer keeps fixtures under testdata/: a <case>.go file exercising
// the analyzer (the go tool never compiles testdata, so fixtures may
// contain deliberate violations) and a <case>.golden file holding the
// expected diagnostics, one per line in file:line:col form. Run
// `go test ./internal/analysis/... -update` to regenerate goldens after an
// intentional message change.
package atest

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"asiccloud/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite golden files with current analyzer output")

// Update reports whether the test run was invoked with -update. Tests
// that maintain golden artifacts outside this harness (the wirehash
// repo fingerprint) share the same flag so `make lint-golden` refreshes
// everything in one pass.
func Update() bool { return *update }

// Config adjusts a golden run.
type Config struct {
	// PkgPath is the import path given to the fixture package. Analyzers
	// with path-scoped behavior are tested by picking a path inside their
	// scope; defaults to "asiccloud/internal/fixture".
	PkgPath string
}

// Run type-checks testdata/<name>.go as a fixture package, applies the
// analyzer plus //lint:ignore suppression, and compares the diagnostics
// against testdata/<name>.golden.
func Run(t *testing.T, a *analysis.Analyzer, name string, cfg Config) {
	t.Helper()
	if cfg.PkgPath == "" {
		cfg.PkgPath = "asiccloud/internal/fixture"
	}
	src := filepath.Join("testdata", name+".go")
	pkg, err := analysis.CheckSource(cfg.PkgPath, []string{src})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", src, err)
	}
	// Run through the real pipeline (including suppression) but without
	// Match scoping: the fixture path already stands in for a scoped
	// package, and we want Run-level behavior identical to the CLI.
	unscoped := *a
	unscoped.Match = nil
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{&unscoped})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, src, err)
	}
	var buf bytes.Buffer
	if err := analysis.WriteText(&buf, diags, ""); err != nil {
		t.Fatalf("formatting diagnostics: %v", err)
	}
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("updating golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Errorf("%s: diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}
