package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Run applies every analyzer whose Match accepts the package to each of
// the given packages, then filters the combined findings through
// //lint:ignore directives. Directives are validated in every loaded file,
// so a stale or misspelled suppression is reported even when the analyzer
// it names found nothing. Diagnostics come back sorted by file, line and
// column.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers)+1)
	known[lintName] = true
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	var dirs []directive
	facts := newFacts(pkgs)
	for _, pkg := range pkgs {
		dirs = append(dirs, parseDirectives(pkg.Fset, pkg.Files)...)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				facts:    facts,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	diags = applySuppression(diags, dirs, known)
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// WriteText prints one diagnostic per line in file:line:col form, with
// filenames rewritten relative to baseDir when possible (keeps output and
// golden files stable across machines).
func WriteText(w io.Writer, diags []Diagnostic, baseDir string) error {
	for _, d := range diags {
		name := relativize(d.Pos.Filename, baseDir)
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n",
			name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message); err != nil {
			return err
		}
	}
	return nil
}

// jsonDiagnostic is the stable wire form of a Diagnostic.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON emits the diagnostics as a single JSON document:
// {"count": N, "diagnostics": [...]}.
func WriteJSON(w io.Writer, diags []Diagnostic, baseDir string) error {
	out := struct {
		Count       int              `json:"count"`
		Diagnostics []jsonDiagnostic `json:"diagnostics"`
	}{Count: len(diags), Diagnostics: []jsonDiagnostic{}}
	for _, d := range diags {
		out.Diagnostics = append(out.Diagnostics, jsonDiagnostic{
			File:     relativize(d.Pos.Filename, baseDir),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteGroupedJSON emits the diagnostics bucketed by analyzer:
// {"count": N, "analyzers": {"hotalloc": {"count": n, "diagnostics":
// [...]}, ...}}. This is the fix-list form (`make lint-fix-list`): a
// worklist is tackled one analyzer at a time, so the grouping puts
// every finding of a kind side by side instead of interleaved by file.
// Within a group, diagnostics keep the file/line/column order of the
// flat report; map keys serialize sorted, so output is deterministic.
func WriteGroupedJSON(w io.Writer, diags []Diagnostic, baseDir string) error {
	type group struct {
		Count       int              `json:"count"`
		Diagnostics []jsonDiagnostic `json:"diagnostics"`
	}
	out := struct {
		Count     int               `json:"count"`
		Analyzers map[string]*group `json:"analyzers"`
	}{Count: len(diags), Analyzers: map[string]*group{}}
	for _, d := range diags {
		g := out.Analyzers[d.Analyzer]
		if g == nil {
			g = &group{}
			out.Analyzers[d.Analyzer] = g
		}
		g.Count++
		g.Diagnostics = append(g.Diagnostics, jsonDiagnostic{
			File:     relativize(d.Pos.Filename, baseDir),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func relativize(filename, baseDir string) string {
	if baseDir == "" {
		return filename
	}
	rel, err := filepath.Rel(baseDir, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return rel
}
