// Package suite assembles the repository's standard asiclint analyzer
// suite. It is the single source of truth consumed by both cmd/asiclint
// and the self-test that keeps the tree lint-clean, so the CLI and the
// test gate can never disagree about what is checked.
package suite

import (
	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/ctxflow"
	"asiccloud/internal/analysis/detflow"
	"asiccloud/internal/analysis/droppederr"
	"asiccloud/internal/analysis/floatcmp"
	"asiccloud/internal/analysis/foldorder"
	"asiccloud/internal/analysis/goroleak"
	"asiccloud/internal/analysis/hotalloc"
	"asiccloud/internal/analysis/lockheld"
	"asiccloud/internal/analysis/obskeys"
	"asiccloud/internal/analysis/spanend"
	"asiccloud/internal/analysis/unitconv"
	"asiccloud/internal/analysis/unitdoc"
	"asiccloud/internal/analysis/unitflow"
	"asiccloud/internal/analysis/wirehash"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		detflow.Analyzer,
		droppederr.Analyzer,
		floatcmp.Analyzer,
		foldorder.Analyzer,
		goroleak.Analyzer,
		hotalloc.Analyzer,
		lockheld.Analyzer,
		obskeys.Analyzer,
		spanend.Analyzer,
		unitconv.Analyzer,
		unitdoc.Analyzer,
		unitflow.Analyzer,
		wirehash.Analyzer,
	}
}

// ByName returns the named analyzers, or an unknown name.
func ByName(names []string) (picked []*analysis.Analyzer, unknown string) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return nil, name
		}
		picked = append(picked, a)
	}
	return picked, ""
}
