package suite_test

import (
	"bytes"
	"os"
	"testing"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/suite"
)

// TestRepoIsLintClean runs the full asiclint suite over the whole module
// and asserts zero diagnostics: the lint gate enforced by `make lint` is
// also a test, so `go test ./...` alone keeps the tree clean. Violations
// must be fixed or carry a //lint:ignore with a reason.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is slow; skipped with -short")
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(l.ModuleRoot + "/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(pkgs, suite.Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	if len(diags) > 0 {
		var buf bytes.Buffer
		if err := analysis.WriteText(&buf, diags, l.ModuleRoot); err != nil {
			t.Fatalf("formatting diagnostics: %v", err)
		}
		t.Errorf("asiclint found %d diagnostics; fix them or add //lint:ignore with a reason:\n%s",
			len(diags), buf.String())
	}
}

func TestByName(t *testing.T) {
	picked, unknown := suite.ByName([]string{"floatcmp", "unitdoc"})
	if unknown != "" || len(picked) != 2 {
		t.Fatalf("ByName(floatcmp, unitdoc) = %v, %q", picked, unknown)
	}
	if picked[0].Name != "floatcmp" || picked[1].Name != "unitdoc" {
		t.Errorf("ByName returned wrong analyzers: %s, %s", picked[0].Name, picked[1].Name)
	}
	if _, unknown := suite.ByName([]string{"nosuch"}); unknown != "nosuch" {
		t.Errorf("ByName(nosuch) should report the unknown name, got %q", unknown)
	}
}

func TestSuiteNamesAreUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range suite.Analyzers() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %q must have a name and doc", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{
		"unitconv", "floatcmp", "droppederr", "unitdoc",
		"ctxflow", "goroleak", "lockheld", "unitflow",
		"hotalloc", "spanend", "obskeys",
		"detflow", "foldorder", "wirehash",
	} {
		if !seen[name] {
			t.Errorf("suite is missing analyzer %s: %v", name, seen)
		}
	}
}

// TestEveryAnalyzerDirIsRegistered walks internal/analysis/ and asserts
// that each analyzer package directory contributes an analyzer to the
// suite, so a new analyzer cannot be added without being wired into the
// CLI and the lint gate. Infrastructure packages are skip-listed.
func TestEveryAnalyzerDirIsRegistered(t *testing.T) {
	infra := map[string]bool{
		"atest":    true, // golden-test harness
		"cfg":      true, // control-flow graphs
		"suite":    true, // this package
		"taint":    true, // taint/dataflow engine
		"testdata": true, // framework fixtures
	}
	registered := make(map[string]bool)
	for _, a := range suite.Analyzers() {
		registered[a.Name] = true
	}
	entries, err := os.ReadDir("..")
	if err != nil {
		t.Fatalf("reading internal/analysis: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() || infra[e.Name()] {
			continue
		}
		if !registered[e.Name()] {
			t.Errorf("internal/analysis/%s is not registered in suite.Analyzers()", e.Name())
		}
	}
}
