// Package fixture exercises the unitconv analyzer: every conversion
// factor spelled inline as a bare literal should be flagged, while named
// constants, additive epsilons and call arguments pass.
package fixture

// namedFactor carries its unit in its name, so products using it are fine.
const namedFactor = 3600.0

func conversions(areaMM2, hours, ghs, cfm, tempC, hs float64) float64 {
	m2 := areaMM2 * 1e-6      // flagged: mm² → m²
	secs := hours * 3600      // flagged: hours → seconds
	raw := ghs * 1e9          // flagged: GH/s → H/s
	back := hs / 1e9          // flagged: division performs H/s → GH/s
	flow := cfm * 0.000471947 // flagged: CFM → m³/s
	kelvin := tempC + 273.15  // flagged: °C → K
	celsius := kelvin - 273.15 // flagged: K → °C under subtraction
	annual := 24 * 365 * hours   // flagged once, as the product 8760
	yearSecs := 365 * 24 * 3600.0 // flagged once, as the product 31536000

	okNamed := hours * namedFactor // named constant: fine
	tol := m2 - 1e-9               // additive epsilon: scale factors only count under * and /
	okArg := clamp(1e-6)           // call argument: not arithmetic

	return secs + raw + back + flow + celsius + annual + yearSecs + okNamed + tol + okArg
}

func clamp(v float64) float64 { return v }
