package unitconv_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/unitconv"
)

func TestUnitconv(t *testing.T) {
	atest.Run(t, unitconv.Analyzer, "bad", atest.Config{})
}
