// Package unitconv flags magic unit-conversion literals used in arithmetic
// outside internal/units.
//
// The explorer's entire TCO methodology is a long chain of physical
// quantity arithmetic (mm² → m², CFM → m³/s, °C → K, years → hours). An
// inline `* 1e-6` or `+ 273.15` silently encodes a unit conversion that
// the next reader — and the next refactor — cannot distinguish from model
// calibration. All such conversions must go through the named helpers and
// constants of internal/units, where each factor is written once,
// documented and tested.
package unitconv

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"

	"asiccloud/internal/analysis"
)

// Analyzer is the unitconv analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "unitconv",
	Doc: "flags magic unit-conversion literals (1e-6, 0.000471947, 273.15, 3600, 8760, ...) " +
		"used in arithmetic outside internal/units; use the named units.* helpers/constants",
	Match: func(pkgPath string) bool {
		// internal/units is where the factors are allowed to live.
		return pkgPath != "internal/units" && !strings.HasSuffix(pkgPath, "/internal/units")
	},
	Run: run,
}

// scaleOps are the operators under which a scale factor performs a
// conversion; offsetOps likewise for additive offsets. Tolerances and
// epsilons legitimately appear as +/- adjustments (e.g. `x - 1e-9`) or as
// call arguments, so scale factors are only flagged under * and /.
var (
	scaleOps  = map[token.Token]bool{token.MUL: true, token.QUO: true}
	offsetOps = map[token.Token]bool{token.ADD: true, token.SUB: true}
)

// magicLiterals maps a literal's exact constant value to the conversion it
// silently performs. Values are parsed from the same source spelling the
// offending code would use, so comparison is exact, not approximate.
var magicLiterals = []struct {
	src  string
	ops  map[token.Token]bool
	hint string
}{
	{"1e-6", scaleOps, "mm²→m² or µm²→mm²; use units.MM2ToM2 or units.UM2ToMM2"},
	{"1e6", scaleOps, "m²→mm² or W→MW or Hz→MHz; use units.M2ToMM2, units.WToMW or units.HzToMHz"},
	{"1e9", scaleOps, "GH/s↔H/s; use units.GHsToHs or units.HsToGHs"},
	{"1e-9", scaleOps, "H/s→GH/s; use units.HsToGHs"},
	{"0.000471947", scaleOps, "CFM→m³/s; use units.CFMToM3s"},
	{"273.15", offsetOps, "°C↔K; use units.CtoK or units.KtoC"},
	{"3600", scaleOps, "hours↔seconds; use units.SecondsPerHour"},
	{"8760", scaleOps, "years↔hours; use units.HoursPerYear"},
	{"86400", scaleOps, "days↔seconds; use units.SecondsPerDay"},
	{"31536000", scaleOps, "years↔seconds; use units.SecondsPerYear"},
}

// magicProducts are values that smell like a time conversion when spelled
// as a product of bare literals (24 * 365, 24 * 3600, 365 * 24 * 3600).
var magicProducts = map[int64]string{
	8760:     "years↔hours; use units.HoursPerYear",
	86400:    "days↔seconds; use units.SecondsPerDay",
	31536000: "years↔seconds; use units.SecondsPerYear",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			if reportLiteralProduct(pass, be) {
				// One diagnostic for the whole product; don't also flag
				// its sub-factors.
				return false
			}
			checkOperand(pass, be.Op, be.X)
			checkOperand(pass, be.Op, be.Y)
			return true
		})
	}
	return nil
}

// checkOperand reports op's operand e when it is a bare literal whose
// value is one of the known conversion factors under that operator.
func checkOperand(pass *analysis.Pass, op token.Token, e ast.Expr) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return
	}
	val := constant.MakeFromLiteral(lit.Value, lit.Kind, 0)
	if val.Kind() == constant.Unknown {
		return
	}
	for _, m := range magicLiterals {
		if !m.ops[op] {
			continue
		}
		want := constant.MakeFromLiteral(m.src, token.FLOAT, 0)
		if constant.Compare(constant.ToFloat(val), token.EQL, want) {
			pass.Reportf(lit.Pos(), "magic unit-conversion literal %s (%s)", lit.Value, m.hint)
			return
		}
	}
}

// reportLiteralProduct reports multiplications built purely from literals
// (e.g. 24 * 365) whose product is a well-known time-conversion count, and
// returns true if it reported. Named constants multiplied together are
// fine — the names carry the units — so every factor must be literal.
func reportLiteralProduct(pass *analysis.Pass, be *ast.BinaryExpr) bool {
	if be.Op != token.MUL {
		return false
	}
	if !literalOnly(be.X) || !literalOnly(be.Y) {
		return false
	}
	tv, ok := pass.Info.Types[be]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return false
	}
	hint, ok := magicProducts[v]
	if !ok {
		return false
	}
	pass.Reportf(be.Pos(), "magic unit-conversion product %d written as bare literals (%s)", v, hint)
	return true
}

// literalOnly reports whether e is built exclusively from numeric literals
// and arithmetic (no named constants or variables).
func literalOnly(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT || e.Kind == token.FLOAT
	case *ast.BinaryExpr:
		return literalOnly(e.X) && literalOnly(e.Y)
	case *ast.UnaryExpr:
		return literalOnly(e.X)
	}
	return false
}
