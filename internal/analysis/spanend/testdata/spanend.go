// Package fixture exercises spanend: spans that miss End on some path,
// discarded spans, and the escape cases the analyzer must stay quiet
// about because End legitimately happens elsewhere.
package fixture

import "context"

type Span struct {
	path  string
	ended bool
}

func (s *Span) End() { s.ended = true }

func (s *Span) Child(name string) *Span { return &Span{path: s.path + "/" + name} }

func (s *Span) Path() string { return s.path }

type Recorder struct {
	last *Span
}

func (r *Recorder) Span(name string) *Span { return &Span{path: name} }

func (r *Recorder) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{path: name}
}

// neverEnded starts a span and walks away.
func neverEnded(r *Recorder) int { // want a diagnostic on the creation below
	s := r.Span("sweep")
	return len(s.Path())
}

// endedOnOneBranch only ends the span when work succeeds.
func endedOnOneBranch(r *Recorder, ok bool) {
	s := r.Span("chunk")
	if ok {
		s.End()
	}
}

// earlyReturn leaks the span on the error path.
func earlyReturn(r *Recorder, err error) error {
	_, s := r.StartSpan(context.Background(), "explore")
	if err != nil {
		return err
	}
	s.End()
	return nil
}

// dropped never even binds the span.
func dropped(r *Recorder) {
	r.Span("orphan")
}

// blankSpan discards the span result of StartSpan.
func blankSpan(r *Recorder, ctx context.Context) {
	_, _ = r.StartSpan(ctx, "ghost")
}

// childLeak ends the parent but not the child.
func childLeak(r *Recorder) {
	parent := r.Span("fold")
	defer parent.End()
	c := parent.Child("merge")
	c.Path()
}

// deferred is the canonical clean shape.
func deferred(r *Recorder) {
	s := r.Span("ok")
	defer s.End()
	s.Path()
}

// bothBranches ends the span on every path explicitly.
func bothBranches(r *Recorder, ok bool) {
	s := r.Span("ok")
	if ok {
		s.End()
		return
	}
	s.End()
}

// loopSpans start and end within each iteration.
func loopSpans(r *Recorder, n int) {
	for i := 0; i < n; i++ {
		s := r.Span("iter")
		s.Path()
		s.End()
	}
}

// returned escapes: the caller owns the End.
func returned(r *Recorder) *Span {
	s := r.Span("handoff")
	return s
}

// stored escapes into the recorder; End happens at shutdown.
func stored(r *Recorder) {
	s := r.Span("pinned")
	r.last = s
}

// passedOn escapes by argument; finish owns the End.
func passedOn(r *Recorder) {
	s := r.Span("delegated")
	finish(s)
}

func finish(s *Span) { s.End() }

// captured escapes into a literal that ends it later.
func captured(r *Recorder) func() {
	s := r.Span("async")
	return func() { s.End() }
}

// justified documents why the open span is intentional.
func justified(r *Recorder) {
	s := r.Span("daemon") //lint:ignore spanend span deliberately left open for the process lifetime
	s.Path()
}
