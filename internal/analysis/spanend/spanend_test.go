package spanend_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/spanend"
)

func TestSpanend(t *testing.T) {
	atest.Run(t, spanend.Analyzer, "spanend", atest.Config{})
}
