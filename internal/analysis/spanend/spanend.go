// Package spanend verifies that every span a function starts is ended
// on every control-flow path out of the function.
//
// A Span that never sees End is invisible: its duration never reaches
// the asiccloud_span_seconds histogram, the trace tree renders a hole
// where the region should be, and the recorder retains the span until
// truncation. The bug is quiet — nothing crashes — which is exactly
// why it belongs to a path-sensitive check rather than review memory.
//
// The analyzer recognises span creation structurally: a call to a
// method named Span, StartSpan or Child whose results include a
// pointer to a type named Span carrying an End method. From each
// creation it walks the function's control-flow graph forward; a path
// is satisfied when it executes recv.End() or registers defer
// recv.End(), and the diagnostic fires at the creation site when any
// path reaches a function exit unsatisfied. Spans that escape local
// reasoning — returned, stored into a structure, passed to another
// function, captured by a function literal, or re-assigned — are
// skipped: their End legitimately lives elsewhere, and guessing would
// trade one silent bug for a noisy false positive.
package spanend

import (
	"go/ast"
	"go/types"
	"strings"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/cfg"
)

// Analyzer is the spanend analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc: "flags spans (StartSpan/Span/Child) that can reach a function exit without End " +
		"on some control-flow path",
	Match: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "internal/") || strings.Contains(pkgPath, "cmd/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc scans fn's statements for span creations and walks the CFG
// forward from each one.
func checkFunc(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	g := pass.CFG(fn)
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			name, creator, ok := spanCreation(pass, node, body)
			if !ok {
				continue
			}
			if name == "" {
				pass.Reportf(node.Pos(), "span created by %s is discarded without End — assign it "+
					"and End it on every path, or chain defer .End() onto the creation", creator)
				continue
			}
			if !endsOnAllPaths(pass, g, b, i+1, name) {
				pass.Reportf(node.Pos(), "span %s (from %s) can reach a function exit without %s.End() — "+
					"defer the End next to the creation or End it on every path, or //lint:ignore spanend "+
					"with the reason the span outlives this function", name, creator, name)
			}
		}
	}
}

// spanCreation matches statements that create a span and bind it to a
// plain local variable. It returns the variable's printed name and the
// creating method's name. A creation whose span lands in the blank
// identifier or is a bare expression statement returns name == "" —
// the span is provably dropped. Creations whose span escapes local
// tracking (returned, stored, passed on, captured, or re-assigned
// later) return ok == false.
func spanCreation(pass *analysis.Pass, node ast.Node, body *ast.BlockStmt) (name, creator string, ok bool) {
	switch n := node.(type) {
	case *ast.ExprStmt:
		call, isCall := ast.Unparen(n.X).(*ast.CallExpr)
		if !isCall {
			return "", "", false
		}
		fn, _, isSpan := spanCall(pass, call)
		if !isSpan {
			return "", "", false
		}
		return "", fn.Name(), true

	case *ast.AssignStmt:
		if len(n.Rhs) != 1 {
			return "", "", false
		}
		call, isCall := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
		if !isCall {
			return "", "", false
		}
		fn, idx, isSpan := spanCall(pass, call)
		if !isSpan || idx >= len(n.Lhs) {
			return "", "", false
		}
		id, isIdent := n.Lhs[idx].(*ast.Ident)
		if !isIdent {
			return "", "", false // span stored into a field or index: End lives elsewhere
		}
		if id.Name == "_" {
			return "", fn.Name(), true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil || escapes(pass, body, obj, id) {
			return "", "", false
		}
		return id.Name, fn.Name(), true
	}
	return "", "", false
}

// spanCall reports whether call creates a span: the callee is named
// Span, StartSpan or Child and some result is a *Span with an End
// method. It returns the callee and the index of the span result.
func spanCall(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, int, bool) {
	fn := cfg.Callee(pass.Info, call)
	if fn == nil {
		return nil, 0, false
	}
	switch fn.Name() {
	case "Span", "StartSpan", "Child":
	default:
		return nil, 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, 0, false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isSpanPointer(sig.Results().At(i).Type()) {
			return fn, i, true
		}
	}
	return nil, 0, false
}

// isSpanPointer reports whether t is a pointer to a named type called
// Span whose method set includes End — the structural shape of a span,
// so the check works on any tracing vocabulary, not just internal/obs.
func isSpanPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Span" {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), "End")
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// escapes reports whether obj is used anywhere in body other than as
// the receiver of a method call bound at declaration site decl. Any
// other use — returned, passed as an argument, stored into a composite
// or another variable, captured by a function literal, re-assigned —
// means End may legitimately happen beyond this function's CFG, so the
// creation is skipped rather than guessed at.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, decl *ast.Ident) bool {
	var stack []ast.Node
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if esc {
			return false
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || id == decl {
			return true
		}
		if pass.Info.Uses[id] != obj && pass.Info.Defs[id] != obj {
			return true
		}
		for _, anc := range stack[:len(stack)-1] {
			if _, inLit := anc.(*ast.FuncLit); inLit {
				esc = true
				return false
			}
		}
		parent := stack[len(stack)-2]
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
			return true // receiver of s.End(), s.Child(...), s.Path()...
		}
		esc = true
		return false
	})
	return esc
}

// endsOnAllPaths walks forward from the statement after the creation
// and reports whether every path to a function exit executes name.End()
// or registers it with defer.
func endsOnAllPaths(pass *analysis.Pass, g *cfg.Graph, start *cfg.Block, startIdx int, name string) bool {
	type item struct {
		b   *cfg.Block
		idx int
	}
	visited := map[*cfg.Block]bool{}
	work := []item{{start, startIdx}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		ended := false
		for _, node := range it.b.Nodes[it.idx:] {
			if stmt, ok := node.(ast.Stmt); ok && endCall(stmt, name) {
				ended = true
				break
			}
		}
		if ended {
			continue
		}
		if len(it.b.Succs) == 0 {
			return false // reached an exit still holding an open span
		}
		for _, succ := range it.b.Succs {
			if !visited[succ] {
				visited[succ] = true
				work = append(work, item{succ, 0})
			}
		}
	}
	return true
}

// endCall matches `name.End()` as a plain statement or a defer.
func endCall(stmt ast.Stmt, name string) bool {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	return types.ExprString(sel.X) == name
}
