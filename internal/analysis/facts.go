package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"asiccloud/internal/analysis/cfg"
)

// Facts is the shared dataflow substrate one Run computes over its
// package set and hands to every Pass: per-function control-flow graphs
// (built lazily — syntax-only analyzers never pay for them), the
// module-local call graph, and a documentation index mapping declared
// objects (struct fields, constants, variables) to their doc-comment
// text so annotation-driven analyzers (unitflow) can see declarations
// from other packages of the same Run.
type Facts struct {
	cfgs      map[ast.Node]*cfg.Graph
	callgraph *cfg.CallGraph
	docs      map[types.Object]string

	// Interprocedural allocation facts (allocfacts.go): per-function
	// summaries memoized across the Run (nil entry = declaration not in
	// this Run), and the run-wide set of already-reported allocation
	// sites so analyzers reporting at foreign positions never duplicate.
	allocs       map[*types.Func]*AllocSummary
	allocClaimed map[token.Pos]bool

	// memo is the open-ended run-wide store for analyzer substrates
	// (see Pass.Memo). Keys are substrate-chosen; the framework only
	// guarantees one value per key per Run.
	memo map[any]any
}

// newFacts indexes the call graph and doc comments of every package in
// the run. CFGs are built on demand by Pass.CFG.
func newFacts(pkgs []*Package) *Facts {
	f := &Facts{
		cfgs:         make(map[ast.Node]*cfg.Graph),
		callgraph:    cfg.NewCallGraph(),
		docs:         make(map[types.Object]string),
		allocs:       make(map[*types.Func]*AllocSummary),
		allocClaimed: make(map[token.Pos]bool),
		memo:         make(map[any]any),
	}
	for _, pkg := range pkgs {
		f.callgraph.AddPackage(pkg.Info, pkg.Files)
		indexDocs(pkg, f.docs)
	}
	return f
}

// indexDocs records the doc text of struct fields, constants and
// package-level variables, keyed by their types.Object. Because the
// Loader shares one type-checker across the module, the object a
// selector resolves to in package A is pointer-identical to the one
// declared in package B, so cross-package doc lookups are exact.
func indexDocs(pkg *Package, out map[types.Object]string) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					st, ok := spec.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						text := field.Doc.Text() + " " + field.Comment.Text()
						for _, name := range field.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								out[obj] = text
							}
						}
					}
				case *ast.ValueSpec:
					text := spec.Doc.Text() + " " + spec.Comment.Text()
					if len(gd.Specs) == 1 {
						text += " " + gd.Doc.Text()
					}
					for _, name := range spec.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							out[obj] = text
						}
					}
				}
			}
		}
	}
}

// CFG returns the control-flow graph of fn (an *ast.FuncDecl or
// *ast.FuncLit), building and memoizing it on first request.
func (p *Pass) CFG(fn ast.Node) *cfg.Graph {
	if g, ok := p.facts.cfgs[fn]; ok {
		return g
	}
	g := cfg.Build(fn)
	p.facts.cfgs[fn] = g
	return g
}

// CallGraph returns the run-wide call graph covering every package of
// this Run (not just the Pass's own package).
func (p *Pass) CallGraph() *cfg.CallGraph {
	return p.facts.callgraph
}

// DocOf returns the doc-comment text recorded for a struct field,
// constant or package-level variable anywhere in the run, or "".
func (p *Pass) DocOf(obj types.Object) string {
	return p.facts.docs[obj]
}

// Memo returns the run-wide value stored under key, computing it with
// fn on first request. It is how analyzer substrates built outside this
// package (the taint engine in internal/analysis/taint) share their
// interprocedural caches across every Pass of one Run — the same role
// the allocs map plays for hotalloc — without the framework having to
// know each substrate's types. Keys follow the comparable-key
// discipline of context.Value: a substrate passes a private pointer or
// defined type so two substrates can never collide.
func (p *Pass) Memo(key any, fn func() any) any {
	if v, ok := p.facts.memo[key]; ok {
		return v
	}
	v := fn()
	p.facts.memo[key] = v
	return v
}
