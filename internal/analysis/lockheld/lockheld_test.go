package lockheld_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/lockheld"
)

func TestLockheld(t *testing.T) {
	atest.Run(t, lockheld.Analyzer, "lockheld", atest.Config{})
}
