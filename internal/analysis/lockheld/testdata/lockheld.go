// Package fixture exercises lockheld: blocking operations between Lock
// and Unlock, nonblocking select exemptions, and locks copied by value.
package fixture

import (
	"sync"
	"time"
)

type store struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	results chan int
	data    map[string]int
}

// sleepHeld sleeps with the mutex held: flagged.
func (s *store) sleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}

// sendHeld sends on a channel while the deferred unlock keeps the mutex
// held to return: flagged.
func (s *store) sendHeld(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results <- v
}

// recvHeld receives under the read lock: flagged.
func (s *store) recvHeld() int {
	s.rw.RLock()
	v := <-s.results
	s.rw.RUnlock()
	return v
}

// nonblockingSend uses select-with-default, which cannot block: clean.
func (s *store) nonblockingSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.results <- v:
	default:
	}
}

// releasedFirst unlocks before the send: clean.
func (s *store) releasedFirst(v int) {
	s.mu.Lock()
	s.data["k"] = v
	s.mu.Unlock()
	s.results <- v
}

// relock takes the same mutex twice: flagged as a self-deadlock.
func (s *store) relock() {
	s.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock()
}

// branchHeld blocks on only one path; any path counts: flagged.
func (s *store) branchHeld(v int, urgent bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if urgent {
		s.results <- v
	}
	s.data["k"] = v
}

// rangeHeld drains a channel with the mutex held: flagged.
func (s *store) rangeHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.results {
		s.data["v"] = v
	}
}

// litClean sends from a new goroutine, not under the caller's lock:
// clean.
func (s *store) litClean(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.results <- v }()
}

// waitHeld waits on a WaitGroup with the mutex held: flagged.
func (s *store) waitHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait()
	s.mu.Unlock()
}

// lockedConfig carries a mutex by value wherever it is copied.
type lockedConfig struct {
	mu sync.Mutex
	n  int
}

// byValue copies the mutex through its receiver: flagged.
func (c lockedConfig) byValue() int { return c.n }

// byPtr shares the mutex: clean.
func (c *lockedConfig) byPtr() int { return c.n }

// takesByValue copies the mutex through a parameter: flagged.
func takesByValue(c lockedConfig) int { return c.n }
