// Package lockheld flags mutexes held across blocking operations, plus
// locks copied by value.
//
// A sync.Mutex guards shared state for nanoseconds; the moment a
// blocking operation — a channel send or receive, WaitGroup.Wait,
// time.Sleep, network I/O — executes between Lock and Unlock, every
// other goroutine contending for that state stalls for the full
// duration, and a receive that never fires turns the whole process into
// a deadlock. The analyzer walks each function's control-flow graph
// forward from every Lock/RLock call until the matching Unlock and
// reports the first blocking node on any path. Sends and receives that
// are comm cases of a select with a default clause are exempt (they
// cannot block by construction), as are nested function literals (they
// run on their own goroutine or call). A second Lock of the same mutex
// while it is held — a guaranteed self-deadlock — is reported as well.
//
// Separately, value receivers and parameters whose type directly or
// transitively contains a sync.Mutex/RWMutex are flagged: copying a
// locked mutex forks its state and both copies stop excluding anyone.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/cfg"
)

// Analyzer is the lockheld analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "flags mutexes held across blocking operations (channel ops, Wait, Sleep, network I/O) " +
		"and mutex-bearing types passed by value",
	Match: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "internal/") || strings.Contains(pkgPath, "cmd/")
	},
	Run: run,
}

// lockMethods maps the acquiring method (by its go/types full name) to
// the releasing method name on the same receiver expression.
var lockMethods = map[string]string{
	"(*sync.Mutex).Lock":    "Unlock",
	"(*sync.RWMutex).Lock":  "Unlock",
	"(*sync.RWMutex).RLock": "RUnlock",
}

// blockingCalls lists callees (by full name) that block the calling
// goroutine for an unbounded or scheduler-visible duration.
var blockingCalls = map[string]string{
	"(*sync.WaitGroup).Wait":  "WaitGroup.Wait",
	"(*sync.Cond).Wait":       "Cond.Wait",
	"time.Sleep":              "time.Sleep",
	"net.Dial":                "net.Dial",
	"net.DialTimeout":         "net.DialTimeout",
	"net.Listen":              "net.Listen",
	"(net.Listener).Accept":   "Accept",
	"(net.Conn).Read":         "net.Conn.Read",
	"(net.Conn).Write":        "net.Conn.Write",
	"(*net/http.Client).Do":   "http.Client.Do",
	"(*net/http.Client).Get":  "http.Client.Get",
	"(*net/http.Client).Post": "http.Client.Post",
	"net/http.Get":            "http.Get",
	"net/http.Post":           "http.Post",
	"(*os/exec.Cmd).Run":      "exec.Cmd.Run",
	"(*os/exec.Cmd).Wait":     "exec.Cmd.Wait",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkByValue(pass, n)
				if n.Body != nil {
					checkFunc(pass, n, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc walks fn's CFG from every lock acquisition.
func checkFunc(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	// Sends/receives that are comm cases of a select with a default
	// clause cannot block; collect those statements up front.
	nonblocking := make(map[ast.Stmt]bool)
	// The X of a range-over-channel appears as a bare expression node in
	// the loop-head block; mark them so they read as receives.
	rangeChan := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // literals get their own checkFunc
		case *ast.SelectStmt:
			hasDefault := false
			for _, cs := range n.Body.List {
				if cs.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, cs := range n.Body.List {
					if comm := cs.(*ast.CommClause).Comm; comm != nil {
						nonblocking[comm] = true
					}
				}
			}
		case *ast.RangeStmt:
			if _, ok := typeUnder(pass.TypeOf(n.X)).(*types.Chan); ok {
				rangeChan[n.X] = true
			}
		}
		return true
	})

	g := pass.CFG(fn)
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			recv, release, ok := lockAcquisition(pass, node)
			if !ok {
				continue
			}
			scanHeld(pass, g, b, i+1, recv, release, nonblocking, rangeChan)
		}
	}
}

// lockAcquisition matches `x.Lock()` / `x.RLock()` statements and
// returns the receiver's identity (its printed expression) and the name
// of the releasing method.
func lockAcquisition(pass *analysis.Pass, node ast.Node) (recv, release string, ok bool) {
	es, ok := node.(*ast.ExprStmt)
	if !ok {
		return "", "", false
	}
	return lockCall(pass, es.X)
}

func lockCall(pass *analysis.Pass, e ast.Expr) (recv, release string, ok bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn := cfg.Callee(pass.Info, call)
	if fn == nil {
		return "", "", false
	}
	release, ok = lockMethods[fn.FullName()]
	if !ok {
		return "", "", false
	}
	return types.ExprString(sel.X), release, true
}

// unlockMatches reports whether stmt releases recv via the given method.
func unlockMatches(pass *analysis.Pass, stmt ast.Stmt, recv, release string) bool {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != release {
		return false
	}
	return types.ExprString(sel.X) == recv
}

// scanHeld walks forward from the statement after the acquisition and
// reports the first blocking operation reached while recv is held. The
// walk stops along paths that release the lock; a deferred release keeps
// the lock held to function return, so the walk continues through it.
func scanHeld(pass *analysis.Pass, g *cfg.Graph, start *cfg.Block, startIdx int,
	recv, release string, nonblocking map[ast.Stmt]bool, rangeChan map[ast.Expr]bool) {

	type item struct {
		b   *cfg.Block
		idx int
	}
	visited := map[*cfg.Block]bool{}
	work := []item{{start, startIdx}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		released := false
		for _, node := range it.b.Nodes[it.idx:] {
			if stmt, ok := node.(ast.Stmt); ok {
				if _, isDefer := stmt.(*ast.DeferStmt); !isDefer && unlockMatches(pass, stmt, recv, release) {
					released = true
					break
				}
			}
			if msg, pos, found := blockingOp(pass, node, recv, nonblocking, rangeChan); found {
				pass.Reportf(pos, "%s is held across %s; release the lock before blocking, or "+
					"//lint:ignore with the reason the wait is bounded", recv, msg)
				return
			}
		}
		if released {
			continue
		}
		for _, succ := range it.b.Succs {
			if !visited[succ] {
				visited[succ] = true
				work = append(work, item{succ, 0})
			}
		}
	}
}

// blockingOp classifies one CFG node: channel send/receive (unless a
// nonblocking select case), range over a channel, a curated blocking
// call, or a re-lock of the held mutex.
func blockingOp(pass *analysis.Pass, node ast.Node, recv string,
	nonblocking map[ast.Stmt]bool, rangeChan map[ast.Expr]bool) (string, token.Pos, bool) {

	if stmt, ok := node.(ast.Stmt); ok && nonblocking[stmt] {
		return "", token.NoPos, false
	}
	if e, ok := node.(ast.Expr); ok && rangeChan[e] {
		return "a range over a channel", e.Pos(), true
	}
	if r, _, ok := lockAcquisition(pass, node); ok && r == recv {
		return "a second Lock of the same mutex (self-deadlock)", node.Pos(), true
	}
	var msg string
	var pos token.Pos
	ast.Inspect(node, func(n ast.Node) bool {
		if msg != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			msg, pos = "a channel send", n.Pos()
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				msg, pos = "a channel receive", n.Pos()
				return false
			}
		case *ast.CallExpr:
			if fn := cfg.Callee(pass.Info, n); fn != nil {
				if label, ok := blockingCalls[fn.FullName()]; ok {
					msg, pos = "a call to "+label, n.Pos()
					return false
				}
			}
		}
		return true
	})
	return msg, pos, msg != ""
}

// checkByValue flags value receivers and parameters whose type contains
// a mutex.
func checkByValue(pass *analysis.Pass, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if lock := containsLock(t, make(map[*types.Named]bool)); lock != "" {
				pos := field.Pos()
				if len(field.Names) > 0 {
					pos = field.Names[0].Pos()
				}
				pass.Reportf(pos, "%s passes %s by value, copying its %s; use a pointer so the "+
					"lock state stays shared", what, types.TypeString(t, types.RelativeTo(pass.Pkg)), lock)
			}
		}
	}
	check(fd.Recv, "receiver of "+fd.Name.Name)
	check(fd.Type.Params, "parameter of "+fd.Name.Name)
}

// containsLock reports the mutex type t carries by value ("" if none),
// looking through named types and struct fields.
func containsLock(t types.Type, seen map[*types.Named]bool) string {
	if named, ok := t.(*types.Named); ok {
		if seen[named] {
			return ""
		}
		seen[named] = true
		switch types.TypeString(named, nil) {
		case "sync.Mutex":
			return "sync.Mutex"
		case "sync.RWMutex":
			return "sync.RWMutex"
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if lock := containsLock(st.Field(i).Type(), seen); lock != "" {
			return lock
		}
	}
	return ""
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}
