package analysis_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"asiccloud/internal/analysis"
)

// initTestRepo builds a throwaway git repository with one committed .go
// file and returns its root.
func initTestRepo(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not available")
	}
	root := t.TempDir()
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{
			"-c", "user.name=test", "-c", "user.email=test@example.com",
		}, args...)...)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	git("init", "-q")
	write(t, root, "committed.go", "package p\n")
	write(t, root, "notes.txt", "not go\n")
	git("add", ".")
	git("commit", "-q", "-m", "seed")
	return root
}

func write(t *testing.T, root, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(root, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestChangedFiles(t *testing.T) {
	root := initTestRepo(t)

	// Nothing changed yet.
	files, err := analysis.ChangedFiles(root, "HEAD")
	if err != nil {
		t.Fatalf("ChangedFiles on clean tree: %v", err)
	}
	if len(files) != 0 {
		t.Fatalf("clean tree: want no changed files, got %v", files)
	}

	// An unstaged edit, an untracked .go file and an untracked non-Go
	// file: the first two must show up, the last must not.
	write(t, root, "committed.go", "package p\n\nvar x = 1\n")
	write(t, root, "fresh.go", "package p\n")
	write(t, root, "more.txt", "still not go\n")

	files, err = analysis.ChangedFiles(root, "HEAD")
	if err != nil {
		t.Fatalf("ChangedFiles: %v", err)
	}
	want := map[string]bool{
		filepath.Join(root, "committed.go"): true,
		filepath.Join(root, "fresh.go"):     true,
	}
	if len(files) != len(want) {
		t.Fatalf("changed files: got %v, want keys of %v", files, want)
	}
	for _, f := range files {
		if !want[f] {
			t.Errorf("unexpected changed file %s", f)
		}
		if !filepath.IsAbs(f) {
			t.Errorf("changed file %s is not absolute", f)
		}
	}
}

func TestChangedFilesRenamed(t *testing.T) {
	root := initTestRepo(t)
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{
			"-c", "user.name=test", "-c", "user.email=test@example.com",
		}, args...)...)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	git("mv", "committed.go", "renamed.go")

	files, err := analysis.ChangedFiles(root, "HEAD")
	if err != nil {
		t.Fatalf("ChangedFiles after rename: %v", err)
	}
	// The new path must be reported — diagnostics in a renamed file are
	// this change's problem. (Whether git also lists the old path depends
	// on rename detection; a vanished path filters to nothing downstream.)
	found := false
	for _, f := range files {
		if f == filepath.Join(root, "renamed.go") {
			found = true
		}
	}
	if !found {
		t.Fatalf("renamed file not in changed set: %v", files)
	}
}

func TestChangedFilesBadRef(t *testing.T) {
	root := initTestRepo(t)
	_, err := analysis.ChangedFiles(root, "no-such-ref")
	if err == nil {
		t.Fatal("ChangedFiles with bogus ref: want error, got nil")
	}
	// A bad ref in a healthy repository is an ordinary error, not an
	// environment problem: callers must not degrade to whole-module mode
	// (that would silently mask a typoed ref in CI).
	if errors.Is(err, analysis.ErrGitUnavailable) {
		t.Fatalf("bad ref wrongly classified as ErrGitUnavailable: %v", err)
	}
}

func TestChangedFilesOutsideWorkTree(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not available")
	}
	root := t.TempDir() // plain directory, never git-inited
	// Stop git from discovering an enclosing repository above the temp
	// dir, which would turn this into a test of the host filesystem.
	t.Setenv("GIT_CEILING_DIRECTORIES", filepath.Dir(root))
	_, err := analysis.ChangedFiles(root, "HEAD")
	if err == nil {
		t.Fatal("ChangedFiles outside a work tree: want error, got nil")
	}
	if !errors.Is(err, analysis.ErrGitUnavailable) {
		t.Fatalf("outside a work tree: want ErrGitUnavailable, got %v", err)
	}
}

func TestChangedFilesNoGitBinary(t *testing.T) {
	root := t.TempDir()
	// An empty PATH makes exec.LookPath fail, simulating a container
	// image without git.
	t.Setenv("PATH", root)
	_, err := analysis.ChangedFiles(root, "HEAD")
	if err == nil {
		t.Fatal("ChangedFiles without git: want error, got nil")
	}
	if !errors.Is(err, analysis.ErrGitUnavailable) {
		t.Fatalf("missing git binary: want ErrGitUnavailable, got %v", err)
	}
}

func TestFilterFiles(t *testing.T) {
	mk := func(file string, line int) analysis.Diagnostic {
		var d analysis.Diagnostic
		d.Pos.Filename = file
		d.Pos.Line = line
		d.Analyzer = "x"
		d.Message = "m"
		return d
	}
	diags := []analysis.Diagnostic{
		mk("/repo/a.go", 1),
		mk("/repo/b.go", 2),
		mk("/repo/a.go", 3),
	}
	got := analysis.FilterFiles(diags, []string{"/repo/a.go"})
	if len(got) != 2 {
		t.Fatalf("FilterFiles: got %d diagnostics, want 2: %v", len(got), got)
	}
	for _, d := range got {
		if d.Pos.Filename != "/repo/a.go" {
			t.Errorf("diagnostic leaked through filter: %v", d)
		}
	}
	if got := analysis.FilterFiles(diags, nil); len(got) != 0 {
		t.Errorf("empty file set: want no diagnostics, got %v", got)
	}
}
