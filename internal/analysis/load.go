package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path, e.g. "asiccloud/internal/thermal"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only, with comments
	Pkg   *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of a single Go module without
// any external tooling. Imports inside the module are resolved by loading
// the corresponding directory recursively; all other imports (the standard
// library) are resolved by compiling their GOROOT sources via go/importer's
// "source" compiler, which works offline. Test files are ignored: the
// analyzers in this repository deliberately exempt _test.go code.
type Loader struct {
	ModuleRoot string // absolute path of the directory containing go.mod
	ModulePath string // module path declared in go.mod

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle detection
}

// NewLoader creates a Loader for the module that contains dir, walking
// upward until it finds go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file. The file format
// is line-oriented; the module directive is always a single line.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load resolves the given patterns to packages and type-checks each one.
// A pattern is a directory path, optionally ending in "/..." to include
// every package below it, interpreted relative to cwd. With no patterns it
// loads the whole module. Results are sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{l.ModuleRoot + "/..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			if hasGoFiles(abs) && !seen[abs] {
				seen[abs] = true
				dirs = append(dirs, abs)
			}
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) && !seen[path] {
				seen[path] = true
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module-internal import path back to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// loadDir parses and type-checks the package in dir, memoized by import
// path.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build lines, GOOS/GOARCH
		// suffixes) so we analyze exactly what `go build` compiles.
		if ok, err := ctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(l.importFor(dir))}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importFor returns the import resolver used while type-checking a package
// in dir: module-internal paths load recursively, everything else comes
// from the standard library source importer.
func (l *Loader) importFor(dir string) func(path string) (*types.Package, error) {
	return func(path string) (*types.Package, error) {
		if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
			pkg, err := l.loadDir(l.dirFor(path))
			if err != nil {
				return nil, err
			}
			return pkg.Pkg, nil
		}
		return l.std.Import(path)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// CheckSource parses and type-checks a single in-memory or on-disk set of
// fixture files as one package with the given import path. It is the entry
// point used by analyzer golden tests; fixtures may import the standard
// library but nothing else.
func CheckSource(pkgPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking fixture %s: %w", pkgPath, err)
	}
	dir := ""
	if len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	return &Package{Path: pkgPath, Dir: dir, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}
