package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"asiccloud/internal/analysis/cfg"
)

// This file is the interprocedural half of the fact store: per-function
// allocation summaries, memoized across the whole Run and shared by
// every Pass. A summary is computed once per declared function — no
// matter how many hot-path roots reach it — and records (a) the
// statically visible heap-allocation sites in the body and (b) the
// module-local calls the body makes, so an analyzer can propagate
// "allocates" facts along the call graph without re-walking ASTs.
//
// The classification is deliberately syntactic: it flags constructs the
// Go compiler *may* heap-allocate (make, append growth, escaping
// composite literals, capturing closures, interface boxing, fmt calls,
// string conversions) rather than re-implementing escape analysis.
// On a path marked //asic:hotpath the contract is "no allocation
// machinery at all", so a conservative syntactic answer is the right
// one — a site that turns out to be stack-allocated still costs a
// review, and the reviewer records the verdict as a //lint:ignore
// reason the next reader can see.

// An AllocSite is one statically visible potential heap allocation.
type AllocSite struct {
	// Pos locates the allocating expression or statement.
	Pos token.Pos
	// What describes the allocation in diagnostic-ready form, e.g.
	// "make(map[string]int)" or "append may grow pts".
	What string
}

// An AllocCall is one resolvable call to a module-local function,
// recorded so interprocedural analyzers can follow the body's calls
// with positions for path reporting.
type AllocCall struct {
	Pos    token.Pos
	Callee *types.Func
}

// An AllocSummary is the per-function allocation fact: the body's own
// allocation sites plus its outgoing module-local calls. Summaries are
// memoized in the run-wide fact store; they are facts about the
// declaration, independent of any caller.
type AllocSummary struct {
	Fn      *types.Func
	Sites   []AllocSite
	Callees []AllocCall
}

// AllocSummaryOf returns the memoized allocation summary of fn,
// computing it on first request from the declaration the run-wide call
// graph indexed. The second result is false when fn was not declared
// in any package of this Run (standard library, interface methods) —
// callers decide how to treat opaque callees.
func (p *Pass) AllocSummaryOf(fn *types.Func) (*AllocSummary, bool) {
	if s, ok := p.facts.allocs[fn]; ok {
		return s, s != nil
	}
	cg := p.facts.callgraph
	decl := cg.DeclOf(fn)
	info := cg.InfoOf(fn)
	if decl == nil || decl.Body == nil || info == nil {
		p.facts.allocs[fn] = nil
		return nil, false
	}
	s := summarizeAllocs(fn, decl, info)
	p.facts.allocs[fn] = s
	return s, true
}

// ClaimAllocSite records pos as reported and returns true exactly once
// per Run. Interprocedural analyzers report at the allocation site —
// which may be in a different package than the Pass — so without a
// run-wide claim, two annotated roots reaching the same site would
// duplicate the diagnostic.
func (p *Pass) ClaimAllocSite(pos token.Pos) bool {
	if p.facts.allocClaimed[pos] {
		return false
	}
	p.facts.allocClaimed[pos] = true
	return true
}

// HasDirective reports whether the comment group carries the given
// machine directive (e.g. "asic:hotpath"). Directives are comments of
// the form "//name" with no space; CommentGroup.Text strips them, so
// the raw list is scanned.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == name || strings.HasPrefix(text, name+" ") {
			return true
		}
	}
	return false
}

// allocators curates standard-library callees that allocate on every
// call, keyed by go/types full name. Module-local callees are followed
// through their own summaries instead; this list covers the bodies the
// call graph cannot see. fmt is handled wholesale in summarizeAllocs.
var allocators = map[string]string{
	"errors.New":          "errors.New allocates",
	"strconv.Itoa":        "strconv.Itoa allocates its string",
	"strconv.FormatInt":   "strconv.FormatInt allocates its string",
	"strconv.FormatFloat": "strconv.FormatFloat allocates its string",
	"strconv.Quote":       "strconv.Quote allocates its string",
	"strings.Join":        "strings.Join allocates its string",
	"strings.Repeat":      "strings.Repeat allocates its string",
	"strings.Split":       "strings.Split allocates a slice",
	"strings.Fields":      "strings.Fields allocates a slice",
	"strings.Replace":     "strings.Replace allocates its string",
	"strings.ReplaceAll":  "strings.ReplaceAll allocates its string",
	"strings.ToUpper":     "strings.ToUpper allocates its string",
	"strings.ToLower":     "strings.ToLower allocates its string",
	"sort.Slice":          "sort.Slice allocates (boxes the slice and takes a closure)",
	"sort.SliceStable":    "sort.SliceStable allocates (boxes the slice and takes a closure)",
	"time.After":          "time.After allocates a timer and channel",
	"time.NewTimer":       "time.NewTimer allocates",
	"time.NewTicker":      "time.NewTicker allocates",
	"context.WithCancel":  "context.WithCancel allocates",
	"context.WithTimeout": "context.WithTimeout allocates",
	"context.WithValue":   "context.WithValue allocates",
}

// summarizeAllocs walks one function body and classifies its allocation
// machinery. Function-literal bodies are included (their statements run
// on behalf of this function when the literal is invoked), and a
// literal that captures enclosing variables is itself a closure
// allocation site.
func summarizeAllocs(fn *types.Func, decl *ast.FuncDecl, info *types.Info) *AllocSummary {
	s := &AllocSummary{Fn: fn}
	seenCallee := make(map[*types.Func]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			s.add(n.Pos(), "goroutine launch allocates a stack")

		case *ast.FuncLit:
			if capturesLocals(n, decl, info) {
				s.add(n.Pos(), "closure captures enclosing variables (heap-allocated environment)")
			}

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					s.add(n.Pos(), "address of composite literal escapes to the heap")
				}
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstantString(info, n) {
				s.add(n.Pos(), "string concatenation allocates")
			}

		case *ast.CallExpr:
			summarizeCall(n, s, info, seenCallee)
		}
		return true
	})
	return s
}

func (s *AllocSummary) add(pos token.Pos, what string) {
	s.Sites = append(s.Sites, AllocSite{Pos: pos, What: what})
}

// summarizeCall classifies one call expression: builtin allocators
// (make, new, append), string/byte conversions, fmt and curated stdlib
// allocators, interface boxing of its arguments, and module-local
// callees for propagation.
func summarizeCall(call *ast.CallExpr, s *AllocSummary, info *types.Info, seen map[*types.Func]bool) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				s.add(call.Pos(), fmt.Sprintf("make of %s allocates", typeLabel(info, call.Args[0])))
			case "new":
				s.add(call.Pos(), fmt.Sprintf("new(%s) allocates", typeLabel(info, call.Args[0])))
			case "append":
				s.add(call.Pos(), fmt.Sprintf("append may grow %s", types.ExprString(call.Args[0])))
			}
			return
		}
	}

	// Conversions: string([]byte), []byte(string), string([]rune)...
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			if isStringByteConversion(to, from) {
				s.add(call.Pos(), fmt.Sprintf("conversion %s(%s) copies and allocates",
					types.TypeString(to, nil), types.ExprString(call.Args[0])))
			}
		}
		return
	}

	fn := cfg.Callee(info, call)
	if fn != nil {
		full := fn.FullName()
		switch {
		case strings.HasPrefix(full, "fmt."):
			s.add(call.Pos(), full+" allocates (formatting machinery and boxed arguments)")
		case allocators[full] != "":
			s.add(call.Pos(), allocators[full])
		default:
			if !seen[fn] {
				seen[fn] = true
				s.Callees = append(s.Callees, AllocCall{Pos: call.Pos(), Callee: fn})
			}
			boxedArgs(call, fn, s, info)
		}
		return
	}
	// Unresolvable calls (function values): still check boxing against
	// the static signature when one is known.
	if sig, ok := typeUnderlying(info.TypeOf(call.Fun)).(*types.Signature); ok {
		boxedSigArgs(call, sig, s, info)
	}
}

// boxedArgs flags concrete, non-pointer-shaped arguments passed to
// interface parameters: storing such a value in an interface heap-boxes
// it. fmt and the curated allocators are already flagged wholesale, so
// this fires for the quiet cases — a slice handed to sort.Interface, a
// struct passed as any.
func boxedArgs(call *ast.CallExpr, fn *types.Func, s *AllocSummary, info *types.Info) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	boxedSigArgs(call, sig, s, info)
}

func boxedSigArgs(call *ast.CallExpr, sig *types.Signature, s *AllocSummary, info *types.Info) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic():
			last := params.At(params.Len() - 1).Type()
			sl, ok := last.(*types.Slice)
			if !ok {
				continue
			}
			if call.Ellipsis.IsValid() {
				pt = last
			} else {
				pt = sl.Elem()
			}
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isPointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue // nil interface word, nothing boxed
		}
		// Constants box into static data; variables allocate.
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			continue
		}
		if bl, ok := arg.(*ast.BasicLit); ok {
			_ = bl
			continue
		}
		s.add(arg.Pos(), fmt.Sprintf("interface boxing of %s (%s) allocates",
			types.ExprString(arg), types.TypeString(at, nil)))
	}
}

// capturesLocals reports whether lit references variables declared in
// the enclosing function but outside the literal — the captures that
// force a heap-allocated closure environment.
func capturesLocals(lit *ast.FuncLit, decl *ast.FuncDecl, info *types.Info) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared inside the enclosing decl but before/outside the lit.
		if v.Pos() >= decl.Pos() && v.Pos() < decl.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured = true
			return false
		}
		return true
	})
	return captured
}

func isNonConstantString(info *types.Info, bin *ast.BinaryExpr) bool {
	t := info.TypeOf(bin)
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return false
	}
	if tv, ok := info.Types[bin]; ok && tv.Value != nil {
		return false // constant-folded at compile time
	}
	return true
}

func isStringByteConversion(to, from types.Type) bool {
	if from == nil {
		return false
	}
	toStr := isBasicString(to)
	fromStr := isBasicString(from)
	toBytes := isByteOrRuneSlice(to)
	fromBytes := isByteOrRuneSlice(from)
	return (toStr && fromBytes) || (toBytes && fromStr)
}

func isBasicString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t fit an interface word
// without boxing: pointers, channels, maps, funcs and unsafe pointers.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func typeUnderlying(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func typeLabel(info *types.Info, e ast.Expr) string {
	if t := info.TypeOf(e); t != nil {
		return types.TypeString(t, nil)
	}
	return types.ExprString(e)
}
