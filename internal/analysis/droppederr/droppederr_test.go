package droppederr_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/droppederr"
)

func TestDroppedErr(t *testing.T) {
	atest.Run(t, droppederr.Analyzer, "bad", atest.Config{})
}
