// Package fixture exercises the droppederr analyzer: error returns lost
// as bare statements, defers, go statements or _-discards are flagged,
// while handled errors and the exempt fmt/in-memory-writer callees pass.
package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func value() (int, error) { return 0, nil }

func drops(f *os.File) {
	mayFail()       // flagged: bare statement
	defer f.Close() // flagged: deferred call
	go mayFail()    // flagged: go statement

	v, _ := value() // flagged: tuple discard
	_ = v           // fine: v is an int, not an error
	_ = mayFail()   // flagged: positional discard

	fmt.Println("ok") // exempt by contract
	var sb strings.Builder
	sb.WriteString("ok") // exempt by contract

	if err := mayFail(); err != nil { // handled: fine
		fmt.Println(err)
	}
}
