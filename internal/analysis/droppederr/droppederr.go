// Package droppederr flags discarded error returns inside internal/
// packages.
//
// In the explorer's hot paths an evaluation error that is silently
// swallowed does not crash anything — it just removes a design point from
// the swept space, quietly biasing the Pareto frontier and every TCO
// figure derived from it. Errors must be handled, propagated, or
// explicitly waved through with a //lint:ignore reason.
package droppederr

import (
	"go/ast"
	"go/types"
	"strings"

	"asiccloud/internal/analysis"
)

// Analyzer is the droppederr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "droppederr",
	Doc: "flags error returns discarded with _ or dropped by calling a function as a bare " +
		"statement inside internal/ packages; handle, return, or //lint:ignore with a reason",
	Match: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "internal/")
	},
	Run: run,
}

// exempt lists callees whose error return is noise by contract: the fmt
// print family (errors only on a broken io.Writer, and our writers are
// stdout/stderr or in-memory) and the never-failing in-memory writers.
var exempt = map[string]bool{
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,
	"(*strings.Builder).Write":       true,
	"(*strings.Builder).WriteByte":   true,
	"(*strings.Builder).WriteRune":   true,
	"(*strings.Builder).WriteString": true,
	"(*bytes.Buffer).Write":          true,
	"(*bytes.Buffer).WriteByte":      true,
	"(*bytes.Buffer).WriteRune":      true,
	"(*bytes.Buffer).WriteString":    true,
}

func run(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type()
	isErr := func(t types.Type) bool { return t != nil && types.Identical(t, errType) }

	// errResults returns the positions of error-typed results of call, or
	// nil if the call is exempt or returns no error.
	errResults := func(call *ast.CallExpr) []int {
		if name := calleeName(pass, call); name != "" && exempt[name] {
			return nil
		}
		sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
		if !ok {
			return nil // conversion or built-in
		}
		var idx []int
		for i := 0; i < sig.Results().Len(); i++ {
			if isErr(sig.Results().At(i).Type()) {
				idx = append(idx, i)
			}
		}
		return idx
	}

	checkBare := func(call *ast.CallExpr, how string) {
		if idx := errResults(call); len(idx) > 0 {
			pass.Reportf(call.Pos(), "error return of %s is dropped (%s); handle it, return it, or //lint:ignore with a reason",
				calleeLabel(pass, call), how)
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkBare(call, "call used as a bare statement")
				}
			case *ast.DeferStmt:
				checkBare(n.Call, "deferred call")
			case *ast.GoStmt:
				checkBare(n.Call, "go statement")
			case *ast.AssignStmt:
				checkAssign(pass, n, isErr, errResults)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags `_`-discarded error results in assignments, covering
// both the tuple form `v, _ := f()` and the positional form `_, _ = a, b`.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt,
	isErr func(types.Type) bool, errResults func(*ast.CallExpr) []int) {

	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple assignment from one call.
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		for _, i := range errResults(call) {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				pass.Reportf(as.Lhs[i].Pos(), "error result %d of %s is discarded with _; handle it, return it, or //lint:ignore with a reason",
					i, calleeLabel(pass, call))
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		rhs := ast.Unparen(as.Rhs[i])
		if !isErr(pass.TypeOf(rhs)) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && len(errResults(call)) == 0 {
			continue // exempt callee
		}
		pass.Reportf(lhs.Pos(), "error value is discarded with _; handle it, return it, or //lint:ignore with a reason")
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// calleeName resolves the fully-qualified name of the called function
// (e.g. "fmt.Println" or "(*strings.Builder).WriteString"), or "" when the
// callee is not a named function.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}

// calleeLabel is a short human label for diagnostics: the resolved name if
// available, otherwise a generic description.
func calleeLabel(pass *analysis.Pass, call *ast.CallExpr) string {
	if name := calleeName(pass, call); name != "" {
		return name
	}
	return "function call"
}
