// Package fixture exercises the floatcmp analyzer: run-time float
// equality is flagged (with an ApproxZero hint when one side is a zero
// literal), while integer comparisons, compiler-folded constant
// comparisons and justified //lint:ignore sites pass.
package fixture

type reading float64

func compare(a, b float64, c float32, r reading, n int) bool {
	if a == b { // flagged: ApproxEqual hint
		return true
	}
	if a != 0 { // flagged: ApproxZero hint
		return false
	}
	if 0.0 == b { // flagged: zero literal on the left
		return true
	}
	if c != 1.5 { // flagged: float32 counts too
		return false
	}
	if r == 2.5 { // flagged: named type with float underlying
		return true
	}
	if n == 3 { // integers compare exactly: fine
		return false
	}
	const x = 1.5
	const y = 3.0 / 2.0
	if x == y { // folded to a constant by the compiler: fine
		return true
	}
	//lint:ignore floatcmp zero is this fixture's assigned sentinel
	return a == 0
}
