// Package floatcmp flags exact equality comparisons between float-typed
// expressions.
//
// The explorer compares derived physical quantities (temperatures, watts,
// TCO dollars) that have travelled through long chains of floating-point
// arithmetic; `==` on such values silently depends on rounding behavior
// and breaks under any reordering optimization. Outside test files, float
// equality must either go through units.ApproxEqual / units.ApproxZero
// with an explicit tolerance, or carry a //lint:ignore justification for
// the rare exact sentinel check.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"asiccloud/internal/analysis"
)

// Analyzer is the floatcmp analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flags == and != between float-typed expressions outside _test.go; " +
		"use units.ApproxEqual / units.ApproxZero with an explicit tolerance",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) || !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			// A comparison whose value the compiler already folds to a
			// constant (e.g. two untyped constants) cannot drift at run
			// time; skip it.
			if tv, ok := pass.Info.Types[be]; ok && tv.Value != nil {
				return true
			}
			hint := "units.ApproxEqual"
			if isZeroLiteral(be.X) || isZeroLiteral(be.Y) {
				hint = "units.ApproxZero"
			}
			pass.Reportf(be.OpPos, "exact float comparison %s; use %s with an explicit tolerance", be.Op, hint)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok {
		return false
	}
	return lit.Value == "0" || lit.Value == "0.0" || lit.Value == "0."
}
