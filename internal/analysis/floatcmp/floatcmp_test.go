package floatcmp_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	atest.Run(t, floatcmp.Analyzer, "bad", atest.Config{})
}
