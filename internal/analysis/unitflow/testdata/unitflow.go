// Package fixture exercises unitflow: doc-annotated unit sources,
// conversion helpers, local propagation, and the flagged mixes.
package fixture

// The conversion helpers mirror internal/units signatures; unitflow
// matches them by name so fixtures stay stdlib-only.

// WToMW converts watts to megawatts.
func WToMW(w float64) float64 { return w * 1e-6 }

// HzToMHz converts a frequency in Hz to MHz.
func HzToMHz(hz float64) float64 { return hz * 1e-6 }

// UM2ToMM2 converts an area in µm² to mm².
func UM2ToMM2(um2 float64) float64 { return um2 * 1e-6 }

// CtoK converts Celsius to Kelvin.
func CtoK(c float64) float64 { return c + 273.15 }

type board struct {
	// PowerW is the board's power draw, in W.
	PowerW float64
	// SensorMW is the power telemetry reading, in mW.
	SensorMW float64
	// AreaMM2 is the silicon area, in mm².
	AreaMM2 float64
	// CellUM2 is the per-bitcell area, in µm².
	CellUM2 float64
	// ClockHz is the core clock, in Hz.
	ClockHz float64
	// ClockMHz is the displayed clock, in MHz.
	ClockMHz float64
	// TempK is the junction temperature, in K.
	TempK float64
	// AmbientC is the inlet temperature, in °C.
	AmbientC float64
}

// mixes seeds the classic telemetry bug: the sensor reports mW.
func mixes(b board) float64 {
	return b.PowerW + b.SensorMW // flagged: W + mW
}

// mixesAreas adds bitcell µm² onto a die-level mm² total: flagged.
func mixesAreas(b board) float64 {
	return b.AreaMM2 + b.CellUM2
}

// mixedCompare compares Hz against MHz: flagged.
func mixedCompare(b board) bool {
	return b.ClockHz > b.ClockMHz
}

// mixedTemp subtracts °C from K: flagged.
func mixedTemp(b board) float64 {
	return b.TempK - b.AmbientC
}

// okSum adds same-unit quantities: clean.
func okSum(b board) float64 {
	return b.PowerW + b.PowerW
}

// okLiteral lets a bare literal adapt to its partner: clean.
func okLiteral(b board) float64 {
	return b.PowerW + 5
}

// viaLocal carries units through locals before mixing: flagged.
func viaLocal(b board) float64 {
	w := b.PowerW
	telemetry := b.SensorMW
	return w + telemetry
}

// doubleConvert feeds an already-converted MHz value back through the
// Hz→MHz helper: flagged.
func doubleConvert(b board) float64 {
	return HzToMHz(b.ClockMHz)
}

// okConvert converts before combining: clean.
func okConvert(b board) float64 {
	return HzToMHz(b.ClockHz) + b.ClockMHz
}

// storeMismatch writes an MHz value into the Hz field: flagged; the
// properly converted Kelvin store is clean.
func storeMismatch(b *board) {
	b.ClockHz = b.ClockMHz
	b.TempK = CtoK(b.AmbientC)
}

// composite builds a board with an MHz value in the Hz field: flagged.
func composite() board {
	return board{
		ClockHz: HzToMHz(1e9),
		TempK:   CtoK(25),
	}
}

// unstable's local receives conflicting units, so it degrades to
// unknown and nothing downstream is flagged: clean by conservatism.
func unstable(b board) float64 {
	v := b.PowerW
	v = b.SensorMW
	return v + b.PowerW
}

// mulIsFree multiplies across dimensions, which is legitimate: clean.
func mulIsFree(b board) float64 {
	return b.PowerW * b.SensorMW
}
