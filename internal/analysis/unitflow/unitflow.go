// Package unitflow propagates physical units through expressions and
// flags mixed-unit arithmetic.
//
// The repository's quantities carry their units in doc comments (the
// unitdoc analyzer enforces that) and cross scales only through the
// helpers in internal/units. That makes units statically checkable: a
// declaration documented "in W" is a watt source, WToMW's result is a
// megawatt, and a local initialized from either inherits the unit. The
// analyzer runs a small taint pass per file — doc-annotated fields,
// constants and package variables plus conversion-helper results seed
// units; assignments propagate them into locals (only when every
// inferable assignment to the local agrees); additions, subtractions
// and comparisons then require both operands to agree, conversion
// helpers require their argument's unit to match the conversion's
// domain, and assignments or composite-literal entries into documented
// targets require the value to match the declaration.
//
// A declaration's unit is the vocabulary token following the word "in"
// in its doc comment ("power drawn, in W"); declarations with zero or
// several such tokens stay unknown, and unknown operands are never
// flagged — the analyzer only reports provable mixes such as adding a
// milliwatt reading to a watt total. Multiplication and division
// legitimately change dimension, so their results are unknown, and a
// bare numeric literal adapts to the unit of its partner operand.
package unitflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/cfg"
)

// Analyzer is the unitflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "unitflow",
	Doc: "flags unit-mixing arithmetic (W vs mW, mm² vs µm², Hz vs MHz, K vs °C) by propagating " +
		"doc-comment units and internal/units conversions through expressions",
	Match: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "internal/")
	},
	Run: run,
}

// vocab maps doc-comment tokens to canonical unit names. Spelled-out
// ASCII variants (mm2) and typographic forms (mm²) collapse together.
var vocab = map[string]string{
	"W": "W", "mW": "mW", "kW": "kW", "MW": "MW",
	"Hz": "Hz", "kHz": "kHz", "MHz": "MHz", "GHz": "GHz",
	"K": "K", "°C": "°C",
	"mm²": "mm²", "mm2": "mm²",
	"µm²": "µm²", "µm2": "µm²", "um²": "µm²", "um2": "µm²",
	"m²": "m²", "m2": "m²",
	"m": "m", "mm": "mm",
	"H/s": "H/s", "kH/s": "kH/s", "MH/s": "MH/s", "GH/s": "GH/s", "TH/s": "TH/s",
	"m³/s": "m³/s", "m3/s": "m³/s", "CFM": "CFM",
}

// conversion describes one internal/units helper: its argument's unit
// and its result's unit. Helpers are matched by bare name with a
// float64 → float64 signature, not by import path, so fixtures (which
// may only import the standard library) exercise the same code path as
// the real package.
type conversion struct{ in, out string }

var conversions = map[string]conversion{
	"MM2ToM2":  {"mm²", "m²"},
	"M2ToMM2":  {"m²", "mm²"},
	"UM2ToMM2": {"µm²", "mm²"},
	"WToMW":    {"W", "MW"},
	"HzToMHz":  {"Hz", "MHz"},
	"MHzToHz":  {"MHz", "Hz"},
	"GHsToHs":  {"GH/s", "H/s"},
	"HsToGHs":  {"H/s", "GH/s"},
	"HsToMHs":  {"H/s", "MH/s"},
	"MToMM":    {"m", "mm"},
	"CFMToM3s": {"CFM", "m³/s"},
	"M3sToCFM": {"m³/s", "CFM"},
	"CtoK":     {"°C", "K"},
	"KtoC":     {"K", "°C"},
}

// docUnit extracts the unit a doc comment declares: the vocabulary
// token directly after the word "in", required to be unambiguous.
func docUnit(text string) string {
	fields := strings.Fields(text)
	unit := ""
	for i := 1; i < len(fields); i++ {
		if fields[i-1] != "in" {
			continue
		}
		tok := strings.Trim(fields[i], "().,;:")
		u, ok := vocab[tok]
		if !ok {
			continue
		}
		if unit != "" && unit != u {
			return "" // ambiguous declaration: trust nothing
		}
		unit = u
	}
	return unit
}

type checker struct {
	pass *analysis.Pass
	// locals holds units inferred for function-local variables; "" means
	// conflicting or no inferable assignments.
	locals map[types.Object]string
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, locals: make(map[types.Object]string)}
	// Two propagation rounds let a unit flow through a chain of local
	// assignments (w := s.PowerW; total := w) before checking.
	for round := 0; round < 2; round++ {
		for _, f := range pass.Files {
			c.collectLocals(f)
		}
	}
	for _, f := range pass.Files {
		c.check(f)
	}
	return nil
}

// collectLocals infers units for local variables from their
// assignments. A local keeps a unit only while every assignment with an
// inferable unit agrees; one conflicting store makes it unknown for the
// whole analysis (recorded as "").
func (c *checker) collectLocals(f *ast.File) {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := c.pass.Info.Defs[id]
		if obj == nil {
			obj = c.pass.Info.Uses[id]
		}
		if !isLocalVar(c.pass, obj) {
			return
		}
		u := c.unitOf(rhs)
		if u == "" {
			return
		}
		if prev, seen := c.locals[obj]; seen && prev != u {
			c.locals[obj] = "" // disagreeing stores: unit is not stable
			return
		}
		c.locals[obj] = u
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
}

// isLocalVar reports whether obj is a function-local variable (not a
// field, parameter of unknown unit is still local but starts unknown,
// not a package-level declaration — those carry doc units instead).
func isLocalVar(pass *analysis.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() != nil && v.Parent() != pass.Pkg.Scope()
}

// unitOf resolves the unit of an expression, or "" when unknown.
func (c *checker) unitOf(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return c.objUnit(c.pass.Info.Uses[e])
	case *ast.SelectorExpr:
		return c.objUnit(c.pass.Info.Uses[e.Sel])
	case *ast.CallExpr:
		if conv, ok := conversionOf(c.pass, e); ok {
			return conv.out
		}
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return c.unitOf(e.X)
		}
	case *ast.BinaryExpr:
		if e.Op != token.ADD && e.Op != token.SUB {
			return "" // ×, ÷ and friends change dimension
		}
		lu, ru := c.unitOf(e.X), c.unitOf(e.Y)
		switch {
		case lu == ru:
			return lu
		case ru == "" && isNumericLit(e.Y):
			return lu
		case lu == "" && isNumericLit(e.X):
			return ru
		}
	}
	return ""
}

// objUnit resolves a referenced object's unit: an inferred local unit,
// or the doc-comment unit of a field/constant/package variable.
func (c *checker) objUnit(obj types.Object) string {
	if obj == nil {
		return ""
	}
	if u, ok := c.locals[obj]; ok {
		return u
	}
	return docUnit(c.pass.DocOf(obj))
}

// conversionOf matches a call against the internal/units helper table:
// right name, float64 → float64.
func conversionOf(pass *analysis.Pass, call *ast.CallExpr) (conversion, bool) {
	fn := cfg.Callee(pass.Info, call)
	if fn == nil {
		return conversion{}, false
	}
	conv, ok := conversions[fn.Name()]
	if !ok {
		return conversion{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return conversion{}, false
	}
	if !isFloat64(sig.Params().At(0).Type()) || !isFloat64(sig.Results().At(0).Type()) {
		return conversion{}, false
	}
	return conv, true
}

func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func isNumericLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && (lit.Kind == token.INT || lit.Kind == token.FLOAT)
}

// comparable binary operators that require unit agreement.
var unitSensitiveOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
}

// check walks a file and reports provable unit mixes.
func (c *checker) check(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if !unitSensitiveOps[n.Op] {
				return true
			}
			lu, ru := c.unitOf(n.X), c.unitOf(n.Y)
			if lu != "" && ru != "" && lu != ru {
				c.pass.Reportf(n.OpPos, "expression mixes units %s and %s; convert through "+
					"internal/units before combining", lu, ru)
			}
		case *ast.CallExpr:
			conv, ok := conversionOf(c.pass, n)
			if !ok || len(n.Args) != 1 {
				return true
			}
			if au := c.unitOf(n.Args[0]); au != "" && au != conv.in {
				c.pass.Reportf(n.Args[0].Pos(), "argument is in %s but %s converts from %s; "+
					"this double- or mis-converts the quantity", au, callName(n), conv.in)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				c.checkStore(n.Lhs[i], n.Rhs[i])
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.Info.Uses[key]
				du := docUnit(c.pass.DocOf(obj))
				if du == "" {
					continue
				}
				if vu := c.unitOf(kv.Value); vu != "" && vu != du {
					c.pass.Reportf(kv.Value.Pos(), "field %s is documented in %s but the value "+
						"is in %s; convert through internal/units", key.Name, du, vu)
				}
			}
		}
		return true
	})
}

// checkStore flags a store of a known-unit value into a doc-annotated
// target of a different unit. Locals are excluded: their units are
// inferred from these very stores.
func (c *checker) checkStore(lhs, rhs ast.Expr) {
	var obj types.Object
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj = c.pass.Info.Uses[l]
		if obj == nil {
			obj = c.pass.Info.Defs[l]
		}
	case *ast.SelectorExpr:
		obj = c.pass.Info.Uses[l.Sel]
	default:
		return
	}
	if obj == nil || isLocalVar(c.pass, obj) {
		return
	}
	du := docUnit(c.pass.DocOf(obj))
	if du == "" {
		return
	}
	if ru := c.unitOf(rhs); ru != "" && ru != du {
		c.pass.Reportf(rhs.Pos(), "%s is documented in %s but the assigned value is in %s; "+
			"convert through internal/units", obj.Name(), du, ru)
	}
}

// callName renders the called function for diagnostics.
func callName(call *ast.CallExpr) string {
	if fn := ast.Unparen(call.Fun); fn != nil {
		return types.ExprString(fn)
	}
	return "conversion"
}
