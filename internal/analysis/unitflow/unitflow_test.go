package unitflow_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/unitflow"
)

func TestUnitflow(t *testing.T) {
	atest.Run(t, unitflow.Analyzer, "unitflow", atest.Config{})
}
