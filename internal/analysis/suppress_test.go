package analysis_test

import (
	"bytes"
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"asiccloud/internal/analysis"
)

// funcFlagger builds a toy analyzer that reports every function
// declaration, giving the suppression machinery something deterministic
// to filter.
func funcFlagger(name string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "test analyzer flagging every function declaration",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "function %s declared", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

// intFlagger reports every integer literal 42, giving the range-aware
// suppression resolution diagnostics inside composite literals, case
// clauses and multi-line statements.
func intFlagger(name string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "test analyzer flagging every 42 literal",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if lit, ok := n.(*ast.BasicLit); ok && lit.Value == "42" {
						pass.Reportf(lit.Pos(), "literal 42")
					}
					return true
				})
			}
			return nil
		},
	}
}

// silent is an analyzer that exists (so directives may name it) but never
// reports; a valid directive naming it must stay inert, not error.
func silent(name string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "test analyzer that never reports",
		Run:  func(pass *analysis.Pass) error { return nil },
	}
}

func TestSuppression(t *testing.T) {
	pkg, err := analysis.CheckSource("asiccloud/internal/fixture",
		[]string{filepath.Join("testdata", "suppress.go")})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg},
		[]*analysis.Analyzer{funcFlagger("testflag"), silent("otherflag")})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	var buf bytes.Buffer
	if err := analysis.WriteText(&buf, diags, ""); err != nil {
		t.Fatalf("formatting diagnostics: %v", err)
	}
	got := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")

	want := []string{
		// plain() has no directive.
		`testdata/suppress.go:6:1: testflag: function plain declared`,
		// unknown(): the ghost directive is reported and does not suppress.
		`testdata/suppress.go:16:1: lint: //lint:ignore names unknown analyzer "ghostflag"`,
		`testdata/suppress.go:17:1: testflag: function unknown declared`,
		// noReason(): reason is mandatory; directive reported, no suppression.
		`testdata/suppress.go:19:1: lint: //lint:ignore directive is missing a reason`,
		`testdata/suppress.go:20:1: testflag: function noReason declared`,
		// malformed(): no analyzer list at all.
		`testdata/suppress.go:22:1: lint: malformed //lint:ignore: expected "//lint:ignore analyzer[,analyzer] reason"`,
		`testdata/suppress.go:23:1: testflag: function malformed declared`,
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostics mismatch\n--- got ---\n%s\n--- want ---\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
	// standalone, trailing and comma must not appear at all.
	for _, name := range []string{"standalone", "trailing", "comma"} {
		if strings.Contains(buf.String(), name) {
			t.Errorf("suppressed function %s still reported:\n%s", name, buf.String())
		}
	}
}

// TestSuppressionStacked pins three coverage cases: two stacked
// directives (different analyzers) must BOTH extend over the construct
// below the stack; a directive above a `go` statement covers the whole
// spawned literal; a directive above a select comm clause covers the
// clause body and nothing past it.
func TestSuppressionStacked(t *testing.T) {
	pkg, err := analysis.CheckSource("asiccloud/internal/fixture",
		[]string{filepath.Join("testdata", "suppress_stack.go")})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg},
		[]*analysis.Analyzer{intFlagger("aflag"), intFlagger("bflag")})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	var buf bytes.Buffer
	if err := analysis.WriteText(&buf, diags, ""); err != nil {
		t.Fatalf("formatting diagnostics: %v", err)
	}
	got := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	want := []string{
		// goStmt and selectClause carry no bflag directive, so bflag
		// reports there; aflag only reports on the uncovered default
		// clause. Nothing from stacked() survives.
		`testdata/suppress_stack.go:16:7: bflag: literal 42`,
		`testdata/suppress_stack.go:25:13: bflag: literal 42`,
		`testdata/suppress_stack.go:27:9: aflag: literal 42`,
		`testdata/suppress_stack.go:27:9: bflag: literal 42`,
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostics mismatch\n--- got ---\n%s\n--- want ---\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
}

// TestSuppressionRanges pins the range-aware semantics: a directive on
// the line preceding a multi-line composite-literal element, case
// clause, or statement suppresses diagnostics anywhere inside that
// construct — and nowhere past it.
func TestSuppressionRanges(t *testing.T) {
	pkg, err := analysis.CheckSource("asiccloud/internal/fixture",
		[]string{filepath.Join("testdata", "suppress_range.go")})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg},
		[]*analysis.Analyzer{intFlagger("intflag")})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	var buf bytes.Buffer
	if err := analysis.WriteText(&buf, diags, ""); err != nil {
		t.Fatalf("formatting diagnostics: %v", err)
	}
	got := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	want := []string{
		// The second table element carries no directive.
		`testdata/suppress_range.go:18:6: intflag: literal 42`,
		// case 2 is outside the case-1 clause the directive covers.
		`testdata/suppress_range.go:29:10: intflag: literal 42`,
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostics mismatch\n--- got ---\n%s\n--- want ---\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
}
