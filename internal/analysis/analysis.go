// Package analysis is a self-contained mini framework for domain-aware
// static analysis of this repository. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer value with a Run function
// over a typed Pass — but is built entirely on the standard library
// (go/ast, go/parser, go/token, go/types) so that the lint gate works in
// the offline build environment with zero external modules.
//
// The framework supplies five things:
//
//   - a Loader that parses and type-checks every package in the module,
//     resolving module-internal imports itself and standard-library
//     imports through the shipped GOROOT sources (load.go);
//   - the Analyzer/Pass/Diagnostic vocabulary in this file;
//   - a Runner that applies a set of analyzers to a set of packages and
//     post-filters the diagnostics through //lint:ignore suppression
//     directives (run.go, suppress.go);
//   - run-wide dataflow facts shared by all analyzers: lazily built
//     per-function control-flow graphs, a module-local call graph, a
//     doc-comment index, and memoized per-function allocation summaries
//     for interprocedural propagation, exposed as Pass.CFG,
//     Pass.CallGraph, Pass.DocOf and Pass.AllocSummaryOf (facts.go and
//     allocfacts.go, backed by internal/analysis/cfg);
//   - text and JSON diagnostic formatting (flat and grouped-by-analyzer)
//     shared by cmd/asiclint and the self-test (run.go).
//
// The domain analyzers themselves live in subpackages (unitconv, floatcmp,
// droppederr, unitdoc, ctxflow, goroleak, lockheld, unitflow, hotalloc,
// spanend, obskeys) and the curated repository-wide suite in
// internal/analysis/suite.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. It must be a single lowercase word.
	Name string

	// Doc is a one-paragraph description of what the analyzer flags and
	// why; shown by `asiclint -list`.
	Doc string

	// Match optionally restricts the analyzer to packages whose import
	// path satisfies it. A nil Match runs the analyzer everywhere. The
	// runner consults Match; tests that drive Run directly bypass it.
	Match func(pkgPath string) bool

	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// A Pass is the unit of work handed to an analyzer: one fully type-checked
// package plus a sink for diagnostics and the run-wide dataflow facts
// (per-function CFGs, the call graph and the doc index; see facts.go).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	facts  *Facts
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}
