// Package loadpkg is a loader-test fixture: exactly one buildable file
// (this one) accompanied by a build-tag-gated file, an in-package test
// file and an external-package test file, none of which may be loaded.
package loadpkg

// A is the only symbol the loader should see in this package.
const A = 1
