// Package loadpkg_test would clash with loadpkg if the loader ever
// parsed external test packages alongside the package under test.
package loadpkg_test

const ExternalTestSymbol = 4
