//go:build devtools

package loadpkg

// Tagged must never be visible: the devtools build tag is not set, so
// build.Default.MatchFile rejects this file.
const Tagged = 2
