package loadpkg

// InPackageTestSymbol lives in an in-package _test.go file; the loader
// skips test files, so it must not be loaded.
const InPackageTestSymbol = 3
