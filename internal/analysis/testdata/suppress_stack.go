// Fixture for stacked-directive and go/select suppression coverage.
package fixture

func stacked() []int {
	//lint:ignore aflag stacked directives must both reach the literal below
	//lint:ignore bflag stacked directives must both reach the literal below
	xs := []int{
		42,
	}
	return xs
}

func goStmt() {
	//lint:ignore aflag the spawned literal is one statement
	go func() {
		_ = 42
	}()
}

func selectClause(ch chan int) int {
	out := 0
	select {
	//lint:ignore aflag the comm clause is covered through its body
	case v := <-ch:
		out = v + 42
	default:
		out = 42 // uncovered: reported
	}
	return out
}
