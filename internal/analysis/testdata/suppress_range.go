// Package fixture exercises range-aware //lint:ignore handling: a
// directive preceding a multi-line construct (composite-literal element,
// case clause, statement) covers the whole construct, not just the next
// line.
package fixture

// table's directive sits above a multi-line composite-literal element;
// the flagged literals inside it are on later lines.
var table = []struct {
	a, b int
}{
	//lint:ignore intflag fixture: element spans several lines
	{
		a: 42,
		b: 42,
	},
	{
		a: 42, // this element has no directive and stays flagged
		b: 7,
	},
}

func pick(x int) int {
	switch x {
	//lint:ignore intflag fixture: whole case clause is covered
	case 1:
		return 42
	case 2:
		return 42 // flagged: the clause above does not cover this one
	}
	//lint:ignore intflag fixture: multi-line statement is covered
	y := sum(
		42,
		42,
	)
	return y
}

func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
