// Package fixture exercises //lint:ignore handling: the standalone,
// trailing and comma-list forms suppress, while unknown analyzer names,
// missing reasons and malformed directives are themselves reported.
package fixture

func plain() {}

//lint:ignore testflag fixture exercises the standalone form
func standalone() {}

func trailing() {} //lint:ignore testflag fixture exercises the trailing form

//lint:ignore testflag,otherflag fixture exercises the comma list
func comma() {}

//lint:ignore ghostflag the named analyzer does not exist
func unknown() {}

//lint:ignore testflag
func noReason() {}

//lint:ignore
func malformed() {}
