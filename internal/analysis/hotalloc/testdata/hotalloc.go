// Package fixture exercises hotalloc: allocation machinery inside
// //asic:hotpath functions, propagation through the local call graph
// with the depth bound, run-wide dedup of shared callees, and the
// //lint:ignore escape hatch.
package fixture

import "fmt"

type config struct {
	voltage float64
	chips   int
}

// hotDirect is an annotated hot root whose body allocates four ways:
// map make, append growth, fmt call, string concatenation.
//
//asic:hotpath
func hotDirect(names []string, cfgs []config) string {
	seen := make(map[string]bool) // flagged: make map
	out := ""
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		out = out + n // flagged: string concatenation
	}
	cfgs = append(cfgs, config{voltage: 0.9}) // flagged: append growth
	return fmt.Sprintf("%s/%d", out, len(cfgs)) // flagged: fmt call
}

// hotIndirect reaches helper's allocation through one call-graph hop.
//
//asic:hotpath
func hotIndirect(n int) []float64 {
	return scratchless(n)
}

// hotShared reaches the same helper; the shared allocation site must be
// reported once per run, not once per root.
//
//asic:hotpath
func hotShared(n int) []float64 {
	return scratchless(n + 1)
}

func scratchless(n int) []float64 {
	return make([]float64, n) // flagged once: make slice, via hotIndirect
}

// hotClosure allocates a closure environment by capturing v; the
// non-capturing literal below it is free.
//
//asic:hotpath
func hotClosure(v float64) func() float64 {
	f := func() float64 { return v } // flagged: closure captures v
	g := func() float64 { return 0 } // clean: captures nothing
	_ = g
	return f
}

// hotBoxed boxes a concrete struct into an any parameter.
//
//asic:hotpath
func hotBoxed(c config) {
	sink(c) // flagged: interface boxing of c
	sink(nil)
	p := &c
	sink(p) // clean: pointers are interface-word shaped
}

func sink(v any) { _ = v }

// hotEscape takes the address of a composite literal.
//
//asic:hotpath
func hotEscape() *config {
	return &config{chips: 8} // flagged: escaping composite literal
}

// hotJustified carries a reviewed suppression: the append is bounded by
// the frontier size and amortizes to zero.
//
//asic:hotpath
func hotJustified(frontier []config, c config) []config {
	frontier = append(frontier, c) //lint:ignore hotalloc bounded by frontier size; amortized zero growth
	return frontier
}

// hotDeep: hop4 sits exactly at the depth bound and is still scanned;
// hop5 is one hop beyond and its allocation is invisible by contract.
//
//asic:hotpath
func hotDeep() { hop1() }

func hop1() { hop2() }
func hop2() { hop3() }
func hop3() { hop4() }
func hop4() {
	_ = make([]int, 4) // flagged: depth 4 is within the bound
	hop5()
}
func hop5() {
	_ = make([]int, 5) // clean: beyond maxDepth, invisible by contract
}

// hotWithBarrier calls a validator declared cold: nothing behind the
// barrier is attributed to the hot root.
//
//asic:hotpath
func hotWithBarrier(names []string) error {
	if err := validate(names); err != nil {
		return err
	}
	return nil
}

// validate runs once per batch, before the per-item loop; its error
// formatting is off the hot path by review.
//
//asic:coldpath
func validate(names []string) error {
	if len(names) == 0 {
		return fmt.Errorf("empty batch of %d", len(names)) // clean: behind the coldpath barrier
	}
	return nil
}

// coldAlloc is not annotated: its allocations are nobody's business.
func coldAlloc() []int {
	xs := make([]int, 0, 8)
	xs = append(xs, 1)
	return xs
}
