// Package hotalloc enforces "no allocations on hot paths" as a checked
// contract instead of a benchmark regression.
//
// A function whose doc comment carries the //asic:hotpath directive
// declares itself allocation-sensitive: it is the inner loop of a
// design-space sweep, and the ROADMAP's configs/sec budget assumes it
// runs allocation-free in steady state. The analyzer computes a
// per-function allocation summary (composite literals taking the heap,
// append growth, map/chan/slice makes, closures capturing by
// reference, interface boxing at call sites, fmt calls and string
// conversions — see analysis.AllocSummaryOf) and propagates it through
// the module-local call graph from every annotated root, bounded at
// maxDepth hops with memoized summaries, so the cost of the check is
// one AST walk per function no matter how many roots reach it.
//
// Every allocation site reachable from a root is reported at the site
// itself — which is where the fix (preallocate, hoist, switch to a
// sentinel) or the justified //lint:ignore belongs — exactly once per
// run, even when several roots reach it. Standard-library callees are
// opaque: fmt and a curated allocator list are flagged at the call
// site, everything else is trusted silently (flagging what we cannot
// see produces noise, not speed).
//
// The //asic:coldpath directive is the reviewed inverse: a function so
// marked is a propagation barrier — its body and callees are not
// attributed to any hot root, because its work is amortized off the
// per-item path (validation that runs once per column, bookkeeping
// that runs once per sweep). Like //lint:ignore, the directive is a
// claim the reviewer signs, not something the analyzer verifies.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"asiccloud/internal/analysis"
)

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags allocation machinery reachable from //asic:hotpath functions through the " +
		"module-local call graph (bounded depth, memoized per-function summaries)",
	Match: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "internal/") || strings.Contains(pkgPath, "cmd/")
	},
	Run: run,
}

// maxDepth bounds propagation from a hot root through the call graph.
// The repository's hot paths are shallow by design (engine → server
// column → point flow → substrate helpers is four frames); allocations
// deeper than that are invisible to this check and belong to the
// -benchmem gate. DESIGN.md states the soundness argument.
const maxDepth = 4

// isColdPath reports whether fn's declaration carries //asic:coldpath,
// the reviewed barrier that stops propagation into amortized helpers.
func isColdPath(pass *analysis.Pass, fn *types.Func) bool {
	decl := pass.CallGraph().DeclOf(fn)
	return decl != nil && analysis.HasDirective(decl.Doc, "asic:coldpath")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !analysis.HasDirective(fd.Doc, "asic:hotpath") {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			propagate(pass, fn)
		}
	}
	return nil
}

// pathStep is one BFS frame: a function plus the human-readable call
// path that reached it from the root.
type pathStep struct {
	fn    *types.Func
	depth int
	path  string
}

// propagate walks the call graph breadth-first from root, reporting
// every allocation site of every function within maxDepth hops. Each
// function is visited once per root (cycle-safe) and each site is
// reported once per run (ClaimAllocSite), so overlapping roots stay
// quiet the second time.
func propagate(pass *analysis.Pass, root *types.Func) {
	visited := map[*types.Func]bool{root: true}
	work := []pathStep{{fn: root, depth: 0, path: root.Name()}}
	for len(work) > 0 {
		step := work[0]
		work = work[1:]
		sum, ok := pass.AllocSummaryOf(step.fn)
		if !ok {
			continue // opaque callee: stdlib or undeclared
		}
		for _, site := range sum.Sites {
			if !pass.ClaimAllocSite(site.Pos) {
				continue
			}
			if step.depth == 0 {
				pass.Reportf(site.Pos, "allocation in hot-path function %s: %s — preallocate or hoist "+
					"it out of the sweep, or //lint:ignore hotalloc with the amortization argument",
					step.path, site.What)
			} else {
				pass.Reportf(site.Pos, "allocation reachable from hot path %s (via %s): %s — preallocate "+
					"or hoist it out of the sweep, or //lint:ignore hotalloc with the amortization argument",
					root.Name(), step.path, site.What)
			}
		}
		if step.depth == maxDepth {
			continue
		}
		for _, call := range sum.Callees {
			if visited[call.Callee] {
				continue
			}
			visited[call.Callee] = true
			if isColdPath(pass, call.Callee) {
				continue
			}
			work = append(work, pathStep{
				fn:    call.Callee,
				depth: step.depth + 1,
				path:  step.path + " → " + call.Callee.Name(),
			})
		}
	}
}
