package hotalloc_test

import (
	"testing"

	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	atest.Run(t, hotalloc.Analyzer, "hotalloc", atest.Config{})
}
