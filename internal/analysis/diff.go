package analysis

import (
	"errors"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
)

// ErrGitUnavailable reports that change detection cannot work in this
// environment: git is not installed, or the lint root is not inside a
// git work tree. It is a sentinel, not a failure of the ref the caller
// asked about — a bad ref against a healthy repository is an ordinary
// error. Callers (asiclint -diff) match it with errors.Is and degrade
// to whole-module reporting instead of aborting.
var ErrGitUnavailable = errors.New("analysis: git unavailable")

// ChangedFiles returns the absolute paths of the .go files that differ
// between the working tree and the given git ref (committed, staged or
// unstaged changes), plus untracked .go files. It shells out to git in
// root. This powers `asiclint -diff`: CI lints a PR's own files without
// re-litigating legacy code. When git is missing or root is outside any
// work tree the error wraps ErrGitUnavailable.
func ChangedFiles(root, ref string) ([]string, error) {
	if _, err := exec.LookPath("git"); err != nil {
		return nil, fmt.Errorf("%w: git not found in PATH", ErrGitUnavailable)
	}
	// git prints paths relative to the repository toplevel, which may be
	// above root when linting a subdirectory of a larger repo.
	top, err := gitLines(root, "rev-parse", "--show-toplevel")
	if err != nil || len(top) == 0 || top[0] == "" {
		return nil, fmt.Errorf("%w: %s is not inside a git work tree", ErrGitUnavailable, root)
	}
	base := filepath.FromSlash(top[0])
	diff, err := gitLines(root, "diff", "--name-only", ref, "--", "*.go")
	if err != nil {
		return nil, fmt.Errorf("analysis: git diff --name-only %s: %w", ref, err)
	}
	untracked, err := gitLines(root, "ls-files", "--others", "--exclude-standard", "--", "*.go")
	if err != nil {
		return nil, fmt.Errorf("analysis: git ls-files --others: %w", err)
	}
	seen := make(map[string]bool)
	var out []string
	for _, rel := range append(diff, untracked...) {
		if rel == "" || !strings.HasSuffix(rel, ".go") {
			continue
		}
		abs := filepath.Join(base, filepath.FromSlash(rel))
		if !seen[abs] {
			seen[abs] = true
			out = append(out, abs)
		}
	}
	return out, nil
}

func gitLines(root string, args ...string) ([]string, error) {
	cmd := exec.Command("git", args...)
	cmd.Dir = root
	b, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("%w: %s", err, strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, err
	}
	return strings.Split(strings.TrimRight(string(b), "\n"), "\n"), nil
}

// FilterFiles keeps only diagnostics positioned in one of the given
// files (absolute paths). Suppression-directive diagnostics (pseudo-
// analyzer "lint") are filtered like any other: a stale directive in an
// untouched file is not this change's problem.
func FilterFiles(diags []Diagnostic, files []string) []Diagnostic {
	keep := make(map[string]bool, len(files))
	for _, f := range files {
		keep[f] = true
	}
	var out []Diagnostic
	for _, d := range diags {
		if keep[d.Pos.Filename] {
			out = append(out, d)
		}
	}
	return out
}
