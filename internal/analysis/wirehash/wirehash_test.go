package wirehash_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/atest"
	"asiccloud/internal/analysis/wirehash"
)

func TestWirehash(t *testing.T) {
	for _, name := range []string{"clean", "drift", "unhashed", "stale", "versioned", "missing"} {
		t.Run(name, func(t *testing.T) {
			atest.Run(t, wirehash.Analyzer, name, atest.Config{})
		})
	}
}

// TestRepoFingerprint pins internal/service/hash.fingerprint to the
// canonical rendering of the schema wirehash derives from hash.go. With
// -update (`make lint-golden`) it rewrites the file; otherwise any
// mismatch — drifted schema, stale version, hand-edited file — fails.
func TestRepoFingerprint(t *testing.T) {
	pkg := loadServicePackage(t, "")
	fp, ok := wirehash.Compute(pkg.Fset, pkg.Files, pkg.Info)
	if !ok {
		t.Fatal("wirehash found no canonical writer in internal/service")
	}
	if atest.Update() {
		if err := os.WriteFile(fp.File, []byte(fp.Text()), 0o644); err != nil {
			t.Fatalf("updating %s: %v", fp.File, err)
		}
		return
	}
	want, err := os.ReadFile(fp.File)
	if err != nil {
		t.Fatalf("reading %s (run `make lint-golden` to create it): %v", fp.File, err)
	}
	if got := fp.Text(); got != string(want) {
		t.Errorf("%s is stale — run `make lint-golden`\n--- derived ---\n%s--- committed ---\n%s",
			fp.File, got, want)
	}
}

// TestDriftFailsWithoutVersionBump is the acceptance proof for the
// analyzer: adding a canonical Request field to a copy of the real
// service package without bumping hashVersion must produce a diagnostic
// (and so exit 1 from asiclint).
func TestDriftFailsWithoutVersionBump(t *testing.T) {
	tmp := copyModule(t)

	// Sanity: the untouched copy is clean against its fingerprint.
	if diags := runWirehash(t, tmp); len(diags) != 0 {
		t.Fatalf("unpatched copy not clean: %v", diags)
	}

	// Patch the fixture copy: one new canonical field, no version bump.
	reqFile := filepath.Join(tmp, "internal", "service", "request.go")
	src, err := os.ReadFile(reqFile)
	if err != nil {
		t.Fatal(err)
	}
	const anchor = "type Canonical struct {"
	if !strings.Contains(string(src), anchor) {
		t.Fatalf("anchor %q not found in %s", anchor, reqFile)
	}
	patched := strings.Replace(string(src), anchor,
		anchor+"\n\t// Extra is the drift probe added by the wirehash test.\n\tExtra float64", 1)
	if err := os.WriteFile(reqFile, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := runWirehash(t, tmp)
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic after drift, got %d: %v", len(diags), diags)
	}
	msg := diags[0].Message
	if !strings.Contains(msg, "without a hashVersion bump") || !strings.Contains(msg, "+Extra") {
		t.Fatalf("diagnostic does not name the drift: %s", msg)
	}
}

// runWirehash loads the service package of the module rooted at dir and
// applies the analyzer through the standard pipeline.
func runWirehash(t *testing.T, dir string) []analysis.Diagnostic {
	t.Helper()
	pkg := loadServicePackage(t, dir)
	all, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{wirehash.Analyzer})
	if err != nil {
		t.Fatalf("running wirehash: %v", err)
	}
	// The real service sources carry //lint:ignore directives for
	// analyzers outside this single-analyzer run; keep only wirehash's
	// own diagnostics.
	var diags []analysis.Diagnostic
	for _, d := range all {
		if d.Analyzer == wirehash.Analyzer.Name {
			diags = append(diags, d)
		}
	}
	return diags
}

// loadServicePackage type-checks asiccloud/internal/service from the
// module rooted at dir ("" = the enclosing repository).
func loadServicePackage(t *testing.T, dir string) *analysis.Package {
	t.Helper()
	if dir == "" {
		dir = "."
	}
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join(loader.ModuleRoot, "internal", "service"))
	if err != nil {
		t.Fatalf("loading internal/service: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	return pkgs[0]
}

// copyModule copies the repository's go.mod, Go sources and fingerprint
// goldens into a temp dir, so tests can mutate a full fixture copy of
// the module without touching the real tree.
func copyModule(t *testing.T) string {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	root := loader.ModuleRoot
	tmp := t.TempDir()
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "results":
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(tmp, rel), 0o755)
		}
		keep := rel == "go.mod" ||
			(strings.HasSuffix(rel, ".go") && !strings.HasSuffix(rel, "_test.go")) ||
			strings.HasSuffix(rel, ".fingerprint")
		if !keep {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(tmp, rel), data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
	return tmp
}
