// Fixture: Objective exists on the struct and the committed fingerprint
// says it is hashed, but the writer no longer reads it — and only
// Model.Markup is reached through the alias, so Model.PUE silently fell
// out of the digest too.
package fixture

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

const hashVersion = "fixture/v1"

type Model struct {
	Markup float64
	PUE    float64
}

type Canonical struct {
	App       string
	Objective string
	Model     Model
}

func (c Canonical) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\napp=%s\n", hashVersion, c.App)
	m := c.Model
	fmt.Fprintf(h, "markup=%g\n", m.Markup)
	return hex.EncodeToString(h.Sum(nil))
}
