// Fixture: code, hashVersion and committed fingerprint agree — silent.
package fixture

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

const hashVersion = "fixture/v1"

type Model struct {
	Markup float64
	PUE    float64
}

type Canonical struct {
	App      string
	Voltages []float64
	Model    Model
	Stacked  bool
}

func (c Canonical) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\napp=%s\n", hashVersion, c.App)
	for _, v := range c.Voltages {
		fmt.Fprintf(h, "%g,", v)
	}
	m := c.Model
	fmt.Fprintf(h, "tco=%g|%g\n", m.Markup, m.PUE)
	fmt.Fprintf(h, "stacked=%t\n", c.Stacked)
	return hex.EncodeToString(h.Sum(nil))
}
