// Fixture: the schema changed under a proper hashVersion bump, but the
// committed fingerprint was not refreshed afterwards.
package fixture

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

const hashVersion = "fixture/v2"

type Canonical struct {
	App       string
	Stacked   bool
	Objective string
}

func (c Canonical) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\napp=%s\nstacked=%t\nobj=%s\n",
		hashVersion, c.App, c.Stacked, c.Objective)
	return hex.EncodeToString(h.Sum(nil))
}
