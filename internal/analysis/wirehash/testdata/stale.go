// Fixture: hashVersion was bumped but the committed fingerprint still
// carries the old version string — regenerate it.
package fixture

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

const hashVersion = "fixture/v2"

type Canonical struct {
	App     string
	Stacked bool
}

func (c Canonical) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\napp=%s\nstacked=%t\n", hashVersion, c.App, c.Stacked)
	return hex.EncodeToString(h.Sum(nil))
}
