// Fixture: a canonical writer with no committed fingerprint at all.
package fixture

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

const hashVersion = "fixture/v1"

type Canonical struct {
	App string
}

func (c Canonical) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\napp=%s\n", hashVersion, c.App)
	return hex.EncodeToString(h.Sum(nil))
}
