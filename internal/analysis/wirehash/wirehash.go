// Package wirehash pins the canonical hash schema against a committed
// golden fingerprint. The request cache, the result log and the
// distributed byte-diff all key on Canonical.Hash(), and the rule
// guarding them lives in a comment: "bump hashVersion whenever the
// canonical encoding changes meaning". wirehash turns that comment into
// a machine-checked invariant.
//
// In every package declaring a string constant named hashVersion, the
// analyzer finds the writer — the method that folds the constant into a
// digest — and fingerprints its schema: every field of the writer's
// receiver struct (named struct-typed fields expanded one level, so the
// embedded TCO/carbon models contribute per-field entries), each marked
// hashed or unhashed by whether a receiver-rooted selector path reaches
// it in the writer's body (local aliases like `m := c.Model` are
// followed). The fingerprint — version string plus entries — is
// compared against the committed <writer-file>.fingerprint:
//
//   - entries drifted, version unchanged: the real bug. A field was
//     added, removed or un-hashed while old cache entries stay valid —
//     bump hashVersion, then refresh the fingerprint.
//   - version changed (or entries drifted with it): the schema change
//     was versioned; the committed fingerprint is stale. Refresh it
//     with `make lint-golden` (which reruns the goldens with -update).
//
// Either state is a diagnostic — the repo-wide run only goes green when
// code, version and fingerprint agree — but the messages direct the two
// different repairs. An unhashed field is deliberately still part of
// the fingerprint: adding a request field that does NOT reach the
// writer is exactly how canonically-different requests come to hash
// identically, and the explicit `unhashed` entry forces that choice to
// be visible and versioned.
//
// Bounds: the fingerprint records the set of hashed field paths, not
// the order or formatting of the writes — reordering write statements
// changes the bytes without changing the fingerprint and still needs a
// manual bump (the hash.go comment keeps that duty). Paths are resolved
// through plain selectors and single-level local aliases only.
package wirehash

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"asiccloud/internal/analysis"
)

// Analyzer is the wirehash analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "wirehash",
	Doc: "verifies the canonical hash schema (the receiver fields reaching the hashVersion " +
		"writer) against the committed .fingerprint golden, so schema drift without a " +
		"version bump cannot land",
	Run: run,
}

// versionConst is the constant that names a package as hash-bearing.
const versionConst = "hashVersion"

// A Fingerprint is the statically-derived hash schema of one writer.
type Fingerprint struct {
	// Version is the hashVersion constant's value.
	Version string
	// Hashed maps each declared field path of the writer's receiver to
	// whether a selector path in the writer's body reaches it.
	Hashed map[string]bool
	// File is the committed golden path: the writer's source file with
	// .go replaced by .fingerprint.
	File string
	// Pos anchors diagnostics (the writer's name).
	Pos token.Pos
	// Writer names the method for messages.
	Writer string
}

// Compute derives the fingerprint of the package's canonical writer, or
// ok=false when the package declares no hashVersion constant or no
// method using it. Exported so the regeneration test (`make
// lint-golden`) and the analyzer share one definition.
func Compute(fset *token.FileSet, files []*ast.File, info *types.Info) (*Fingerprint, bool) {
	constObj := findVersionConst(files, info)
	if constObj == nil {
		return nil, false
	}
	c, ok := constObj.(*types.Const)
	if !ok || c.Val().Kind() != constant.String {
		return nil, false
	}
	decl, recv := findWriter(files, info, constObj)
	if decl == nil {
		return nil, false
	}
	st, ok := recv.Type().Underlying().(*types.Struct)
	if !ok {
		if ptr, isPtr := recv.Type().Underlying().(*types.Pointer); isPtr {
			st, ok = ptr.Elem().Underlying().(*types.Struct)
		}
		if !ok {
			return nil, false
		}
	}
	paths := declaredPaths(st)
	reached := reachedPaths(decl.Body, info, recv)
	fp := &Fingerprint{
		Version: constant.StringVal(c.Val()),
		Hashed:  make(map[string]bool, len(paths)),
		Pos:     decl.Name.Pos(),
		Writer:  decl.Name.Name,
	}
	for _, p := range paths {
		fp.Hashed[p] = reached(p)
	}
	file := fset.Position(decl.Pos()).Filename
	fp.File = strings.TrimSuffix(file, ".go") + ".fingerprint"
	return fp, true
}

// findVersionConst returns the hashVersion constant's object, or nil.
func findVersionConst(files []*ast.File, info *types.Info) types.Object {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == versionConst {
						return info.Defs[name]
					}
				}
			}
		}
	}
	return nil
}

// findWriter returns the first method declaration whose body uses the
// version constant, together with its receiver variable.
func findWriter(files []*ast.File, info *types.Info, constObj types.Object) (*ast.FuncDecl, *types.Var) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			uses := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && info.Uses[id] == constObj {
					uses = true
				}
				return !uses
			})
			if !uses {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) == 0 {
				continue
			}
			recv, _ := info.Defs[names[0]].(*types.Var)
			if recv != nil {
				return fd, recv
			}
		}
	}
	return nil, nil
}

// declaredPaths lists the receiver struct's field paths, expanding
// named struct-typed fields one level (RCA.Area, Model.PUE, ...).
func declaredPaths(st *types.Struct) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		ft := f.Type()
		if ptr, ok := ft.Underlying().(*types.Pointer); ok {
			ft = ptr.Elem()
		}
		if sub, ok := ft.Underlying().(*types.Struct); ok && sub.NumFields() > 0 {
			for j := 0; j < sub.NumFields(); j++ {
				out = append(out, f.Name()+"."+sub.Field(j).Name())
			}
			continue
		}
		out = append(out, f.Name())
	}
	return out
}

// reachedPaths walks the writer's body and returns a predicate over
// declared paths: true when some receiver-rooted selector chain reaches
// the path. An alias definition (`m := c.Model`) registers a new root
// without itself counting as a read — so `m := c.Model` followed by no
// use of m leaves every Model entry unhashed, exactly as the digest
// sees it.
func reachedPaths(body *ast.BlockStmt, info *types.Info, recv *types.Var) func(string) bool {
	roots := map[types.Object][]string{recv: {}}
	var reads [][]string
	skip := make(map[ast.Node]bool)

	chain := func(e ast.Expr) ([]string, bool) {
		var parts []string
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.SelectorExpr:
				parts = append([]string{x.Sel.Name}, parts...)
				e = x.X
			case *ast.Ident:
				obj := info.Uses[x]
				if obj == nil {
					obj = info.Defs[x]
				}
				if prefix, ok := roots[obj]; ok {
					return append(append([]string{}, prefix...), parts...), true
				}
				return nil, false
			default:
				return nil, false
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if skip[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				path, ok := chain(n.Rhs[i])
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					roots[obj] = path
					// Neither side of the alias definition is a read:
					// the RHS chain only names the new root, and the
					// LHS ident would otherwise resolve to the whole
					// root path and mark every sub-field reached.
					skip[n.Rhs[i]] = true
					skip[id] = true
				}
			}
			return true
		case ast.Expr:
			if path, ok := chain(n); ok && len(path) > 0 {
				reads = append(reads, path)
				return false
			}
		}
		return true
	})

	return func(declared string) bool {
		want := strings.Split(declared, ".")
		for _, r := range reads {
			if pathCovers(r, want) {
				return true
			}
		}
		return false
	}
}

// pathCovers reports whether read path r reaches declared path d:
// equal, r a prefix of d (the whole sub-struct was read), or d a prefix
// of r (a deeper member of the declared leaf was read).
func pathCovers(r, d []string) bool {
	n := len(r)
	if len(d) < n {
		n = len(d)
	}
	for i := 0; i < n; i++ {
		if r[i] != d[i] {
			return false
		}
	}
	return true
}

// Text renders the fingerprint in its committed form: a comment header,
// the version line, then one sorted line per field path.
func (fp *Fingerprint) Text() string {
	var b strings.Builder
	b.WriteString("# wirehash canonical-field fingerprint for " + fp.Writer + ".\n")
	b.WriteString("# Regenerate with `make lint-golden` after an intentional hash-schema\n")
	b.WriteString("# change — and bump " + versionConst + " whenever the encoding changes meaning.\n")
	b.WriteString("version " + fp.Version + "\n")
	paths := make([]string, 0, len(fp.Hashed))
	for p := range fp.Hashed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if fp.Hashed[p] {
			b.WriteString("hashed " + p + "\n")
		} else {
			b.WriteString("unhashed " + p + "\n")
		}
	}
	return b.String()
}

// parseFingerprint reads a committed fingerprint file's version and
// entry set.
func parseFingerprint(data string) (version string, hashed map[string]bool) {
	hashed = make(map[string]bool)
	for _, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "version "):
			version = strings.TrimPrefix(line, "version ")
		case strings.HasPrefix(line, "hashed "):
			hashed[strings.TrimPrefix(line, "hashed ")] = true
		case strings.HasPrefix(line, "unhashed "):
			hashed[strings.TrimPrefix(line, "unhashed ")] = false
		}
	}
	return version, hashed
}

// diffEntries describes the schema drift between committed and current
// entry sets, in stable order.
func diffEntries(committed, current map[string]bool) []string {
	var all []string
	seen := make(map[string]bool)
	for p := range committed {
		if !seen[p] {
			seen[p] = true
			all = append(all, p)
		}
	}
	for p := range current {
		if !seen[p] {
			seen[p] = true
			all = append(all, p)
		}
	}
	sort.Strings(all)
	var out []string
	for _, p := range all {
		cv, inC := committed[p]
		nv, inN := current[p]
		switch {
		case !inC:
			out = append(out, "+"+p)
		case !inN:
			out = append(out, "-"+p)
		case cv != nv:
			if nv {
				out = append(out, p+" now hashed")
			} else {
				out = append(out, p+" now unhashed")
			}
		}
	}
	return out
}

func run(pass *analysis.Pass) error {
	fp, ok := Compute(pass.Fset, pass.Files, pass.Info)
	if !ok {
		return nil
	}
	data, err := os.ReadFile(fp.File)
	if err != nil {
		pass.Reportf(fp.Pos, "canonical writer %s has no committed fingerprint %s — "+
			"run `make lint-golden` to create it", fp.Writer, filepath.Base(fp.File))
		return nil
	}
	wantVersion, wantHashed := parseFingerprint(string(data))
	drift := diffEntries(wantHashed, fp.Hashed)
	switch {
	case len(drift) == 0 && wantVersion == fp.Version:
		// Code, version and fingerprint agree.
	case wantVersion == fp.Version:
		pass.Reportf(fp.Pos, "canonical hash schema drifted without a %s bump (%s) — "+
			"old cache entries would collide with the new encoding; bump %s, then "+
			"run `make lint-golden` to refresh %s",
			versionConst, strings.Join(drift, ", "), versionConst, filepath.Base(fp.File))
	case len(drift) == 0:
		pass.Reportf(fp.Pos, "%s changed (%q -> %q) but %s was not refreshed — "+
			"run `make lint-golden`",
			versionConst, wantVersion, fp.Version, filepath.Base(fp.File))
	default:
		pass.Reportf(fp.Pos, "canonical hash schema changed (%s) under a %s bump "+
			"(%q -> %q) — run `make lint-golden` to refresh %s",
			strings.Join(drift, ", "), versionConst, wantVersion, fp.Version,
			filepath.Base(fp.File))
	}
	return nil
}
