package taint

import (
	"go/ast"
	"go/types"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/cfg"
)

// Helpers shared by the specs built on this engine (detflow, foldorder):
// the call-classification and directive queries every determinism spec
// needs when deciding what is a source, sanitizer or sink.

// CalleeOf resolves the named function or method a call invokes, or nil
// for calls through function values, conversions and built-ins.
func CalleeOf(c *Ctx, call *ast.CallExpr) *types.Func {
	return cfg.Callee(c.Info, call)
}

// IsPkgFunc reports whether call invokes one of the named functions or
// methods declared by the package with import path pkgPath.
func IsPkgFunc(c *Ctx, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := CalleeOf(c, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// HasFuncDirective reports whether fn is a module-local declaration
// whose doc comment carries the //name directive (e.g. asic:canonical).
// It consults the run-wide call graph, so cross-package declarations
// resolve too.
func HasFuncDirective(c *Ctx, fn *types.Func, name string) bool {
	if fn == nil {
		return false
	}
	decl := c.Pass.CallGraph().DeclOf(fn)
	if decl == nil {
		return false
	}
	return analysis.HasDirective(decl.Doc, name)
}

// CommutativeAccum reports whether accumulating into target commutes
// exactly, making accumulation order invisible in the result: integer
// sums and boolean and/or folds. Float folds do not commute in IEEE
// arithmetic, and slices, strings and maps-of-collected-order are
// exactly the sequences determinism checking exists for.
func CommutativeAccum(target types.Type) bool {
	if target == nil {
		return false
	}
	b, ok := target.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// EmitterSink classifies the standard library's structured emitters —
// encoding/json and encoding/csv — as sinks on their payload argument.
// These are where the repository's result, figure and report bytes are
// actually produced.
func EmitterSink(c *Ctx, call *ast.CallExpr) (Sink, bool) {
	fn := CalleeOf(c, call)
	if fn == nil || fn.Pkg() == nil {
		return Sink{}, false
	}
	switch fn.Pkg().Path() {
	case "encoding/json":
		switch fn.Name() {
		case "Marshal", "MarshalIndent":
			return Sink{Desc: "json." + fn.Name(), Args: []int{0}}, true
		case "Encode":
			return Sink{Desc: "json.Encoder.Encode", Args: []int{0}}, true
		}
	case "encoding/csv":
		switch fn.Name() {
		case "Write", "WriteAll":
			return Sink{Desc: "csv.Writer." + fn.Name(), Args: []int{0}}, true
		}
	}
	return Sink{}, false
}

// CanonicalWriteSink classifies write-shaped calls (fmt.Fprint*,
// io.WriteString, Write/WriteString/WriteByte/WriteRune methods) inside
// a function carrying the given doc directive as strict sinks: inside a
// canonical emitter everything written is part of the byte-identity
// contract, markers included.
func CanonicalWriteSink(c *Ctx, call *ast.CallExpr, directive string) (Sink, bool) {
	if !HasFuncDirective(c, c.Fn, directive) {
		return Sink{}, false
	}
	fn := CalleeOf(c, call)
	if fn == nil {
		return Sink{}, false
	}
	write := false
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "fmt":
			switch fn.Name() {
			case "Fprint", "Fprintf", "Fprintln":
				write = true
			}
		case "io":
			write = fn.Name() == "WriteString"
		}
	}
	if !write {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			switch fn.Name() {
			case "Write", "WriteString", "WriteByte", "WriteRune":
				write = true
			}
		}
	}
	if !write {
		return Sink{}, false
	}
	return Sink{Desc: "a canonical write in " + c.Fn.Name(), Strict: true}, true
}

// CanonicalReturnSink makes the results of a directive-marked function
// strict sinks: what a canonical emitter returns IS the artifact.
func CanonicalReturnSink(c *Ctx, directive string) (Sink, bool) {
	if !HasFuncDirective(c, c.Fn, directive) {
		return Sink{}, false
	}
	return Sink{Desc: "the canonical result of " + c.Fn.Name(), Strict: true}, true
}

// SortSanitizer classifies the standard library's sorting entry points:
// sort.* and slices.Sort* establish a canonical order on their first
// argument. The caller decides which kinds a sort actually kills.
func SortSanitizer(c *Ctx, call *ast.CallExpr) bool {
	return IsPkgFunc(c, call, "sort",
		"Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s") ||
		IsPkgFunc(c, call, "slices",
			"Sort", "SortFunc", "SortStableFunc")
}
