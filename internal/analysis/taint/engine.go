package taint

import (
	"go/ast"
	"go/token"
	"go/types"

	"asiccloud/internal/analysis"
	"asiccloud/internal/analysis/cfg"
)

// state maps each tracked local variable to the taint it may carry at a
// program point. Absent object = clean.
type state map[types.Object]Taint

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// joinInto merges src into dst (the meet over paths: union), reporting
// whether dst changed. Per-object unions are independent, so map
// iteration order cannot influence the result.
func joinInto(dst, src state) bool {
	changed := false
	for obj, t := range src {
		u := dst[obj].union(t)
		if !u.equal(dst[obj]) {
			dst[obj] = u
			changed = true
		}
	}
	return changed
}

// findingKey dedups findings: one report per (position, sink, kind)
// even when a value reaches the same sink along several paths.
type findingKey struct {
	pos  token.Pos
	sink string
	kind Kind
}

// memoKey namespaces one spec's summary cache inside Pass.Memo.
type memoKey string

// engine binds a spec to a pass and to the run-wide summary cache, so
// helper functions are summarized once no matter how many passes (one
// per package) consult them.
type engine struct {
	pass *analysis.Pass
	spec *Spec
	sums map[*types.Func]*sumEntry
	seen map[findingKey]bool
}

func newEngine(pass *analysis.Pass, spec *Spec) *engine {
	sums := pass.Memo(memoKey(spec.Name), func() any {
		return make(map[*types.Func]*sumEntry)
	}).(map[*types.Func]*sumEntry)
	return &engine{
		pass: pass,
		spec: spec,
		sums: sums,
		seen: make(map[findingKey]bool),
	}
}

// analyzeTop runs the dataflow over one function declaration or literal
// with no seeds and live reporting.
func (e *engine) analyzeTop(fnNode ast.Node, fn *types.Func, info *types.Info, report func(Finding)) {
	fr := e.newFuncRun(fnNode, fn, info, 0)
	fr.report = report
	fr.run(nil)
}

// funcRun is the dataflow analysis of one function body: the fixpoint
// iteration, then a reporting pass over the converged block states.
type funcRun struct {
	e     *engine
	ctx   *Ctx
	info  *types.Info
	graph *cfg.Graph
	depth int

	// ranges maps each range statement's operand expression — the node
	// the CFG places in the loop-head block — back to the statement, so
	// the implicit key/value assignment can be modeled.
	ranges map[ast.Node]*ast.RangeStmt
	// goCaps lists, per `go func(){...}()` statement, the enclosing
	// function's variables the spawned literal assigns to.
	goCaps map[*ast.GoStmt][]types.Object
	// namedResults are the declared result variables (for bare returns).
	namedResults []types.Object
	// resultSink, when set, makes every returned value a sink.
	resultSink *Sink

	report     func(Finding)
	paramSinks []*ParamSinkRef // non-nil in summary mode
	retTaints  []Taint         // per result index
	final      bool            // reporting pass (post-fixpoint)
}

func (e *engine) newFuncRun(fnNode ast.Node, fn *types.Func, info *types.Info, depth int) *funcRun {
	var body *ast.BlockStmt
	var ftype *ast.FuncType
	switch n := fnNode.(type) {
	case *ast.FuncDecl:
		body = n.Body
		ftype = n.Type
	case *ast.FuncLit:
		body = n.Body
		ftype = n.Type
		// Literals are analyzed as anonymous functions: hooks must not
		// attribute the enclosing declaration's identity to them.
		fn = nil
	}
	fr := &funcRun{
		e:     e,
		ctx:   &Ctx{Pass: e.pass, Info: info, Fn: fn},
		info:  info,
		graph: e.pass.CFG(fnNode),
		depth: depth,
	}
	fr.scanBody(fnNode, body)
	nres := 0
	if ftype.Results != nil {
		for _, f := range ftype.Results.List {
			if len(f.Names) == 0 {
				nres++
				continue
			}
			nres += len(f.Names)
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					fr.namedResults = append(fr.namedResults, obj)
				}
			}
		}
	}
	fr.retTaints = make([]Taint, nres)
	if e.spec.ReturnSink != nil {
		if sk, ok := e.spec.ReturnSink(fr.ctx); ok {
			fr.resultSink = &sk
		}
	}
	return fr
}

// scanBody precomputes the range-operand and goroutine-capture indexes
// for the function's own statements (nested literals excluded — they
// get their own funcRuns).
func (fr *funcRun) scanBody(fnNode ast.Node, body *ast.BlockStmt) {
	fr.ranges = make(map[ast.Node]*ast.RangeStmt)
	fr.goCaps = make(map[*ast.GoStmt][]types.Object)
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			fr.ranges[n.X] = n
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				fr.goCaps[n] = capturedMutations(fr.info, lit, fnNode)
			}
		}
		return true
	})
}

// capturedMutations returns the variables of the enclosing function
// (declared between fnNode's start and the literal) that lit's body
// assigns to, in declaration order.
func capturedMutations(info *types.Info, lit *ast.FuncLit, fnNode ast.Node) []types.Object {
	seen := make(map[types.Object]bool)
	var out []types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			obj := rootObj(info, l)
			if obj == nil || seen[obj] {
				continue
			}
			if obj.Pos() >= fnNode.Pos() && obj.Pos() < lit.Pos() {
				seen[obj] = true
				out = append(out, obj)
			}
		}
		return true
	})
	// Declaration order keeps hook invocation (and so source positions)
	// deterministic.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Pos() < out[j-1].Pos(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// run executes the worklist fixpoint from seeds, then re-walks every
// reachable block with its converged in-state to collect findings and
// return-value taint. Termination: in-states only grow under joinInto,
// and Taint is bounded by the finite kind vocabulary.
func (fr *funcRun) run(seeds state) {
	blocks := fr.graph.Blocks
	in := make([]state, len(blocks))
	entry := fr.graph.Entry()
	if seeds == nil {
		in[entry.Index] = make(state)
	} else {
		in[entry.Index] = seeds.clone()
	}
	work := []*cfg.Block{entry}
	queued := make([]bool, len(blocks))
	queued[entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		out := fr.transfer(in[b.Index].clone(), b)
		for _, succ := range b.Succs {
			changed := false
			if in[succ.Index] == nil {
				in[succ.Index] = out.clone()
				changed = true
			} else {
				changed = joinInto(in[succ.Index], out)
			}
			if changed && !queued[succ.Index] {
				work = append(work, succ)
				queued[succ.Index] = true
			}
		}
	}
	fr.final = true
	for _, b := range blocks {
		if in[b.Index] == nil {
			continue // unreachable
		}
		fr.transfer(in[b.Index].clone(), b)
	}
}

// transfer applies one block's nodes to st in execution order.
func (fr *funcRun) transfer(st state, b *cfg.Block) state {
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.AssignStmt:
			fr.assign(st, n)
		case *ast.DeclStmt:
			fr.declStmt(st, n)
		case *ast.ReturnStmt:
			fr.returnStmt(st, n)
		case *ast.ExprStmt:
			fr.expr(st, n.X)
		case *ast.SendStmt:
			fr.expr(st, n.Chan)
			fr.expr(st, n.Value)
		case *ast.GoStmt:
			fr.goStmt(st, n)
		case *ast.DeferStmt:
			fr.call(st, n.Call)
		case *ast.IncDecStmt:
			// x++ cannot change x's taint kind set.
		case ast.Expr:
			// A decomposed condition, switch tag, case expression — or a
			// range operand, which carries the implicit loop-var binding.
			if rng, ok := fr.ranges[n]; ok {
				fr.rangeHead(st, rng)
			} else {
				fr.expr(st, n)
			}
		}
	}
	return st
}

// rangeHead models `for k, v := range x`: both loop variables inherit
// the container's taint plus whatever the spec says iterating this
// container confers (map iteration order, channel arrival order).
func (fr *funcRun) rangeHead(st state, rng *ast.RangeStmt) {
	t := fr.expr(st, rng.X)
	if fr.e.spec.RangeSource != nil {
		if src, ok := fr.e.spec.RangeSource(fr.ctx, rng); ok {
			t = t.add(src)
		}
	}
	fr.setLHS(st, rng.Key, t, true)
	fr.setLHS(st, rng.Value, t, true)
}

func (fr *funcRun) goStmt(st state, g *ast.GoStmt) {
	fr.call(st, g.Call)
	if fr.e.spec.GoCapture == nil {
		return
	}
	for _, obj := range fr.goCaps[g] {
		if src, ok := fr.e.spec.GoCapture(fr.ctx, g, obj); ok {
			st[obj] = st[obj].add(src)
		}
	}
}

func (fr *funcRun) assign(st state, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		// Op-assign (+=, |=, ...): reads and rebuilds the target, which
		// makes it an accumulation point for marker promotion.
		lhs := as.Lhs[0]
		t := fr.expr(st, lhs).union(fr.expr(st, as.Rhs[0]))
		t = fr.accum(t, as.TokPos, fr.typeOf(lhs))
		fr.setLHS(st, lhs, t, true)
		return
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// x, y := f(): each target gets its own result slot's taint when
		// the callee is summarized; otherwise all share the union (map
		// reads, type assertions, channel receives, external calls).
		if ce, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			t, per := fr.callN(st, ce)
			if len(per) == len(as.Lhs) {
				for i, l := range as.Lhs {
					fr.setLHS(st, l, per[i], true)
				}
				return
			}
			for _, l := range as.Lhs {
				fr.setLHS(st, l, t, true)
			}
			return
		}
		t := fr.expr(st, as.Rhs[0])
		for _, l := range as.Lhs {
			fr.setLHS(st, l, t, true)
		}
		return
	}
	for i, l := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		t := fr.expr(st, as.Rhs[i])
		// A self-referential rebuild (s = s + k, xs = append handled in
		// call) accumulates: the target's new value embeds its old one.
		if obj := rootObj(fr.info, l); obj != nil && exprUses(fr.info, as.Rhs[i], obj) {
			t = fr.accum(t, as.TokPos, fr.typeOf(l))
		}
		fr.setLHS(st, l, t, true)
	}
}

func (fr *funcRun) declStmt(st state, ds *ast.DeclStmt) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, sp := range gd.Specs {
		vs, ok := sp.(*ast.ValueSpec)
		if !ok {
			continue
		}
		switch {
		case len(vs.Values) == 0:
			for _, name := range vs.Names {
				fr.setLHS(st, name, nil, true)
			}
		case len(vs.Values) == len(vs.Names):
			for i, name := range vs.Names {
				fr.setLHS(st, name, fr.expr(st, vs.Values[i]), true)
			}
		default: // var x, y = f()
			if ce, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
				t, per := fr.callN(st, ce)
				if len(per) == len(vs.Names) {
					for i, name := range vs.Names {
						fr.setLHS(st, name, per[i], true)
					}
					continue
				}
				for _, name := range vs.Names {
					fr.setLHS(st, name, t, true)
				}
				continue
			}
			t := fr.expr(st, vs.Values[0])
			for _, name := range vs.Names {
				fr.setLHS(st, name, t, true)
			}
		}
	}
}

func (fr *funcRun) returnStmt(st state, ret *ast.ReturnStmt) {
	check := func(i int, t Taint, pos token.Pos) {
		if i >= 0 && i < len(fr.retTaints) {
			fr.retTaints[i] = fr.retTaints[i].union(t)
		}
		if fr.resultSink != nil {
			fr.sinkCheck(t, *fr.resultSink, pos, "")
		}
	}
	switch {
	case len(ret.Results) == 0:
		for i, obj := range fr.namedResults {
			check(i, st[obj], ret.Pos())
		}
	case len(ret.Results) == len(fr.retTaints):
		for i, r := range ret.Results {
			check(i, fr.expr(st, r), r.Pos())
		}
	default:
		// `return f()` forwarding a tuple: the single expression's union
		// taint conservatively reaches every result slot.
		for _, r := range ret.Results {
			t := fr.expr(st, r)
			check(0, t, r.Pos())
			for i := 1; i < len(fr.retTaints); i++ {
				fr.retTaints[i] = fr.retTaints[i].union(t)
			}
		}
	}
}

// setLHS writes taint t to an assignment target. Identifiers get a
// strong update (reassignment cleans); field, index and pointer targets
// weakly taint their root variable (x.f = tainted taints x, but
// x.f = clean cannot untaint x).
func (fr *funcRun) setLHS(st state, lhs ast.Expr, t Taint, strong bool) {
	if lhs == nil {
		return
	}
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := fr.objOf(id)
		if obj == nil {
			return
		}
		if strong {
			if len(t) == 0 {
				delete(st, obj)
			} else {
				st[obj] = t
			}
		} else {
			st[obj] = st[obj].union(t)
		}
		return
	}
	// Evaluate the target expression itself (an index or selector may
	// contain calls), then weak-update the root.
	fr.expr(st, lhs)
	if obj := rootObj(fr.info, lhs); obj != nil && len(t) > 0 {
		st[obj] = st[obj].union(t)
	}
}

// accum runs the marker-promotion hook at an accumulation point.
func (fr *funcRun) accum(t Taint, pos token.Pos, target types.Type) Taint {
	sp := fr.e.spec
	if sp.Accum == nil || !fr.hasMarker(t) {
		return t
	}
	if src, ok := sp.Accum(fr.ctx, pos, target, t); ok {
		t = t.add(src)
	}
	return t
}

func (fr *funcRun) hasMarker(t Taint) bool {
	if fr.e.spec.IsMarker == nil {
		return false
	}
	for _, s := range t {
		if fr.e.spec.IsMarker(s.Kind) {
			return true
		}
	}
	return false
}

// expr computes the taint of e in st, applying call effects (sources,
// sanitizers, sinks, summaries) along the way.
func (fr *funcRun) expr(st state, e ast.Expr) Taint {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return fr.expr(st, e.X)
	case *ast.Ident:
		if obj := fr.objOf(e); obj != nil {
			return st[obj]
		}
		return nil
	case *ast.CallExpr:
		return fr.call(st, e)
	case *ast.UnaryExpr:
		t := fr.expr(st, e.X)
		if e.Op == token.ARROW && fr.e.spec.SourceExpr != nil {
			if src, ok := fr.e.spec.SourceExpr(fr.ctx, e); ok {
				t = t.add(src)
			}
		}
		return t
	case *ast.StarExpr:
		return fr.expr(st, e.X)
	case *ast.BinaryExpr:
		return fr.expr(st, e.X).union(fr.expr(st, e.Y))
	case *ast.SelectorExpr:
		// Field-insensitive: x.f carries x's taint. (A package
		// qualifier's Ident resolves to no tracked object.)
		return fr.expr(st, e.X)
	case *ast.IndexExpr:
		// The element read depends on both container and index value.
		return fr.expr(st, e.X).union(fr.expr(st, e.Index))
	case *ast.IndexListExpr:
		return fr.expr(st, e.X)
	case *ast.SliceExpr:
		t := fr.expr(st, e.X)
		for _, ix := range []ast.Expr{e.Low, e.High, e.Max} {
			if ix != nil {
				t = t.union(fr.expr(st, ix))
			}
		}
		return t
	case *ast.TypeAssertExpr:
		return fr.expr(st, e.X)
	case *ast.CompositeLit:
		var t Taint
		for _, el := range e.Elts {
			t = t.union(fr.expr(st, el))
		}
		return t
	case *ast.KeyValueExpr:
		return fr.expr(st, e.Key).union(fr.expr(st, e.Value))
	}
	// Literals, function literals (opaque), type expressions.
	return nil
}

// call applies a call expression's effects and returns its taint (the
// union over all results, for single-value expression contexts).
func (fr *funcRun) call(st state, call *ast.CallExpr) Taint {
	t, _ := fr.callN(st, call)
	return t
}

// callN additionally returns per-result taints when the callee has a
// module-local summary, so tuple destructuring (`a, b, err := f()`)
// keeps each slot's taint separate. A nil slice means no per-result
// information: the caller should use the union for every target.
func (fr *funcRun) callN(st state, call *ast.CallExpr) (Taint, []Taint) {
	sp := fr.e.spec
	// Type conversions carry their operand's taint.
	if tv, ok := fr.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return fr.expr(st, call.Args[0]), nil
		}
		return nil, nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := fr.info.Uses[id].(*types.Builtin); ok {
			return fr.builtin(st, id.Name, call), nil
		}
	}
	argTaints := make([]Taint, len(call.Args))
	for i, a := range call.Args {
		argTaints[i] = fr.expr(st, a)
	}
	// A method call's receiver expression may itself contain calls, and
	// its taint feeds the conservative default below.
	var recvTaint Taint
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvTaint = fr.expr(st, sel.X)
	}
	var result Taint
	if sp.SourceExpr != nil {
		if src, ok := sp.SourceExpr(fr.ctx, call); ok {
			result = result.add(src)
		}
	}
	if sp.Sanitize != nil {
		if idxs, kills, killParams, ok := sp.Sanitize(fr.ctx, call); ok {
			for _, i := range idxs {
				if i >= 0 && i < len(call.Args) {
					fr.sanitizeObj(st, call.Args[i], kills, killParams)
				}
			}
		}
	}
	if sp.SinkCall != nil {
		if sk, ok := sp.SinkCall(fr.ctx, call); ok {
			idxs := sk.Args
			if idxs == nil {
				idxs = make([]int, len(call.Args))
				for i := range idxs {
					idxs[i] = i
				}
			}
			for _, i := range idxs {
				if i >= 0 && i < len(call.Args) {
					fr.sinkCheck(argTaints[i], sk, call.Args[i].Pos(), "")
				}
			}
		}
	}
	// Interprocedural step. Module-local callees contribute through
	// their memoized summaries (a nil summary — recursion cycle or depth
	// bound — is trusted clean). Everything else, standard library and
	// calls through function values, gets the conservative default: the
	// result carries the union of argument and receiver taint, so
	// time.Now().Round(d) and fmt.Sprintf("%v", tainted) stay tainted.
	callee := cfg.Callee(fr.info, call)
	if callee != nil && fr.e.pass.CallGraph().DeclOf(callee) != nil {
		sum := fr.e.summaryOf(callee, fr.depth+1)
		if sum == nil {
			return result, nil
		}
		sig, _ := callee.Type().(*types.Signature)
		np := 0
		if sig != nil {
			np = sig.Params().Len()
		}
		// paramOf maps an argument index to its parameter (variadic
		// arguments all land on the final parameter).
		paramOf := func(i int) int {
			if i < np {
				return i
			}
			return np - 1
		}
		for i, at := range argTaints {
			if np == 0 {
				break
			}
			pi := paramOf(i)
			if pi < len(sum.ParamSink) && sum.ParamSink[pi] != nil {
				ps := sum.ParamSink[pi]
				fr.sinkCheck(at, Sink{Desc: ps.Desc, Strict: ps.Strict},
					call.Args[i].Pos(), callee.Name())
			}
		}
		// Resolve each result slot's taint: param pseudo-kinds stand for
		// the matching arguments' taints, everything else passes through.
		perResult := make([]Taint, len(sum.Results))
		for r, rt := range sum.Results {
			out := result
			for _, s := range rt {
				pi, isP := isParamKind(s.Kind)
				if !isP {
					out = out.add(s)
					continue
				}
				for i, at := range argTaints {
					if np > 0 && paramOf(i) == pi {
						out = out.union(at)
					}
				}
			}
			perResult[r] = out
		}
		union := result
		for _, rt := range perResult {
			union = union.union(rt)
		}
		return union, perResult
	}
	result = result.union(recvTaint)
	for _, at := range argTaints {
		result = result.union(at)
	}
	return result, nil
}

// builtin models the handful of built-ins with taint behavior; append
// is the canonical accumulation point.
func (fr *funcRun) builtin(st state, name string, call *ast.CallExpr) Taint {
	switch name {
	case "append":
		if len(call.Args) == 0 {
			return nil
		}
		base := fr.expr(st, call.Args[0])
		var elems Taint
		for _, a := range call.Args[1:] {
			elems = elems.union(fr.expr(st, a))
		}
		elems = fr.accum(elems, call.Pos(), fr.typeOf(call.Args[0]))
		return base.union(elems)
	case "min", "max", "complex", "real", "imag":
		var t Taint
		for _, a := range call.Args {
			t = t.union(fr.expr(st, a))
		}
		return t
	default:
		// len, cap, make, new, copy, delete, clear, close, panic, ...:
		// evaluate arguments for their effects; the result (if any) does
		// not carry element taint — a count or fresh value is clean.
		for _, a := range call.Args {
			fr.expr(st, a)
		}
		return nil
	}
}

// sanitizeObj removes the killed kinds from the root variable of arg.
func (fr *funcRun) sanitizeObj(st state, arg ast.Expr, kills func(Kind) bool, killParams bool) {
	obj := rootObj(fr.info, arg)
	if obj == nil {
		return
	}
	var kept Taint
	for _, s := range st[obj] {
		if _, isP := isParamKind(s.Kind); isP {
			if killParams {
				continue
			}
			kept = append(kept, s)
			continue
		}
		if kills != nil && kills(s.Kind) {
			continue
		}
		kept = append(kept, s)
	}
	if len(kept) == 0 {
		delete(st, obj)
	} else {
		st[obj] = kept
	}
}

// sinkCheck reports each reportable source of t reaching sink sk. Param
// pseudo-kinds are recorded into the summary instead; marker kinds only
// fire at strict sinks.
func (fr *funcRun) sinkCheck(t Taint, sk Sink, pos token.Pos, via string) {
	sp := fr.e.spec
	for _, s := range t {
		if pi, ok := isParamKind(s.Kind); ok {
			if fr.paramSinks != nil && pi < len(fr.paramSinks) {
				if old := fr.paramSinks[pi]; old == nil || (!old.Strict && sk.Strict) {
					fr.paramSinks[pi] = &ParamSinkRef{Desc: sk.Desc, Strict: sk.Strict}
				}
			}
			continue
		}
		if !sk.Strict && sp.IsMarker != nil && sp.IsMarker(s.Kind) {
			continue
		}
		if !fr.final || fr.report == nil {
			continue
		}
		key := findingKey{pos: pos, sink: sk.Desc, kind: s.Kind}
		if fr.e.seen[key] {
			continue
		}
		fr.e.seen[key] = true
		fr.report(Finding{Pos: pos, Sink: sk.Desc, Source: s, Via: via})
	}
}

func (fr *funcRun) objOf(id *ast.Ident) types.Object {
	if obj := fr.info.Uses[id]; obj != nil {
		return obj
	}
	return fr.info.Defs[id]
}

func (fr *funcRun) typeOf(e ast.Expr) types.Type {
	if tv, ok := fr.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// rootObj resolves the base variable of an lvalue-shaped expression:
// x, x.f, x[i], *x, &x, x[1:] all root at x. Returns nil for anything
// rooted elsewhere (calls, literals, package members).
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				if _, ok := obj.(*types.Var); ok {
					return obj
				}
				return nil
			}
			if obj := info.Defs[x]; obj != nil {
				if _, ok := obj.(*types.Var); ok {
					return obj
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// exprUses reports whether e mentions obj (outside nested literals it
// still counts — a closure reading s inside `s = f(func() {...s...})`
// is an accumulation too).
func exprUses(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
