// Package taint is a reusable worklist-based taint/dataflow engine for
// asiclint analyzers. It generalizes the ad-hoc propagation that
// unitflow pioneered — seed facts at declarations, push them through
// assignments, check them at uses — into the classical four-part taint
// vocabulary: sources introduce taint, propagation carries it through
// expressions and statements, sanitizers remove it, and sinks are the
// program points tainted values must never reach.
//
// The engine is built on the substrate the analysis framework already
// provides: per-function control-flow graphs (analysis.Pass.CFG) give
// the analysis flow-sensitivity — `sort.Strings(keys)` after the
// appends and before the marshal really does clean `keys`, because
// facts are propagated block by block in execution order with a
// worklist fixpoint over back edges — and the module-local call graph
// (analysis.Pass.CallGraph) gives it bounded interprocedural reach
// through memoized per-function summaries, the same design hotalloc
// uses for allocation facts. A summary records three things about a
// callee: the taint its results carry regardless of arguments, which
// parameters flow through to its results (so a helper that returns its
// argument propagates the argument's taint), and which parameters
// reach a sink inside its body (so passing a tainted value to a
// marshaling wrapper is caught at the call site). Summaries are
// computed by running the same dataflow over the callee with its
// parameters seeded with pseudo-kinds, memoized run-wide via
// analysis.Pass.Memo, and bounded at Spec.MaxDepth hops — beyond the
// bound callees are trusted clean, which is the noise-over-soundness
// trade the suite's DESIGN.md argues for.
//
// Two refinements matter for determinism checking and are worth
// naming. First, marker kinds: iterating a map does not make the map
// nondeterministic — it makes any *sequence built from the iteration*
// nondeterministic. A Spec can therefore classify some kinds as
// markers (Spec.IsMarker): markers ride along invisibly and only
// become reportable when an accumulation point — append, an op-assign
// like `s += k`, or a self-referential rebuild `s = s + k` — promotes
// them through the Spec.Accum hook, or when a strict sink (one whose
// bytes are a canonical artifact) sees them directly. Second,
// sanitizer kind-selectivity: sorting a slice removes ordering taint
// but cannot remove a wall-clock reading's taint, so Sanitize reports
// the kinds it kills rather than scrubbing indiscriminately.
//
// Soundness bounds (deliberate, documented here once): taint does not
// flow into nested function literals from their environment (literal
// bodies are analyzed independently; the one reverse flow that matters
// — a goroutine literal mutating a captured accumulator — is modeled
// by the GoCapture hook), method receivers do not participate in
// parameter flow, package-level variables are not tracked, and
// summaries beyond MaxDepth are trusted clean. Every bound errs toward
// silence, which is the correct direction for a lint gate.
package taint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"asiccloud/internal/analysis"
)

// A Kind names a flavor of taint ("map-order", "clock"). Specs choose
// their own vocabulary; the engine only compares kinds for equality
// and asks Spec.IsMarker which ones are markers.
type Kind string

// paramKind returns the pseudo-kind that tracks flow of parameter i
// while a summary is computed. Pseudo-kinds never reach diagnostics.
func paramKind(i int) Kind { return Kind(fmt.Sprintf("param#%d", i)) }

// isParamKind reports whether k is a parameter pseudo-kind, and which
// parameter it tracks.
func isParamKind(k Kind) (int, bool) {
	var i int
	if _, err := fmt.Sscanf(string(k), "param#%d", &i); err != nil {
		return 0, false
	}
	return i, true
}

// A Source records where and how taint entered the program.
type Source struct {
	// Pos locates the source expression or statement.
	Pos token.Pos
	// Kind classifies the taint.
	Kind Kind
	// Desc is the human-readable description used in diagnostics, e.g.
	// "iteration order of map m".
	Desc string
}

// Taint is the set of sources that may reach a value — at most one
// Source per Kind (the first one found, for deterministic messages).
// A nil Taint is clean.
type Taint []Source

// has reports whether t carries kind k.
func (t Taint) has(k Kind) bool {
	for _, s := range t {
		if s.Kind == k {
			return true
		}
	}
	return false
}

// union returns t ∪ u, keeping t's source for kinds present in both.
func (t Taint) union(u Taint) Taint {
	if len(u) == 0 {
		return t
	}
	if len(t) == 0 {
		return u
	}
	out := t
	grew := false
	for _, s := range u {
		if !out.has(s.Kind) {
			if !grew {
				// Copy-on-grow so block states never alias.
				out = append(Taint(nil), t...)
				grew = true
			}
			out = append(out, s)
		}
	}
	return out
}

// add returns t with s added (no-op if the kind is already present).
func (t Taint) add(s Source) Taint { return t.union(Taint{s}) }

// equal reports whether t and u carry the same kind set.
func (t Taint) equal(u Taint) bool {
	if len(t) != len(u) {
		return false
	}
	for _, s := range t {
		if !u.has(s.Kind) {
			return false
		}
	}
	return true
}

// A Sink describes one program point tainted values must not reach.
type Sink struct {
	// Desc names the sink in diagnostics, e.g. "json.Marshal".
	Desc string
	// Args lists the argument indexes that must be clean; nil means
	// every argument.
	Args []int
	// Strict makes marker kinds reportable too. Canonical emitters are
	// strict: writing a map-iteration key into a hash is the bug class
	// this engine exists for, even though the key alone is just data.
	Strict bool
}

// A Finding is one tainted-value-reaches-sink event.
type Finding struct {
	// Pos locates the offending argument (or return value).
	Pos token.Pos
	// Sink describes where the value was headed.
	Sink string
	// Source is a representative source of the taint.
	Source Source
	// Via names the callee the sink sits inside when the flow was
	// established through a summary, or "" for a direct sink.
	Via string
}

// Ctx is the context hooks receive: the Pass the engine runs under,
// the type information of the function being analyzed (which is the
// callee's own package Info during summary computation — not the
// Pass's), and the function itself (nil while analyzing a function
// literal).
type Ctx struct {
	Pass *analysis.Pass
	Info *types.Info
	Fn   *types.Func
}

// Spec configures one taint analysis. Nil hooks are simply inert, so
// an analyzer only wires the parts it needs.
type Spec struct {
	// Name labels the spec (diagnostics, memo identity).
	Name string

	// MaxDepth bounds interprocedural summary computation, in call-graph
	// hops from the function under analysis. Zero disables summaries.
	MaxDepth int

	// IsMarker classifies kinds that only become reportable at an
	// accumulation point or a strict sink.
	IsMarker func(Kind) bool

	// SourceExpr classifies an expression as a direct source. The
	// engine consults it for call expressions and channel receives.
	SourceExpr func(c *Ctx, e ast.Expr) (Source, bool)

	// RangeSource classifies the taint iterating rng.X confers on the
	// loop's key/value variables (e.g. map iteration order).
	RangeSource func(c *Ctx, rng *ast.RangeStmt) (Source, bool)

	// GoCapture classifies the taint a `go` statement confers on obj, a
	// variable of the enclosing function that the spawned literal
	// assigns or appends to (concurrent-append ordering).
	GoCapture func(c *Ctx, g *ast.GoStmt, obj types.Object) (Source, bool)

	// Accum promotes marker taint at an accumulation point: append, an
	// op-assign, or a self-referential rebuild `s = s + k`. target is
	// the type being accumulated into (so a spec can exempt integer
	// sums, which commute exactly, while flagging slices, strings and
	// float folds, which do not); elem is the union taint of the
	// accumulated values. The hook is only consulted when elem carries
	// at least one marker kind.
	Accum func(c *Ctx, pos token.Pos, target types.Type, elem Taint) (Source, bool)

	// Sanitize reports that a call cleans some of its arguments: which
	// argument indexes, and which kinds it kills. killParams extends
	// the kill to parameter pseudo-kinds during summary computation
	// (a helper that sorts its own parameter re-cleans the caller's
	// argument flow).
	Sanitize func(c *Ctx, call *ast.CallExpr) (args []int, kills func(Kind) bool, killParams bool, ok bool)

	// SinkCall classifies a call as a sink.
	SinkCall func(c *Ctx, call *ast.CallExpr) (Sink, bool)

	// ReturnSink, when non-nil, makes the analyzed function's return
	// values sinks themselves (canonical emitters: what they return IS
	// the artifact).
	ReturnSink func(c *Ctx) (Sink, bool)
}

// Run applies the spec to every function declaration (and every nested
// function literal) of the pass's package and reports each finding
// once. Interprocedural summaries are shared run-wide, so the cost of
// following a helper is paid once no matter how many call sites it has.
func Run(pass *analysis.Pass, spec *Spec, report func(Finding)) {
	e := newEngine(pass, spec)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			e.analyzeTop(fd, fn, pass.Info, report)
			// Nested literals get their own independent analysis: their
			// sources and sinks are real even though environment taint
			// does not flow in (see the package doc's soundness bounds).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					e.analyzeTop(lit, fn, pass.Info, report)
				}
				return true
			})
		}
	}
}
