package taint

import (
	"go/types"
)

// A Summary is the interprocedural abstraction of one function: what a
// caller needs to know without re-walking the body at every call site.
type Summary struct {
	// Results holds, per result index, the taint that result carries.
	// Param pseudo-kind sources stand for "whatever taint the caller
	// passes for that parameter" and are resolved against the actual
	// argument taints at each call site, so `return job, code, nil`
	// taints only the first result — a clock read flowing into one
	// tuple slot does not smear over its siblings.
	Results []Taint
	// ParamSink[i], when non-nil, reports that parameter i reaches a
	// sink inside the body (directly or through further calls), so the
	// call site must treat the argument as sunk.
	ParamSink []*ParamSinkRef
}

// ParamSinkRef describes the sink a parameter reaches inside a callee.
type ParamSinkRef struct {
	// Desc is the ultimate sink's description, even when reached
	// through a chain of helpers.
	Desc string
	// Strict mirrors Sink.Strict: marker kinds count too.
	Strict bool
}

// sumEntry is one memoized summary. An entry that exists but is not
// done marks an in-progress computation, which is how recursion cycles
// are broken (the recursive edge is trusted clean — optimistic, and
// deterministic because passes run in a fixed package order).
type sumEntry struct {
	done bool
	sum  *Summary
}

// summaryOf returns fn's summary, computing and memoizing it on first
// request by running the same dataflow over fn's body with each
// parameter seeded with its pseudo-kind. Returns nil — trusted clean —
// for functions outside the module, recursion cycles, and requests more
// than Spec.MaxDepth frames below a top-level analysis.
func (e *engine) summaryOf(fn *types.Func, depth int) *Summary {
	if fn == nil || e.spec.MaxDepth == 0 {
		return nil
	}
	if ent, ok := e.sums[fn]; ok {
		if ent.done {
			return ent.sum
		}
		return nil // cycle in progress
	}
	if depth > e.spec.MaxDepth {
		return nil
	}
	cg := e.pass.CallGraph()
	decl := cg.DeclOf(fn)
	info := cg.InfoOf(fn)
	ent := &sumEntry{}
	e.sums[fn] = ent
	if decl == nil || decl.Body == nil || info == nil {
		ent.done = true // not declared in this module: trusted clean
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		ent.done = true
		return nil
	}
	np := sig.Params().Len()
	seeds := make(state, np)
	for i := 0; i < np; i++ {
		p := sig.Params().At(i)
		seeds[p] = Taint{{Pos: p.Pos(), Kind: paramKind(i), Desc: "parameter " + p.Name()}}
	}
	fr := e.newFuncRun(decl, fn, info, depth)
	fr.paramSinks = make([]*ParamSinkRef, np)
	fr.run(seeds)
	ent.sum = &Summary{Results: fr.retTaints, ParamSink: fr.paramSinks}
	ent.done = true
	return ent.sum
}
