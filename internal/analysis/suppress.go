package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one parsed //lint:ignore comment.
//
// Syntax:
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// The directive suppresses diagnostics from the named analyzers on the
// same source line (trailing comment) or — for a standalone comment line
// — on the entire construct that begins on the line immediately below:
// a statement, a case/select clause, a composite-literal element, a
// struct field or a const/var spec, however many lines it spans. The
// reason is mandatory: a suppression without a stated justification is
// itself reported, as is a directive naming an analyzer that does not
// exist — both keep the suppression vocabulary honest as the suite
// grows.
type directive struct {
	pos       token.Position
	endLine   int // last source line the directive covers
	analyzers []string
	reason    string
}

const directivePrefix = "//lint:ignore"

// parseDirectives extracts every //lint:ignore directive from the files
// of a package and resolves each one's coverage range against the
// syntax tree (see resolveRanges).
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		var dirs []directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				// Require a space (or end) after the prefix so that e.g.
				// //lint:ignorefoo is not a directive.
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue
				}
				fields := strings.Fields(text)
				d := directive{pos: fset.Position(c.Pos())}
				d.endLine = d.pos.Line + 1
				if len(fields) > 0 {
					d.analyzers = strings.Split(fields[0], ",")
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				dirs = append(dirs, d)
			}
		}
		resolveRanges(fset, f, dirs)
		out = append(out, dirs...)
	}
	return out
}

// resolveRanges extends each directive's coverage to the full extent of
// the construct starting on the line below it. Before this resolution a
// directive only covered its own line and the next one, so a directive
// preceding a multi-line statement, a case clause, or an entry of a
// composite literal failed to reach diagnostics reported on the
// construct's later lines. Candidate constructs are statements
// (including case and select clauses, and go statements), const/var/type
// specs, struct fields, and the direct elements of composite literals;
// when several candidates begin on the target line the outermost one
// wins, so a directive above `for` covers the whole loop, not just its
// init statement. Stacked directives chain: when the line below a
// directive holds another directive (suppressing different analyzers on
// the same construct), the target line skips past the whole stack, so
// every directive in it covers the construct underneath.
func resolveRanges(fset *token.FileSet, f *ast.File, dirs []directive) {
	if len(dirs) == 0 {
		return
	}
	dirLine := make(map[int]bool, len(dirs))
	for i := range dirs {
		dirLine[dirs[i].pos.Line] = true
	}
	want := make(map[int][]int, len(dirs)) // target start line -> dirs indices
	for i := range dirs {
		target := dirs[i].pos.Line + 1
		for dirLine[target] {
			target++
		}
		want[target] = append(want[target], i)
	}
	consider := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		for _, i := range want[start] {
			if end := fset.Position(n.End()).Line; end > dirs[i].endLine {
				dirs[i].endLine = end
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				consider(elt)
			}
		case ast.Stmt:
			consider(n)
		case ast.Spec:
			consider(n)
		case *ast.Field:
			consider(n)
		}
		return true
	})
}

// lintName is the pseudo-analyzer under which the framework reports
// malformed suppression directives.
const lintName = "lint"

// applySuppression validates directives against the set of known analyzer
// names and filters diags accordingly. It returns the surviving
// diagnostics plus any new diagnostics about the directives themselves.
func applySuppression(diags []Diagnostic, dirs []directive, known map[string]bool) []Diagnostic {
	// covered[file][line][analyzer] reports an active suppression.
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool)
	var extra []Diagnostic
	for _, d := range dirs {
		if len(d.analyzers) == 0 {
			extra = append(extra, Diagnostic{Pos: d.pos, Analyzer: lintName,
				Message: "malformed //lint:ignore: expected \"//lint:ignore analyzer[,analyzer] reason\""})
			continue
		}
		if d.reason == "" {
			extra = append(extra, Diagnostic{Pos: d.pos, Analyzer: lintName,
				Message: "//lint:ignore directive is missing a reason"})
			continue
		}
		valid := true
		for _, name := range d.analyzers {
			if !known[name] {
				extra = append(extra, Diagnostic{Pos: d.pos, Analyzer: lintName,
					Message: "//lint:ignore names unknown analyzer \"" + name + "\""})
				valid = false
			}
		}
		if !valid {
			continue
		}
		// A directive covers its own line (trailing comment) through the
		// end of the construct beginning on the line below (standalone
		// comment above a statement, clause, field or literal element).
		for _, name := range d.analyzers {
			for line := d.pos.Line; line <= d.endLine; line++ {
				covered[key{d.pos.Filename, line, name}] = true
			}
		}
	}
	var out []Diagnostic
	for _, diag := range diags {
		if covered[key{diag.Pos.Filename, diag.Pos.Line, diag.Analyzer}] {
			continue
		}
		out = append(out, diag)
	}
	return append(out, extra...)
}
