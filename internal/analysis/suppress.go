package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one parsed //lint:ignore comment.
//
// Syntax:
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// The directive suppresses diagnostics from the named analyzers on the
// same source line (trailing comment) or on the line immediately below
// (standalone comment line). The reason is mandatory: a suppression
// without a stated justification is itself reported, as is a directive
// naming an analyzer that does not exist — both keep the suppression
// vocabulary honest as the suite grows.
type directive struct {
	pos       token.Position
	analyzers []string
	reason    string
}

const directivePrefix = "//lint:ignore"

// parseDirectives extracts every //lint:ignore directive from the files of
// a package, keyed by filename.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				// Require a space (or end) after the prefix so that e.g.
				// //lint:ignorefoo is not a directive.
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue
				}
				fields := strings.Fields(text)
				d := directive{pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.analyzers = strings.Split(fields[0], ",")
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// lintName is the pseudo-analyzer under which the framework reports
// malformed suppression directives.
const lintName = "lint"

// applySuppression validates directives against the set of known analyzer
// names and filters diags accordingly. It returns the surviving
// diagnostics plus any new diagnostics about the directives themselves.
func applySuppression(diags []Diagnostic, dirs []directive, known map[string]bool) []Diagnostic {
	// covered[file][line][analyzer] reports an active suppression.
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool)
	var extra []Diagnostic
	for _, d := range dirs {
		if len(d.analyzers) == 0 {
			extra = append(extra, Diagnostic{Pos: d.pos, Analyzer: lintName,
				Message: "malformed //lint:ignore: expected \"//lint:ignore analyzer[,analyzer] reason\""})
			continue
		}
		if d.reason == "" {
			extra = append(extra, Diagnostic{Pos: d.pos, Analyzer: lintName,
				Message: "//lint:ignore directive is missing a reason"})
			continue
		}
		valid := true
		for _, name := range d.analyzers {
			if !known[name] {
				extra = append(extra, Diagnostic{Pos: d.pos, Analyzer: lintName,
					Message: "//lint:ignore names unknown analyzer \"" + name + "\""})
				valid = false
			}
		}
		if !valid {
			continue
		}
		// A directive covers its own line (trailing comment) and the line
		// immediately below (standalone comment above the statement).
		for _, name := range d.analyzers {
			covered[key{d.pos.Filename, d.pos.Line, name}] = true
			covered[key{d.pos.Filename, d.pos.Line + 1, name}] = true
		}
	}
	var out []Diagnostic
	for _, diag := range diags {
		if covered[key{diag.Pos.Filename, diag.Pos.Line, diag.Analyzer}] {
			continue
		}
		out = append(out, diag)
	}
	return append(out, extra...)
}
