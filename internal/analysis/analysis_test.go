package analysis_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"asiccloud/internal/analysis"
)

func sampleDiags() []analysis.Diagnostic {
	return []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/internal/thermal/lane.go", Line: 12, Column: 3},
			Analyzer: "floatcmp",
			Message:  "exact float comparison",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/other.go", Line: 1, Column: 1},
			Analyzer: "unitconv",
			Message:  "magic literal",
		},
	}
}

func TestWriteTextRelativize(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteText(&buf, sampleDiags(), "/mod"); err != nil {
		t.Fatal(err)
	}
	want := "internal/thermal/lane.go:12:3: floatcmp: exact float comparison\n" +
		"/elsewhere/other.go:1:1: unitconv: magic literal\n"
	if got := buf.String(); got != want {
		t.Errorf("WriteText:\n got %q\nwant %q", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, sampleDiags(), "/mod"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Count       int `json:"count"`
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Count != 2 || len(doc.Diagnostics) != 2 {
		t.Fatalf("want count 2 with 2 diagnostics, got %d with %d", doc.Count, len(doc.Diagnostics))
	}
	if doc.Diagnostics[0].File != "internal/thermal/lane.go" || doc.Diagnostics[0].Analyzer != "floatcmp" {
		t.Errorf("first diagnostic mangled: %+v", doc.Diagnostics[0])
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, nil, ""); err != nil {
		t.Fatal(err)
	}
	// The diagnostics key must be an empty array, not null, so downstream
	// tooling can always range over it.
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Errorf("empty run should emit an empty array:\n%s", buf.String())
	}
}

func TestLoaderResolvesModule(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath != "asiccloud" {
		t.Fatalf("module path = %q, want asiccloud", l.ModulePath)
	}
	pkgs, err := l.Load(l.ModuleRoot + "/internal/units")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "asiccloud/internal/units" {
		t.Fatalf("loaded %d packages, first %v; want exactly asiccloud/internal/units", len(pkgs), pkgs)
	}
	pkg := pkgs[0]
	if pkg.Pkg == nil || pkg.Pkg.Scope().Lookup("ApproxEqual") == nil {
		t.Errorf("type information for units is missing ApproxEqual")
	}
	if len(pkg.Files) == 0 {
		t.Errorf("no files recorded for units package")
	}
}

func TestLoaderSkipsTestdata(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(l.ModuleRoot + "/internal/analysis/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("recursive load picked up fixture package %s", p.Path)
		}
	}
}
