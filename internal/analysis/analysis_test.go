package analysis_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"asiccloud/internal/analysis"
)

func sampleDiags() []analysis.Diagnostic {
	return []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/internal/thermal/lane.go", Line: 12, Column: 3},
			Analyzer: "floatcmp",
			Message:  "exact float comparison",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/other.go", Line: 1, Column: 1},
			Analyzer: "unitconv",
			Message:  "magic literal",
		},
	}
}

func TestWriteTextRelativize(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteText(&buf, sampleDiags(), "/mod"); err != nil {
		t.Fatal(err)
	}
	want := "internal/thermal/lane.go:12:3: floatcmp: exact float comparison\n" +
		"/elsewhere/other.go:1:1: unitconv: magic literal\n"
	if got := buf.String(); got != want {
		t.Errorf("WriteText:\n got %q\nwant %q", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, sampleDiags(), "/mod"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Count       int `json:"count"`
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Count != 2 || len(doc.Diagnostics) != 2 {
		t.Fatalf("want count 2 with 2 diagnostics, got %d with %d", doc.Count, len(doc.Diagnostics))
	}
	if doc.Diagnostics[0].File != "internal/thermal/lane.go" || doc.Diagnostics[0].Analyzer != "floatcmp" {
		t.Errorf("first diagnostic mangled: %+v", doc.Diagnostics[0])
	}
}

func TestWriteGroupedJSON(t *testing.T) {
	diags := append(sampleDiags(), analysis.Diagnostic{
		Pos:      token.Position{Filename: "/mod/internal/core/engine.go", Line: 7, Column: 2},
		Analyzer: "floatcmp",
		Message:  "another exact comparison",
	})
	var buf bytes.Buffer
	if err := analysis.WriteGroupedJSON(&buf, diags, "/mod"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Count     int `json:"count"`
		Analyzers map[string]struct {
			Count       int `json:"count"`
			Diagnostics []struct {
				File string `json:"file"`
				Line int    `json:"line"`
			} `json:"diagnostics"`
		} `json:"analyzers"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Count != 3 || len(doc.Analyzers) != 2 {
		t.Fatalf("want total 3 across 2 analyzers, got %d across %d", doc.Count, len(doc.Analyzers))
	}
	fc := doc.Analyzers["floatcmp"]
	if fc.Count != 2 || len(fc.Diagnostics) != 2 {
		t.Fatalf("floatcmp group = %+v, want both findings", fc)
	}
	// Input order (the flat report's file/line order) is preserved
	// within a group.
	if fc.Diagnostics[0].File != "internal/thermal/lane.go" || fc.Diagnostics[1].File != "internal/core/engine.go" {
		t.Errorf("group order mangled: %+v", fc.Diagnostics)
	}
	if uc := doc.Analyzers["unitconv"]; uc.Count != 1 {
		t.Errorf("unitconv group = %+v, want 1 finding", uc)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, nil, ""); err != nil {
		t.Fatal(err)
	}
	// The diagnostics key must be an empty array, not null, so downstream
	// tooling can always range over it.
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Errorf("empty run should emit an empty array:\n%s", buf.String())
	}
}

func TestLoaderResolvesModule(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath != "asiccloud" {
		t.Fatalf("module path = %q, want asiccloud", l.ModulePath)
	}
	pkgs, err := l.Load(l.ModuleRoot + "/internal/units")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "asiccloud/internal/units" {
		t.Fatalf("loaded %d packages, first %v; want exactly asiccloud/internal/units", len(pkgs), pkgs)
	}
	pkg := pkgs[0]
	if pkg.Pkg == nil || pkg.Pkg.Scope().Lookup("ApproxEqual") == nil {
		t.Errorf("type information for units is missing ApproxEqual")
	}
	if len(pkg.Files) == 0 {
		t.Errorf("no files recorded for units package")
	}
}

func TestLoaderSkipsTestdata(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(l.ModuleRoot + "/internal/analysis/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("recursive load picked up fixture package %s", p.Path)
		}
	}
}
