// Package xcode is the functional substrate of the paper's video
// transcoding ASIC Cloud, "XCode" (paper §9): an H.265-style 8×8 integer
// transform and sum-of-absolute-differences motion search — the two
// kernels that dominate transcoding silicon — plus the DRAM-bound RCA
// model from the ISSCC'15 0.5 nJ/pixel H.265 codec the paper cites.
//
// "Video Transcoding ASIC Clouds require DRAMs next to each ASIC, and
// high off-PCB bandwidth": performance is set by DRAM count, not by RCA
// count, and Pareto-optimal designs saturate the memory system.
//
// RCA returns the accelerator spec (performance in Kfps) and
// ServerConfig the LPDDR3-provisioned base server; they are the "xcode"
// application of both the CLI and the asiccloudd service, which sweep
// 1–9 DRAM devices per ASIC by default.
package xcode
