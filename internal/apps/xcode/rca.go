package xcode

import (
	"asiccloud/internal/dram"
	"asiccloud/internal/interconnect"
	"asiccloud/internal/server"
	"asiccloud/internal/vlsi"
)

// RCA returns the video transcoding accelerator modeled on the ISSCC'15
// 0.5 nJ/pixel H.265/HEVC codec LSI the paper cites [26]. Performance is
// quoted in Kfps (thousands of reference frames per second per server in
// the paper's tables). One RCA transcodes ~33 fps at 0.9 V, so 22 RCAs
// saturate one LPDDR3 device (0.66 Kfps per DRAM — "One DRAM satisfies
// 22 RCA's at 0.9V").
func RCA() vlsi.Spec {
	return vlsi.Spec{
		Name:                "xcode-h265",
		PerfUnit:            "Kfps",
		Area:                3.0,
		NominalVoltage:      1.0,
		NominalFreq:         600e6,
		NominalPerf:         0.0327, // 0.0300 Kfps at 0.9 V × delay(0.9)
		NominalPowerDensity: 0.11,
		LeakageFraction:     0.04,
		SRAMPowerFraction:   0.25, // line buffers, search-window caches
		SRAMVmin:            0.9,
		VoltageScalable:     true,
	}
}

// PerfPerDRAM is each LPDDR3 device's transcoding capacity in Kfps.
const PerfPerDRAM = 0.66

// ServerConfig assembles the paper's XCode server around the RCA: ASIC-
// local LPDDR3 "to store the pre- and post-transcoded video frames",
// two 10-GigE off-PCB ports, an FPGA control processor, and the
// DRAM-premium PCB (handled by the server model).
func ServerConfig(dramsPerASIC int) (server.Config, error) {
	cfg := server.Default(RCA())
	sub, err := dram.NewSubsystem(dram.LPDDR3, dramsPerASIC)
	if err != nil {
		return server.Config{}, err
	}
	cfg.DRAM = sub
	cfg.PerfPerDRAM = PerfPerDRAM
	cfg.Network = &interconnect.Network{
		OnPCB:      interconnect.RapidIO,
		OnPCBLinks: cfg.ChipsPerLane * cfg.Lanes,
		OffPCB:     interconnect.GigE10,
		OffLinks:   2,
		Control:    interconnect.ControlFPGA,
	}
	// Compressed video in and out: ~15.7 MB/s per Kfps, so the paper's
	// 159 Kfps TCO-optimal server fills its two 10-GigE ports; the
	// evaluation scales the port count with throughput.
	cfg.OffPCBBytesPerOp = 0.0157
	return cfg, nil
}

// Netlist is the structural model of one transcode RCA: motion-estimation
// SAD arrays, transform/quantization datapaths, and entropy-coding logic
// beside ~96 KB of line/search-window SRAM.
func Netlist() vlsi.Netlist {
	return vlsi.Netlist{
		Name:                 "xcode-h265-core",
		Gates:                1_400_000,
		Flops:                220_000,
		SRAMBits:             96 * 1024 * 8,
		CombActivity:         0.12,
		FlopActivity:         0.25,
		SRAMAccessesPerCycle: 2,
		SRAMWordBits:         128,
	}
}
