package xcode

import (
	"fmt"
	"math"
)

// FrameResult summarizes a whole-frame transcode.
type FrameResult struct {
	Blocks       int
	NonZero      int     // total retained coefficients (bit-cost proxy)
	PSNR         float64 // reconstruction quality vs the source (dB)
	BitsEstimate int     // crude entropy-coded size proxy
}

// TranscodeFrame runs the block pipeline over a full frame against a
// reference and returns the reconstructed frame plus rate/quality
// statistics — the per-frame unit of work the XCode cloud performs at
// planet scale. Frame dimensions must be multiples of the block size.
func TranscodeFrame(cur, ref *Frame, qstep int32) (*Frame, FrameResult, error) {
	if cur == nil || ref == nil {
		return nil, FrameResult{}, fmt.Errorf("xcode: nil frame")
	}
	if cur.W != ref.W || cur.H != ref.H {
		return nil, FrameResult{}, fmt.Errorf("xcode: frame size mismatch %dx%d vs %dx%d",
			cur.W, cur.H, ref.W, ref.H)
	}
	if cur.W%BlockSize != 0 || cur.H%BlockSize != 0 {
		return nil, FrameResult{}, fmt.Errorf("xcode: frame %dx%d not block aligned", cur.W, cur.H)
	}
	recon, err := NewFrame(cur.W, cur.H)
	if err != nil {
		return nil, FrameResult{}, err
	}
	var res FrameResult
	for y := 0; y < cur.H; y += BlockSize {
		for x := 0; x < cur.W; x += BlockSize {
			block, nz, err := TranscodeBlock(cur, ref, x, y, qstep)
			if err != nil {
				return nil, FrameResult{}, err
			}
			res.Blocks++
			res.NonZero += nz
			for j := 0; j < BlockSize; j++ {
				for i := 0; i < BlockSize; i++ {
					v := block[j][i]
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					recon.Set(x+i, y+j, uint8(v))
				}
			}
		}
	}
	res.PSNR = PSNR(cur, recon)
	// ~12 bits per retained coefficient plus a motion vector per block:
	// a crude but monotone size proxy.
	res.BitsEstimate = res.NonZero*12 + res.Blocks*10
	return recon, res, nil
}

// PSNR computes the peak signal-to-noise ratio between two equally sized
// frames in decibels; identical frames return +Inf.
func PSNR(a, b *Frame) float64 {
	if a == nil || b == nil || a.W != b.W || a.H != b.H || len(a.Pix) == 0 {
		return 0
	}
	var sse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		sse += d * d
	}
	//lint:ignore floatcmp bit-identical frames have infinite PSNR by definition
	if sse == 0 {
		return math.Inf(1)
	}
	mse := sse / float64(len(a.Pix))
	return 10 * math.Log10(255*255/mse)
}
