package xcode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBlock(rng *rand.Rand, max int32) Block {
	var b Block
	for i := range b {
		for j := range b[i] {
			b[i][j] = rng.Int31n(2*max+1) - max
		}
	}
	return b
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x := randomBlock(rng, 255) // residuals of 8-bit video
		rec := Inverse(Forward(x))
		for i := range x {
			for j := range x[i] {
				d := rec[i][j] - x[i][j]
				if d < -2 || d > 2 {
					t.Fatalf("round trip error %d at (%d,%d): %d vs %d",
						d, i, j, rec[i][j], x[i][j])
				}
			}
		}
	}
}

func TestForwardDCBlock(t *testing.T) {
	// A flat block has all its energy in the DC coefficient.
	var x Block
	for i := range x {
		for j := range x[i] {
			x[i][j] = 100
		}
	}
	c := Forward(x)
	if c[0][0] == 0 {
		t.Fatal("DC coefficient should be non-zero for a flat block")
	}
	for i := range c {
		for j := range c[i] {
			if (i != 0 || j != 0) && abs32(c[i][j]) > abs32(c[0][0])/50 {
				t.Errorf("AC coefficient (%d,%d)=%d should be tiny vs DC=%d",
					i, j, c[i][j], c[0][0])
			}
		}
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestTransformEnergyCompaction(t *testing.T) {
	// A smooth gradient should concentrate energy in low frequencies.
	var x Block
	for i := range x {
		for j := range x[i] {
			x[i][j] = int32(10 * (i + j))
		}
	}
	c := Forward(x)
	var low, high int64
	for i := range c {
		for j := range c[i] {
			e := int64(c[i][j]) * int64(c[i][j])
			if i+j <= 2 {
				low += e
			} else {
				high += e
			}
		}
	}
	if low < 10*high {
		t.Errorf("energy compaction failed: low %d vs high %d", low, high)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomBlock(rng, 1000)
	q, err := Quantize(x, 10)
	if err != nil {
		t.Fatal(err)
	}
	dq, err := Dequantize(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		for j := range x[i] {
			d := x[i][j] - dq[i][j]
			if d <= -10 || d >= 10 {
				t.Fatalf("quantization error %d exceeds step", d)
			}
		}
	}
	if _, err := Quantize(x, 0); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := Dequantize(x, -1); err == nil {
		t.Error("negative step should fail")
	}
}

func TestFrameAccessors(t *testing.T) {
	f, err := NewFrame(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	f.Set(3, 2, 77)
	if got := f.At(3, 2); got != 77 {
		t.Errorf("At(3,2) = %d, want 77", got)
	}
	// Border extension clamps.
	f.Set(0, 0, 11)
	if got := f.At(-5, -5); got != 11 {
		t.Errorf("negative coords should clamp to corner, got %d", got)
	}
	f.Set(15, 7, 22)
	if got := f.At(100, 100); got != 22 {
		t.Errorf("overflow coords should clamp to corner, got %d", got)
	}
	// Out-of-bounds writes are ignored.
	f.Set(-1, 0, 99)
	if f.At(0, 0) != 11 {
		t.Error("out-of-bounds write mutated the frame")
	}
	if _, err := NewFrame(0, 5); err == nil {
		t.Error("zero-width frame should fail")
	}
}

func TestSADIdenticalBlocksZero(t *testing.T) {
	f, _ := NewFrame(32, 32)
	rng := rand.New(rand.NewSource(3))
	for i := range f.Pix {
		f.Pix[i] = uint8(rng.Intn(256))
	}
	if got := SAD(f, f, 8, 8, 0, 0, 8); got != 0 {
		t.Errorf("SAD of identical block = %d, want 0", got)
	}
}

func TestMotionSearchFindsPlantedShift(t *testing.T) {
	// Build a reference with a distinctive texture and a current frame
	// that is the reference shifted by (+3, -2): motion search must
	// recover the displacement exactly.
	ref, _ := NewFrame(64, 64)
	rng := rand.New(rand.NewSource(4))
	for i := range ref.Pix {
		ref.Pix[i] = uint8(rng.Intn(256))
	}
	cur, _ := NewFrame(64, 64)
	const sx, sy = 3, -2
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			cur.Set(x, y, ref.At(x+sx, y+sy))
		}
	}
	mv := MotionSearch(cur, ref, 24, 24, 8, 8)
	if mv.DX != sx || mv.DY != sy {
		t.Errorf("motion vector = (%d,%d), want (%d,%d)", mv.DX, mv.DY, sx, sy)
	}
	if mv.Cost != 0 {
		t.Errorf("perfect match cost = %d, want 0", mv.Cost)
	}
}

func TestTranscodeBlockReconstruction(t *testing.T) {
	ref, _ := NewFrame(64, 64)
	rng := rand.New(rand.NewSource(5))
	for i := range ref.Pix {
		ref.Pix[i] = uint8(rng.Intn(256))
	}
	// Current frame: shifted reference plus mild noise.
	cur, _ := NewFrame(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := int(ref.At(x+1, y)) + rng.Intn(5) - 2
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			cur.Set(x, y, uint8(v))
		}
	}
	// The scaled transform has a gain of 16, so quantization step 64
	// corresponds to a pixel-domain step of 4.
	recon, nonZero, err := TranscodeBlock(cur, ref, 16, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction error bounded by the pixel-domain step.
	for j := 0; j < BlockSize; j++ {
		for i := 0; i < BlockSize; i++ {
			want := int32(cur.At(16+i, 16+j))
			d := recon[j][i] - want
			if d < -10 || d > 10 {
				t.Fatalf("reconstruction error %d at (%d,%d)", d, i, j)
			}
		}
	}
	// Mild noise at a coarse step should produce a sparse residual.
	if nonZero > 30 {
		t.Errorf("nonZero = %d, want sparse coefficients", nonZero)
	}
	if _, _, err := TranscodeBlock(cur, ref, 16, 16, 0); err == nil {
		t.Error("zero qstep should fail")
	}
}

func TestSADTriangleProperty(t *testing.T) {
	// SAD is non-negative and zero displacement on identical frames is
	// never beaten.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frame, _ := NewFrame(32, 32)
		for i := range frame.Pix {
			frame.Pix[i] = uint8(rng.Intn(256))
		}
		mv := MotionSearch(frame, frame, 12, 12, 8, 4)
		return mv.DX == 0 && mv.DY == 0 && mv.Cost == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestServerConfig(t *testing.T) {
	cfg, err := ServerConfig(6)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DRAM.PerASIC != 6 {
		t.Errorf("DRAMs per ASIC = %d, want 6", cfg.DRAM.PerASIC)
	}
	if cfg.PerfPerDRAM != PerfPerDRAM {
		t.Error("PerfPerDRAM not wired")
	}
	if cfg.Network == nil || cfg.Network.OffLinks != 2 {
		t.Error("two 10-GigE off-PCB ports expected (paper §9)")
	}
	if _, err := ServerConfig(-1); err == nil {
		t.Error("negative DRAM count should fail")
	}
	spec := RCA()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	// "One DRAM satisfies 22 RCA's at 0.9V": per-RCA perf at 0.9 V times
	// 22 should be within a few percent of one DRAM's capacity.
	op, err := spec.At(0.9)
	if err != nil {
		t.Fatal(err)
	}
	got := op.Perf * 22
	if got < 0.60 || got > 0.72 {
		t.Errorf("22 RCAs at 0.9 V = %.3f Kfps, want ~0.66 (one DRAM)", got)
	}
}

func makeNoisyPair(t *testing.T, seed int64, w, h int) (cur, ref *Frame) {
	t.Helper()
	var err error
	ref, err = NewFrame(w, h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range ref.Pix {
		ref.Pix[i] = uint8(rng.Intn(256))
	}
	cur, err = NewFrame(w, h)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := int(ref.At(x+1, y)) + rng.Intn(7) - 3
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			cur.Set(x, y, uint8(v))
		}
	}
	return cur, ref
}

func TestTranscodeFrame(t *testing.T) {
	cur, ref := makeNoisyPair(t, 11, 64, 48)
	recon, res, err := TranscodeFrame(cur, ref, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != (64/8)*(48/8) {
		t.Errorf("blocks = %d, want %d", res.Blocks, 48)
	}
	// Motion compensation plus a coarse step: high but finite PSNR.
	if res.PSNR < 35 {
		t.Errorf("PSNR = %.1f dB, want > 35", res.PSNR)
	}
	if res.BitsEstimate <= res.Blocks*10 {
		t.Error("bit estimate should include coefficients")
	}
	if recon.W != cur.W || recon.H != cur.H {
		t.Error("reconstruction size mismatch")
	}
	// Rate-distortion monotonicity: a finer step spends more bits and
	// gains quality.
	_, fine, err := TranscodeFrame(cur, ref, 16)
	if err != nil {
		t.Fatal(err)
	}
	if fine.BitsEstimate <= res.BitsEstimate {
		t.Errorf("finer quantization should cost bits: %d vs %d", fine.BitsEstimate, res.BitsEstimate)
	}
	if fine.PSNR <= res.PSNR {
		t.Errorf("finer quantization should raise PSNR: %.1f vs %.1f", fine.PSNR, res.PSNR)
	}
}

func TestTranscodeFrameErrors(t *testing.T) {
	cur, ref := makeNoisyPair(t, 12, 64, 48)
	if _, _, err := TranscodeFrame(nil, ref, 8); err == nil {
		t.Error("nil frame should fail")
	}
	small, _ := NewFrame(32, 32)
	if _, _, err := TranscodeFrame(cur, small, 8); err == nil {
		t.Error("size mismatch should fail")
	}
	odd, _ := NewFrame(60, 48)
	odd2, _ := NewFrame(60, 48)
	if _, _, err := TranscodeFrame(odd, odd2, 8); err == nil {
		t.Error("non-aligned frame should fail")
	}
	if _, _, err := TranscodeFrame(cur, ref, 0); err == nil {
		t.Error("zero qstep should fail")
	}
}

func TestPSNR(t *testing.T) {
	a, _ := NewFrame(16, 16)
	b, _ := NewFrame(16, 16)
	for i := range a.Pix {
		a.Pix[i] = uint8(i)
		b.Pix[i] = uint8(i)
	}
	if !math.IsInf(PSNR(a, b), 1) {
		t.Error("identical frames should have infinite PSNR")
	}
	b.Pix[0] ^= 0xff
	p := PSNR(a, b)
	if p <= 0 || math.IsInf(p, 1) {
		t.Errorf("PSNR = %v, want finite positive", p)
	}
	if PSNR(a, nil) != 0 {
		t.Error("nil frame PSNR should be 0")
	}
}
