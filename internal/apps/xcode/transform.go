package xcode

import "fmt"

// BlockSize is the transform block dimension.
const BlockSize = 8

// Block is an 8×8 block of pixel or coefficient values.
type Block [BlockSize][BlockSize]int32

// h is the HEVC-style 8-point integer transform matrix (a scaled
// DCT-II approximation with integer coefficients).
var h = [8][8]int32{
	{64, 64, 64, 64, 64, 64, 64, 64},
	{89, 75, 50, 18, -18, -50, -75, -89},
	{83, 36, -36, -83, -83, -36, 36, 83},
	{75, -18, -89, -50, 50, 89, 18, -75},
	{64, -64, -64, 64, 64, -64, -64, 64},
	{50, -89, 18, 75, -75, -18, 89, -50},
	{36, -83, 83, -36, -36, 83, -83, 36},
	{18, -50, 75, -89, 89, -75, 50, -18},
}

// Forward applies the 2-D integer transform: H · X · Hᵀ with HEVC's
// intermediate shifts for 8×8 blocks of 8-bit video (2 bits after the
// row pass, 9 after the column pass; together with the inverse's 7+12
// this cancels the 2³⁰ gain of the scaled matrices).
func Forward(x Block) Block {
	var tmp, out Block
	for i := 0; i < BlockSize; i++ {
		for j := 0; j < BlockSize; j++ {
			var acc int64
			for m := 0; m < BlockSize; m++ {
				acc += int64(h[i][m]) * int64(x[m][j])
			}
			tmp[i][j] = int32((acc + 2) >> 2)
		}
	}
	for i := 0; i < BlockSize; i++ {
		for j := 0; j < BlockSize; j++ {
			var acc int64
			for m := 0; m < BlockSize; m++ {
				acc += int64(tmp[i][m]) * int64(h[j][m])
			}
			out[i][j] = int32((acc + 256) >> 9)
		}
	}
	return out
}

// Inverse applies the inverse transform Hᵀ · C · H with shifts chosen so
// Inverse(Forward(x)) reconstructs x to within rounding error.
func Inverse(c Block) Block {
	var tmp, out Block
	for i := 0; i < BlockSize; i++ {
		for j := 0; j < BlockSize; j++ {
			var acc int64
			for m := 0; m < BlockSize; m++ {
				acc += int64(h[m][i]) * int64(c[m][j])
			}
			tmp[i][j] = int32((acc + 64) >> 7)
		}
	}
	for i := 0; i < BlockSize; i++ {
		for j := 0; j < BlockSize; j++ {
			var acc int64
			for m := 0; m < BlockSize; m++ {
				acc += int64(tmp[i][m]) * int64(h[m][j])
			}
			out[i][j] = int32((acc + 2048) >> 12)
		}
	}
	return out
}

// Quantize divides coefficients by the quantization step (rounding
// toward zero, as codecs do), and Dequantize multiplies back.
func Quantize(c Block, qstep int32) (Block, error) {
	if qstep <= 0 {
		return Block{}, fmt.Errorf("xcode: quantization step must be positive")
	}
	var out Block
	for i := range c {
		for j := range c[i] {
			out[i][j] = c[i][j] / qstep
		}
	}
	return out, nil
}

// Dequantize reverses Quantize (lossily).
func Dequantize(c Block, qstep int32) (Block, error) {
	if qstep <= 0 {
		return Block{}, fmt.Errorf("xcode: quantization step must be positive")
	}
	var out Block
	for i := range c {
		for j := range c[i] {
			out[i][j] = c[i][j] * qstep
		}
	}
	return out, nil
}

// Frame is a luma plane.
type Frame struct {
	W, H int
	Pix  []uint8
}

// NewFrame allocates a frame.
func NewFrame(w, hgt int) (*Frame, error) {
	if w <= 0 || hgt <= 0 {
		return nil, fmt.Errorf("xcode: frame dimensions must be positive")
	}
	return &Frame{W: w, H: hgt, Pix: make([]uint8, w*hgt)}, nil
}

// At returns the pixel at (x, y), clamping coordinates to the frame edge
// (standard codec border extension).
func (f *Frame) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.H {
		y = f.H - 1
	}
	return f.Pix[y*f.W+x]
}

// Set writes a pixel; out-of-bounds writes are ignored.
func (f *Frame) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= f.W || y >= f.H {
		return
	}
	f.Pix[y*f.W+x] = v
}

// SAD computes the sum of absolute differences between the blockSize²
// block at (x, y) in cur and the block at (x+dx, y+dy) in ref.
func SAD(cur, ref *Frame, x, y, dx, dy, blockSize int) int {
	var sum int
	for j := 0; j < blockSize; j++ {
		for i := 0; i < blockSize; i++ {
			a := int(cur.At(x+i, y+j))
			b := int(ref.At(x+dx+i, y+dy+j))
			d := a - b
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// MotionVector is a block displacement with its matching cost.
type MotionVector struct {
	DX, DY int
	Cost   int
}

// MotionSearch finds the best motion vector for the block at (x, y)
// within ±searchRange by exhaustive SAD — the access pattern that makes
// transcoding DRAM-bandwidth bound. Ties break toward the smaller
// displacement (raster order), matching hardware implementations.
func MotionSearch(cur, ref *Frame, x, y, blockSize, searchRange int) MotionVector {
	best := MotionVector{Cost: int(^uint(0) >> 1)}
	for dy := -searchRange; dy <= searchRange; dy++ {
		for dx := -searchRange; dx <= searchRange; dx++ {
			c := SAD(cur, ref, x, y, dx, dy, blockSize)
			if c < best.Cost {
				best = MotionVector{DX: dx, DY: dy, Cost: c}
			}
		}
	}
	return best
}

// TranscodeBlock runs the full per-block pipeline — motion search against
// the reference, residual transform, quantization, reconstruction — and
// returns the reconstructed block plus the bit-cost proxy (non-zero
// coefficients). It is the unit of work an RCA performs.
func TranscodeBlock(cur, ref *Frame, x, y int, qstep int32) (recon Block, nonZero int, err error) {
	mv := MotionSearch(cur, ref, x, y, BlockSize, 8)
	var residual Block
	for j := 0; j < BlockSize; j++ {
		for i := 0; i < BlockSize; i++ {
			residual[j][i] = int32(cur.At(x+i, y+j)) - int32(ref.At(x+mv.DX+i, y+mv.DY+j))
		}
	}
	coeffs := Forward(residual)
	q, err := Quantize(coeffs, qstep)
	if err != nil {
		return Block{}, 0, err
	}
	for i := range q {
		for j := range q[i] {
			if q[i][j] != 0 {
				nonZero++
			}
		}
	}
	dq, err := Dequantize(q, qstep)
	if err != nil {
		return Block{}, 0, err
	}
	rec := Inverse(dq)
	for j := 0; j < BlockSize; j++ {
		for i := 0; i < BlockSize; i++ {
			recon[j][i] = rec[j][i] + int32(ref.At(x+mv.DX+i, y+mv.DY+j))
		}
	}
	return recon, nonZero, nil
}
