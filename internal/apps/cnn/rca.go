package cnn

import (
	"fmt"
	"sort"

	"asiccloud/internal/interconnect"
	"asiccloud/internal/pareto"
	"asiccloud/internal/server"
	"asiccloud/internal/tco"
	"asiccloud/internal/vlsi"
)

// NodeSpec is one DaDianNao node as an RCA: a 28nm eDRAM-based machine
// learning accelerator running at a fixed 0.9 V / 606 MHz. "In this
// scenario, we assume that we do not have control over the DDN
// micro-architecture, and thus that voltage scaling is not possible."
// Calibration: 235 TOps/s and ~1.8 kW for two 64-node systems per server
// (Table 6) give 1.836 TOps/s and ~7.5 W core per node on 51.5 mm².
func NodeSpec() vlsi.Spec {
	return vlsi.Spec{
		Name:                "ddn-node",
		PerfUnit:            "TOps/s",
		Area:                51.5,
		NominalVoltage:      0.9,
		NominalFreq:         606e6,
		NominalPerf:         1.836,
		NominalPowerDensity: 7.5 / 51.5,
		LeakageFraction:     0.10, // eDRAM refresh and retention
		VoltageScalable:     false,
	}
}

// HyperTransport per-PHY costs on the DDN die.
const (
	htPHYAreaMM2 = 3.5
	htPHYPowerW  = 2.4
	htPHYPins    = 76
)

// DieAreaFor reports the die area of a chip of the given shape: cores
// plus perimeter HyperTransport PHYs. The paper's 4×2 chip is 454 mm²
// and its 4×1 chip is 245 mm².
func DieAreaFor(s ChipShape) float64 {
	return float64(s.Nodes())*NodeSpec().Area + float64(s.HTLinksPerChip())*htPHYAreaMM2
}

// ServerConfig builds the server configuration for a chip shape and a
// per-lane chip count. The performance cap encodes that "performance is
// only dependent on the number of 8x8 DDN systems": surplus chips or
// partial-chip nodes are dark.
func ServerConfig(shape ChipShape, chipsPerLane int) (server.Config, int, error) {
	if err := shape.Validate(); err != nil {
		return server.Config{}, 0, err
	}
	if chipsPerLane <= 0 {
		return server.Config{}, 0, fmt.Errorf("cnn: chips per lane must be positive")
	}
	cfg := server.Default(NodeSpec())
	cfg.Voltage = 0.9
	cfg.ChipsPerLane = chipsPerLane
	cfg.RCAsPerChip = shape.Nodes()
	cfg.ExtraAreaPerChip = float64(shape.HTLinksPerChip()) * htPHYAreaMM2
	cfg.ExtraFixedPowerPerChip = float64(shape.HTLinksPerChip()) * htPHYPowerW
	cfg.ExtraPinsPerChip = shape.HTLinksPerChip() * htPHYPins

	totalChips := chipsPerLane * cfg.Lanes
	systems := totalChips * 1 / shape.ChipsPerSystem()
	const maxSystems = 3 // "Up to 3 full 64-node DDN systems fit in a server"
	if systems > maxSystems {
		systems = maxSystems
	}
	if systems < 1 {
		return server.Config{}, 0, fmt.Errorf("cnn: %d chips of %v cannot form a full 8x8 system",
			totalChips, shape)
	}
	// Cap server throughput at the complete systems' node count.
	perfPerServer := float64(systems*NodesPerSystem) * NodeSpec().NominalPerf
	cfg.PerfCapPerChip = perfPerServer / float64(totalChips)

	cfg.Network = &interconnect.Network{
		OnPCB:      interconnect.SPI, // control plane; HT is in the extras
		OnPCBLinks: totalChips,
		OffPCB:     interconnect.GigE10,
		OffLinks:   systems,
		Control:    interconnect.ControlFPGA,
	}
	return cfg, systems, nil
}

// Evaluation pairs a server evaluation with its CNN structure.
type Evaluation struct {
	Shape   ChipShape
	Systems int
	Eval    server.Evaluation
	TCO     tco.Breakdown
}

// TCOPerOp is TCO per TOps/s.
func (e Evaluation) TCOPerOp() float64 { return e.TCO.Total() }

// Explore evaluates the paper's twelve chip shapes (Figure 17), trying
// every feasible packing of chips into the server's lanes and keeping
// the TCO-best packing per shape.
func Explore(model tco.Model) ([]Evaluation, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	var out []Evaluation
	for _, shape := range PaperShapes() {
		var best *Evaluation
		for chipsPerLane := 1; chipsPerLane <= 20; chipsPerLane++ {
			cfg, systems, err := ServerConfig(shape, chipsPerLane)
			if err != nil {
				continue
			}
			ev, err := server.Evaluate(cfg)
			if err != nil {
				continue
			}
			b := model.Of(ev.DollarsPerOp, ev.WattsPerOp)
			cand := Evaluation{Shape: shape, Systems: systems, Eval: ev, TCO: b}
			if best == nil || cand.TCOPerOp() < best.TCOPerOp() {
				c := cand
				best = &c
			}
		}
		if best != nil {
			out = append(out, *best)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cnn: no feasible configuration")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TCOPerOp() < out[j].TCOPerOp() })
	return out, nil
}

// Optima extracts the energy-, cost- and TCO-optimal designs from an
// Explore result (the columns of Table 6).
func Optima(evals []Evaluation) (energy, cost, tcoOpt Evaluation) {
	if i := pareto.ArgMin(evals, func(e Evaluation) float64 { return e.Eval.WattsPerOp }); i >= 0 {
		energy = evals[i]
	}
	if i := pareto.ArgMin(evals, func(e Evaluation) float64 { return e.Eval.DollarsPerOp }); i >= 0 {
		cost = evals[i]
	}
	if i := pareto.ArgMin(evals, func(e Evaluation) float64 { return e.TCOPerOp() }); i >= 0 {
		tcoOpt = evals[i]
	}
	return energy, cost, tcoOpt
}
