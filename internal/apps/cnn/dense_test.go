package cnn

import (
	"math"
	"testing"
)

func TestDenseKnownResult(t *testing.T) {
	d := &Dense{In: 3, Out: 2,
		Weights: []float32{1, 2, 3, 0, -1, 1},
		Bias:    []float32{0.5, -0.5}}
	in, _ := NewTensor(3, 1, 1)
	in.Data = []float32{1, 1, 2}
	out, err := d.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	// neuron 0: 1+2+6+0.5 = 9.5; neuron 1: 0-1+2-0.5 = 0.5.
	if out.Data[0] != 9.5 || out.Data[1] != 0.5 {
		t.Errorf("dense output = %v, want [9.5 0.5]", out.Data)
	}
}

func TestDenseErrors(t *testing.T) {
	if _, err := NewDense(0, 5, 1); err == nil {
		t.Error("zero inputs should fail")
	}
	d, err := NewDense(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := NewTensor(5, 1, 1)
	if _, err := d.Forward(in); err == nil {
		t.Error("input size mismatch should fail")
	}
	in4, _ := NewTensor(4, 1, 1)
	if _, err := d.ForwardChannels(in4, 2, 1); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := d.ForwardChannels(in4, 0, 4); err == nil {
		t.Error("out-of-range neurons should fail")
	}
}

func TestFlattenPreservesData(t *testing.T) {
	in := randomInput(t, 4, 3, 2, 9)
	out, err := Flatten{}.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 24 || out.H != 1 || out.W != 1 {
		t.Fatalf("flatten shape %dx%dx%d, want 24x1x1", out.C, out.H, out.W)
	}
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatal("flatten reordered data")
		}
	}
	if _, err := (Flatten{}).ForwardChannels(in, 3, 2); err == nil {
		t.Error("inverted flatten range should fail")
	}
}

func TestReferenceClassifierForward(t *testing.T) {
	net, err := ReferenceClassifier()
	if err != nil {
		t.Fatal(err)
	}
	in := randomInput(t, 3, 32, 32, 10)
	out, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 10 || out.H != 1 || out.W != 1 {
		t.Errorf("classifier output %dx%dx%d, want 10x1x1", out.C, out.H, out.W)
	}
	macs, err := net.TotalMACs(in)
	if err != nil {
		t.Fatal(err)
	}
	// Must include the fully connected layers' MACs.
	if macs < 64*8*8*128 {
		t.Errorf("MACs %d missing the dense layers", macs)
	}
}

func TestClassifierPartitionedMatches(t *testing.T) {
	// The end-to-end conv+dense pipeline must partition bit-exactly
	// across the full 64-node mesh — including the flatten boundary.
	net, err := ReferenceClassifier()
	if err != nil {
		t.Fatal(err)
	}
	in := randomInput(t, 3, 32, 32, 11)
	want, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{2, 8, 64} {
		got, err := PartitionedForward(net, in, nodes)
		if err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		for i := range want.Data {
			if math.Abs(float64(got.Output.Data[i]-want.Data[i])) > 1e-5 {
				t.Fatalf("%d nodes: mismatch at %d: %v vs %v",
					nodes, i, got.Output.Data[i], want.Data[i])
			}
		}
	}
}

func TestSoftmax(t *testing.T) {
	in, _ := NewTensor(4, 1, 1)
	in.Data = []float32{1, 2, 3, 4}
	out, err := Softmax{}.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, v := range out.Data {
		sum += float64(v)
		if i > 0 && out.Data[i] <= out.Data[i-1] {
			t.Error("softmax should preserve ordering")
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("softmax sums to %v, want 1", sum)
	}
	// Stability under large logits.
	in.Data = []float32{1000, 1001, 1002, 1003}
	if _, err := (Softmax{}).Forward(in); err != nil {
		t.Errorf("large logits should not overflow: %v", err)
	}
	if _, err := (Softmax{}).ForwardChannels(in, 3, 1); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestSoftmaxPartitioned(t *testing.T) {
	// A classifier with a softmax head still partitions bit-exactly.
	net, err := ReferenceClassifier()
	if err != nil {
		t.Fatal(err)
	}
	net.Layers = append(net.Layers, Softmax{})
	in := randomInput(t, 3, 32, 32, 13)
	want, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PartitionedForward(net, in, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(float64(got.Output.Data[i]-want.Data[i])) > 1e-6 {
			t.Fatalf("partitioned softmax mismatch at %d", i)
		}
	}
	var sum float64
	for _, v := range got.Output.Data {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("partitioned probabilities sum to %v", sum)
	}
}
