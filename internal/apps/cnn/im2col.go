package cnn

import "fmt"

// ForwardFast computes the same convolution as Forward via im2col + a
// dense matrix multiply — the data layout DaDianNao-class accelerators
// (and every BLAS-backed framework) use to turn convolution into the
// systolic-friendly GEMM the hardware is built around. Results match
// Forward to floating-point round-off; tests assert the equivalence and
// benchmarks measure the speedup.
func (c *Conv) ForwardFast(in *Tensor) (*Tensor, error) {
	if in.C != c.InC {
		return nil, fmt.Errorf("cnn: conv expects %d input channels, got %d", c.InC, in.C)
	}
	outH := in.H + 2*c.Pad - c.K + 1
	outW := in.W + 2*c.Pad - c.K + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("cnn: conv output collapses to %dx%d", outH, outW)
	}

	// im2col: each output position becomes a column of the patch matrix
	// (K²·InC rows × outH·outW columns).
	patchLen := c.K * c.K * c.InC
	cols := outH * outW
	patches := make([]float32, patchLen*cols)
	for i := 0; i < c.InC; i++ {
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				row := (i*c.K+ky)*c.K + kx
				dst := patches[row*cols:]
				for y := 0; y < outH; y++ {
					sy := y + ky - c.Pad
					if sy < 0 || sy >= in.H {
						continue // zero padding: already zero
					}
					srcRow := in.Data[(i*in.H+sy)*in.W:]
					for x := 0; x < outW; x++ {
						sx := x + kx - c.Pad
						if sx < 0 || sx >= in.W {
							continue
						}
						dst[y*outW+x] = srcRow[sx]
					}
				}
			}
		}
	}

	// GEMM: out[o][p] = Σ_r W[o][r] · patches[r][p] + bias[o].
	out, err := NewTensor(c.OutC, outH, outW)
	if err != nil {
		return nil, err
	}
	for o := 0; o < c.OutC; o++ {
		dst := out.Data[o*cols : (o+1)*cols]
		for p := range dst {
			dst[p] = c.Bias[o]
		}
		wRow := c.Weights[o*patchLen : (o+1)*patchLen]
		for r, wv := range wRow {
			//lint:ignore floatcmp exact-zero skip exploits stored weight sparsity without changing results
			if wv == 0 {
				continue
			}
			src := patches[r*cols : (r+1)*cols]
			for p, pv := range src {
				dst[p] += wv * pv
			}
		}
	}
	return out, nil
}
