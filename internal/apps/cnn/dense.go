package cnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a fully connected layer over a flattened input — the "Deep
// Neural Network" half of DaDianNao's workload. Its output neurons
// partition across mesh nodes exactly like convolution output channels
// (each output is one "channel" of a 1×1 spatial tensor).
type Dense struct {
	In, Out int
	Weights []float32 // [out][in]
	Bias    []float32 // [out]
}

// NewDense builds a fully connected layer with deterministic
// pseudo-random weights.
func NewDense(in, out int, seed int64) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("cnn: invalid dense %d->%d", in, out)
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Dense{In: in, Out: out,
		Weights: make([]float32, in*out),
		Bias:    make([]float32, out)}
	scale := float32(1 / math.Sqrt(float64(in)))
	for i := range d.Weights {
		d.Weights[i] = (rng.Float32()*2 - 1) * scale
	}
	for i := range d.Bias {
		d.Bias[i] = (rng.Float32()*2 - 1) * 0.1
	}
	return d, nil
}

// OutChannels implements Layer.
func (d *Dense) OutChannels(int) int { return d.Out }

// Forward implements Layer.
func (d *Dense) Forward(in *Tensor) (*Tensor, error) { return d.ForwardChannels(in, 0, d.Out) }

// ForwardChannels computes output neurons [lo, hi). The input tensor is
// flattened in C-major order.
func (d *Dense) ForwardChannels(in *Tensor, lo, hi int) (*Tensor, error) {
	if len(in.Data) != d.In {
		return nil, fmt.Errorf("cnn: dense expects %d inputs, got %d", d.In, len(in.Data))
	}
	if lo < 0 || hi > d.Out || lo >= hi {
		return nil, fmt.Errorf("cnn: dense neuron range [%d,%d) outside [0,%d)", lo, hi, d.Out)
	}
	out, err := NewTensor(hi-lo, 1, 1)
	if err != nil {
		return nil, err
	}
	for o := lo; o < hi; o++ {
		acc := d.Bias[o]
		row := d.Weights[o*d.In : (o+1)*d.In]
		for i, v := range in.Data {
			acc += row[i] * v
		}
		out.Data[o-lo] = acc
	}
	return out, nil
}

// MACs implements Layer.
func (d *Dense) MACs(*Tensor) int64 { return int64(d.In) * int64(d.Out) }

// Flatten reshapes any tensor to C×1×1 so a Dense layer can follow
// convolutions. As a channel-preserving view it partitions trivially.
type Flatten struct{}

// OutChannels implements Layer.
func (Flatten) OutChannels(inC int) int { return inC }

// Forward implements Layer: the whole volume becomes channels.
func (Flatten) Forward(in *Tensor) (*Tensor, error) {
	out, err := NewTensor(in.C*in.H*in.W, 1, 1)
	if err != nil {
		return nil, err
	}
	copy(out.Data, in.Data)
	return out, nil
}

// ForwardChannels flattens the channel slice [lo, hi) of the input. The
// spatial elements of each channel stay contiguous, so concatenating
// per-node results reproduces the monolithic flatten.
func (Flatten) ForwardChannels(in *Tensor, lo, hi int) (*Tensor, error) {
	if lo < 0 || hi > in.C || lo >= hi {
		return nil, fmt.Errorf("cnn: flatten channel range [%d,%d) outside [0,%d)", lo, hi, in.C)
	}
	out, err := NewTensor((hi-lo)*in.H*in.W, 1, 1)
	if err != nil {
		return nil, err
	}
	copy(out.Data, in.Data[lo*in.H*in.W:hi*in.H*in.W])
	return out, nil
}

// MACs implements Layer.
func (Flatten) MACs(*Tensor) int64 { return 0 }

// ReferenceClassifier extends ReferenceNetwork with flatten + two dense
// layers, the full conv-then-classify pipeline.
func ReferenceClassifier() (*Network, error) {
	base, err := ReferenceNetwork()
	if err != nil {
		return nil, err
	}
	// The reference network ends at 64×8×8 for a 32×32 input.
	fc1, err := NewDense(64*8*8, 128, 11)
	if err != nil {
		return nil, err
	}
	fc2, err := NewDense(128, 10, 12)
	if err != nil {
		return nil, err
	}
	layers := append(base.Layers, Flatten{}, fc1, ReLU{}, fc2)
	return &Network{Layers: layers}, nil
}

// Softmax normalizes a C×1×1 tensor into a probability distribution —
// the classifier head after the final Dense layer. It is a whole-vector
// operation, so in the partitioned model it runs on the control node
// after the final all-gather (OutChannels/ForwardChannels therefore
// compute over the FULL input, matching Forward exactly regardless of
// the partition).
type Softmax struct{}

// OutChannels implements Layer.
func (Softmax) OutChannels(inC int) int { return inC }

// Forward implements Layer with the max-subtraction trick for numeric
// stability.
func (Softmax) Forward(in *Tensor) (*Tensor, error) {
	out, err := NewTensor(in.C, in.H, in.W)
	if err != nil {
		return nil, err
	}
	max := in.Data[0]
	for _, v := range in.Data {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range in.Data {
		e := math.Exp(float64(v - max))
		out.Data[i] = float32(e)
		sum += e
	}
	//lint:ignore floatcmp exact zero is the total-underflow sentinel; any nonzero sum is divisible
	if sum == 0 {
		return nil, fmt.Errorf("cnn: softmax underflow")
	}
	for i := range out.Data {
		out.Data[i] = float32(float64(out.Data[i]) / sum)
	}
	return out, nil
}

// ForwardChannels computes the full softmax and returns the requested
// slice: the denominator needs every logit, so partitioning gains
// nothing but correctness is preserved.
func (s Softmax) ForwardChannels(in *Tensor, lo, hi int) (*Tensor, error) {
	if lo < 0 || hi > in.C || lo >= hi {
		return nil, fmt.Errorf("cnn: softmax channel range [%d,%d) outside [0,%d)", lo, hi, in.C)
	}
	full, err := s.Forward(in)
	if err != nil {
		return nil, err
	}
	out, err := NewTensor(hi-lo, in.H, in.W)
	if err != nil {
		return nil, err
	}
	copy(out.Data, full.Data[lo*in.H*in.W:hi*in.H*in.W])
	return out, nil
}

// MACs implements Layer.
func (Softmax) MACs(*Tensor) int64 { return 0 }
