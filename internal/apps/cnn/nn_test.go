package cnn

import (
	"math"
	"math/rand"
	"testing"
)

func randomInput(t *testing.T, c, h, w int, seed int64) *Tensor {
	t.Helper()
	in, err := NewTensor(c, h, w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range in.Data {
		in.Data[i] = rng.Float32()*2 - 1
	}
	return in
}

func TestTensorAccessors(t *testing.T) {
	x, err := NewTensor(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	x.Set(1, 2, 3, 7.5)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Errorf("At = %v, want 7.5", got)
	}
	if got := x.Bytes(); got != 2*3*4*2 {
		t.Errorf("Bytes = %d, want %d (16-bit values)", got, 2*3*4*2)
	}
	if _, err := NewTensor(0, 1, 1); err == nil {
		t.Error("zero-channel tensor should fail")
	}
}

func TestConvKnownResult(t *testing.T) {
	// 1-channel 3x3 identity-ish kernel on a small image.
	c := &Conv{InC: 1, OutC: 1, K: 3, Pad: 1,
		Weights: make([]float32, 9), Bias: []float32{0}}
	c.Weights[4] = 1 // center tap: identity convolution
	in := randomInput(t, 1, 5, 5, 1)
	out, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 1 || out.H != 5 || out.W != 5 {
		t.Fatalf("output shape %dx%dx%d, want 1x5x5", out.C, out.H, out.W)
	}
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("identity kernel should copy input")
		}
	}
}

func TestConvShapeAndErrors(t *testing.T) {
	c, err := NewConv(3, 8, 3, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	in := randomInput(t, 3, 10, 10, 2)
	out, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 8 || out.H != 8 || out.W != 8 {
		t.Errorf("valid conv output %dx%dx%d, want 8x8x8", out.C, out.H, out.W)
	}
	if _, err := c.Forward(randomInput(t, 4, 10, 10, 3)); err == nil {
		t.Error("channel mismatch should fail")
	}
	if _, err := c.ForwardChannels(in, 5, 3); err == nil {
		t.Error("inverted channel range should fail")
	}
	if _, err := c.ForwardChannels(in, 0, 9); err == nil {
		t.Error("out-of-range channels should fail")
	}
	if _, err := NewConv(0, 1, 3, 0, 1); err == nil {
		t.Error("zero input channels should fail")
	}
	tiny := randomInput(t, 3, 2, 2, 4)
	if _, err := c.Forward(tiny); err == nil {
		t.Error("collapsing output should fail")
	}
}

func TestReLU(t *testing.T) {
	in := randomInput(t, 2, 4, 4, 5)
	out, err := ReLU{}.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if v < 0 {
			t.Fatalf("negative output %v at %d", v, i)
		}
		if in.Data[i] > 0 && v != in.Data[i] {
			t.Fatalf("positive input altered")
		}
	}
}

func TestMaxPool(t *testing.T) {
	in, _ := NewTensor(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out, err := MaxPool{K: 2}.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 2 || out.W != 2 {
		t.Fatalf("pool output %dx%d, want 2x2", out.H, out.W)
	}
	// Max of each 2x2 quadrant of 0..15 row-major.
	want := []float32{5, 7, 13, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("pool[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
	if _, err := (MaxPool{K: 0}).Forward(in); err == nil {
		t.Error("zero pool size should fail")
	}
}

func TestReferenceNetworkForward(t *testing.T) {
	net, err := ReferenceNetwork()
	if err != nil {
		t.Fatal(err)
	}
	in := randomInput(t, 3, 32, 32, 6)
	out, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 64 || out.H != 8 || out.W != 8 {
		t.Errorf("output %dx%dx%d, want 64x8x8", out.C, out.H, out.W)
	}
	macs, err := net.TotalMACs(in)
	if err != nil {
		t.Fatal(err)
	}
	if macs <= 0 {
		t.Error("MAC count should be positive")
	}
	// First conv alone: 16 out × 32×32 × 3 in × 9 taps.
	if macs < 16*32*32*3*9 {
		t.Errorf("MACs %d below the first layer's count", macs)
	}
}

func TestPartitionedForwardMatchesMonolithic(t *testing.T) {
	net, err := ReferenceNetwork()
	if err != nil {
		t.Fatal(err)
	}
	in := randomInput(t, 3, 16, 16, 7)
	want, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 4, 8, 64, 100} {
		got, err := PartitionedForward(net, in, nodes)
		if err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		if got.Output.C != want.C || got.Output.H != want.H || got.Output.W != want.W {
			t.Fatalf("%d nodes: shape mismatch", nodes)
		}
		for i := range want.Data {
			if math.Abs(float64(got.Output.Data[i]-want.Data[i])) > 1e-6 {
				t.Fatalf("%d nodes: value mismatch at %d", nodes, i)
			}
		}
		if nodes == 1 && got.TrafficBytes != 0 {
			t.Error("single node should need no traffic")
		}
		if nodes > 1 && got.TrafficBytes == 0 {
			t.Errorf("%d nodes: expected inter-node traffic", nodes)
		}
	}
	if _, err := PartitionedForward(net, in, 0); err == nil {
		t.Error("zero nodes should fail")
	}
}

func TestTrafficGrowsWithNodes(t *testing.T) {
	net, _ := ReferenceNetwork()
	in := randomInput(t, 3, 16, 16, 8)
	r2, err := PartitionedForward(net, in, 2)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := PartitionedForward(net, in, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r8.TrafficBytes <= r2.TrafficBytes {
		t.Errorf("8-node traffic (%d) should exceed 2-node (%d)",
			r8.TrafficBytes, r2.TrafficBytes)
	}
}

func TestForwardFastMatchesNaive(t *testing.T) {
	for _, tc := range []struct{ inC, outC, k, pad, h, w int }{
		{3, 8, 3, 1, 16, 16},
		{1, 1, 3, 0, 8, 8},
		{4, 6, 5, 2, 12, 10},
		{2, 3, 1, 0, 7, 9},
	} {
		c, err := NewConv(tc.inC, tc.outC, tc.k, tc.pad, 77)
		if err != nil {
			t.Fatal(err)
		}
		in := randomInput(t, tc.inC, tc.h, tc.w, int64(tc.outC))
		want, err := c.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ForwardFast(in)
		if err != nil {
			t.Fatal(err)
		}
		if got.C != want.C || got.H != want.H || got.W != want.W {
			t.Fatalf("%+v: shape mismatch", tc)
		}
		for i := range want.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
				t.Fatalf("%+v: value mismatch at %d: %v vs %v",
					tc, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestForwardFastErrors(t *testing.T) {
	c, _ := NewConv(3, 4, 3, 0, 1)
	if _, err := c.ForwardFast(randomInput(t, 2, 8, 8, 1)); err == nil {
		t.Error("channel mismatch should fail")
	}
	if _, err := c.ForwardFast(randomInput(t, 3, 2, 2, 1)); err == nil {
		t.Error("collapsing output should fail")
	}
}
