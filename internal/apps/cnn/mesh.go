package cnn

import "fmt"

// MeshDim is the DaDianNao system dimension: "HyperTransport links on
// each side allowing the system to gluelessly scale to a 64-chip system
// in an 8-by-8 mesh". Our RCA is one DDN node; the mesh is 8×8 nodes.
const MeshDim = 8

// NodesPerSystem is the node count of one full DDN system.
const NodesPerSystem = MeshDim * MeshDim

// PartitionResult carries a distributed inference outcome.
type PartitionResult struct {
	Output *Tensor
	// TrafficBytes is the total activation traffic exchanged between
	// nodes (the all-gather after each output-partitioned layer).
	TrafficBytes int64
}

// PartitionedForward runs the network with each layer's output channels
// partitioned across `nodes` mesh nodes (DaDianNao's model parallelism:
// weights stay resident in each node's eDRAM; activations are
// broadcast). The assembled result must be bit-identical to the
// monolithic Forward — asserted by tests.
func PartitionedForward(n *Network, in *Tensor, nodes int) (PartitionResult, error) {
	if nodes <= 0 {
		return PartitionResult{}, fmt.Errorf("cnn: need at least one node")
	}
	t := in
	var traffic int64
	for li, l := range n.Layers {
		outC := l.OutChannels(t.C)
		if outC <= 0 {
			return PartitionResult{}, fmt.Errorf("cnn: layer %d has no outputs", li)
		}
		// Each node computes a contiguous channel slice.
		parts := make([]*Tensor, 0, nodes)
		for p := 0; p < nodes; p++ {
			lo := p * outC / nodes
			hi := (p + 1) * outC / nodes
			if lo >= hi {
				continue // more nodes than channels: idle node
			}
			part, err := l.ForwardChannels(t, lo, hi)
			if err != nil {
				return PartitionResult{}, fmt.Errorf("cnn: layer %d node %d: %w", li, p, err)
			}
			parts = append(parts, part)
		}
		merged, err := concatChannels(parts)
		if err != nil {
			return PartitionResult{}, fmt.Errorf("cnn: layer %d: %w", li, err)
		}
		// All-gather: each node ships its slice to the other nodes.
		// Total bytes on the wire: tensor size × (active nodes - 1).
		if len(parts) > 1 {
			traffic += int64(merged.Bytes()) * int64(len(parts)-1)
		}
		t = merged
	}
	return PartitionResult{Output: t, TrafficBytes: traffic}, nil
}

func concatChannels(parts []*Tensor) (*Tensor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("cnn: nothing to concatenate")
	}
	totalC := 0
	for _, p := range parts {
		if p.H != parts[0].H || p.W != parts[0].W {
			return nil, fmt.Errorf("cnn: partition shape mismatch")
		}
		totalC += p.C
	}
	out, err := NewTensor(totalC, parts[0].H, parts[0].W)
	if err != nil {
		return nil, err
	}
	c := 0
	for _, p := range parts {
		copy(out.Data[c*p.H*p.W:], p.Data)
		c += p.C
	}
	return out, nil
}

// ChipShape is a rectangular grouping of mesh nodes onto one die: "a 4x2
// ASIC has 4 nodes in the lane direction and 2 nodes in the across-lane
// direction". Links interior to the chip become on-chip NoC hops;
// perimeter links remain HyperTransport.
type ChipShape struct {
	A int // nodes in the lane direction
	B int // nodes in the across-lane direction
}

// String implements fmt.Stringer as the paper's "(A, B)" labels.
func (s ChipShape) String() string { return fmt.Sprintf("(%d, %d)", s.A, s.B) }

// Validate checks the shape fits the mesh.
func (s ChipShape) Validate() error {
	if s.A < 1 || s.B < 1 || s.A > MeshDim || s.B > MeshDim {
		return fmt.Errorf("cnn: chip shape %v outside the %dx%d mesh", s, MeshDim, MeshDim)
	}
	return nil
}

// Nodes per chip.
func (s ChipShape) Nodes() int { return s.A * s.B }

// ChipsPerSystem is how many chips tile one 8×8 system, allowing partial
// chips at the edges ("we allow partial chip usage, e.g. arrays that
// have excess RCA's that are turned off").
func (s ChipShape) ChipsPerSystem() int {
	return ceilDiv(MeshDim, s.A) * ceilDiv(MeshDim, s.B)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// HTLinksPerChip counts the HyperTransport PHYs on the die: one per
// perimeter mesh link, 2(A+B). "The more RCAs that are integrated into a
// chip, the fewer total HyperTransport links are necessary, saving cost,
// area and power."
func (s ChipShape) HTLinksPerChip() int { return 2 * (s.A + s.B) }

// InternalLinks counts mesh links served by the on-chip NoC.
func (s ChipShape) InternalLinks() int { return s.A*(s.B-1) + s.B*(s.A-1) }

// PaperShapes returns the twelve configurations of the paper's
// Figure 17.
func PaperShapes() []ChipShape {
	return []ChipShape{
		{1, 1}, {2, 1}, {2, 2}, {3, 1}, {3, 2}, {4, 1},
		{4, 2}, {5, 1}, {5, 2}, {6, 1}, {7, 1}, {8, 1},
	}
}
