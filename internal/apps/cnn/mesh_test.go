package cnn

import (
	"math"
	"testing"

	"asiccloud/internal/tco"
)

func TestChipShapeGeometry(t *testing.T) {
	cases := []struct {
		s            ChipShape
		nodes, chips int
		ht, internal int
	}{
		{ChipShape{1, 1}, 1, 64, 4, 0},
		{ChipShape{2, 2}, 4, 16, 8, 4},
		{ChipShape{4, 2}, 8, 8, 12, 10},
		{ChipShape{4, 1}, 4, 16, 10, 3},
		{ChipShape{8, 1}, 8, 8, 18, 7},
		{ChipShape{3, 1}, 3, 24, 8, 2}, // partial chips at the edge
		{ChipShape{5, 2}, 10, 8, 14, 13},
	}
	for _, c := range cases {
		if got := c.s.Nodes(); got != c.nodes {
			t.Errorf("%v Nodes = %d, want %d", c.s, got, c.nodes)
		}
		if got := c.s.ChipsPerSystem(); got != c.chips {
			t.Errorf("%v ChipsPerSystem = %d, want %d", c.s, got, c.chips)
		}
		if got := c.s.HTLinksPerChip(); got != c.ht {
			t.Errorf("%v HTLinksPerChip = %d, want %d", c.s, got, c.ht)
		}
		if got := c.s.InternalLinks(); got != c.internal {
			t.Errorf("%v InternalLinks = %d, want %d", c.s, got, c.internal)
		}
	}
	if err := (ChipShape{0, 1}).Validate(); err == nil {
		t.Error("zero dimension should fail")
	}
	if err := (ChipShape{9, 1}).Validate(); err == nil {
		t.Error("shape larger than the mesh should fail")
	}
}

func TestPaperShapesAreTwelve(t *testing.T) {
	shapes := PaperShapes()
	if len(shapes) != 12 {
		t.Fatalf("got %d shapes, want the paper's 12", len(shapes))
	}
	seen := map[string]bool{}
	for _, s := range shapes {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
		if seen[s.String()] {
			t.Errorf("duplicate shape %v", s)
		}
		seen[s.String()] = true
	}
	if !seen["(4, 2)"] || !seen["(4, 1)"] {
		t.Error("the paper's optimal shapes (4,2) and (4,1) must be present")
	}
}

func TestDieAreaMatchesPaper(t *testing.T) {
	// Paper Table 6: the 4x2 chip is 454 mm², the 4x1 chip is 245 mm².
	if got := DieAreaFor(ChipShape{4, 2}); math.Abs(got-454) > 10 {
		t.Errorf("4x2 die = %.0f mm², want ~454", got)
	}
	if got := DieAreaFor(ChipShape{4, 1}); math.Abs(got-245) > 10 {
		t.Errorf("4x1 die = %.0f mm², want ~245", got)
	}
}

func TestBiggerChipsFewerHTLinks(t *testing.T) {
	// "The more RCAs that are integrated into a chip, the fewer total
	// HyperTransport links are necessary": total HT PHYs over a full
	// system shrink as chips grow.
	total := func(s ChipShape) int { return s.HTLinksPerChip() * s.ChipsPerSystem() }
	if total(ChipShape{4, 2}) >= total(ChipShape{2, 1}) {
		t.Error("4x2 system should use fewer HT PHYs than 2x1")
	}
	if total(ChipShape{8, 1}) >= total(ChipShape{1, 1}) {
		t.Error("8x1 system should use fewer HT PHYs than 1x1")
	}
}

func TestServerConfigSystemCounting(t *testing.T) {
	// 4x2: 8 chips per system; 2 chips/lane × 8 lanes = 16 chips = 2
	// systems (the paper's energy/TCO-optimal point).
	cfg, systems, err := ServerConfig(ChipShape{4, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if systems != 2 {
		t.Errorf("systems = %d, want 2", systems)
	}
	if cfg.RCAsPerChip != 8 {
		t.Errorf("RCAs per chip = %d, want 8", cfg.RCAsPerChip)
	}
	// Cap at 3 systems even with surplus chips: 160 four-node chips
	// could tile 10 systems.
	_, systems, err = ServerConfig(ChipShape{2, 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if systems != 3 {
		t.Errorf("systems = %d, want cap at 3", systems)
	}
	// Too few chips for one system.
	if _, _, err := ServerConfig(ChipShape{1, 1}, 1); err == nil {
		t.Error("8 single-node chips cannot form an 8x8 system")
	}
	if _, _, err := ServerConfig(ChipShape{4, 2}, 0); err == nil {
		t.Error("zero chips per lane should fail")
	}
	if _, _, err := ServerConfig(ChipShape{0, 2}, 2); err == nil {
		t.Error("invalid shape should fail")
	}
}

func TestNodeSpecFixedVoltage(t *testing.T) {
	spec := NodeSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.VoltageScalable {
		t.Error("DDN nodes must not voltage scale (paper §10)")
	}
	if spec.NominalVoltage != 0.9 {
		t.Errorf("nominal voltage = %v, want 0.9", spec.NominalVoltage)
	}
}

func TestExploreTable6(t *testing.T) {
	evals, err := Explore(tco.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 12 {
		t.Fatalf("evaluated %d shapes, want 12 (Figure 17)", len(evals))
	}
	energy, cost, tcoOpt := Optima(evals)

	// Paper Table 6: the energy- and TCO-optimal design is the 4x2 chip.
	if (energy.Shape != ChipShape{4, 2}) {
		t.Errorf("energy-optimal shape = %v, want (4, 2)", energy.Shape)
	}
	if (tcoOpt.Shape != ChipShape{4, 2}) {
		t.Errorf("TCO-optimal shape = %v, want (4, 2)", tcoOpt.Shape)
	}
	// W/TOps/s ~7.70 for the energy-optimal design.
	if math.Abs(energy.Eval.WattsPerOp-7.697)/7.697 > 0.15 {
		t.Errorf("energy-optimal W/TOps = %.2f, want ~7.70 ±15%%", energy.Eval.WattsPerOp)
	}
	// TCO/TOps ~42.6.
	if math.Abs(tcoOpt.TCOPerOp()-42.589)/42.589 > 0.15 {
		t.Errorf("TCO-optimal TCO/TOps = %.2f, want ~42.6 ±15%%", tcoOpt.TCOPerOp())
	}
	// Cost-optimal squeezes 3 systems in with smaller chips.
	if cost.Systems != 3 {
		t.Errorf("cost-optimal systems = %d, want 3 (paper: 'squeezed in')", cost.Systems)
	}
	if cost.Shape.Nodes() >= 8 {
		t.Errorf("cost-optimal chip %v should have fewer RCAs than 4x2", cost.Shape)
	}
	if math.Abs(cost.Eval.DollarsPerOp-10.276)/10.276 > 0.15 {
		t.Errorf("cost-optimal $/TOps = %.2f, want ~10.3 ±15%%", cost.Eval.DollarsPerOp)
	}
	// All twelve land in the paper's Figure 17 ranges (roughly
	// $10-13.5 per TOps/s and 7.5-11.5 W per TOps/s, ±25%).
	for _, e := range evals {
		if e.Eval.DollarsPerOp < 8 || e.Eval.DollarsPerOp > 19 {
			t.Errorf("%v: $/TOps %.2f outside Figure 17's range", e.Shape, e.Eval.DollarsPerOp)
		}
		if e.Eval.WattsPerOp < 6 || e.Eval.WattsPerOp > 14 {
			t.Errorf("%v: W/TOps %.2f outside Figure 17's range", e.Shape, e.Eval.WattsPerOp)
		}
	}
}

func TestExploreRejectsBadModel(t *testing.T) {
	bad := tco.Default()
	bad.LifetimeYears = -1
	if _, err := Explore(bad); err == nil {
		t.Error("invalid TCO model should fail")
	}
}
