package cnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a C×H×W activation volume.
type Tensor struct {
	C, H, W int
	Data    []float32
}

// NewTensor allocates a zero tensor.
func NewTensor(c, h, w int) (*Tensor, error) {
	if c <= 0 || h <= 0 || w <= 0 {
		return nil, fmt.Errorf("cnn: tensor dims must be positive, got %dx%dx%d", c, h, w)
	}
	return &Tensor{C: c, H: h, W: w, Data: make([]float32, c*h*w)}, nil
}

// At reads element (c, y, x).
func (t *Tensor) At(c, y, x int) float32 { return t.Data[(c*t.H+y)*t.W+x] }

// Set writes element (c, y, x).
func (t *Tensor) Set(c, y, x int, v float32) { t.Data[(c*t.H+y)*t.W+x] = v }

// Bytes is the tensor's size in bytes at 16-bit fixed point (DaDianNao's
// datatype), used for inter-node traffic accounting.
func (t *Tensor) Bytes() int { return len(t.Data) * 2 }

// Layer is one stage of the network.
type Layer interface {
	// Forward computes the full output.
	Forward(in *Tensor) (*Tensor, error)
	// ForwardChannels computes output channels [lo, hi) only — the
	// output-partitioned slice a single mesh node evaluates. Layers
	// without a channel dimension (pooling over channels kept 1:1)
	// compute the same channel slice of their input.
	ForwardChannels(in *Tensor, lo, hi int) (*Tensor, error)
	// OutChannels is the layer's output channel count.
	OutChannels(inC int) int
	// MACs counts multiply-accumulates for a given input size.
	MACs(in *Tensor) int64
}

// Conv is a 2-D convolution with stride 1 and symmetric zero padding.
type Conv struct {
	InC, OutC, K int
	Pad          int
	Weights      []float32 // [outC][inC][K][K]
	Bias         []float32 // [outC]
}

// NewConv builds a convolution with deterministic pseudo-random weights.
func NewConv(inC, outC, k, pad int, seed int64) (*Conv, error) {
	if inC <= 0 || outC <= 0 || k <= 0 || pad < 0 {
		return nil, fmt.Errorf("cnn: invalid conv %d->%d k=%d pad=%d", inC, outC, k, pad)
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Conv{InC: inC, OutC: outC, K: k, Pad: pad,
		Weights: make([]float32, outC*inC*k*k),
		Bias:    make([]float32, outC)}
	scale := float32(1 / math.Sqrt(float64(inC*k*k)))
	for i := range c.Weights {
		c.Weights[i] = (rng.Float32()*2 - 1) * scale
	}
	for i := range c.Bias {
		c.Bias[i] = (rng.Float32()*2 - 1) * 0.1
	}
	return c, nil
}

func (c *Conv) weight(o, i, ky, kx int) float32 {
	return c.Weights[((o*c.InC+i)*c.K+ky)*c.K+kx]
}

// OutChannels implements Layer.
func (c *Conv) OutChannels(int) int { return c.OutC }

// Forward implements Layer.
func (c *Conv) Forward(in *Tensor) (*Tensor, error) { return c.ForwardChannels(in, 0, c.OutC) }

// ForwardChannels computes output channels [lo, hi).
func (c *Conv) ForwardChannels(in *Tensor, lo, hi int) (*Tensor, error) {
	if in.C != c.InC {
		return nil, fmt.Errorf("cnn: conv expects %d input channels, got %d", c.InC, in.C)
	}
	if lo < 0 || hi > c.OutC || lo >= hi {
		return nil, fmt.Errorf("cnn: channel range [%d,%d) outside [0,%d)", lo, hi, c.OutC)
	}
	outH := in.H + 2*c.Pad - c.K + 1
	outW := in.W + 2*c.Pad - c.K + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("cnn: conv output collapses to %dx%d", outH, outW)
	}
	out, err := NewTensor(hi-lo, outH, outW)
	if err != nil {
		return nil, err
	}
	for o := lo; o < hi; o++ {
		for y := 0; y < outH; y++ {
			for x := 0; x < outW; x++ {
				acc := c.Bias[o]
				for i := 0; i < c.InC; i++ {
					for ky := 0; ky < c.K; ky++ {
						sy := y + ky - c.Pad
						if sy < 0 || sy >= in.H {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							sx := x + kx - c.Pad
							if sx < 0 || sx >= in.W {
								continue
							}
							acc += c.weight(o, i, ky, kx) * in.At(i, sy, sx)
						}
					}
				}
				out.Set(o-lo, y, x, acc)
			}
		}
	}
	return out, nil
}

// MACs implements Layer.
func (c *Conv) MACs(in *Tensor) int64 {
	outH := in.H + 2*c.Pad - c.K + 1
	outW := in.W + 2*c.Pad - c.K + 1
	return int64(c.OutC) * int64(outH) * int64(outW) * int64(c.InC) * int64(c.K) * int64(c.K)
}

// ReLU is the rectifier activation.
type ReLU struct{}

// OutChannels implements Layer.
func (ReLU) OutChannels(inC int) int { return inC }

// Forward implements Layer.
func (r ReLU) Forward(in *Tensor) (*Tensor, error) { return r.ForwardChannels(in, 0, in.C) }

// ForwardChannels implements Layer.
func (ReLU) ForwardChannels(in *Tensor, lo, hi int) (*Tensor, error) {
	if lo < 0 || hi > in.C || lo >= hi {
		return nil, fmt.Errorf("cnn: relu channel range [%d,%d) outside [0,%d)", lo, hi, in.C)
	}
	out, err := NewTensor(hi-lo, in.H, in.W)
	if err != nil {
		return nil, err
	}
	for c := lo; c < hi; c++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				v := in.At(c, y, x)
				if v > 0 {
					out.Set(c-lo, y, x, v)
				}
			}
		}
	}
	return out, nil
}

// MACs implements Layer.
func (ReLU) MACs(*Tensor) int64 { return 0 }

// MaxPool is non-overlapping K×K max pooling.
type MaxPool struct{ K int }

// OutChannels implements Layer.
func (MaxPool) OutChannels(inC int) int { return inC }

// Forward implements Layer.
func (p MaxPool) Forward(in *Tensor) (*Tensor, error) { return p.ForwardChannels(in, 0, in.C) }

// ForwardChannels implements Layer.
func (p MaxPool) ForwardChannels(in *Tensor, lo, hi int) (*Tensor, error) {
	if p.K <= 0 {
		return nil, fmt.Errorf("cnn: pool size must be positive")
	}
	if lo < 0 || hi > in.C || lo >= hi {
		return nil, fmt.Errorf("cnn: pool channel range [%d,%d) outside [0,%d)", lo, hi, in.C)
	}
	outH, outW := in.H/p.K, in.W/p.K
	if outH == 0 || outW == 0 {
		return nil, fmt.Errorf("cnn: pool output collapses")
	}
	out, err := NewTensor(hi-lo, outH, outW)
	if err != nil {
		return nil, err
	}
	for c := lo; c < hi; c++ {
		for y := 0; y < outH; y++ {
			for x := 0; x < outW; x++ {
				best := float32(math.Inf(-1))
				for dy := 0; dy < p.K; dy++ {
					for dx := 0; dx < p.K; dx++ {
						if v := in.At(c, y*p.K+dy, x*p.K+dx); v > best {
							best = v
						}
					}
				}
				out.Set(c-lo, y, x, best)
			}
		}
	}
	return out, nil
}

// MACs implements Layer.
func (MaxPool) MACs(*Tensor) int64 { return 0 }

// Network is a feedforward stack of layers.
type Network struct{ Layers []Layer }

// Forward runs the full network.
func (n *Network) Forward(in *Tensor) (*Tensor, error) {
	t := in
	for i, l := range n.Layers {
		var err error
		t, err = l.Forward(t)
		if err != nil {
			return nil, fmt.Errorf("cnn: layer %d: %w", i, err)
		}
	}
	return t, nil
}

// TotalMACs counts the multiply-accumulates of one inference.
func (n *Network) TotalMACs(in *Tensor) (int64, error) {
	var total int64
	t := in
	for i, l := range n.Layers {
		total += l.MACs(t)
		var err error
		t, err = l.Forward(t)
		if err != nil {
			return 0, fmt.Errorf("cnn: layer %d: %w", i, err)
		}
	}
	return total, nil
}

// ReferenceNetwork builds a small but representative CNN (three conv
// blocks) with deterministic weights for tests and benchmarks.
func ReferenceNetwork() (*Network, error) {
	c1, err := NewConv(3, 16, 3, 1, 1)
	if err != nil {
		return nil, err
	}
	c2, err := NewConv(16, 32, 3, 1, 2)
	if err != nil {
		return nil, err
	}
	c3, err := NewConv(32, 64, 3, 1, 3)
	if err != nil {
		return nil, err
	}
	return &Network{Layers: []Layer{
		c1, ReLU{}, MaxPool{K: 2},
		c2, ReLU{}, MaxPool{K: 2},
		c3, ReLU{},
	}}, nil
}
