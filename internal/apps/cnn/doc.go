// Package cnn is the functional substrate of the paper's Convolutional
// Neural Network ASIC Cloud (paper §10): a real convolutional inference
// engine whose layers can be partitioned across the 64 nodes of a
// DaDianNao-style 8×8 mesh, plus the chip-partitioning model (how many
// mesh nodes share a die, and which links become cheap on-chip NoC hops
// versus board-level HyperTransport).
//
// Unlike the other applications, CNN exploration enumerates chip
// partitionings of a fixed mesh rather than a core.Sweep over geometry
// grids, so it is served by `asiccloud design -app cnn` only — the
// asiccloudd HTTP service deliberately rejects it (see package service).
package cnn
