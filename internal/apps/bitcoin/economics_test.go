package bitcoin

import (
	"math"
	"testing"
)

func TestPaperMarketRevenue(t *testing.T) {
	m := PaperMarket()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// "The total value per day of mining is around $1.5M USD" at
	// $429 × 25 BTC × 144 blocks (+ tips).
	got := m.DailyNetworkRevenue()
	if got < 1.5e6 || got > 1.65e6 {
		t.Errorf("daily network revenue = $%.0f, want ~$1.5-1.6M", got)
	}
	bad := m
	bad.BTCPrice = 0
	if bad.Validate() == nil {
		t.Error("zero price should fail")
	}
	bad = m
	bad.TipFraction = 0.9
	if bad.Validate() == nil {
		t.Error("absurd tips should fail")
	}
}

// tcoOptimalMiner is the paper's TCO-optimal Bitcoin server as a miner.
func tcoOptimalMiner() Miner {
	return Miner{
		HashrateGHs:       7341,
		PowerW:            3731,
		CapitalUSD:        7901,
		ElectricityPerKWh: 0.06,
	}
}

func TestSimulateStaticNetwork(t *testing.T) {
	m := PaperMarket()
	mi := tcoOptimalMiner()
	// Against the paper's 575M GH/s world with no growth.
	p, err := m.Simulate(mi, 575e6, 0, 365)
	if err != nil {
		t.Fatal(err)
	}
	// Revenue share ≈ 7341/575e6 ≈ 1.28e-5 of ~$1.58M/day ≈ $20/day.
	perDay := p.RevenueUSD / 365
	if perDay < 15 || perDay > 25 {
		t.Errorf("revenue = $%.2f/day, want ~$20", perDay)
	}
	// Energy: 3731 W at $0.06/kWh ≈ $5.4/day.
	energyPerDay := p.EnergyCostUSD / 365
	if math.Abs(energyPerDay-5.37)/5.37 > 0.02 {
		t.Errorf("energy = $%.2f/day, want ~$5.37", energyPerDay)
	}
	// Gross margin positive but capital not yet recovered in one year
	// at 2016 difficulty: ~$15/day net over $7,901 capital.
	if p.NetUSD > 0 {
		t.Errorf("net = $%.0f; one year should not repay the server at Nov-2015 difficulty", p.NetUSD)
	}
	if !math.IsInf(p.PaybackDays, 1) {
		t.Errorf("payback in %v days is too fast", p.PaybackDays)
	}
	if p.InitialShare != p.FinalShare {
		t.Error("share should be constant without growth")
	}
}

func TestSimulateEarlyDeployment(t *testing.T) {
	// The same server deployed when the world was 100x smaller pays
	// back almost immediately — the regime in which the first ASICs
	// landed.
	m := PaperMarket()
	mi := tcoOptimalMiner()
	p, err := m.Simulate(mi, 5.75e6, 0.3, 540)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(p.PaybackDays, 1) || p.PaybackDays > 60 {
		t.Errorf("payback = %v days, want fast at 100x smaller network", p.PaybackDays)
	}
	if p.NetUSD <= 0 {
		t.Error("early deployment should profit")
	}
	// Growth erodes the share over the horizon.
	if p.FinalShare >= p.InitialShare {
		t.Error("network growth should dilute the miner")
	}
}

func TestGrowthHurtsRevenue(t *testing.T) {
	m := PaperMarket()
	mi := tcoOptimalMiner()
	flat, err := m.Simulate(mi, 10e6, 0, 365)
	if err != nil {
		t.Fatal(err)
	}
	growing, err := m.Simulate(mi, 10e6, 0.5, 365)
	if err != nil {
		t.Fatal(err)
	}
	if growing.RevenueUSD >= flat.RevenueUSD {
		t.Errorf("a growing network must erode revenue: %v vs %v",
			growing.RevenueUSD, flat.RevenueUSD)
	}
}

func TestFirstMoverAdvantage(t *testing.T) {
	m := PaperMarket()
	mi := tcoOptimalMiner()
	// At 30%/month growth, six months of delay costs most of the
	// revenue — "shipped sequentially by customer order date" was a
	// brutal business model.
	frac, err := m.FirstMoverAdvantage(mi, 10e6, 0.3, 540, 180)
	if err != nil {
		t.Fatal(err)
	}
	if frac >= 0.5 {
		t.Errorf("late deployment keeps %.0f%% of revenue, want < 50%%", 100*frac)
	}
	// No delay, no penalty.
	same, err := m.FirstMoverAdvantage(mi, 10e6, 0.3, 540, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(same-1) > 1e-9 {
		t.Errorf("zero delay fraction = %v, want 1", same)
	}
	if _, err := m.FirstMoverAdvantage(mi, 10e6, 0.3, 540, -1); err == nil {
		t.Error("negative delay should fail")
	}
}

func TestSimulateErrors(t *testing.T) {
	m := PaperMarket()
	mi := tcoOptimalMiner()
	if _, err := m.Simulate(mi, 0, 0, 100); err == nil {
		t.Error("zero world hashrate should fail")
	}
	if _, err := m.Simulate(mi, 1e6, -0.1, 100); err == nil {
		t.Error("negative growth should fail")
	}
	if _, err := m.Simulate(mi, 1e6, 0, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	bad := mi
	bad.HashrateGHs = 0
	if _, err := m.Simulate(bad, 1e6, 0, 100); err == nil {
		t.Error("zero hashrate miner should fail")
	}
}
