package bitcoin

import (
	"errors"
	"testing"
)

// easyBits is a demo-grade target: a share every ~256 hashes.
const easyBits = 0x2000ffff

// mineBlock builds and mines a valid block on the given parent.
func mineBlock(t *testing.T, prev [32]byte, tag byte, timestamp uint32) Block {
	t.Helper()
	var digest [32]byte
	digest[0] = tag
	b := NewBlock(prev, digest, timestamp, easyBits)
	nonce, found, err := Mine(&b.Header, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("could not mine a demo block")
	}
	b.Header.Nonce = nonce
	return b
}

// newTestChain mines a genesis and opens a ledger on it.
func newTestChain(t *testing.T) (*Chain, Block) {
	t.Helper()
	genesis := mineBlock(t, [32]byte{}, 0x67, 1231006505)
	c, err := NewChain(genesis)
	if err != nil {
		t.Fatal(err)
	}
	return c, genesis
}

func TestChainLinearGrowth(t *testing.T) {
	c, genesis := newTestChain(t)
	prev := genesis.Hash()
	for i := 1; i <= 5; i++ {
		b := mineBlock(t, prev, byte(i), uint32(1231006505+i*600))
		becameTip, err := c.Add(b)
		if err != nil {
			t.Fatal(err)
		}
		if !becameTip {
			t.Fatalf("block %d should extend the tip", i)
		}
		prev = b.Hash()
	}
	if c.Height() != 5 {
		t.Errorf("height = %d, want 5", c.Height())
	}
	main := c.MainChain()
	if len(main) != 6 {
		t.Fatalf("main chain has %d blocks, want 6", len(main))
	}
	// Linkage is intact genesis → tip.
	for i := 1; i < len(main); i++ {
		if main[i].Header.PrevBlock != main[i-1].Hash() {
			t.Fatalf("chain linkage broken at %d", i)
		}
	}
	if c.TotalWork().Sign() <= 0 {
		t.Error("total work should be positive")
	}
}

func TestChainRejectsInvalidBlocks(t *testing.T) {
	c, genesis := newTestChain(t)

	// Bad PoW: valid structure, wrong nonce (overwhelmingly invalid).
	bad := mineBlock(t, genesis.Hash(), 9, 1231007105)
	bad.Header.Nonce++
	if _, err := c.Add(bad); !errors.Is(err, ErrBadPoW) {
		t.Errorf("expected ErrBadPoW, got %v", err)
	}

	// Unknown parent.
	var orphanParent [32]byte
	orphanParent[5] = 0xde
	orphan := mineBlock(t, orphanParent, 10, 1231007105)
	if _, err := c.Add(orphan); !errors.Is(err, ErrUnknownParent) {
		t.Errorf("expected ErrUnknownParent, got %v", err)
	}

	// Broken transaction commitment.
	forged := mineBlock(t, genesis.Hash(), 11, 1231007105)
	forged.TxDigest[0] ^= 0xff // header no longer commits to the txs
	if _, err := c.Add(forged); !errors.Is(err, ErrBadCommitment) {
		t.Errorf("expected ErrBadCommitment, got %v", err)
	}

	// Duplicate.
	good := mineBlock(t, genesis.Hash(), 12, 1231007105)
	if _, err := c.Add(good); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(good); !errors.Is(err, ErrDuplicate) {
		t.Errorf("expected ErrDuplicate, got %v", err)
	}
}

func TestForkResolution(t *testing.T) {
	// "In the infrequent case where two machines on the network have
	// found a winning hash and broadcasted new blocks in parallel, and
	// the chain has 'forked', the long version has priority."
	c, genesis := newTestChain(t)

	a1 := mineBlock(t, genesis.Hash(), 0xa1, 1231007105)
	b1 := mineBlock(t, genesis.Hash(), 0xb1, 1231007106)
	if _, err := c.Add(a1); err != nil {
		t.Fatal(err)
	}
	// The competing block arrives but does not displace the first tip
	// (equal work: first seen wins).
	becameTip, err := c.Add(b1)
	if err != nil {
		t.Fatal(err)
	}
	if becameTip {
		t.Error("equal-work fork should not displace the current tip")
	}
	if c.Tip() != a1.Hash() {
		t.Error("tip should remain the first branch")
	}

	// The b-branch extends first: reorg.
	b2 := mineBlock(t, b1.Hash(), 0xb2, 1231007706)
	becameTip, err = c.Add(b2)
	if err != nil {
		t.Fatal(err)
	}
	if !becameTip {
		t.Fatal("longer fork should take over")
	}
	if c.Tip() != b2.Hash() || c.Height() != 2 {
		t.Error("reorg did not move the tip")
	}
	// The stale branch is known but off the main chain.
	if !c.Contains(b1.Hash()) || !c.Contains(genesis.Hash()) {
		t.Error("main chain membership wrong for the winning branch")
	}
	if c.Contains(a1.Hash()) {
		t.Error("stale block should not be on the main chain")
	}
	if c.Blocks() != 4 {
		t.Errorf("known blocks = %d, want 4 (incl. the stale one)", c.Blocks())
	}
	// The main chain is genesis → b1 → b2.
	main := c.MainChain()
	if len(main) != 3 || main[1].Hash() != b1.Hash() {
		t.Error("main chain should follow the b branch")
	}
}

func TestWorkWeightedSelection(t *testing.T) {
	// A single high-difficulty block outweighs several easy ones —
	// consensus follows work, not block count.
	c, genesis := newTestChain(t)
	easy1 := mineBlock(t, genesis.Hash(), 1, 1231007105)
	easy2Parent := easy1.Hash()
	if _, err := c.Add(easy1); err != nil {
		t.Fatal(err)
	}
	easy2 := mineBlock(t, easy2Parent, 2, 1231007705)
	if _, err := c.Add(easy2); err != nil {
		t.Fatal(err)
	}

	// A harder competing block directly on genesis (16x the work of an
	// easy block: two fewer mantissa F's → smaller target).
	var digest [32]byte
	digest[0] = 0xcc
	hard := NewBlock(genesis.Hash(), digest, 1231007105, 0x20000fff)
	nonce, found, err := Mine(&hard.Header, 0, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Skip("did not find a hard demo block in the budget")
	}
	hard.Header.Nonce = nonce
	becameTip, err := c.Add(hard)
	if err != nil {
		t.Fatal(err)
	}
	if !becameTip {
		t.Error("the heavier one-block fork should win over two easy blocks")
	}
	if c.Height() != 1 {
		t.Errorf("height = %d, want 1 (the hard branch)", c.Height())
	}
}

func TestNewChainValidatesGenesis(t *testing.T) {
	var digest [32]byte
	g := NewBlock([32]byte{}, digest, 1, easyBits)
	g.Header.Nonce = 0xdeadbeef // almost surely invalid
	if ok, _ := CheckProofOfWork(&g.Header); !ok {
		if _, err := NewChain(g); !errors.Is(err, ErrBadPoW) {
			t.Errorf("expected ErrBadPoW for unmined genesis, got %v", err)
		}
	}
}

func TestGetAndMembership(t *testing.T) {
	c, genesis := newTestChain(t)
	if _, ok := c.Get(genesis.Hash()); !ok {
		t.Error("genesis should be retrievable")
	}
	var missing [32]byte
	missing[0] = 0x99
	if _, ok := c.Get(missing); ok {
		t.Error("unknown hash should miss")
	}
	if c.Contains(missing) {
		t.Error("unknown hash is not on the main chain")
	}
}
