package bitcoin

import (
	"bytes"
	cryptosha "crypto/sha256"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func TestSum256KnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
		{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
	}
	for _, c := range cases {
		got := Sum256([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("Sum256(%q) = %x, want %s", c.in, got, c.want)
		}
	}
}

func TestSum256MatchesStdlibProperty(t *testing.T) {
	// Our from-scratch implementation must agree with crypto/sha256 on
	// arbitrary inputs, including lengths that exercise every padding
	// path (>= 56 bytes remainder, multi-block, empty).
	f := func(data []byte) bool {
		ours := Sum256(data)
		std := cryptosha.Sum256(data)
		return ours == std
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Deterministic boundary lengths.
	for _, n := range []int{0, 1, 55, 56, 57, 63, 64, 65, 119, 120, 128, 1000} {
		data := bytes.Repeat([]byte{0xa5}, n)
		if Sum256(data) != cryptosha.Sum256(data) {
			t.Errorf("mismatch at length %d", n)
		}
	}
}

func TestDoubleSum256(t *testing.T) {
	data := []byte("hello")
	first := cryptosha.Sum256(data)
	want := cryptosha.Sum256(first[:])
	if got := DoubleSum256(data); got != want {
		t.Errorf("DoubleSum256 = %x, want %x", got, want)
	}
}

func TestCompressMatchesOneBlock(t *testing.T) {
	// Compressing a hand-padded single block must equal Sum256.
	var block [64]byte
	copy(block[:], "abc")
	block[3] = 0x80
	block[63] = 24 // bit length of "abc"
	got := Compress(initState, &block).Bytes()
	want := Sum256([]byte("abc"))
	if got != want {
		t.Errorf("Compress path = %x, want %x", got, want)
	}
}

func TestStateBytesRoundTrip(t *testing.T) {
	b := initState.Bytes()
	if len(b) != 32 {
		t.Fatal("state must serialize to 32 bytes")
	}
	// First word of the IV is 0x6a09e667.
	if b[0] != 0x6a || b[1] != 0x09 || b[2] != 0xe6 || b[3] != 0x67 {
		t.Errorf("big-endian serialization broken: % x", b[:4])
	}
}
