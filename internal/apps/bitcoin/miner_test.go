package bitcoin

import (
	"encoding/hex"
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

// genesisHeader returns Bitcoin block 0 (3 January 2009).
func genesisHeader() Header {
	var h Header
	h.Version = 1
	merkle, _ := hex.DecodeString("3ba3edfd7a7b12b27ac72c3e67768f617fc81bc3888a51323a9fb8aa4b1e5e4a")
	copy(h.MerkleRoot[:], merkle)
	h.Time = 1231006505
	h.Bits = 0x1d00ffff
	h.Nonce = 2083236893
	return h
}

func TestGenesisBlockHash(t *testing.T) {
	h := genesisHeader()
	got := h.Hash()
	// Display order (reversed): 000000000019d668...
	want, _ := hex.DecodeString("6fe28c0ab6f1b372c1a6a246ae63f74f931e8365e15a089c68d6190000000000")
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("genesis hash = %x, want %x", got, want)
		}
	}
	ok, err := CheckProofOfWork(&h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("the genesis block must satisfy its own proof of work")
	}
}

func TestGenesisFailsWithWrongNonce(t *testing.T) {
	h := genesisHeader()
	h.Nonce++
	ok, err := CheckProofOfWork(&h)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("wrong nonce should fail proof of work")
	}
}

func TestMidstatePathMatchesFullHash(t *testing.T) {
	h := genesisHeader()
	mid := h.Midstate()
	f := func(nonce uint32) bool {
		viaMid := h.HashWithMidstate(mid, nonce)
		full := h
		full.Nonce = nonce
		return viaMid == full.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompactToTargetDiff1(t *testing.T) {
	target, err := CompactToTarget(0x1d00ffff)
	if err != nil {
		t.Fatal(err)
	}
	// 0x00000000FFFF0000...0000 (26 zero bytes after the FFFF).
	want := new(big.Int).Lsh(big.NewInt(0xffff), 8*26)
	if target.Cmp(want) != 0 {
		t.Errorf("diff-1 target = %x, want %x", target, want)
	}
	d, err := Difficulty(0x1d00ffff)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("difficulty of 0x1d00ffff = %v, want 1", d)
	}
}

func TestCompactRejectsNegative(t *testing.T) {
	if _, err := CompactToTarget(0x1d800000); err == nil {
		t.Error("sign-bit target should be rejected")
	}
}

func TestTargetCompactRoundTrip(t *testing.T) {
	for _, bits := range []uint32{0x1d00ffff, 0x1b0404cb, 0x1a05db8b, 0x207fffff} {
		target, err := CompactToTarget(bits)
		if err != nil {
			t.Fatal(err)
		}
		if got := TargetToCompact(target); got != bits {
			t.Errorf("round trip of %08x = %08x", bits, got)
		}
	}
	if got := TargetToCompact(big.NewInt(0)); got != 0 {
		t.Errorf("zero target compact = %08x, want 0", got)
	}
}

func TestHigherDifficultyLowerTarget(t *testing.T) {
	d1, _ := Difficulty(0x1d00ffff)
	d2, _ := Difficulty(0x1b0404cb) // a 2010-era difficulty (~16307)
	if d2 <= d1 {
		t.Errorf("smaller target should mean higher difficulty: %v vs %v", d1, d2)
	}
	if d2 < 16000 || d2 > 16700 {
		t.Errorf("difficulty of 0x1b0404cb = %v, want ~16307", d2)
	}
}

func TestMineFindsEasyBlock(t *testing.T) {
	// Trivial difficulty: a target so large that nearly any nonce wins.
	h := genesisHeader()
	h.Bits = 0x207fffff // regtest-style easy target
	nonce, found, err := Mine(&h, 0, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("easy target should be found quickly")
	}
	h.Nonce = nonce
	ok, err := CheckProofOfWork(&h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("mined nonce does not verify")
	}
}

func TestMineFindsGenesisNonce(t *testing.T) {
	// Scanning a window that contains the historical nonce must find it.
	h := genesisHeader()
	start := h.Nonce - 50
	nonce, found, err := Mine(&h, start, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !found || nonce != genesisHeader().Nonce {
		t.Errorf("Mine found (%v, %v), want the historical nonce", nonce, found)
	}
}

func TestMineGivesUp(t *testing.T) {
	h := genesisHeader()
	// Impossible window: genuine difficulty with only a few attempts
	// starting away from the solution.
	_, found, err := Mine(&h, 12345, 100)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("should not find a real-difficulty block in 100 tries")
	}
}

func TestMarshalLayout(t *testing.T) {
	h := genesisHeader()
	b := h.Marshal()
	if len(b) != 80 {
		t.Fatalf("header length = %d, want 80", len(b))
	}
	// Version 1, little endian.
	if b[0] != 1 || b[1] != 0 || b[2] != 0 || b[3] != 0 {
		t.Errorf("version bytes = % x", b[:4])
	}
	// Nonce at 76..80.
	if got := uint32(b[76]) | uint32(b[77])<<8 | uint32(b[78])<<16 | uint32(b[79])<<24; got != h.Nonce {
		t.Errorf("nonce bytes decode to %d, want %d", got, h.Nonce)
	}
}

func TestRCASpecMatchesEstimator(t *testing.T) {
	// The published RCA spec and the structural netlist must agree:
	// the same cross-check the paper performed with Synopsys tools.
	spec := RCA()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	// (Estimator agreement is asserted in internal/vlsi tests; here we
	// check the published constants.)
	if spec.Area != 0.66 || spec.NominalPowerDensity != 2.0 {
		t.Error("published RCA constants drifted")
	}
	if spec.NominalPerf != 0.83 || spec.NominalFreq != 830e6 {
		t.Error("one hash per cycle at 830 MHz expected")
	}
	n := Netlist()
	if n.Flops != 2*Rounds*768 || n.CombActivity != 0.5 || n.FlopActivity != 1.0 {
		t.Error("netlist structure drifted from the paper's description")
	}
}

func TestRolledCoreTradeoffs(t *testing.T) {
	rolled := RolledRCA()
	if err := rolled.Validate(); err != nil {
		t.Fatal(err)
	}
	pipelined := RCA()
	// The rolled core is two orders of magnitude smaller and slower.
	if rolled.Area >= pipelined.Area/50 {
		t.Errorf("rolled core area %.4f mm² should be ~1/128 of %.2f", rolled.Area, pipelined.Area)
	}
	if rolled.NominalPerf >= pipelined.NominalPerf/50 {
		t.Errorf("rolled core perf %.5f should be ~1/128 of %.2f", rolled.NominalPerf, pipelined.NominalPerf)
	}
	// Both styles land at crypto-class power density (within 2x).
	ratio := rolled.NominalPowerDensity / pipelined.NominalPowerDensity
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("rolled/pipelined power density ratio = %.2f, want same class", ratio)
	}
	// Per-area throughput: the pipelined style wins, which is why it is
	// "the most prevalent style" (paper §7).
	rolledEff := rolled.NominalPerf / rolled.Area
	pipeEff := pipelined.NominalPerf / pipelined.Area
	if rolledEff >= pipeEff {
		t.Errorf("pipelined GH/s/mm² (%.3f) should beat rolled (%.3f)", pipeEff, rolledEff)
	}
}

func TestEstimateHashrate(t *testing.T) {
	// 600 shares at difficulty 1 in 600 s is one diff-1 share per
	// second: 2^32 H/s.
	got, err := EstimateHashrate(600, 1, 600)
	if err != nil {
		t.Fatal(err)
	}
	if got != math.Pow(2, 32) {
		t.Errorf("hashrate = %v, want 2^32", got)
	}
	// Higher share difficulty means each share proves more work.
	high, _ := EstimateHashrate(600, 64, 600)
	if high != got*64 {
		t.Errorf("difficulty-64 estimate = %v, want 64x", high)
	}
	if _, err := EstimateHashrate(-1, 1, 1); err == nil {
		t.Error("negative shares should fail")
	}
	if _, err := EstimateHashrate(1, 0, 1); err == nil {
		t.Error("zero difficulty should fail")
	}
	if _, err := EstimateHashrate(1, 1, 0); err == nil {
		t.Error("zero interval should fail")
	}
}
