package bitcoin

import (
	"bytes"
	cryptosha "crypto/sha256"
	"testing"
)

func FuzzSum256MatchesStdlib(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("abc"))
	f.Add(bytes.Repeat([]byte{0x55}, 55))
	f.Add(bytes.Repeat([]byte{0x38}, 56))
	f.Add(bytes.Repeat([]byte{0x40}, 64))
	f.Add(bytes.Repeat([]byte{0x80}, 119))
	f.Add(bytes.Repeat([]byte{0xff}, 1000))
	f.Fuzz(func(t *testing.T, data []byte) {
		ours := Sum256(data)
		std := cryptosha.Sum256(data)
		if ours != std {
			t.Fatalf("Sum256 mismatch for %d bytes", len(data))
		}
	})
}

func FuzzCompactTargetRoundTrip(f *testing.F) {
	f.Add(uint32(0x1d00ffff))
	f.Add(uint32(0x1b0404cb))
	f.Add(uint32(0x207fffff))
	f.Add(uint32(0x03123456))
	f.Fuzz(func(t *testing.T, bits uint32) {
		target, err := CompactToTarget(bits)
		if err != nil {
			return // sign-bit encodings are rejected by design
		}
		if target.Sign() <= 0 {
			return // zero-mantissa encodings have no canonical form
		}
		back := TargetToCompact(target)
		target2, err := CompactToTarget(back)
		if err != nil {
			t.Fatalf("re-encoding %08x -> %08x became invalid", bits, back)
		}
		// The compact format is lossy (mantissa truncation), but a
		// canonical round trip must be a fixed point.
		if TargetToCompact(target2) != back {
			t.Fatalf("canonical form of %08x is not a fixed point", bits)
		}
	})
}

func FuzzMidstateMatchesFullHash(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0x1d00ffff))
	f.Add(uint32(123456), uint32(1231006505), uint32(0x207fffff))
	f.Fuzz(func(t *testing.T, nonce, timestamp, bits uint32) {
		h := Header{Version: 2, Time: timestamp, Bits: bits}
		viaMid := h.HashWithMidstate(h.Midstate(), nonce)
		h.Nonce = nonce
		if viaMid != h.Hash() {
			t.Fatalf("midstate path diverged at nonce %d", nonce)
		}
	})
}
