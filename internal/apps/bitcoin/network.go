package bitcoin

import (
	"fmt"
	"math"

	"asiccloud/internal/units"
)

// The Figure 1 simulator: the global Bitcoin network ramping "through the
// full spectrum of specialization, from CPU to GPU, from GPU to FPGA,
// from FPGA to older ASIC nodes, and finally to the latest ASIC nodes",
// with difficulty retargeting every 2016 blocks.

// Generation is one wave of mining technology.
type Generation struct {
	Name string
	// Node is the process node in nm (0 for CPU/GPU/FPGA generations).
	Node int
	// LaunchYears is the deployment midpoint in years since genesis.
	LaunchYears float64
	// RampYears is the logistic time constant of fleet buildout.
	RampYears float64
	// PeakGHs is the generation's eventual world hashrate contribution.
	PeakGHs float64
}

// HistoricalGenerations reconstructs the paper's annotated technology
// progression (Figure 1): CPUs from genesis (Jan 2009), GPUs, FPGAs,
// then ASICs at 130/110/65/55/28/22/20/16 nm, calibrated so the network
// reaches ~575 million GH/s about 6.8 years in (Nov 2015).
func HistoricalGenerations() []Generation {
	return []Generation{
		{Name: "CPU", Node: 0, LaunchYears: 0.0, RampYears: 0.5, PeakGHs: 0.05},
		{Name: "GPU", Node: 0, LaunchYears: 1.6, RampYears: 0.4, PeakGHs: 50},
		{Name: "FPGA", Node: 0, LaunchYears: 2.6, RampYears: 0.4, PeakGHs: 4_000},
		{Name: "ASIC 130nm", Node: 130, LaunchYears: 4.0, RampYears: 0.25, PeakGHs: 40_000},
		{Name: "ASIC 110nm", Node: 110, LaunchYears: 4.2, RampYears: 0.25, PeakGHs: 120_000},
		{Name: "ASIC 65nm", Node: 65, LaunchYears: 4.35, RampYears: 0.25, PeakGHs: 400_000},
		{Name: "ASIC 55nm", Node: 55, LaunchYears: 4.55, RampYears: 0.3, PeakGHs: 2_000_000},
		{Name: "ASIC 28nm", Node: 28, LaunchYears: 4.85, RampYears: 0.35, PeakGHs: 25_000_000},
		{Name: "ASIC 22nm", Node: 22, LaunchYears: 5.0, RampYears: 0.4, PeakGHs: 40_000_000},
		{Name: "ASIC 20nm", Node: 20, LaunchYears: 5.6, RampYears: 0.4, PeakGHs: 200_000_000},
		{Name: "ASIC 16nm", Node: 16, LaunchYears: 6.4, RampYears: 0.4, PeakGHs: 320_000_000},
	}
}

// FleetHashrate returns the world hashrate in GH/s at t years since
// genesis for the given technology waves (logistic adoption curves).
func FleetHashrate(gens []Generation, years float64) float64 {
	var total float64
	for _, g := range gens {
		ramp := g.RampYears
		if ramp <= 0 {
			ramp = 0.3
		}
		total += g.PeakGHs / (1 + math.Exp(-(years-g.LaunchYears)/ramp))
	}
	return total
}

// NetworkParams configure the difficulty-retarget simulation.
type NetworkParams struct {
	// TargetBlockSeconds is Bitcoin's 600-second block target.
	TargetBlockSeconds float64
	// RetargetBlocks is the adjustment period: "approximately every
	// 2016 blocks (or two weeks), the difficulty of mining is
	// adjusted".
	RetargetBlocks int
	// MaxAdjust clamps a single retarget step (Bitcoin uses 4).
	MaxAdjust float64
	// InitialHashrateGHs anchors difficulty 1; the paper normalizes to
	// "the initial mining network throughput, 7.15 MH/s".
	InitialHashrateGHs float64
}

// DefaultNetworkParams returns Bitcoin's consensus constants.
func DefaultNetworkParams() NetworkParams {
	return NetworkParams{
		TargetBlockSeconds: 600,
		RetargetBlocks:     2016,
		MaxAdjust:          4,
		InitialHashrateGHs: 7.15e-3, // 7.15 MH/s
	}
}

// Sample is one retarget period of the simulated network.
type Sample struct {
	Years      float64 // time since genesis at the period end
	Block      int     // chain height
	Difficulty float64 // difficulty during the period
	HashrateGH float64 // world hashrate at the period end (GH/s)
}

// SimulateNetwork steps the chain block-by-block under the fleet's
// hashrate growth, applying Bitcoin's retarget rule, and returns one
// sample per retarget period until the horizon.
func SimulateNetwork(gens []Generation, p NetworkParams, horizonYears float64) ([]Sample, error) {
	if p.TargetBlockSeconds <= 0 || p.RetargetBlocks <= 0 || p.InitialHashrateGHs <= 0 {
		return nil, fmt.Errorf("bitcoin: invalid network params %+v", p)
	}
	if horizonYears <= 0 {
		return nil, fmt.Errorf("bitcoin: non-positive horizon")
	}
	// Julian year: block timing uses calendar time, not the explorer's
	// 365-day amortization year.
	const secondsPerYear = 365.25 * 24 * units.SecondsPerHour
	// Difficulty d means a block takes d * 2^32 hashes in expectation;
	// calibrate difficulty 1 to the initial fleet.
	hashesPerDiff1 := units.GHsToHs(p.InitialHashrateGHs) * p.TargetBlockSeconds

	var out []Sample
	t := 0.0 // seconds since genesis
	diff := 1.0
	block := 0
	for t < horizonYears*secondsPerYear {
		periodStart := t
		// Expected time for one retarget period at the prevailing
		// hashrate, integrating block by block.
		for i := 0; i < p.RetargetBlocks; i++ {
			h := units.GHsToHs(FleetHashrate(gens, t/secondsPerYear)) // H/s
			if h <= 0 {
				return nil, fmt.Errorf("bitcoin: fleet hashrate non-positive at %.2f years", t/secondsPerYear)
			}
			t += diff * hashesPerDiff1 / h
			block++
		}
		out = append(out, Sample{
			Years:      t / secondsPerYear,
			Block:      block,
			Difficulty: diff,
			HashrateGH: FleetHashrate(gens, t/secondsPerYear),
		})
		// Retarget: scale difficulty so the next period takes two weeks
		// at the observed solve rate, clamped to 4x per step.
		actual := t - periodStart
		want := float64(p.RetargetBlocks) * p.TargetBlockSeconds
		adj := want / actual
		if adj > p.MaxAdjust {
			adj = p.MaxAdjust
		}
		if adj < 1/p.MaxAdjust {
			adj = 1 / p.MaxAdjust
		}
		diff *= adj
	}
	return out, nil
}
