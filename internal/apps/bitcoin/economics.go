package bitcoin

import (
	"fmt"
	"math"
)

// The economics that powered the first ASIC Clouds (paper §2-3): "every
// time a machine succeeds in posting a transaction to the blockchain, it
// receives a blockchain reward ... the fraction of the 3600 bitcoins
// distributed daily that a miner receives is approximately proportional
// to the ratio of their hashrate to the world-wide network hashrate."
// Because the world hashrate grows relentlessly (Figure 1), a machine's
// revenue decays over its life — the reason ASIC servers amortize over
// 1.5 years rather than 3, and why being first to deploy mattered so
// much ("Because ASICMiner did not have to ship units to customers, they
// were the first to be able to mine and thus captured a large fraction
// of the total network hash rate").

// Market holds the revenue-side parameters.
type Market struct {
	// BTCPrice in dollars ("as of late April 2016, is around $429").
	BTCPrice float64
	// RewardBTC per block (25 BTC at the time of the paper).
	RewardBTC float64
	// BlocksPerDay (approximately 144).
	BlocksPerDay float64
	// TipFraction adds the optional transaction tips ("these tips
	// comprise only a few percent of revenue").
	TipFraction float64
}

// PaperMarket is April 2016: $429/BTC, 25 BTC rewards.
func PaperMarket() Market {
	return Market{BTCPrice: 429, RewardBTC: 25, BlocksPerDay: 144, TipFraction: 0.02}
}

// Validate reports whether the market is usable.
func (m Market) Validate() error {
	if m.BTCPrice <= 0 || m.RewardBTC <= 0 || m.BlocksPerDay <= 0 {
		return fmt.Errorf("bitcoin: market parameters must be positive")
	}
	if m.TipFraction < 0 || m.TipFraction > 0.5 {
		return fmt.Errorf("bitcoin: tip fraction %v outside [0, 0.5]", m.TipFraction)
	}
	return nil
}

// DailyNetworkRevenue is the whole network's daily income in dollars
// ("the total value per day of mining is around $1.5M USD" at the 2016
// peak prices the paper quotes).
func (m Market) DailyNetworkRevenue() float64 {
	return m.BTCPrice * m.RewardBTC * m.BlocksPerDay * (1 + m.TipFraction)
}

// Miner couples a fleet's hashrate and operating cost.
type Miner struct {
	// HashrateGHs of the deployed fleet.
	HashrateGHs float64
	// PowerW is the fleet's wall power.
	PowerW float64
	// CapitalUSD is the upfront hardware cost.
	CapitalUSD float64
	// ElectricityPerKWh is the operator's energy price.
	ElectricityPerKWh float64
}

// Validate reports whether the miner is usable.
func (mi Miner) Validate() error {
	if mi.HashrateGHs <= 0 || mi.PowerW < 0 || mi.CapitalUSD < 0 || mi.ElectricityPerKWh < 0 {
		return fmt.Errorf("bitcoin: miner parameters out of range")
	}
	return nil
}

// Profitability is the outcome of a deployment simulation.
type Profitability struct {
	RevenueUSD    float64 // cumulative gross revenue
	EnergyCostUSD float64 // cumulative electricity
	NetUSD        float64 // revenue - energy - capital
	PaybackDays   float64 // days to recover capital (+Inf if never)
	FinalShare    float64 // miner's network share at the horizon
	InitialShare  float64 // miner's network share at deployment
	HorizonDays   float64
}

// Simulate runs the miner against a growing network for horizonDays,
// starting when the world hashrate is worldGHs and growing by
// growthPerMonth (fractional, e.g. 0.3 = +30%/month — the paper's ramp
// averaged far more). Day granularity.
func (m Market) Simulate(mi Miner, worldGHs, growthPerMonth, horizonDays float64) (Profitability, error) {
	if err := m.Validate(); err != nil {
		return Profitability{}, err
	}
	if err := mi.Validate(); err != nil {
		return Profitability{}, err
	}
	if worldGHs <= 0 || horizonDays <= 0 {
		return Profitability{}, fmt.Errorf("bitcoin: world hashrate and horizon must be positive")
	}
	if growthPerMonth < 0 {
		return Profitability{}, fmt.Errorf("bitcoin: negative network growth")
	}
	dailyGrowth := math.Pow(1+growthPerMonth, 1.0/30) - 1
	dailyRevenue := m.DailyNetworkRevenue()
	dailyEnergy := mi.PowerW / 1000 * 24 * mi.ElectricityPerKWh

	p := Profitability{
		HorizonDays:  horizonDays,
		InitialShare: mi.HashrateGHs / (worldGHs + mi.HashrateGHs),
		PaybackDays:  math.Inf(1),
	}
	world := worldGHs
	cum := -mi.CapitalUSD
	for day := 1.0; day <= horizonDays; day++ {
		share := mi.HashrateGHs / (world + mi.HashrateGHs)
		p.RevenueUSD += share * dailyRevenue
		p.EnergyCostUSD += dailyEnergy
		cum = p.RevenueUSD - p.EnergyCostUSD - mi.CapitalUSD
		if cum >= 0 && math.IsInf(p.PaybackDays, 1) {
			p.PaybackDays = day
		}
		world *= 1 + dailyGrowth
	}
	p.NetUSD = cum
	p.FinalShare = mi.HashrateGHs / (world + mi.HashrateGHs)
	return p, nil
}

// FirstMoverAdvantage quantifies §3's observation: the same fleet
// deployed delayDays later earns this fraction of the on-time fleet's
// revenue over the same operating lifetime, purely because the network
// grew in the meantime.
func (m Market) FirstMoverAdvantage(mi Miner, worldGHs, growthPerMonth, lifetimeDays, delayDays float64) (float64, error) {
	onTime, err := m.Simulate(mi, worldGHs, growthPerMonth, lifetimeDays)
	if err != nil {
		return 0, err
	}
	if delayDays < 0 {
		return 0, fmt.Errorf("bitcoin: negative delay")
	}
	grownWorld := worldGHs * math.Pow(1+growthPerMonth, delayDays/30)
	late, err := m.Simulate(mi, grownWorld, growthPerMonth, lifetimeDays)
	if err != nil {
		return 0, err
	}
	if onTime.RevenueUSD <= 0 {
		return 0, fmt.Errorf("bitcoin: zero on-time revenue")
	}
	return late.RevenueUSD / onTime.RevenueUSD, nil
}
