// Package bitcoin is the functional substrate of the paper's first ASIC
// Cloud: a from-scratch SHA-256 implementation, the double-SHA mining
// operation with midstate optimization, Bitcoin compact-target difficulty
// arithmetic, the global-network difficulty simulator behind Figure 1,
// and the published 28nm RCA specification (paper §2, §7).
//
// SHA-256 is implemented from the FIPS 180-4 specification rather than
// wrapping crypto/sha256, because the RCA model needs visibility into the
// round structure: the paper's Bitcoin RCA is a fully unrolled pipeline
// of 128 one-clock stages, one per SHA-256 round across the two hashes.
//
// RCA returns the published accelerator spec (performance in GH/s);
// it is the "bitcoin" application of both the CLI and the asiccloudd
// service.
package bitcoin
