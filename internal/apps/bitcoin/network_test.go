package bitcoin

import (
	"math"
	"testing"
)

func TestFleetHashrateMonotone(t *testing.T) {
	gens := HistoricalGenerations()
	prev := 0.0
	for y := 0.0; y <= 7; y += 0.1 {
		h := FleetHashrate(gens, y)
		if h <= prev {
			t.Fatalf("fleet hashrate not increasing at %.1f years: %v vs %v", y, h, prev)
		}
		prev = h
	}
}

func TestFleetReaches575MGH(t *testing.T) {
	// Paper: "approximately 575 million GH/s as of November 2015"
	// (~6.85 years after the January 2009 genesis).
	h := FleetHashrate(HistoricalGenerations(), 6.85)
	if h < 400e6 || h > 800e6 {
		t.Errorf("fleet at Nov 2015 = %.3g GH/s, want ~575e6", h)
	}
}

func TestSimulateNetworkFigure1(t *testing.T) {
	samples, err := SimulateNetwork(HistoricalGenerations(), DefaultNetworkParams(), 6.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 100 {
		t.Fatalf("only %d retarget periods in ~6.9 years", len(samples))
	}
	last := samples[len(samples)-1]
	// Paper: "the difficulty and hashrate have increased by an
	// incredible factor of 50 billion since 2009".
	if last.Difficulty < 1e10 || last.Difficulty > 2e11 {
		t.Errorf("final difficulty ratio = %.3g, want ~5e10", last.Difficulty)
	}
	// Blocks come roughly every 10 minutes, so ~52,560 blocks/year.
	wantBlocks := 6.9 * 52560
	if math.Abs(float64(last.Block)-wantBlocks)/wantBlocks > 0.25 {
		t.Errorf("chain height = %d, want ~%.0f", last.Block, wantBlocks)
	}
	// Difficulty must track hashrate: once the network has ramped,
	// difficulty ≈ hashrate * 600 / (initial hashrate * 600) within the
	// retarget hysteresis.
	for _, s := range samples[len(samples)/2:] {
		implied := s.HashrateGH / DefaultNetworkParams().InitialHashrateGHs
		ratio := s.Difficulty / implied
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("difficulty %g does not track hashrate-implied %g at %.2f years",
				s.Difficulty, implied, s.Years)
		}
	}
	// Difficulty is nondecreasing under monotone hashrate growth.
	for i := 1; i < len(samples); i++ {
		if samples[i].Difficulty < samples[i-1].Difficulty*0.99 {
			t.Errorf("difficulty regressed at sample %d", i)
		}
	}
}

func TestRetargetClamp(t *testing.T) {
	// With an explosive fleet (hashrate jumping orders of magnitude
	// within a period), each retarget step is limited to 4x.
	gens := []Generation{
		{Name: "slow", LaunchYears: 0, RampYears: 0.1, PeakGHs: 0.01},
		{Name: "boom", LaunchYears: 0.2, RampYears: 0.01, PeakGHs: 1e6},
	}
	p := DefaultNetworkParams()
	samples, err := SimulateNetwork(gens, p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(samples); i++ {
		step := samples[i].Difficulty / samples[i-1].Difficulty
		if step > p.MaxAdjust+1e-9 {
			t.Fatalf("retarget step %v exceeds clamp %v", step, p.MaxAdjust)
		}
	}
}

func TestSimulateNetworkErrors(t *testing.T) {
	p := DefaultNetworkParams()
	if _, err := SimulateNetwork(HistoricalGenerations(), p, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	bad := p
	bad.TargetBlockSeconds = 0
	if _, err := SimulateNetwork(HistoricalGenerations(), bad, 1); err == nil {
		t.Error("invalid params should fail")
	}
	if _, err := SimulateNetwork(nil, p, 1); err == nil {
		t.Error("empty fleet should fail (zero hashrate)")
	}
}

func TestGenerationAnnotations(t *testing.T) {
	gens := HistoricalGenerations()
	// The paper's node progression: first three generations are
	// CPU/GPU/FPGA (node 0), then strictly shrinking ASIC nodes.
	if gens[0].Name != "CPU" || gens[1].Name != "GPU" || gens[2].Name != "FPGA" {
		t.Error("first three generations should be CPU, GPU, FPGA")
	}
	prevNode := 1 << 30
	for _, g := range gens[3:] {
		if g.Node <= 0 {
			t.Errorf("%s: ASIC generation missing node", g.Name)
		}
		if g.Node >= prevNode {
			t.Errorf("%s: nodes should shrink monotonically", g.Name)
		}
		prevNode = g.Node
	}
	// Launches are ordered in time.
	for i := 1; i < len(gens); i++ {
		if gens[i].LaunchYears < gens[i-1].LaunchYears {
			t.Error("generation launches should be chronological")
		}
	}
}
