package bitcoin

import "encoding/binary"

// Rounds is the number of SHA-256 compression rounds; the Bitcoin RCA
// unrolls two full hashes into 2×64 pipeline stages.
const Rounds = 64

// k is the SHA-256 round-constant schedule (fractional parts of the cube
// roots of the first 64 primes).
var k = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// initState is the SHA-256 initialization vector (fractional parts of
// the square roots of the first 8 primes).
var initState = State{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

// State is the 8-word SHA-256 chaining state. The mining midstate
// optimization caches this value between nonce attempts.
type State [8]uint32

func rotr(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }

// Compress runs the 64-round SHA-256 compression function on one 64-byte
// block, returning the updated chaining state. This is the operation the
// RCA pipelines one round per clock.
func Compress(s State, block *[64]byte) State {
	var w [64]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(block[i*4:])
	}
	for i := 16; i < 64; i++ {
		s0 := rotr(w[i-15], 7) ^ rotr(w[i-15], 18) ^ (w[i-15] >> 3)
		s1 := rotr(w[i-2], 17) ^ rotr(w[i-2], 19) ^ (w[i-2] >> 10)
		w[i] = w[i-16] + s0 + w[i-7] + s1
	}
	a, b, c, d, e, f, g, h := s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]
	for i := 0; i < 64; i++ {
		S1 := rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
		ch := (e & f) ^ (^e & g)
		t1 := h + S1 + ch + k[i] + w[i]
		S0 := rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
		maj := (a & b) ^ (a & c) ^ (b & c)
		t2 := S0 + maj
		h, g, f, e, d, c, b, a = g, f, e, d+t1, c, b, a, t1+t2
	}
	s[0] += a
	s[1] += b
	s[2] += c
	s[3] += d
	s[4] += e
	s[5] += f
	s[6] += g
	s[7] += h
	return s
}

// Sum256 computes the SHA-256 digest of data.
func Sum256(data []byte) [32]byte {
	s := initState
	var block [64]byte

	// Full blocks.
	n := len(data)
	i := 0
	for ; i+64 <= n; i += 64 {
		copy(block[:], data[i:i+64])
		s = Compress(s, &block)
	}

	// Padding: 0x80, zeros, 64-bit big-endian bit length.
	rem := data[i:]
	block = [64]byte{}
	copy(block[:], rem)
	block[len(rem)] = 0x80
	if len(rem) >= 56 {
		s = Compress(s, &block)
		block = [64]byte{}
	}
	binary.BigEndian.PutUint64(block[56:], uint64(n)*8)
	s = Compress(s, &block)

	var out [32]byte
	for j, v := range s {
		binary.BigEndian.PutUint32(out[j*4:], v)
	}
	return out
}

// Bytes serializes a state as a big-endian digest.
func (s State) Bytes() [32]byte {
	var out [32]byte
	for j, v := range s {
		binary.BigEndian.PutUint32(out[j*4:], v)
	}
	return out
}

// DoubleSum256 is Bitcoin's hash: SHA-256 applied twice.
func DoubleSum256(data []byte) [32]byte {
	first := Sum256(data)
	return Sum256(first[:])
}
