package bitcoin

import (
	"asiccloud/internal/units"
	"asiccloud/internal/vlsi"
)

// RCA returns the paper's published Bitcoin replicated compute
// accelerator: a fully pipelined double-SHA256 core, "128 one-clock
// stages, one per SHA256 round", occupying 0.66 mm² in UMC 28nm and
// attaining "a staggering power density of 2 W per mm²" at the nominal
// 1.0 V / 830 MHz, one hash per cycle (0.83 GH/s). Cryptographic data is
// essentially random, so activity factors are extreme and there is no
// SRAM; leakage is a small fraction of the total.
func RCA() vlsi.Spec {
	return vlsi.Spec{
		Name:                "bitcoin-sha256d",
		PerfUnit:            "GH/s",
		Area:                0.66,
		NominalVoltage:      1.0,
		NominalFreq:         830e6,
		NominalPerf:         0.83,
		NominalPowerDensity: 2.0,
		LeakageFraction:     0.008,
		SRAMPowerFraction:   0,
		VoltageScalable:     true,
	}
}

// RolledRCA returns the alternative RCA style the paper describes:
// "The less prevalent style, used by Bitfury, performs the hash in
// place, and has been termed a rolled core." One round circuit iterates
// 2×64 times per hash, so the core is ~1/128 the size of the unrolled
// pipeline and completes a hash every 128 cycles. It trades away the
// pipeline registers but pays the state registers on every hash —
// structurally modeled in RolledNetlist and cross-checked by tests.
func RolledRCA() vlsi.Spec {
	tech := vlsi.Generic28nm()
	spec, err := tech.Estimate(RolledNetlist(), 830e6, units.HsToGHs(1/float64(2*Rounds)), "GH/s")
	if err != nil {
		// The netlist below is a constant; estimation cannot fail.
		panic(err)
	}
	spec.Name = "bitcoin-sha256d-rolled"
	return spec
}

// Netlist is a structural model of the unrolled 128-stage pipeline, used
// to cross-check the published spec against the gate-level estimator:
// each stage carries the 256-bit state plus 512-bit message schedule in
// pipeline registers and ~1500 NAND2 of round logic (adders, sigma
// functions, choose/majority).
func Netlist() vlsi.Netlist {
	return vlsi.Netlist{
		Name:         "bitcoin-sha256d-unrolled",
		Gates:        2 * Rounds * 1500,
		Flops:        2 * Rounds * 768,
		CombActivity: 0.5, // "50% or higher for combinational logic"
		FlopActivity: 1.0, // "100% for flip flops"
	}
}

// RolledNetlist is the in-place variant: one round of logic plus the
// hash state, message schedule and round sequencing.
func RolledNetlist() vlsi.Netlist {
	return vlsi.Netlist{
		Name:         "bitcoin-sha256d-rolled",
		Gates:        2200, // round logic + schedule mux + control
		Flops:        880,  // 256b state + 512b schedule + counters
		CombActivity: 0.5,
		FlopActivity: 1.0,
	}
}
