package bitcoin

import (
	"errors"
	"fmt"
	"math/big"
)

// The paper's §2 describes the mechanism the mining ASICs secure: "a
// global, public ledger of transactions, called the blockchain ...
// Periodically ... a block of new transactions is aggregated and posted
// to the ledger", with Byzantine fault tolerant consensus — peers verify
// each block's proof of work and linkage, and "in the infrequent case
// where two machines ... have found a winning hash and broadcasted new
// blocks in parallel, and the chain has 'forked', the long version has
// priority." This file implements that ledger: block validation, fork
// tracking, and heaviest-chain selection.

// Block is a header plus the payload digest it commits to (the "block of
// new transactions", reduced to its Merkle root here).
type Block struct {
	Header Header
	// TxDigest is the transaction set digest the header's MerkleRoot
	// must commit to.
	TxDigest [32]byte
}

// NewBlock assembles a block over a transaction digest, on top of a
// parent block hash.
func NewBlock(prev [32]byte, txDigest [32]byte, timestamp, bits uint32) Block {
	b := Block{TxDigest: txDigest}
	b.Header.Version = 2
	b.Header.PrevBlock = prev
	b.Header.MerkleRoot = txDigest
	b.Header.Time = timestamp
	b.Header.Bits = bits
	return b
}

// Hash is the block's identifier.
func (b *Block) Hash() [32]byte { return b.Header.Hash() }

// Chain validation errors.
var (
	ErrBadPoW        = errors.New("bitcoin: proof of work does not meet target")
	ErrUnknownParent = errors.New("bitcoin: parent block unknown")
	ErrDuplicate     = errors.New("bitcoin: block already known")
	ErrBadCommitment = errors.New("bitcoin: header does not commit to the transactions")
)

// chainNode is a block with its accumulated work.
type chainNode struct {
	block  Block
	parent [32]byte
	height int
	// work is the cumulative expected hashes to build the chain ending
	// here; consensus picks the most-work tip ("the long version has
	// priority" — measured in work, as Bitcoin does).
	work *big.Int
}

// Chain is the replicated ledger: a block tree with heaviest-tip
// selection.
type Chain struct {
	nodes   map[[32]byte]*chainNode
	tip     [32]byte
	genesis [32]byte
}

// NewChain starts a ledger from a genesis block. The genesis block's
// proof of work is validated like any other.
func NewChain(genesis Block) (*Chain, error) {
	if err := validateSelfContained(&genesis); err != nil {
		return nil, err
	}
	h := genesis.Hash()
	c := &Chain{nodes: make(map[[32]byte]*chainNode), tip: h, genesis: h}
	c.nodes[h] = &chainNode{
		block:  genesis,
		height: 0,
		work:   blockWork(genesis.Header.Bits),
	}
	return c, nil
}

// validateSelfContained checks everything about a block that does not
// require its ancestry: the PoW and the transaction commitment.
func validateSelfContained(b *Block) error {
	if b.Header.MerkleRoot != b.TxDigest {
		return ErrBadCommitment
	}
	ok, err := CheckProofOfWork(&b.Header)
	if err != nil {
		return err
	}
	if !ok {
		return ErrBadPoW
	}
	return nil
}

// blockWork is the expected hash count a block at the given target
// represents: 2²⁵⁶ / (target + 1).
func blockWork(bits uint32) *big.Int {
	target, err := CompactToTarget(bits)
	if err != nil || target.Sign() <= 0 {
		return big.NewInt(0)
	}
	space := new(big.Int).Lsh(big.NewInt(1), 256)
	return space.Div(space, new(big.Int).Add(target, big.NewInt(1)))
}

// Add validates a block and attaches it to the tree. "The other machines
// on the network will examine the new block, determine if the
// transaction is legitimate ... or is the proof-of-work invalid, and if
// it is, they will use this new updated chain." Returns whether the
// block became the new tip (possibly reorganizing).
func (c *Chain) Add(b Block) (becameTip bool, err error) {
	h := b.Hash()
	if _, ok := c.nodes[h]; ok {
		return false, ErrDuplicate
	}
	if err := validateSelfContained(&b); err != nil {
		return false, err
	}
	parent, ok := c.nodes[b.Header.PrevBlock]
	if !ok {
		return false, fmt.Errorf("%w: %x", ErrUnknownParent, b.Header.PrevBlock[:8])
	}
	node := &chainNode{
		block:  b,
		parent: b.Header.PrevBlock,
		height: parent.height + 1,
		work:   new(big.Int).Add(parent.work, blockWork(b.Header.Bits)),
	}
	c.nodes[h] = node
	if node.work.Cmp(c.nodes[c.tip].work) > 0 {
		c.tip = h
		return true, nil
	}
	return false, nil
}

// Tip returns the heaviest block hash.
func (c *Chain) Tip() [32]byte { return c.tip }

// Height of the heaviest chain.
func (c *Chain) Height() int { return c.nodes[c.tip].height }

// TotalWork of the heaviest chain in expected hashes.
func (c *Chain) TotalWork() *big.Int { return new(big.Int).Set(c.nodes[c.tip].work) }

// Blocks counts all known blocks, including forked-off ones.
func (c *Chain) Blocks() int { return len(c.nodes) }

// Get returns a known block.
func (c *Chain) Get(hash [32]byte) (Block, bool) {
	n, ok := c.nodes[hash]
	if !ok {
		return Block{}, false
	}
	return n.block, true
}

// MainChain walks the heaviest chain from genesis to tip.
func (c *Chain) MainChain() []Block {
	var rev []Block
	h := c.tip
	for {
		n := c.nodes[h]
		rev = append(rev, n.block)
		if h == c.genesis {
			break
		}
		h = n.parent
	}
	out := make([]Block, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Contains reports whether the block is on the heaviest chain (as
// opposed to a stale fork).
func (c *Chain) Contains(hash [32]byte) bool {
	n, ok := c.nodes[hash]
	if !ok {
		return false
	}
	h := c.tip
	for {
		cur := c.nodes[h]
		if cur.height < n.height {
			return false
		}
		if h == hash {
			return true
		}
		if h == c.genesis {
			return false
		}
		h = cur.parent
	}
}
