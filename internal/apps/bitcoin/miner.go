package bitcoin

import (
	"encoding/binary"
	"fmt"
	"math/big"
)

// Header is Bitcoin's 80-byte block header, the input to the mining
// operation. "The hash operation uses an input 512 bit block that is
// reused across billions of hashes" — the first 64 bytes — "and then
// repeatedly ... mutates the block and performs a SHA256 hash on it."
type Header struct {
	Version    uint32
	PrevBlock  [32]byte
	MerkleRoot [32]byte
	Time       uint32
	Bits       uint32 // compact difficulty target
	Nonce      uint32
}

// Marshal serializes the header in Bitcoin's little-endian wire format.
func (h *Header) Marshal() [80]byte {
	var out [80]byte
	binary.LittleEndian.PutUint32(out[0:], h.Version)
	copy(out[4:36], h.PrevBlock[:])
	copy(out[36:68], h.MerkleRoot[:])
	binary.LittleEndian.PutUint32(out[68:], h.Time)
	binary.LittleEndian.PutUint32(out[72:], h.Bits)
	binary.LittleEndian.PutUint32(out[76:], h.Nonce)
	return out
}

// Hash is the block's double-SHA256 proof-of-work hash.
func (h *Header) Hash() [32]byte {
	b := h.Marshal()
	return DoubleSum256(b[:])
}

// Midstate returns the SHA-256 chaining state after the header's first
// 64-byte block — the value a hardware miner computes once and reuses
// across all 2³² nonce attempts, since the nonce lives in the second
// block.
func (h *Header) Midstate() State {
	b := h.Marshal()
	var block [64]byte
	copy(block[:], b[:64])
	return Compress(initState, &block)
}

// HashWithMidstate finishes the double hash from a cached midstate for
// the given nonce: second header block (16 bytes + padding), then the
// outer hash. This is exactly the datapath the RCA replicates.
func (h *Header) HashWithMidstate(mid State, nonce uint32) [32]byte {
	b := h.Marshal()
	var tail [64]byte
	copy(tail[:], b[64:80])
	binary.LittleEndian.PutUint32(tail[12:], nonce)
	tail[16] = 0x80
	binary.BigEndian.PutUint64(tail[56:], 80*8)
	first := Compress(mid, &tail).Bytes()

	var second [64]byte
	copy(second[:], first[:])
	second[32] = 0x80
	binary.BigEndian.PutUint64(second[56:], 32*8)
	return Compress(initState, &second).Bytes()
}

// diff1Target is the maximum target (difficulty 1): 0x1d00ffff compact.
var diff1Target = mustTarget(0x1d00ffff)

func mustTarget(bits uint32) *big.Int {
	t, err := CompactToTarget(bits)
	if err != nil {
		panic(err)
	}
	return t
}

// CompactToTarget expands Bitcoin's compact "bits" encoding into the
// 256-bit target threshold.
func CompactToTarget(bits uint32) (*big.Int, error) {
	exp := int(bits >> 24)
	mant := int64(bits & 0x007fffff)
	if bits&0x00800000 != 0 {
		return nil, fmt.Errorf("bitcoin: negative compact target %08x", bits)
	}
	t := big.NewInt(mant)
	if exp <= 3 {
		t.Rsh(t, uint(8*(3-exp)))
	} else {
		t.Lsh(t, uint(8*(exp-3)))
	}
	return t, nil
}

// TargetToCompact squeezes a target back into compact form.
func TargetToCompact(t *big.Int) uint32 {
	if t.Sign() <= 0 {
		return 0
	}
	bytes := (t.BitLen() + 7) / 8
	var mant uint32
	if bytes <= 3 {
		mant = uint32(t.Int64() << uint(8*(3-bytes)))
	} else {
		m := new(big.Int).Rsh(t, uint(8*(bytes-3)))
		mant = uint32(m.Int64())
	}
	// Avoid the sign bit by shifting the mantissa down a byte.
	if mant&0x00800000 != 0 {
		mant >>= 8
		bytes++
	}
	return uint32(bytes)<<24 | mant
}

// HashToInt interprets a proof-of-work hash as the number Bitcoin
// compares against the target (the hash bytes reversed, i.e. treated as
// little-endian).
func HashToInt(hash [32]byte) *big.Int {
	var rev [32]byte
	for i := range hash {
		rev[i] = hash[31-i]
	}
	return new(big.Int).SetBytes(rev[:])
}

// CheckProofOfWork reports whether the header's hash meets its target.
func CheckProofOfWork(h *Header) (bool, error) {
	target, err := CompactToTarget(h.Bits)
	if err != nil {
		return false, err
	}
	return HashToInt(h.Hash()).Cmp(target) <= 0, nil
}

// Difficulty converts a compact target to Bitcoin difficulty (the ratio
// of the difficulty-1 target to the current target).
func Difficulty(bits uint32) (float64, error) {
	t, err := CompactToTarget(bits)
	if err != nil {
		return 0, err
	}
	if t.Sign() <= 0 {
		return 0, fmt.Errorf("bitcoin: zero target")
	}
	d := new(big.Rat).SetFrac(diff1Target, t)
	f, _ := d.Float64()
	return f, nil
}

// Mine scans count nonces from start, returning the first nonce whose
// hash meets the header's target. It uses the midstate path, like the
// hardware it models.
func Mine(h *Header, start uint32, count uint64) (nonce uint32, found bool, err error) {
	target, err := CompactToTarget(h.Bits)
	if err != nil {
		return 0, false, err
	}
	mid := h.Midstate()
	n := start
	for i := uint64(0); i < count; i++ {
		hash := h.HashWithMidstate(mid, n)
		if HashToInt(hash).Cmp(target) <= 0 {
			return n, true, nil
		}
		n++
	}
	return 0, false, nil
}

// EstimateHashrate infers a fleet's hashrate from pool-side share
// accounting: at share difficulty d, each share represents d·2³² hashes
// in expectation, so rate ≈ shares·d·2³²/seconds. This is how the
// paper's Figure 1 world-hashrate series is measured in practice.
func EstimateHashrate(shares int, shareDifficulty, seconds float64) (float64, error) {
	if shares < 0 {
		return 0, fmt.Errorf("bitcoin: negative share count")
	}
	if shareDifficulty <= 0 || seconds <= 0 {
		return 0, fmt.Errorf("bitcoin: difficulty and interval must be positive")
	}
	const hashesPerDiff1 = 1 << 32
	return float64(shares) * shareDifficulty * hashesPerDiff1 / seconds, nil
}
