package litecoin

import (
	"fmt"
	"math/big"

	"asiccloud/internal/apps/bitcoin"
)

// Litecoin reuses Bitcoin's 80-byte header format and compact-target
// encoding; only the proof-of-work hash differs (scrypt instead of
// double-SHA256) and blocks arrive every 2.5 minutes instead of 10.

// Header is a Litecoin block header.
type Header = bitcoin.Header

// TargetBlockSeconds is Litecoin's block interval.
const TargetBlockSeconds = 150

// PoWHashHeader computes the scrypt proof-of-work hash of a header.
func PoWHashHeader(h *Header) ([32]byte, error) {
	b := h.Marshal()
	return PoWHash(b[:])
}

// CheckProofOfWork reports whether the header's scrypt hash meets its
// compact target.
func CheckProofOfWork(h *Header) (bool, error) {
	target, err := bitcoin.CompactToTarget(h.Bits)
	if err != nil {
		return false, err
	}
	hash, err := PoWHashHeader(h)
	if err != nil {
		return false, err
	}
	return bitcoin.HashToInt(hash).Cmp(target) <= 0, nil
}

// Difficulty converts a compact target to Litecoin difficulty (same
// difficulty-1 reference as Bitcoin).
func Difficulty(bits uint32) (float64, error) { return bitcoin.Difficulty(bits) }

// Mine scans count nonces from start, returning the first nonce whose
// scrypt hash meets the header's target. Unlike the SHA-256 miner there
// is no midstate shortcut: every attempt walks the full 128 KB
// scratchpad — exactly why Litecoin hardware is SRAM-bound.
func Mine(h *Header, start uint32, count uint64) (nonce uint32, found bool, err error) {
	target, err := bitcoin.CompactToTarget(h.Bits)
	if err != nil {
		return 0, false, err
	}
	work := *h
	n := start
	for i := uint64(0); i < count; i++ {
		work.Nonce = n
		hash, err := PoWHashHeader(&work)
		if err != nil {
			return 0, false, err
		}
		if bitcoin.HashToInt(hash).Cmp(target) <= 0 {
			return n, true, nil
		}
		n++
	}
	return 0, false, nil
}

// HashesPerShare returns the expected scrypt evaluations to find one
// share at the given compact target.
func HashesPerShare(bits uint32) (float64, error) {
	target, err := bitcoin.CompactToTarget(bits)
	if err != nil {
		return 0, err
	}
	if target.Sign() <= 0 {
		return 0, fmt.Errorf("litecoin: zero target")
	}
	// 2^256 / target.
	space := new(big.Int).Lsh(big.NewInt(1), 256)
	q := new(big.Rat).SetFrac(space, target)
	f, _ := q.Float64()
	return f, nil
}
