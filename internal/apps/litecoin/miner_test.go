package litecoin

import (
	"math"
	"testing"

	"asiccloud/internal/apps/bitcoin"
)

func easyHeader() Header {
	return Header{Version: 2, Time: 1317972665, Bits: 0x2000ffff}
}

func TestMineEasyTarget(t *testing.T) {
	h := easyHeader()
	nonce, found, err := Mine(&h, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("easy scrypt target should be found within 4096 nonces")
	}
	h.Nonce = nonce
	ok, err := CheckProofOfWork(&h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("mined nonce does not verify")
	}
	// The miner must return the FIRST valid nonce: every nonce before
	// it fails verification.
	for n := uint32(0); n < nonce; n++ {
		check := easyHeader()
		check.Nonce = n
		ok, err := CheckProofOfWork(&check)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("miner skipped valid nonce %d (returned %d)", n, nonce)
		}
	}
}

func TestMineDeterministic(t *testing.T) {
	h1 := easyHeader()
	h2 := easyHeader()
	n1, f1, err1 := Mine(&h1, 0, 2048)
	n2, f2, err2 := Mine(&h2, 0, 2048)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if f1 != f2 || n1 != n2 {
		t.Errorf("mining not deterministic: (%v,%v) vs (%v,%v)", n1, f1, n2, f2)
	}
}

func TestMineGivesUpOnHardTarget(t *testing.T) {
	h := easyHeader()
	h.Bits = 0x1d00ffff // real difficulty 1: ~2^32 hashes expected
	_, found, err := Mine(&h, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("8 scrypt attempts should not crack difficulty 1")
	}
}

func TestMineRejectsBadBits(t *testing.T) {
	h := easyHeader()
	h.Bits = 0x1d800000 // sign bit set
	if _, _, err := Mine(&h, 0, 1); err == nil {
		t.Error("negative target should fail")
	}
	if _, err := CheckProofOfWork(&h); err == nil {
		t.Error("negative target should fail verification too")
	}
}

func TestHashesPerShare(t *testing.T) {
	// Difficulty 1 needs ~2^32 hashes.
	got, err := HashesPerShare(0x1d00ffff)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Pow(2, 32))/math.Pow(2, 32) > 0.01 {
		t.Errorf("hashes per share at diff 1 = %g, want ~2^32", got)
	}
	easy, err := HashesPerShare(0x2000ffff)
	if err != nil {
		t.Fatal(err)
	}
	if easy >= got/1e6 {
		t.Errorf("easy target (%g hashes) should be far below diff 1", easy)
	}
	if _, err := HashesPerShare(0x1d800000); err == nil {
		t.Error("bad bits should fail")
	}
}

func TestDifficultyAliases(t *testing.T) {
	d, err := Difficulty(0x1d00ffff)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("difficulty of 0x1d00ffff = %v, want 1", d)
	}
	if TargetBlockSeconds != 150 {
		t.Error("Litecoin blocks come every 2.5 minutes")
	}
}

func TestScryptPoWDiffersFromSHA(t *testing.T) {
	// The same header must produce different PoW hashes under the two
	// systems — Litecoin ASICs cannot mine Bitcoin and vice versa.
	h := easyHeader()
	scryptHash, err := PoWHashHeader(&h)
	if err != nil {
		t.Fatal(err)
	}
	shaHash := h.Hash()
	if scryptHash == shaHash {
		t.Error("scrypt and double-SHA256 PoW should differ")
	}
}

func TestLitecoinNetworkRamp(t *testing.T) {
	gens := HistoricalGenerations()
	// World capacity approaches the paper's §8 figure of 1,452,000 MH/s.
	final := bitcoin.FleetHashrate(gens, 5.0)
	if final < 1.0e6 || final > 1.8e6 {
		t.Errorf("world capacity = %.3g MH/s, want ~1.45e6 (paper §8)", final)
	}
	// The simulator runs on Litecoin's 150-second blocks too.
	p := bitcoin.DefaultNetworkParams()
	p.TargetBlockSeconds = TargetBlockSeconds
	p.InitialHashrateGHs = 0.05
	samples, err := bitcoin.SimulateNetwork(gens, p, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	last := samples[len(samples)-1]
	// 2.5-minute blocks: ~210k blocks/year.
	wantBlocks := 5.0 * 365.25 * 24 * 3600 / TargetBlockSeconds
	if float64(last.Block) < 0.7*wantBlocks || float64(last.Block) > 1.3*wantBlocks {
		t.Errorf("height = %d, want ~%.0f", last.Block, wantBlocks)
	}
	if last.Difficulty <= 1 {
		t.Error("difficulty should have ramped")
	}
}
