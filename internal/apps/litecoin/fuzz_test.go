package litecoin

import (
	"bytes"
	cryptohmac "crypto/hmac"
	cryptosha "crypto/sha256"
	"testing"
)

func FuzzHMACMatchesStdlib(f *testing.F) {
	f.Add([]byte("key"), []byte("data"))
	f.Add([]byte(""), []byte(""))
	f.Add(bytes.Repeat([]byte{0xaa}, 131), []byte("long key path"))
	f.Fuzz(func(t *testing.T, key, data []byte) {
		ours := hmacSHA256(key, data)
		mac := cryptohmac.New(cryptosha.New, key)
		mac.Write(data)
		if !bytes.Equal(ours[:], mac.Sum(nil)) {
			t.Fatal("HMAC mismatch")
		}
	})
}

func FuzzPoWHashDeterministic(f *testing.F) {
	seed := make([]byte, 80)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, header []byte) {
		if len(header) != 80 {
			if _, err := PoWHash(header); err == nil {
				t.Fatal("non-80-byte header accepted")
			}
			return
		}
		a, err := PoWHash(header)
		if err != nil {
			t.Fatal(err)
		}
		b, err := PoWHash(header)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatal("scrypt PoW not deterministic")
		}
	})
}
