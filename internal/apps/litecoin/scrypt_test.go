package litecoin

import (
	"bytes"
	cryptohmac "crypto/hmac"
	cryptosha "crypto/sha256"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHMACSHA256RFC4231(t *testing.T) {
	// RFC 4231 test case 1.
	key := bytes.Repeat([]byte{0x0b}, 20)
	got := hmacSHA256(key, []byte("Hi There"))
	want := mustHex(t, "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
	if !bytes.Equal(got[:], want) {
		t.Errorf("HMAC = %x, want %x", got, want)
	}
}

func TestHMACMatchesStdlibProperty(t *testing.T) {
	f := func(key, data []byte) bool {
		ours := hmacSHA256(key, data)
		mac := cryptohmac.New(cryptosha.New, key)
		mac.Write(data)
		return bytes.Equal(ours[:], mac.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHMACLongKey(t *testing.T) {
	// Keys longer than the block size are hashed first.
	key := bytes.Repeat([]byte{0xaa}, 131)
	data := []byte("Test Using Larger Than Block-Size Key - Hash Key First")
	got := hmacSHA256(key, data)
	// RFC 4231 test case 6.
	want := mustHex(t, "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
	if !bytes.Equal(got[:], want) {
		t.Errorf("HMAC long key = %x, want %x", got, want)
	}
}

func TestPBKDF2RFC7914(t *testing.T) {
	// RFC 7914 §11: PBKDF2-HMAC-SHA-256 ("passwd", "salt", 1, 64).
	got := pbkdf2SHA256([]byte("passwd"), []byte("salt"), 1, 64)
	want := mustHex(t,
		"55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc"+
			"49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783")
	if !bytes.Equal(got, want) {
		t.Errorf("PBKDF2 = %x, want %x", got, want)
	}
}

func TestPBKDF2MultipleIterations(t *testing.T) {
	// RFC 7914 §11 second vector: 80,000 iterations.
	if testing.Short() {
		t.Skip("80k-iteration vector skipped in -short mode")
	}
	got := pbkdf2SHA256([]byte("Password"), []byte("NaCl"), 80000, 64)
	want := mustHex(t,
		"4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56"+
			"a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d")
	if !bytes.Equal(got, want) {
		t.Errorf("PBKDF2 80k = %x, want %x", got, want)
	}
}

func TestScryptRFC7914Vectors(t *testing.T) {
	cases := []struct {
		password, salt string
		n, r, p        int
		want           string
	}{
		{"", "", 16, 1, 1,
			"77d6576238657b203b19ca42c18a0497f16b4844e3074ae8dfdffa3fede21442" +
				"fcd0069ded0948f8326a753a0fc81f17e8d3e0fb2e0d3628cf35e20c38d18906"},
		{"password", "NaCl", 1024, 8, 16,
			"fdbabe1c9d3472007856e7190d01e9fe7c6ad7cbc8237830e77376634b373162" +
				"2eaf30d92e22a3886ff109279d9830dac727afb94a83ee6d8360cbdfa2cc0640"},
	}
	for _, c := range cases {
		got, err := Key([]byte(c.password), []byte(c.salt), c.n, c.r, c.p, 64)
		if err != nil {
			t.Fatal(err)
		}
		if hex.EncodeToString(got) != c.want {
			t.Errorf("scrypt(%q,%q,%d,%d,%d) = %x, want %s",
				c.password, c.salt, c.n, c.r, c.p, got, c.want)
		}
	}
}

func TestScryptParamValidation(t *testing.T) {
	if _, err := Key(nil, nil, 3, 1, 1, 32); err == nil {
		t.Error("non-power-of-two N should fail")
	}
	if _, err := Key(nil, nil, 1, 1, 1, 32); err == nil {
		t.Error("N=1 should fail")
	}
	if _, err := Key(nil, nil, 16, 0, 1, 32); err == nil {
		t.Error("r=0 should fail")
	}
	if _, err := Key(nil, nil, 16, 1, -1, 32); err == nil {
		t.Error("negative p should fail")
	}
	if _, err := Key(nil, nil, 16, 1, 1, 0); err == nil {
		t.Error("dkLen=0 should fail")
	}
}

func TestPoWHash(t *testing.T) {
	header := make([]byte, 80)
	for i := range header {
		header[i] = byte(i)
	}
	h1, err := PoWHash(header)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := PoWHash(header)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("PoW hash must be deterministic")
	}
	header[79] ^= 1
	h3, err := PoWHash(header)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("different header should hash differently")
	}
	if _, err := PoWHash(make([]byte, 79)); err == nil {
		t.Error("wrong header length should fail")
	}
}

func TestScratchpadIs128KB(t *testing.T) {
	// The paper's whole Litecoin analysis rests on the 128 KB working
	// set; Litecoin's N=1024, r=1 gives exactly that.
	if ScratchpadBytes != 128*1024 {
		t.Errorf("scratchpad = %d bytes, want 128 KB", ScratchpadBytes)
	}
}

func TestRCASpecSRAMDominated(t *testing.T) {
	spec := RCA()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.SRAMPowerFraction < 0.5 {
		t.Error("Litecoin RCA should be SRAM-dominated")
	}
	if spec.SRAMVmin != 0.9 {
		t.Errorf("SRAM Vmin = %v, want 0.9 (paper §8)", spec.SRAMVmin)
	}
	// Much lower power density than Bitcoin's 2 W/mm².
	if spec.NominalPowerDensity > 0.5 {
		t.Errorf("power density %v should be far below Bitcoin's 2.0", spec.NominalPowerDensity)
	}
	n := Netlist()
	if n.SRAMBits != 128*1024*8 {
		t.Error("netlist scratchpad should be 128 KB")
	}
}
