package litecoin

import (
	"asiccloud/internal/apps/bitcoin"
	"asiccloud/internal/vlsi"
)

// RCA returns the Litecoin replicated compute accelerator, calibrated to
// the paper's Table 4 operating points. "Because Litecoin consists of
// repeated sequential accesses to 128KB memories, the power density per
// mm² is much lower, which leads to larger chips at higher voltages
// versus Bitcoin." The scratchpad SRAM sits on its own rail with
// Vmin = 0.9 V (paper: "SRAM Vmin is set to 0.9V"), so most of the
// design's power stops scaling below that point — the reason Litecoin's
// TCO-optimal voltage (0.70 V) is far above Bitcoin's (0.49 V).
//
// Calibration: the TCO-optimal server runs 48,000 mm² at 0.70 V/615 MHz
// for 1,164 MH/s, implying a nominal (1.0 V, ~900 MHz) performance
// density of ~0.036 MH/s/mm²; its ~3.4 kW wall power implies a nominal
// power density near 0.12 W/mm² with ~65% of power on the SRAM rail.
func RCA() vlsi.Spec {
	return vlsi.Spec{
		Name:                "litecoin-scrypt",
		PerfUnit:            "MH/s",
		Area:                2.0,
		NominalVoltage:      1.0,
		NominalFreq:         900e6,
		NominalPerf:         0.073,
		NominalPowerDensity: 0.118,
		LeakageFraction:     0.03,
		SRAMPowerFraction:   0.65,
		SRAMVmin:            0.9,
		VoltageScalable:     true,
	}
}

// Netlist is the structural model behind the spec: one scrypt datapath
// (Salsa20/8 pipeline plus PBKDF2 front/back ends) beside a 128 KB
// scratchpad accessed every cycle.
func Netlist() vlsi.Netlist {
	return vlsi.Netlist{
		Name:                 "litecoin-scrypt-core",
		Gates:                180_000,
		Flops:                30_000,
		SRAMBits:             ScratchpadBytes * 8,
		CombActivity:         0.35,
		FlopActivity:         0.5,
		SRAMAccessesPerCycle: 1,
		SRAMWordBits:         512,
	}
}

// HistoricalGenerations reconstructs Litecoin's own specialization ramp
// for use with the generic network simulator: a long GPU era (scrypt was
// designed to resist the first ASICs), then 110/55/28 nm scrypt ASICs
// arriving from 2014 — compressed relative to Bitcoin's ladder, exactly
// as the paper's §8 SRAM-bound analysis predicts (less to gain from
// custom silicon, so fewer generations). Peaks are in MH/s and sized so
// the world reaches the paper's 1,452,000 MH/s (§8) about five years in.
func HistoricalGenerations() []bitcoin.Generation {
	return []bitcoin.Generation{
		{Name: "CPU", Node: 0, LaunchYears: 0.0, RampYears: 0.4, PeakGHs: 40},
		{Name: "GPU", Node: 0, LaunchYears: 0.8, RampYears: 0.5, PeakGHs: 110_000},
		{Name: "ASIC 110nm", Node: 110, LaunchYears: 2.6, RampYears: 0.3, PeakGHs: 240_000},
		{Name: "ASIC 55nm", Node: 55, LaunchYears: 3.1, RampYears: 0.4, PeakGHs: 500_000},
		{Name: "ASIC 28nm", Node: 28, LaunchYears: 3.8, RampYears: 0.5, PeakGHs: 640_000},
	}
}
