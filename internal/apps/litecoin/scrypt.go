package litecoin

import (
	"encoding/binary"
	"fmt"

	"asiccloud/internal/apps/bitcoin"
)

// hmacSHA256 computes HMAC-SHA256(key, data) using the package's own
// SHA-256 (shared with the Bitcoin substrate).
func hmacSHA256(key, data []byte) [32]byte {
	const blockSize = 64
	var k [blockSize]byte
	if len(key) > blockSize {
		h := bitcoin.Sum256(key)
		copy(k[:], h[:])
	} else {
		copy(k[:], key)
	}
	ipad := make([]byte, blockSize, blockSize+len(data))
	opad := make([]byte, blockSize, blockSize+32)
	for i := 0; i < blockSize; i++ {
		ipad[i] = k[i] ^ 0x36
		opad[i] = k[i] ^ 0x5c
	}
	inner := bitcoin.Sum256(append(ipad, data...))
	return bitcoin.Sum256(append(opad, inner[:]...))
}

// pbkdf2SHA256 derives dkLen bytes from the password and salt with the
// given iteration count (RFC 2898 with HMAC-SHA256 as the PRF).
func pbkdf2SHA256(password, salt []byte, iterations, dkLen int) []byte {
	out := make([]byte, 0, dkLen)
	var block uint32 = 1
	for len(out) < dkLen {
		msg := make([]byte, len(salt)+4)
		copy(msg, salt)
		binary.BigEndian.PutUint32(msg[len(salt):], block)
		u := hmacSHA256(password, msg)
		t := u
		for i := 1; i < iterations; i++ {
			u = hmacSHA256(password, u[:])
			for j := range t {
				t[j] ^= u[j]
			}
		}
		out = append(out, t[:]...)
		block++
	}
	return out[:dkLen]
}

// salsa208 applies the Salsa20/8 core permutation to a 64-byte block in
// place (16 little-endian words, 8 rounds).
func salsa208(b *[16]uint32) {
	x := *b
	for round := 0; round < 8; round += 2 {
		// Column round.
		x[4] ^= rotl(x[0]+x[12], 7)
		x[8] ^= rotl(x[4]+x[0], 9)
		x[12] ^= rotl(x[8]+x[4], 13)
		x[0] ^= rotl(x[12]+x[8], 18)
		x[9] ^= rotl(x[5]+x[1], 7)
		x[13] ^= rotl(x[9]+x[5], 9)
		x[1] ^= rotl(x[13]+x[9], 13)
		x[5] ^= rotl(x[1]+x[13], 18)
		x[14] ^= rotl(x[10]+x[6], 7)
		x[2] ^= rotl(x[14]+x[10], 9)
		x[6] ^= rotl(x[2]+x[14], 13)
		x[10] ^= rotl(x[6]+x[2], 18)
		x[3] ^= rotl(x[15]+x[11], 7)
		x[7] ^= rotl(x[3]+x[15], 9)
		x[11] ^= rotl(x[7]+x[3], 13)
		x[15] ^= rotl(x[11]+x[7], 18)
		// Row round.
		x[1] ^= rotl(x[0]+x[3], 7)
		x[2] ^= rotl(x[1]+x[0], 9)
		x[3] ^= rotl(x[2]+x[1], 13)
		x[0] ^= rotl(x[3]+x[2], 18)
		x[6] ^= rotl(x[5]+x[4], 7)
		x[7] ^= rotl(x[6]+x[5], 9)
		x[4] ^= rotl(x[7]+x[6], 13)
		x[5] ^= rotl(x[4]+x[7], 18)
		x[11] ^= rotl(x[10]+x[9], 7)
		x[8] ^= rotl(x[11]+x[10], 9)
		x[9] ^= rotl(x[8]+x[11], 13)
		x[10] ^= rotl(x[9]+x[8], 18)
		x[12] ^= rotl(x[15]+x[14], 7)
		x[13] ^= rotl(x[12]+x[15], 9)
		x[14] ^= rotl(x[13]+x[12], 13)
		x[15] ^= rotl(x[14]+x[13], 18)
	}
	for i := range b {
		b[i] += x[i]
	}
}

func rotl(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }

// blockMix is scrypt's BlockMix_salsa20/8,r operating on 2r 64-byte
// sub-blocks held as uint32 words.
func blockMix(b []uint32, r int) {
	n := 2 * r
	var x [16]uint32
	copy(x[:], b[(n-1)*16:])
	y := make([]uint32, len(b))
	for i := 0; i < n; i++ {
		for j := 0; j < 16; j++ {
			x[j] ^= b[i*16+j]
		}
		salsa208(&x)
		// Even sub-blocks to the front half, odd to the back.
		var dst int
		if i%2 == 0 {
			dst = (i / 2) * 16
		} else {
			dst = (r + i/2) * 16
		}
		copy(y[dst:dst+16], x[:])
	}
	copy(b, y)
}

// roMix is scrypt's sequential-memory-hard core: fill an N-entry vector
// V with successive BlockMix states, then walk it data-dependently. For
// Litecoin (N=1024, r=1) V is exactly the 128 KB scratchpad that makes
// the RCA SRAM-dominated.
func roMix(b []uint32, n, r int) {
	words := 32 * r
	v := make([]uint32, n*words)
	for i := 0; i < n; i++ {
		copy(v[i*words:(i+1)*words], b)
		blockMix(b, r)
	}
	for i := 0; i < n; i++ {
		j := int(b[(2*r-1)*16]) & (n - 1)
		for w := 0; w < words; w++ {
			b[w] ^= v[j*words+w]
		}
		blockMix(b, r)
	}
}

// Key derives a dkLen-byte scrypt key (RFC 7914). N must be a power of
// two greater than 1.
func Key(password, salt []byte, n, r, p, dkLen int) ([]byte, error) {
	if n <= 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("litecoin: scrypt N=%d must be a power of two > 1", n)
	}
	if r <= 0 || p <= 0 || dkLen <= 0 {
		return nil, fmt.Errorf("litecoin: scrypt r, p, dkLen must be positive")
	}
	blockBytes := 128 * r
	b := pbkdf2SHA256(password, salt, 1, p*blockBytes)
	for i := 0; i < p; i++ {
		words := make([]uint32, 32*r)
		for w := range words {
			words[w] = binary.LittleEndian.Uint32(b[i*blockBytes+w*4:])
		}
		roMix(words, n, r)
		for w, v := range words {
			binary.LittleEndian.PutUint32(b[i*blockBytes+w*4:], v)
		}
	}
	return pbkdf2SHA256(password, b, 1, dkLen), nil
}

// Litecoin's proof-of-work parameters.
const (
	N = 1024
	R = 1
	P = 1
)

// ScratchpadBytes is the ROMix working set at Litecoin parameters:
// the 128 KB the paper's RCA keeps in SRAM.
const ScratchpadBytes = 128 * R * N

// PoWHash computes the Litecoin proof-of-work hash of an 80-byte block
// header: scrypt with the header as both password and salt.
func PoWHash(header []byte) ([32]byte, error) {
	var out [32]byte
	if len(header) != 80 {
		return out, fmt.Errorf("litecoin: header must be 80 bytes, got %d", len(header))
	}
	dk, err := Key(header, header, N, R, P, 32)
	if err != nil {
		return out, err
	}
	copy(out[:], dk)
	return out, nil
}
