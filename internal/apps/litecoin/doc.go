// Package litecoin is the functional substrate of the paper's second
// ASIC Cloud: a from-scratch implementation of the scrypt proof-of-work
// (RFC 7914) built on our own HMAC-SHA256, PBKDF2 and Salsa20/8, plus the
// SRAM-dominated RCA specification (paper §8). "Litecoin ... employs the
// Scrypt cryptographic hash ... and is intended to be dominated by
// accesses to large SRAMs": each hash makes repeated sequential accesses
// to a 128 KB scratchpad, which is exactly the ROMix V array below at
// Litecoin's N=1024, r=1 parameters.
//
// RCA returns the published accelerator spec (performance in MH/s,
// with the SRAM rail pinned at its retention voltage); it is the
// "litecoin" application of both the CLI and the asiccloudd service.
package litecoin
