package asic

import (
	"testing"
	"testing/quick"
)

func coolConfig() Config {
	cfg := DefaultConfig()
	cfg.HeatPerBusyCycle = 0 // disable thermal effects unless testing them
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.Height = -1 },
		func(c *Config) { c.JobCycles = 0 },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.MaxTjC = c.AmbientC },
		func(c *Config) { c.CoolPerCycle = 2 },
		func(c *Config) { c.HeatPerBusyCycle = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d not rejected", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
}

func TestAllJobsCompleteExactlyOnce(t *testing.T) {
	chip, err := New(coolConfig())
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 200
	for i := 0; i < jobs; i++ {
		chip.Submit(uint64(i+1), uint64(i))
	}
	if !chip.RunUntilDrained(1_000_000) {
		t.Fatalf("chip did not drain: %+v, pending %d", chip.Stats(), chip.Pending())
	}
	s := chip.Stats()
	if s.Injected != jobs || s.Completed != jobs {
		t.Fatalf("injected %d / completed %d, want %d", s.Injected, s.Completed, jobs)
	}
	seen := map[uint64]bool{}
	for _, r := range chip.Results() {
		if seen[r.JobID] {
			t.Fatalf("job %d completed twice", r.JobID)
		}
		seen[r.JobID] = true
		if r.Payload != rcaCompute(r.JobID-1) {
			t.Fatalf("job %d payload corrupted in flight", r.JobID)
		}
	}
	if len(seen) != jobs {
		t.Fatalf("collected %d unique results, want %d", len(seen), jobs)
	}
}

func TestLatencyRespectsPhysics(t *testing.T) {
	cfg := coolConfig()
	chip, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A single job to the far corner: latency must cover the Manhattan
	// distance there, the service time, and the trip back.
	chip.nextRR = cfg.Width*cfg.Height - 1 // place on the last tile (3,3)
	chip.Submit(1, 0)
	if !chip.RunUntilDrained(100_000) {
		t.Fatal("did not drain")
	}
	rs := chip.Results()
	if len(rs) != 1 {
		t.Fatalf("got %d results", len(rs))
	}
	minLatency := int64((cfg.Width - 1) + (cfg.Height - 1) + cfg.JobCycles)
	if rs[0].Latency < minLatency {
		t.Errorf("latency %d below physical floor %d", rs[0].Latency, minLatency)
	}
	if rs[0].TileX != cfg.Width-1 || rs[0].TileY != cfg.Height-1 {
		t.Errorf("job landed on (%d,%d), want the far corner", rs[0].TileX, rs[0].TileY)
	}
}

func TestRoundRobinPlacementBalances(t *testing.T) {
	cfg := coolConfig()
	chip, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := cfg.Width * cfg.Height * 3
	for i := 0; i < jobs; i++ {
		chip.Submit(uint64(i+1), 0)
	}
	if !chip.RunUntilDrained(1_000_000) {
		t.Fatal("did not drain")
	}
	perTile := map[[2]int]int{}
	for _, r := range chip.Results() {
		perTile[[2]int{r.TileX, r.TileY}]++
	}
	if len(perTile) != cfg.Width*cfg.Height {
		t.Fatalf("only %d tiles received work", len(perTile))
	}
	for tile, n := range perTile {
		if n != 3 {
			t.Errorf("tile %v did %d jobs, want 3", tile, n)
		}
	}
}

func TestUtilizationUnderLoad(t *testing.T) {
	cfg := coolConfig()
	chip, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Saturating load: keep the mesh fed for the whole measurement
	// window (2000 jobs at ~0.25 jobs/cycle outlast 6000 cycles).
	for i := 0; i < 2000; i++ {
		chip.Submit(uint64(i+1), 0)
	}
	chip.Run(6_000)
	s := chip.Stats()
	// One injection port feeds 16 tiles with 64-cycle jobs: the port
	// supplies one job per cycle, so tiles should be mostly busy.
	if u := s.Utilization(cfg.Width * cfg.Height); u < 0.5 {
		t.Errorf("utilization %v under saturating load, want > 0.5", u)
	}
	if s.Completed == 0 {
		t.Error("no completions under load")
	}
}

func TestDeadlockFreedomRandomLoads(t *testing.T) {
	// Property: any job count on any small mesh drains — XY routing
	// with separate request/reply networks cannot deadlock.
	f := func(seed uint16) bool {
		cfg := coolConfig()
		cfg.Width = 2 + int(seed%3)
		cfg.Height = 2 + int(seed/3%3)
		cfg.QueueDepth = 1 + int(seed%2)
		cfg.JobCycles = 1 + int(seed%7)
		chip, err := New(cfg)
		if err != nil {
			return false
		}
		jobs := 50 + int(seed%200)
		for i := 0; i < jobs; i++ {
			chip.Submit(uint64(i+1), uint64(seed))
		}
		return chip.RunUntilDrained(2_000_000) && chip.Stats().Completed == int64(jobs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestThermalThrottling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeatPerBusyCycle = 0.5 // aggressive heating to force a trip
	cfg.CoolPerCycle = 0.002
	chip, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		chip.Submit(uint64(i+1), 0)
	}
	chip.Run(60_000)
	s := chip.Stats()
	if s.ThrottledCycles == 0 {
		t.Fatal("expected the thermal control loop to throttle injection")
	}
	// The sensor limit bounds how far temperature overshoots: once
	// tripped, no new work enters, so the excursion stays near the
	// limit plus the in-flight jobs' heat.
	if s.MaxTempC > cfg.MaxTjC+cfg.HeatPerBusyCycle*float64(cfg.JobCycles)*2 {
		t.Errorf("max temp %v far above the sensor limit %v", s.MaxTempC, cfg.MaxTjC)
	}
	if !chip.Throttled() && !chip.reopened() {
		t.Error("inconsistent throttle state")
	}
}

func TestThrottlingRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeatPerBusyCycle = 0.5
	cfg.CoolPerCycle = 0.01
	chip, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		chip.Submit(uint64(i+1), 0)
	}
	// With strong cooling, the duty-cycled chip must still finish.
	if !chip.RunUntilDrained(5_000_000) {
		t.Fatalf("throttled chip never drained: %+v", chip.Stats())
	}
	if got := chip.Stats().Completed; got != 500 {
		t.Errorf("completed %d, want 500", got)
	}
}

func TestStatsAccessors(t *testing.T) {
	var s Stats
	if s.AvgLatency() != 0 {
		t.Error("empty stats latency should be 0")
	}
	if s.Utilization(4) != 0 {
		t.Error("empty stats utilization should be 0")
	}
	s = Stats{Completed: 2, TotalLatency: 100, Cycle: 50, BusyCycles: 100}
	if s.AvgLatency() != 50 {
		t.Errorf("avg latency = %v, want 50", s.AvgLatency())
	}
	if s.Utilization(4) != 0.5 {
		t.Errorf("utilization = %v, want 0.5", s.Utilization(4))
	}
}

func TestXYRouting(t *testing.T) {
	cases := []struct {
		x, y, dx, dy int
		want         direction
	}{
		{0, 0, 0, 0, dirLocal},
		{0, 0, 2, 0, dirEast},
		{2, 0, 0, 0, dirWest},
		{1, 1, 1, 3, dirSouth},
		{1, 3, 1, 1, dirNorth},
		{0, 2, 3, 0, dirEast}, // X resolves before Y
	}
	for _, c := range cases {
		if got := xyOut(c.x, c.y, c.dx, c.dy); got != c.want {
			t.Errorf("xyOut(%d,%d → %d,%d) = %v, want %v", c.x, c.y, c.dx, c.dy, got, c.want)
		}
	}
}

func TestTileStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeatPerBusyCycle = 0.1
	chip, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		chip.Submit(uint64(i+1), 0)
	}
	if !chip.RunUntilDrained(1_000_000) {
		t.Fatal("did not drain")
	}
	stats := chip.TileStats()
	if len(stats) != cfg.Width*cfg.Height {
		t.Fatalf("got %d tile stats", len(stats))
	}
	var jobs, busy int64
	for _, s := range stats {
		jobs += s.JobsDone
		busy += s.BusyCycles
		if s.TempC < cfg.AmbientC {
			t.Errorf("tile (%d,%d) below ambient", s.X, s.Y)
		}
	}
	if jobs != 64 {
		t.Errorf("tile job sum = %d, want 64", jobs)
	}
	if busy != chip.Stats().BusyCycles {
		t.Error("tile busy sum disagrees with chip stats")
	}
	hot := chip.Hottest()
	for _, s := range stats {
		if s.TempC > hot.TempC {
			t.Error("Hottest missed a tile")
		}
	}
}
