// Package asic is a cycle-level simulator of the paper's on-ASIC
// architecture (Figure 2): "Each customized ASIC contains an array of
// RCA's connected by an on-ASIC interconnection network, a router for
// the on-PCB (but off-ASIC) network, a control plane that interprets
// incoming packets from the on-PCB network and schedules computation and
// data onto the RCA's, thermal sensors, and one or more PLL or CLK
// generation circuits."
//
// The model: a W×H mesh of RCA tiles, each with a router, connected by
// single-flit XY-routed links with two virtual networks (requests toward
// tiles, replies toward the control plane) so the protocol is
// deadlock-free; a control plane at the mesh edge that injects work
// round-robin and collects results; and per-tile thermal sensors whose
// readings throttle injection when a junction approaches its limit.
//
// Time is measured in cycles throughout; the simulator is functional
// (jobs carry real payloads and results), so NoC behaviour can be
// checked against the analytical bandwidth model in package
// interconnect.
package asic
