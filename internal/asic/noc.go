package asic

import (
	"errors"
	"fmt"
)

// Packet is a single-flit message on the on-ASIC network.
type Packet struct {
	JobID   uint64
	DstX    int
	DstY    int
	SrcX    int // tile that produced a reply
	SrcY    int
	Reply   bool // replies route back to the control plane
	Issued  int64
	Payload uint64
}

// direction indexes a router's output ports.
type direction int

const (
	dirLocal direction = iota
	dirEast
	dirWest
	dirNorth
	dirSouth
	numDirs
)

// vnet separates request and reply traffic to break protocol deadlock.
type vnet int

const (
	vnetRequest vnet = iota
	vnetReply
	numVnets
)

// fifo is a bounded packet queue.
type fifo struct {
	buf []Packet
	cap int
}

func (q *fifo) full() bool  { return len(q.buf) >= q.cap }
func (q *fifo) empty() bool { return len(q.buf) == 0 }
func (q *fifo) push(p Packet) bool {
	if q.full() {
		return false
	}
	q.buf = append(q.buf, p)
	return true
}
func (q *fifo) peek() Packet { return q.buf[0] }
func (q *fifo) pop() Packet {
	p := q.buf[0]
	q.buf = q.buf[1:]
	return p
}

// router holds per-direction, per-vnet input buffers.
type router struct {
	in [numVnets][numDirs]fifo
	// rrNext implements round-robin arbitration fairness per output.
	rrNext [numVnets]int
}

// tile is one RCA plus its router.
type tile struct {
	router router
	// busyUntil is the cycle the current job finishes (-1 = idle).
	busyUntil int64
	current   Packet
	hasJob    bool
	// sensor state.
	tempC float64
	// accounting.
	jobsDone   int64
	busyCycles int64
}

// Config parameterizes the chip.
type Config struct {
	// Width and Height of the RCA mesh.
	Width, Height int
	// JobCycles is the RCA service time per job.
	JobCycles int
	// QueueDepth is the per-port router buffer depth in flits.
	QueueDepth int
	// Thermal sensor model: each busy cycle adds HeatPerBusyCycle °C,
	// and the tile relaxes toward AmbientC with the given rate.
	AmbientC         float64
	MaxTjC           float64
	HeatPerBusyCycle float64
	CoolPerCycle     float64 // fraction of (T - ambient) removed per cycle
	// ThrottleHysteresisC reopens injection this far below MaxTjC.
	ThrottleHysteresisC float64
}

// DefaultConfig is a 4×4 RCA array resembling a mid-size mining chip.
func DefaultConfig() Config {
	return Config{
		Width: 4, Height: 4,
		JobCycles:           64,
		QueueDepth:          4,
		AmbientC:            30,
		MaxTjC:              90,
		HeatPerBusyCycle:    0.02,
		CoolPerCycle:        0.0003,
		ThrottleHysteresisC: 5,
	}
}

// Validate reports whether the configuration is simulatable.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("asic: mesh %dx%d must be positive", c.Width, c.Height)
	case c.JobCycles <= 0:
		return errors.New("asic: job cycles must be positive")
	case c.QueueDepth <= 0:
		return errors.New("asic: queue depth must be positive")
	case c.MaxTjC <= c.AmbientC:
		return errors.New("asic: junction limit must exceed ambient")
	case c.HeatPerBusyCycle < 0 || c.CoolPerCycle < 0 || c.CoolPerCycle > 1:
		return errors.New("asic: invalid thermal coefficients")
	}
	return nil
}

// Result is a completed job as observed by the control plane.
type Result struct {
	JobID   uint64
	Payload uint64
	Latency int64 // cycles from injection to collection
	TileX   int
	TileY   int
}

// Stats summarizes a simulation.
type Stats struct {
	Cycle           int64
	Injected        int64
	Completed       int64
	ThrottledCycles int64
	MaxTempC        float64
	TotalLatency    int64
	BusyCycles      int64
}

// AvgLatency in cycles per completed job.
func (s Stats) AvgLatency() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Completed)
}

// Utilization is the fraction of RCA-cycles spent computing.
func (s Stats) Utilization(tiles int) float64 {
	if s.Cycle == 0 || tiles == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.Cycle) / float64(tiles)
}

// Chip is the simulated ASIC.
type Chip struct {
	cfg     Config
	tiles   []tile
	pending []Packet // jobs awaiting injection at the control plane
	results []Result
	stats   Stats
	nextRR  int // round-robin tile chooser for job placement
	// throttleLatched holds injection closed until every sensor falls
	// below the hysteresis band.
	throttleLatched bool
}

// New builds a chip.
func New(cfg Config) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Chip{cfg: cfg, tiles: make([]tile, cfg.Width*cfg.Height)}
	for i := range c.tiles {
		c.tiles[i].busyUntil = -1
		c.tiles[i].tempC = cfg.AmbientC
		for v := 0; v < int(numVnets); v++ {
			for d := 0; d < int(numDirs); d++ {
				c.tiles[i].router.in[v][d].cap = cfg.QueueDepth
			}
		}
	}
	return c, nil
}

func (c *Chip) tileAt(x, y int) *tile { return &c.tiles[y*c.cfg.Width+x] }

// Submit queues a job for injection; the control plane assigns tiles
// round-robin ("schedules computation and data onto the RCA's").
func (c *Chip) Submit(jobID, payload uint64) {
	x := c.nextRR % c.cfg.Width
	y := (c.nextRR / c.cfg.Width) % c.cfg.Height
	c.nextRR++
	c.pending = append(c.pending, Packet{
		JobID: jobID, DstX: x, DstY: y, Payload: payload,
	})
}

// Pending reports jobs not yet injected into the mesh.
func (c *Chip) Pending() int { return len(c.pending) }

// Results drains collected results.
func (c *Chip) Results() []Result {
	r := c.results
	c.results = nil
	return r
}

// Stats returns a snapshot of the accounting counters.
func (c *Chip) Stats() Stats { return c.stats }

// Throttled reports whether the thermal control loop is currently
// blocking injection.
func (c *Chip) Throttled() bool { return c.throttled() }

func (c *Chip) throttled() bool {
	limit := c.cfg.MaxTjC
	for i := range c.tiles {
		if c.tiles[i].tempC >= limit {
			return true
		}
	}
	return false
}

// reopened reports whether all sensors have fallen below the hysteresis
// band, allowing injection to resume.
func (c *Chip) reopened() bool {
	limit := c.cfg.MaxTjC - c.cfg.ThrottleHysteresisC
	for i := range c.tiles {
		if c.tiles[i].tempC >= limit {
			return false
		}
	}
	return true
}

// xyOut returns the output direction for a packet at (x, y): X first,
// then Y — dimension-ordered routing is deadlock-free on a mesh.
func xyOut(x, y, dstX, dstY int) direction {
	switch {
	case dstX > x:
		return dirEast
	case dstX < x:
		return dirWest
	case dstY > y:
		return dirSouth
	case dstY < y:
		return dirNorth
	default:
		return dirLocal
	}
}

// TileStat is one RCA tile's accounting, as read out over the control
// plane — the paper's Figure 2 shows thermal sensors per ASIC for
// exactly this visibility.
type TileStat struct {
	X, Y       int
	JobsDone   int64
	BusyCycles int64
	TempC      float64
}

// TileStats returns a snapshot of every tile, row-major.
func (c *Chip) TileStats() []TileStat {
	out := make([]TileStat, len(c.tiles))
	for i := range c.tiles {
		t := &c.tiles[i]
		out[i] = TileStat{
			X: i % c.cfg.Width, Y: i / c.cfg.Width,
			JobsDone: t.jobsDone, BusyCycles: t.busyCycles, TempC: t.tempC,
		}
	}
	return out
}

// Hottest returns the tile with the highest sensor reading.
func (c *Chip) Hottest() TileStat {
	stats := c.TileStats()
	best := stats[0]
	for _, s := range stats[1:] {
		if s.TempC > best.TempC {
			best = s
		}
	}
	return best
}
