package asic

// The cycle loop. Each cycle:
//
//  1. finished RCAs emit reply packets (backpressured by their router);
//  2. routers forward one flit per output link per virtual network,
//     dimension-ordered, with round-robin arbitration among inputs,
//     using two-phase evaluation so a flit moves at most one hop per
//     cycle;
//  3. destination tiles consume request flits (starting the RCA) and
//     the control plane consumes reply flits at tile (0,0);
//  4. the control plane injects pending jobs unless a thermal sensor
//     has tripped;
//  5. sensors integrate heat and cooling.

// move is a proposed one-hop transfer for the two-phase router update.
type move struct {
	fromTile int
	fromDir  direction
	vn       vnet
	toTile   int // -1 = consumed locally (RCA start or control plane)
	toDir    direction
}

// Step advances the chip one cycle.
func (c *Chip) Step() {
	cycle := c.stats.Cycle
	w, h := c.cfg.Width, c.cfg.Height

	// 1. RCA completions: the result becomes a reply flit in the local
	// input of the tile's own router.
	for i := range c.tiles {
		t := &c.tiles[i]
		if t.hasJob && t.busyUntil <= cycle {
			reply := t.current
			reply.Reply = true
			reply.SrcX, reply.SrcY = i%w, i/w
			reply.DstX, reply.DstY = 0, 0
			reply.Payload = rcaCompute(reply.Payload)
			if t.router.in[vnetReply][dirLocal].push(reply) {
				t.hasJob = false
				t.busyUntil = -1
				t.jobsDone++
			}
			// Otherwise the RCA stalls holding its result: natural
			// backpressure when the reply network is congested.
		}
	}

	// 2. Two-phase routing.
	var moves []move
	// scheduledIn counts flits already granted into each (tile, vnet,
	// dir) input this cycle, so capacity checks see the future state.
	type inKey struct {
		tile int
		vn   vnet
		dir  direction
	}
	scheduledIn := make(map[inKey]int)
	// outUsed enforces one flit per (tile, vnet, output) per cycle.
	type outKey struct {
		tile int
		vn   vnet
		dir  direction
	}
	outUsed := make(map[outKey]bool)

	for ti := range c.tiles {
		x, y := ti%w, ti/w
		t := &c.tiles[ti]
		for vn := vnet(0); vn < numVnets; vn++ {
			// Round-robin over input ports for fairness.
			start := t.router.rrNext[vn]
			for k := 0; k < int(numDirs); k++ {
				d := direction((start + k) % int(numDirs))
				q := &t.router.in[vn][d]
				if q.empty() {
					continue
				}
				p := q.peek()
				out := xyOut(x, y, p.DstX, p.DstY)
				if out == dirLocal {
					// Ejection: request → RCA, reply → control plane.
					if vn == vnetRequest {
						if t.hasJob {
							continue // RCA busy; flit waits
						}
						moves = append(moves, move{fromTile: ti, fromDir: d, vn: vn, toTile: -1})
						t.hasJob = true // reserve so one grant per cycle
						t.current = p
						t.busyUntil = cycle + int64(c.cfg.JobCycles)
					} else {
						moves = append(moves, move{fromTile: ti, fromDir: d, vn: vn, toTile: -1})
					}
					continue
				}
				ok := outKey{ti, vn, out}
				if outUsed[ok] {
					continue
				}
				// Neighbor index and its receiving port.
				var ni int
				var nd direction
				switch out {
				case dirEast:
					ni, nd = ti+1, dirWest
				case dirWest:
					ni, nd = ti-1, dirEast
				case dirSouth:
					ni, nd = ti+w, dirNorth
				default: // dirNorth
					ni, nd = ti-w, dirSouth
				}
				if ni < 0 || ni >= w*h {
					continue // packet addressed off-mesh: drop-proofed by Submit
				}
				ik := inKey{ni, vn, nd}
				nq := &c.tiles[ni].router.in[vn][nd]
				if len(nq.buf)+scheduledIn[ik] >= nq.cap {
					continue // no credit
				}
				scheduledIn[ik]++
				outUsed[ok] = true
				moves = append(moves, move{fromTile: ti, fromDir: d, vn: vn, toTile: ni, toDir: nd})
			}
			t.router.rrNext[vn] = (start + 1) % int(numDirs)
		}
	}

	// Commit phase: pops happen before pushes so a flit cannot traverse
	// two hops, because every move was planned against the pre-cycle
	// state.
	type popped struct {
		m move
		p Packet
	}
	pops := make([]popped, 0, len(moves))
	for _, m := range moves {
		q := &c.tiles[m.fromTile].router.in[m.vn][m.fromDir]
		pops = append(pops, popped{m: m, p: q.pop()})
	}
	for _, pp := range pops {
		switch {
		case pp.m.toTile >= 0:
			c.tiles[pp.m.toTile].router.in[pp.m.vn][pp.m.toDir].push(pp.p)
		case pp.m.vn == vnetReply:
			// Control plane collects the result.
			c.results = append(c.results, Result{
				JobID:   pp.p.JobID,
				Payload: pp.p.Payload,
				Latency: cycle - pp.p.Issued,
				TileX:   pp.p.SrcX,
				TileY:   pp.p.SrcY,
			})
			c.stats.Completed++
			c.stats.TotalLatency += cycle - pp.p.Issued
		default:
			// Request consumed by the RCA: already reserved above; the
			// destination coordinates ride along for accounting.
		}
	}

	// 3. Injection at the control plane, gated by the thermal loop.
	if c.throttleLatched && c.reopened() {
		c.throttleLatched = false
	}
	if c.throttled() {
		c.throttleLatched = true
	}
	if c.throttleLatched {
		c.stats.ThrottledCycles++
	} else if len(c.pending) > 0 {
		p := c.pending[0]
		p.Issued = cycle
		if c.tileAt(0, 0).router.in[vnetRequest][dirWest].push(p) {
			c.pending = c.pending[1:]
			c.stats.Injected++
		}
	}

	// 4. Thermal sensors.
	for i := range c.tiles {
		t := &c.tiles[i]
		if t.hasJob {
			t.tempC += c.cfg.HeatPerBusyCycle
			t.busyCycles++
			c.stats.BusyCycles++
		}
		t.tempC -= c.cfg.CoolPerCycle * (t.tempC - c.cfg.AmbientC)
		if t.tempC > c.stats.MaxTempC {
			c.stats.MaxTempC = t.tempC
		}
	}

	c.stats.Cycle++
}

// rcaCompute is the work an RCA tile performs on a job's payload — a
// stand-in mixing function with the avalanche character of the real
// kernels (the functional kernels themselves live in internal/apps).
func rcaCompute(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Run advances the chip the given number of cycles.
func (c *Chip) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		c.Step()
	}
}

// RunUntilDrained steps until all injected work has completed or the
// cycle budget is exhausted; it reports whether the chip drained.
func (c *Chip) RunUntilDrained(maxCycles int) bool {
	for i := 0; i < maxCycles; i++ {
		if len(c.pending) == 0 && c.stats.Completed == c.stats.Injected && !c.anyInFlight() {
			return true
		}
		c.Step()
	}
	return len(c.pending) == 0 && c.stats.Completed == c.stats.Injected && !c.anyInFlight()
}

func (c *Chip) anyInFlight() bool {
	for i := range c.tiles {
		t := &c.tiles[i]
		if t.hasJob {
			return true
		}
		for vn := vnet(0); vn < numVnets; vn++ {
			for d := direction(0); d < numDirs; d++ {
				if !t.router.in[vn][d].empty() {
					return true
				}
			}
		}
	}
	return false
}
