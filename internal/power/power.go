// Package power models the ASIC server's power delivery system: the
// 208 V→12 V power supply unit, the 12 V→core-voltage DC/DC converter
// array, and the voltage-stacking alternative some Bitcoin clouds use to
// eliminate the converters entirely (paper §5, §7).
package power

import "fmt"

// PSU is the server power supply (208 V AC to 12 V DC).
type PSU struct {
	Efficiency float64 // fraction of wall power delivered at 12 V
	CostPerW   float64 // $ per watt of delivered capacity
}

// DefaultPSU matches the paper's server model: 90% efficiency at $0.13
// per watt.
func DefaultPSU() PSU {
	return PSU{Efficiency: 0.90, CostPerW: 0.13}
}

// WallPower returns the AC draw required to deliver dcPower at 12 V.
func (p PSU) WallPower(dcPower float64) float64 {
	if p.Efficiency <= 0 {
		return 0
	}
	return dcPower / p.Efficiency
}

// Cost prices a PSU sized for the given wall power.
func (p PSU) Cost(wallPower float64) float64 {
	if wallPower < 0 {
		wallPower = 0
	}
	return wallPower * p.CostPerW
}

// DCDC is the on-board step-down converter array (12 V to the 0.4–1.5 V
// ASIC core rails). "One DC/DC converter is required for every 30A used
// by the system."
type DCDC struct {
	Efficiency  float64 // fraction of input power delivered to the rail
	CostPerAmp  float64 // $ per amp of output current capacity
	AmpsPerUnit float64 // output amps per converter phase
}

// DefaultDCDC matches the paper: 90% efficiency, $0.33 per amp, 30 A
// per converter.
func DefaultDCDC() DCDC {
	return DCDC{Efficiency: 0.90, CostPerAmp: 0.33, AmpsPerUnit: 30}
}

// Units returns the number of converter phases needed for the given
// output current.
func (d DCDC) Units(outputAmps float64) int {
	if outputAmps <= 0 {
		return 0
	}
	per := d.AmpsPerUnit
	if per <= 0 {
		per = 30
	}
	n := int(outputAmps / per)
	if float64(n)*per < outputAmps-1e-9 {
		n++
	}
	return n
}

// InputPower returns the 12 V power drawn to deliver railPower to the
// chips.
func (d DCDC) InputPower(railPower float64) float64 {
	if d.Efficiency <= 0 {
		return 0
	}
	return railPower / d.Efficiency
}

// Cost prices the converter array for the given output current.
func (d DCDC) Cost(outputAmps float64) float64 {
	if outputAmps < 0 {
		outputAmps = 0
	}
	return outputAmps * d.CostPerAmp
}

// Loss returns the heat dissipated by the converters themselves, which
// lands on the PCB and must be cooled alongside the ASICs.
func (d DCDC) Loss(railPower float64) float64 {
	return d.InputPower(railPower) - railPower
}

// Rail is one chip supply voltage domain and its current demand.
type Rail struct {
	Name    string
	Voltage float64 // V
	Power   float64 // W drawn by the chips on this rail
}

// Amps is the rail's current draw.
func (r Rail) Amps() float64 {
	if r.Voltage <= 0 {
		return 0
	}
	return r.Power / r.Voltage
}

// Delivery summarizes a server's complete power chain.
type Delivery struct {
	RailPower  float64 // W delivered to silicon
	DCDCInput  float64 // W drawn from the 12 V bus by converters
	OtherLoad  float64 // W of 12 V loads that skip conversion (fans...)
	WallPower  float64 // W drawn from the 208 V feed
	DCDCUnits  int
	DCDCAmps   float64 // A of converter output current capacity
	DCDCCost   float64 // $ for all DC-DC converters
	PSUCost    float64 // $ for the 208 V power supplies
	Efficiency float64 // silicon watts per wall watt
}

// Plan sizes the delivery chain for a set of chip rails plus direct 12 V
// loads (fans, control processor). Stacked rails (see Stack) should be
// converted to their equivalent single rail before calling Plan.
func Plan(psu PSU, dcdc DCDC, rails []Rail, twelveVoltLoads float64) (Delivery, error) {
	var railPower, amps float64
	for _, r := range rails {
		if r.Voltage <= 0 {
			//lint:ignore hotalloc rails come from validated configs; this branch never runs per swept configuration
			return Delivery{}, fmt.Errorf("power: rail %q has non-positive voltage", r.Name)
		}
		if r.Power < 0 {
			//lint:ignore hotalloc rails come from validated configs; this branch never runs per swept configuration
			return Delivery{}, fmt.Errorf("power: rail %q has negative power", r.Name)
		}
		railPower += r.Power
		amps += r.Amps()
	}
	if twelveVoltLoads < 0 {
		//lint:ignore hotalloc loads come from validated configs; this branch never runs per swept configuration
		return Delivery{}, fmt.Errorf("power: negative 12 V load")
	}
	dcdcIn := dcdc.InputPower(railPower)
	wall := psu.WallPower(dcdcIn + twelveVoltLoads)
	d := Delivery{
		RailPower: railPower,
		DCDCInput: dcdcIn,
		OtherLoad: twelveVoltLoads,
		WallPower: wall,
		DCDCUnits: dcdc.Units(amps),
		DCDCAmps:  amps,
		DCDCCost:  dcdc.Cost(amps),
		PSUCost:   psu.Cost(wall),
	}
	if wall > 0 {
		d.Efficiency = railPower / wall
	}
	return d, nil
}

// Stack models voltage stacking: chips serially chained so their supplies
// sum to the 12 V bus, eliminating DC/DC converters (paper §7, "Voltage
// Stacking"). It returns the number of chips per stack and the effective
// rail. Stacking requires the bus voltage to be an integer multiple of
// the chip voltage; the chip voltage is nudged down to the nearest
// divisor and returned.
type StackPlan struct {
	ChipsPerStack int
	ChipVoltage   float64 // actual per-chip voltage after fitting
	BalanceCost   float64 // per-chip cost of charge-balancing regulation
}

// PlanStack fits a stack of chips at approximately chipVoltage onto a
// busVoltage rail. A small per-chip balancing cost replaces the DC/DC
// array.
func PlanStack(busVoltage, chipVoltage float64) (StackPlan, error) {
	if busVoltage <= 0 || chipVoltage <= 0 {
		//lint:ignore hotalloc voltages come from validated configs; this branch never runs per swept configuration
		return StackPlan{}, fmt.Errorf("power: stack voltages must be positive")
	}
	if chipVoltage > busVoltage {
		//lint:ignore hotalloc sweep voltages are capped below the bus voltage; this branch never runs per swept configuration
		return StackPlan{}, fmt.Errorf("power: chip voltage %.2f exceeds bus %.2f", chipVoltage, busVoltage)
	}
	n := int(busVoltage / chipVoltage)
	if n < 1 {
		n = 1
	}
	return StackPlan{
		ChipsPerStack: n,
		ChipVoltage:   busVoltage / float64(n),
		BalanceCost:   0.75,
	}, nil
}

// PlanStacked sizes the delivery chain when chips are voltage stacked:
// the PSU feeds stacks directly and only the balancing circuitry is
// charged instead of converters. chipCount is the total number of chips.
func PlanStacked(psu PSU, sp StackPlan, railPower float64, chipCount int, twelveVoltLoads float64) (Delivery, error) {
	if railPower < 0 || twelveVoltLoads < 0 {
		//lint:ignore hotalloc power totals come from validated configs; this branch never runs per swept configuration
		return Delivery{}, fmt.Errorf("power: negative power")
	}
	if chipCount <= 0 {
		//lint:ignore hotalloc geometry generation guarantees at least one chip; this branch never runs per swept configuration
		return Delivery{}, fmt.Errorf("power: stacked plan needs chips")
	}
	// Stacks connect straight to the 12 V bus: no conversion loss beyond
	// a small balancing overhead.
	const balanceLoss = 0.02
	busIn := railPower * (1 + balanceLoss)
	wall := psu.WallPower(busIn + twelveVoltLoads)
	d := Delivery{
		RailPower: railPower,
		DCDCInput: busIn,
		OtherLoad: twelveVoltLoads,
		WallPower: wall,
		DCDCCost:  float64(chipCount) * sp.BalanceCost,
		PSUCost:   psu.Cost(wall),
	}
	if wall > 0 {
		d.Efficiency = railPower / wall
	}
	return d, nil
}
