package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPSU(t *testing.T) {
	p := DefaultPSU()
	if got := p.WallPower(900); math.Abs(got-1000) > 1e-9 {
		t.Errorf("WallPower(900) = %v, want 1000 at 90%%", got)
	}
	if got := p.Cost(1000); math.Abs(got-130) > 1e-9 {
		t.Errorf("Cost(1000) = %v, want $130 at $0.13/W", got)
	}
	if got := p.Cost(-5); got != 0 {
		t.Errorf("negative wall power cost = %v, want 0", got)
	}
	zero := PSU{}
	if got := zero.WallPower(100); got != 0 {
		t.Errorf("broken PSU wall power = %v, want 0", got)
	}
}

func TestDCDCUnits(t *testing.T) {
	d := DefaultDCDC()
	cases := []struct {
		amps float64
		want int
	}{
		{0, 0}, {-3, 0}, {1, 1}, {30, 1}, {30.1, 2}, {90, 3}, {91, 4},
	}
	for _, c := range cases {
		if got := d.Units(c.amps); got != c.want {
			t.Errorf("Units(%v) = %d, want %d", c.amps, got, c.want)
		}
	}
}

func TestDCDCUnitsCoverDemandProperty(t *testing.T) {
	d := DefaultDCDC()
	f := func(a uint16) bool {
		amps := float64(a) / 10
		n := d.Units(amps)
		return float64(n)*d.AmpsPerUnit >= amps-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDCDCPowerAndCost(t *testing.T) {
	d := DefaultDCDC()
	if got := d.InputPower(90); math.Abs(got-100) > 1e-9 {
		t.Errorf("InputPower(90) = %v, want 100", got)
	}
	if got := d.Loss(90); math.Abs(got-10) > 1e-9 {
		t.Errorf("Loss(90) = %v, want 10", got)
	}
	if got := d.Cost(1000); math.Abs(got-330) > 1e-9 {
		t.Errorf("Cost(1000A) = %v, want $330", got)
	}
}

func TestRailAmps(t *testing.T) {
	r := Rail{Name: "core", Voltage: 0.5, Power: 100}
	if got := r.Amps(); math.Abs(got-200) > 1e-9 {
		t.Errorf("Amps = %v, want 200", got)
	}
	if got := (Rail{Voltage: 0}).Amps(); got != 0 {
		t.Errorf("zero-voltage rail amps = %v, want 0", got)
	}
}

func TestPlan(t *testing.T) {
	// The paper's cost-optimal Bitcoin server: ~1900 W of silicon at
	// 0.62 V → ~3070 A → ~$1013 of DC/DC, dominating the BOM.
	rails := []Rail{{Name: "core", Voltage: 0.62, Power: 1904}}
	d, err := Plan(DefaultPSU(), DefaultDCDC(), rails, 60)
	if err != nil {
		t.Fatal(err)
	}
	wantAmps := 1904 / 0.62
	if math.Abs(d.DCDCAmps-wantAmps)/wantAmps > 1e-9 {
		t.Errorf("amps = %v, want %v", d.DCDCAmps, wantAmps)
	}
	if d.DCDCCost < 1000 || d.DCDCCost > 1030 {
		t.Errorf("DC/DC cost = $%.0f, want ~$1013", d.DCDCCost)
	}
	wantWall := (1904/0.9 + 60) / 0.9
	if math.Abs(d.WallPower-wantWall)/wantWall > 1e-9 {
		t.Errorf("wall power = %v, want %v", d.WallPower, wantWall)
	}
	// End-to-end efficiency is the product of both stages scaled by the
	// fan overhead.
	if d.Efficiency <= 0.75 || d.Efficiency >= 0.81 {
		t.Errorf("efficiency = %v, want close to but under 0.81", d.Efficiency)
	}
}

func TestPlanTwoRails(t *testing.T) {
	// Litecoin-style: logic at 0.7 V plus an SRAM rail pinned at 0.9 V.
	rails := []Rail{
		{Name: "logic", Voltage: 0.7, Power: 700},
		{Name: "sram", Voltage: 0.9, Power: 900},
	}
	d, err := Plan(DefaultPSU(), DefaultDCDC(), rails, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantAmps := 700/0.7 + 900/0.9
	if math.Abs(d.DCDCAmps-wantAmps) > 1e-9 {
		t.Errorf("amps = %v, want %v", d.DCDCAmps, wantAmps)
	}
	if d.RailPower != 1600 {
		t.Errorf("rail power = %v, want 1600", d.RailPower)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(DefaultPSU(), DefaultDCDC(), []Rail{{Voltage: 0, Power: 10}}, 0); err == nil {
		t.Error("zero-voltage rail should fail")
	}
	if _, err := Plan(DefaultPSU(), DefaultDCDC(), []Rail{{Voltage: 1, Power: -10}}, 0); err == nil {
		t.Error("negative rail power should fail")
	}
	if _, err := Plan(DefaultPSU(), DefaultDCDC(), nil, -1); err == nil {
		t.Error("negative 12 V load should fail")
	}
}

func TestLowerVoltageCostsMoreDCDC(t *testing.T) {
	// Same silicon power at lower voltage needs more amps, hence more
	// converters — the effect that penalizes near-threshold designs in
	// $/op/s (paper Figure 13 discussion).
	lo, _ := Plan(DefaultPSU(), DefaultDCDC(), []Rail{{Name: "c", Voltage: 0.4, Power: 1000}}, 0)
	hi, _ := Plan(DefaultPSU(), DefaultDCDC(), []Rail{{Name: "c", Voltage: 0.8, Power: 1000}}, 0)
	if lo.DCDCCost <= hi.DCDCCost {
		t.Errorf("0.4 V DC/DC ($%.0f) should cost more than 0.8 V ($%.0f)", lo.DCDCCost, hi.DCDCCost)
	}
	if lo.DCDCCost/hi.DCDCCost != 2 {
		t.Errorf("cost ratio = %v, want exactly 2 (amps double)", lo.DCDCCost/hi.DCDCCost)
	}
}

func TestPlanStack(t *testing.T) {
	sp, err := PlanStack(12, 0.49)
	if err != nil {
		t.Fatal(err)
	}
	// 12/0.49 = 24.49 → 24 chips at 0.5 V each.
	if sp.ChipsPerStack != 24 {
		t.Errorf("chips per stack = %d, want 24", sp.ChipsPerStack)
	}
	if math.Abs(sp.ChipVoltage-0.5) > 1e-9 {
		t.Errorf("chip voltage = %v, want 0.5", sp.ChipVoltage)
	}
	if _, err := PlanStack(0, 0.5); err == nil {
		t.Error("zero bus should fail")
	}
	if _, err := PlanStack(12, 13); err == nil {
		t.Error("chip voltage above bus should fail")
	}
}

func TestPlanStackedBeatsDCDC(t *testing.T) {
	// Voltage stacking eliminates converter cost and loss; the paper's
	// stacked TCO-optimal design saves ~13% energy per op.
	railPower := 2000.0
	sp, _ := PlanStack(12, 0.48)
	stacked, err := PlanStacked(DefaultPSU(), sp, railPower, 80, 60)
	if err != nil {
		t.Fatal(err)
	}
	rails := []Rail{{Name: "core", Voltage: 0.48, Power: railPower}}
	conv, _ := Plan(DefaultPSU(), DefaultDCDC(), rails, 60)
	if stacked.WallPower >= conv.WallPower {
		t.Errorf("stacked wall %v should beat converter wall %v", stacked.WallPower, conv.WallPower)
	}
	if stacked.DCDCCost >= conv.DCDCCost {
		t.Errorf("stacked balance cost $%.0f should beat converters $%.0f", stacked.DCDCCost, conv.DCDCCost)
	}
	if stacked.Efficiency <= conv.Efficiency {
		t.Error("stacked efficiency should exceed converter chain")
	}
}

func TestPlanStackedErrors(t *testing.T) {
	sp, _ := PlanStack(12, 0.5)
	if _, err := PlanStacked(DefaultPSU(), sp, -1, 10, 0); err == nil {
		t.Error("negative power should fail")
	}
	if _, err := PlanStacked(DefaultPSU(), sp, 100, 0, 0); err == nil {
		t.Error("zero chips should fail")
	}
}
