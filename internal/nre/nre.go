// Package nre answers the paper's final question — "when do we go ASIC
// Cloud?" (paper §12) — by modeling non-recurring engineering expense
// (masks plus development) and the two-for-two rule: "If the cost per
// year (i.e. the TCO) for running the computation on an existing cloud
// exceeds the NRE by 2X, and you can get at least a 2X TCO per op/s
// improvement, then going ASIC Cloud is likely to save money."
package nre

import "fmt"

// Model is the NRE cost structure of an ASIC Cloud buildout.
type Model struct {
	// MaskCost is the full mask-set price (~$1.5M at 28 nm, about half
	// at 40 nm).
	MaskCost float64
	// DevelopmentCost covers design, verification, backend and bringup
	// labor.
	DevelopmentCost float64
}

// Total NRE in dollars.
func (m Model) Total() float64 { return m.MaskCost + m.DevelopmentCost }

// Default28nm is a representative 28 nm effort: $1.5M masks plus a
// small full-custom team.
func Default28nm() Model {
	return Model{MaskCost: 1.5e6, DevelopmentCost: 3.5e6}
}

// Default40nm is the paper's suggested cheaper entry point: "older nodes
// such as 40 nm are likely to provide suitable TCO per op/s reduction,
// with half the mask cost".
func Default40nm() Model {
	return Model{MaskCost: 0.75e6, DevelopmentCost: 2.5e6}
}

// BreakevenSpeedup returns the minimum TCO-per-op/s improvement an ASIC
// Cloud must deliver to pay for its NRE, given the existing cloud's TCO
// for the computation over the comparison horizon.
//
// Spending existingTCO on the old cloud buys perf P at TCO/op t0. The
// ASIC cloud must deliver the same P for existingTCO/speedup + NRE
// dollars. Breakeven: existingTCO/speedup + NRE = existingTCO, i.e.
// speedup = 1 / (1 - NRE/existingTCO) — the curve of the paper's
// Figure 18 (e.g. ratio 2 → 2.0×, ratio 3 → 1.5×, ratio 10 → 1.11×).
func BreakevenSpeedup(existingTCO, nreCost float64) (float64, error) {
	if existingTCO <= 0 || nreCost <= 0 {
		return 0, fmt.Errorf("nre: TCO and NRE must be positive")
	}
	ratio := existingTCO / nreCost
	if ratio <= 1 {
		return 0, fmt.Errorf("nre: TCO/NRE ratio %.2f <= 1: the NRE can never be recovered", ratio)
	}
	return ratio / (ratio - 1), nil
}

// WorthIt applies the two-for-two rule plus the exact breakeven test.
type Decision struct {
	TCONRERatio      float64 // existing TCO over NRE
	RequiredSpeedup  float64 // breakeven TCO/op improvement
	ProjectedSpeedup float64
	PassesTwoForTwo  bool    // ratio >= 2 and speedup >= 2
	PassesBreakeven  bool    // projected speedup >= required
	ProjectedSavings float64 // dollars saved over the horizon
}

// Evaluate renders the go/no-go decision for building an ASIC Cloud.
func Evaluate(existingTCO float64, nreCost float64, projectedSpeedup float64) (Decision, error) {
	if projectedSpeedup <= 0 {
		return Decision{}, fmt.Errorf("nre: projected speedup must be positive")
	}
	required, err := BreakevenSpeedup(existingTCO, nreCost)
	if err != nil {
		// Ratio <= 1: never worth it, but still report the decision.
		if existingTCO > 0 && nreCost > 0 {
			return Decision{
				TCONRERatio:      existingTCO / nreCost,
				RequiredSpeedup:  0,
				ProjectedSpeedup: projectedSpeedup,
			}, nil
		}
		return Decision{}, err
	}
	d := Decision{
		TCONRERatio:      existingTCO / nreCost,
		RequiredSpeedup:  required,
		ProjectedSpeedup: projectedSpeedup,
	}
	d.PassesTwoForTwo = d.TCONRERatio >= 2 && projectedSpeedup >= 2
	d.PassesBreakeven = projectedSpeedup >= required
	d.ProjectedSavings = existingTCO - (existingTCO/projectedSpeedup + nreCost)
	return d, nil
}

// BreakevenCurve samples the Figure 18 curve: required TCO improvement
// versus TCO/NRE ratio.
func BreakevenCurve(ratios []float64) ([]float64, error) {
	out := make([]float64, len(ratios))
	for i, r := range ratios {
		s, err := BreakevenSpeedup(r, 1)
		if err != nil {
			return nil, fmt.Errorf("nre: ratio %v: %w", r, err)
		}
		out[i] = s
	}
	return out, nil
}
