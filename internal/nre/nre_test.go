package nre

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBreakevenMatchesFigure18(t *testing.T) {
	// Paper Figure 18 annotates the curve with these (ratio, required
	// improvement) pairs.
	cases := []struct{ ratio, want float64 }{
		{1.1, 11}, {1.2, 6}, {1.5, 3}, {2, 2}, {3, 1.5},
		{4, 4.0 / 3.0}, {5, 1.25}, {6, 1.2}, {10, 10.0 / 9.0},
	}
	for _, c := range cases {
		got, err := BreakevenSpeedup(c.ratio, 1)
		if err != nil {
			t.Fatalf("ratio %v: %v", c.ratio, err)
		}
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("breakeven(%v) = %.3f, want %.3f", c.ratio, got, c.want)
		}
	}
}

func TestBreakevenDecreasing(t *testing.T) {
	// "As the TCO exceeds the NRE by more and more, the required speedup
	// to breakeven declines."
	prev := math.Inf(1)
	for r := 1.1; r <= 10; r += 0.1 {
		s, err := BreakevenSpeedup(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s >= prev {
			t.Fatalf("breakeven not decreasing at ratio %v", r)
		}
		prev = s
	}
}

func TestBreakevenErrors(t *testing.T) {
	if _, err := BreakevenSpeedup(0, 1); err == nil {
		t.Error("zero TCO should fail")
	}
	if _, err := BreakevenSpeedup(1, -1); err == nil {
		t.Error("negative NRE should fail")
	}
	if _, err := BreakevenSpeedup(0.5, 1); err == nil {
		t.Error("ratio below 1 can never break even")
	}
}

func TestTwoForTwoRule(t *testing.T) {
	// TCO = 2×NRE and speedup 2: the canonical pass.
	d, err := Evaluate(10e6, 5e6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.PassesTwoForTwo {
		t.Error("2x TCO/NRE with 2x speedup should pass the two-for-two rule")
	}
	if !d.PassesBreakeven {
		t.Error("2x speedup at ratio 2 exactly breaks even")
	}
	if d.ProjectedSavings < 0 {
		t.Errorf("savings = %v, want >= 0", d.ProjectedSavings)
	}
	// High speedup but tiny computation: fails.
	d, err = Evaluate(1e6, 5e6, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.PassesTwoForTwo || d.PassesBreakeven {
		t.Error("TCO below NRE should never justify an ASIC cloud")
	}
}

func TestAlmostAnyAcceleratorQualifiesAtScale(t *testing.T) {
	// "Almost any accelerator proposed in the literature, no matter how
	// modest the speedup, is a candidate for ASIC Cloud, depending on
	// the scale of the computation": a 1.2x speedup pays off at ratio 6+.
	d, err := Evaluate(30e6, 5e6, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.PassesBreakeven {
		t.Error("1.2x speedup at TCO/NRE = 6 should break even")
	}
}

func TestEvaluateSavingsProperty(t *testing.T) {
	// Savings are positive exactly when the projected speedup beats the
	// breakeven requirement.
	f := func(a, b uint16) bool {
		tcoUSD := 1e6 * (1 + float64(a%100))
		speedup := 1 + float64(b%50)/10
		d, err := Evaluate(tcoUSD, 5e6, speedup)
		if err != nil {
			return false
		}
		if d.RequiredSpeedup == 0 {
			return d.ProjectedSavings <= 0
		}
		return (d.ProjectedSavings >= -1e-6) == d.PassesBreakeven ||
			math.Abs(d.ProjectedSavings) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(1e6, 1e6, 0); err == nil {
		t.Error("zero speedup should fail")
	}
	if _, err := Evaluate(0, 0, 2); err == nil {
		t.Error("zero TCO and NRE should fail")
	}
}

func TestNodeNREs(t *testing.T) {
	// "With half the mask cost" at 40nm.
	if Default40nm().MaskCost*2 != Default28nm().MaskCost {
		t.Error("40nm masks should cost half of 28nm")
	}
	if Default28nm().Total() <= Default28nm().MaskCost {
		t.Error("total NRE must include development cost")
	}
}

func TestBreakevenCurve(t *testing.T) {
	curve, err := BreakevenCurve([]float64{2, 4, 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4.0 / 3.0, 10.0 / 9.0}
	for i := range want {
		if math.Abs(curve[i]-want[i]) > 1e-9 {
			t.Errorf("curve[%d] = %v, want %v", i, curve[i], want[i])
		}
	}
	if _, err := BreakevenCurve([]float64{0.5}); err == nil {
		t.Error("sub-1 ratio in curve should fail")
	}
}
