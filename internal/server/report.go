package server

import (
	"fmt"
	"strings"

	"asiccloud/internal/units"
)

// Report renders a full datasheet for an evaluated server — the level of
// detail a Bitcoin miner vendor quotes for its products, which the paper
// notes are exactly the two metrics this model optimizes ("In Bitcoin
// Server sales, the primary statistics that are quoted for mining
// products are in fact the exact ones given in this paper: $ per GH/s
// and W per GH/s").
func (e Evaluation) Report() string {
	cfg := e.Config
	unit := cfg.RCA.PerfUnit
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("=== ASIC Cloud server: %s ===", cfg.RCA.Name)
	w("organization     %d lanes × %d chips, %d RCAs per chip (%d total)",
		cfg.Lanes, cfg.ChipsPerLane, cfg.RCAsPerChip, e.TotalRCAs)
	w("die              %.1f mm² in %s", e.DieArea, cfg.Process.Name)
	w("operating point  %.2f V, %.0f MHz (utilization %.0f%%)",
		cfg.Voltage, units.HzToMHz(e.Freq), 100*e.Utilization)
	cooling := fmt.Sprintf("forced air, %s layout, %.0f mm sink depth, %d fins",
		cfg.Layout, units.MToMM(e.Sink.Depth), e.Sink.FinCount())
	if cfg.Immersion {
		cooling = "two-phase immersion"
	}
	w("cooling          %s", cooling)
	w("thermal          %.1f W per chip of %.1f W capacity (lane cap %.0f W)",
		e.ChipHeat, e.LanePowerCap/float64(cfg.ChipsPerLane), e.LanePowerCap)
	delivery := fmt.Sprintf("%d DC/DC phases, %.0f A", e.Delivery.DCDCUnits, e.Delivery.DCDCAmps)
	if cfg.Stacked {
		delivery = "voltage stacked (no DC/DC converters)"
	}
	w("power delivery   %s; wall %.0f W at %.1f%% end-to-end",
		delivery, e.WallPower, 100*e.Delivery.Efficiency)
	gridNote := ""
	if !e.GridOK {
		gridNote = " (EXCEEDS grid: shrink bump pitch)"
	}
	w("power grid       %.1f%% top metal for the IR-drop budget%s",
		100*e.GridMetalFraction, gridNote)
	if cfg.DRAM.PerASIC > 0 {
		w("memory           %d × %s per ASIC (%.1f GB/s per ASIC)",
			cfg.DRAM.PerASIC, cfg.DRAM.Device.Kind, cfg.DRAM.Bandwidth())
	}
	w("performance      %.1f %s per server", e.Perf, unit)
	w("")
	w("bill of materials")
	bomLine := func(name string, v float64) {
		if v <= 0 {
			return
		}
		w("  %-14s $%8.0f  (%4.1f%%)", name, v, 100*v/e.Cost())
	}
	bomLine("silicon", e.BOM.Silicon)
	bomLine("packages", e.BOM.Packages)
	bomLine("DC/DC", e.BOM.DCDC)
	bomLine("PSU", e.BOM.PSU)
	bomLine("heat sinks", e.BOM.HeatSinks)
	bomLine("fans", e.BOM.Fans)
	bomLine("DRAM", e.BOM.DRAM)
	bomLine("PCB", e.BOM.PCB)
	bomLine("network", e.BOM.Network)
	bomLine("other", e.BOM.Other)
	w("  %-14s $%8.0f", "total", e.Cost())
	w("")
	w("headline metrics")
	w("  $ per %-10s %.4g", unit, e.DollarsPerOp)
	w("  W per %-10s %.4g", unit, e.WattsPerOp)
	return b.String()
}
