// Package server implements the paper's ASIC Server evaluation flow
// (Figure 4): given an RCA spec, an operating voltage and a server
// organization (chips per lane, silicon per lane, lanes, DRAM complement,
// network), it composes the vlsi, thermal, power, dram and interconnect
// substrates into a complete 1U server and reports performance, wall
// power, an itemized bill of materials, and the two Pareto metrics —
// $ per op/s and W per op/s.
package server

import (
	"errors"
	"fmt"
	"math"

	"asiccloud/internal/dram"
	"asiccloud/internal/interconnect"
	"asiccloud/internal/power"
	"asiccloud/internal/thermal"
	"asiccloud/internal/vlsi"
)

// Config describes one candidate ASIC server design point.
type Config struct {
	RCA     vlsi.Spec
	Process vlsi.Process
	Package vlsi.PackageModel

	// Voltage is the logic core voltage for this design point.
	Voltage float64

	// ChipsPerLane and Lanes set the server organization; the paper's
	// 1U servers use 8 lanes.
	ChipsPerLane int
	Lanes        int

	// RCAsPerChip sets the die size (die = RCAs·area + overheads).
	RCAsPerChip int

	// DRAM is the per-ASIC memory subsystem (zero devices for none).
	DRAM dram.Subsystem

	// PerfPerDRAM caps each ASIC's throughput at PerfPerDRAM × devices
	// (in the RCA's PerfUnit); zero means no DRAM bandwidth bound. When
	// the cap binds, the chip is clocked down to exactly saturate DRAM,
	// scaling dynamic power with it.
	PerfPerDRAM float64

	// PerfCapPerChip caps each ASIC's throughput directly (same
	// clock-down semantics as PerfPerDRAM); zero means uncapped. The
	// CNN cloud uses this for chips whose surplus RCAs are disabled
	// because performance "is only dependent on the number of 8x8 DDN
	// systems".
	PerfCapPerChip float64

	// ExtraAreaPerChip, ExtraFixedPowerPerChip, ExtraPinsPerChip model
	// per-chip overheads that do not voltage scale (HyperTransport
	// PHYs, memory controllers beyond DRAM's, custom I/O).
	ExtraAreaPerChip       float64
	ExtraFixedPowerPerChip float64
	ExtraPinsPerChip       int

	// Network is the on/off-PCB communication plan; zero value means a
	// minimal SPI + control microcontroller + 1 GigE setup is assumed.
	Network *interconnect.Network

	// OffPCBBytesPerOp is the off-PCB bandwidth demand per unit of
	// performance (GB/s per op/s in the RCA's PerfUnit). When non-zero,
	// the evaluation sizes the off-PCB link count to the achieved
	// throughput instead of using Network.OffLinks verbatim — e.g. a
	// transcoding server must ship compressed frames in and out.
	OffPCBBytesPerOp float64

	// Fan and Layout configure the cooling system.
	Fan    thermal.Fan
	Layout thermal.Layout

	// InletTempC overrides the machine-room inlet air temperature
	// (0 selects the paper's 30 °C assumption). Cold-climate sites
	// like the paper's Iceland facility gain thermal headroom here.
	InletTempC float64

	// Stacked selects voltage stacking instead of DC/DC conversion.
	Stacked bool

	// Immersion selects two-phase immersion cooling instead of the
	// forced-air heat sink system (paper §2: machine rooms "heavily
	// customized for Bitcoin to reduce TCO, including the use of
	// immersion cooling"). Heat removal is then bounded by the boiling
	// critical heat flux on the die instead of the air chain, fans and
	// heat sinks disappear from the BOM, and a tank cost appears.
	Immersion bool

	// PSU and DCDC override the power chain (zero values use defaults).
	PSU  power.PSU
	DCDC power.DCDC
}

// Default fills in the paper's standard server components around an RCA:
// UMC 28nm, flip-chip packaging, 8 lanes, ducted cooling with the 1U
// high-static-pressure fan, 90%/90% power chain.
func Default(rca vlsi.Spec) Config {
	return Config{
		RCA:          rca,
		Process:      vlsi.UMC28nm(),
		Package:      vlsi.DefaultPackageModel(),
		Voltage:      rca.NominalVoltage,
		ChipsPerLane: 10,
		Lanes:        8,
		RCAsPerChip:  1,
		Fan:          thermal.Default1UFan(),
		Layout:       thermal.LayoutDuct,
		PSU:          power.DefaultPSU(),
		DCDC:         power.DefaultDCDC(),
	}
}

func (c Config) network() interconnect.Network {
	if c.Network != nil {
		return *c.Network
	}
	return interconnect.Network{
		OnPCB:      interconnect.SPI,
		OnPCBLinks: c.ChipsPerLane * c.Lanes,
		OffPCB:     interconnect.GigE1,
		OffLinks:   1,
		Control:    interconnect.Microcontroller,
	}
}

// Validate checks configuration sanity before evaluation. The sweep's
// hot loop validates once per column (EvaluateColumn), not once per
// configuration, so the error formatting here and in the substrate
// validators it calls is amortized off the per-point path.
//
//asic:coldpath
func (c Config) Validate() error {
	if err := c.RCA.Validate(); err != nil {
		return err
	}
	if err := c.Process.Validate(); err != nil {
		return err
	}
	if c.ChipsPerLane <= 0 || c.Lanes <= 0 || c.RCAsPerChip <= 0 {
		return fmt.Errorf("server: chips per lane, lanes and RCAs per chip must be positive")
	}
	if c.Voltage <= 0 {
		return fmt.Errorf("server: voltage must be positive")
	}
	if err := c.network().Validate(); err != nil {
		return err
	}
	return nil
}

// BOM is the itemized server bill of materials in dollars (the paper's
// Figures 13 and 16 cost breakdowns).
type BOM struct {
	Silicon   float64 // manufactured good dice
	Packages  float64 // flip-chip packages
	DCDC      float64 // converter array (or stacking balance circuitry)
	PSU       float64
	HeatSinks float64
	Fans      float64
	DRAM      float64
	PCB       float64
	Network   float64 // control processor, on/off-PCB links
	Other     float64 // chassis, connectors, assembly
}

// Total is the full server cost.
func (b BOM) Total() float64 {
	return b.Silicon + b.Packages + b.DCDC + b.PSU + b.HeatSinks +
		b.Fans + b.DRAM + b.PCB + b.Network + b.Other
}

// Evaluation is the result of the Figure 4 flow for one design point.
type Evaluation struct {
	Config Config

	DieArea     float64 // mm² per chip including controllers and extras
	Chips       int     // total chips in the server
	TotalRCAs   int
	Freq        float64 // operating clock (Hz)
	Utilization float64 // 1.0, or below when DRAM bandwidth caps perf

	Perf         float64 // server throughput in the RCA's PerfUnit
	WallPower    float64 // W from the 208 V feed
	SiliconWatts float64 // W delivered to the ASICs

	ChipHeat     float64 // W per chip dissipated on the PCB
	ThermalOK    bool
	LanePowerCap float64 // max W per lane the cooling can remove

	// GridMetalFraction is the top-metal share the on-die power grid
	// needs at this operating point (paper Figure 2's explicit Power
	// Grid); GridOK is false when even a full metal layer cannot hold
	// the droop budget and the package bump pitch must shrink.
	GridMetalFraction float64
	GridOK            bool

	Delivery power.Delivery
	Sink     thermal.HeatSink
	BOM      BOM

	DollarsPerOp float64 // $ per op/s — Pareto metric 1
	WattsPerOp   float64 // W per op/s — Pareto metric 2
}

// Cost is the server cost in dollars.
func (e Evaluation) Cost() float64 { return e.BOM.Total() }

// Errors distinguishing infeasibility classes, so the explorer can prune.
var (
	// ErrThermal flags designs whose chips exceed the cooling system's
	// capacity at the junction-temperature limit.
	ErrThermal = errors.New("server: design exceeds thermal limits")
	// ErrGeometry flags designs that do not physically fit (die too
	// large, sinks too deep, lane overstuffed).
	ErrGeometry = errors.New("server: design does not fit")
)

// DieArea returns the per-chip die area implied by the configuration:
// RCAs plus DRAM controllers, fixed-function extras and the on-PCB
// network endpoint.
func (c Config) DieArea() float64 {
	return float64(c.RCAsPerChip)*c.RCA.Area + c.DRAM.CtrlArea() +
		c.ExtraAreaPerChip + c.network().PerChipArea()
}

// ThermalPlan optimizes the cooling system for the configuration's
// geometry. The result is voltage-independent, so explorers sweeping
// voltage over a fixed geometry can compute it once and pass it to
// EvaluateWithPlan.
// Two-phase immersion cooling constants: an enhanced boiling surface
// sustains roughly 45 W/cm² of critical heat flux, the package lid
// spreads the die heat over ~1.8× the die area, and the tank, fluid and
// condenser share costs scale with the server's dissipation.
const (
	immersionFluxPerMM2  = 0.80 // W per mm² of die, via the lid
	immersionBaseCost    = 250.0
	immersionCostPerWatt = 0.08
)

// PlanInputs enumerates every Config field ThermalPlan's outcome
// depends on — the cooling plan is a pure function of these values and
// nothing else. The struct is comparable, so explorers can use it as a
// memoization key: two configurations with equal PlanInputs receive
// identical plans (or identical errors), no matter how their voltages,
// power chains or economics differ. Keep this in sync with ThermalPlan;
// a field read there but missing here silently poisons every cache
// built on top.
type PlanInputs struct {
	// DieAreaMM2 is the full per-chip die area (mm²): RCAs plus DRAM
	// controllers, fixed-function extras and the network endpoint.
	DieAreaMM2 float64
	// ChipsPerLane bounds sink depth (or board pitch under immersion).
	ChipsPerLane int
	// MaxDieAreaMM2 is the process's manufacturable die cap (mm²).
	MaxDieAreaMM2 float64
	// Immersion selects the two-phase boiling limit instead of the
	// forced-air chain.
	Immersion bool
	// Layout is the PCB arrangement (normal / staggered / duct).
	Layout thermal.Layout
	// DRAMBoardDepthM is the lane depth the DRAM rows consume (m).
	DRAMBoardDepthM float64
	// InletTempC is the machine-room inlet override (°C; 0 selects the
	// paper's 30 °C default).
	InletTempC float64
	// Fan is the fan model; its curve bounds the whole air chain.
	Fan thermal.Fan
}

// PlanInputs projects the configuration onto the fields ThermalPlan
// reads (see the PlanInputs type for the caching contract).
func (c Config) PlanInputs() PlanInputs {
	return PlanInputs{
		DieAreaMM2:      c.DieArea(),
		ChipsPerLane:    c.ChipsPerLane,
		MaxDieAreaMM2:   c.Process.MaxDieArea,
		Immersion:       c.Immersion,
		Layout:          c.Layout,
		DRAMBoardDepthM: c.DRAM.BoardDepth(),
		InletTempC:      c.InletTempC,
		Fan:             c.Fan,
	}
}

func ThermalPlan(cfg Config) (thermal.OptimizeResult, error) {
	dieArea := cfg.DieArea()
	if dieArea > cfg.Process.MaxDieArea {
		return thermal.OptimizeResult{}, fmt.Errorf("%w: die %.0f mm² exceeds %.0f mm²",
			ErrGeometry, dieArea, cfg.Process.MaxDieArea)
	}
	if cfg.Immersion {
		// Boiling at the die limits heat flux; the lane/airflow chain
		// is gone. Space still bounds the chips per lane: the bare
		// packages need ~25 mm of board each.
		const packagePitch = 0.025
		if float64(cfg.ChipsPerLane)*packagePitch > thermal.DefaultLaneLength+1e-9 {
			return thermal.OptimizeResult{}, fmt.Errorf("%w: %d immersed chips exceed the board",
				ErrGeometry, cfg.ChipsPerLane)
		}
		chipCap := immersionFluxPerMM2 * dieArea
		return thermal.OptimizeResult{
			ChipPower: chipCap,
			LanePower: chipCap * float64(cfg.ChipsPerLane),
		}, nil
	}
	opt := thermal.DefaultOptimizeOptions()
	opt.Layout = cfg.Layout
	opt.ExtraRow = cfg.DRAM.BoardDepth()
	//lint:ignore floatcmp zero is the "unset" sentinel of a user-assigned config field
	if cfg.InletTempC != 0 {
		opt.InletC = cfg.InletTempC
	}
	best, ok := thermal.OptimizeSink(cfg.Fan, cfg.ChipsPerLane, dieArea, opt)
	if !ok {
		return thermal.OptimizeResult{}, fmt.Errorf("%w: no heat sink fits %d chips of %.0f mm² in a lane",
			ErrGeometry, cfg.ChipsPerLane, dieArea)
	}
	return best, nil
}

// Evaluate runs the full Figure 4 flow.
func Evaluate(cfg Config) (Evaluation, error) {
	if err := cfg.Validate(); err != nil {
		return Evaluation{}, err
	}
	best, err := ThermalPlan(cfg)
	if err != nil {
		return Evaluation{}, err
	}
	return EvaluateWithPlan(cfg, best)
}

// EvaluateWithPlan runs the flow with a precomputed thermal plan
// (obtained from ThermalPlan for the same geometry).
func EvaluateWithPlan(cfg Config, best thermal.OptimizeResult) (Evaluation, error) {
	if err := cfg.Validate(); err != nil {
		return Evaluation{}, err
	}
	var rails [3]power.Rail
	ev, err := evalPoint(cfg, best, &rails)
	if err != nil && errors.Is(err, ErrThermal) {
		// The hot path returns the bare sentinel; decorate it with the
		// numbers here, where one error per call is fine.
		return ev, fmt.Errorf("%w: chip heat %.1f W exceeds %.1f W capacity",
			ErrThermal, ev.ChipHeat, best.ChipPower)
	}
	return ev, err
}

// EvaluateColumn evaluates one geometry across an ascending, positive
// voltage grid, sharing the precomputed thermal plan, and appends the
// feasible evaluations to out (pass a reused scratch slice to keep the
// sweep's steady state allocation-free). Chip heat grows monotonically
// with voltage, so the first ErrThermal prunes every higher voltage:
// thermalPruned counts the points discarded that way, evalPruned the
// points that failed evaluation individually. The config is validated
// once for the whole column, and infeasible points cost no error
// construction at all — this is the entry point the sweep engine's hot
// loop uses.
func EvaluateColumn(cfg Config, plan thermal.OptimizeResult, voltages []float64, out []Evaluation) (res []Evaluation, thermalPruned, evalPruned int) {
	if len(voltages) == 0 {
		return out, 0, 0
	}
	cfg.Voltage = voltages[0]
	if err := cfg.Validate(); err != nil {
		return out, 0, len(voltages)
	}
	var rails [3]power.Rail
	for i, v := range voltages {
		cfg.Voltage = v
		ev, err := evalPoint(cfg, plan, &rails)
		if err != nil {
			if errors.Is(err, ErrThermal) {
				return out, len(voltages) - i, evalPruned
			}
			evalPruned++
			continue
		}
		out = append(out, ev) //lint:ignore hotalloc appends into the caller's reusable scratch; capacity is reached after the first columns and growth amortizes to zero
	}
	return out, 0, evalPruned
}

// evalPoint is the allocation-free core of the Figure 4 flow: steps 1-7
// with a caller-provided rail scratch and sentinel errors (bare
// ErrThermal, errDegenerate) on the paths the sweep hits per
// configuration. Callers that face humans wrap the sentinels with
// detail; callers that prune millions of points match them with
// errors.Is and pay nothing.
func evalPoint(cfg Config, best thermal.OptimizeResult, rails *[3]power.Rail) (Evaluation, error) {
	// 1. Voltage scaling model: the RCA's operating point.
	op, err := cfg.RCA.At(cfg.Voltage)
	if err != nil {
		return Evaluation{}, err
	}

	// 2. Die composition.
	net := cfg.network()
	dieArea := cfg.DieArea()
	if dieArea > cfg.Process.MaxDieArea {
		//lint:ignore hotalloc ThermalPlan rejects oversized dies before any voltage column starts, so this fires at most once per hand-built call, never per swept configuration
		return Evaluation{}, fmt.Errorf("%w: die %.0f mm² exceeds %.0f mm²",
			ErrGeometry, dieArea, cfg.Process.MaxDieArea)
	}

	// 3. Performance, with the DRAM bandwidth cap. When DRAM binds,
	// clock down to saturation: dynamic power follows utilization.
	// (Plain ifs, not a closure: this runs once per swept configuration
	// and the hot path stays free of allocation machinery.)
	chipPerf := float64(cfg.RCAsPerChip) * op.Perf
	utilization := 1.0
	if cap := cfg.PerfPerDRAM * float64(cfg.DRAM.PerASIC); cfg.DRAM.PerASIC > 0 && cap > 0 && chipPerf > cap {
		utilization *= cap / chipPerf
		chipPerf = cap
	}
	if cap := cfg.PerfCapPerChip; cap > 0 && chipPerf > cap {
		utilization *= cap / chipPerf
		chipPerf = cap
	}

	// 4. Chip power. Logic and SRAM dynamic power scale with
	// utilization; leakage and fixed overheads do not, so each rail's
	// power is railPower · ((1-leak)·util + leak).
	leakFrac := cfg.RCA.LeakageFraction
	dynScale := (1-leakFrac)*utilization + leakFrac
	logicPerChip := op.LogicPower * dynScale * float64(cfg.RCAsPerChip)
	sramPerChip := op.SRAMPower * dynScale * float64(cfg.RCAsPerChip)
	fixedPerChip := cfg.DRAM.CtrlPower() + cfg.ExtraFixedPowerPerChip + net.OnPCB.Power
	chipHeat := logicPerChip + sramPerChip + fixedPerChip

	chips := cfg.ChipsPerLane * cfg.Lanes

	// Size the on-die power grid for this operating point.
	grid := vlsi.DefaultPowerGrid()
	gridMetal, gridErr := grid.RequiredMetalFraction(chipHeat/dieArea, op.Voltage)
	gridOK := gridErr == nil
	if !gridOK {
		gridMetal = 1
	}

	// Provision off-PCB links to the achieved throughput when the
	// application declares a bandwidth demand per op.
	if cfg.OffPCBBytesPerOp > 0 {
		demand := cfg.OffPCBBytesPerOp * chipPerf * float64(chips)
		links := interconnect.RequiredOffLinks(net.OffPCB, demand)
		if links < 1 {
			links = 1
		}
		net.OffLinks = links
	}

	// 5. Thermal feasibility against the precomputed cooling plan.
	thermalOK := chipHeat <= best.ChipPower+1e-9

	// 6. Power delivery.
	fanPower := float64(cfg.Lanes) * cfg.Fan.Power
	if cfg.Immersion {
		fanPower = 0 // passive two-phase loop; condenser power is in PUE
	}
	dramPower := cfg.DRAM.Power() * float64(chips)
	offPCB := net.Control.Power + float64(net.OffLinks)*net.OffPCB.Power
	twelveV := fanPower + dramPower + offPCB
	// Fixed per-chip loads (controllers, PHYs) run on an I/O rail; fold
	// them into the logic rail's wattage for conversion accounting at
	// a representative 1.0 V I/O voltage.
	fixedRail := power.Rail{Name: "io", Voltage: 1.0, Power: fixedPerChip * float64(chips)}

	var delivery power.Delivery
	var dcdcCost float64
	if cfg.Stacked {
		sp, err := power.PlanStack(12, cfg.Voltage)
		if err != nil {
			return Evaluation{}, err
		}
		railPower := (logicPerChip+sramPerChip)*float64(chips) + fixedRail.Power
		delivery, err = power.PlanStacked(cfg.PSU, sp, railPower, chips, twelveV)
		if err != nil {
			return Evaluation{}, err
		}
		dcdcCost = delivery.DCDCCost
	} else {
		rails[0] = power.Rail{Name: "logic", Voltage: op.Voltage, Power: logicPerChip * float64(chips)}
		rails[1] = fixedRail
		n := 2
		if sramPerChip > 0 {
			rails[2] = power.Rail{Name: "sram", Voltage: op.SRAMVoltage, Power: sramPerChip * float64(chips)}
			n = 3
		}
		delivery, err = power.Plan(cfg.PSU, cfg.DCDC, rails[:n], twelveV)
		if err != nil {
			return Evaluation{}, err
		}
		dcdcCost = delivery.DCDCCost
	}

	// 7. Bill of materials.
	dieCost, err := cfg.Process.DieCost(dieArea)
	if err != nil {
		//lint:ignore hotalloc die-size errors are geometry properties caught by ThermalPlan before the voltage column; this wrap is for hand-built calls
		return Evaluation{}, fmt.Errorf("%w: %v", ErrGeometry, err)
	}
	chipAmps := (logicPerChip + sramPerChip + fixedPerChip) / op.Voltage
	extraPins := cfg.DRAM.SignalPins() + cfg.ExtraPinsPerChip + net.PerChipPins()
	pkgCost, err := cfg.Package.Cost(dieArea, chipAmps, extraPins)
	if err != nil {
		return Evaluation{}, err
	}

	pcb := pcbCost(chips, cfg.DRAM.PerASIC > 0)
	bom := BOM{
		Silicon:   dieCost * float64(chips),
		Packages:  pkgCost * float64(chips),
		DCDC:      dcdcCost,
		PSU:       delivery.PSUCost,
		HeatSinks: best.Sink.Cost() * float64(chips),
		Fans:      cfg.Fan.Cost * float64(cfg.Lanes),
		DRAM:      cfg.DRAM.Cost() * float64(chips),
		PCB:       pcb,
		Network:   net.Cost(),
		Other:     otherCost,
	}
	if cfg.Immersion {
		bom.HeatSinks = 0
		bom.Fans = 0
		bom.Other += immersionBaseCost + immersionCostPerWatt*delivery.WallPower
	}

	perf := chipPerf * float64(chips)
	ev := Evaluation{
		Config:       cfg,
		DieArea:      dieArea,
		Chips:        chips,
		TotalRCAs:    cfg.RCAsPerChip * chips,
		Freq:         op.Freq * utilization,
		Utilization:  utilization,
		Perf:         perf,
		WallPower:    delivery.WallPower,
		SiliconWatts: delivery.RailPower,
		ChipHeat:     chipHeat,
		ThermalOK:    thermalOK,
		LanePowerCap: best.LanePower,
		Delivery:     delivery,
		Sink:         best.Sink,
		BOM:          bom,

		GridMetalFraction: gridMetal,
		GridOK:            gridOK,
	}
	if perf > 0 {
		ev.DollarsPerOp = bom.Total() / perf
		ev.WattsPerOp = delivery.WallPower / perf
	}
	if !thermalOK {
		// Bare sentinel: the sweep prunes on this per infeasible
		// configuration, and error formatting here once dominated the
		// warm sweep's allocation profile. EvaluateWithPlan adds the
		// wattage detail for human-facing callers.
		return ev, ErrThermal
	}
	if math.IsNaN(ev.DollarsPerOp) || math.IsInf(ev.DollarsPerOp, 0) {
		return ev, errDegenerate
	}
	return ev, nil
}

// errDegenerate flags design points whose Pareto metrics come out NaN
// or infinite (zero performance). A package-level sentinel so the hot
// path never constructs it.
var errDegenerate = errors.New("server: degenerate design point")

// otherCost covers chassis, cabling, connectors and final assembly.
const otherCost = 40.0

// pcbCost prices the custom printed circuit board; DRAM designs need
// more layers and better signal/power integrity (paper §9).
func pcbCost(chips int, hasDRAM bool) float64 {
	c := 55.0 + 0.9*float64(chips)
	if hasDRAM {
		c *= 1.7
	}
	return c
}
