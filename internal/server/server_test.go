package server

import (
	"errors"
	"math"
	"strings"
	"testing"

	"asiccloud/internal/dram"
	"asiccloud/internal/interconnect"
	"asiccloud/internal/vlsi"
)

// bitcoinRCA mirrors the paper's published Bitcoin RCA.
func bitcoinRCA() vlsi.Spec {
	return vlsi.Spec{
		Name:                "bitcoin",
		PerfUnit:            "GH/s",
		Area:                0.66,
		NominalVoltage:      1.0,
		NominalFreq:         830e6,
		NominalPerf:         0.83,
		NominalPowerDensity: 2.0,
		LeakageFraction:     0.008,
		VoltageScalable:     true,
	}
}

// costOptimalBitcoin is the paper's Table 3 cost-optimal column: 0.62 V,
// 5 chips per lane, 106 mm² dies (160 RCAs).
func costOptimalBitcoin() Config {
	cfg := Default(bitcoinRCA())
	cfg.Voltage = 0.62
	cfg.ChipsPerLane = 5
	cfg.RCAsPerChip = 160
	return cfg
}

func TestEvaluateCostOptimalBitcoin(t *testing.T) {
	ev, err := Evaluate(costOptimalBitcoin())
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 3: 2,983 GH/s, 2,351 W, $2,484, $0.833/GH/s,
	// 0.788 W/GH/s. We require the reproduction within 20%.
	checks := []struct {
		name      string
		got, want float64
	}{
		{"perf", ev.Perf, 2983},
		{"wall power", ev.WallPower, 2351},
		{"cost", ev.Cost(), 2484},
		{"$/GH/s", ev.DollarsPerOp, 0.833},
		{"W/GH/s", ev.WattsPerOp, 0.788},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want)/c.want > 0.20 {
			t.Errorf("%s = %.1f, want %.1f ±20%% (paper Table 3)", c.name, c.got, c.want)
		}
	}
	if !ev.ThermalOK {
		t.Error("paper's cost-optimal design should be coolable")
	}
	if ev.Chips != 40 {
		t.Errorf("chips = %d, want 40", ev.Chips)
	}
	if math.Abs(ev.DieArea-105.6) > 1 {
		t.Errorf("die area = %.1f, want ~105.6 mm²", ev.DieArea)
	}
}

func TestEvaluateEnergyOptimalBitcoin(t *testing.T) {
	// Table 3 energy-optimal: 0.40 V, 10 chips/lane, 600 mm² dies
	// (909 RCAs), 5,094 GH/s, 0.368 W/GH/s.
	cfg := Default(bitcoinRCA())
	cfg.Voltage = 0.40
	cfg.ChipsPerLane = 10
	cfg.RCAsPerChip = 908 // ~599.9 mm² including network endpoint
	ev, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Perf-5094)/5094 > 0.20 {
		t.Errorf("perf = %.0f GH/s, want ~5094", ev.Perf)
	}
	if math.Abs(ev.WattsPerOp-0.368)/0.368 > 0.25 {
		t.Errorf("W/GH/s = %.3f, want ~0.368", ev.WattsPerOp)
	}
	// Energy-optimal servers are silicon-dominated (Figure 13).
	if ev.BOM.Silicon < 0.5*ev.Cost() {
		t.Errorf("silicon $%.0f should dominate cost $%.0f", ev.BOM.Silicon, ev.Cost())
	}
}

func TestVoltageTradeoff(t *testing.T) {
	// Across the same geometry, lower voltage must improve W/op and
	// degrade $/op (the Pareto tradeoff of Figure 12).
	cfg := costOptimalBitcoin()
	cfg.RCAsPerChip = 80
	lo := cfg
	lo.Voltage = 0.45
	hi := cfg
	hi.Voltage = 0.62
	evLo, err := Evaluate(lo)
	if err != nil {
		t.Fatal(err)
	}
	evHi, err := Evaluate(hi)
	if err != nil {
		t.Fatal(err)
	}
	if evLo.WattsPerOp >= evHi.WattsPerOp {
		t.Errorf("lower voltage should be more energy efficient: %v vs %v",
			evLo.WattsPerOp, evHi.WattsPerOp)
	}
	if evLo.DollarsPerOp <= evHi.DollarsPerOp {
		t.Errorf("lower voltage should cost more per op/s: %v vs %v",
			evLo.DollarsPerOp, evHi.DollarsPerOp)
	}
}

func TestThermalInfeasibleHighVoltage(t *testing.T) {
	// Max-size dies at full voltage: 2 W/mm² on 600 mm² is 1200 W per
	// chip — far beyond any air cooling.
	cfg := Default(bitcoinRCA())
	cfg.Voltage = 1.0
	cfg.ChipsPerLane = 10
	cfg.RCAsPerChip = 900
	_, err := Evaluate(cfg)
	if !errors.Is(err, ErrThermal) {
		t.Errorf("expected ErrThermal, got %v", err)
	}
}

func TestGeometryInfeasible(t *testing.T) {
	cfg := Default(bitcoinRCA())
	cfg.RCAsPerChip = 1000 // 660 mm² > 600 mm² limit
	if _, err := Evaluate(cfg); !errors.Is(err, ErrGeometry) {
		t.Errorf("expected ErrGeometry for oversized die, got %v", err)
	}
	cfg = Default(bitcoinRCA())
	cfg.ChipsPerLane = 200 // cannot fit the lane
	if _, err := Evaluate(cfg); !errors.Is(err, ErrGeometry) {
		t.Errorf("expected ErrGeometry for overstuffed lane, got %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cfg := Default(bitcoinRCA())
	cfg.Lanes = 0
	if _, err := Evaluate(cfg); err == nil {
		t.Error("zero lanes should fail")
	}
	cfg = Default(bitcoinRCA())
	cfg.Voltage = -1
	if _, err := Evaluate(cfg); err == nil {
		t.Error("negative voltage should fail")
	}
	cfg = Default(bitcoinRCA())
	cfg.RCA.Area = 0
	if _, err := Evaluate(cfg); err == nil {
		t.Error("invalid RCA should fail")
	}
}

func TestDRAMBandwidthCap(t *testing.T) {
	cfg := Default(bitcoinRCA())
	cfg.Voltage = 0.62
	cfg.ChipsPerLane = 5
	cfg.RCAsPerChip = 100
	sub, err := dram.NewSubsystem(dram.LPDDR3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DRAM = sub
	cfg.PerfPerDRAM = 5 // caps each chip at 15 GH/s-equivalent
	ev, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ev.Perf / float64(ev.Chips); math.Abs(got-15) > 1e-9 {
		t.Errorf("per-chip perf = %v, want capped at 15", got)
	}
	if ev.Utilization >= 1 {
		t.Errorf("utilization = %v, want < 1 when DRAM binds", ev.Utilization)
	}
	// The cap must also cut dynamic power versus the uncapped design.
	uncapped := cfg
	uncapped.PerfPerDRAM = 0
	evU, err := Evaluate(uncapped)
	if err != nil {
		t.Fatal(err)
	}
	if ev.WallPower >= evU.WallPower {
		t.Errorf("DRAM-capped power %v should be below uncapped %v", ev.WallPower, evU.WallPower)
	}
	if ev.BOM.DRAM <= 0 {
		t.Error("DRAM BOM line should be positive")
	}
	// DRAM designs pay for fancier PCBs.
	if ev.BOM.PCB <= evU.BOM.PCB*0.99 {
		t.Error("DRAM PCB premium missing")
	}
}

func TestVoltageStackingSavesConverters(t *testing.T) {
	base := costOptimalBitcoin()
	base.Voltage = 0.48
	stacked := base
	stacked.Stacked = true
	evBase, err := Evaluate(base)
	if err != nil {
		t.Fatal(err)
	}
	evStack, err := Evaluate(stacked)
	if err != nil {
		t.Fatal(err)
	}
	if evStack.BOM.DCDC >= evBase.BOM.DCDC {
		t.Errorf("stacking DCDC cost $%.0f should beat converters $%.0f",
			evStack.BOM.DCDC, evBase.BOM.DCDC)
	}
	if evStack.WattsPerOp >= evBase.WattsPerOp {
		t.Errorf("stacking W/op %v should beat converters %v",
			evStack.WattsPerOp, evBase.WattsPerOp)
	}
}

func TestFixedOverheadsDoNotScale(t *testing.T) {
	// HyperTransport-style fixed power stays constant across voltage.
	cfg := Default(bitcoinRCA())
	cfg.ChipsPerLane = 2
	cfg.RCAsPerChip = 50
	cfg.ExtraFixedPowerPerChip = 10
	cfg.ExtraAreaPerChip = 20
	lo := cfg
	lo.Voltage = 0.45
	hi := cfg
	hi.Voltage = 0.62
	evLo, err1 := Evaluate(lo)
	evHi, err2 := Evaluate(hi)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Chip heat difference should be the RCA power difference only;
	// both include the same +10 W fixed.
	if evLo.ChipHeat >= evHi.ChipHeat {
		t.Error("lower voltage should still reduce chip heat")
	}
	if evLo.ChipHeat < 10 || evHi.ChipHeat < 10 {
		t.Error("fixed 10 W per chip must be included in heat")
	}
	if evLo.DieArea <= 50*0.66+1 {
		t.Error("extra area per chip must be included in die area")
	}
}

func TestCustomNetwork(t *testing.T) {
	cfg := costOptimalBitcoin()
	net := interconnect.Network{
		OnPCB:      interconnect.HyperTransport,
		OnPCBLinks: 40,
		OffPCB:     interconnect.GigE10,
		OffLinks:   2,
		Control:    interconnect.ControlFPGA,
	}
	cfg.Network = &net
	ev, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Evaluate(costOptimalBitcoin())
	if err != nil {
		t.Fatal(err)
	}
	if ev.BOM.Network <= plain.BOM.Network {
		t.Error("HyperTransport + FPGA network should cost more than SPI + uC")
	}
	if ev.DieArea <= plain.DieArea {
		t.Error("HyperTransport endpoints should add die area")
	}
}

func TestEvaluationAccounting(t *testing.T) {
	ev, err := Evaluate(costOptimalBitcoin())
	if err != nil {
		t.Fatal(err)
	}
	// BOM total equals the sum of its parts.
	b := ev.BOM
	sum := b.Silicon + b.Packages + b.DCDC + b.PSU + b.HeatSinks + b.Fans +
		b.DRAM + b.PCB + b.Network + b.Other
	if math.Abs(sum-b.Total()) > 1e-9 {
		t.Error("BOM total mismatch")
	}
	// Metric identities.
	if math.Abs(ev.DollarsPerOp-ev.Cost()/ev.Perf) > 1e-12 {
		t.Error("$/op identity broken")
	}
	if math.Abs(ev.WattsPerOp-ev.WallPower/ev.Perf) > 1e-12 {
		t.Error("W/op identity broken")
	}
	// Wall power covers silicon power with the two 90% stages.
	if ev.WallPower <= ev.SiliconWatts/(0.9*0.9) {
		t.Error("wall power should exceed silicon power over the delivery chain")
	}
}

func TestThermalPlanReuse(t *testing.T) {
	cfg := costOptimalBitcoin()
	plan, err := ThermalPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev1, err := EvaluateWithPlan(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Cost() != ev2.Cost() || ev1.Perf != ev2.Perf || ev1.WallPower != ev2.WallPower {
		t.Error("EvaluateWithPlan should match Evaluate for the same geometry")
	}
}

func TestOffPCBLinkProvisioning(t *testing.T) {
	cfg := costOptimalBitcoin()
	net := interconnect.Network{
		OnPCB:      interconnect.SPI,
		OnPCBLinks: 40,
		OffPCB:     interconnect.GigE10,
		OffLinks:   1,
		Control:    interconnect.Microcontroller,
	}
	cfg.Network = &net
	base, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Declare a bandwidth demand: 1 MB/s per GH/s. At ~3000 GH/s the
	// server needs ~3 GB/s, i.e. three 10-GigE links instead of one.
	cfg.OffPCBBytesPerOp = 0.001
	sized, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sized.BOM.Network <= base.BOM.Network {
		t.Errorf("bandwidth-sized network ($%.0f) should cost more than the single-link plan ($%.0f)",
			sized.BOM.Network, base.BOM.Network)
	}
	if sized.WallPower <= base.WallPower {
		t.Error("extra off-PCB PHYs should draw extra power")
	}
	// Tiny demand still keeps at least one link.
	cfg.OffPCBBytesPerOp = 1e-12
	one, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if one.BOM.Network != base.BOM.Network {
		t.Error("negligible demand should provision exactly one link")
	}
}

func TestImmersionCooling(t *testing.T) {
	// Air-cooled, 2 W/mm² Bitcoin silicon at 0.7 V is thermally
	// infeasible; immersion's boiling flux limit admits it.
	cfg := Default(bitcoinRCA())
	cfg.Voltage = 0.70
	cfg.ChipsPerLane = 10
	cfg.RCAsPerChip = 300
	if _, err := Evaluate(cfg); !errors.Is(err, ErrThermal) {
		t.Fatalf("air cooling at 0.70 V should be thermally infeasible, got %v", err)
	}
	cfg.Immersion = true
	ev, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.ThermalOK {
		t.Error("immersion should cool this design")
	}
	if ev.BOM.Fans != 0 || ev.BOM.HeatSinks != 0 {
		t.Error("immersion removes fans and heat sinks from the BOM")
	}
	if ev.BOM.Other <= otherCost {
		t.Error("immersion tank cost missing from Other")
	}
	// Boiling flux still limits the hottest designs: full voltage on
	// max dies exceeds even the CHF.
	cfg.Voltage = 1.0
	cfg.RCAsPerChip = 900
	if _, err := Evaluate(cfg); !errors.Is(err, ErrThermal) {
		t.Errorf("2 W/mm² at 600 mm² exceeds the boiling CHF, got %v", err)
	}
	// Immersed packages still need board space.
	cfg.Voltage = 0.55
	cfg.RCAsPerChip = 50
	cfg.ChipsPerLane = 30
	if _, err := Evaluate(cfg); !errors.Is(err, ErrGeometry) {
		t.Errorf("30 immersed chips should not fit a lane, got %v", err)
	}
}

func TestImmersionRemovesFanPower(t *testing.T) {
	air := costOptimalBitcoin()
	wet := air
	wet.Immersion = true
	evAir, err := Evaluate(air)
	if err != nil {
		t.Fatal(err)
	}
	evWet, err := Evaluate(wet)
	if err != nil {
		t.Fatal(err)
	}
	if evWet.WallPower >= evAir.WallPower {
		t.Errorf("immersion wall power %v should drop below air %v (no fans)",
			evWet.WallPower, evAir.WallPower)
	}
}

func TestReportContents(t *testing.T) {
	ev, err := Evaluate(costOptimalBitcoin())
	if err != nil {
		t.Fatal(err)
	}
	r := ev.Report()
	for _, want := range []string{
		"ASIC Cloud server", "bill of materials", "silicon", "DC/DC",
		"GH/s", "lanes", "UMC 28nm", "headline metrics", "forced air",
	} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
	// Immersion and stacking variants change the narrative lines.
	cfg := costOptimalBitcoin()
	cfg.Voltage = 0.48
	cfg.Immersion = true
	cfg.Stacked = true
	ev2, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2 := ev2.Report()
	if !strings.Contains(r2, "two-phase immersion") || !strings.Contains(r2, "voltage stacked") {
		t.Errorf("variant report wrong:\n%s", r2)
	}
}

func TestPowerGridSizing(t *testing.T) {
	// Higher voltage on the same geometry draws denser current and
	// needs more grid metal per volt of budget at a fixed density —
	// here the dominant effect is power density rising with V², so the
	// high-voltage point must demand at least as much metal.
	cfg := costOptimalBitcoin()
	cfg.RCAsPerChip = 80
	lo := cfg
	lo.Voltage = 0.45
	hi := cfg
	hi.Voltage = 0.62
	evLo, err1 := Evaluate(lo)
	evHi, err2 := Evaluate(hi)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !evLo.GridOK || !evHi.GridOK {
		t.Error("both operating points should fit a buildable grid")
	}
	if evLo.GridMetalFraction <= 0 || evHi.GridMetalFraction <= 0 {
		t.Error("grid metal fractions should be positive")
	}
	if evHi.GridMetalFraction < evLo.GridMetalFraction {
		t.Errorf("0.62 V point (%.3f) should need at least the metal of 0.45 V (%.3f)",
			evHi.GridMetalFraction, evLo.GridMetalFraction)
	}
	if !strings.Contains(evHi.Report(), "power grid") {
		t.Error("report should include the grid line")
	}
}
