package carbon

import (
	"math"
	"testing"

	"asiccloud/internal/vlsi"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	m := ForGrid(20)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.GridGCO2ePerKWh != 20 {
		t.Errorf("ForGrid intensity = %v, want 20", m.GridGCO2ePerKWh)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"NaN wafer", func(m *Model) { m.WaferKgCO2e = math.NaN() }},
		{"Inf intensity", func(m *Model) { m.GridGCO2ePerKWh = math.Inf(1) }},
		{"NaN utilization", func(m *Model) { m.Utilization = math.NaN() }},
		{"negative wafer", func(m *Model) { m.WaferKgCO2e = -1 }},
		{"negative package", func(m *Model) { m.PackageKgCO2e = -0.1 }},
		{"negative intensity", func(m *Model) { m.GridGCO2ePerKWh = -5 }},
		{"PUE below 1", func(m *Model) { m.PUE = 0.9 }},
		{"zero lifetime", func(m *Model) { m.LifetimeYears = 0 }},
		{"zero utilization", func(m *Model) { m.Utilization = 0 }},
		{"utilization above 1", func(m *Model) { m.Utilization = 1.1 }},
	}
	for _, tc := range cases {
		m := Default()
		tc.mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, m)
		}
	}
	// A fully decarbonized grid is valid, not an error.
	m := ForGrid(0)
	if err := m.Validate(); err != nil {
		t.Errorf("zero grid intensity should validate: %v", err)
	}
}

// TestOperationalKg checks the energy accounting by hand: 100 W at
// PUE 1.2, half utilization, over 2 years on a 500 g/kWh grid is
// 100 × 1.2 × 0.5 × 2 × 8760 / 1000 = 1051.2 kWh → 525.6 kg CO2e.
func TestOperationalKg(t *testing.T) {
	m := Model{
		WaferKgCO2e: 1, GridGCO2ePerKWh: 500,
		PUE: 1.2, LifetimeYears: 2, Utilization: 0.5,
	}
	got := m.OperationalKg(100)
	want := 525.6
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("OperationalKg(100) = %v, want %v", got, want)
	}
	if z := ForGrid(0).OperationalKg(100); z != 0 {
		t.Errorf("zero-intensity grid: OperationalKg = %v, want 0", z)
	}
}

// TestEmbodiedServerKg checks that the per-die wafer share mirrors
// vlsi.Process.DieCost's yield accounting: wafer emission divided by
// yielded good dies, not gross dies.
func TestEmbodiedServerKg(t *testing.T) {
	m := Default()
	p := vlsi.UMC28nm()
	const area, chips = 100.0, 10
	good := p.DiesPerWafer(area) * p.Yield(area)
	if good <= 0 {
		t.Fatal("test geometry should yield")
	}
	perChip := m.WaferKgCO2e/good + m.PackageKgCO2e + m.HeatSinkKgCO2e
	want := float64(chips)*perChip + m.BoardKgCO2e
	got := m.EmbodiedServerKg(p, area, chips)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("EmbodiedServerKg = %v, want %v", got, want)
	}
	// Larger dies yield worse, so the silicon share of embodied carbon
	// must rise superlinearly with die area.
	sil := func(a float64) float64 { return m.WaferKgCO2e / (p.DiesPerWafer(a) * p.Yield(a)) }
	if small, big := sil(50), sil(500); big <= 10*small {
		t.Errorf("yield loss missing: 500mm2 silicon %v kg <= 10x 50mm2 silicon %v kg", big, small)
	}
}

// TestEmbodiedServerKgUnyieldable: a die too large for the wafer
// returns +Inf, never an error or a finite underestimate.
func TestEmbodiedServerKgUnyieldable(t *testing.T) {
	got := Default().EmbodiedServerKg(vlsi.UMC28nm(), 1e9, 1)
	if !math.IsInf(got, 1) {
		t.Errorf("unyieldable die: EmbodiedServerKg = %v, want +Inf", got)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{EmbodiedKg: 1.5, OperationalKg: 2.5}
	if b.Total() != 4 {
		t.Errorf("Total = %v, want 4", b.Total())
	}
	// Of divides embodied by perf and meters operational on wall power
	// per perf.
	m := Model{
		WaferKgCO2e: 1, GridGCO2ePerKWh: 500,
		PUE: 1.2, LifetimeYears: 2, Utilization: 0.5,
	}
	got := m.Of(600, 2, 200)
	if got.EmbodiedKg != 300 {
		t.Errorf("EmbodiedKg = %v, want 300", got.EmbodiedKg)
	}
	if math.Abs(got.OperationalKg-525.6) > 1e-9 {
		t.Errorf("OperationalKg = %v, want 525.6", got.OperationalKg)
	}
}
