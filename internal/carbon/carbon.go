package carbon

import (
	"fmt"
	"math"

	"asiccloud/internal/units"
	"asiccloud/internal/vlsi"
)

// Model holds the emission factors of a datacenter's carbon footprint,
// split the way the TCO model splits money: embodied terms paid once
// per manufactured part, and an operational term metered per kWh.
type Model struct {
	// WaferKgCO2e is the embodied emission of one processed wafer in
	// kg CO2e: fab energy, process gases and upstream materials. The
	// per-die share divides this by good dies per wafer, charging
	// yield loss to carbon exactly as vlsi.Process.DieCost charges it
	// to dollars.
	WaferKgCO2e float64

	// PackageKgCO2e is the embodied emission of packaging one chip in
	// kg CO2e (substrate, bumping, assembly and test).
	PackageKgCO2e float64

	// HeatSinkKgCO2e is the embodied emission of one chip's share of
	// the cooling hardware in kg CO2e (heat sink metal for forced air,
	// the tank/condenser share under immersion).
	HeatSinkKgCO2e float64

	// BoardKgCO2e is the per-server embodied emission of the PCB,
	// power supplies and chassis in kg CO2e.
	BoardKgCO2e float64

	// GridGCO2ePerKWh is the operational grid carbon intensity in
	// g CO2e per kWh of delivered energy. Zero models a fully
	// decarbonized (hydro/nuclear) grid and is valid.
	GridGCO2ePerKWh float64

	// PUE is the power usage effectiveness multiplier on server power,
	// dimensionless and >= 1.
	PUE float64

	// LifetimeYears is the amortization period in years over which
	// operational energy accumulates — the same window the TCO model
	// amortizes hardware over.
	LifetimeYears float64

	// Utilization is the average duty factor in (0, 1], dimensionless:
	// the fraction of the lifetime the server spends doing work. It
	// scales the operational term only; embodied carbon is sunk at
	// manufacture regardless of use.
	Utilization float64
}

// Default returns the calibrated ASIC Cloud carbon model: a 28nm-class
// wafer burden in the band the GreenFPGA/ACT studies publish
// (~1.35 kg CO2e per cm² of processed silicon, ≈950 kg per 300 mm
// wafer), per-chip packaging and heat-sink shares, a board/PSU/chassis
// term, the IEA world-average grid intensity, and the paper's 1.5-year
// ASIC server turnover at PUE 1.1 (matching tco.Default).
func Default() Model {
	return Model{
		WaferKgCO2e:     950,
		PackageKgCO2e:   0.15,
		HeatSinkKgCO2e:  1.1,
		BoardKgCO2e:     75,
		GridGCO2ePerKWh: 475,
		PUE:             1.1,
		LifetimeYears:   1.5,
		Utilization:     1.0,
	}
}

// ForGrid returns the default model with a different grid carbon
// intensity in g CO2e/kWh — the knob siting studies turn (Iceland's
// hydro grid sits near 20 g/kWh; coal-heavy grids above 700).
func ForGrid(gCO2ePerKWh float64) Model {
	m := Default()
	m.GridGCO2ePerKWh = gCO2ePerKWh
	return m
}

// Validate reports whether the model is usable. NaN anywhere is
// rejected: a NaN emission factor would silently poison every carbon
// objective in the sweep instead of failing one request loudly.
func (m Model) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"WaferKgCO2e", m.WaferKgCO2e},
		{"PackageKgCO2e", m.PackageKgCO2e},
		{"HeatSinkKgCO2e", m.HeatSinkKgCO2e},
		{"BoardKgCO2e", m.BoardKgCO2e},
		{"GridGCO2ePerKWh", m.GridGCO2ePerKWh},
		{"PUE", m.PUE},
		{"LifetimeYears", m.LifetimeYears},
		{"Utilization", m.Utilization},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("carbon: %s must be finite, got %v", f.name, f.v)
		}
	}
	if m.WaferKgCO2e < 0 || m.PackageKgCO2e < 0 || m.HeatSinkKgCO2e < 0 || m.BoardKgCO2e < 0 {
		return fmt.Errorf("carbon: negative embodied emission factor")
	}
	if m.GridGCO2ePerKWh < 0 {
		return fmt.Errorf("carbon: grid intensity %v g CO2e/kWh must be >= 0", m.GridGCO2ePerKWh)
	}
	if m.PUE < 1 {
		return fmt.Errorf("carbon: PUE %v below 1 is unphysical", m.PUE)
	}
	if m.LifetimeYears <= 0 {
		return fmt.Errorf("carbon: lifetime must be positive")
	}
	if m.Utilization <= 0 || m.Utilization > 1 {
		return fmt.Errorf("carbon: utilization %v must be in (0, 1]", m.Utilization)
	}
	return nil
}

// EmbodiedServerKg returns the embodied emission of one server in
// kg CO2e: chips of dieAreaMM2 silicon each (wafer share divided by
// yielded good dies, mirroring vlsi.Process.DieCost), plus per-chip
// packaging and heat-sink terms and the per-server board term. A die
// too large to yield any good dies returns +Inf rather than an error —
// such geometries are pruned by the evaluation pipeline before any
// carbon number is reported, and +Inf keeps this callable from the
// sweep's allocation-free hot path.
func (m Model) EmbodiedServerKg(p vlsi.Process, dieAreaMM2 float64, chips int) float64 {
	good := p.DiesPerWafer(dieAreaMM2) * p.Yield(dieAreaMM2)
	siliconKg := math.Inf(1)
	if good > 0 {
		siliconKg = m.WaferKgCO2e / good
	}
	perChip := siliconKg + m.PackageKgCO2e + m.HeatSinkKgCO2e
	return float64(chips)*perChip + m.BoardKgCO2e
}

// OperationalKg returns the operational emission in kg CO2e of drawing
// watts of wall power over the model's lifetime at its utilization:
// watts × PUE × utilization × lifetime hours × grid intensity.
func (m Model) OperationalKg(watts float64) float64 {
	kwh := watts * m.PUE * m.Utilization * m.LifetimeYears * units.HoursPerYear /
		units.WattsPerKilowatt
	return units.GToKg(kwh * m.GridGCO2ePerKWh)
}

// Breakdown splits a design's carbon footprint into the two terms of
// the model. Fed per-performance inputs it is kg CO2e per op/s of
// capacity over the lifetime — the carbon analogue of TCO per op/s.
type Breakdown struct {
	// EmbodiedKg is the manufacturing share in kg CO2e.
	EmbodiedKg float64 `json:"embodied_kg"`
	// OperationalKg is the lifetime-energy share in kg CO2e.
	OperationalKg float64 `json:"operational_kg"`
}

// Total is the full carbon footprint in kg CO2e.
func (b Breakdown) Total() float64 { return b.EmbodiedKg + b.OperationalKg }

// Of computes the per-unit-performance carbon breakdown of a server
// with embodied emission embodiedServerKg (kg CO2e, EmbodiedServerKg's
// output), throughput perf (op/s), and wall power wallWatts (W). This
// runs once per feasible design point inside the sweep's hot loop and
// is allocation-free.
func (m Model) Of(embodiedServerKg, perf, wallWatts float64) Breakdown {
	return Breakdown{
		EmbodiedKg:    embodiedServerKg / perf,
		OperationalKg: m.OperationalKg(wallWatts / perf),
	}
}
