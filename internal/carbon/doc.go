// Package carbon extends the paper's TCO methodology to carbon
// accounting: the same two-term structure that prices a server —
// capital you amortize plus energy you meter — reappears as embodied
// CO2e (emitted once, at the fab and the assembly line) plus
// operational CO2e (emitted continuously, at the grid's carbon
// intensity, for as long as the server runs).
//
// The embodied side reuses the vlsi package's manufacturing model: a
// processed wafer carries a fixed emission burden, and a die's share of
// it is the wafer burden divided by good (yielded) dies per wafer —
// exactly how vlsi.Process.DieCost turns wafer price into die cost, so
// yield losses are charged to carbon the same way they are charged to
// dollars. Packaging, heat sinks and the board add per-chip and
// per-server terms.
//
// The operational side mirrors tco.Model's electricity term with the
// $/kWh price replaced by a grid intensity in g CO2e/kWh, scaled by
// PUE, the amortization lifetime, and a utilization factor (an idle
// specialized cloud still paid its embodied carbon; it only avoids the
// operational share).
//
// Model.Of produces a Breakdown per unit performance — kg CO2e per
// op/s of capacity over the lifetime — which is to carbon what TCO per
// op/s is to dollars: the scalar the carbon-optimal design minimizes,
// and the second axis of the TCO-vs-CO2e Pareto frontier. Default() is
// calibrated from the GreenFPGA and FPGA-vs-ASIC sustainability
// studies cited in PAPERS.md (see DESIGN.md "Carbon model
// derivation").
package carbon
