package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func stdLane(chips int, dieArea float64, layout Layout) Lane {
	sink := stdSink()
	sink.Depth = 0.030
	return NewLane(Default1UFan(), sink, chips, dieArea, layout)
}

func TestLaneValidate(t *testing.T) {
	if err := stdLane(10, 100, LayoutDuct).Validate(); err != nil {
		t.Fatalf("standard lane rejected: %v", err)
	}
	l := stdLane(0, 100, LayoutDuct)
	if err := l.Validate(); err == nil {
		t.Error("zero chips should fail")
	}
	l = stdLane(10, -5, LayoutDuct)
	if err := l.Validate(); err == nil {
		t.Error("negative die area should fail")
	}
	// Too many deep sinks for the lane length.
	l = stdLane(25, 100, LayoutDuct)
	l.Sink.Depth = 0.030 // 25 * 30 mm = 750 mm > 600 mm
	if err := l.Validate(); err == nil {
		t.Error("sinks exceeding lane depth should fail")
	}
	l = stdLane(5, 100, LayoutDuct)
	l.MaxTjC = 20 // below inlet
	if err := l.Validate(); err == nil {
		t.Error("junction limit below inlet should fail")
	}
	l = stdLane(10, 100, LayoutDuct)
	l.ExtraRow = 0.5 // 10*30mm + 500mm > 600mm
	if err := l.Validate(); err == nil {
		t.Error("extra row overflow should fail")
	}
}

func TestAirflowRespectsFanCurve(t *testing.T) {
	l := stdLane(10, 100, LayoutDuct)
	sinkQ, fanQ := l.Airflow()
	if sinkQ <= 0 || fanQ <= 0 {
		t.Fatalf("airflow should be positive: sink %v fan %v", sinkQ, fanQ)
	}
	if fanQ > l.Fan.MaxFlow {
		t.Errorf("fan flow %v exceeds free-air max %v", fanQ, l.Fan.MaxFlow)
	}
	// Ducted layout: no bypass.
	if math.Abs(sinkQ-fanQ) > 1e-9 {
		t.Errorf("duct layout should have no bypass: sink %v fan %v", sinkQ, fanQ)
	}
	// Flow equals the fan-curve flow at the lane's pressure drop.
	dp := float64(l.Chips) * l.Sink.PressureDrop(sinkQ)
	if got := l.Fan.FlowAt(dp); math.Abs(got-fanQ)/fanQ > 0.01 {
		t.Errorf("operating point inconsistent: fan flow at %v Pa = %v, solved %v", dp, got, fanQ)
	}
}

func TestBypassLayouts(t *testing.T) {
	for _, layout := range []Layout{LayoutNormal, LayoutStaggered} {
		l := stdLane(10, 100, layout)
		sinkQ, fanQ := l.Airflow()
		if sinkQ >= fanQ {
			t.Errorf("%v should bypass some air: sink %v fan %v", layout, sinkQ, fanQ)
		}
	}
	// Normal bypasses far more than staggered.
	nSink, nFan := stdLane(10, 100, LayoutNormal).Airflow()
	sSink, sFan := stdLane(10, 100, LayoutStaggered).Airflow()
	if nSink/nFan >= sSink/sFan {
		t.Errorf("normal layout should waste more air: %v vs %v", nSink/nFan, sSink/sFan)
	}
}

func TestMoreChipsMorePressureLessFlow(t *testing.T) {
	few := stdLane(5, 100, LayoutDuct)
	many := stdLane(18, 100, LayoutDuct)
	qFew, _ := few.Airflow()
	qMany, _ := many.Airflow()
	if qMany >= qFew {
		t.Errorf("more sinks in series should reduce flow: %v vs %v", qFew, qMany)
	}
}

func TestJunctionTempsRiseDownstream(t *testing.T) {
	l := stdLane(10, 100, LayoutDuct)
	temps := l.JunctionTemps(20)
	if len(temps) != 10 {
		t.Fatalf("got %d temps, want 10", len(temps))
	}
	// "Typically the thermally bottlenecking ASIC is the one in the back."
	hottest := temps[0]
	for _, x := range temps {
		if x > hottest {
			hottest = x
		}
	}
	if hottest != temps[len(temps)-1] {
		t.Errorf("last chip should be hottest: %v", temps)
	}
	for i, x := range temps {
		if x <= l.InletC {
			t.Errorf("chip %d at %v °C is below inlet", i, x)
		}
	}
}

func TestJunctionTempsMonotoneInPower(t *testing.T) {
	l := stdLane(8, 200, LayoutDuct)
	f := func(a, b uint16) bool {
		p1 := float64(a%200) + 1
		p2 := float64(b%200) + 1
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		t1 := l.JunctionTemps(p1)
		t2 := l.JunctionTemps(p2)
		for i := range t1 {
			if t1[i] > t2[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxChipPowerHitsJunctionLimit(t *testing.T) {
	l := stdLane(10, 300, LayoutDuct)
	p := l.MaxChipPower()
	if p <= 0 {
		t.Fatal("max power should be positive")
	}
	temps := l.JunctionTemps(p)
	hottest := temps[0]
	for _, x := range temps {
		if x > hottest {
			hottest = x
		}
	}
	if math.Abs(hottest-l.MaxTjC) > 0.1 {
		t.Errorf("hottest junction at max power = %v, want %v", hottest, l.MaxTjC)
	}
	if got := l.MaxLanePower(); math.Abs(got-p*10) > 1e-9 {
		t.Errorf("MaxLanePower = %v, want %v", got, p*10)
	}
}

func TestMaxPowerZeroForInvalidLane(t *testing.T) {
	l := stdLane(0, 100, LayoutDuct)
	if got := l.MaxChipPower(); got != 0 {
		t.Errorf("invalid lane max power = %v, want 0", got)
	}
}

func TestLayoutOrderingFigure8(t *testing.T) {
	// Paper Figure 8: Staggered removes ~64-65% more heat than Normal;
	// DUCT gains ~15% over Staggered. We assert the ordering and rough
	// magnitudes (1.4-1.8x and 1.05-1.25x).
	opt := DefaultOptimizeOptions()
	power := map[Layout]float64{}
	for _, layout := range []Layout{LayoutNormal, LayoutStaggered, LayoutDuct} {
		o := opt
		o.Layout = layout
		r, ok := OptimizeSink(Default1UFan(), 4, 100, o)
		if !ok {
			t.Fatalf("optimize failed for %v", layout)
		}
		power[layout] = r.LanePower
	}
	sn := power[LayoutStaggered] / power[LayoutNormal]
	ds := power[LayoutDuct] / power[LayoutStaggered]
	if sn < 1.4 || sn > 1.8 {
		t.Errorf("staggered/normal = %.2f, want ~1.65 (paper: +64-65%%)", sn)
	}
	if ds < 1.05 || ds > 1.25 {
		t.Errorf("duct/staggered = %.2f, want ~1.15 (paper: +15%%)", ds)
	}
}

func TestLayoutString(t *testing.T) {
	if LayoutNormal.String() != "Normal" || LayoutStaggered.String() != "Staggered" || LayoutDuct.String() != "DUCT" {
		t.Error("layout names wrong")
	}
	if Layout(99).String() != "Layout(99)" {
		t.Error("unknown layout name wrong")
	}
}

func TestFigure9MoreSiliconMorePower(t *testing.T) {
	// Paper Figure 9: "Greater total area also increases the allowable
	// power since there is more TIM."
	opt := DefaultOptimizeOptions()
	prev := 0.0
	for _, total := range []float64{50, 130, 330, 850, 2200} {
		r, ok := OptimizeSink(Default1UFan(), 10, total/10, opt)
		if !ok {
			t.Fatalf("optimize failed for %v mm²", total)
		}
		if r.LanePower <= prev {
			t.Errorf("lane power for %v mm² (%v W) should exceed smaller series (%v W)",
				total, r.LanePower, prev)
		}
		prev = r.LanePower
	}
}

func TestFigure9MoreChipsAtLeastAsGood(t *testing.T) {
	// Paper Figure 9: spreading a fixed total silicon area across more
	// chips increases (never decreases, in the 5-20 range) the total
	// allowable power.
	opt := DefaultOptimizeOptions()
	const total = 2200.0
	r5, ok5 := OptimizeSink(Default1UFan(), 5, total/5, opt)
	r10, ok10 := OptimizeSink(Default1UFan(), 10, total/10, opt)
	if !ok5 || !ok10 {
		t.Fatal("optimize failed")
	}
	if r10.LanePower <= r5.LanePower {
		t.Errorf("10 chips (%v W) should beat 5 chips (%v W) at fixed silicon",
			r10.LanePower, r5.LanePower)
	}
}

func TestOptimizeSinkRespectsGeometry(t *testing.T) {
	opt := DefaultOptimizeOptions()
	r, ok := OptimizeSink(Default1UFan(), 12, 200, opt)
	if !ok {
		t.Fatal("optimize failed")
	}
	if err := r.Sink.Validate(); err != nil {
		t.Errorf("optimizer returned invalid sink: %v", err)
	}
	if err := r.Lane.Validate(); err != nil {
		t.Errorf("optimizer returned invalid lane: %v", err)
	}
	if float64(12)*r.Sink.Depth > opt.LaneLen+1e-9 {
		t.Error("sinks exceed lane depth")
	}
}

func TestOptimizeSinkDepthShrinksWithChips(t *testing.T) {
	// "As the number of ASICs increases, the heat sinks become less deep
	// to reduce pressure drop and keep the airflow rate up."
	opt := DefaultOptimizeOptions()
	r2, ok2 := OptimizeSink(Default1UFan(), 2, 300, opt)
	r20, ok20 := OptimizeSink(Default1UFan(), 20, 30, opt)
	if !ok2 || !ok20 {
		t.Fatal("optimize failed")
	}
	if r20.Sink.Depth >= r2.Sink.Depth {
		t.Errorf("20-chip sink depth %v should be below 2-chip depth %v",
			r20.Sink.Depth, r2.Sink.Depth)
	}
}

func TestOptimizeSinkFailsWhenImpossible(t *testing.T) {
	if _, ok := OptimizeSink(Default1UFan(), 0, 100, DefaultOptimizeOptions()); ok {
		t.Error("zero chips should fail")
	}
	if _, ok := OptimizeSink(Default1UFan(), 5, -1, DefaultOptimizeOptions()); ok {
		t.Error("negative die should fail")
	}
	// 200 chips cannot fit 600 mm of lane at any sink depth >= 4 mm.
	if _, ok := OptimizeSink(Default1UFan(), 200, 10, DefaultOptimizeOptions()); ok {
		t.Error("200 chips should not fit")
	}
}

func TestExtraRowReducesCapacity(t *testing.T) {
	// DRAM rows eat lane depth (video transcode servers), shrinking the
	// thermal budget.
	opt := DefaultOptimizeOptions()
	base, ok1 := OptimizeSink(Default1UFan(), 8, 200, opt)
	opt.ExtraRow = 0.25
	crowded, ok2 := OptimizeSink(Default1UFan(), 8, 200, opt)
	if !ok1 || !ok2 {
		t.Fatal("optimize failed")
	}
	if crowded.LanePower >= base.LanePower {
		t.Errorf("DRAM rows should cost thermal capacity: %v vs %v",
			crowded.LanePower, base.LanePower)
	}
}

func TestOptimizerSweepsSpreaderMaterial(t *testing.T) {
	// The optimizer tries both Table 2 spreader materials and never
	// loses to a fixed-copper search.
	opt := DefaultOptimizeOptions()
	r, ok := OptimizeSink(Default1UFan(), 8, 60, opt)
	if !ok {
		t.Fatal("optimize failed")
	}
	if r.Sink.BaseMaterial != Copper && r.Sink.BaseMaterial != Aluminum {
		t.Errorf("unexpected spreader material %v", r.Sink.BaseMaterial.Name)
	}
	// Force-compare: the winning configuration must dominate its own
	// other-material twin.
	twin := r.Sink
	if twin.BaseMaterial == Copper {
		twin.BaseMaterial = Aluminum
	} else {
		twin.BaseMaterial = Copper
	}
	lane := r.Lane
	lane.Sink = twin
	if lane.MaxChipPower() > r.ChipPower+1e-9 {
		t.Error("optimizer picked the inferior spreader material")
	}
}
