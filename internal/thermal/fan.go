package thermal

import "fmt"

// Fan models a commercial axial fan via its fan curve: the static pressure
// it can sustain at a given volumetric flow. "Commercial fans are
// characterized by a fan curve that describes how much air it can supply
// under a certain pressure drop."
type Fan struct {
	Name        string
	MaxPressure float64 // static pressure at zero flow (Pa)
	MaxFlow     float64 // free-air flow (m³/s)
	Power       float64 // electrical power (W)
	Cost        float64 // $
	Width       float64 // frame width (m); 1U fans are 40 mm
}

// Default1UFan is the 12 V / 7.5 W high-static-pressure 40 mm fan from the
// paper's server model (Figure 3), with a curve typical of dual-rotor
// server fans.
func Default1UFan() Fan {
	return Fan{
		Name:        "40mm dual-rotor high-static-pressure 12V 7.5W",
		MaxPressure: 320,    // Pa
		MaxFlow:     0.0125, // 26.5 CFM
		Power:       7.5,
		Cost:        9.0,
		Width:       0.040,
	}
}

// PressureAt returns the static pressure the fan sustains at flow q,
// using the standard quadratic approximation of an axial fan curve.
// Beyond free-air flow the fan cannot push, so pressure is zero.
func (f Fan) PressureAt(q float64) float64 {
	if q <= 0 {
		return f.MaxPressure
	}
	if q >= f.MaxFlow {
		return 0
	}
	r := q / f.MaxFlow
	return f.MaxPressure * (1 - r*r)
}

// FlowAt inverts the fan curve: the flow delivered against a static
// pressure p. Pressures above MaxPressure stall the fan (zero flow).
func (f Fan) FlowAt(p float64) float64 {
	if p >= f.MaxPressure {
		return 0
	}
	if p <= 0 {
		return f.MaxFlow
	}
	r := 1 - p/f.MaxPressure
	if r < 0 {
		return 0
	}
	return f.MaxFlow * sqrt(r)
}

// Validate reports whether the fan parameters are physical.
func (f Fan) Validate() error {
	if f.MaxPressure <= 0 || f.MaxFlow <= 0 {
		return fmt.Errorf("thermal: fan %q must have positive max pressure and flow", f.Name)
	}
	if f.Power < 0 || f.Cost < 0 {
		return fmt.Errorf("thermal: fan %q has negative power or cost", f.Name)
	}
	return nil
}
