// Package thermal is the server cooling substrate of the ASIC Cloud design
// flow. It replaces the paper's ANSYS Icepak CFD runs with the validated
// analytical model the paper actually sweeps: a TIM + spreader + fin-array
// resistance network, commercial fan curves intersected with duct pressure
// drops, serial air heating along a lane of ASICs, and layout efficiency
// models for the Normal, Staggered and DUCT PCB arrangements (Figure 7).
//
// # Units
//
// Geometry is in metres, temperatures in °C (differences in kelvin), flow
// in m³/s, pressure in pascals — except die area, which follows the
// paper's convention of mm². Thermal resistances are K/W, conductivities
// W/(m·K). Every exported quantity's doc states its unit; the asiclint
// unitdoc analyzer enforces this.
//
// # Entry points
//
// OptimizeSink searches the heat-sink geometry for the maximum
// sustainable per-chip power at a given lane — core.Engine memoizes its
// result per geometry, which is the service's warm-sweep fast path.
// Lane.Airflow couples the fan curve to the duct's pressure drop;
// Lane.MaxChipPower inverts the resistance network to the paper's
// per-chip power budget.
package thermal
