package thermal

import (
	"fmt"
	"math"

	"asiccloud/internal/units"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// HeatSink is a parallel-plate-fin heat sink with a solid spreader base,
// fins running parallel to the airflow (paper §6.3.2, Table 2).
type HeatSink struct {
	Width         float64 // across the airflow (m), <= lane width
	FinHeight     float64 // fin height above the base (m)
	Depth         float64 // along the airflow (m), <= 100 mm
	BaseThickness float64 // spreader thickness (m); the paper uses 3 mm
	FinThickness  float64 // (m); the paper uses 0.5 mm
	Gap           float64 // channel width between fins (m), >= 1 mm
	FinMaterial   Material
	BaseMaterial  Material
	TIM           TIM
}

// Limits from the paper's Table 2, used by the heat sink optimizer.
const (
	MaxSinkWidth  = 0.085 // m
	MaxSinkHeight = 0.035 // m, limited to 1U, includes 3 mm spreader
	MaxSinkDepth  = 0.100 // m
	MinGap        = 0.001 // m between two fins
	StdFin        = 0.0005 // m; the paper's standard 0.5 mm fin thickness
	StdBase       = 0.003  // m; the paper's standard 3 mm spreader base
)

// Validate reports whether the geometry is buildable within Table 2.
func (h HeatSink) Validate() error {
	switch {
	case h.Width <= 0 || h.FinHeight <= 0 || h.Depth <= 0:
		return fmt.Errorf("thermal: heat sink dimensions must be positive")
	case h.Width > MaxSinkWidth+1e-12:
		return fmt.Errorf("thermal: width %.1f mm exceeds %.0f mm", h.Width*1e3, MaxSinkWidth*1e3)
	case h.BaseThickness+h.FinHeight > MaxSinkHeight+1e-12:
		return fmt.Errorf("thermal: height %.1f mm exceeds %.0f mm (1U limit)",
			(h.BaseThickness+h.FinHeight)*1e3, MaxSinkHeight*1e3)
	case h.Depth > MaxSinkDepth+1e-12:
		return fmt.Errorf("thermal: depth %.1f mm exceeds %.0f mm", h.Depth*1e3, MaxSinkDepth*1e3)
	case h.Gap < MinGap-1e-12:
		return fmt.Errorf("thermal: fin gap %.2f mm below %.0f mm minimum", h.Gap*1e3, MinGap*1e3)
	case h.FinThickness <= 0:
		return fmt.Errorf("thermal: fin thickness must be positive")
	case h.FinCount() < 2:
		return fmt.Errorf("thermal: fewer than 2 fins fit in %.1f mm width", h.Width*1e3)
	}
	return nil
}

// FinCount is the number of fins that fit across the width at the
// configured pitch.
func (h HeatSink) FinCount() int {
	pitch := h.FinThickness + h.Gap
	if pitch <= 0 {
		return 0
	}
	n := int((h.Width+h.Gap)/pitch + 1e-9)
	if n < 0 {
		return 0
	}
	return n
}

// ChannelCount is the number of air channels between fins.
func (h HeatSink) ChannelCount() int {
	n := h.FinCount()
	if n < 2 {
		return 0
	}
	return n - 1
}

// OpenArea is the frontal area open to airflow in m².
func (h HeatSink) OpenArea() float64 {
	return float64(h.ChannelCount()) * h.Gap * h.FinHeight
}

// FinArea is the total convective surface area in m²: both sides of each
// fin plus the exposed base between fins.
func (h HeatSink) FinArea() float64 {
	fins := 2 * float64(h.FinCount()) * h.FinHeight * h.Depth
	base := float64(h.ChannelCount()) * h.Gap * h.Depth
	return fins + base
}

// hydraulicDiameter of one rectangular channel.
func (h HeatSink) hydraulicDiameter() float64 {
	a, b := h.Gap, h.FinHeight
	return 2 * a * b / (a + b)
}

// channelVelocity for a through-sink flow q (m³/s).
func (h HeatSink) channelVelocity(q float64) float64 {
	oa := h.OpenArea()
	if oa <= 0 {
		return 0
	}
	return q / oa
}

// PressureDrop returns the static pressure loss (Pa) of flow q through the
// sink: developed channel friction plus entrance/exit contraction losses.
// Deeper sinks and narrower gaps cost more pressure — the effect that
// drives the optimizer toward shallower sinks as chips per lane grow.
func (h HeatSink) PressureDrop(q float64) float64 {
	if q <= 0 {
		return 0
	}
	v := h.channelVelocity(q)
	dh := h.hydraulicDiameter()
	re := v * dh / units.AirViscosity
	var f float64
	if re < 2300 {
		// Laminar parallel-plate friction, f·Re ≈ 96 for high aspect
		// ratio channels; use 64-96 blend on aspect ratio.
		fre := 96.0 - 32.0*(h.Gap/h.FinHeight)
		if re < 1 {
			re = 1
		}
		f = fre / re
	} else {
		f = 0.316 / math.Pow(re, 0.25) // Blasius
	}
	dyn := units.AirDensity * v * v / 2
	friction := f * (h.Depth / dh) * dyn
	// Contraction/expansion loss at the sink faces. In a ducted lane the
	// sinks nearly abut, so the loss per sink is small.
	const kEntranceExit = 0.15
	return friction + kEntranceExit*dyn
}

// Resistance is the thermal resistance breakdown from junction to the air
// entering the sink, for through-sink flow q and a die of dieAreaMM2.
type Resistance struct {
	TIM        float64 // die → spreader interface (K/W)
	Spreading  float64 // constriction in the spreader (K/W)
	Convection float64 // fins → air (K/W)
}

// Total junction-to-inlet-air resistance in K/W.
func (r Resistance) Total() float64 { return r.TIM + r.Spreading + r.Convection }

// Resistance computes the resistance network at flow q for the given die.
// The TIM term is inversely proportional to die area — the reason the
// paper's Figure 6 shows small dies unable to use a big sink, and the
// reason more total silicon per lane can dissipate more total heat.
func (h HeatSink) Resistance(q, dieAreaMM2 float64) Resistance {
	rTIM := h.TIM.Resistance(dieAreaMM2)

	// Spreading resistance (maximum-constriction approximation):
	// R = (1 - r1/r2)^1.5 / (pi * k * r1).
	dieM2 := units.MM2ToM2(dieAreaMM2)
	baseM2 := h.Width * h.Depth
	var rSpread float64
	if dieM2 < baseM2 {
		r1 := math.Sqrt(dieM2 / math.Pi)
		r2 := math.Sqrt(baseM2 / math.Pi)
		eps := r1 / r2
		rSpread = math.Pow(1-eps, 1.5) / (math.Pi * h.BaseMaterial.Conductivity * r1)
		// One-dimensional conduction through the base thickness.
		rSpread += h.BaseThickness / (h.BaseMaterial.Conductivity * baseM2)
	}

	// Convection: channel Nusselt number with a developing-flow
	// enhancement, fin efficiency from the standard tanh model.
	v := h.channelVelocity(q)
	dh := h.hydraulicDiameter()
	var hConv float64
	if v > 0 {
		re := v * dh / units.AirViscosity
		var nu float64
		if re < 2300 {
			// Fully developed parallel-plate Nu plus entrance-region
			// augmentation (Hausen-style).
			lStar := h.Depth / (dh * re * units.AirPrandtl)
			nu = 7.54 + 0.03/(lStar+0.016)
		} else {
			nu = 0.023 * math.Pow(re, 0.8) * math.Pow(units.AirPrandtl, 0.4)
		}
		hConv = nu * units.AirConductivity / dh
	}
	var rConv float64
	if hConv > 0 {
		m := math.Sqrt(2 * hConv / (h.FinMaterial.Conductivity * h.FinThickness))
		mH := m * h.FinHeight
		eta := 1.0
		if mH > 1e-9 {
			eta = math.Tanh(mH) / mH
		}
		finArea := 2 * float64(h.FinCount()) * h.FinHeight * h.Depth
		baseArea := float64(h.ChannelCount()) * h.Gap * h.Depth
		rConv = 1 / (hConv * (eta*finArea + baseArea))
	} else {
		rConv = math.Inf(1)
	}

	return Resistance{TIM: rTIM, Spreading: rSpread, Convection: rConv}
}

// Mass in kg of the sink (base plate plus fins).
func (h HeatSink) Mass() float64 {
	base := h.Width * h.Depth * h.BaseThickness * h.BaseMaterial.Density
	fins := float64(h.FinCount()) * h.FinThickness * h.FinHeight * h.Depth * h.FinMaterial.Density
	return base + fins
}

// Cost estimates the manufactured sink cost: material plus extrusion and
// per-fin machining. The paper relies on "wide arrays of low-cost
// heatsinks", so typical values land in the $1–6 range.
func (h HeatSink) Cost() float64 {
	material := h.Width*h.Depth*h.BaseThickness*h.BaseMaterial.Density*h.BaseMaterial.CostPerKG +
		float64(h.FinCount())*h.FinThickness*h.FinHeight*h.Depth*h.FinMaterial.Density*h.FinMaterial.CostPerKG
	const manufacturing = 0.80
	return material + manufacturing
}
