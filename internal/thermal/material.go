// Package thermal is the server cooling substrate of the ASIC Cloud design
// flow. It replaces the paper's ANSYS Icepak CFD runs with the validated
// analytical model the paper actually sweeps: a TIM + spreader + fin-array
// resistance network, commercial fan curves intersected with duct pressure
// drops, serial air heating along a lane of ASICs, and layout efficiency
// models for the Normal, Staggered and DUCT PCB arrangements (Figure 7).
//
// Geometry is in metres, temperatures in °C (differences in kelvin), flow
// in m³/s, pressure in pascals — except die area, which follows the
// paper's convention of mm².
package thermal

import "asiccloud/internal/units"

// Material is a thermal conduction material.
type Material struct {
	Name         string
	Conductivity float64 // W/(m·K)
	Density      float64 // kg/m³
	CostPerKG    float64 // $/kg
}

// Standard heat sink materials (paper Table 2: Al 200 W/mK fins, Al or
// copper 400 W/mK heat spreader).
var (
	Aluminum = Material{Name: "aluminum", Conductivity: 200, Density: 2700, CostPerKG: 6.0}
	Copper   = Material{Name: "copper", Conductivity: 400, Density: 8960, CostPerKG: 14.0}
)

// TIM is the thermal interface material gluing die to heat spreader. Its
// poor conductivity and inverse proportionality to die area make it the
// dominant resistance for small dies (paper Figure 6).
type TIM struct {
	Thickness    float64 // m
	Conductivity float64 // W/(m·K)
}

// DefaultTIM is a typical high-performance thermal grease/epoxy layer.
func DefaultTIM() TIM {
	return TIM{Thickness: 0.1e-3, Conductivity: 4.0}
}

// Resistance returns the TIM conduction resistance in K/W for a die of
// the given area in mm².
func (t TIM) Resistance(dieAreaMM2 float64) float64 {
	if dieAreaMM2 <= 0 {
		return 0
	}
	areaM2 := units.MM2ToM2(dieAreaMM2)
	return t.Thickness / (t.Conductivity * areaM2)
}
