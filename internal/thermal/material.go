package thermal

import "asiccloud/internal/units"

// Material is a thermal conduction material.
type Material struct {
	Name         string
	Conductivity float64 // W/(m·K)
	Density      float64 // kg/m³
	CostPerKG    float64 // $/kg
}

// Standard heat sink materials (paper Table 2: Al 200 W/mK fins, Al or
// copper 400 W/mK heat spreader).
var (
	Aluminum = Material{Name: "aluminum", Conductivity: 200, Density: 2700, CostPerKG: 6.0}
	Copper   = Material{Name: "copper", Conductivity: 400, Density: 8960, CostPerKG: 14.0}
)

// TIM is the thermal interface material gluing die to heat spreader. Its
// poor conductivity and inverse proportionality to die area make it the
// dominant resistance for small dies (paper Figure 6).
type TIM struct {
	Thickness    float64 // m
	Conductivity float64 // W/(m·K)
}

// DefaultTIM is a typical high-performance thermal grease/epoxy layer.
func DefaultTIM() TIM {
	return TIM{Thickness: 0.1e-3, Conductivity: 4.0}
}

// Resistance returns the TIM conduction resistance in K/W for a die of
// the given area in mm².
func (t TIM) Resistance(dieAreaMM2 float64) float64 {
	if dieAreaMM2 <= 0 {
		return 0
	}
	areaM2 := units.MM2ToM2(dieAreaMM2)
	return t.Thickness / (t.Conductivity * areaM2)
}
