package thermal

// OptimizeOptions bound the heat sink search.
type OptimizeOptions struct {
	LaneWidth float64 // available width per lane (m); caps sink width
	LaneLen   float64 // usable lane depth (m)
	ExtraRow  float64 // lane depth reserved for non-ASIC parts (m)
	Layout    Layout
	InletC    float64 // inlet air temperature (°C)
	MaxTjC    float64 // maximum junction temperature (°C)
}

// DefaultOptimizeOptions is the paper's 8-lane 1U server: a 19-inch
// chassis gives each lane roughly 46 mm of width.
func DefaultOptimizeOptions() OptimizeOptions {
	return OptimizeOptions{
		LaneWidth: 0.046,
		LaneLen:   DefaultLaneLength,
		Layout:    LayoutDuct,
		InletC:    30,
		MaxTjC:    90,
	}
}

// OptimizeResult is the best sink configuration found for a lane.
type OptimizeResult struct {
	Sink         HeatSink
	Lane         Lane
	ChipPower    float64 // max W per chip
	LanePower    float64 // max W for the lane
	SinkFlow     float64 // m³/s through the sinks
	ResistanceKW float64 // junction-to-local-air K/W at the operating flow
}

// OptimizeSink searches heat sink depth and fin pitch to maximize the
// power a lane of `chips` dies of dieAreaMM2 each can dissipate —
// "Iterative trials find the best heat sink configuration, optimizing
// heat sink dimensions, material and fin topology." As chips per lane
// grow, the optimum moves to shallower sinks to keep airflow up.
//
// OptimizeSink is a pure function of its arguments and the package's
// material/geometry constants, and OptimizeResult is a plain value with
// no pointers or slices, so results are safe to memoize and share
// across goroutines — server.PlanInputs defines the cache key the
// exploration engine uses for exactly that.
func OptimizeSink(fan Fan, chips int, dieAreaMM2 float64, opt OptimizeOptions) (OptimizeResult, bool) {
	if chips <= 0 || dieAreaMM2 <= 0 {
		return OptimizeResult{}, false
	}
	width := opt.LaneWidth
	if width > MaxSinkWidth {
		width = MaxSinkWidth
	}
	maxDepth := (opt.LaneLen - opt.ExtraRow) / float64(chips)
	if maxDepth > MaxSinkDepth {
		maxDepth = MaxSinkDepth
	}
	if maxDepth < 0.004 {
		return OptimizeResult{}, false // chips don't physically fit
	}

	var best OptimizeResult
	found := false
	// Depth candidates from very shallow to the per-chip budget; gap
	// candidates from the 1 mm minimum up ("generally, the densest
	// packed fins are preferable", but wide gaps win when pressure is
	// scarce).
	for _, frac := range []float64{0.25, 0.4, 0.55, 0.7, 0.85, 1.0} {
		depth := maxDepth * frac
		if depth < 0.004 {
			continue
		}
		for _, gap := range []float64{0.001, 0.0015, 0.002, 0.003, 0.004} {
			// Table 2 allows an aluminum or copper heat spreader; the
			// sweep tries both (copper spreads better, aluminum is
			// cheaper — thermals decide here, cost ties break to Cu's
			// better worst-chip margin).
			for _, base := range []Material{Copper, Aluminum} {
				sink := HeatSink{
					Width:         width,
					FinHeight:     MaxSinkHeight - StdBase,
					Depth:         depth,
					BaseThickness: StdBase,
					FinThickness:  StdFin,
					Gap:           gap,
					FinMaterial:   Aluminum,
					BaseMaterial:  base,
					TIM:           DefaultTIM(),
				}
				if sink.Validate() != nil {
					continue
				}
				lane := NewLane(fan, sink, chips, dieAreaMM2, opt.Layout)
				lane.InletC = opt.InletC
				lane.MaxTjC = opt.MaxTjC
				lane.LaneLen = opt.LaneLen
				lane.ExtraRow = opt.ExtraRow
				if lane.Validate() != nil {
					continue
				}
				p := lane.MaxChipPower()
				if !found || p > best.ChipPower {
					q, _ := lane.Airflow()
					best = OptimizeResult{
						Sink:         sink,
						Lane:         lane,
						ChipPower:    p,
						LanePower:    p * float64(chips),
						SinkFlow:     q,
						ResistanceKW: sink.Resistance(q, dieAreaMM2).Total(),
					}
					found = true
				}
			}
		}
	}
	return best, found
}
