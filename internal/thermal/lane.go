package thermal

import (
	"fmt"
	"math"

	"asiccloud/internal/units"
)

// Layout selects the PCB arrangement of ASICs and heat sinks relative to
// the airflow (paper Figure 7).
type Layout int

const (
	// LayoutNormal is a plain grid: heavy bypass airflow vents around
	// the sinks without contributing to cooling.
	LayoutNormal Layout = iota
	// LayoutStaggered offsets odd and even rows to spread hot airflows,
	// removing ~64-65% more heat than Normal, at the cost of wide
	// temperature variation between ASICs.
	LayoutStaggered
	// LayoutDuct encloses each column with its fan so that almost all
	// airflow passes through the sinks: ~15% better than Staggered.
	// This is the layout the paper adopts for all subsequent analysis.
	LayoutDuct
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutNormal:
		return "Normal"
	case LayoutStaggered:
		return "Staggered"
	case LayoutDuct:
		return "DUCT"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// layoutParams captures how each arrangement routes fan air.
type layoutParams struct {
	// bypassArea is the free cross-section (m²) around the sinks through
	// which air can escape without cooling anything.
	bypassArea float64
	// bypassK is the loss coefficient of the bypass path.
	bypassK float64
	// uniformity derates the convection seen by the worst-placed ASIC
	// (staggered rows receive visibly uneven airflow).
	uniformity float64
}

func (l Layout) params() layoutParams {
	switch l {
	case LayoutNormal:
		return layoutParams{bypassArea: 8.0e-4, bypassK: 0.8, uniformity: 0.75}
	case LayoutStaggered:
		return layoutParams{bypassArea: 1.8e-4, bypassK: 2.0, uniformity: 0.88}
	default: // LayoutDuct
		return layoutParams{bypassArea: 0, bypassK: math.Inf(1), uniformity: 1.0}
	}
}

// Lane is one fan-fed column of ASICs in a 1U server: the unit of thermal
// analysis in the paper's server model.
type Lane struct {
	Fan      Fan
	Sink     HeatSink // identical sink on every chip
	Chips    int
	DieArea  float64 // mm² per chip
	Layout   Layout
	InletC   float64 // machine-room inlet air, 30 °C in the paper
	MaxTjC   float64 // junction limit, 90 °C for the 28nm process
	LaneLen  float64 // usable lane depth (m) for sinks + components
	ExtraRow float64 // depth (m) consumed by non-ASIC parts (e.g. DRAM rows)
}

// DefaultLaneLength is the usable airflow-direction depth of a 1U server
// PCB after the fan wall and connectors.
const DefaultLaneLength = 0.60

// NewLane builds a lane with the paper's standard environment (30 °C
// inlet, 90 °C junction limit, 600 mm usable depth).
func NewLane(fan Fan, sink HeatSink, chips int, dieAreaMM2 float64, layout Layout) Lane {
	return Lane{
		Fan:     fan,
		Sink:    sink,
		Chips:   chips,
		DieArea: dieAreaMM2,
		Layout:  layout,
		InletC:  30,
		MaxTjC:  90,
		LaneLen: DefaultLaneLength,
	}
}

// Validate checks lane geometry, including that the sinks fit the lane.
func (l Lane) Validate() error {
	if l.Chips <= 0 {
		return fmt.Errorf("thermal: lane needs at least one chip")
	}
	if l.DieArea <= 0 {
		return fmt.Errorf("thermal: lane die area must be positive")
	}
	if err := l.Fan.Validate(); err != nil {
		return err
	}
	if err := l.Sink.Validate(); err != nil {
		return err
	}
	used := float64(l.Chips)*l.Sink.Depth + l.ExtraRow
	if used > l.LaneLen+1e-12 {
		return fmt.Errorf("thermal: %d sinks of %.0f mm plus %.0f mm extras exceed %.0f mm lane",
			l.Chips, l.Sink.Depth*1e3, l.ExtraRow*1e3, l.LaneLen*1e3)
	}
	if l.MaxTjC <= l.InletC {
		return fmt.Errorf("thermal: junction limit %.0f °C must exceed inlet %.0f °C", l.MaxTjC, l.InletC)
	}
	return nil
}

// Airflow solves the fan curve against the lane's flow network: the sink
// path (all sinks in series) in parallel with the layout's bypass path.
// It returns the through-sink flow and the total fan flow in m³/s.
func (l Lane) Airflow() (sinkFlow, fanFlow float64) {
	p := l.Layout.params()

	sinkPathDrop := func(q float64) float64 {
		return float64(l.Chips) * l.Sink.PressureDrop(q)
	}
	//lint:ignore floatcmp bypassArea==0 is the assigned ducted-layout marker, never computed
	if p.bypassArea == 0 {
		// Ducted: all fan air goes through the sinks; the operating
		// point is the single crossing of the fan curve and the sink
		// path resistance.
		sinkFlow, _ = units.Bisect(func(q float64) float64 {
			return sinkPathDrop(q) - l.Fan.PressureAt(q)
		}, 1e-9, l.Fan.MaxFlow, 1e-9, 100)
		return sinkFlow, sinkFlow
	}
	bypassFlow := func(dp float64) float64 {
		if dp <= 0 {
			return 0
		}
		v := math.Sqrt(2 * dp / (units.AirDensity * p.bypassK))
		return v * p.bypassArea
	}
	// Find operating pressure where fan flow equals sink + bypass flow.
	imbalance := func(dp float64) float64 {
		qs, _ := units.Bisect(func(q float64) float64 {
			return sinkPathDrop(q) - dp
		}, 0, l.Fan.MaxFlow*4, 1e-9, 100)
		return l.Fan.FlowAt(dp) - qs - bypassFlow(dp)
	}
	dp, _ := units.Bisect(imbalance, 1e-6, l.Fan.MaxPressure-1e-9, 1e-6, 200)
	sinkFlow, _ = units.Bisect(func(q float64) float64 {
		return sinkPathDrop(q) - dp
	}, 0, l.Fan.MaxFlow*4, 1e-9, 100)
	fanFlow = sinkFlow + bypassFlow(dp)
	return sinkFlow, fanFlow
}

// tempCoeffs returns per-chip coefficients k such that the junction
// temperature of chip i at uniform per-chip power P is InletC + k[i]·P.
// The linearity of the whole network in power is what lets the explorer
// evaluate thermal feasibility in closed form.
func (l Lane) tempCoeffs() []float64 {
	q, _ := l.Airflow()
	p := l.Layout.params()
	res := l.Sink.Resistance(q, l.DieArea)
	rWorst := res.TIM + res.Spreading + res.Convection/p.uniformity

	heatCap := units.AirDensity * units.AirSpecificHeat * q // W/K
	coeffs := make([]float64, l.Chips)
	upstream := 0.0 // accumulated mean air rise per watt-per-chip
	for i := 0; i < l.Chips; i++ {
		r := res.Total()
		if i == l.Chips-1 {
			r = rWorst
		}
		extra := math.Inf(1)
		if heatCap > 0 {
			const plume = 1.5
			extra = 1 / (2 * heatCap)
			if i > 0 {
				extra += plume / heatCap
			}
		}
		coeffs[i] = upstream + extra + r
		if heatCap > 0 {
			upstream += 1 / heatCap
		} else {
			upstream = math.Inf(1)
		}
	}
	return coeffs
}

// JunctionTemps returns the junction temperature of each chip when every
// chip dissipates powerPerChip watts. Chips downstream breathe air heated
// by their upstream neighbours: "typically the thermally bottlenecking
// ASIC is the one in the back."
// The model includes two air-side corrections beyond the well-mixed
// mean: the air warms by each chip's own heat while crossing its sink
// (fins see the mean of inlet and exit), and the hot core of the
// upstream chip's exhaust plume is not fully mixed when it reaches the
// next sink. Both penalize lanes that concentrate heat into a few large
// sources — the effect the paper observes in CFD ("heat generation is
// more evenly spread across the lane").
func (l Lane) JunctionTemps(powerPerChip float64) []float64 {
	coeffs := l.tempCoeffs()
	temps := make([]float64, len(coeffs))
	for i, k := range coeffs {
		temps[i] = l.InletC + powerPerChip*k
	}
	return temps
}

// MaxChipPower returns the highest uniform per-chip power that keeps every
// junction at or below the limit ("iterative simulations gradually
// increase the ASICs' power until at least some part of one die reaches
// the maximum junction temperature").
func (l Lane) MaxChipPower() float64 {
	if err := l.Validate(); err != nil {
		return 0
	}
	// Junction temperature is linear in power: Tj[i] = inlet + k[i]·P,
	// so the limit is set by the largest coefficient in closed form.
	coeffs := l.tempCoeffs()
	worst := 0.0
	for _, k := range coeffs {
		if k > worst {
			worst = k
		}
	}
	if worst <= 0 || math.IsInf(worst, 1) {
		return 0
	}
	return (l.MaxTjC - l.InletC) / worst
}

// MaxLanePower is the total dissipation capacity of the lane.
func (l Lane) MaxLanePower() float64 {
	return l.MaxChipPower() * float64(l.Chips)
}
