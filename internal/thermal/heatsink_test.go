package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func stdSink() HeatSink {
	return HeatSink{
		Width:         0.046,
		FinHeight:     0.032,
		Depth:         0.050,
		BaseThickness: StdBase,
		FinThickness:  StdFin,
		Gap:           0.001,
		FinMaterial:   Aluminum,
		BaseMaterial:  Copper,
		TIM:           DefaultTIM(),
	}
}

func TestTIMResistanceInverseToArea(t *testing.T) {
	tim := DefaultTIM()
	r100 := tim.Resistance(100)
	r200 := tim.Resistance(200)
	if math.Abs(r100/r200-2) > 1e-9 {
		t.Errorf("TIM resistance should halve when area doubles: %v vs %v", r100, r200)
	}
	// Calibration: ~25 K/W at 1 mm² with the default 0.1 mm / 4 W/mK TIM.
	if r1 := tim.Resistance(1); math.Abs(r1-25) > 1 {
		t.Errorf("TIM resistance at 1 mm² = %v, want ~25 K/W", r1)
	}
	if tim.Resistance(0) != 0 {
		t.Error("zero area should return zero resistance")
	}
}

func TestHeatSinkValidate(t *testing.T) {
	if err := stdSink().Validate(); err != nil {
		t.Fatalf("standard sink rejected: %v", err)
	}
	bad := []func(*HeatSink){
		func(h *HeatSink) { h.Width = 0.090 },     // > 85 mm
		func(h *HeatSink) { h.FinHeight = 0.034 }, // + 3 mm base > 35 mm
		func(h *HeatSink) { h.Depth = 0.101 },     // > 100 mm
		func(h *HeatSink) { h.Gap = 0.0005 },      // < 1 mm
		func(h *HeatSink) { h.Depth = 0 },
		func(h *HeatSink) { h.FinThickness = 0 },
		func(h *HeatSink) { h.Width = 0.001 }, // < 2 fins
	}
	for i, mutate := range bad {
		h := stdSink()
		mutate(&h)
		if err := h.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestFinGeometry(t *testing.T) {
	h := stdSink()
	// 46 mm wide at 1.5 mm pitch: 31 fins, 30 channels.
	if got := h.FinCount(); got != 31 {
		t.Errorf("FinCount = %d, want 31", got)
	}
	if got := h.ChannelCount(); got != 30 {
		t.Errorf("ChannelCount = %d, want 30", got)
	}
	wantOpen := 30 * 0.001 * 0.032
	if got := h.OpenArea(); math.Abs(got-wantOpen) > 1e-12 {
		t.Errorf("OpenArea = %v, want %v", got, wantOpen)
	}
	if h.FinArea() <= 2*h.Width*h.Depth {
		t.Error("fin area should far exceed the footprint")
	}
}

func TestPressureDropIncreasesWithFlowAndDepth(t *testing.T) {
	h := stdSink()
	if h.PressureDrop(0) != 0 {
		t.Error("no flow, no pressure drop")
	}
	p1 := h.PressureDrop(0.004)
	p2 := h.PressureDrop(0.008)
	if p2 <= p1 {
		t.Errorf("pressure drop should grow with flow: %v vs %v", p1, p2)
	}
	deep := h
	deep.Depth = 0.100
	if deep.PressureDrop(0.004) <= p1 {
		t.Error("deeper sink should drop more pressure — the effect that drives shallower sinks at high chip counts")
	}
	narrow := h
	narrow.Gap = 0.003
	if narrow.PressureDrop(0.004) >= p1 {
		t.Error("wider gaps should reduce pressure drop")
	}
}

func TestPressureDropMonotoneProperty(t *testing.T) {
	h := stdSink()
	f := func(a, b uint16) bool {
		q1 := 0.0001 + 0.012*float64(a)/65535
		q2 := 0.0001 + 0.012*float64(b)/65535
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return h.PressureDrop(q1) <= h.PressureDrop(q2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResistanceBreakdown(t *testing.T) {
	h := stdSink()
	r := h.Resistance(0.005, 100)
	if r.TIM <= 0 || r.Spreading <= 0 || r.Convection <= 0 {
		t.Fatalf("all components should be positive: %+v", r)
	}
	if got := r.Total(); math.Abs(got-(r.TIM+r.Spreading+r.Convection)) > 1e-12 {
		t.Errorf("Total() = %v, want sum of parts", got)
	}
	// Small dies are TIM-dominated (paper Figure 6).
	small := h.Resistance(0.005, 4)
	if small.TIM < 3*(small.Spreading+small.Convection) {
		t.Errorf("4 mm² die should be TIM-dominated: %+v", small)
	}
	// Large dies are convection-dominated.
	large := h.Resistance(0.005, 600)
	if large.Convection < large.TIM {
		t.Errorf("600 mm² die should be convection-dominated: %+v", large)
	}
}

func TestResistanceFallsWithFlow(t *testing.T) {
	h := stdSink()
	slow := h.Resistance(0.002, 100).Total()
	fast := h.Resistance(0.008, 100).Total()
	if fast >= slow {
		t.Errorf("more airflow should cut resistance: %v vs %v", slow, fast)
	}
	still := h.Resistance(0, 100)
	if !math.IsInf(still.Convection, 1) {
		t.Error("no airflow should mean infinite convection resistance")
	}
}

func TestCopperSpreaderBeatsAluminum(t *testing.T) {
	cu := stdSink()
	al := stdSink()
	al.BaseMaterial = Aluminum
	rcu := cu.Resistance(0.005, 50).Spreading
	ral := al.Resistance(0.005, 50).Spreading
	if rcu >= ral {
		t.Errorf("copper base should spread better: Cu %v vs Al %v", rcu, ral)
	}
	if cu.Cost() <= al.Cost() {
		t.Error("copper sink should cost more")
	}
}

func TestSinkMassAndCost(t *testing.T) {
	h := stdSink()
	m := h.Mass()
	if m <= 0 || m > 1 {
		t.Errorf("sink mass = %v kg, want a plausible sub-kg value", m)
	}
	c := h.Cost()
	if c < 0.5 || c > 10 {
		t.Errorf("sink cost = $%.2f, want low-cost commodity range", c)
	}
}

func TestFanCurve(t *testing.T) {
	f := Default1UFan()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := f.PressureAt(0); got != f.MaxPressure {
		t.Errorf("stall pressure = %v, want %v", got, f.MaxPressure)
	}
	if got := f.PressureAt(f.MaxFlow); got != 0 {
		t.Errorf("free-air pressure = %v, want 0", got)
	}
	if got := f.PressureAt(f.MaxFlow * 2); got != 0 {
		t.Errorf("beyond free-air = %v, want 0", got)
	}
	// FlowAt inverts PressureAt.
	for _, q := range []float64{0.001, 0.004, 0.008} {
		p := f.PressureAt(q)
		if got := f.FlowAt(p); math.Abs(got-q) > 1e-9 {
			t.Errorf("FlowAt(PressureAt(%v)) = %v", q, got)
		}
	}
	if f.FlowAt(f.MaxPressure+1) != 0 {
		t.Error("overpressure should stall the fan")
	}
	if f.FlowAt(-5) != f.MaxFlow {
		t.Error("negative pressure should deliver free-air flow")
	}
}

func TestFanValidate(t *testing.T) {
	bad := Fan{Name: "bad", MaxPressure: 0, MaxFlow: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero pressure fan should fail validation")
	}
	bad2 := Fan{Name: "bad2", MaxPressure: 100, MaxFlow: 0.01, Power: -1}
	if err := bad2.Validate(); err == nil {
		t.Error("negative power fan should fail validation")
	}
}
