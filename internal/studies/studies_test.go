package studies

import (
	"testing"

	"asiccloud/internal/thermal"
)

func TestEnergyPriceStudy(t *testing.T) {
	pts, err := EnergyPriceStudy([]float64{0.02, 0.06, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Expensive energy must push the optimal voltage down (toward the
	// energy-efficient near-threshold corner) and never up.
	if pts[2].OptimalVoltage > pts[0].OptimalVoltage {
		t.Errorf("$0.15/kWh voltage (%v) should not exceed $0.02/kWh voltage (%v)",
			pts[2].OptimalVoltage, pts[0].OptimalVoltage)
	}
	// And the chosen designs should be more energy efficient.
	if pts[2].WattsPerOp > pts[0].WattsPerOp {
		t.Errorf("expensive energy should select lower W/op: %v vs %v",
			pts[2].WattsPerOp, pts[0].WattsPerOp)
	}
	// TCO itself rises with the energy price.
	if !(pts[0].TCOPerOp < pts[1].TCOPerOp && pts[1].TCOPerOp < pts[2].TCOPerOp) {
		t.Errorf("TCO should rise with energy price: %v", pts)
	}
	if _, err := EnergyPriceStudy(nil); err == nil {
		t.Error("empty price list should fail")
	}
	if _, err := EnergyPriceStudy([]float64{-1}); err == nil {
		t.Error("negative price should fail")
	}
}

func TestLifetimeStudy(t *testing.T) {
	pts, err := LifetimeStudy([]float64{1.0, 1.5, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	// Longer amortization accumulates more electricity: the optimum
	// moves toward energy efficiency.
	if pts[2].WattsPerOp > pts[0].WattsPerOp {
		t.Errorf("3-year W/op (%v) should not exceed 1-year (%v)",
			pts[2].WattsPerOp, pts[0].WattsPerOp)
	}
	if pts[2].OptimalVoltage > pts[0].OptimalVoltage {
		t.Errorf("3-year voltage (%v) should not exceed 1-year (%v)",
			pts[2].OptimalVoltage, pts[0].OptimalVoltage)
	}
	// Total TCO grows with the horizon.
	if pts[2].TCOPerOp <= pts[0].TCOPerOp {
		t.Error("longer horizon should accumulate more TCO")
	}
	if _, err := LifetimeStudy([]float64{0}); err == nil {
		t.Error("zero lifetime should fail")
	}
	if _, err := LifetimeStudy(nil); err == nil {
		t.Error("empty lifetime list should fail")
	}
}

func TestLayoutStudy(t *testing.T) {
	pts, err := LayoutStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d layouts", len(pts))
	}
	byLayout := map[thermal.Layout]LayoutPoint{}
	for _, p := range pts {
		byLayout[p.Layout] = p
	}
	// The paper adopts DUCT because it cools best; end-to-end that must
	// show up as the lowest (or tied) TCO per op.
	if byLayout[thermal.LayoutDuct].TCOPerOp > byLayout[thermal.LayoutNormal].TCOPerOp {
		t.Errorf("DUCT TCO (%v) should beat Normal (%v)",
			byLayout[thermal.LayoutDuct].TCOPerOp, byLayout[thermal.LayoutNormal].TCOPerOp)
	}
	if byLayout[thermal.LayoutDuct].TCOPerOp > byLayout[thermal.LayoutStaggered].TCOPerOp {
		t.Errorf("DUCT TCO (%v) should beat Staggered (%v)",
			byLayout[thermal.LayoutDuct].TCOPerOp, byLayout[thermal.LayoutStaggered].TCOPerOp)
	}
}

func TestCoolingStudy(t *testing.T) {
	pts, err := CoolingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d cooling options", len(pts))
	}
	air, wet := pts[0], pts[1]
	// Immersion removes the fan/heat-sink chain and its power; with the
	// same silicon it should not lose on TCO.
	if wet.TCOPerOp > air.TCOPerOp {
		t.Errorf("immersion TCO (%v) should not exceed forced air (%v)",
			wet.TCOPerOp, air.TCOPerOp)
	}
}

func TestNodeStudy(t *testing.T) {
	pts, err := NodeStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d nodes", len(pts))
	}
	n28, n40 := pts[0], pts[1]
	// §12: half the mask cost at 40nm...
	if n40.MaskCost*2 != n28.MaskCost {
		t.Errorf("40nm masks should cost half: %v vs %v", n40.MaskCost, n28.MaskCost)
	}
	// ...and "only a small difference in performance and energy
	// efficiency": the 40nm cloud's TCO/op lands within 2x of 28nm.
	ratio := n40.TCOPerOp / n28.TCOPerOp
	if ratio < 1.0 || ratio > 2.0 {
		t.Errorf("40nm/28nm TCO ratio = %v, want a modest penalty in (1, 2]", ratio)
	}
	// The cheaper NRE lowers the scale at which the ASIC cloud pays off.
	if n40.BreakevenTCO >= n28.BreakevenTCO {
		t.Error("40nm should break even at smaller computations")
	}
}

func TestWaferPriceStudy(t *testing.T) {
	pts, err := WaferPriceStudy([]float64{2000, 3700, 8000})
	if err != nil {
		t.Fatal(err)
	}
	// Hardware $/op rises with the wafer price...
	if !(pts[0].DollarsPerOp < pts[2].DollarsPerOp) {
		t.Errorf("$/op should rise with wafer cost: %v", pts)
	}
	// ...and so does total TCO.
	if !(pts[0].TCOPerOp < pts[1].TCOPerOp && pts[1].TCOPerOp < pts[2].TCOPerOp) {
		t.Errorf("TCO should rise with wafer cost: %v", pts)
	}
	// Expensive silicon is sweated harder: voltage does not decrease.
	if pts[2].OptimalVoltage < pts[0].OptimalVoltage {
		t.Errorf("expensive wafers should not lower the optimal voltage: %v", pts)
	}
	if _, err := WaferPriceStudy(nil); err == nil {
		t.Error("empty list should fail")
	}
	if _, err := WaferPriceStudy([]float64{0}); err == nil {
		t.Error("zero wafer price should fail")
	}
}

func TestSiteStudy(t *testing.T) {
	pts, err := SiteStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("got %d sites", len(pts))
	}
	byName := map[string]SitePoint{}
	for _, p := range pts {
		byName[p.Site.Name] = p
	}
	iceland := byName["Iceland (geothermal/hydro)"]
	retail := byName["US retail colo"]
	// The whole §3 siting argument: cheap cold sites dominate on TCO.
	if iceland.TCOPerOp >= retail.TCOPerOp {
		t.Errorf("Iceland TCO (%v) should beat retail colo (%v)",
			iceland.TCOPerOp, retail.TCOPerOp)
	}
	// Cheap energy shifts weight off watts: the optimal voltage at the
	// cheap site is at least as high as at the expensive one.
	if iceland.OptimalVoltage < retail.OptimalVoltage {
		t.Errorf("cheap-energy site voltage (%v) should be >= expensive site (%v)",
			iceland.OptimalVoltage, retail.OptimalVoltage)
	}
}
