package studies

import (
	"math"
	"testing"
)

// TestBreakevenUtilizationClosedForm: at the break-even utilization the
// two clouds' per-op-year emissions must be equal, by construction.
func TestBreakevenUtilizationClosedForm(t *testing.T) {
	sub := DefaultSubstrate()
	const embodied, opRate, lifetime = 0.3, 1.6, 1.5
	u := BreakevenUtilization(embodied, opRate, lifetime, sub)
	if !(u > 0) || math.IsInf(u, 1) {
		t.Fatalf("breakeven utilization = %v", u)
	}
	asic := embodied/(lifetime*u) + opRate
	subTotal := sub.AreaOverhead*embodied/(sub.LifetimeYears*sub.Utilization) + sub.PowerOverhead*opRate
	if math.Abs(asic-subTotal) > 1e-9*subTotal {
		t.Errorf("at break-even: asic %v != substrate %v", asic, subTotal)
	}
	// On a zero-carbon grid only embodied matters: the closed form
	// reduces to Ls·Us/(L·A), independent of the operational rate.
	u0 := BreakevenUtilization(embodied, 0, lifetime, sub)
	want := sub.LifetimeYears * sub.Utilization / (lifetime * sub.AreaOverhead)
	if math.Abs(u0-want) > 1e-12 {
		t.Errorf("zero-grid break-even = %v, want %v", u0, want)
	}
}

// TestCarbonCrossoverStudyConsistent runs the full study and checks the
// grid agrees with the closed-form break-evens: every cell strictly
// above its break-even utilization has the ASIC winning, every cell
// below has the substrate winning.
func TestCarbonCrossoverStudyConsistent(t *testing.T) {
	s, err := CarbonCrossoverStudy(
		[]float64{1, 1.5, 3},
		[]float64{0.05, 0.25, 0.90},
		[]float64{475, 20, 0},
		DefaultSubstrate())
	if err != nil {
		t.Fatal(err)
	}
	if !(s.EmbodiedKgPerOp > 0) || !(s.WattsPerOp > 0) {
		t.Fatalf("degenerate design coordinates: %+v", s)
	}
	be := make(map[[2]float64]float64, len(s.Breakevens))
	for _, b := range s.Breakevens {
		be[[2]float64{b.GridGCO2ePerKWh, b.LifetimeYears}] = b.Utilization
	}
	for _, r := range s.Rows {
		u := be[[2]float64{r.GridGCO2ePerKWh, r.LifetimeYears}]
		if wantWin := r.Utilization > u; wantWin != r.ASICWins {
			t.Errorf("grid %v g/kWh, %v yr, util %v: ASICWins=%v but break-even is %v",
				r.GridGCO2ePerKWh, r.LifetimeYears, r.Utilization, r.ASICWins, u)
		}
	}
	// Dirtier grids favor the ASIC: break-even utilization must not
	// rise with grid intensity at fixed lifetime.
	if be[[2]float64{475, 1.5}] >= be[[2]float64{20, 1.5}] {
		t.Errorf("dirty-grid break-even %v not below clean-grid %v",
			be[[2]float64{475, 1.5}], be[[2]float64{20, 1.5}])
	}
}

// TestCarbonCrossoverStudyRejects covers input validation.
func TestCarbonCrossoverStudyRejects(t *testing.T) {
	good := DefaultSubstrate()
	if _, err := CarbonCrossoverStudy(nil, []float64{0.5}, []float64{475}, good); err == nil {
		t.Error("empty lifetimes accepted")
	}
	if _, err := CarbonCrossoverStudy([]float64{1}, []float64{1.5}, []float64{475}, good); err == nil {
		t.Error("utilization above 1 accepted")
	}
	if _, err := CarbonCrossoverStudy([]float64{1}, []float64{0.5}, []float64{-1}, good); err == nil {
		t.Error("negative intensity accepted")
	}
	bad := good
	bad.Utilization = 0
	if _, err := CarbonCrossoverStudy([]float64{1}, []float64{0.5}, []float64{475}, bad); err == nil {
		t.Error("invalid substrate accepted")
	}
}

// TestCarbonFrontierStudyShape: the figure dataset is a genuine
// frontier — ascending TCO, strictly descending CO2e.
func TestCarbonFrontierStudyShape(t *testing.T) {
	pts, err := CarbonFrontierStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("frontier has %d points; the TCO/carbon tension should produce several", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TCOPerOp < pts[i-1].TCOPerOp {
			t.Errorf("not ascending in TCO at %d", i)
		}
		if pts[i].CO2KgPerOp >= pts[i-1].CO2KgPerOp {
			t.Errorf("not descending in CO2e at %d", i)
		}
	}
}
