// Package studies contains the sensitivity and ablation studies the
// paper's discussion motivates but does not tabulate: how datacenter
// parameters (energy price, hardware lifetime), design choices (PCB
// layout, cooling technology, power delivery) and fabrication choices
// (process node, wafer price) move the TCO-optimal point. "Cloud-level
// parameters ... are pushed down into the server and ASIC design to
// influence cost- and energy-efficiency of computation, producing the
// TCO-optimal design."
package studies

import (
	"fmt"

	"asiccloud/internal/apps/bitcoin"
	"asiccloud/internal/core"
	"asiccloud/internal/datacenter"
	"asiccloud/internal/nre"
	"asiccloud/internal/server"
	"asiccloud/internal/tco"
	"asiccloud/internal/thermal"
	"asiccloud/internal/vlsi"
)

// engine is shared by every study in the package: the studies perturb
// TCO models and datacenter parameters far more often than server
// geometry, so a thermal plan memoized by one study serves the rest
// (the cache key covers every geometry-relevant field, so the studies
// that do vary layout or cooling stay correct).
var engine = core.NewEngine(nil)

// quickSweep trims the Bitcoin design space to the region that contains
// every optimum, so studies run in tens of milliseconds each.
func quickSweep(base server.Config) core.Sweep {
	return core.Sweep{
		Base:           base,
		Voltages:       core.VoltageGrid(0.40, 0.80),
		SiliconPerLane: []float64{130, 530, 1400, 3000, 6000},
		ChipsPerLane:   []int{5, 10, 20},
	}
}

// EnergyPricePoint is one row of the electricity sensitivity study.
type EnergyPricePoint struct {
	PricePerKWh    float64
	OptimalVoltage float64
	WattsPerOp     float64
	TCOPerOp       float64
}

// EnergyPriceStudy sweeps the electricity price and reports how the
// TCO-optimal Bitcoin design moves. The paper's miners site datacenters
// in Iceland and Georgia for cheap energy (§3); cheap energy weights
// the TCO toward hardware cost and pushes the optimal voltage up, while
// expensive energy pushes it toward the near-threshold floor.
func EnergyPriceStudy(prices []float64) ([]EnergyPricePoint, error) {
	if len(prices) == 0 {
		return nil, fmt.Errorf("studies: no prices given")
	}
	out := make([]EnergyPricePoint, 0, len(prices))
	for _, p := range prices {
		if p < 0 {
			return nil, fmt.Errorf("studies: negative energy price %v", p)
		}
		model := tco.Default()
		model.ElectricityPerKWh = p
		res, err := engine.Explore(quickSweep(server.Default(bitcoin.RCA())), model)
		if err != nil {
			return nil, err
		}
		out = append(out, EnergyPricePoint{
			PricePerKWh:    p,
			OptimalVoltage: res.TCOOptimal.Config.Voltage,
			WattsPerOp:     res.TCOOptimal.WattsPerOp,
			TCOPerOp:       res.TCOOptimal.TCOPerOp(),
		})
	}
	return out, nil
}

// LifetimePoint is one row of the amortization study.
type LifetimePoint struct {
	Years          float64
	OptimalVoltage float64
	WattsPerOp     float64
	TCOPerOp       float64
}

// LifetimeStudy sweeps the server amortization period. Longer lifetimes
// accumulate more electricity per dollar of hardware, shifting the
// optimum toward energy efficiency (lower voltage).
func LifetimeStudy(years []float64) ([]LifetimePoint, error) {
	if len(years) == 0 {
		return nil, fmt.Errorf("studies: no lifetimes given")
	}
	out := make([]LifetimePoint, 0, len(years))
	for _, y := range years {
		if y <= 0 {
			return nil, fmt.Errorf("studies: non-positive lifetime %v", y)
		}
		res, err := engine.Explore(quickSweep(server.Default(bitcoin.RCA())), tco.ForLifetime(y))
		if err != nil {
			return nil, err
		}
		out = append(out, LifetimePoint{
			Years:          y,
			OptimalVoltage: res.TCOOptimal.Config.Voltage,
			WattsPerOp:     res.TCOOptimal.WattsPerOp,
			TCOPerOp:       res.TCOOptimal.TCOPerOp(),
		})
	}
	return out, nil
}

// LayoutPoint compares PCB layouts end to end.
type LayoutPoint struct {
	Layout   thermal.Layout
	TCOPerOp float64
	Perf     float64
}

// LayoutStudy quantifies what the DUCT layout is worth at the cloud
// level: the same RCA explored under each of the three Figure 7
// arrangements.
func LayoutStudy() ([]LayoutPoint, error) {
	var out []LayoutPoint
	for _, layout := range []thermal.Layout{thermal.LayoutNormal, thermal.LayoutStaggered, thermal.LayoutDuct} {
		base := server.Default(bitcoin.RCA())
		base.Layout = layout
		res, err := engine.Explore(quickSweep(base), tco.Default())
		if err != nil {
			return nil, fmt.Errorf("studies: layout %v: %w", layout, err)
		}
		out = append(out, LayoutPoint{
			Layout:   layout,
			TCOPerOp: res.TCOOptimal.TCOPerOp(),
			Perf:     res.TCOOptimal.Perf,
		})
	}
	return out, nil
}

// CoolingPoint compares cooling technologies.
type CoolingPoint struct {
	Name       string
	TCOPerOp   float64
	WattsPerOp float64
	Voltage    float64
}

// CoolingStudy compares forced air against two-phase immersion (§2's
// "heavily customized" Bitcoin machine rooms) at the cloud level.
func CoolingStudy() ([]CoolingPoint, error) {
	var out []CoolingPoint
	for _, immersion := range []bool{false, true} {
		base := server.Default(bitcoin.RCA())
		base.Immersion = immersion
		res, err := engine.Explore(quickSweep(base), tco.Default())
		if err != nil {
			return nil, err
		}
		name := "forced air (DUCT)"
		if immersion {
			name = "two-phase immersion"
		}
		out = append(out, CoolingPoint{
			Name:       name,
			TCOPerOp:   res.TCOOptimal.TCOPerOp(),
			WattsPerOp: res.TCOOptimal.WattsPerOp,
			Voltage:    res.TCOOptimal.Config.Voltage,
		})
	}
	return out, nil
}

// NodePoint compares fabrication nodes.
type NodePoint struct {
	Node     string
	TCOPerOp float64
	MaskCost float64
	// BreakevenTCO is the yearly computation TCO above which the node's
	// NRE pays for itself at this TCO/op (two-for-two style analysis).
	BreakevenTCO float64
}

// bitcoin40nm ports the published 28nm RCA one node back with the
// standard scaling factors — the paper: "only a small difference in
// performance and energy efficiency from 28 nm".
func bitcoin40nm() vlsi.Spec {
	s, err := vlsi.To40nmFrom28nm().Apply(bitcoin.RCA(), "bitcoin-sha256d-40nm")
	if err != nil {
		// The published spec is a constant; porting cannot fail.
		panic(err)
	}
	return s
}

// NodeStudy compares the 28nm and 40nm Bitcoin clouds including NRE:
// §12 argues older nodes "are likely to provide suitable TCO per op/s
// reduction, with half the mask cost".
func NodeStudy() ([]NodePoint, error) {
	type candidate struct {
		name    string
		rca     vlsi.Spec
		process vlsi.Process
		nreCost float64
	}
	cands := []candidate{
		{"UMC 28nm", bitcoin.RCA(), vlsi.UMC28nm(), nre.Default28nm().Total()},
		{"TSMC 40nm", bitcoin40nm(), vlsi.TSMC40nm(), nre.Default40nm().Total()},
	}
	var out []NodePoint
	for _, c := range cands {
		base := server.Default(c.rca)
		base.Process = c.process
		res, err := engine.Explore(quickSweep(base), tco.Default())
		if err != nil {
			return nil, fmt.Errorf("studies: node %s: %w", c.name, err)
		}
		out = append(out, NodePoint{
			Node:         c.name,
			TCOPerOp:     res.TCOOptimal.TCOPerOp(),
			MaskCost:     c.process.MaskCost,
			BreakevenTCO: 2 * c.nreCost, // the two-for-two threshold
		})
	}
	return out, nil
}

// SitePoint is one row of the geographic siting study.
type SitePoint struct {
	Site           datacenter.Site
	OptimalVoltage float64
	TCOPerOp       float64
}

// SiteStudy evaluates the TCO-optimal Bitcoin cloud at each catalog
// site, with the site's energy price, PUE, datacenter capex and inlet
// air temperature all pushed down into the design — the full version of
// the paper's §3 siting argument and §5's "cloud-level parameters ...
// are pushed down into the server and ASIC design".
func SiteStudy() ([]SitePoint, error) {
	var out []SitePoint
	for _, site := range datacenter.Sites() {
		if err := site.Validate(); err != nil {
			return nil, err
		}
		model := tco.Default()
		model.ElectricityPerKWh = site.ElectricityPerKWh
		model.PUE = site.PUE
		model.DCCapexPerWattYear = site.DCCapexPerWattYear
		base := server.Default(bitcoin.RCA())
		base.InletTempC = site.InletTempC
		res, err := engine.Explore(quickSweep(base), model)
		if err != nil {
			return nil, fmt.Errorf("studies: site %s: %w", site.Name, err)
		}
		out = append(out, SitePoint{
			Site:           site,
			OptimalVoltage: res.TCOOptimal.Config.Voltage,
			TCOPerOp:       res.TCOOptimal.TCOPerOp(),
		})
	}
	return out, nil
}

// WaferPricePoint is one row of the silicon-price sensitivity study.
type WaferPricePoint struct {
	WaferCost      float64
	OptimalVoltage float64
	DollarsPerOp   float64
	TCOPerOp       float64
}

// WaferPriceStudy sweeps the wafer price. Expensive silicon shifts the
// optimum toward higher voltage (sweat the silicon harder); cheap
// silicon buys energy efficiency.
func WaferPriceStudy(prices []float64) ([]WaferPricePoint, error) {
	if len(prices) == 0 {
		return nil, fmt.Errorf("studies: no wafer prices")
	}
	out := make([]WaferPricePoint, 0, len(prices))
	for _, p := range prices {
		if p <= 0 {
			return nil, fmt.Errorf("studies: non-positive wafer price %v", p)
		}
		base := server.Default(bitcoin.RCA())
		base.Process.WaferCost = p
		res, err := engine.Explore(quickSweep(base), tco.Default())
		if err != nil {
			return nil, err
		}
		out = append(out, WaferPricePoint{
			WaferCost:      p,
			OptimalVoltage: res.TCOOptimal.Config.Voltage,
			DollarsPerOp:   res.TCOOptimal.DollarsPerOp,
			TCOPerOp:       res.TCOOptimal.TCOPerOp(),
		})
	}
	return out, nil
}
